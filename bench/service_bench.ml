(* Compile-service benchmark: a closed-loop harness driving the concurrent
   compile server (lib/service) and the repaired pipeline cache, writing
   BENCH_service.json.

   For each client count in {1, 8, 64} the harness runs three phases
   against a worker pool of 4:

   - cold: every client submits every one of K unique kernel configs once
     against a fresh store — the in-flight dedup and memory tier must
     collapse C*K requests to exactly K pipeline compiles;
   - warm_mem: the same requests against the same (live) server — all
     memory-tier hits, zero compiles;
   - warm_disk: the same requests against a *new* server on the same
     store root — the persistent tier feeds the first request per key,
     the memory tier the rest, still zero compiles.

   Then two focused scenarios: 64 clients hammering ONE kernel on a cold
   server (the dedup headline: exactly 1 compile), and an insert storm
   through the pipeline cache at a lowered capacity (the eviction
   headline: one-at-a-time LRU eviction, never a wipe, the hot entry
   survives).

   Every phase records requests/compiles/tier hits and p50/p99 latency;
   the gate asserts the dedup and eviction invariants and that warm p50
   beats cold p50.  Smoke mode (`make service-smoke`) runs the identical
   harness and additionally pins the JSON schema against
   bench/service.golden (digits collapse to N; regenerate with
   TIRAMISU_UPDATE_GOLDEN=1). *)

module L = Tiramisu_codegen.Loop_ir
module B = Tiramisu_backends
module P = Tiramisu_pipeline.Pipeline
module S = Tiramisu_service.Service

let golden_path = "bench/service.golden"
let json_path = "BENCH_service.json"
let workers = 4
let unique_kernels = 6
let client_counts = [ 1; 8; 64 ]

(* ---------- workload ---------- *)

(* K distinct kernel configs: same shape, different constants, so each
   hashes (and compiles) independently while compile cost stays uniform. *)
let bench_stmt c =
  L.For
    { var = "i"; lo = L.Int 0; hi = L.Int 255; tag = L.Seq;
      body =
        L.For
          { var = "j"; lo = L.Int 0; hi = L.Int 15; tag = L.Seq;
            body =
              L.Store
                ( "out",
                  [ L.Bin (L.Add, L.Bin (L.Mul, L.Var "i", L.Int 16),
                           L.Var "j") ],
                  L.Bin
                    ( L.Add,
                      L.Bin (L.Mul, L.Var "i", L.Int c),
                      L.Bin (L.Mul, L.Var "j", L.Int (c + 1)) ) ) } }

let bench_req c =
  { S.rq_name = Printf.sprintf "svc%d" c;
    rq_stmt = bench_stmt c;
    rq_knobs = { P.default_knobs with P.target = B.Target.cpu ~parallel:`Seq () };
    rq_params = [];
    rq_extents = [ ("out", [| 4096 |], L.Host) ];
    rq_deadline_s = None }

(* ---------- harness plumbing ---------- *)

let fresh_root =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tiramisu_service_bench_%d_%d" (Unix.getpid ()) !n)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
    end
    else try Sys.remove path with Sys_error _ -> ()

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

type phase_row = {
  ph_name : string;
  ph_clients : int;
  ph_requests : int;
  ph_compiles : int;
  ph_mem_hits : int;
  ph_disk_hits : int;
  ph_dedup_waits : int;
  ph_p50 : float;
  ph_p99 : float;
  ph_rps : float;
}

(* Run one closed-loop phase: [clients] threads, each submitting every
   request in [reqs] once, back to back.  Returns the phase row (service
   counters diffed across the phase) and the p50 for the summary. *)
let run_phase sv ~name ~clients reqs =
  let before = S.stats sv in
  let lat = Array.make clients [] in
  let t0 = B.Clock.now_ms () in
  let threads =
    List.init clients (fun c ->
        Thread.create
          (fun () ->
            List.iter
              (fun req ->
                let s0 = B.Clock.now_ms () in
                (match S.submit sv req with
                | S.Done _ -> ()
                | S.Rejected -> failwith (name ^ ": unexpected rejection")
                | S.Failed m -> failwith (name ^ ": " ^ m));
                lat.(c) <- (B.Clock.now_ms () -. s0) :: lat.(c))
              reqs)
          ())
  in
  List.iter Thread.join threads;
  let wall_ms = B.Clock.now_ms () -. t0 in
  let after = S.stats sv in
  let samples = Array.of_list (List.concat (Array.to_list lat)) in
  Array.sort compare samples;
  let requests = after.S.requests - before.S.requests in
  { ph_name = name;
    ph_clients = clients;
    ph_requests = requests;
    ph_compiles = after.S.compiles - before.S.compiles;
    ph_mem_hits = after.S.mem_hits - before.S.mem_hits;
    ph_disk_hits = after.S.disk_hits - before.S.disk_hits;
    ph_dedup_waits = after.S.dedup_waits - before.S.dedup_waits;
    ph_p50 = percentile samples 0.50;
    ph_p99 = percentile samples 0.99;
    ph_rps = float_of_int requests /. (wall_ms /. 1000.0) }

let require msg ok = if not ok then failwith ("service bench gate: " ^ msg)

(* ---------- scenarios ---------- *)

let tier_phases clients =
  let reqs = List.init unique_kernels bench_req in
  let root = fresh_root () in
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let sv = S.create ~workers ~root () in
  let cold = run_phase sv ~name:"cold" ~clients reqs in
  let warm_mem = run_phase sv ~name:"warm_mem" ~clients reqs in
  S.shutdown sv;
  let sv2 = S.create ~workers ~root () in
  let warm_disk = run_phase sv2 ~name:"warm_disk" ~clients reqs in
  S.shutdown sv2;
  require
    (Printf.sprintf "cold@%d: %d compiles for %d unique kernels" clients
       cold.ph_compiles unique_kernels)
    (cold.ph_compiles = unique_kernels);
  require "warm_mem recompiled" (warm_mem.ph_compiles = 0);
  require "warm_mem missed the memory tier"
    (warm_mem.ph_mem_hits = warm_mem.ph_requests);
  require "warm_disk recompiled" (warm_disk.ph_compiles = 0);
  require "warm_disk never touched the store" (warm_disk.ph_disk_hits >= 1);
  [ cold; warm_mem; warm_disk ]

let dedup_scenario () =
  let root = fresh_root () in
  Fun.protect ~finally:(fun () -> rm_rf root) @@ fun () ->
  let sv = S.create ~workers ~root () in
  let row = run_phase sv ~name:"dedup" ~clients:64 [ bench_req 1000 ] in
  S.shutdown sv;
  require
    (Printf.sprintf "dedup: %d compiles for 64 clients of one kernel"
       row.ph_compiles)
    (row.ph_compiles = 1);
  require "dedup accounting"
    (row.ph_dedup_waits + row.ph_mem_hits = row.ph_requests - 1);
  row

type storm_row = {
  st_cap : int;
  st_inserts : int;
  st_evictions : int;
  st_resets : int;
  st_max_entries : int;
  st_hot_survived : bool;
}

(* The eviction half of the bugfix, measured end to end: an insert storm
   of 4x the capacity through Pipeline.build_stmt.  The old code wiped
   the whole table at the cap (resets would grow, entries would crater);
   the fix evicts exactly one LRU victim per insert. *)
let eviction_storm () =
  P.clear_cache ();
  let base = P.cache_stats () in
  let old_cap = P.cache_cap () in
  P.set_cache_cap 16;
  Fun.protect ~finally:(fun () -> P.set_cache_cap old_cap) @@ fun () ->
  let build c =
    P.build_stmt
      ~knobs:{ P.default_knobs with P.target = B.Target.cpu ~parallel:`Seq () }
      ~params:[]
      ~extents:[ ("out", [| 4096 |], L.Host) ]
      ~inputs:[] (bench_stmt c)
  in
  ignore (build 0);
  let max_entries = ref 0 in
  let inserts = 64 in
  for c = 1 to inserts - 1 do
    ignore (build c);
    ignore (build 0);  (* keep entry 0 hot *)
    let s = P.cache_stats () in
    if s.P.entries > !max_entries then max_entries := s.P.entries;
    require "storm: cache collapsed to zero entries" (s.P.entries > 0)
  done;
  let hot = (build 0).P.cache = P.Hit in
  let s = P.cache_stats () in
  let row =
    { st_cap = 16;
      st_inserts = inserts;
      st_evictions = s.P.evictions - base.P.evictions;
      st_resets = s.P.resets - base.P.resets;
      st_max_entries = !max_entries;
      st_hot_survived = hot }
  in
  require "storm: entries exceeded the cap" (row.st_max_entries <= 16);
  require "storm: no incremental evictions" (row.st_evictions >= inserts - 16);
  require "storm: cache was wiped wholesale" (row.st_resets = 0);
  require "storm: hot entry was evicted" row.st_hot_survived;
  row

(* ---------- JSON + golden ---------- *)

let emit buf phases dedup storm ~warm_over_cold =
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "{\n  \"phases\": [\n";
  let n = List.length phases in
  List.iteri
    (fun i p ->
      bpf
        "    { \"phase\": \"%s\", \"clients\": %d, \"requests\": %d, \
         \"compiles\": %d, \"mem_hits\": %d, \"disk_hits\": %d, \
         \"dedup_waits\": %d, \"p50_ms\": %.4f, \"p99_ms\": %.4f, \
         \"rps\": %.1f }%s\n"
        p.ph_name p.ph_clients p.ph_requests p.ph_compiles p.ph_mem_hits
        p.ph_disk_hits p.ph_dedup_waits p.ph_p50 p.ph_p99 p.ph_rps
        (if i = n - 1 then "" else ","))
    phases;
  bpf "  ],\n";
  bpf
    "  \"dedup\": { \"clients\": %d, \"unique_kernels\": 1, \"requests\": \
     %d, \"compiles\": %d, \"dedup_waits\": %d, \"mem_hits\": %d },\n"
    dedup.ph_clients dedup.ph_requests dedup.ph_compiles dedup.ph_dedup_waits
    dedup.ph_mem_hits;
  bpf
    "  \"eviction_storm\": { \"cap\": %d, \"inserts\": %d, \"evictions\": \
     %d, \"resets\": %d, \"max_entries\": %d, \"hot_survived\": %b },\n"
    storm.st_cap storm.st_inserts storm.st_evictions storm.st_resets
    storm.st_max_entries storm.st_hot_survived;
  bpf "  \"summary\": { \"workers\": %d, \"unique_kernels\": %d, \
       \"warm_over_cold\": %.2f }\n}\n"
    workers unique_kernels warm_over_cold

let normalize s =
  String.concat "\n"
    (List.map
       (fun line ->
         let buf = Buffer.create (String.length line) in
         let n = String.length line in
         let i = ref 0 in
         while !i < n do
           let c = line.[!i] in
           if c >= '0' && c <= '9' then begin
             Buffer.add_char buf 'N';
             while
               !i < n
               &&
               let c = line.[!i] in
               (c >= '0' && c <= '9') || c = '.'
             do
               incr i
             done
           end
           else if c = 't' || c = 'f' then
             (* collapse the hot_survived boolean *)
             let word w =
               !i + String.length w <= n && String.sub line !i (String.length w) = w
             in
             if word "true" then begin
               Buffer.add_char buf 'B';
               i := !i + 4
             end
             else if word "false" then begin
               Buffer.add_char buf 'B';
               i := !i + 5
             end
             else begin
               Buffer.add_char buf c;
               incr i
             end
           else begin
             Buffer.add_char buf c;
             incr i
           end
         done;
         Buffer.contents buf)
       (String.split_on_char '\n' s))

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_golden json =
  let got = normalize json in
  if Sys.getenv_opt "TIRAMISU_UPDATE_GOLDEN" <> None then begin
    let oc = open_out golden_path in
    output_string oc got;
    close_out oc;
    Common.pf "service: updated %s\n" golden_path
  end
  else
    let want =
      try normalize (read_file golden_path)
      with Sys_error e -> failwith ("service: cannot read golden file: " ^ e)
    in
    if not (String.equal got want) then begin
      prerr_endline "service: BENCH_service.json schema drifted from golden:";
      prerr_endline "--- got (normalized) ---";
      prerr_endline got;
      exit 1
    end

(* ---------- driver ---------- *)

let run ?(smoke = false) () =
  Common.pf "\n== compile service (%d workers, %d unique kernels) ==\n"
    workers unique_kernels;
  let phases = List.concat_map tier_phases client_counts in
  List.iter
    (fun p ->
      Common.pf
        "  %-9s c=%-3d req=%-4d compile=%-3d mem=%-4d disk=%-3d wait=%-4d \
         p50=%.3fms p99=%.3fms %.0f req/s\n"
        p.ph_name p.ph_clients p.ph_requests p.ph_compiles p.ph_mem_hits
        p.ph_disk_hits p.ph_dedup_waits p.ph_p50 p.ph_p99 p.ph_rps)
    phases;
  let dedup = dedup_scenario () in
  Common.pf "  dedup: 64 clients, 1 kernel -> %d compile, %d shared\n"
    dedup.ph_compiles
    (dedup.ph_dedup_waits + dedup.ph_mem_hits);
  let storm = eviction_storm () in
  Common.pf
    "  eviction storm: %d inserts at cap %d -> %d evictions, %d resets, \
     hot %s\n"
    storm.st_inserts storm.st_cap storm.st_evictions storm.st_resets
    (if storm.st_hot_survived then "survived" else "LOST");
  (* warm-over-cold: median cold latency vs median warm-memory latency,
     averaged across client counts *)
  let med name =
    let xs =
      List.filter_map
        (fun p -> if p.ph_name = name then Some p.ph_p50 else None)
        phases
    in
    List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let warm_over_cold = med "cold" /. max 1e-9 (med "warm_mem") in
  require
    (Printf.sprintf "warm is not faster than cold (ratio %.2f)"
       warm_over_cold)
    (warm_over_cold > 1.0);
  Common.pf "  warm-over-cold p50 speedup: %.1fx\n" warm_over_cold;
  let buf = Buffer.create 4096 in
  emit buf phases dedup storm ~warm_over_cold;
  let json = Buffer.contents buf in
  let oc = open_out json_path in
  output_string oc json;
  close_out oc;
  Common.pf "  wrote %s\n" json_path;
  if smoke then begin
    check_golden json;
    Common.pf "service smoke gate: ok\n"
  end
