(* Wall-clock benchmark of the compiled backend's execution strategies:
   reference interpreter vs. sequential exec vs. the seed's per-loop-entry
   [Domain.spawn] strategy vs. the persistent domain pool.  Emits a
   machine-readable BENCH_exec.json next to the human-readable table.

   The interesting cases are kernels whose [Parallel] loop is entered many
   times per run (inner-parallel blur, unfused nb): there the per-entry
   spawn/join cost of the seed strategy dominates and the pool wins.  The
   [specialized] column counts innermost loops compiled through the kernel
   specializer (strength-reduced cursors, unroll/vector drivers, scalar
   promotion); [pool_fallbacks] counts Parallel loops demoted to sequential
   by the work-size heuristic (threshold recorded in the JSON header).

   Per-strategy timings report mean, median and min over the reps: the
   median is robust to scheduler noise, the min approximates the
   noise-free run.  Speedup ratios use medians.

   Smoke mode ([run ~smoke:true ()], CLI "exec-smoke") runs 1 rep on tiny
   sizes and skips the JSON so the tier-1 gate can exercise the perf paths
   without clobbering the published numbers. *)

open Tiramisu_kernels
open Tiramisu_core
open Tiramisu
module B = Tiramisu_backends
module L = Tiramisu_codegen.Loop_ir
module P = Tiramisu_pipeline.Pipeline
module Plan = Tiramisu_codegen.Parallel_plan

(* The container may expose a single core; force a real pool so the
   strategies differ (TIRAMISU_NUM_DOMAINS still wins if set). *)
let workers () =
  (match Sys.getenv_opt "TIRAMISU_NUM_DOMAINS" with
  | Some _ -> ()
  | None -> B.Pool.set_num_workers 4);
  B.Pool.num_workers ()

(* Let the parallel planner budget for the full pool even when the OS
   grants this process fewer cores: the multi-worker plans (coalescing,
   static ranges) are then exercised and measured honestly — wall-clock
   numbers still reflect the machine actually underneath.  The
   TIRAMISU_ASSUME_CORES override changes planning only, never timing. *)
let assume_cores () =
  (match Sys.getenv_opt "TIRAMISU_ASSUME_CORES" with
  | Some _ -> ()
  | None -> Unix.putenv "TIRAMISU_ASSUME_CORES" "4");
  int_of_string (Sys.getenv "TIRAMISU_ASSUME_CORES")

let img3 (idx : int array) =
  float_of_int (((idx.(0) * 13) + (idx.(1) * 7) + (idx.(2) * 3)) mod 31) /. 7.0

(* blur with the parallel tag on the second tile loop (j0): the Parallel
   For is entered once per i0 iteration — a multi-entry parallel loop. *)
let blur_inner_par ?(t = 16) f =
  let bx = find_comp f "bx" and by = find_comp f "by" in
  tile by "i" "j" t t "i0" "j0" "i1" "j1";
  parallelize by "j0";
  compute_at bx by "j0";
  vectorize by "j1" 8

type case = {
  c_name : string;
  c_size : string;
  c_params : (string * int) list;
  c_inputs : (string * (int array -> float)) list;
  c_build : unit -> Tiramisu_core.Ir.fn;
  c_sched : Tiramisu_core.Ir.fn -> unit;
  c_outputs : string list;
      (* output buffers, compared bitwise by per-pass differential
         verification (the pipeline probe) and by the autoscheduler's
         winner replay *)
}

let cases ~smoke =
  let blur_n, blur_m = if smoke then (32, 32) else (96, 64) in
  let nb_n = if smoke then 48 else 192 in
  let gemm_s = if smoke then 16 else 64 in
  [
    {
      c_name = "blur_inner_parallel";
      c_size = Printf.sprintf "N=%d M=%d t=8" blur_n blur_m;
      c_params = [ ("N", blur_n); ("M", blur_m) ];
      c_inputs = [ ("img", img3) ];
      c_build =
        (fun () ->
          let f, _, _ = Image.blur () in
          f);
      c_sched = blur_inner_par ~t:8;
      c_outputs = [ "by" ];
    };
    {
      c_name = "nb_unfused";
      c_size = Printf.sprintf "N=%d M=%d" nb_n nb_n;
      c_params = [ ("N", nb_n); ("M", nb_n) ];
      c_inputs = [ ("img", img3) ];
      c_build =
        (fun () ->
          let f, _, _, _, _ = Image.nb () in
          f);
      c_sched = Schedules.cpu_nb ~fuse:false;
      c_outputs = [ "negative"; "brightened" ];
    };
    {
      c_name = "sgemm_tuned";
      c_size = Printf.sprintf "S=%d" gemm_s;
      c_params = [ ("S", gemm_s) ];
      c_inputs =
        [ ("A", fun i -> float_of_int (((i.(0) * 7) + (i.(1) * 3)) mod 11));
          ("B", fun i -> float_of_int (((i.(0) * 5) + i.(1)) mod 9));
          ("C0", fun i -> float_of_int ((i.(0) + i.(1)) mod 7)) ];
      c_build =
        (fun () ->
          let f, _, _ = Linalg.sgemm () in
          f);
      c_sched = Linalg.sgemm_tuned ~bi:8 ~bj:8 ~bk:8 ~vec:4 ~unr:2;
      c_outputs = [ "C" ];
    };
  ]

type stats = { s_mean : float; s_median : float; s_min : float }

let stats_of (samples : float array) =
  let n = Array.length samples in
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let median =
    if n mod 2 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0
  in
  {
    s_mean = Array.fold_left ( +. ) 0.0 samples /. float_of_int n;
    s_median = median;
    s_min = sorted.(0);
  }

type row = {
  r_case : case;
  r_meta : L.loop_meta;
  r_spec : int;       (* innermost loops compiled specialized *)
  r_fallback : int;   (* Parallel loops demoted under `Pool *)
  r_coalesced : int;      (* fused parallel groups emitted by the planner *)
  r_fused_levels : int;   (* original loops folded into those groups *)
  r_serialized : int;     (* Parallel subtrees the planner serialized *)
  r_static : int;         (* pool loops given the static schedule *)
  r_tape : int;           (* nests claimed by the flat-tape backend *)
  r_tape_vec : int;       (* claimed nests bound lane-batched (vector) *)
  r_lanes : int;          (* lane width the vector bindings ran at *)
  r_tape_instr : int;     (* total tape instructions across those nests *)
  r_tape_fb : int;        (* runtime corner-check fallbacks over the reps *)
  r_interp_ms : float;
  r_seq : stats;
  r_seq_notape : stats;          (* tape=off control, sequential *)
  r_seq_nolanes : stats;         (* lanes=1 scalar-tape control, sequential *)
  r_spawn : stats;
  r_pool : stats;
  r_sweep : (int * stats) list;  (* pool stats at 1/2/4 workers *)
  r_sweep_notape : (int * stats) list;  (* tape=off control sweep *)
  r_cold_ms : float;  (* median cold compile of the lowered stmt *)
  r_hit_ms : float;   (* median warm-cache rebuild of the same stmt *)
}

(* Cold-vs-warm compile of the same (stmt, params, knobs) triple through
   the pipeline's compile cache.  A warm rebuild must be a genuine [Hit]
   and at least 10x faster than a cold compile — the property that makes
   repeated compiles in fuzz replay and autoscheduler candidate search
   near-free. *)
let cache_bench case =
  let fn = case.c_build () in
  case.c_sched fn;
  let lowered = P.lower fn in
  let extents = P.extents_of_fn fn ~params:case.c_params in
  let build () =
    P.build_stmt ~params:case.c_params ~extents ~inputs:case.c_inputs
      lowered.Lower.ast
  in
  let cold =
    Array.init 3 (fun _ ->
        P.clear_cache ();
        let art, ms = Common.time_ms build in
        assert (art.P.cache = P.Miss);
        ms)
  in
  ignore (build ());
  let hit =
    Array.init 20 (fun _ ->
        let art, ms = Common.time_ms build in
        if art.P.cache <> P.Hit then
          failwith (case.c_name ^ ": warm-cache rebuild was not a cache hit");
        ms)
  in
  (* A hit is a pure in-memory lookup + blit, so timer/scheduler noise is
     strictly additive: min is the faithful estimator, where a median over
     a handful of microsecond-scale samples is hostage to one descheduled
     run. Cold compiles do real work, so the median is kept there. *)
  let cold_ms = (stats_of cold).s_median
  and hit_ms = (stats_of hit).s_min in
  if cold_ms < 10.0 *. hit_ms then
    failwith
      (Printf.sprintf
         "%s: warm-cache recompile only %.1fx faster than cold (cold %.4f \
          ms, hit %.4f ms); expected >= 10x"
         case.c_name (cold_ms /. hit_ms) cold_ms hit_ms);
  (cold_ms, hit_ms)

(* A differential-verification probe over the case's own inputs and output
   buffers: verifiable statement passes interp the IR before and after on
   this probe and require bitwise-equal outputs. *)
let probe_of case fn =
  (* lowering materializes the auto and input buffers (idempotently), so
     the probe's extents cover every buffer the interpreter needs *)
  ignore (P.lower fn : Lower.t);
  {
    P.probe_params = case.c_params;
    probe_extents = P.extents_of_fn fn ~params:case.c_params;
    probe_fills = case.c_inputs;
    probe_outputs = case.c_outputs;
  }

(* One traced build per kernel (cold, so every pass actually runs), with
   the probe attached: smoke-path compiles carry per-pass differential
   verification rather than reporting every row "skipped". *)
let trace_case case =
  let fn = case.c_build () in
  case.c_sched fn;
  P.clear_cache ();
  let tracer = P.make_tracer ~probe:(probe_of case fn) ~name:case.c_name () in
  ignore
    (Runner.build_native ~tracer ~fn ~params:case.c_params
       ~inputs:case.c_inputs ());
  P.trace_of tracer

(* Per-rep wall-clock samples of Exec.run (one warmup run, which also
   surfaces any bounds failure before we start timing).  Returns the whole
   pipeline artifact so callers can read the planner report alongside the
   executor counters. *)
let time_exec ?(tape = true) ?lanes ~reps case strategy =
  let fn = case.c_build () in
  case.c_sched fn;
  let art =
    Runner.build_native
      ~target:(B.Target.cpu ~parallel:strategy ())
      ~tape ?lanes ~fn ~params:case.c_params
      ~inputs:case.c_inputs ()
  in
  let c = art.P.exec in
  B.Exec.run c;
  let samples =
    Array.init reps (fun _ ->
        let (), ms = Common.time_ms (fun () -> B.Exec.run c) in
        ms)
  in
  (art, stats_of samples)

(* The scaling sweep: the same kernel, pool strategy, at 1/2/4 workers.
   The compile-cache key includes the pool environment, so each size gets
   its own honestly planned compile (at 1 worker the planner serializes
   everything and the sweep's base point is the sequential code). *)
let sweep_points = [ 1; 2; 4 ]

let sweep_workers ?(tape = true) ~reps case =
  let saved = B.Pool.num_workers () in
  Fun.protect
    ~finally:(fun () -> B.Pool.set_num_workers saved)
    (fun () ->
      List.map
        (fun w ->
          B.Pool.set_num_workers w;
          let _, st = time_exec ~tape ~reps case `Pool in
          (w, st))
        sweep_points)

(* The specialization/demotion counters are snapshotted per compile (atomic
   during compilation, frozen in the compiled value): recompiling the same
   case must report identical numbers, and the strategies that never demote
   must report zero fallbacks.  Benchmarks compile each strategy separately,
   so accumulating or shared counters would silently corrupt the
   [specialized]/[pool_fallbacks] columns — fail fast instead. *)
let assert_counters case =
  let compile strategy =
    let fn = case.c_build () in
    case.c_sched fn;
    Runner.prepare_native
      ~target:(B.Target.cpu ~parallel:strategy ())
      ~fn ~params:case.c_params
      ~inputs:case.c_inputs ()
  in
  let p1 = compile `Pool and p2 = compile `Pool in
  assert (B.Exec.spec_count p1 = B.Exec.spec_count p2);
  assert (B.Exec.pool_fallbacks p1 = B.Exec.pool_fallbacks p2);
  assert (B.Exec.tape_count p1 = B.Exec.tape_count p2);
  assert (B.Exec.tape_instrs p1 = B.Exec.tape_instrs p2);
  assert (B.Exec.pool_fallbacks (compile `Seq) = 0);
  assert (B.Exec.pool_fallbacks (compile `Spawn) = 0);
  (* the tape=off control must really be closure-only *)
  let fn = case.c_build () in
  case.c_sched fn;
  let off =
    Runner.prepare_native
      ~target:(B.Target.cpu ~parallel:`Pool ())
      ~tape:false ~fn
      ~params:case.c_params ~inputs:case.c_inputs ()
  in
  assert (B.Exec.tape_count off = 0 && B.Exec.tape_instrs off = 0)

let bench_case ~reps case =
  assert_counters case;
  let fn = case.c_build () in
  case.c_sched fn;
  let (_ : B.Interp.t), interp_ms =
    Common.time_ms (fun () ->
        Runner.run ~fn ~params:case.c_params ~inputs:case.c_inputs)
  in
  let a, seq = time_exec ~reps case `Seq in
  let _, seq_notape = time_exec ~tape:false ~reps case `Seq in
  let _, seq_nolanes = time_exec ~lanes:1 ~reps case `Seq in
  let _, spawn = time_exec ~reps case `Spawn in
  let ap, pool = time_exec ~reps case `Pool in
  let sweep = sweep_workers ~reps case in
  let sweep_notape = sweep_workers ~tape:false ~reps case in
  let cold_ms, hit_ms = cache_bench case in
  let plan = ap.P.plan_report in
  {
    r_case = case;
    r_meta = B.Exec.meta a.P.exec;
    r_spec = B.Exec.spec_count a.P.exec;
    r_fallback = B.Exec.pool_fallbacks ap.P.exec;
    r_coalesced = plan.Plan.r_coalesced;
    r_fused_levels = plan.Plan.r_fused_levels;
    r_serialized = plan.Plan.r_serialized;
    r_static = B.Exec.static_count ap.P.exec;
    r_tape = B.Exec.tape_count a.P.exec;
    r_tape_vec = B.Exec.tape_vec_count a.P.exec;
    r_lanes = B.Exec.tape_lanes a.P.exec;
    r_tape_instr = B.Exec.tape_instrs a.P.exec;
    (* read after the timing reps: accumulates every entry that fell back *)
    r_tape_fb = B.Exec.tape_fallbacks a.P.exec;
    r_interp_ms = interp_ms;
    r_seq = seq;
    r_seq_notape = seq_notape;
    r_seq_nolanes = seq_nolanes;
    r_spawn = spawn;
    r_pool = pool;
    r_sweep = sweep;
    r_sweep_notape = sweep_notape;
    r_cold_ms = cold_ms;
    r_hit_ms = hit_ms;
  }

let json_of_row ~reps r =
  let m = r.r_meta in
  let sweep_str sweep =
    String.concat ", "
      (List.map
         (fun (w, st) ->
           Printf.sprintf
             {|{ "workers": %d, "median_ms": %.4f, "min_ms": %.4f }|} w
             st.s_median st.s_min)
         sweep)
  in
  let sweep_json = sweep_str r.r_sweep in
  let sweep_notape_json = sweep_str r.r_sweep_notape in
  let scaling =
    (* parallel efficiency at the sweep's widest point: (t_1 / t_w) / w *)
    match (List.assoc_opt 1 r.r_sweep, List.rev r.r_sweep) with
    | Some one, (w, wide) :: _ when w > 1 ->
        one.s_median /. wide.s_median /. float_of_int w
    | _ -> 1.0
  in
  Printf.sprintf
    {|    { "kernel": "%s", "size": "%s", "reps": %d,
      "loop_meta": { "n_loops": %d, "n_parallel": %d, "n_nested_parallel": %d, "max_depth": %d, "n_specializable": %d },
      "specialized": %d, "pool_fallbacks": %d,
      "coalesced": %d, "fused_levels": %d, "plan_serialized": %d, "static_sched": %d,
      "tape_compiled": %d, "tape_instr_count": %d, "tape_fallbacks": %d,
      "vector_claimed": %d, "lane_width": %d,
      "interp_ms": %.4f,
      "exec_seq_ms": %.4f, "exec_seq_median_ms": %.4f, "exec_seq_min_ms": %.4f,
      "exec_seq_notape_median_ms": %.4f,
      "exec_seq_scalar_tape_median_ms": %.4f,
      "exec_spawn_ms": %.4f, "exec_spawn_median_ms": %.4f, "exec_spawn_min_ms": %.4f,
      "exec_pool_ms": %.4f, "exec_pool_median_ms": %.4f, "exec_pool_min_ms": %.4f,
      "workers_sweep": [ %s ],
      "workers_sweep_notape": [ %s ],
      "scaling_efficiency": %.3f,
      "compile_cold_ms": %.4f, "cache_hit_ms": %.4f, "cache_speedup": %.1f,
      "speedup_exec_vs_interp": %.2f, "speedup_pool_vs_spawn": %.2f, "speedup_pool_vs_seq": %.2f,
      "speedup_tape_vs_closure_seq": %.2f,
      "speedup_vector_vs_scalar_tape": %.2f }|}
    r.r_case.c_name r.r_case.c_size reps m.L.n_loops m.L.n_parallel
    m.L.n_nested_parallel m.L.max_depth m.L.n_specializable r.r_spec
    r.r_fallback r.r_coalesced r.r_fused_levels r.r_serialized r.r_static
    r.r_tape r.r_tape_instr r.r_tape_fb
    r.r_tape_vec r.r_lanes
    r.r_interp_ms r.r_seq.s_mean r.r_seq.s_median r.r_seq.s_min
    r.r_seq_notape.s_median r.r_seq_nolanes.s_median
    r.r_spawn.s_mean r.r_spawn.s_median r.r_spawn.s_min r.r_pool.s_mean
    r.r_pool.s_median r.r_pool.s_min sweep_json sweep_notape_json scaling
    r.r_cold_ms r.r_hit_ms
    (r.r_cold_ms /. r.r_hit_ms)
    (r.r_interp_ms /. r.r_seq.s_median)
    (r.r_spawn.s_median /. r.r_pool.s_median)
    (r.r_seq.s_median /. r.r_pool.s_median)
    (r.r_seq_notape.s_median /. r.r_seq.s_median)
    (r.r_seq_nolanes.s_median /. r.r_seq.s_median)

let run ?(smoke = false) () =
  let reps = if smoke then 1 else 15 in
  let w = workers () in
  let assumed = assume_cores () in
  let min_work = B.Pool.min_work () in
  Common.pf
    "\nExec strategies (workers=%d, assumed_cores=%d, reps=%d, \
     pool_min_work=%d%s)\n"
    w assumed reps min_work
    (if smoke then ", smoke" else "");
  Common.pf "%-22s %-16s %10s %10s %10s %10s %5s %5s %5s %5s %5s %12s %10s\n"
    "kernel" "size" "interp ms" "seq ms" "spawn ms" "pool ms" "spec" "coal"
    "stat" "tape" "vec" "pool/spawn" "hit ms";
  let rows = List.map (bench_case ~reps) (cases ~smoke) in
  List.iter
    (fun r ->
      Common.pf
        "%-22s %-16s %10.3f %10.3f %10.3f %10.3f %5d %5d %5d %5d %5d \
         %11.2fx %10.4f\n"
        r.r_case.c_name r.r_case.c_size r.r_interp_ms r.r_seq.s_median
        r.r_spawn.s_median r.r_pool.s_median r.r_spec r.r_coalesced r.r_static
        r.r_tape r.r_tape_vec
        (r.r_spawn.s_median /. r.r_pool.s_median)
        r.r_hit_ms;
      Common.pf "%-22s   workers sweep:%s\n" ""
        (String.concat ""
           (List.map
              (fun (w, st) -> Printf.sprintf "  %dw %.3f ms" w st.s_median)
              r.r_sweep)))
    rows;
  if smoke then Common.pf "smoke mode: BENCH_exec.json left untouched\n"
  else begin
    (* The header records the machine the numbers were taken on AND which
       regime the smoke gate would run in there: consumers of the JSON can
       tell a "pool won" claim from a "pool merely didn't lose" one. *)
    let effective = B.Pool.effective_parallelism () in
    let gate_mode =
      if effective > 1 then "scaling-1.5x" else "never-lose-1.1x"
    in
    let oc = open_out "BENCH_exec.json" in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"exec\",\n\
      \  \"workers\": %d,\n\
      \  \"assumed_cores\": %d,\n\
      \  \"effective_cpus\": %d,\n\
      \  \"gate_mode\": \"%s\",\n\
      \  \"pool_min_work\": %d,\n\
      \  \"kernels\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      w assumed effective gate_mode min_work
      (String.concat ",\n" (List.map (json_of_row ~reps) rows));
    close_out oc;
    Common.pf "wrote BENCH_exec.json\n";
    (* Per-pass pipeline trace for every bench kernel, next to the timing
       numbers. *)
    P.write_traces "BENCH_pass_trace.json"
      (List.map trace_case (cases ~smoke));
    Common.pf "wrote BENCH_pass_trace.json\n"
  end

(* The `make bench-smoke` gate, in two regimes decided by what the OS
   actually grants (no TIRAMISU_ASSUME_CORES here — the point is exactly
   that planning for cores the OS does not grant must not be forced on
   users):

   - real multicore: with the tape executor the pool must now {e win} —
     at 4 workers at least 2 of the 3 kernels must run >= 1.5x faster
     than sequential, by min-over-reps;
   - single effective CPU: a pool can only time-slice, so the old
     never-lose bound applies per kernel — pool within 1.1x of seq (plus
     a 50µs noise floor), which holds because the planner serializes
     every pool loop. *)
let smoke_gate () =
  ignore (workers ());
  let reps = 10 in
  let multicore = B.Pool.effective_parallelism () > 1 in
  let measure case =
    let _, seq = time_exec ~reps case `Seq in
    let _, pool = time_exec ~reps case `Pool in
    Common.pf "bench-smoke %-22s seq %8.3f ms   pool %8.3f ms   (%.2fx)\n"
      case.c_name seq.s_min pool.s_min
      (pool.s_min /. seq.s_min);
    (case.c_name, seq, pool)
  in
  let rows = List.map measure (cases ~smoke:true) in
  if multicore then begin
    let winners =
      List.filter (fun (_, seq, pool) -> seq.s_min >= 1.5 *. pool.s_min) rows
    in
    if List.length winners >= 2 then
      Common.pf
        "bench-smoke: pool >= 1.5x seq at %d workers on %d/%d kernels\n"
        (B.Pool.num_workers ()) (List.length winners) (List.length rows)
    else begin
      Common.pf
        "bench-smoke FAILED: pool >= 1.5x seq on only %d/%d kernels (need \
         >= 2)\n"
        (List.length winners) (List.length rows);
      exit 1
    end
  end
  else begin
    (* Self-degrading silently is how a perf regression hides on a starved
       CI box: one loud, unmissable line, on stderr, every time. *)
    Printf.eprintf
      "bench-smoke WARNING: only %d effective CPU(s) — the >= 1.5x pool \
       scaling gate is DEGRADED to the 1.1x never-lose bound; scaling is \
       NOT being verified on this machine\n%!"
      (B.Pool.effective_parallelism ());
    let failures =
      List.filter
        (fun (_, seq, pool) -> pool.s_min > (1.1 *. seq.s_min) +. 0.05)
        rows
    in
    match failures with
    | [] -> Common.pf "bench-smoke: pool within 1.1x of seq on every kernel\n"
    | fs ->
        Common.pf "bench-smoke FAILED: pool slower than 1.1x seq on: %s\n"
          (String.concat ", " (List.map (fun (n, _, _) -> n) fs));
        exit 1
  end;
  (* The vector sub-gate compares the lane-batched tape against the
     forced-scalar tape on purely sequential timings, so it is honest on
     a single-CPU box — no regime split.  The accumulator kernel (sgemm)
     stays scalar by design, hence >= 2 of 3, not 3 of 3. *)
  let vec_rows =
    List.map
      (fun case ->
        let a, vec = time_exec ~reps case `Seq in
        let _, scalar = time_exec ~lanes:1 ~reps case `Seq in
        Common.pf
          "bench-smoke %-22s scalar-tape %8.3f ms   vector %8.3f ms   \
           (%.2fx, %d nests @ %d lanes)\n"
          case.c_name scalar.s_min vec.s_min
          (scalar.s_min /. vec.s_min)
          (B.Exec.tape_vec_count a.P.exec)
          (B.Exec.tape_lanes a.P.exec);
        (case.c_name, scalar, vec))
      (cases ~smoke:true)
  in
  let vec_winners =
    List.filter
      (fun (_, scalar, vec) -> scalar.s_min >= 1.2 *. vec.s_min)
      vec_rows
  in
  if List.length vec_winners >= 2 then
    Common.pf "bench-smoke: vector tape >= 1.2x scalar tape on %d/%d kernels\n"
      (List.length vec_winners) (List.length vec_rows)
  else begin
    Common.pf
      "bench-smoke FAILED: vector tape >= 1.2x scalar tape on only %d/%d \
       kernels (need >= 2)\n"
      (List.length vec_winners) (List.length vec_rows);
    exit 1
  end
