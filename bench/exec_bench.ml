(* Wall-clock benchmark of the compiled backend's execution strategies:
   reference interpreter vs. sequential exec vs. the seed's per-loop-entry
   [Domain.spawn] strategy vs. the persistent domain pool.  Emits a
   machine-readable BENCH_exec.json next to the human-readable table.

   The interesting cases are kernels whose [Parallel] loop is entered many
   times per run (inner-parallel blur, unfused nb): there the per-entry
   spawn/join cost of the seed strategy dominates and the pool wins. *)

open Tiramisu_kernels
open Tiramisu_core
open Tiramisu
module B = Tiramisu_backends
module L = Tiramisu_codegen.Loop_ir

let reps = 15

(* The container may expose a single core; force a real pool so the
   strategies differ (TIRAMISU_NUM_DOMAINS still wins if set). *)
let workers () =
  (match Sys.getenv_opt "TIRAMISU_NUM_DOMAINS" with
  | Some _ -> ()
  | None -> B.Pool.set_num_workers 4);
  B.Pool.num_workers ()

let img3 (idx : int array) =
  float_of_int (((idx.(0) * 13) + (idx.(1) * 7) + (idx.(2) * 3)) mod 31) /. 7.0

(* blur with the parallel tag on the second tile loop (j0): the Parallel
   For is entered once per i0 iteration — a multi-entry parallel loop. *)
let blur_inner_par ?(t = 16) f =
  let bx = find_comp f "bx" and by = find_comp f "by" in
  tile by "i" "j" t t "i0" "j0" "i1" "j1";
  parallelize by "j0";
  compute_at bx by "j0";
  vectorize by "j1" 8

type case = {
  c_name : string;
  c_size : string;
  c_params : (string * int) list;
  c_inputs : (string * (int array -> float)) list;
  c_build : unit -> Tiramisu_core.Ir.fn;
  c_sched : Tiramisu_core.Ir.fn -> unit;
}

let cases =
  [
    {
      c_name = "blur_inner_parallel";
      c_size = "N=96 M=64 t=8";
      c_params = [ ("N", 96); ("M", 64) ];
      c_inputs = [ ("img", img3) ];
      c_build =
        (fun () ->
          let f, _, _ = Image.blur () in
          f);
      c_sched = blur_inner_par ~t:8;
    };
    {
      c_name = "nb_unfused";
      c_size = "N=192 M=192";
      c_params = [ ("N", 192); ("M", 192) ];
      c_inputs = [ ("img", img3) ];
      c_build =
        (fun () ->
          let f, _, _, _, _ = Image.nb () in
          f);
      c_sched = Schedules.cpu_nb ~fuse:false;
    };
    {
      c_name = "sgemm_tuned";
      c_size = "S=64";
      c_params = [ ("S", 64) ];
      c_inputs =
        [ ("A", fun i -> float_of_int (((i.(0) * 7) + (i.(1) * 3)) mod 11));
          ("B", fun i -> float_of_int (((i.(0) * 5) + i.(1)) mod 9));
          ("C0", fun i -> float_of_int ((i.(0) + i.(1)) mod 7)) ];
      c_build =
        (fun () ->
          let f, _, _ = Linalg.sgemm () in
          f);
      c_sched = Linalg.sgemm_tuned ~bi:8 ~bj:8 ~bk:8 ~vec:4 ~unr:2;
    };
  ]

type row = {
  r_case : case;
  r_meta : L.loop_meta;
  r_interp_ms : float;
  r_seq_ms : float;
  r_spawn_ms : float;
  r_pool_ms : float;
}

(* Mean wall-clock per Exec.run over [reps] repetitions (one warmup run,
   which also surfaces any bounds failure before we start timing). *)
let time_exec case strategy =
  let fn = case.c_build () in
  case.c_sched fn;
  let c =
    Runner.prepare_native ~parallel:strategy ~fn ~params:case.c_params
      ~inputs:case.c_inputs ()
  in
  B.Exec.run c;
  let (), total =
    Common.time_ms (fun () ->
        for _ = 1 to reps do
          B.Exec.run c
        done)
  in
  (c, total /. float_of_int reps)

let bench_case case =
  let fn = case.c_build () in
  case.c_sched fn;
  let (_ : B.Interp.t), interp_ms =
    Common.time_ms (fun () ->
        Runner.run ~fn ~params:case.c_params ~inputs:case.c_inputs)
  in
  let c, seq_ms = time_exec case `Seq in
  let _, spawn_ms = time_exec case `Spawn in
  let _, pool_ms = time_exec case `Pool in
  {
    r_case = case;
    r_meta = B.Exec.meta c;
    r_interp_ms = interp_ms;
    r_seq_ms = seq_ms;
    r_spawn_ms = spawn_ms;
    r_pool_ms = pool_ms;
  }

let json_of_row r =
  let m = r.r_meta in
  Printf.sprintf
    {|    { "kernel": "%s", "size": "%s", "reps": %d,
      "loop_meta": { "n_loops": %d, "n_parallel": %d, "n_nested_parallel": %d, "max_depth": %d },
      "interp_ms": %.4f, "exec_seq_ms": %.4f, "exec_spawn_ms": %.4f, "exec_pool_ms": %.4f,
      "speedup_exec_vs_interp": %.2f, "speedup_pool_vs_spawn": %.2f, "speedup_pool_vs_seq": %.2f }|}
    r.r_case.c_name r.r_case.c_size reps m.L.n_loops m.L.n_parallel
    m.L.n_nested_parallel m.L.max_depth r.r_interp_ms r.r_seq_ms r.r_spawn_ms
    r.r_pool_ms
    (r.r_interp_ms /. r.r_seq_ms)
    (r.r_spawn_ms /. r.r_pool_ms)
    (r.r_seq_ms /. r.r_pool_ms)

let run () =
  let w = workers () in
  Common.pf "\nExec strategies (workers=%d, reps=%d)\n" w reps;
  Common.pf "%-22s %-16s %10s %10s %10s %10s %12s\n" "kernel" "size"
    "interp ms" "seq ms" "spawn ms" "pool ms" "pool/spawn";
  let rows = List.map bench_case cases in
  List.iter
    (fun r ->
      Common.pf "%-22s %-16s %10.3f %10.3f %10.3f %10.3f %11.2fx\n"
        r.r_case.c_name r.r_case.c_size r.r_interp_ms r.r_seq_ms r.r_spawn_ms
        r.r_pool_ms
        (r.r_spawn_ms /. r.r_pool_ms))
    rows;
  let oc = open_out "BENCH_exec.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"exec\",\n  \"workers\": %d,\n  \"kernels\": [\n%s\n  ]\n}\n"
    w
    (String.concat ",\n" (List.map json_of_row rows));
  close_out oc;
  Common.pf "wrote BENCH_exec.json\n"
