(* Autoscheduler benchmark: run the measurement-driven beam search
   (Tiramisu_autosched.Search) on the three exec-bench kernels and compare
   the searched schedule against the default (unscheduled), the hand-tuned
   expert schedule, and the Pluto-style baseline — all measured through
   the same Pipeline.build path the search itself measures with.

   Full mode writes BENCH_autosched.json: per kernel, the four medians,
   the search counters (enumerated / oracle-rejected / measured / early
   cutoffs), the compile-cache hit rate during the search, and the
   best-ms-vs-candidates-measured trajectory.  Smoke mode (`make
   autosched-smoke`) runs a tightly budgeted search at small extents and
   gates on: searched <= default (the incumbent starts at the default
   schedule, so the search can never regress it), the winner replaying
   bit-exactly against the interpreter, and the JSON matching the golden
   schema in bench/autosched.golden (regenerate with
   TIRAMISU_UPDATE_GOLDEN=1). *)

module P = Tiramisu_pipeline.Pipeline
module B = Tiramisu_backends
module S = Tiramisu_autosched.Search
module Sp = Tiramisu_autosched.Sched_space
module A = Tiramisu_autosched.Autosched

let golden_path = "bench/autosched.golden"

(* Median wall-clock of a schedule, measured exactly like the search
   measures its candidates: sequential strategy, tape on, through the
   compile cache. *)
let measure_ms ~reps (case : Exec_bench.case) sched =
  let fn = case.Exec_bench.c_build () in
  sched fn;
  let knobs = { P.default_knobs with P.target = B.Target.cpu ~parallel:`Seq () } in
  let art =
    P.build ~knobs ~fn ~params:case.Exec_bench.c_params
      ~inputs:case.Exec_bench.c_inputs ()
  in
  B.Exec.run art.P.exec;
  let samples =
    Array.init reps (fun _ ->
        let t0 = B.Clock.now_ms () in
        B.Exec.run art.P.exec;
        B.Clock.now_ms () -. t0)
  in
  Array.sort compare samples;
  let n = Array.length samples in
  if n mod 2 = 1 then samples.(n / 2)
  else (samples.((n / 2) - 1) +. samples.(n / 2)) /. 2.0

let config ~smoke =
  if smoke then
    {
      S.default_config with
      S.beam_width = 3;
      measure_top = 3;
      rounds = 2;
      reps = 3;
      budget_ms = 12_000.0;
      max_frontier = 50;
      menu =
        {
          Sp.tile_sizes = [ 8 ];
          split_factors = [ 8 ];
          vec_widths = [ 4 ];
          unroll_factors = [ 2 ];
          lane_widths = [ 1; 4 ];
        };
    }
  else
    {
      S.default_config with
      S.beam_width = 6;
      measure_top = 6;
      rounds = 3;
      reps = 5;
      budget_ms = 60_000.0;
      max_frontier = 250;
    }

type row = {
  r_case : Exec_bench.case;
  r_hand_ms : float;
  r_pluto_ms : float;
  r_res : S.result;
}

let json_of_row r =
  let res = r.r_res in
  let hit_rate =
    let total = res.S.r_cache_hits + res.S.r_cache_misses in
    if total = 0 then 0.0
    else float_of_int res.S.r_cache_hits /. float_of_int total
  in
  let traj =
    String.concat ", "
      (List.map
         (fun (t : S.trajectory_point) ->
           Printf.sprintf "{\"candidates\": %d, \"best_ms\": %.4f}"
             t.S.tp_candidates t.S.tp_best_ms)
         res.S.r_trajectory)
  in
  String.concat "\n"
    [
      "  {";
      Printf.sprintf "    \"kernel\": %S," r.r_case.Exec_bench.c_name;
      Printf.sprintf "    \"size\": %S," r.r_case.Exec_bench.c_size;
      Printf.sprintf "    \"default_ms\": %.4f," res.S.r_default_ms;
      Printf.sprintf "    \"hand_ms\": %.4f," r.r_hand_ms;
      Printf.sprintf "    \"pluto_ms\": %.4f," r.r_pluto_ms;
      Printf.sprintf "    \"searched_ms\": %.4f," res.S.r_best_ms;
      Printf.sprintf "    \"speedup_vs_default\": %.3f,"
        (res.S.r_default_ms /. res.S.r_best_ms);
      Printf.sprintf "    \"searched_vs_hand\": %.3f,"
        (res.S.r_best_ms /. r.r_hand_ms);
      Printf.sprintf "    \"enumerated\": %d," res.S.r_enumerated;
      Printf.sprintf "    \"vetted\": %d," res.S.r_vetted;
      Printf.sprintf "    \"illegal\": %d," res.S.r_illegal;
      Printf.sprintf "    \"errored\": %d," res.S.r_errored;
      Printf.sprintf "    \"dropped\": %d," res.S.r_dropped;
      Printf.sprintf "    \"measured\": %d," res.S.r_measured;
      Printf.sprintf "    \"cutoffs\": %d," res.S.r_cutoffs;
      Printf.sprintf "    \"cache_hits\": %d," res.S.r_cache_hits;
      Printf.sprintf "    \"cache_misses\": %d," res.S.r_cache_misses;
      Printf.sprintf "    \"cache_hit_rate\": %.3f," hit_rate;
      Printf.sprintf "    \"verified\": %b," res.S.r_verified;
      Printf.sprintf "    \"tape\": %b," res.S.r_best_tape;
      Printf.sprintf "    \"lanes\": %d," res.S.r_best_lanes;
      Printf.sprintf "    \"elapsed_ms\": %.1f," res.S.r_elapsed_ms;
      Printf.sprintf "    \"schedule\": %S," (S.literal res.S.r_best);
      Printf.sprintf "    \"trajectory\": [%s]" traj;
      "  }";
    ]

let json_of_rows rows =
  "[\n" ^ String.concat ",\n" (List.map json_of_row rows) ^ "\n]\n"

(* What the golden pins is the schema, not the numbers: digits collapse to
   N, booleans to B, and the two per-run free-form fields (the winning
   schedule literal and the variable-length trajectory) collapse
   entirely. *)
let normalize s =
  String.concat "\n"
    (List.map
       (fun line ->
         let has sub =
           let n = String.length line and m = String.length sub in
           let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
           go 0
         in
         if has "\"schedule\"" then "    \"schedule\": \"...\","
         else if has "\"trajectory\"" then "    \"trajectory\": [T]"
         else if has "\"verified\"" || has "\"tape\"" then
           let k = String.index line ':' in
           String.sub line 0 (k + 1) ^ " B,"
         else begin
           let buf = Buffer.create (String.length line) in
           let n = String.length line in
           let i = ref 0 in
           while !i < n do
             let c = line.[!i] in
             if c >= '0' && c <= '9' then begin
               Buffer.add_char buf 'N';
               while
                 !i < n
                 &&
                 let c = line.[!i] in
                 (c >= '0' && c <= '9') || c = '.'
               do
                 incr i
               done
             end
             else begin
               Buffer.add_char buf c;
               incr i
             end
           done;
           Buffer.contents buf
         end)
       (String.split_on_char '\n' s))

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let check_golden json =
  let got = normalize json in
  if Sys.getenv_opt "TIRAMISU_UPDATE_GOLDEN" <> None then begin
    let oc = open_out golden_path in
    output_string oc got;
    close_out oc;
    Common.pf "autosched: updated %s\n" golden_path
  end
  else
    let want =
      try normalize (read_file golden_path)
      with Sys_error e ->
        failwith ("autosched: cannot read golden file: " ^ e)
    in
    if not (String.equal got want) then begin
      prerr_endline "autosched: BENCH_autosched.json diverges from the golden schema";
      prerr_endline "autosched: regenerate with TIRAMISU_UPDATE_GOLDEN=1 if intentional";
      exit 1
    end

let gate (r : row) =
  let res = r.r_res in
  let name = r.r_case.Exec_bench.c_name in
  if res.S.r_best_ms > res.S.r_default_ms then
    failwith
      (Printf.sprintf
         "%s: searched schedule (%.4f ms) regressed the default (%.4f ms) \
          — the incumbent invariant is broken"
         name res.S.r_best_ms res.S.r_default_ms);
  if not res.S.r_verified then
    failwith (name ^ ": winning schedule failed bit-exact interpreter replay");
  (match res.S.r_trajectory with
  | [] -> failwith (name ^ ": empty search trajectory")
  | ts ->
      let last = List.nth ts (List.length ts - 1) in
      if last.S.tp_best_ms <> res.S.r_best_ms then
        failwith (name ^ ": trajectory tail disagrees with the reported best"));
  if res.S.r_measured > res.S.r_vetted + 2 then
    (* every measured candidate beyond the default schedule and the
       tape-off probe came out of the vetted pool *)
    failwith (name ^ ": measured more candidates than the oracle vetted")

let run ?(smoke = false) () =
  B.Pool.set_num_workers 4;
  let cfg = config ~smoke in
  let reps = cfg.S.reps in
  let rows =
    List.map
      (fun (case : Exec_bench.case) ->
        let name = case.Exec_bench.c_name in
        let hand_ms = measure_ms ~reps case case.Exec_bench.c_sched in
        let pluto_ms = measure_ms ~reps case (A.apply A.pluto) in
        Common.pf "autosched %s: hand %.3f ms, pluto %.3f ms, searching...\n%!"
          name hand_ms pluto_ms;
        let res =
          Tiramisu_kernels.Runner.autoschedule ~config:cfg ~name
            ~build:case.Exec_bench.c_build ~params:case.Exec_bench.c_params
            ~inputs:case.Exec_bench.c_inputs
            ~outputs:case.Exec_bench.c_outputs ()
        in
        Common.pf
          "autosched %s: default %.3f ms, searched %.3f ms (%.2fx), hand \
           %.3f ms, verified %b, %d measured / %d vetted / %d enumerated, \
           cache %d/%d\n\
           %!"
          name res.S.r_default_ms res.S.r_best_ms
          (res.S.r_default_ms /. res.S.r_best_ms)
          hand_ms res.S.r_verified res.S.r_measured res.S.r_vetted
          res.S.r_enumerated res.S.r_cache_hits
          (res.S.r_cache_hits + res.S.r_cache_misses);
        { r_case = case; r_hand_ms = hand_ms; r_pluto_ms = pluto_ms;
          r_res = res })
      (Exec_bench.cases ~smoke)
  in
  List.iter gate rows;
  let json = json_of_rows rows in
  check_golden json;
  if not smoke then begin
    let oc = open_out "BENCH_autosched.json" in
    output_string oc json;
    close_out oc;
    Common.pf "autosched: wrote BENCH_autosched.json\n"
  end
  else
    Common.pf
      "autosched-smoke: %d kernels searched, incumbents held, winners \
       replayed bit-exactly, schema matches golden\n"
      (List.length rows)
