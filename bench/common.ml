(* Shared helpers for the paper-figure benchmark drivers. *)

open Tiramisu_kernels
module B = Tiramisu_backends

let machine = B.Machine.default

(* Monotonic wall clock (ms) — immune to NTP slews, unlike gettimeofday. *)
let now_ms = B.Clock.now_ms

let time_ms f =
  let t0 = now_ms () in
  let r = f () in
  (r, now_ms () -. t0)

(* Model-estimated execution time (ms) of a scheduled pipeline. *)
let model_ms ?(machine = machine) fn params =
  (Runner.model ~machine ~fn ~params ()).B.Cost.time_ns /. 1e6

let model_report ?(machine = machine) fn params =
  Runner.model ~machine ~fn ~params ()

(* Halide compiled pipeline time (ms). *)
let halide_ms (b : Tiramisu_halide.Hkernels.bench) sched =
  sched ();
  let c =
    Tiramisu_halide.Halide.compile b.Tiramisu_halide.Hkernels.b_pipe
      ~outputs:
        (List.map
           (fun f -> (f, b.Tiramisu_halide.Hkernels.b_out_bounds))
           b.Tiramisu_halide.Hkernels.b_out)
      ~inputs:b.Tiramisu_halide.Hkernels.b_inputs ~params:[]
  in
  (Tiramisu_halide.Halide.estimate ~machine c ~params:[]).B.Cost.time_ns /. 1e6

let pf = Printf.printf

(* Print a one-row normalized table: first entry is the baseline. *)
let normalized_table ~title ~baseline rows =
  pf "\n%s\n%s\n" title (String.make (String.length title) '-');
  let base =
    match List.assoc_opt baseline rows with
    | Some v -> v
    | None -> invalid_arg "normalized_table: missing baseline"
  in
  List.iter
    (fun (name, v) ->
      pf "  %-14s %8.2f ms   normalized %6.2f\n" name v (v /. base))
    rows

let heat_cell = function
  | Some v -> Printf.sprintf "%6.2f" v
  | None -> "     -"
