(* Pipeline smoke gate: compile the three exec-bench kernels through the
   pass-manager API, validate the emitted trace JSON shape against a golden
   file, and assert that a warm-cache recompile of each kernel reports a
   hit.  Part of `make check`.

   Numbers in the JSON (timings, loop counts) vary per machine, so both
   sides are normalized — every digit run collapses to `N` — before the
   comparison; what the golden pins down is the schema: pass names and
   order, field names, verify/cache statuses.  Regenerate with
   TIRAMISU_UPDATE_GOLDEN=1 after an intentional schema change. *)

module P = Tiramisu_pipeline.Pipeline

let golden_path = "bench/pass_trace.golden"

let normalize s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c >= '0' && c <= '9' then begin
      Buffer.add_char buf 'N';
      while
        !i < n
        &&
        let c = s.[!i] in
        (c >= '0' && c <= '9') || c = '.'
      do
        incr i
      done
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  Buffer.contents buf

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let first_diff_line a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | x :: xs, y :: ys -> if String.equal x y then go (i + 1) (xs, ys)
                          else Some (i, x, y)
    | [], [] -> None
    | x :: _, [] -> Some (i, x, "<missing>")
    | [], y :: _ -> Some (i, "<missing>", y)
  in
  go 1 (la, lb)

let run () =
  P.clear_cache ();
  let traces =
    List.map
      (fun (case : Exec_bench.case) ->
        let build tag =
          let fn = case.Exec_bench.c_build () in
          case.Exec_bench.c_sched fn;
          let tracer =
            P.make_tracer
              ~probe:(Exec_bench.probe_of case fn)
              ~name:(case.Exec_bench.c_name ^ tag) ()
          in
          let art =
            Tiramisu_kernels.Runner.build_native ~tracer ~fn
              ~params:case.Exec_bench.c_params
              ~inputs:case.Exec_bench.c_inputs ()
          in
          (art, tracer)
        in
        let cold, tracer = build "" in
        if cold.P.cache <> P.Miss then
          failwith (case.Exec_bench.c_name ^ ": expected a cold-cache miss");
        (* A second build re-lowers to a structurally-equal statement; the
           cache must recognize it through the structural hash. *)
        let warm, _ = build "#warm" in
        if warm.P.cache <> P.Hit then
          failwith
            (case.Exec_bench.c_name
           ^ ": warm-cache recompile did not report a hit");
        let trace = P.trace_of tracer in
        (* The probe must actually engage: at least one verifiable pass
           per kernel differentially verified (not merely skipped), and
           none may report a semantics change. *)
        let verified, mismatched =
          List.fold_left
            (fun (v, m) (p : P.pass_trace) ->
              match p.P.p_verify with
              | P.Verified -> (v + 1, m)
              | P.Mismatch why -> (v, (p.P.p_name ^ ": " ^ why) :: m)
              | P.Skipped -> (v, m))
            (0, []) trace.P.t_passes
        in
        if mismatched <> [] then
          failwith
            (case.Exec_bench.c_name
            ^ ": pass verification mismatch — "
            ^ String.concat "; " mismatched);
        if verified = 0 then
          failwith
            (case.Exec_bench.c_name
           ^ ": no pass was differentially verified (all skipped)");
        trace)
      (Exec_bench.cases ~smoke:true)
  in
  let json =
    "[\n" ^ String.concat ",\n" (List.map P.json_of_trace traces) ^ "\n]\n"
  in
  let got = normalize json in
  if Sys.getenv_opt "TIRAMISU_UPDATE_GOLDEN" <> None then begin
    let oc = open_out golden_path in
    output_string oc got;
    close_out oc;
    Common.pf "pipeline-smoke: updated %s\n" golden_path
  end
  else begin
    let want =
      try normalize (read_file golden_path)
      with Sys_error e ->
        failwith ("pipeline-smoke: cannot read golden file: " ^ e)
    in
    if not (String.equal got want) then begin
      (match first_diff_line want got with
      | Some (line, w, g) ->
          Printf.eprintf
            "pipeline-smoke: trace JSON diverges from %s at line %d\n\
            \  golden: %s\n\
            \  got:    %s\n"
            golden_path line w g
      | None -> ());
      Printf.eprintf
        "pipeline-smoke: regenerate with TIRAMISU_UPDATE_GOLDEN=1 if the \
         schema change is intentional\n";
      exit 1
    end;
    Common.pf
      "pipeline-smoke: %d kernels compiled, trace schema matches golden, \
       warm-cache hits confirmed\n"
      (List.length traces)
  end
