(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (CGO'19).  Run with no argument for everything, or with a
   subset of: fig1 table1 fig5 fig6 fig7 micro. *)

let all =
  [ "fig1"; "table1"; "fig5"; "fig6"; "fig7"; "micro"; "exec"; "autosched";
    "service"; "gpu"; "dist" ]
(* "exec-smoke" is invocable but not part of the default sweep: it is the
   tier-1 fast path (1 rep, tiny sizes, no JSON). *)

let () =
  let requested =
    match Array.to_list Sys.argv with [] | [ _ ] -> all | _ :: rest -> rest
  in
  List.iter
    (fun name ->
      match name with
      | "fig1" -> Fig1.run ()
      | "table1" -> Table1.run ()
      | "fig5" -> Fig5.run ()
      | "fig6" -> Fig6.run ()
      | "fig7" -> Fig7.run ()
      | "micro" -> Micro.run ()
      | "exec" -> Exec_bench.run ()
      | "exec-smoke" -> Exec_bench.run ~smoke:true ()
      | "bench-smoke" -> Exec_bench.smoke_gate ()
      | "pipeline-smoke" -> Pipeline_smoke.run ()
      | "autosched" -> Autosched_bench.run ()
      | "autosched-smoke" -> Autosched_bench.run ~smoke:true ()
      | "service" -> Service_bench.run ()
      | "service-smoke" -> Service_bench.run ~smoke:true ()
      | "gpu" -> Gpu_dist_bench.run_gpu ()
      | "gpu-smoke" -> Gpu_dist_bench.run_gpu ~smoke:true ()
      | "dist" -> Gpu_dist_bench.run_dist ()
      | "dist-smoke" -> Gpu_dist_bench.run_dist ~smoke:true ()
      | other ->
          Printf.eprintf "unknown benchmark %s (available: %s)\n" other
            (String.concat " " all);
          exit 1)
    requested
