(* GPU-sim and distributed backend scaling benchmarks.

   Two artifacts, one driver:

   - BENCH_gpu.json  — the GPU expert schedules (§VI-B) executed on the
     [Target.Gpu_sim] backend across problem sizes, each point verified
     bit-exactly against the reference interpreter.
   - BENCH_dist.json — the Fig. 3c distributed schedules executed on the
     [Target.Distributed] backend across ranks × problem sizes.  Each
     point records the measured in-process time, the exact communication
     volume (messages / bytes from the executor counters), the α–β
     predicted communication cost (alpha·msgs + beta·bytes on the
     machine's network description), and the modeled scaling time
     t₁/ranks + comm — the curve the paper's cluster numbers trace.

   `gpu-smoke` / `dist-smoke` run tiny sizes and validate the normalized
   JSON shape against bench/gpu.golden and bench/dist.golden (same
   digit-collapsing normalization as pipeline-smoke; regenerate with
   TIRAMISU_UPDATE_GOLDEN=1).  Verification is never skipped: even smoke
   mode replays every point against the interpreter. *)

open Tiramisu_kernels
module B = Tiramisu_backends
module P = Tiramisu_pipeline.Pipeline

(* Deterministic input fills (same family as the test suite's). *)
let img3 (idx : int array) =
  float_of_int (((idx.(0) * 13) + (idx.(1) * 7) + (idx.(2) * 3)) mod 31) /. 7.0

let kern3 (idx : int array) =
  [| 0.05; 0.1; 0.05; 0.1; 0.4; 0.1; 0.05; 0.1; 0.05 |].((idx.(0) * 3) + idx.(1))

let params n m = [ ("N", n); ("M", m) ]

(* Compile on [target], verify the output buffer bit-exactly against the
   interpreter on the same scheduled pipeline, then time [reps] runs and
   return (best ms, per-run comm messages, per-run comm bytes).  The comm
   counters are sampled after the single verification run — they
   accumulate across runs, and the per-run exchange volume is what the
   α–β model prices. *)
let run_point ~target ~reps ~fn ~prms ~inputs ~out =
  let interp = Runner.run ~fn ~params:prms ~inputs in
  let ex = Runner.prepare_native ~target ~fn ~params:prms ~inputs () in
  B.Exec.run ex;
  let want = B.Interp.buffer interp out and got = B.Exec.buffer ex out in
  if not (B.Buffers.equal ~eps:0.0 want got) then
    failwith
      (Printf.sprintf "gpu-dist-bench: %s diverges from interpreter on %s" out
         (B.Target.to_key_string target));
  let msgs = B.Exec.comm_msgs ex and bytes = B.Exec.comm_bytes ex in
  let best = ref infinity in
  for _ = 1 to reps do
    let (), ms = Common.time_ms (fun () -> B.Exec.run ex) in
    if ms < !best then best := ms
  done;
  (!best, msgs, bytes)

(* ------------------------------------------------------------------ *)
(* GPU-sim section                                                     *)
(* ------------------------------------------------------------------ *)

type gpu_case = {
  g_name : string;
  g_build : unit -> Tiramisu_core.Ir.fn;
  g_sched : Tiramisu_core.Ir.fn -> unit;
  g_inputs : (string * (int array -> float)) list;
  g_out : string;
}

let gpu_cases =
  [
    {
      g_name = "blur";
      g_build = (fun () -> let f, _, _ = Image.blur () in f);
      g_sched = Schedules.gpu_blur;
      g_inputs = [ ("img", img3) ];
      g_out = "by";
    };
    {
      g_name = "cvtColor";
      g_build = (fun () -> let f, _ = Image.cvt_color () in f);
      g_sched = Schedules.gpu_cvt_color;
      g_inputs = [ ("img", img3) ];
      g_out = "gray";
    };
    {
      g_name = "conv2D";
      g_build = (fun () -> let f, _, _ = Image.conv2d () in f);
      g_sched = Schedules.gpu_conv2d;
      g_inputs = [ ("img", img3); ("weights", kern3) ];
      g_out = "conv";
    };
  ]

let gpu_json ~smoke () =
  let sizes = if smoke then [ 16 ] else [ 32; 64; 128 ] in
  let reps = if smoke then 1 else 5 in
  let target = B.Target.gpu_sim () in
  let kernels =
    List.map
      (fun c ->
        let points =
          List.map
            (fun n ->
              let fn = c.g_build () in
              c.g_sched fn;
              let ms, _, _ =
                run_point ~target ~reps ~fn ~prms:(params n n)
                  ~inputs:c.g_inputs ~out:c.g_out
              in
              Printf.sprintf
                "        { \"n\": %d, \"time_ms\": %.6f, \"verified\": true }"
                n ms)
            sizes
        in
        Printf.sprintf
          "    {\n\
          \      \"name\": \"%s\",\n\
          \      \"points\": [\n\
           %s\n\
          \      ]\n\
          \    }"
          c.g_name
          (String.concat ",\n" points))
      gpu_cases
  in
  Printf.sprintf
    "{\n\
    \  \"bench\": \"gpu-sim\",\n\
    \  \"target\": \"%s\",\n\
    \  \"kernels\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (B.Target.to_key_string target)
    (String.concat ",\n" kernels)

(* ------------------------------------------------------------------ *)
(* Distributed section                                                 *)
(* ------------------------------------------------------------------ *)

type dist_case = {
  d_name : string;
  d_build : unit -> Tiramisu_core.Ir.fn;
  d_sched : Tiramisu_core.Ir.fn -> n:int -> m:int -> nodes:int -> unit;
  d_inputs : (string * (int array -> float)) list;
  d_out : string;
}

let dist_cases =
  [
    {
      d_name = "blur";
      d_build = (fun () -> let f, _, _ = Image.blur () in f);
      d_sched =
        (fun f ~n ~m ~nodes -> Schedules.dist_blur f ~n ~m ~nodes);
      d_inputs = [ ("img", img3) ];
      d_out = "by";
    };
    {
      d_name = "cvtColor";
      d_build = (fun () -> let f, _ = Image.cvt_color () in f);
      d_sched =
        (fun f ~n ~m ~nodes -> Schedules.dist_cvt_color f ~n ~m ~nodes);
      d_inputs = [ ("img", img3) ];
      d_out = "gray";
    };
    {
      d_name = "conv2D";
      d_build = (fun () -> let f, _, _ = Image.conv2d () in f);
      d_sched =
        (fun f ~n ~m ~nodes -> Schedules.dist_conv2d f ~n ~m ~nodes);
      d_inputs = [ ("img", img3); ("weights", kern3) ];
      d_out = "conv";
    };
  ]

let dist_json ~smoke () =
  let sizes = if smoke then [ 16 ] else [ 32; 64; 128 ] in
  let ranks_axis = if smoke then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let reps = if smoke then 1 else 5 in
  let net = Common.machine.B.Machine.net in
  let kernels =
    List.map
      (fun c ->
        let curves =
          List.map
            (fun n ->
              let t1 = ref nan in
              let points =
                List.map
                  (fun ranks ->
                    let fn = c.d_build () in
                    c.d_sched fn ~n ~m:n ~nodes:ranks;
                    let ms, msgs, bytes =
                      run_point
                        ~target:(B.Target.distributed ~ranks ())
                        ~reps ~fn ~prms:(params n n) ~inputs:c.d_inputs
                        ~out:c.d_out
                    in
                    if ranks = 1 then t1 := ms;
                    let comm_ms =
                      ((net.B.Machine.alpha *. float_of_int msgs)
                      +. (net.B.Machine.beta *. float_of_int bytes))
                      /. 1e6
                    in
                    (* The α–β scaling curve: perfect compute scaling of
                       the measured 1-rank time plus the modeled exchange
                       cost — the shape the paper's Fig. 7 axis traces. *)
                    let scaled_ms =
                      (!t1 /. float_of_int ranks) +. comm_ms
                    in
                    Printf.sprintf
                      "          { \"ranks\": %d, \"time_ms\": %.6f, \
                       \"comm_msgs\": %d, \"comm_bytes\": %d, \
                       \"predicted_comm_ms\": %.6f, \"model_scaled_ms\": \
                       %.6f, \"verified\": true }"
                      ranks ms msgs bytes comm_ms scaled_ms)
                  ranks_axis
              in
              Printf.sprintf
                "        {\n\
                \          \"n\": %d,\n\
                \          \"points\": [\n\
                 %s\n\
                \          ]\n\
                \        }"
                n
                (String.concat ",\n" points))
            sizes
        in
        Printf.sprintf
          "    {\n\
          \      \"name\": \"%s\",\n\
          \      \"curves\": [\n\
           %s\n\
          \      ]\n\
          \    }"
          c.d_name
          (String.concat ",\n" curves))
      dist_cases
  in
  Printf.sprintf
    "{\n\
    \  \"bench\": \"dist\",\n\
    \  \"alpha_ns\": %.1f,\n\
    \  \"beta_ns_per_byte\": %.3f,\n\
    \  \"kernels\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    net.B.Machine.alpha net.B.Machine.beta
    (String.concat ",\n" kernels)

(* ------------------------------------------------------------------ *)
(* Golden-schema gate (smoke) / artifact emission (full)               *)
(* ------------------------------------------------------------------ *)

let golden_gate ~tag ~golden_path json =
  let got = Pipeline_smoke.normalize json in
  if Sys.getenv_opt "TIRAMISU_UPDATE_GOLDEN" <> None then begin
    let oc = open_out golden_path in
    output_string oc got;
    close_out oc;
    Common.pf "%s: updated %s\n" tag golden_path
  end
  else begin
    let want =
      try Pipeline_smoke.normalize (Pipeline_smoke.read_file golden_path)
      with Sys_error e ->
        failwith (tag ^ ": cannot read golden file: " ^ e)
    in
    if not (String.equal got want) then begin
      (match Pipeline_smoke.first_diff_line want got with
      | Some (line, w, g) ->
          Printf.eprintf
            "%s: JSON schema diverges from %s at line %d\n\
            \  golden: %s\n\
            \  got:    %s\n"
            tag golden_path line w g
      | None -> ());
      Printf.eprintf
        "%s: regenerate with TIRAMISU_UPDATE_GOLDEN=1 if the schema change \
         is intentional\n"
        tag;
      exit 1
    end;
    Common.pf "%s: every point interpreter-verified, schema matches golden\n"
      tag
  end

let run_gpu ?(smoke = false) () =
  P.clear_cache ();
  let json = gpu_json ~smoke () in
  if smoke then golden_gate ~tag:"gpu-smoke" ~golden_path:"bench/gpu.golden" json
  else begin
    let oc = open_out "BENCH_gpu.json" in
    output_string oc json;
    close_out oc;
    Common.pf "gpu: wrote BENCH_gpu.json (%d kernels)\n" (List.length gpu_cases)
  end

let run_dist ?(smoke = false) () =
  P.clear_cache ();
  let json = dist_json ~smoke () in
  if smoke then
    golden_gate ~tag:"dist-smoke" ~golden_path:"bench/dist.golden" json
  else begin
    let oc = open_out "BENCH_dist.json" in
    output_string oc json;
    close_out oc;
    Common.pf "dist: wrote BENCH_dist.json (%d kernels)\n"
      (List.length dist_cases)
  end
