(* Table I: feature comparison between Tiramisu, AlphaZ, PENCIL, Pluto and
   Halide.  Where this repository implements the relevant machinery, each
   cell is decided by an executable probe against the implementation (not a
   hard-coded string); cells about the original external systems that have
   no analogue here are cited from the paper and marked with '*'. *)

open Tiramisu_presburger
open Tiramisu_core
module D = Tiramisu_deps.Deps
module H = Tiramisu_halide.Halide
module K = Tiramisu_kernels

type cell = Yes | No | Limited | Cited of string

let cell_str = function
  | Yes -> "Yes"
  | No -> "No"
  | Limited -> "Limited"
  | Cited s -> s ^ "*"

let probe f = try f () with _ -> false
let yesno b = if b then Yes else No

(* --- probes against this repository's implementations --- *)

let tiramisu_cpu () =
  probe (fun () ->
      let f, _ = K.Image.cvt_color () in
      K.Schedules.cpu_cvt_color f;
      ignore (Tiramisu_pipeline.Pipeline.lower f);
      true)

let tiramisu_gpu () =
  probe (fun () ->
      let f, _ = K.Image.cvt_color () in
      K.Schedules.gpu_cvt_color f;
      ignore (Tiramisu_pipeline.Pipeline.lower f);
      true)

let tiramisu_dist () =
  probe (fun () ->
      let f, _ = K.Image.cvt_color () in
      K.Schedules.dist_cvt_color f ~n:64 ~m:64 ~nodes:4;
      ignore (Tiramisu_pipeline.Pipeline.lower f);
      true)

let tiramisu_dist_gpu () =
  probe (fun () ->
      (* distribute across nodes, then map the per-node loops to the GPU *)
      let f, _ = K.Image.cvt_color () in
      let g = Tiramisu.find_comp f "gray" in
      Tiramisu.split g "i" 16 "i0" "i1";
      Tiramisu.distribute g "i0";
      Tiramisu.tile_gpu g "i1" "j" 8 8 "ib" "jb" "it" "jt";
      ignore (Tiramisu_pipeline.Pipeline.lower f);
      true)

let tiramisu_skew () =
  probe (fun () ->
      let f = Tiramisu.create ~params:[ "N" ] "skew_probe" in
      let i = Tiramisu.var "i" (Aff.const 0) (Aff.var "N") in
      let j = Tiramisu.var "j" (Aff.const 0) (Aff.var "N") in
      let c = Tiramisu.comp f "s" [ i; j ] (Expr.int 1) in
      Tiramisu.skew c "i" "j" 2;
      ignore (Tiramisu_pipeline.Pipeline.lower f);
      true)

let tiramisu_cyclic () =
  probe (fun () ->
      let f, _, _ = K.Image.edge_detector () in
      ignore (Tiramisu_pipeline.Pipeline.lower f);
      true)

let tiramisu_nonrect () =
  probe (fun () ->
      let f, _ = K.Image.ticket2373 () in
      ignore (Tiramisu_pipeline.Pipeline.lower f);
      true)

let tiramisu_exact_deps () =
  probe (fun () ->
      (* disjoint producer/consumer regions: exact analysis finds no dep *)
      let f = Tiramisu.create ~params:[] "dp" in
      let iw = Tiramisu.var "i" (Aff.const 0) (Aff.const 8) in
      let ir = Tiramisu.var "i" (Aff.const 8) (Aff.const 16) in
      let w = Tiramisu.comp f "w" [ iw ] (Expr.int 1) in
      let r = Tiramisu.comp f "r" [ ir ] (Expr.int 0) in
      r.Ir.expr <- Ir.Access_e ("w", [ Ir.Iter_e "i" ]);
      ignore w;
      D.flow_deps f = [])

let tiramisu_emptiness () =
  probe (fun () ->
      let sp = Space.set_space ~params:[] [ "x" ] in
      let s =
        Iset.of_constraints sp
          [
            Cstr.Eq (Aff.scale 2 (Aff.var "x"), Aff.const 7);
          ]
      in
      Iset.is_empty s)

let halide_cyclic () =
  probe (fun () ->
      let p = H.pipeline "probe" in
      let inp = H.input p "in" 2 in
      let r =
        H.func p "r" [ "i"; "j" ]
          (Ir.Access_e ("in", [ Ir.Iter_e "i"; Ir.Iter_e "j" ]))
      in
      (try
         H.store_in_input r inp;
         true
       with H.Unsupported _ -> false))

let halide_nonrect () =
  probe (fun () ->
      let p = H.pipeline "probe2" in
      let inp = H.input p "in" 1 in
      let t =
        H.func p "t" [ "r"; "x" ]
          (Ir.Access_e ("in", [ Expr.(iter "x" -: iter "r") ]))
      in
      try
        ignore
          (H.compile p
             ~outputs:[ (t, [ (0, 15); (0, 15) ]) ]
             ~inputs:[ (inp, [ (0, 15) ]) ]
             ~params:[]);
        true
      with H.Unsupported _ -> false)

let halide_comm () =
  probe (fun () ->
      (* the mini-Halide API has no send/receive commands at all *)
      false)

let rows () =
  [
    ("CPU code generation",
     [ yesno (tiramisu_cpu ()); Cited "Yes"; Cited "Yes"; Cited "Yes";
       Cited "Yes" ]);
    ("GPU code generation",
     [ yesno (tiramisu_gpu ()); Cited "No"; Cited "Yes"; Cited "Yes";
       Cited "Yes" ]);
    ("Distributed CPU code generation",
     [ yesno (tiramisu_dist ()); Cited "No"; Cited "No"; Cited "Yes";
       Cited "Yes" ]);
    ("Distributed GPU code generation",
     [ yesno (tiramisu_dist_gpu ()); Cited "No"; Cited "No"; Cited "No";
       Cited "No" ]);
    ("Support all affine loop transformations",
     [ yesno (tiramisu_skew ()); Cited "Yes"; Cited "Yes"; Cited "Yes";
       No (* no skew/shift in the interval API *) ]);
    ("Commands for loop transformations",
     [ Yes; Cited "Yes"; Cited "No"; Cited "No"; Yes ]);
    ("Commands for optimizing data accesses",
     [ Yes; Cited "Yes"; Cited "No"; Cited "No"; Yes ]);
    ("Commands for communication",
     [ Yes; Cited "No"; Cited "No"; Cited "No"; yesno (halide_comm ()) ]);
    ("Commands for memory hierarchies",
     [ Yes; Cited "No"; Cited "No"; Cited "No"; Limited ]);
    ("Expressing cyclic data-flow graphs",
     [ yesno (tiramisu_cyclic ()); Cited "Yes"; Cited "Yes"; Cited "Yes";
       yesno (halide_cyclic ()) ]);
    ("Non-rectangular iteration spaces",
     [ yesno (tiramisu_nonrect ()); Cited "Yes"; Cited "Yes"; Cited "Yes";
       (if halide_nonrect () then Limited else No) ]);
    ("Exact dependence analysis",
     [ yesno (tiramisu_exact_deps ()); Cited "Yes"; Cited "Yes"; Cited "Yes";
       No ]);
    ("Compile-time set emptiness check",
     [ yesno (tiramisu_emptiness ()); Cited "Yes"; Cited "Yes"; Cited "Yes";
       No ]);
    ("Implement parametric tiling",
     [ No (* tile factors are integer literals *); Cited "Yes"; Cited "No";
       Cited "No"; Yes (* splits guard the tail at runtime *) ]);
  ]

let run () =
  Printf.printf
    "\nTable I: framework feature comparison\n\
     (probed against this repository's implementations; '*' = cited from \
     the paper for the original external system)\n\n";
  Printf.printf "  %-42s %-10s %-8s %-8s %-8s %-8s\n" "Feature" "Tiramisu"
    "AlphaZ" "PENCIL" "Pluto" "Halide";
  List.iter
    (fun (feat, cells) ->
      match cells with
      | [ t; a; pe; pl; h ] ->
          Printf.printf "  %-42s %-10s %-8s %-8s %-8s %-8s\n" feat
            (cell_str t) (cell_str a) (cell_str pe) (cell_str pl) (cell_str h)
      | _ -> assert false)
    (rows ())
