(* Dependence analysis and legality tests (paper §II, Table I rows "Exact
   dependence analysis" / "Compile-time set emptiness check" / "Expressing
   cyclic data-flow graphs"). *)

open Tiramisu_presburger
open Tiramisu_core
module D = Tiramisu_deps.Deps

let a = Aff.var
let c0 = Aff.const

let make_blur () =
  let f = Tiramisu.create ~params:[ "N"; "M" ] "blur" in
  let i = Tiramisu.var "i" (c0 0) Aff.(a "N" - c0 2) in
  let iby = Tiramisu.var "i" (c0 0) Aff.(a "N" - c0 4) in
  let j = Tiramisu.var "j" (c0 0) Aff.(a "M" - c0 2) in
  let inp =
    Tiramisu.input f "input"
      [ Tiramisu.var "i" (c0 0) (a "N"); Tiramisu.var "j" (c0 0) (a "M") ]
  in
  let open Expr in
  let open Tiramisu in
  let bx =
    comp f "bx" [ i; j ]
      (((inp $ [ x i; x j ]) +: (inp $ [ x i; x j +: int 1 ])) /: float 2.0)
  in
  let by =
    comp f "by" [ iby; j ]
      (((bx $ [ x iby; x j ]) +: (bx $ [ x iby +: int 2; x j ])) /: float 2.0)
  in
  (f, inp, bx, by)

(* A stencil with a self-dependence of distance (1, -1):
   s(i,j) = s(i-1, j+1) + 1. *)
let make_skewed_stencil () =
  let f = Tiramisu.create ~params:[ "N" ] "stencil" in
  let i = Tiramisu.var "i" (c0 1) (a "N") in
  let j = Tiramisu.var "j" (c0 0) Aff.(a "N" - c0 1) in
  let s =
    Tiramisu.comp f "s" [ i; j ]
      Expr.(int 1)
  in
  (* Self-access: s(i,j) reads s(i-1, j+1) where defined. *)
  s.Ir.expr <-
    Ir.Bin_e
      ( Ir.Add,
        Ir.Access_e
          ("s", Expr.[ iter "i" -: int 1; iter "j" +: int 1 ]),
        Ir.Int_e 1 );
  (f, s)

let tests =
  [
    Alcotest.test_case "blur flow deps found" `Quick (fun () ->
        let f, _, bx, by = make_blur () in
        let deps = D.flow_deps f in
        Alcotest.(check int) "one dep (bx->by twice merged per access)" 2
          (List.length deps);
        List.iter
          (fun d ->
            Alcotest.(check string) "src" bx.Ir.comp_name d.D.src.Ir.comp_name;
            Alcotest.(check string) "dst" by.Ir.comp_name d.D.dst.Ir.comp_name)
          deps);
    Alcotest.test_case "default blur schedule is legal" `Quick (fun () ->
        let f, _, _, _ = make_blur () in
        Alcotest.(check int) "no violations" 0
          (List.length (D.check_legality f)));
    Alcotest.test_case "consumer before producer is illegal" `Quick
      (fun () ->
        let f, _, bx, by = make_blur () in
        Tiramisu.before by bx Tiramisu.root;
        Alcotest.(check bool) "violations found" true
          (D.check_legality f <> []));
    Alcotest.test_case "interchange of independent dims is legal" `Quick
      (fun () ->
        let f, _, bx, by = make_blur () in
        Tiramisu.interchange bx "i" "j";
        Tiramisu.interchange by "i" "j";
        Alcotest.(check int) "no violations" 0
          (List.length (D.check_legality f)));
    Alcotest.test_case "self-dependence (1,-1): interchange illegal" `Quick
      (fun () ->
        let f, s = make_skewed_stencil () in
        Alcotest.(check int) "legal before" 0
          (List.length (D.check_legality f));
        Tiramisu.interchange s "i" "j";
        Alcotest.(check bool) "illegal after interchange" true
          (D.check_legality f <> []));
    Alcotest.test_case "self-dependence (1,-1): skewing makes interchange \
                        legal" `Quick (fun () ->
        (* Skew j by 2i: dep distance becomes (1, 1); interchange is then
           legal. This is the affine transformation Halide cannot express. *)
        let f, s = make_skewed_stencil () in
        Tiramisu.skew s "i" "j" 2;
        Tiramisu.interchange s "i" "j";
        Alcotest.(check int) "legal after skew+interchange" 0
          (List.length (D.check_legality f)));
    Alcotest.test_case "vectorizing the dependent dim is illegal-free \
                        (loop preserved)" `Quick (fun () ->
        let f, _, _, by = make_blur () in
        Tiramisu.vectorize by "j" 4;
        Alcotest.(check int) "no violations" 0
          (List.length (D.check_legality f)));
    Alcotest.test_case "cyclic dataflow detected (edgeDetector shape)" `Quick
      (fun () ->
        let f = Tiramisu.create ~params:[ "N" ] "edge" in
        let i = Tiramisu.var "i" (c0 1) Aff.(a "N" - c0 1) in
        let j = Tiramisu.var "j" (c0 1) Aff.(a "N" - c0 1) in
        let r = Tiramisu.comp f "r" [ i; j ] Expr.(int 0) in
        let img = Tiramisu.comp f "img" [ i; j ] Expr.(int 0) in
        (* R reads Img, Img reads R: cyclic. *)
        r.Ir.expr <- Ir.Access_e ("img", Expr.[ iter "i"; iter "j" ]);
        img.Ir.expr <- Ir.Access_e ("r", Expr.[ iter "i"; iter "j" ]);
        Alcotest.(check bool) "cycle" true (D.has_cycle f));
    Alcotest.test_case "blur dataflow is acyclic" `Quick (fun () ->
        let f, _, _, _ = make_blur () in
        Alcotest.(check bool) "no cycle" false (D.has_cycle f));
    Alcotest.test_case "memory deps: two writers, one buffer" `Quick
      (fun () ->
        let f = Tiramisu.create ~params:[ "N" ] "two_writers" in
        let i = Tiramisu.var "i" (c0 0) (a "N") in
        let s1 = Tiramisu.comp f "s1" [ i ] Expr.(int 1) in
        let s2 = Tiramisu.comp f "s2" [ i ] Expr.(int 2) in
        let b = Tiramisu.buffer f "shared" [ a "N" ] in
        Tiramisu.store_in s1 b [ a "i" ];
        Tiramisu.store_in s2 b [ a "i" ];
        let deps = D.memory_deps f in
        let outputs = List.filter (fun d -> d.D.kind = D.Output) deps in
        (* s1/s1, s1/s2, s2/s1, s2/s2 all write the same elements. *)
        Alcotest.(check int) "output deps" 4 (List.length outputs));
    Alcotest.test_case "compute_at coverage holds for blur" `Quick (fun () ->
        let f, _, bx, by = make_blur () in
        Tiramisu.tile by "i" "j" 4 4 "i0" "j0" "i1" "j1";
        Tiramisu.compute_at bx by "j0";
        Alcotest.(check bool) "covered" true (D.compute_at_covered f bx));
    Alcotest.test_case "dependence is exact: no dep between disjoint \
                        regions" `Quick (fun () ->
        (* w writes rows 0..N/2-1; r reads rows N/2..N-1: no flow dep
           (requires exact emptiness over integers). *)
        let f = Tiramisu.create ~params:[] "disjoint" in
        let iw = Tiramisu.var "i" (c0 0) (c0 8) in
        let ir = Tiramisu.var "i" (c0 8) (c0 16) in
        let w = Tiramisu.comp f "w" [ iw ] Expr.(int 1) in
        let r = Tiramisu.comp f "r" [ ir ] Expr.(int 0) in
        r.Ir.expr <- Ir.Access_e ("w", [ Ir.Iter_e "i" ]);
        ignore w;
        (* read of w at i in [8,16) is outside w's domain [0,8): dep empty *)
        Alcotest.(check int) "no deps" 0 (List.length (D.flow_deps f)));
  ]

let () = Alcotest.run "deps" [ ("deps", tests) ]
