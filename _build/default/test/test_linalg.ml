(* Correctness of the §VI-A kernels (sgemm, Conv, VGG, HPCG, Baryon) under
   every schedule used in the evaluation, plus legality and model sanity. *)

open Tiramisu_kernels
module B = Tiramisu_backends
module D = Tiramisu_deps.Deps

let s = 13 (* deliberately not a multiple of the tile sizes *)

let am (idx : int array) =
  float_of_int (((idx.(0) * 7) + (idx.(1) * 3)) mod 11) /. 4.0

let bm (idx : int array) =
  float_of_int (((idx.(0) * 5) + (idx.(1) * 13)) mod 9) /. 3.0

let cm (idx : int array) =
  float_of_int (((idx.(0) * 2) + idx.(1)) mod 7) /. 2.0

let ref_gemm idx =
  let i = idx.(0) and j = idx.(1) in
  let acc = ref (Linalg.beta *. cm [| i; j |]) in
  for k = 0 to s - 1 do
    acc := !acc +. (Linalg.alpha *. am [| i; k |] *. bm [| k; j |])
  done;
  !acc

let gemm_inputs = [ ("A", am); ("B", bm); ("C0", cm) ]

let check name fn ~params ~inputs ~output ~expect =
  match Runner.check ~fn ~params ~inputs ~output ~expect () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (name ^ ": " ^ msg)

let sgemm_tests =
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _, _ = Linalg.sgemm () in
        sched f;
        check name f ~params:[ ("S", s) ] ~inputs:gemm_inputs ~output:"C"
          ~expect:ref_gemm)
  in
  [
    run (fun _ -> ()) "sgemm naive";
    run (Linalg.sgemm_tuned ~bi:4 ~bj:4 ~bk:4 ~vec:2 ~unr:2)
      "sgemm tuned (blocked, vectorized, unrolled, partial tiles)";
    run (Linalg.sgemm_pluto ~t:4) "sgemm pluto-style";
    Alcotest.test_case "sgemm tuned schedule is legal" `Quick (fun () ->
        let f, _, _ = Linalg.sgemm () in
        Linalg.sgemm_tuned ~bi:4 ~bj:4 ~bk:4 ~vec:2 ~unr:2 f;
        Alcotest.(check int) "no violations" 0
          (List.length (D.check_legality f)));
    Alcotest.test_case "illegal sgemm schedule caught (k parallel-reversed)"
      `Quick (fun () ->
        let f, _, upd = Linalg.sgemm () in
        Tiramisu_core.Tiramisu.reverse upd "k";
        Alcotest.(check bool) "violations" true (D.check_legality f <> []));
  ]

(* ---------------- conv layer ---------------- *)

let bsz = 2
let feats = 3
let chans_in = 2
let ydim = 8
let xdim = 7

let conv_params =
  [ ("B", bsz); ("F", feats); ("C", chans_in); ("Y", ydim); ("X", xdim) ]

let conv_in (idx : int array) =
  float_of_int
    (((idx.(0) * 3) + (idx.(1) * 5) + (idx.(2) * 7) + (idx.(3) * 2)) mod 13)
  /. 5.0

let conv_w (idx : int array) =
  float_of_int
    (((idx.(0) * 2) + (idx.(1) * 3) + (idx.(2) * 5) + (idx.(3) * 7)) mod 9)
  /. 8.0

let conv_bias (idx : int array) = float_of_int idx.(0) /. 2.0

let ref_conv_layer idx =
  let b = idx.(0) and f = idx.(1) and y = idx.(2) and x = idx.(3) in
  let acc = ref (conv_bias [| f |]) in
  for c = 0 to chans_in - 1 do
    for ky = 0 to 2 do
      for kx = 0 to 2 do
        acc :=
          !acc
          +. (conv_in [| b; c; y + ky; x + kx |] *. conv_w [| f; c; ky; kx |])
      done
    done
  done;
  !acc

let conv_inputs =
  [ ("conv_in", conv_in); ("conv_w", conv_w); ("conv_bias", conv_bias) ]

let conv_tests =
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _, _, _ = Linalg.conv_layer () in
        sched f;
        check name f ~params:conv_params ~inputs:conv_inputs
          ~output:"conv_out" ~expect:ref_conv_layer)
  in
  [
    run (fun _ -> ()) "conv unscheduled";
    run (fun f -> Linalg.conv_schedule f ~name:"conv") "conv scheduled";
  ]

(* ---------------- VGG block ---------------- *)

let relu v = Float.max 0.0 v

let ref_relu1 b f y x =
  let acc = ref (conv_bias [| f |]) in
  for c = 0 to chans_in - 1 do
    for ky = 0 to 2 do
      for kx = 0 to 2 do
        acc :=
          !acc
          +. (conv_in [| b; c; y + ky; x + kx |]
             *. conv_w [| f; c; ky; kx |])
      done
    done
  done;
  relu !acc

let vgg_w2 (idx : int array) =
  float_of_int
    (((idx.(0) * 5) + (idx.(1) * 2) + (idx.(2) * 3) + (idx.(3) * 4)) mod 7)
  /. 6.0

let vgg_bias2 (idx : int array) = float_of_int (idx.(0) + 1) /. 3.0

let ref_vgg idx =
  let b = idx.(0) and f = idx.(1) and y = idx.(2) and x = idx.(3) in
  let acc = ref (vgg_bias2 [| f |]) in
  for c = 0 to feats - 1 do
    for ky = 0 to 2 do
      for kx = 0 to 2 do
        acc :=
          !acc +. (ref_relu1 b c (y + ky) (x + kx) *. vgg_w2 [| f; c; ky; kx |])
      done
    done
  done;
  relu !acc

let vgg_inputs =
  [
    ("conv_in", conv_in); ("conv1_w", conv_w); ("conv1_bias", conv_bias);
    ("conv2_w", vgg_w2); ("conv2_bias", vgg_bias2);
  ]

let vgg_tests =
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _ = Linalg.vgg_block () in
        sched f;
        check name f ~params:conv_params ~inputs:vgg_inputs ~output:"relu2"
          ~expect:ref_vgg)
  in
  [
    run (fun _ -> ()) "vgg unscheduled";
    run Linalg.vgg_schedule "vgg fused (relu inlined) + vectorized";
  ]

(* ---------------- HPCG stencil ---------------- *)

let g = 8

let pvec (idx : int array) =
  float_of_int (((idx.(0) * 3) + (idx.(1) * 7) + (idx.(2) * 11)) mod 17) /. 4.0

let ref_hpcg idx =
  let i = idx.(0) + 1 and j = idx.(1) + 1 and k = idx.(2) + 1 in
  let acc = ref 0.0 in
  for di = -1 to 1 do
    for dj = -1 to 1 do
      for dk = -1 to 1 do
        let w = if di = 0 && dj = 0 && dk = 0 then 26.0 else -1.0 in
        acc := !acc +. (w *. pvec [| i + di; j + dj; k + dk |])
      done
    done
  done;
  !acc

let hpcg_tests =
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _ = Linalg.hpcg () in
        sched f;
        check name f ~params:[ ("G", g) ] ~inputs:[ ("p", pvec) ] ~output:"q"
          ~expect:ref_hpcg)
  in
  [
    run (fun _ -> ()) "hpcg unscheduled";
    run Linalg.hpcg_schedule "hpcg parallel+vectorized";
  ]

(* ---------------- Baryon contraction ---------------- *)

let tdim = 6
let ddim = 4

let wt (idx : int array) =
  float_of_int (((idx.(0) * 2) + (idx.(1) * 3) + (idx.(2) * 5)) mod 7) /. 3.0

let p1 (idx : int array) = float_of_int (((idx.(0) * 3) + idx.(1)) mod 5) /. 2.0
let p2 (idx : int array) = float_of_int (((idx.(0) * 5) + idx.(1)) mod 7) /. 3.0
let p3 (idx : int array) = float_of_int (((idx.(0) * 7) + idx.(1)) mod 3) /. 1.5

let ref_baryon idx =
  let t = idx.(0) in
  let acc = ref 0.0 in
  for i = 0 to ddim - 1 do
    for j = 0 to ddim - 1 do
      for k = 0 to ddim - 1 do
        acc :=
          !acc
          +. (wt [| i; j; k |] *. p1 [| i; t |] *. p2 [| j; t |]
             *. p3 [| k; t |])
      done
    done
  done;
  !acc

let baryon_tests =
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _, _ = Linalg.baryon () in
        sched f;
        check name f
          ~params:[ ("T", tdim); ("D", ddim) ]
          ~inputs:[ ("w", wt); ("P1", p1); ("P2", p2); ("P3", p3) ]
          ~output:"Bl" ~expect:ref_baryon)
  in
  [
    run (fun _ -> ()) "baryon unscheduled";
    run Linalg.baryon_schedule "baryon vectorized over t";
  ]

(* ---------------- model shape ---------------- *)

let model_tests =
  [
    Alcotest.test_case "sgemm: tuned beats naive and pluto sits between"
      `Quick (fun () ->
        let params = [ ("S", 512) ] in
        let time sched =
          let f, _, _ = Linalg.sgemm () in
          sched f;
          (Runner.model ~fn:f ~params ()).B.Cost.time_ns
        in
        let naive = time (fun _ -> ()) in
        let pluto = time (Linalg.sgemm_pluto ~t:32) in
        let tuned = time (fun f -> Linalg.sgemm_tuned f) in
        Alcotest.(check bool)
          (Printf.sprintf "tuned %.3g < pluto %.3g < naive %.3g" tuned pluto
             naive)
          true
          (tuned < pluto && pluto < naive));
  ]

let () =
  Alcotest.run "linalg"
    [
      ("sgemm", sgemm_tests);
      ("conv", conv_tests);
      ("vgg", vgg_tests);
      ("hpcg", hpcg_tests);
      ("baryon", baryon_tests);
      ("model", model_tests);
    ]
