(* The .tir textual frontend: programs parse into the same pipelines the
   OCaml API builds, including schedules, non-rectangular 'where' clauses
   and set_schedule. *)

module F = Tiramisu_frontend.Frontend
module B = Tiramisu_backends
open Tiramisu_kernels

let blur_src = {|
# the paper's two-stage blur (Fig. 2) with the Fig. 3a schedule
function blur(N, M)

input img[N, M, 3]

comp bx(i in 0..N-2, j in 0..M-2, c in 0..3) =
  (img(i, j, c) + img(i, j+1, c) + img(i, j+2, c)) / 3.0

comp by(i in 0..N-4, j in 0..M-2, c in 0..3) =
  (bx(i, j, c) + bx(i+1, j, c) + bx(i+2, j, c)) / 3.0

schedule
  tile by i j 4 4 i0 j0 i1 j1
  parallelize by i0
  compute_at bx by j0
  vectorize by j1 4
|}

let n = 14
let m = 12

let pix (idx : int array) =
  float_of_int (((idx.(0) * 13) + (idx.(1) * 7) + idx.(2)) mod 19) /. 3.0

let tests =
  [
    Alcotest.test_case "blur.tir matches the reference" `Quick (fun () ->
        let fn = F.parse blur_src in
        let expect idx =
          let bx i j c =
            (pix [| i; j; c |] +. pix [| i; j + 1; c |]
            +. pix [| i; j + 2; c |])
            /. 3.0
          in
          (bx idx.(0) idx.(1) idx.(2)
          +. bx (idx.(0) + 1) idx.(1) idx.(2)
          +. bx (idx.(0) + 2) idx.(1) idx.(2))
          /. 3.0
        in
        match
          Runner.check ~fn
            ~params:[ ("N", n); ("M", m) ]
            ~inputs:[ ("img", pix) ]
            ~output:"by" ~expect ()
        with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "parsed schedule generates the tiled nest" `Quick
      (fun () ->
        let fn = F.parse blur_src in
        let code = Tiramisu_core.Lower.pseudocode fn in
        Alcotest.(check bool) "parallel i0" true
          (Astring.String.is_infix ~affix:"parallel for (i0" code));
    Alcotest.test_case "'where' clause restricts the domain (ticket #2373)"
      `Quick (fun () ->
        let src = {|
function ticket(N)
input img[N]
comp t(r in 0..N, x in 0..N) = img(x - r) where "x >= r"
schedule
  parallelize t r
|}
        in
        let fn = F.parse src in
        (* executing succeeds only because the triangular domain keeps
           x - r in bounds *)
        let interp =
          Runner.run ~fn ~params:[ ("N", 12) ]
            ~inputs:[ ("img", fun idx -> float_of_int idx.(0)) ]
        in
        Alcotest.(check (float 0.001)) "t[0][11]" 11.0
          (B.Buffers.get (B.Interp.buffer interp "t") [| 0; 11 |]));
    Alcotest.test_case "set_schedule via ISL string" `Quick (fun () ->
        let src = {|
function ss(N)
input inp[N, 4]
comp s(i in 0..N, j in 0..4) = inp(i, j) + 1.0
schedule
  set_schedule s "{ s[i, j] -> [t0, t1] : t0 = j and t1 = i }"
|}
        in
        let fn = F.parse src in
        let code = Tiramisu_core.Lower.pseudocode fn in
        Alcotest.(check bool) "j outermost" true
          (Astring.String.is_prefix ~affix:"for (t0" code));
    Alcotest.test_case "parse errors carry line numbers" `Quick (fun () ->
        match F.parse "function f()\ncomp ???" with
        | exception F.Parse_error msg ->
            Alcotest.(check bool) "has line" true
              (Astring.String.is_prefix ~affix:"line 2" msg)
        | _ -> Alcotest.fail "expected parse error");
    Alcotest.test_case "unknown names are rejected" `Quick (fun () ->
        match
          F.parse
            "function f(N)\ncomp s(i in 0..N) = bogus + 1.0"
        with
        | exception F.Parse_error _ -> ()
        | _ -> Alcotest.fail "expected parse error");
  ]

let () = Alcotest.run "frontend" [ ("tir", tests) ]
