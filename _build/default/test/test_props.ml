(* Property-based tests on the loop-IR layer: constant folding and the
   legalization passes must preserve semantics on randomly generated
   programs, and the affine-expression algebra must satisfy its laws. *)

open Tiramisu_codegen
open Tiramisu_presburger
module L = Loop_ir
module B = Tiramisu_backends

(* ---------- random integer expressions over two variables ---------- *)

let expr_gen =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n = 0 then
              oneof
                [ map (fun k -> L.Int k) (int_range (-9) 9);
                  oneofl [ L.Var "x"; L.Var "y" ] ]
            else
              let sub = self (n / 2) in
              oneof
                [
                  map2 (fun a b -> L.Bin (L.Add, a, b)) sub sub;
                  map2 (fun a b -> L.Bin (L.Sub, a, b)) sub sub;
                  map2 (fun a b -> L.Bin (L.Mul, a, b)) sub sub;
                  map2 (fun a b -> L.Bin (L.MinOp, a, b)) sub sub;
                  map2 (fun a b -> L.Bin (L.MaxOp, a, b)) sub sub;
                  map (fun a -> L.Neg a) sub;
                ])
          (min n 6)))

let eval_expr env e =
  let t = B.Interp.create ~params:env () in
  B.Interp.eval_expr t e

let prop_simplify_preserves =
  QCheck.Test.make ~count:500 ~name:"simplify_expr preserves evaluation"
    (QCheck.make expr_gen)
    (fun e ->
      List.for_all
        (fun (x, y) ->
          let env = [ ("x", x); ("y", y) ] in
          Float.abs
            (eval_expr env e -. eval_expr env (L.simplify_expr e))
          < 1e-9)
        [ (0, 0); (1, -3); (-7, 5); (11, 2) ])

(* ---------- legalization passes on random loop nests ---------- *)

(* A random two-level nest accumulating into an output array via the trace
   hook; inner loop optionally tagged Vectorized/Unrolled. *)
let nest_gen =
  QCheck.Gen.(
    let* lo1 = int_range 0 2 and* hi1 = int_range 3 7 in
    let* lo2 = int_range 0 2 and* hi2 = int_range 3 9 in
    let* width = oneofl [ 2; 4; 8 ] in
    let* tag = oneofl [ L.Vectorized 0 (* patched below *); L.Unrolled ] in
    let tag = match tag with L.Vectorized _ -> L.Vectorized width | t -> t in
    let body =
      L.Store
        ( "__trace_s",
          [ L.Var "a"; L.Var "b" ],
          L.(Var "a" +! (Var "b" *! int 3)) )
    in
    return
      (L.For
         {
           var = "a";
           lo = L.Int lo1;
           hi = L.Int hi1;
           tag = L.Seq;
           body =
             L.For
               { var = "b"; lo = L.Int lo2; hi = L.Int hi2; tag; body };
         }))

let trace_of stmt =
  let t = B.Interp.create () in
  let log = ref [] in
  B.Interp.on_store t (fun _ idx v -> log := (Array.to_list idx, v) :: !log);
  B.Interp.run t stmt;
  List.rev !log

let prop_legalize_preserves =
  QCheck.Test.make ~count:300
    ~name:"vector/unroll legalization preserves the store trace"
    (QCheck.make nest_gen)
    (fun nest ->
      (* Order within a vector lane group may be permuted by a real backend,
         but our passes keep sequential semantics: traces must be equal. *)
      trace_of nest = trace_of (Passes.legalize nest))

let prop_subst_var =
  QCheck.Test.make ~count:300 ~name:"subst_var agrees with binding"
    (QCheck.make QCheck.Gen.(pair expr_gen (int_range (-5) 5)))
    (fun (e, v) ->
      let bound = eval_expr [ ("x", v); ("y", 2) ] e in
      let substituted =
        eval_expr
          [ ("y", 2) ]
          (match Passes.subst_var "x" (L.Int v) (L.Store ("__trace_t", [], e)) with
          | L.Store (_, _, e') -> e'
          | _ -> assert false)
      in
      Float.abs (bound -. substituted) < 1e-9)

(* ---------- affine expression algebra ---------- *)

let aff_gen =
  QCheck.Gen.(
    let* c = int_range (-10) 10 in
    let* xs =
      list_size (int_range 0 3)
        (pair (oneofl [ "i"; "j"; "N" ]) (int_range (-6) 6))
    in
    return
      (List.fold_left
         (fun acc (n, k) -> Aff.add acc (Aff.term k n))
         (Aff.const c) xs))

let aff_eval a env = Aff.eval a (fun n -> List.assoc n env)
let env0 = [ ("i", 3); ("j", -2); ("N", 7) ]

let prop_aff_laws =
  QCheck.Test.make ~count:500 ~name:"Aff ring laws under evaluation"
    (QCheck.make QCheck.Gen.(triple aff_gen aff_gen (int_range (-4) 4)))
    (fun (a, b, k) ->
      aff_eval (Aff.add a b) env0 = aff_eval (Aff.add b a) env0
      && aff_eval (Aff.sub a b) env0 = aff_eval a env0 - aff_eval b env0
      && aff_eval (Aff.scale k (Aff.add a b)) env0
         = (k * aff_eval a env0) + (k * aff_eval b env0)
      && Aff.equal (Aff.sub a a) Aff.zero)

let prop_aff_row_roundtrip =
  QCheck.Test.make ~count:500 ~name:"Aff row round-trip"
    (QCheck.make aff_gen)
    (fun a ->
      let cols = [| "i"; "j"; "N" |] in
      Aff.equal a (Aff.of_row ~cols (Aff.to_row ~cols a)))

(* ---------- ISL printer/parser round trip ---------- *)

let prop_isl_roundtrip =
  QCheck.Test.make ~count:200 ~name:"Iset print/parse round-trip"
    (QCheck.make
       QCheck.Gen.(
         let* n = int_range 2 6 in
         let* m = int_range 2 6 in
         let* tri = bool in
         return (n, m, tri)))
    (fun (n, m, tri) ->
      let sp = Space.set_space ~name:"S" ~params:[] [ "i"; "j" ] in
      let s =
        Iset.of_constraints sp
          (Cstr.between (Aff.const 0) (Aff.var "i") (Aff.const n)
          @ Cstr.between (Aff.const 0) (Aff.var "j") (Aff.const m)
          @ if tri then [ Cstr.Le (Aff.var "i", Aff.var "j") ] else [])
      in
      let s' = Isl.parse_set (Iset.to_string s) in
      Iset.equal s s')

(* ---------- random schedule compositions preserve semantics ----------

   The central contract of a scheduling language: any composition of legal
   Table-II commands leaves the computed function unchanged. *)

let cmd_gen =
  QCheck.Gen.(
    int_range 0 7 >|= fun k ->
    (* each command picks its own applicability at run time *)
    k)

let apply_cmd (c : Tiramisu_core.Ir.computation) rng_k step =
  let open Tiramisu_core in
  let dyn () =
    List.map (fun d -> d.Ir.d_name) (Ir.dyn_dims c.Ir.sched)
  in
  let fresh suffix = Printf.sprintf "t%d%s" step suffix in
  match rng_k with
  | 0 -> (
      match dyn () with
      | a :: b :: _ -> Tiramisu.interchange c a b
      | _ -> ())
  | 1 -> (
      match dyn () with
      | a :: _ -> Tiramisu.shift c a 3
      | _ -> ())
  | 2 -> (
      match dyn () with
      | a :: _ -> Tiramisu.split c a 3 (fresh "o") (fresh "i")
      | _ -> ())
  | 3 -> (
      match dyn () with
      | a :: b :: _ -> Tiramisu.skew c a b 2
      | _ -> ())
  | 4 -> (
      match dyn () with
      | a :: b :: _ when a <> b ->
          Tiramisu.tile c a b 4 4 (fresh "a0") (fresh "b0") (fresh "a1")
            (fresh "b1")
      | _ -> ())
  | 5 -> (
      match List.rev (dyn ()) with
      | a :: _ -> Tiramisu.vectorize c a 4
      | _ -> ())
  | 6 -> (
      match dyn () with
      | a :: _ -> Tiramisu.parallelize c a
      | _ -> ())
  | _ -> (
      match List.rev (dyn ()) with
      | a :: _ -> Tiramisu.unroll c a 2
      | _ -> ())

let prop_random_schedules =
  QCheck.Test.make ~count:60
    ~name:"random Table-II command compositions preserve cvtColor"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 5) cmd_gen))
    (fun cmds ->
      let img (idx : int array) =
        float_of_int (((idx.(0) * 11) + (idx.(1) * 5) + idx.(2)) mod 23) /. 3.
      in
      let f, gray = Tiramisu_kernels.Image.cvt_color () in
      List.iteri (fun step k -> apply_cmd gray k step) cmds;
      let expect idx =
        (0.299 *. img [| idx.(0); idx.(1); 0 |])
        +. (0.587 *. img [| idx.(0); idx.(1); 1 |])
        +. (0.114 *. img [| idx.(0); idx.(1); 2 |])
      in
      match
        Tiramisu_kernels.Runner.check ~fn:f
          ~params:[ ("N", 11); ("M", 9) ]
          ~inputs:[ ("img", img) ]
          ~output:"gray" ~expect ()
      with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_report e)

let () =
  Alcotest.run "props"
    [
      ( "loop-ir",
        List.map QCheck_alcotest.to_alcotest
          [ prop_simplify_preserves; prop_legalize_preserves; prop_subst_var ] );
      ( "aff",
        List.map QCheck_alcotest.to_alcotest
          [ prop_aff_laws; prop_aff_row_roundtrip; prop_isl_roundtrip ] );
      ( "schedule-compositions",
        List.map QCheck_alcotest.to_alcotest [ prop_random_schedules ] );
    ]
