(* The automatic-scheduler baseline: correctness under its schedules, and
   the locality pathology the paper attributes to the Pluto objective on
   gaussian (§VI-B-a). *)

open Tiramisu_kernels
module A = Tiramisu_autosched.Autosched
module B = Tiramisu_backends

let n = 14
let m = 12

let img3 (idx : int array) =
  float_of_int (((idx.(0) * 13) + (idx.(1) * 7) + (idx.(2) * 3)) mod 31) /. 7.0

let tests =
  [
    Alcotest.test_case "pluto-scheduled gaussian stays correct" `Quick
      (fun () ->
        let f, _, _ = Image.gaussian () in
        A.apply A.pencil_cpu f;
        let clampi v lo hi = max lo (min hi v) in
        let ref_gx i j c =
          List.fold_left ( +. ) 0.0
            (List.mapi
               (fun k w -> w *. img3 [| i; clampi (j + k - 2) 0 (m - 1); c |])
               Image.gaussian_weights)
        in
        let expect idx =
          let i = idx.(0) and j = idx.(1) and c = idx.(2) in
          List.fold_left ( +. ) 0.0
            (List.mapi
               (fun k w -> w *. ref_gx (clampi (i + k - 2) 0 (n - 1)) j c)
               Image.gaussian_weights)
        in
        match
          Runner.check ~fn:f
            ~params:[ ("N", n); ("M", m) ]
            ~inputs:[ ("img", img3) ]
            ~output:"gy" ~expect ()
        with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "pluto objective sinks the dependent dim (gaussian)"
      `Quick (fun () ->
        (* gy's i carries the stencil dependence: the objective moves it
           innermost, trading spatial locality — the mechanism behind
           PENCIL's 5.82x on gaussian. *)
        let f, _, _ = Image.gaussian () in
        A.apply A.pencil_cpu f;
        let gy = Tiramisu_core.Tiramisu.find_comp f "gy" in
        let dyn =
          List.map (fun d -> d.Tiramisu_core.Ir.d_name)
            (Tiramisu_core.Ir.dyn_dims gy.Tiramisu_core.Ir.sched)
        in
        (* after sinking + tiling, the innermost dynamic dim derives from i *)
        Alcotest.(check bool)
          (String.concat "," dyn)
          true
          (match List.rev dyn with
          | last :: _ -> String.length last > 0 && last.[0] = 'i'
          | [] -> false));
    Alcotest.test_case "pluto slower than expert schedule on warpAffine"
      `Quick (fun () ->
        let big = [ ("N", 512); ("M", 512) ] in
        let f1, _ = Image.warp_affine () in
        A.apply A.pencil_cpu f1;
        let pencil = (Runner.model ~fn:f1 ~params:big ()).B.Cost.time_ns in
        let f2, _ = Image.warp_affine () in
        Schedules.cpu_warp_affine f2;
        let expert = (Runner.model ~fn:f2 ~params:big ()).B.Cost.time_ns in
        Alcotest.(check bool)
          (Printf.sprintf "pencil %.3g > expert %.3g" pencil expert)
          true
          (pencil > 2.0 *. expert));
    Alcotest.test_case "sgemm: pluto profile correct" `Quick (fun () ->
        let f, _, _ = Linalg.sgemm () in
        A.apply A.pluto f;
        let s = 9 in
        let am (idx : int array) =
          float_of_int (((idx.(0) * 7) + (idx.(1) * 3)) mod 11) /. 4.0
        in
        let bm (idx : int array) =
          float_of_int (((idx.(0) * 5) + (idx.(1) * 13)) mod 9) /. 3.0
        in
        let cm (idx : int array) =
          float_of_int (((idx.(0) * 2) + idx.(1)) mod 7) /. 2.0
        in
        let expect idx =
          let i = idx.(0) and j = idx.(1) in
          let acc = ref (Linalg.beta *. cm [| i; j |]) in
          for k = 0 to s - 1 do
            acc := !acc +. (Linalg.alpha *. am [| i; k |] *. bm [| k; j |])
          done;
          !acc
        in
        match
          Runner.check ~fn:f ~params:[ ("S", s) ]
            ~inputs:[ ("A", am); ("B", bm); ("C0", cm) ]
            ~output:"C" ~expect ()
        with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "TC gpu profile runs conv correctly" `Quick (fun () ->
        let f, _, _ = Image.conv2d () in
        A.apply A.tc f;
        let kern3 (idx : int array) =
          [| 0.05; 0.1; 0.05; 0.1; 0.4; 0.1; 0.05; 0.1; 0.05 |].((idx.(0) * 3) + idx.(1))
        in
        let clampi v lo hi = max lo (min hi v) in
        let expect idx =
          let i = idx.(0) and j = idx.(1) and c = idx.(2) in
          let acc = ref 0.0 in
          for ki = 0 to 2 do
            for kj = 0 to 2 do
              acc :=
                !acc
                +. (img3 [| clampi (i + ki - 1) 0 (n - 1);
                            clampi (j + kj - 1) 0 (m - 1); c |]
                   *. kern3 [| ki; kj |])
            done
          done;
          !acc
        in
        match
          Runner.check ~fn:f
            ~params:[ ("N", n); ("M", m) ]
            ~inputs:[ ("img", img3); ("weights", kern3) ]
            ~output:"conv" ~expect ()
        with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

let () = Alcotest.run "autosched" [ ("autosched", tests) ]
