(* AST-generation tests: generated loop nests must visit every point of every
   scheduled set exactly once, in the lexicographic order of the time tuples
   (the CLooG contract, paper §V-A).  The oracle is Iset.points enumeration;
   the system under test is Ast_gen + the reference interpreter. *)

open Tiramisu_presburger
open Tiramisu_codegen
module B = Tiramisu_backends

let v = Aff.var
let c = Aff.const

(* Run the generated AST, collecting (stmt_name, time_tuple) in order. *)
let trace ?(params = []) sources =
  let ast = Ast_gen.generate ~params:(List.map fst params) sources in
  let t = B.Interp.create ~params () in
  let log = ref [] in
  B.Interp.on_store t (fun name idx _ ->
      let stmt = String.sub name 8 (String.length name - 8) in
      log := (stmt, Array.to_list idx) :: !log);
  B.Interp.run t ast;
  (ast, List.rev !log)

(* A trace-emitting source over a scheduled set. Index offset avoids negative
   trace indices for skewed schedules. *)
let source name sched tags =
  let nt = Iset.n_vars sched in
  {
    Ast_gen.name;
    sched;
    dim_names = Array.init nt (Printf.sprintf "t%d");
    tags = (match tags with Some ts -> ts | None -> Array.make nt Loop_ir.Seq);
    emit =
      (fun env ->
        Loop_ir.Store
          ( "__trace_" ^ name,
            List.init nt env,
            Loop_ir.Float 0.0 ));
  }

let expected_points sched ~params =
  List.map Array.to_list (Iset.points sched ~params)

let check_single_stmt ?(params = []) name sched =
  let _, log = trace ~params [ source name sched None ] in
  let got = List.map snd log in
  let want = expected_points sched ~params in
  Alcotest.(check (list (list int))) (name ^ " visit order") want got

(* ---------- fixed scenarios ---------- *)

let box_space = Space.set_space ~name:"S" ~params:[] [ "i"; "j" ]

let box lo_i hi_i lo_j hi_j =
  Iset.of_constraints box_space
    (Cstr.between (c lo_i) (v "i") (c hi_i)
    @ Cstr.between (c lo_j) (v "j") (c hi_j))

let triangle n =
  (* { S[i,j] : 0 <= i < n, i <= j < n } *)
  Iset.of_constraints box_space
    (Cstr.between (c 0) (v "i") (c n) @ Cstr.between (v "i") (v "j") (c n))

let apply_map ?nt dom cstrs =
  let nt = match nt with Some n -> n | None -> List.length cstrs in
  let outs = List.init nt (Printf.sprintf "o%d") in
  let sp =
    Space.map_space ~params:[]
      ~ins:(Array.to_list dom.Iset.space.Space.vars)
      outs
  in
  Imap.apply dom (Imap.of_constraints sp cstrs)

let fixed_tests =
  [
    Alcotest.test_case "identity box" `Quick (fun () ->
        check_single_stmt "box" (box 0 4 0 3));
    Alcotest.test_case "triangle (non-rectangular)" `Quick (fun () ->
        check_single_stmt "tri" (triangle 6));
    Alcotest.test_case "interchange" `Quick (fun () ->
        let sched =
          apply_map (triangle 5)
            [ Cstr.Eq (v "o0", v "j"); Cstr.Eq (v "o1", v "i") ]
        in
        check_single_stmt "interchange" sched);
    Alcotest.test_case "skewing (not expressible in Halide)" `Quick (fun () ->
        let sched =
          apply_map (box 0 4 0 4)
            [ Cstr.Eq (v "o0", Aff.(v "i" + v "j")); Cstr.Eq (v "o1", v "j") ]
        in
        check_single_stmt "skew" sched);
    Alcotest.test_case "tiling a triangle (guards needed)" `Quick (fun () ->
        let sched =
          apply_map ~nt:4 (triangle 10)
            ([
               Cstr.Eq (v "i", Aff.(4 * v "o0" + v "o2"));
               Cstr.Eq (v "j", Aff.(4 * v "o1" + v "o3"));
             ]
            @ Cstr.between (c 0) (v "o2") (c 4)
            @ Cstr.between (c 0) (v "o3") (c 4))
        in
        check_single_stmt "tiled-tri" sched);
    Alcotest.test_case "loop reversal" `Quick (fun () ->
        let sched =
          apply_map (box 0 5 0 3)
            [ Cstr.Eq (v "o0", Aff.(neg (v "i"))); Cstr.Eq (v "o1", v "j") ]
        in
        check_single_stmt "reversed" sched);
    Alcotest.test_case "two statements sequenced by static dim" `Quick
      (fun () ->
        (* S then T, each over a 3x2 box: schedule [stmt, i, j]. *)
        let sched k =
          apply_map (box 0 3 0 2)
            [
              Cstr.Eq (v "o0", c k);
              Cstr.Eq (v "o1", v "i");
              Cstr.Eq (v "o2", v "j");
            ]
        in
        let _, log =
          trace [ source "S" (sched 0) None; source "T" (sched 1) None ]
        in
        let names = List.map fst log in
        Alcotest.(check int) "total" 12 (List.length log);
        let first_half = List.filteri (fun i _ -> i < 6) names in
        Alcotest.(check (list string)) "S first"
          [ "S"; "S"; "S"; "S"; "S"; "S" ] first_half);
    Alcotest.test_case "fusion interleaves statements" `Quick (fun () ->
        (* S and T fused at i (static dim inside): order (i, stmt, j). *)
        let sched k =
          apply_map (box 0 3 0 2)
            [
              Cstr.Eq (v "o0", v "i");
              Cstr.Eq (v "o1", c k);
              Cstr.Eq (v "o2", v "j");
            ]
        in
        let _, log =
          trace [ source "S" (sched 0) None; source "T" (sched 1) None ]
        in
        let names = List.map fst log in
        Alcotest.(check (list string)) "interleaved"
          [ "S"; "S"; "T"; "T"; "S"; "S"; "T"; "T"; "S"; "S"; "T"; "T" ]
          names);
    Alcotest.test_case "fused statements with different extents" `Quick
      (fun () ->
        (* S over 0..5, T over 2..8, fused on the same loop: loop covers the
           union, guards restrict each statement. *)
        let line_space = Space.set_space ~name:"L" ~params:[] [ "i" ] in
        let seg a b =
          Iset.of_constraints line_space (Cstr.between (c a) (v "i") (c b))
        in
        let sched dom k =
          apply_map dom [ Cstr.Eq (v "o0", v "i"); Cstr.Eq (v "o1", c k) ]
        in
        let _, log =
          trace
            [
              source "S" (sched (seg 0 6) 0) None;
              source "T" (sched (seg 2 9) 1) None;
            ]
        in
        let expected =
          (* i=0,1: S only; i=2..5: S,T; i=6..8: T only *)
          List.concat_map
            (fun i ->
              (if i < 6 then [ ("S", [ i; 0 ]) ] else [])
              @ if i >= 2 then [ ("T", [ i; 1 ]) ] else [])
            [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
        in
        Alcotest.(check (list (pair string (list int)))) "union loop" expected
          log);
    Alcotest.test_case "parametric bounds" `Quick (fun () ->
        let sp = Space.set_space ~name:"P" ~params:[ "N" ] [ "i" ] in
        let dom =
          Iset.of_constraints sp (Cstr.between (c 0) (v "i") Aff.(v "N" - c 2))
        in
        let _, log = trace ~params:[ ("N", 6) ] [ source "P" dom None ] in
        Alcotest.(check int) "N-2 iterations" 4 (List.length log));
  ]

(* ---------- qcheck: random affine schedules on random domains ---------- *)

let gen_domain =
  QCheck.Gen.(
    let* ni = int_range 3 6 in
    let* nj = int_range 3 6 in
    let* shape = int_range 0 2 in
    return
      (match shape with
      | 0 -> box 0 ni 0 nj
      | 1 -> triangle (ni + 2)
      | _ ->
          (* trapezoid: j <= i + 2 *)
          Iset.add_constraints (box 0 ni 0 nj)
            [ Cstr.Le (v "j", Aff.(v "i" + c 2)) ]))

let gen_transform =
  QCheck.Gen.(
    let* kind = int_range 0 4 in
    return
      (match kind with
      | 0 -> [ Cstr.Eq (v "o0", v "i"); Cstr.Eq (v "o1", v "j") ]
      | 1 -> [ Cstr.Eq (v "o0", v "j"); Cstr.Eq (v "o1", v "i") ]
      | 2 ->
          [ Cstr.Eq (v "o0", Aff.(v "i" + v "j")); Cstr.Eq (v "o1", v "j") ]
      | 3 ->
          [
            Cstr.Eq (v "o0", Aff.(v "i" - c 3));
            Cstr.Eq (v "o1", Aff.(neg (v "j")));
          ]
      | _ ->
          [
            Cstr.Eq (v "o0", Aff.(2 * v "i" + v "j"));
            Cstr.Eq (v "o1", Aff.(v "i" + c 1));
          ]))

let gen_tiling =
  QCheck.Gen.(
    let* f = int_range 2 4 in
    return
      ([
         Cstr.Eq (v "i", Aff.(f * v "o0" + v "o2"));
         Cstr.Eq (v "j", Aff.(f * v "o1" + v "o3"));
       ]
      @ Cstr.between (c 0) (v "o2") (c f)
      @ Cstr.between (c 0) (v "o3") (c f)))

let prop_random_schedule =
  QCheck.Test.make ~count:150 ~name:"random schedules visit points in order"
    (QCheck.make
       QCheck.Gen.(
         let* d = gen_domain in
         let* tile = bool in
         let* t = if tile then gen_tiling else gen_transform in
         return (d, t, if tile then 4 else 2)))
    (fun (dom, tr, nt) ->
      let sched = apply_map ~nt dom tr in
      let _, log = trace [ source "S" sched None ] in
      List.map snd log = expected_points sched ~params:[])

let () =
  Alcotest.run "codegen"
    [
      ("ast-gen", fixed_tests);
      ( "ast-gen-qcheck",
        List.map QCheck_alcotest.to_alcotest [ prop_random_schedule ] );
    ]
