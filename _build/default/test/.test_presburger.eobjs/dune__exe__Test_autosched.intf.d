test/test_autosched.mli:
