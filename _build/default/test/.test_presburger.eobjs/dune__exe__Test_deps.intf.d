test/test_deps.mli:
