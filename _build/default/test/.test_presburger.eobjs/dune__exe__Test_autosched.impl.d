test/test_autosched.ml: Alcotest Array Image Linalg List Printf Runner Schedules String Tiramisu_autosched Tiramisu_backends Tiramisu_core Tiramisu_kernels
