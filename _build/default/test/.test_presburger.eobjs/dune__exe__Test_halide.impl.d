test/test_halide.ml: Alcotest Array Astring Expr Float Ir List Printf Tiramisu_backends Tiramisu_core Tiramisu_halide
