test/test_deps.ml: Aff Alcotest Expr Ir List Tiramisu Tiramisu_core Tiramisu_deps Tiramisu_presburger
