test/test_layer4.mli:
