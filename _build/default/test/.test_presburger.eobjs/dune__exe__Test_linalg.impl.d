test/test_linalg.ml: Alcotest Array Float Linalg List Printf Runner Tiramisu_backends Tiramisu_core Tiramisu_deps Tiramisu_kernels
