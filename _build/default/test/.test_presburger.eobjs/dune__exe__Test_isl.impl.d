test/test_isl.ml: Aff Alcotest Array Astring Expr Filename Imap Ir Iset Isl List Lower Printf Sys Tiramisu Tiramisu_backends Tiramisu_codegen Tiramisu_core Tiramisu_kernels Tiramisu_presburger
