test/test_codegen.ml: Aff Alcotest Array Ast_gen Cstr Imap Iset List Loop_ir Printf QCheck QCheck_alcotest Space String Tiramisu_backends Tiramisu_codegen Tiramisu_presburger
