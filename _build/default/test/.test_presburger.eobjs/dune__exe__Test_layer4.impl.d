test/test_layer4.ml: Aff Alcotest Array Astring Expr Float Ir List Lower Printf Tiramisu Tiramisu_backends Tiramisu_codegen Tiramisu_core Tiramisu_kernels Tiramisu_presburger
