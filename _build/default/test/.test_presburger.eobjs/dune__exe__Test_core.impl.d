test/test_core.ml: Aff Alcotest Array Astring Expr Float Ir List Lower Printf Tiramisu Tiramisu_backends Tiramisu_codegen Tiramisu_core Tiramisu_presburger
