test/test_presburger.ml: Aff Alcotest Array Astring Cstr Format Imap Iset List Option Poly Printf QCheck QCheck_alcotest Space Tiramisu_presburger
