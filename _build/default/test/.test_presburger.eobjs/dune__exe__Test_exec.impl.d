test/test_exec.ml: Alcotest Array Image Linalg List Printf Runner Schedules Tiramisu_backends Tiramisu_core Tiramisu_kernels Unix
