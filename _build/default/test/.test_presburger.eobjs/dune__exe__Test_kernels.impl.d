test/test_kernels.ml: Alcotest Array Float Image List Printf Runner Schedules Tiramisu_backends Tiramisu_kernels
