(* Layer IV completeness: allocate_at, cache_shared_at, barriers, copy
   operations — the novel Table-II commands (§III-C, §IV-C4). *)

open Tiramisu_presburger
open Tiramisu_core
module B = Tiramisu_backends
module K = Tiramisu_kernels

let a = Aff.var
let c0 = Aff.const

let tests =
  [
    Alcotest.test_case "allocate_at scopes the producer buffer in the tile"
      `Quick (fun () ->
        let f, bx, by = K.Image.blur () in
        Tiramisu.tile by "i" "j" 4 4 "i0" "j0" "i1" "j1";
        Tiramisu.compute_at bx by "j0";
        Tiramisu.allocate_at (Tiramisu.buffer_of bx) by "j0";
        let code = Lower.pseudocode f in
        Alcotest.(check bool) "Alloc inside j0 loop" true
          (Astring.String.is_infix ~affix:"host float bx" code);
        (* interp still computes the right thing: the tile is recomputed
           from scratch inside each allocation scope *)
        let n = 14 and m = 12 in
        let pix (idx : int array) =
          float_of_int (((idx.(0) * 13) + (idx.(1) * 7) + idx.(2)) mod 19)
        in
        let interp =
          K.Runner.run ~fn:f ~params:[ ("N", n); ("M", m) ]
            ~inputs:[ ("img", pix) ]
        in
        let out = B.Interp.buffer interp "by" in
        let reference i j ch =
          let bx i j =
            (pix [| i; j; ch |] +. pix [| i; j + 1; ch |]
            +. pix [| i; j + 2; ch |])
            /. 3.0
          in
          (bx i j +. bx (i + 1) j +. bx (i + 2) j) /. 3.0
        in
        let ok = ref true in
        for i = 0 to n - 5 do
          for j = 0 to m - 3 do
            for ch = 0 to 2 do
              if
                Float.abs
                  (B.Buffers.get out [| i; j; ch |] -. reference i j ch)
                > 1e-4
              then ok := false
            done
          done
        done;
        Alcotest.(check bool) "correct under scoped allocation" true !ok);
    Alcotest.test_case "cache_shared_at synthesizes the copy computation"
      `Quick (fun () ->
        let f, bx, by = K.Image.blur () in
        Tiramisu.tile_gpu by "i" "j" 4 4 "i0" "j0" "i1" "j1";
        Tiramisu.compute_at bx by "j0";
        Tiramisu.cache_shared_at bx by "j0";
        let code = Lower.pseudocode f in
        Alcotest.(check bool) "copy statement present" true
          (Astring.String.is_infix ~affix:"bx_shared" code);
        (* shared buffer is tagged for GPU shared memory *)
        let sbuf =
          List.find
            (fun (b : Ir.buffer) -> b.Ir.buf_name = "bx_shared")
            f.Ir.buffers
        in
        Alcotest.(check bool) "shared space" true
          (sbuf.Ir.buf_mem = Tiramisu_codegen.Loop_ir.Gpu_shared));
    Alcotest.test_case "cache_shared_at is profitable under the GPU model"
      `Quick (fun () ->
        (* Staging bx in shared memory must not be slower than re-reading
           it from global memory within the tile. *)
        let t cached =
          let f, bx, by = K.Image.blur () in
          Tiramisu.tile_gpu by "i" "j" 16 16 "i0" "j0" "i1" "j1";
          Tiramisu.compute_at bx by "j0";
          if cached then Tiramisu.cache_shared_at bx by "j0";
          (K.Runner.model ~fn:f ~params:[ ("N", 2112); ("M", 3520) ] ())
            .B.Cost.time_ns
        in
        let plain = t false and cached = t true in
        Alcotest.(check bool)
          (Printf.sprintf "cached %.3g <= plain %.3g" cached plain)
          true
          (cached <= plain *. 1.05));
    Alcotest.test_case "barrier_at lowers to a barrier" `Quick (fun () ->
        let f = Tiramisu.create ~params:[ "N" ] "bar" in
        let i = Tiramisu.var "i" (c0 0) (a "N") in
        let s = Tiramisu.comp f "s" [ i ] (Expr.int 1) in
        let b =
          Tiramisu.barrier_at f "sync" ~iters:[ Tiramisu.var "o" (c0 0) (c0 1) ]
        in
        Tiramisu.after b s Tiramisu.root;
        let code = Lower.pseudocode f in
        Alcotest.(check bool) "barrier in code" true
          (Astring.String.is_infix ~affix:"barrier()" code));
    Alcotest.test_case "host/device copies bracket the GPU kernel" `Quick
      (fun () ->
        let f, _ = K.Image.cvt_color () in
        K.Schedules.gpu_cvt_color f;
        let code = Lower.pseudocode f in
        let idx_h2d = Astring.String.find_sub ~sub:"host_to_device" code in
        let idx_kernel = Astring.String.find_sub ~sub:"GPUBlock" code in
        let idx_d2h = Astring.String.find_sub ~sub:"device_to_host" code in
        match (idx_h2d, idx_kernel, idx_d2h) with
        | Some a, Some b, Some c ->
            Alcotest.(check bool) "ordered" true (a < b && b < c)
        | _ -> Alcotest.fail "missing copy or kernel");
  ]

let () = Alcotest.run "layer4" [ ("layer4", tests) ]
