(* Correctness of every image benchmark (§VI-B) against plain-OCaml
   references, for the unscheduled pipelines and for each expert schedule
   (CPU / GPU / distributed).  The schedule must never change results —
   that's the core contract of the scheduling language. *)

open Tiramisu_kernels
module B = Tiramisu_backends

let n = 16
let m = 12

let img3 (idx : int array) =
  float_of_int (((idx.(0) * 13) + (idx.(1) * 7) + (idx.(2) * 3)) mod 31) /. 7.0

let img2 (idx : int array) =
  float_of_int (((idx.(0) * 11) + (idx.(1) * 5)) mod 23) /. 3.0

let img1 (idx : int array) = float_of_int ((idx.(0) * 17) mod 13) /. 2.0

let kern3 (idx : int array) =
  [| 0.05; 0.1; 0.05; 0.1; 0.4; 0.1; 0.05; 0.1; 0.05 |].((idx.(0) * 3) + idx.(1))

let clampi v lo hi = max lo (min hi v)

let check name fn ~params ~inputs ~output ~expect =
  match Runner.check ~fn ~params ~inputs ~output ~expect () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (name ^ ": " ^ msg)

let params_nm = [ ("N", n); ("M", m) ]
let inputs3 = [ ("img", img3) ]

(* ---------------- references ---------------- *)

let ref_gray idx =
  (0.299 *. img3 [| idx.(0); idx.(1); 0 |])
  +. (0.587 *. img3 [| idx.(0); idx.(1); 1 |])
  +. (0.114 *. img3 [| idx.(0); idx.(1); 2 |])

let ref_conv idx =
  let i = idx.(0) and j = idx.(1) and c = idx.(2) in
  let acc = ref 0.0 in
  for ki = 0 to 2 do
    for kj = 0 to 2 do
      let ii = clampi (i + ki - 1) 0 (n - 1) in
      let jj = clampi (j + kj - 1) 0 (m - 1) in
      acc := !acc +. (img3 [| ii; jj; c |] *. kern3 [| ki; kj |])
    done
  done;
  !acc

let ref_gx idx =
  let i = idx.(0) and j = idx.(1) and c = idx.(2) in
  List.fold_left ( +. ) 0.0
    (List.mapi
       (fun k w -> w *. img3 [| i; clampi (j + k - 2) 0 (m - 1); c |])
       Image.gaussian_weights)

let ref_gy idx =
  let i = idx.(0) and j = idx.(1) and c = idx.(2) in
  List.fold_left ( +. ) 0.0
    (List.mapi
       (fun k w ->
         w *. ref_gx [| clampi (i + k - 2) 0 (n - 1); j; c |])
       Image.gaussian_weights)

let ref_warp idx =
  let a11, a12, b1, a21, a22, b2 = Image.warp_coeffs in
  let i = float_of_int idx.(0) and j = float_of_int idx.(1) in
  let xf = (a11 *. i) +. (a12 *. j) +. b1 in
  let yf = (a21 *. i) +. (a22 *. j) +. b2 in
  let xi = clampi (int_of_float (Float.round (xf -. 0.5))) 0 (n - 2) in
  let yi = clampi (int_of_float (Float.round (yf -. 0.5))) 0 (m - 2) in
  let wx = xf -. Float.round (xf -. 0.5) in
  let wy = yf -. Float.round (yf -. 0.5) in
  let s dx dy = img2 [| xi + dx; yi + dy |] in
  ((1.0 -. wx) *. (1.0 -. wy) *. s 0 0)
  +. (wx *. (1.0 -. wy) *. s 1 0)
  +. ((1.0 -. wx) *. wy *. s 0 1)
  +. (wx *. wy *. s 1 1)

(* ---------------- per-benchmark tests ---------------- *)

let cvt_tests =
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _ = Image.cvt_color () in
        sched f;
        check name f ~params:params_nm ~inputs:inputs3 ~output:"gray"
          ~expect:ref_gray)
  in
  [
    run (fun _ -> ()) "cvtColor unscheduled";
    run Schedules.cpu_cvt_color "cvtColor cpu schedule";
    run Schedules.gpu_cvt_color "cvtColor gpu schedule";
    run (fun f -> Schedules.dist_cvt_color f ~n ~m ~nodes:4)
      "cvtColor distributed schedule";
  ]

let conv_tests =
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _, _ = Image.conv2d () in
        sched f;
        check name f ~params:params_nm
          ~inputs:[ ("img", img3); ("weights", kern3) ]
          ~output:"conv" ~expect:ref_conv)
  in
  [
    run (fun _ -> ()) "conv2D unscheduled";
    run Schedules.cpu_conv2d "conv2D cpu schedule";
    run Schedules.gpu_conv2d "conv2D gpu schedule";
    run (fun f -> Schedules.dist_conv2d f ~n ~m ~nodes:4)
      "conv2D distributed schedule";
  ]

let gaussian_tests =
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _, _ = Image.gaussian () in
        sched f;
        check name f ~params:params_nm ~inputs:inputs3 ~output:"gy"
          ~expect:ref_gy)
  in
  [
    run (fun _ -> ()) "gaussian unscheduled";
    run Schedules.cpu_gaussian "gaussian cpu schedule";
    run Schedules.gpu_gaussian "gaussian gpu schedule";
    run (fun f -> Schedules.dist_gaussian f ~n ~m ~nodes:4)
      "gaussian distributed schedule";
  ]

let warp_tests =
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _ = Image.warp_affine () in
        sched f;
        check name f ~params:params_nm ~inputs:[ ("img", img2) ]
          ~output:"warp" ~expect:ref_warp)
  in
  [
    run (fun _ -> ()) "warpAffine unscheduled";
    run Schedules.cpu_warp_affine "warpAffine cpu schedule";
    run Schedules.gpu_warp_affine "warpAffine gpu schedule";
  ]

let nb_tests =
  let ref_neg idx = Float.max 0.0 (255.0 -. img3 idx) in
  let ref_bright idx = Float.min 255.0 (1.5 *. img3 idx) in
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _, _, _, _ = Image.nb () in
        sched f;
        check name f ~params:params_nm ~inputs:inputs3 ~output:"negative"
          ~expect:ref_neg;
        check name f ~params:params_nm ~inputs:inputs3 ~output:"brightened"
          ~expect:ref_bright)
  in
  [
    run (fun _ -> ()) "nb unscheduled";
    run (Schedules.cpu_nb ~fuse:true) "nb fused cpu schedule";
    run (Schedules.gpu_nb ~fuse:true) "nb fused gpu schedule";
    run (fun f -> Schedules.dist_nb f ~n ~m ~nodes:4)
      "nb distributed schedule";
  ]

let edge_tests =
  let ref_r i j =
    (img1 [| 0 |] *. 0.0)
    +. (img2 [| i - 1; j - 1 |] +. img2 [| i - 1; j |] +. img2 [| i - 1; j + 1 |]
       +. img2 [| i; j - 1 |] +. img2 [| i; j + 1 |] +. img2 [| i + 1; j - 1 |]
       +. img2 [| i + 1; j |] +. img2 [| i + 1; j + 1 |])
       /. 8.0
  in
  let ref_edges idx =
    let i = idx.(0) + 1 and j = idx.(1) + 1 in
    (* edges domain starts at 1; buffer index shifted by the auto layout *)
    Float.abs (ref_r i j -. ref_r (i + 1) (j - 1))
    +. Float.abs (ref_r (i + 1) j -. ref_r i (j - 1))
  in
  ignore ref_edges;
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _, _ = Image.edge_detector () in
        sched f;
        let interp =
          Runner.run ~fn:f ~params:[ ("N", n) ] ~inputs:[ ("img", img2) ]
        in
        (* The result is written in place into img. *)
        let img = B.Interp.buffer interp "img" in
        let ok = ref true in
        for i = 1 to n - 4 do
          for j = 2 to n - 3 do
            let want =
              Float.abs (ref_r i j -. ref_r (i + 1) (j - 1))
              +. Float.abs (ref_r (i + 1) j -. ref_r i (j - 1))
            in
            if Float.abs (B.Buffers.get img [| i; j |] -. want) > 1e-3 then
              ok := false
          done
        done;
        Alcotest.(check bool) (name ^ " in-place edges") true !ok)
  in
  [
    run (fun _ -> ()) "edgeDetector unscheduled (cyclic buffers)";
    run Schedules.cpu_edge_detector "edgeDetector cpu schedule";
    run (fun f -> Schedules.dist_edge_detector f ~n ~nodes:4)
      "edgeDetector distributed schedule";
  ]

let ticket_tests =
  let run sched name =
    Alcotest.test_case name `Quick (fun () ->
        let f, _ = Image.ticket2373 () in
        sched f;
        (* In-bounds everywhere on the triangle x >= r. Tiramisu generates
           the exact triangular loop; success = no out-of-bounds access. *)
        let interp =
          Runner.run ~fn:f ~params:[ ("N", n) ] ~inputs:[ ("img", img1) ]
        in
        let t = B.Interp.buffer interp "t" in
        Alcotest.(check (float 0.001)) "corner value"
          (img1 [| n - 1 |])
          (B.Buffers.get t [| 0; n - 1 |]))
  in
  [
    run (fun _ -> ()) "ticket2373 unscheduled (triangular domain)";
    run Schedules.cpu_ticket2373 "ticket2373 cpu schedule";
    run (fun f -> Schedules.dist_ticket2373 f ~n ~nodes:4)
      "ticket2373 distributed schedule";
  ]

let blur_dist_tests =
  [
    Alcotest.test_case "blur distributed halo exchange" `Quick (fun () ->
        let f, _, _ = Image.blur () in
        Schedules.dist_blur f ~n ~m ~nodes:4;
        let interp = Runner.run ~fn:f ~params:params_nm ~inputs:inputs3 in
        let c = B.Interp.counters interp in
        (* 3 sender ranks x 1 message *)
        Alcotest.(check int) "messages" 3 c.B.Interp.messages;
        Alcotest.(check int) "bytes" (3 * 2 * m * 3 * 4) c.B.Interp.bytes_sent);
    Alcotest.test_case "blur gpu schedule correct" `Quick (fun () ->
        let f, _, _ = Image.blur () in
        Schedules.gpu_blur f;
        let interp = Runner.run ~fn:f ~params:params_nm ~inputs:inputs3 in
        (* SOA layout: by[c][i][j]; compare a sample against the plain CPU
           run. *)
        let f2, _, _ = Image.blur () in
        let i2 = Runner.run ~fn:f2 ~params:params_nm ~inputs:inputs3 in
        let soa = B.Interp.buffer interp "by" in
        let aos = B.Interp.buffer i2 "by" in
        let ok = ref true in
        for i = 0 to n - 5 do
          for j = 0 to m - 3 do
            for c = 0 to 2 do
              if
                Float.abs
                  (B.Buffers.get soa [| c; i; j |]
                  -. B.Buffers.get aos [| i; j; c |])
                > 1e-3
              then ok := false
            done
          done
        done;
        Alcotest.(check bool) "gpu soa equals cpu aos" true !ok);
  ]

let model_tests =
  [
    Alcotest.test_case "cost model: parallel+vectorized is faster" `Quick
      (fun () ->
        let big = [ ("N", 512); ("M", 512) ] in
        let f1, _ = Image.cvt_color () in
        let base = (Runner.model ~fn:f1 ~params:big ()).B.Cost.time_ns in
        let f2, _ = Image.cvt_color () in
        Schedules.cpu_cvt_color f2;
        let opt = (Runner.model ~fn:f2 ~params:big ()).B.Cost.time_ns in
        Alcotest.(check bool)
          (Printf.sprintf "opt %.3g < base %.3g" opt base)
          true
          (opt < base /. 4.0));
    Alcotest.test_case "cost model: nb fusion reduces memory time" `Quick
      (fun () ->
        let big = [ ("N", 512); ("M", 512) ] in
        let unfused, _, _, _, _ = Image.nb () in
        Schedules.cpu_nb ~fuse:false unfused;
        let t_unfused = (Runner.model ~fn:unfused ~params:big ()).B.Cost.time_ns in
        let fused, _, _, _, _ = Image.nb () in
        Schedules.cpu_nb ~fuse:true fused;
        let t_fused = (Runner.model ~fn:fused ~params:big ()).B.Cost.time_ns in
        Alcotest.(check bool)
          (Printf.sprintf "fused %.3g < unfused %.3g" t_fused t_unfused)
          true (t_fused < t_unfused));
  ]

let () =
  Alcotest.run "kernels"
    [
      ("cvtColor", cvt_tests);
      ("conv2D", conv_tests);
      ("gaussian", gaussian_tests);
      ("warpAffine", warp_tests);
      ("nb", nb_tests);
      ("edgeDetector", edge_tests);
      ("ticket2373", ticket_tests);
      ("blur-targets", blur_dist_tests);
      ("cost-model", model_tests);
    ]
