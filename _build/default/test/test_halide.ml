(* The Halide baseline: interval bounds inference, correctness on
   rectangular pipelines, and faithful reproduction of the restrictions the
   paper exploits in §VI-B (fusion refusal, cyclic-graph rejection, bounds
   over-approximation on ticket #2373, distributed over-communication). *)

open Tiramisu_core
module H = Tiramisu_halide.Halide
module B = Tiramisu_backends
module E = Expr

let n = 12
let m = 10

let img2 (idx : int array) =
  float_of_int (((idx.(0) * 11) + (idx.(1) * 5)) mod 23) /. 3.0

let blur_pipeline () =
  let p = H.pipeline "hblur" in
  let inp = H.input p "in" 2 in
  let bx =
    H.func p "bx" [ "i"; "j" ]
      E.(
        ((Ir.Access_e ("in", [ iter "i"; iter "j" ])
         +: Ir.Access_e ("in", [ iter "i"; iter "j" +: int 1 ]))
        +: Ir.Access_e ("in", [ iter "i"; iter "j" +: int 2 ]))
        /: float 3.0)
  in
  let by =
    H.func p "by" [ "i"; "j" ]
      E.(
        ((Ir.Access_e ("bx", [ iter "i"; iter "j" ])
         +: Ir.Access_e ("bx", [ iter "i" +: int 1; iter "j" ]))
        +: Ir.Access_e ("bx", [ iter "i" +: int 2; iter "j" ]))
        /: float 3.0)
  in
  (p, inp, bx, by)

let ref_by i j =
  let bx i j =
    (img2 [| i; j |] +. img2 [| i; j + 1 |] +. img2 [| i; j + 2 |]) /. 3.0
  in
  (bx i j +. bx (i + 1) j +. bx (i + 2) j) /. 3.0

let tests =
  [
    Alcotest.test_case "bounds inference sizes intermediates" `Quick
      (fun () ->
        let p, inp, _, by = blur_pipeline () in
        let c =
          H.compile p
            ~outputs:[ (by, [ (0, n - 5); (0, m - 3) ]) ]
            ~inputs:[ (inp, [ (0, n - 1); (0, m - 1) ]) ]
            ~params:[]
        in
        (* bx must cover rows 0..n-3 (by reads i+2). *)
        let bx_box = List.assoc "bx" c.H.regions in
        Alcotest.(check (list (pair int int))) "bx region"
          [ (0, n - 3); (0, m - 3) ] bx_box);
    Alcotest.test_case "blur output matches reference" `Quick (fun () ->
        let p, inp, _, by = blur_pipeline () in
        let c =
          H.compile p
            ~outputs:[ (by, [ (0, n - 5); (0, m - 3) ]) ]
            ~inputs:[ (inp, [ (0, n - 1); (0, m - 1) ]) ]
            ~params:[]
        in
        let interp = H.run c ~params:[] ~inputs:[ ("in", img2) ] in
        let buf = B.Interp.buffer interp "by" in
        let ok = ref true in
        for i = 0 to n - 5 do
          for j = 0 to m - 3 do
            if Float.abs (B.Buffers.get buf [| i; j |] -. ref_by i j) > 1e-3
            then ok := false
          done
        done;
        Alcotest.(check bool) "matches" true !ok);
    Alcotest.test_case "scheduled blur (split/parallel/vectorize) correct"
      `Quick (fun () ->
        let p, inp, bx, by = blur_pipeline () in
        H.parallel by "i";
        H.vectorize by "j" 4;
        H.vectorize bx "j" 4;
        let c =
          H.compile p
            ~outputs:[ (by, [ (0, n - 5); (0, m - 3) ]) ]
            ~inputs:[ (inp, [ (0, n - 1); (0, m - 1) ]) ]
            ~params:[]
        in
        let interp = H.run c ~params:[] ~inputs:[ ("in", img2) ] in
        let buf = B.Interp.buffer interp "by" in
        let ok = ref true in
        for i = 0 to n - 5 do
          for j = 0 to m - 3 do
            if Float.abs (B.Buffers.get buf [| i; j |] -. ref_by i j) > 1e-3
            then ok := false
          done
        done;
        Alcotest.(check bool) "matches" true !ok);
    Alcotest.test_case "fusion refused when producer-consumer (nb)" `Quick
      (fun () ->
        let p = H.pipeline "hnb" in
        let _ = H.input p "in" 2 in
        let t1 =
          H.func p "t1" [ "i"; "j" ]
            E.(float 255.0 -: Ir.Access_e ("in", [ iter "i"; iter "j" ]))
        in
        let neg =
          H.func p "neg" [ "i"; "j" ]
            E.(max_ (float 0.0) (Ir.Access_e ("t1", [ iter "i"; iter "j" ])))
        in
        Alcotest.check_raises "conservative rule"
          (H.Unsupported
             "cannot compute neg with t1: one reads the other's output \
              (Halide cannot prove the fusion legal without dependence \
              analysis)") (fun () -> H.compute_with neg t1));
    Alcotest.test_case "independent stages may fuse" `Quick (fun () ->
        let p = H.pipeline "hnb2" in
        let _ = H.input p "in" 2 in
        let s1 =
          H.func p "s1" [ "i"; "j" ]
            E.(float 1.0 +: Ir.Access_e ("in", [ iter "i"; iter "j" ]))
        in
        let s2 =
          H.func p "s2" [ "i"; "j" ]
            E.(float 2.0 *: Ir.Access_e ("in", [ iter "i"; iter "j" ]))
        in
        H.compute_with s2 s1);
    Alcotest.test_case "in-place update rejected (edgeDetector)" `Quick
      (fun () ->
        let p = H.pipeline "hedge" in
        let inp = H.input p "img" 2 in
        let r =
          H.func p "r" [ "i"; "j" ]
            E.(Ir.Access_e ("img", [ iter "i"; iter "j" ]) /: float 8.0)
        in
        Alcotest.check_raises "acyclic restriction"
          (H.Unsupported
             "storing r into input img creates a cyclic dataflow graph, \
              which Halide's acyclic-pipeline restriction rejects")
          (fun () -> H.store_in_input r inp));
    Alcotest.test_case "ticket #2373: bounds over-approximation faults"
      `Quick (fun () ->
        (* t(r,x) = in(x - r) over the rectangle [0,N)x[0,N): the inferred
           required interval of in is [-(N-1), N-1], outside the input. *)
        let p = H.pipeline "hticket" in
        let inp = H.input p "in" 1 in
        let t =
          H.func p "t" [ "r"; "x" ]
            (Ir.Access_e ("in", [ E.(iter "x" -: iter "r") ]))
        in
        match
          H.compile p
            ~outputs:[ (t, [ (0, n - 1); (0, n - 1) ]) ]
            ~inputs:[ (inp, [ (0, n - 1) ]) ]
            ~params:[]
        with
        | exception H.Unsupported msg ->
            Alcotest.(check bool) "mentions assertion" true
              (Astring.String.is_infix ~affix:"assertion" msg)
        | _ -> Alcotest.fail "expected bounds failure");
    Alcotest.test_case "clamped accesses stay in bounds (no false fault)"
      `Quick (fun () ->
        let p = H.pipeline "hclamp" in
        let inp = H.input p "in" 1 in
        let g =
          H.func p "g" [ "x" ]
            (Ir.Access_e
               ( "in",
                 [ E.(clamp (iter "x" -: int 1) (int 0) (int (n - 1))) ] ))
        in
        let c =
          H.compile p
            ~outputs:[ (g, [ (0, n - 1) ]) ]
            ~inputs:[ (inp, [ (0, n - 1) ]) ]
            ~params:[]
        in
        ignore c);
    Alcotest.test_case "distributed halo over-approximated under clamp"
      `Quick (fun () ->
        (* A clamped stencil forces distributed Halide to require the whole
           neighbour chunk; Tiramisu's explicit send moves just the halo. *)
        let p = H.pipeline "hdist" in
        let _ = H.input p "in" 2 in
        let g =
          H.func p "g" [ "i"; "j" ]
            (Ir.Access_e
               ( "in",
                 [
                   E.(clamp (iter "i" -: int 1) (int 0) (int 2111));
                   E.iter "j";
                 ] ))
        in
        let halide_bytes =
          H.dist_comm_bytes p ~output:g ~rows:2112 ~cols:3520 ~elems:3
            ~nodes:16
        in
        let tiramisu_bytes = float_of_int (1 * 3520 * 3 * 4) in
        Alcotest.(check bool)
          (Printf.sprintf "halide %.3g >> tiramisu %.3g" halide_bytes
             tiramisu_bytes)
          true
          (halide_bytes > 10.0 *. tiramisu_bytes));
  ]

let () = Alcotest.run "halide" [ ("halide", tests) ]
