bench/fig6.ml: Common Image List Printf Schedules Tiramisu_autosched Tiramisu_backends Tiramisu_halide Tiramisu_kernels
