bench/fig5.ml: Common Linalg List Printf Tiramisu_autosched Tiramisu_core Tiramisu_kernels
