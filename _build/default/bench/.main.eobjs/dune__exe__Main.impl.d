bench/main.ml: Array Fig1 Fig5 Fig6 Fig7 List Micro Printf String Sys Table1
