bench/micro.ml: Analyze Array Bechamel Benchmark Hashtbl Image Instance Linalg List Measure Printf Runner Schedules Staged Test Time Tiramisu_kernels Toolkit
