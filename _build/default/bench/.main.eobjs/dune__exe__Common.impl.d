bench/common.ml: List Printf Runner String Tiramisu_backends Tiramisu_halide Tiramisu_kernels
