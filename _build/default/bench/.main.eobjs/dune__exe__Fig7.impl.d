bench/fig7.ml: Common Image List Printf Schedules Tiramisu_kernels
