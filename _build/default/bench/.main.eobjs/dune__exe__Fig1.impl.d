bench/fig1.ml: Common Linalg Tiramisu_autosched Tiramisu_kernels
