bench/table1.ml: Aff Cstr Expr Ir Iset List Lower Printf Space Tiramisu Tiramisu_core Tiramisu_deps Tiramisu_halide Tiramisu_kernels Tiramisu_presburger
