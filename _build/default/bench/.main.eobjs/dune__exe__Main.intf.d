bench/main.mli:
