(* Figure 7: strong scaling of the distributed Tiramisu code on 2, 4, 8 and
   16 nodes (speedup over the 2-node time). *)

open Tiramisu_kernels

let n = 2112
let m = 3520

let dist_time name ~nodes =
  let params, fn =
    match name with
    | "cvtColor" ->
        let f, _ = Image.cvt_color () in
        Schedules.dist_cvt_color f ~n ~m ~nodes;
        ([ ("N", n); ("M", m) ], f)
    | "conv2D" ->
        let f, _, _ = Image.conv2d () in
        Schedules.dist_conv2d f ~n ~m ~nodes;
        ([ ("N", n); ("M", m) ], f)
    | "warpAffine" ->
        let f, _ = Image.warp_affine () in
        Schedules.dist_warp_affine f ~n ~m ~nodes;
        ([ ("N", n); ("M", m) ], f)
    | "gaussian" ->
        let f, _, _ = Image.gaussian () in
        Schedules.dist_gaussian f ~n ~m ~nodes;
        ([ ("N", n); ("M", m) ], f)
    | "nb" ->
        let f, _, _, _, _ = Image.nb () in
        Schedules.dist_nb f ~n ~m ~nodes;
        ([ ("N", n); ("M", m) ], f)
    | "edgeDetect" ->
        let f, _, _ = Image.edge_detector () in
        Schedules.dist_edge_detector f ~n ~nodes;
        ([ ("N", n) ], f)
    | "ticket#2373" ->
        let f, _ = Image.ticket2373 () in
        Schedules.dist_ticket2373 f ~n ~nodes;
        ([ ("N", n) ], f)
    | _ -> invalid_arg "fig7"
  in
  Common.model_ms fn params

let benches =
  [ "edgeDetect"; "conv2D"; "cvtColor"; "gaussian"; "nb"; "warpAffine";
    "ticket#2373" ]

let node_counts = [ 2; 4; 8; 16 ]

let run () =
  Printf.printf
    "\nFig. 7: distributed strong scaling (speedup over 2 nodes)\n\n";
  Printf.printf "  %-12s" "bench";
  List.iter (fun k -> Printf.printf " %8d" k) node_counts;
  Printf.printf "\n";
  List.iter
    (fun b ->
      let times = List.map (fun k -> dist_time b ~nodes:k) node_counts in
      let base = List.hd times in
      Printf.printf "  %-12s" b;
      List.iter (fun t -> Printf.printf " %8.2f" (base /. t)) times;
      Printf.printf "\n")
    benches
