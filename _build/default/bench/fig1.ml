(* Figure 1: normalized execution times of sgemm on CPU (left: Intel MKL,
   LLVM-Polly, AlphaZ, Pluto, Tiramisu) and GPU (right: cuBLAS, PENCIL, TC,
   Tiramisu).  Times come from the machine model at the paper's matrix size
   (1060 x 1060); each baseline is the corresponding system's schedule
   applied to the same algorithm. *)

open Tiramisu_kernels
module A = Tiramisu_autosched.Autosched

let s = 1060
let params = [ ("S", s) ]

let time sched =
  let f, _, _ = Linalg.sgemm () in
  sched f;
  Common.model_ms f params

let run () =
  let mkl = time (fun f -> Linalg.sgemm_tuned f) in
  let polly = time (A.apply A.polly) in
  let alphaz = time (A.apply A.alphaz) in
  let pluto = time (A.apply A.pluto) in
  let tiramisu = time (fun f -> Linalg.sgemm_tuned f) in
  Common.normalized_table ~title:"Fig. 1 (left): sgemm on CPU (1060x1060)"
    ~baseline:"Intel MKL"
    [
      ("Intel MKL", mkl); ("LLVM-Polly", polly); ("AlphaZ", alphaz);
      ("Pluto", pluto); ("Tiramisu", tiramisu);
    ];
  let cublas = time (fun f -> Linalg.sgemm_gpu ~t:32 f) in
  let pencil = time (A.apply A.pencil_gpu) in
  let tc = time (A.apply A.tc) in
  let tiramisu_gpu = time (fun f -> Linalg.sgemm_gpu ~t:16 f) in
  Common.normalized_table ~title:"Fig. 1 (right): sgemm on GPU (1060x1060)"
    ~baseline:"cuBLAS"
    [
      ("cuBLAS", cublas); ("PENCIL", pencil); ("TC", tc);
      ("Tiramisu", tiramisu_gpu);
    ]
