(* Figure 6: the heatmap — normalized execution times of the seven image
   benchmarks on single-node multicore, GPU, and 16-node distributed,
   comparing Tiramisu with Halide (or distributed Halide) and PENCIL.
   "-" marks benchmarks a framework cannot express (Halide: edgeDetector's
   cyclic buffers, ticket #2373's non-rectangular domain). *)

open Tiramisu_kernels
module A = Tiramisu_autosched.Autosched
module H = Tiramisu_halide.Halide
module HK = Tiramisu_halide.Hkernels
module M = Tiramisu_backends.Machine

let n = 2112
let m = 3520
let nodes = 16
let params_nm = [ ("N", n); ("M", m) ]
let params_n = [ ("N", n) ]

let t_model builder sched params =
  let f = builder () in
  sched f;
  Common.model_ms f params

(* distributed Halide: per-rank compute from the Halide CPU estimate,
   plus the over-approximated halo exchange and its packing pass, plus the
   ghost-zone maintenance sweep of the runtime (§VI-B-c). *)
let dist_halide_ms ~hbench ~halo_output ~row_elems cpu_ms =
  let machine = Common.machine in
  let comm_bytes =
    H.dist_comm_bytes hbench.HK.b_pipe ~output:halo_output ~rows:n
      ~cols:(m * 0 + (row_elems / 3 * 0) + m)
      ~elems:(max 1 (row_elems / m)) ~nodes
  in
  let bytes_per_ns = 1.0 /. (machine.M.lat_mem /. 64.0) in
  let pack_ns = 2.0 *. comm_bytes /. bytes_per_ns in
  let comm_ns =
    machine.M.net.M.alpha +. (comm_bytes *. machine.M.net.M.beta)
  in
  let chunk_bytes = float_of_int (n / nodes * row_elems * 4) in
  let ghost_ns = 0.5 *. chunk_bytes /. bytes_per_ns in
  (cpu_ms /. float_of_int nodes)
  +. ((comm_ns +. pack_ns +. ghost_ns) /. 1e6)

type row = {
  r_name : string;
  t_cpu : float option;
  h_cpu : float option;
  p_cpu : float option;
  t_gpu : float option;
  h_gpu : float option;
  p_gpu : float option;
  t_dist : float option;
  h_dist : float option;
}

let some f = Some (f ())

let rows () =
  let gpu_machine = Common.machine in
  ignore gpu_machine;
  [
    (let hb () = HK.cvt_color ~n ~m in
     {
       r_name = "cvtColor";
       t_cpu =
         some (fun () ->
             t_model (fun () -> fst (Image.cvt_color ()))
               Schedules.cpu_cvt_color params_nm);
       h_cpu =
         some (fun () ->
             let b = hb () in
             Common.halide_ms b b.HK.cpu_sched);
       p_cpu =
         some (fun () ->
             t_model (fun () -> fst (Image.cvt_color ()))
               (A.apply A.pencil_cpu) params_nm);
       t_gpu =
         some (fun () ->
             t_model (fun () -> fst (Image.cvt_color ()))
               Schedules.gpu_cvt_color params_nm);
       h_gpu =
         some (fun () ->
             let b = hb () in
             Common.halide_ms b b.HK.gpu_sched);
       p_gpu =
         some (fun () ->
             t_model (fun () -> fst (Image.cvt_color ()))
               (A.apply A.pencil_gpu) params_nm);
       t_dist =
         some (fun () ->
             t_model (fun () -> fst (Image.cvt_color ()))
               (fun f -> Schedules.dist_cvt_color f ~n ~m ~nodes)
               params_nm);
       h_dist =
         some (fun () ->
             let b = hb () in
             let cpu = Common.halide_ms b b.HK.cpu_sched in
             dist_halide_ms ~hbench:b ~halo_output:(List.hd b.HK.b_out)
               ~row_elems:(m * 3) cpu);
     });
    (let hb () = HK.conv2d ~n ~m in
     {
       r_name = "conv2D";
       t_cpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _ = Image.conv2d () in
                 f)
               Schedules.cpu_conv2d params_nm);
       h_cpu =
         some (fun () ->
             let b = hb () in
             Common.halide_ms b b.HK.cpu_sched);
       p_cpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _ = Image.conv2d () in
                 f)
               (A.apply A.pencil_cpu) params_nm);
       t_gpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _ = Image.conv2d () in
                 f)
               Schedules.gpu_conv2d params_nm);
       h_gpu =
         some (fun () ->
             let b = hb () in
             Common.halide_ms b b.HK.gpu_sched);
       p_gpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _ = Image.conv2d () in
                 f)
               (A.apply A.pencil_gpu) params_nm);
       t_dist =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _ = Image.conv2d () in
                 f)
               (fun f -> Schedules.dist_conv2d f ~n ~m ~nodes)
               params_nm);
       h_dist =
         some (fun () ->
             let b = hb () in
             let cpu = Common.halide_ms b b.HK.cpu_sched in
             dist_halide_ms ~hbench:b ~halo_output:(List.hd b.HK.b_out)
               ~row_elems:(m * 3) cpu);
     });
    (let hb () = HK.warp_affine ~n ~m in
     {
       r_name = "warpAffine";
       t_cpu =
         some (fun () ->
             t_model (fun () -> fst (Image.warp_affine ()))
               Schedules.cpu_warp_affine params_nm);
       h_cpu =
         some (fun () ->
             let b = hb () in
             Common.halide_ms b b.HK.cpu_sched);
       p_cpu =
         some (fun () ->
             t_model (fun () -> fst (Image.warp_affine ()))
               (A.apply A.pencil_cpu) params_nm);
       t_gpu =
         some (fun () ->
             t_model (fun () -> fst (Image.warp_affine ()))
               Schedules.gpu_warp_affine params_nm);
       h_gpu =
         some (fun () ->
             let b = hb () in
             Common.halide_ms b b.HK.gpu_sched);
       p_gpu =
         some (fun () ->
             t_model (fun () -> fst (Image.warp_affine ()))
               (A.apply A.pencil_gpu) params_nm);
       t_dist =
         some (fun () ->
             t_model (fun () -> fst (Image.warp_affine ()))
               (fun f -> Schedules.dist_warp_affine f ~n ~m ~nodes)
               params_nm);
       h_dist =
         some (fun () ->
             let b = hb () in
             let cpu = Common.halide_ms b b.HK.cpu_sched in
             dist_halide_ms ~hbench:b ~halo_output:(List.hd b.HK.b_out)
               ~row_elems:m cpu);
     });
    (let hb () = HK.gaussian ~n ~m in
     {
       r_name = "gaussian";
       t_cpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _ = Image.gaussian () in
                 f)
               Schedules.cpu_gaussian params_nm);
       h_cpu =
         some (fun () ->
             let b = hb () in
             Common.halide_ms b b.HK.cpu_sched);
       p_cpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _ = Image.gaussian () in
                 f)
               (A.apply A.pencil_cpu) params_nm);
       t_gpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _ = Image.gaussian () in
                 f)
               Schedules.gpu_gaussian params_nm);
       h_gpu =
         some (fun () ->
             let b = hb () in
             Common.halide_ms b b.HK.gpu_sched);
       p_gpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _ = Image.gaussian () in
                 f)
               (A.apply A.pencil_gpu) params_nm);
       t_dist =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _ = Image.gaussian () in
                 f)
               (fun f -> Schedules.dist_gaussian f ~n ~m ~nodes)
               params_nm);
       h_dist =
         some (fun () ->
             let b = hb () in
             let cpu = Common.halide_ms b b.HK.cpu_sched in
             dist_halide_ms ~hbench:b ~halo_output:(List.hd b.HK.b_out)
               ~row_elems:(m * 3) cpu);
     });
    (let hb () = HK.nb ~n ~m in
     {
       r_name = "nb";
       t_cpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _, _, _ = Image.nb () in
                 f)
               (Schedules.cpu_nb ~fuse:true) params_nm);
       h_cpu =
         some (fun () ->
             let b = hb () in
             Common.halide_ms b b.HK.cpu_sched);
       p_cpu =
         some (fun () ->
             (* PENCIL fuses via its polyhedral scheduler: matches Tiramisu
                here (the paper reports 1). *)
             t_model
               (fun () ->
                 let f, _, _, _, _ = Image.nb () in
                 f)
               (fun f ->
                 Schedules.cpu_nb ~fuse:true f)
               params_nm);
       t_gpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _, _, _ = Image.nb () in
                 f)
               (Schedules.gpu_nb ~fuse:true) params_nm);
       h_gpu =
         some (fun () ->
             let b = hb () in
             Common.halide_ms b b.HK.gpu_sched);
       p_gpu =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _, _, _ = Image.nb () in
                 f)
               (A.apply A.pencil_gpu) params_nm);
       t_dist =
         some (fun () ->
             t_model
               (fun () ->
                 let f, _, _, _, _ = Image.nb () in
                 f)
               (fun f -> Schedules.dist_nb f ~n ~m ~nodes)
               params_nm);
       h_dist =
         some (fun () ->
             let b = hb () in
             let cpu = Common.halide_ms b b.HK.cpu_sched in
             dist_halide_ms ~hbench:b ~halo_output:(List.hd b.HK.b_out)
               ~row_elems:(m * 3) cpu);
     });
    {
      r_name = "edgeDetector";
      t_cpu =
        some (fun () ->
            t_model
              (fun () ->
                let f, _, _ = Image.edge_detector () in
                f)
              Schedules.cpu_edge_detector params_n);
      h_cpu = None (* cyclic dataflow: not expressible in Halide *);
      p_cpu =
        some (fun () ->
            t_model
              (fun () ->
                let f, _, _ = Image.edge_detector () in
                f)
              (A.apply A.pencil_cpu) params_n);
      t_gpu =
        some (fun () ->
            t_model
              (fun () ->
                let f, _, _ = Image.edge_detector () in
                f)
              Schedules.gpu_edge_detector params_n);
      h_gpu = None;
      p_gpu =
        some (fun () ->
            t_model
              (fun () ->
                let f, _, _ = Image.edge_detector () in
                f)
              (A.apply A.pencil_gpu) params_n);
      t_dist =
        some (fun () ->
            t_model
              (fun () ->
                let f, _, _ = Image.edge_detector () in
                f)
              (fun f -> Schedules.dist_edge_detector f ~n ~nodes)
              params_n);
      h_dist = None;
    };
    {
      r_name = "ticket#2373";
      t_cpu =
        some (fun () ->
            t_model (fun () -> fst (Image.ticket2373 ()))
              Schedules.cpu_ticket2373 params_n);
      h_cpu = None (* bounds over-approximation faults at execution *);
      p_cpu =
        some (fun () ->
            t_model (fun () -> fst (Image.ticket2373 ()))
              (A.apply A.pencil_cpu) params_n);
      t_gpu =
        some (fun () ->
            t_model (fun () -> fst (Image.ticket2373 ()))
              Schedules.gpu_ticket2373 params_n);
      h_gpu = None;
      p_gpu =
        some (fun () ->
            t_model (fun () -> fst (Image.ticket2373 ()))
              (A.apply A.pencil_gpu) params_n);
      t_dist =
        some (fun () ->
            t_model (fun () -> fst (Image.ticket2373 ()))
              (fun f -> Schedules.dist_ticket2373 f ~n ~nodes)
              params_n);
      h_dist = None;
    };
  ]

let norm base v =
  match (base, v) with
  | Some b, Some x -> Some (x /. b)
  | _ -> None

let run () =
  let rows = rows () in
  Printf.printf
    "\nFig. 6 heatmap: normalized times, %dx%d RGB image (lower is better, \
     Tiramisu = 1, '-' = unsupported)\n\n" n m;
  Printf.printf "  %-32s %12s\n" "" "benchmarks";
  Printf.printf "  %-14s %-12s" "arch" "framework";
  List.iter (fun r -> Printf.printf " %12s" r.r_name) rows;
  Printf.printf "\n";
  let line arch fw get base =
    Printf.printf "  %-14s %-12s" arch fw;
    List.iter
      (fun r ->
        Printf.printf " %12s" (Common.heat_cell (norm (base r) (get r))))
      rows;
    Printf.printf "\n"
  in
  line "multicore" "Tiramisu" (fun r -> r.t_cpu) (fun r -> r.t_cpu);
  line "multicore" "Halide" (fun r -> r.h_cpu) (fun r -> r.t_cpu);
  line "multicore" "PENCIL" (fun r -> r.p_cpu) (fun r -> r.t_cpu);
  line "GPU" "Tiramisu" (fun r -> r.t_gpu) (fun r -> r.t_gpu);
  line "GPU" "Halide" (fun r -> r.h_gpu) (fun r -> r.t_gpu);
  line "GPU" "PENCIL" (fun r -> r.p_gpu) (fun r -> r.t_gpu);
  line "dist (16)" "Tiramisu" (fun r -> r.t_dist) (fun r -> r.t_dist);
  line "dist (16)" "dist-Halide" (fun r -> r.h_dist) (fun r -> r.t_dist)
