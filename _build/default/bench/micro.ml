(* Bechamel wall-clock micro-benchmarks of the *generated code itself*
   (executed by the reference interpreter) at reduced sizes — one Test.make
   per paper artifact, demonstrating that the compiled pipelines actually
   run end-to-end.  Absolute times are interpreter times, not native times;
   the paper-shape numbers come from the machine model (fig1/fig5/fig6/
   fig7). *)

open Bechamel
open Toolkit
open Tiramisu_kernels

let img3 (idx : int array) =
  float_of_int (((idx.(0) * 13) + (idx.(1) * 7) + (idx.(2) * 3)) mod 31) /. 7.0

let am (idx : int array) =
  float_of_int (((idx.(0) * 7) + (idx.(1) * 3)) mod 11) /. 4.0

let run_fn fn params inputs =
  let thunk = Runner.prepare ~fn ~params ~inputs in
  fun () -> ignore (thunk ())

let test_of name build =
  Test.make ~name (Staged.stage (build ()))

let tests () =
  let blur_naive =
    let f, _, _ = Image.blur () in
    run_fn f [ ("N", 64); ("M", 48) ] [ ("img", img3) ]
  in
  let blur_sched =
    let f, _, _ = Image.blur () in
    Schedules.cpu_blur ~t:8 f;
    run_fn f [ ("N", 64); ("M", 48) ] [ ("img", img3) ]
  in
  let nb_unfused =
    let f, _, _, _, _ = Image.nb () in
    Schedules.cpu_nb ~fuse:false f;
    run_fn f [ ("N", 64); ("M", 48) ] [ ("img", img3) ]
  in
  let nb_fused =
    let f, _, _, _, _ = Image.nb () in
    Schedules.cpu_nb ~fuse:true f;
    run_fn f [ ("N", 64); ("M", 48) ] [ ("img", img3) ]
  in
  let gemm_naive =
    let f, _, _ = Linalg.sgemm () in
    run_fn f [ ("S", 32) ] [ ("A", am); ("B", am); ("C0", am) ]
  in
  let gemm_tuned =
    let f, _, _ = Linalg.sgemm () in
    Linalg.sgemm_tuned ~bi:8 ~bj:8 ~bk:8 ~vec:4 ~unr:4 f;
    run_fn f [ ("S", 32) ] [ ("A", am); ("B", am); ("C0", am) ]
  in
  Test.make_grouped ~name:"generated-code"
    [
      Test.make ~name:"fig3/blur-unscheduled" (Staged.stage blur_naive);
      Test.make ~name:"fig3/blur-tiled+compute_at" (Staged.stage blur_sched);
      Test.make ~name:"fig6/nb-unfused" (Staged.stage nb_unfused);
      Test.make ~name:"fig6/nb-fused" (Staged.stage nb_fused);
      Test.make ~name:"fig1/sgemm-naive" (Staged.stage gemm_naive);
      Test.make ~name:"fig1/sgemm-tuned" (Staged.stage gemm_tuned);
    ]

let run () =
  Printf.printf
    "\nBechamel micro-benchmarks (interpreted generated code, reduced \
     sizes)\n\n";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun _instance tbl ->
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Printf.printf "  %-32s %12.3f us/run\n" name (est /. 1e3)
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        tbl)
    results

let _ = test_of
