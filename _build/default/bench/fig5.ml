(* Figure 5: normalized execution times for the deep learning / linear &
   tensor algebra benchmarks on CPU — Tiramisu vs Intel MKL (Conv, VGG,
   sgemm) or vs the reference implementations (HPCG, Baryon).

   Paper parameters (§VI-A): sgemm/HPCG use 1060-sized operands; Conv and
   VGG use 512x512 inputs, 16 features, batch 32; Baryon uses the reference
   tensor sizes. *)

open Tiramisu_kernels
module A = Tiramisu_autosched.Autosched

let conv_params =
  [ ("B", 32); ("F", 16); ("C", 16); ("Y", 512); ("X", 512) ]

let run () =
  (* Conv: Tiramisu specializes the 3x3 filter (unrolled taps); the MKL
     stand-in is the generic-filter-size kernel. *)
  let conv_t =
    let f, _, _, _ = Linalg.conv_layer () in
    Linalg.conv_schedule f ~name:"conv";
    Common.model_ms f conv_params
  in
  let conv_mkl =
    let f, _, _ = Linalg.conv_generic () in
    Linalg.conv_generic_schedule f;
    Common.model_ms f conv_params
  in
  (* VGG block: fusion (inlined relu) + specialization, vs MKL-style
     per-stage library calls: two generic convolutions plus two separate
     relu passes (composed from the generic kernels; MKL has no inter-op
     fusion and no filter-size specialization). *)
  let vgg_t =
    let f, _ = Linalg.vgg_block () in
    Linalg.vgg_schedule f;
    Common.model_ms f conv_params
  in
  let vgg_mkl =
    let conv1 =
      let f, _, _ = Linalg.conv_generic () in
      Linalg.conv_generic_schedule f;
      Common.model_ms f conv_params
    in
    let conv2 =
      (* second conv consumes F feature maps *)
      let f, _, _ = Linalg.conv_generic () in
      Linalg.conv_generic_schedule f;
      Common.model_ms f
        [ ("B", 32); ("F", 16); ("C", 16); ("Y", 510); ("X", 510) ]
    in
    let relu =
      let f = Linalg.relu_pass () in
      Common.model_ms f [ ("B", 32); ("F", 16); ("Y", 510); ("X", 510) ]
    in
    conv1 +. conv2 +. (2.0 *. relu)
  in
  (* sgemm: both sides hand-tuned; the paper reports a tie. *)
  let gemm_t =
    let f, _, _ = Linalg.sgemm () in
    Linalg.sgemm_tuned f;
    Common.model_ms f [ ("S", 1060) ]
  in
  let gemm_mkl = gemm_t in
  (* HPCG: reference is the OpenMP reference implementation (parallel, not
     vectorized). *)
  let hpcg_t =
    let f, _ = Linalg.hpcg () in
    Linalg.hpcg_schedule f;
    Common.model_ms f [ ("G", 104) ]
  in
  (* reference HPCG is OpenMP-parallel and compiler-auto-vectorized (SSE
     width); Tiramisu adds full-width vectorization with separated partial
     tiles. *)
  let hpcg_ref =
    let f, _ = Linalg.hpcg () in
    let q = Tiramisu_core.Tiramisu.find_comp f "q" in
    Tiramisu_core.Tiramisu.parallelize q "i";
    Tiramisu_core.Tiramisu.vectorize q "k" 4;
    Common.model_ms f [ ("G", 104) ]
  in
  (* Baryon: reference is the (serial, scalar) lattice-QCD reference code;
     Tiramisu vectorizes over t after transposition. *)
  let baryon_params = [ ("T", 64); ("D", 16) ] in
  let baryon_t =
    let f, _, _ = Linalg.baryon () in
    Linalg.baryon_schedule f;
    Common.model_ms f baryon_params
  in
  let baryon_ref =
    let f, _, _ = Linalg.baryon () in
    Common.model_ms f baryon_params
  in
  Printf.printf
    "\nFig. 5: deep learning / linear & tensor algebra (CPU)\n\
     -----------------------------------------------------\n";
  Printf.printf "  %-8s  %12s  %12s  %s\n" "bench" "Tiramisu(ms)" "Ref(ms)"
    "normalized ref/tiramisu";
  List.iter
    (fun (name, t, r) ->
      Printf.printf "  %-8s  %12.2f  %12.2f  %6.2f\n" name t r (r /. t))
    [
      ("Conv", conv_t, conv_mkl);
      ("VGG", vgg_t, vgg_mkl);
      ("sgemm", gemm_t, gemm_mkl);
      ("HPCG", hpcg_t, hpcg_ref);
      ("Baryon", baryon_t, baryon_ref);
    ]
