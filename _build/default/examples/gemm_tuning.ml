(* sgemm scheduling walkthrough (§VI-A): the same Layer-I algorithm under
   increasingly aggressive schedules — naive, Pluto-style automatic, and the
   hand-tuned MKL-class schedule (two-level blocking + vectorization +
   unrolling + full/partial tile separation) — with a small tile-size sweep
   standing in for the paper's auto-tuner.

   Run with: dune exec examples/gemm_tuning.exe *)

open Tiramisu_kernels
module B = Tiramisu_backends

let s_paper = 1060

let model sched =
  let f, _, _ = Linalg.sgemm () in
  sched f;
  (Runner.model ~fn:f ~params:[ ("S", s_paper) ] ()).B.Cost.time_ns /. 1e6

let verify sched =
  (* correctness at a deliberately non-divisible size *)
  let f, _, _ = Linalg.sgemm () in
  sched f;
  let s = 13 in
  let am (i : int array) = float_of_int (((i.(0) * 7) + (i.(1) * 3)) mod 11) in
  let bm (i : int array) = float_of_int (((i.(0) * 5) + i.(1)) mod 9) in
  let cm (i : int array) = float_of_int ((i.(0) + i.(1)) mod 7) in
  let expect idx =
    let acc = ref (Linalg.beta *. cm idx) in
    for k = 0 to s - 1 do
      acc :=
        !acc +. (Linalg.alpha *. am [| idx.(0); k |] *. bm [| k; idx.(1) |])
    done;
    !acc
  in
  match
    Runner.check ~fn:f ~params:[ ("S", s) ]
      ~inputs:[ ("A", am); ("B", bm); ("C0", cm) ]
      ~output:"C" ~expect ()
  with
  | Ok () -> "ok"
  | Error e -> "FAILED: " ^ e

let () =
  Printf.printf "sgemm C = alpha*A*B + beta*C at %dx%d (model times)\n\n"
    s_paper s_paper;
  let naive = model (fun _ -> ()) in
  let pluto = model (Linalg.sgemm_pluto ~t:32) in
  Printf.printf "  %-28s %10.2f ms   correctness %s\n" "naive (no schedule)"
    naive
    (verify (fun _ -> ()));
  Printf.printf "  %-28s %10.2f ms   correctness %s\n" "pluto-style automatic"
    pluto
    (verify (Linalg.sgemm_pluto ~t:4));
  (* tile-size sweep: the paper used auto-tuning to pick block sizes *)
  Printf.printf "\n  tile sweep for the tuned schedule:\n";
  let best = ref (infinity, (0, 0, 0)) in
  List.iter
    (fun (bi, bj, bk) ->
      let t = model (Linalg.sgemm_tuned ~bi ~bj ~bk ~vec:8 ~unr:4) in
      if t < fst !best then best := (t, (bi, bj, bk));
      Printf.printf "    %3dx%-3d k=%-2d  %10.2f ms\n" bi bj bk t)
    [ (16, 32, 8); (32, 64, 8); (64, 64, 8); (32, 128, 16); (64, 128, 8) ];
  let tbest, (bi, bj, bk) = !best in
  Printf.printf
    "\n  %-28s %10.2f ms   (blocks %dx%d, k=%d)   correctness %s\n"
    "hand-tuned (best of sweep)" tbest bi bj bk
    (verify (Linalg.sgemm_tuned ~bi:4 ~bj:4 ~bk:4 ~vec:2 ~unr:2));
  Printf.printf "\n  speedup tuned vs naive: %.1fx, vs pluto: %.1fx\n"
    (naive /. tbest) (pluto /. tbest)
