(* Quickstart: the paper's running example (Figs. 2 and 3a).

   Build the two-stage blur as a pure Layer-I algorithm, apply the multicore
   schedule of Fig. 3a (tile + parallelize + compute_at + vectorize), print
   the generated pseudocode, execute it, and check the output against a
   straightforward reference.

   Run with: dune exec examples/quickstart.exe *)

open Tiramisu_presburger
open Tiramisu_core
module B = Tiramisu_backends
module E = Expr

let a = Aff.var
let c0 = Aff.const

let () =
  (* ------------------------------------------------ the pure algorithm *)
  let f = Tiramisu.create ~params:[ "N"; "M" ] "blur" in
  let i = Tiramisu.var "i" (c0 0) Aff.(a "N" - c0 2) in
  let ib = Tiramisu.var "i" (c0 0) Aff.(a "N" - c0 4) in
  let j = Tiramisu.var "j" (c0 0) Aff.(a "M" - c0 2) in
  let c = Tiramisu.var "c" (c0 0) (c0 3) in
  let open Tiramisu in
  let img =
    input f "img"
      [ var "i" (c0 0) (a "N"); var "j" (c0 0) (a "M"); c ]
  in
  let bx =
    comp f "bx" [ i; j; c ]
      E.(
        ((img $ [ x i; x j; x c ])
        +: (img $ [ x i; x j +: int 1; x c ])
        +: (img $ [ x i; x j +: int 2; x c ]))
        /: float 3.0)
  in
  let by =
    comp f "by" [ ib; j; c ]
      E.(
        ((bx $ [ x ib; x j; x c ])
        +: (bx $ [ x ib +: int 1; x j; x c ])
        +: (bx $ [ x ib +: int 2; x j; x c ]))
        /: float 3.0)
  in

  (* ------------------------------------- Fig. 3a scheduling commands *)
  tile by "i" "j" 8 8 "i0" "j0" "i1" "j1";
  parallelize by "i0";
  compute_at bx by "j0";
  vectorize by "j1" 8;

  (* ------------------------------------------------- legality check *)
  let violations = Tiramisu_deps.Deps.check_legality f in
  Printf.printf "legality: %s\n\n"
    (if violations = [] then "schedule preserves all dependences"
     else "VIOLATED");

  (* -------------------------------------------- generated pseudocode *)
  print_endline "generated code (Fig. 3a right-hand side):";
  print_endline (Lower.pseudocode f);

  (* -------------------------------------------------- run and check *)
  let n = 20 and m = 16 in
  let params = [ ("N", n); ("M", m) ] in
  let pix (idx : int array) =
    float_of_int (((idx.(0) * 13) + (idx.(1) * 7) + idx.(2)) mod 19)
  in
  let interp =
    Tiramisu_kernels.Runner.run ~fn:f ~params ~inputs:[ ("img", pix) ]
  in
  let out = B.Interp.buffer interp "by" in
  let reference i j ch =
    let bx i j = (pix [| i; j; ch |] +. pix [| i; j + 1; ch |] +. pix [| i; j + 2; ch |]) /. 3.0 in
    (bx i j +. bx (i + 1) j +. bx (i + 2) j) /. 3.0
  in
  let ok = ref true in
  for i = 0 to n - 5 do
    for j = 0 to m - 3 do
      for ch = 0 to 2 do
        if Float.abs (B.Buffers.get out [| i; j; ch |] -. reference i j ch)
           > 1e-4
        then ok := false
      done
    done
  done;
  Printf.printf "\nexecution: %s (%d stores, %d loads)\n"
    (if !ok then "matches the reference" else "MISMATCH")
    (B.Interp.counters interp).B.Interp.stores
    (B.Interp.counters interp).B.Interp.loads;

  (* --------------------------------------------------- machine model *)
  let report =
    Tiramisu_kernels.Runner.model ~fn:f ~params:[ ("N", 2112); ("M", 3520) ]
      ()
  in
  Format.printf "estimated time at 2112x3520 on %s: %a@."
    B.Machine.default.B.Machine.name B.Cost.pp_report report
