examples/quickstart.ml: Aff Array Expr Float Format Lower Printf Tiramisu Tiramisu_backends Tiramisu_core Tiramisu_deps Tiramisu_kernels Tiramisu_presburger
