examples/distributed_blur.ml: Array Float Image List Printf Runner Schedules Tiramisu_backends Tiramisu_core Tiramisu_kernels
