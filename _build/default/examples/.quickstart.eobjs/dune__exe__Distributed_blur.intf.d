examples/distributed_blur.mli:
