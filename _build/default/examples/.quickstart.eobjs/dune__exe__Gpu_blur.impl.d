examples/gpu_blur.ml: Array Format Image List Printf Runner Schedules String Tiramisu_backends Tiramisu_codegen Tiramisu_core Tiramisu_kernels
