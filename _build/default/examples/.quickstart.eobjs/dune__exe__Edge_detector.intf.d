examples/edge_detector.mli:
