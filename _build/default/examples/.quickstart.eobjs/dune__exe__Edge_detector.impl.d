examples/edge_detector.ml: Array Expr Ir Printf Tiramisu Tiramisu_backends Tiramisu_core Tiramisu_deps Tiramisu_halide Tiramisu_kernels
