examples/quickstart.mli:
