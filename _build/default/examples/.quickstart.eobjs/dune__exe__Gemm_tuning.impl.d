examples/gemm_tuning.ml: Array Linalg List Printf Runner Tiramisu_backends Tiramisu_kernels
