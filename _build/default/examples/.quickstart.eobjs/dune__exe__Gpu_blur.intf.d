examples/gpu_blur.mli:
