(* Distributed execution example (Fig. 3c): split the blur's rows across
   ranks, exchange halo rows with explicit asynchronous send / synchronous
   receive commands, and distribute the outer loops.  The functional
   simulator checks the exchanged data is correct; the α–β network model
   reports the communication cost and the strong-scaling curve (Fig. 7).

   Run with: dune exec examples/distributed_blur.exe *)

open Tiramisu_kernels
module B = Tiramisu_backends

let () =
  let n = 32 and m = 24 in
  let nodes = 4 in
  let f, _, _ = Image.blur () in
  Schedules.dist_blur f ~n ~m ~nodes;
  print_endline "generated code (Fig. 3c right-hand side):";
  print_endline (Tiramisu_core.Lower.pseudocode f);

  let pix (idx : int array) =
    float_of_int (((idx.(0) * 7) + (idx.(1) * 3) + idx.(2)) mod 23)
  in
  let interp =
    Runner.run ~fn:f ~params:[ ("N", n); ("M", m) ] ~inputs:[ ("img", pix) ]
  in
  let c = B.Interp.counters interp in
  Printf.printf
    "\nfunctional simulation on %d ranks: %d messages, %d bytes exchanged\n"
    nodes c.B.Interp.messages c.B.Interp.bytes_sent;

  (* correctness across the rank boundaries *)
  let out = B.Interp.buffer interp "by" in
  let reference i j ch =
    let bx i j =
      (pix [| i; j; ch |] +. pix [| i; j + 1; ch |] +. pix [| i; j + 2; ch |])
      /. 3.0
    in
    (bx i j +. bx (i + 1) j +. bx (i + 2) j) /. 3.0
  in
  let ok = ref true in
  for i = 0 to n - 5 do
    for j = 0 to m - 3 do
      for ch = 0 to 2 do
        if Float.abs (B.Buffers.get out [| i; j; ch |] -. reference i j ch)
           > 1e-4
        then ok := false
      done
    done
  done;
  Printf.printf "boundary rows correct across ranks: %b\n" !ok;

  (* strong scaling at the paper's image size (Fig. 7) *)
  Printf.printf "\nstrong scaling at 2112x3520 (speedup over 2 nodes):\n";
  let time nodes =
    let f, _, _ = Image.blur () in
    Schedules.dist_blur f ~n:2112 ~m:3520 ~nodes;
    (Runner.model ~fn:f ~params:[ ("N", 2112); ("M", 3520) ] ())
      .B.Cost.time_ns
  in
  let t2 = time 2 in
  List.iter
    (fun k -> Printf.printf "  %2d nodes: %5.2fx\n" k (t2 /. time k))
    [ 2; 4; 8; 16 ]
