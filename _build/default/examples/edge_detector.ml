(* edgeDetector (§VI-B): a ring blur followed by Roberts edge detection,
   writing the result back into the image buffer — a cyclic memory dataflow
   that the interval-based Halide baseline rejects, while the polyhedral
   representation handles it naturally.  Also demonstrates exact dependence
   analysis certifying a skewed schedule Halide cannot express at all.

   Run with: dune exec examples/edge_detector.exe *)

open Tiramisu_core
module B = Tiramisu_backends
module D = Tiramisu_deps.Deps
module H = Tiramisu_halide.Halide

let () =
  (* Tiramisu side: builds, schedules and runs. *)
  let f, r, _ = Tiramisu_kernels.Image.edge_detector () in
  Tiramisu_kernels.Schedules.cpu_edge_detector f;
  Printf.printf "tiramisu: cyclic in-place pipeline lowered fine; legality: %s\n"
    (if D.check_legality f = [] then "all dependences preserved" else "BUG");
  let n = 16 in
  let interp =
    Tiramisu_kernels.Runner.run ~fn:f ~params:[ ("N", n) ]
      ~inputs:
        [ ("img", fun idx -> float_of_int (((idx.(0) * 3) + idx.(1)) mod 7)) ]
  in
  Printf.printf "tiramisu: executed; edges[2][2] = %g\n"
    (B.Buffers.get (B.Interp.buffer interp "img") [| 2; 2 |]);

  (* Halide side: the same in-place pattern is rejected. *)
  let p = H.pipeline "hedge" in
  let img = H.input p "img" 2 in
  let hr =
    H.func p "r" [ "i"; "j" ]
      Expr.(Ir.Access_e ("img", [ iter "i"; iter "j" ]) /: float 8.0)
  in
  (match H.store_in_input hr img with
  | () -> print_endline "halide: accepted (unexpected!)"
  | exception H.Unsupported msg -> Printf.printf "halide: rejected — %s\n" msg);

  (* Skewing: legal on the blur stage thanks to dependence analysis; not
     expressible in an interval-based scheduler at all. *)
  let f2, r2, _ = Tiramisu_kernels.Image.edge_detector () in
  ignore r;
  Tiramisu.skew r2 "i" "j" 1;
  Printf.printf "skewed schedule legality: %s\n"
    (if D.check_legality f2 = [] then "legal (certified by dependence \
                                       analysis)"
     else "illegal");
  let interp2 =
    Tiramisu_kernels.Runner.run ~fn:f2 ~params:[ ("N", n) ]
      ~inputs:
        [ ("img", fun idx -> float_of_int (((idx.(0) * 3) + idx.(1)) mod 7)) ]
  in
  Printf.printf "skewed execution matches: %b\n"
    (B.Buffers.equal
       (B.Interp.buffer interp "img")
       (B.Interp.buffer interp2 "img"))
