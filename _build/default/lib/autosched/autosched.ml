open Tiramisu_core
open Ir
module D = Tiramisu_deps.Deps
module T = Tiramisu

type profile = {
  ps_name : string;
  tiles : bool;
  tile_size : int;
  vectorizes : bool;
  moves_deps_inner : bool;
  gpu : bool;
  gpu_tile : int;
  gpu_constant_mem : bool;
  good_thread_map : bool;
}

let pluto =
  { ps_name = "Pluto"; tiles = true; tile_size = 32; vectorizes = false;
    moves_deps_inner = true; gpu = false; gpu_tile = 0;
    gpu_constant_mem = false; good_thread_map = false }

let polly = { pluto with ps_name = "Polly"; tile_size = 64 }
let pencil_cpu = { pluto with ps_name = "PENCIL" }

let pencil_gpu =
  { pluto with ps_name = "PENCIL-GPU"; tiles = false; gpu = true;
    gpu_tile = 24 (* non-divisor: divergent guards in the kernel *) }

let alphaz =
  (* Scheduling language, used here with a tiling-only recipe. *)
  { pluto with ps_name = "AlphaZ"; moves_deps_inner = false; tile_size = 16 }

let tc =
  (* Tensor Comprehensions: autotuned mapper finds the coalescing-friendly
     thread order but favours small blocks; no constant-memory placement. *)
  { ps_name = "TC"; tiles = false; tile_size = 0; vectorizes = false;
    moves_deps_inner = false; gpu = true; gpu_tile = 8;
    gpu_constant_mem = false; good_thread_map = true }

(* Dependence "distance" carried by each iterator of a computation: the
   largest |constant offset| over its stencil accesses along that dim. *)
let dep_distances fn (c : computation) =
  let offsets = Array.make (List.length c.iters) 0 in
  List.iter
    (fun (pname, idx) ->
      match
        List.find_opt
          (fun (p : computation) -> p.comp_name = pname && p.kind = Regular)
          fn.comps
      with
      | None -> ()
      | Some _ ->
          List.iteri
            (fun k (e : Ir.expr) ->
              if k < Array.length offsets then
                match Expr.to_aff ~iters:c.iters ~params:fn.params e with
                | Some a ->
                    let const = abs (Tiramisu_presburger.Aff.constant_part a) in
                    offsets.(k) <- max offsets.(k) const
                | None ->
                    (* clamped stencil: treat as distance 2 *)
                    offsets.(k) <- max offsets.(k) 2)
            idx)
    (Expr.accesses (Lower.expand fn c.expr));
  offsets

(* Move the dimension with the largest dependence distance innermost, one
   legality-checked interchange at a time (revert if a dependence is
   violated). *)
let sink_dep_dims fn (c : computation) =
  let dist = dep_distances fn c in
  let dyn () = List.map (fun d -> d.d_name) (dyn_dims c.sched) in
  let names = dyn () in
  let n = List.length names in
  if n >= 2 then begin
    (* index of max-distance dim *)
    let best = ref 0 in
    Array.iteri (fun k v -> if v > dist.(!best) then best := k) dist;
    if dist.(!best) > 0 && !best < n - 1 then begin
      let name = List.nth names !best in
      (* bubble it to the innermost position *)
      let rec bubble () =
        let names = dyn () in
        match List.find_index (( = ) name) names with
        | Some k when k < List.length names - 1 ->
            let next = List.nth names (k + 1) in
            T.interchange c name next;
            if D.check_legality fn <> [] then
              (* illegal: revert and stop *)
              T.interchange c name next
            else bubble ()
        | _ -> ()
      in
      bubble ()
    end
  end

let schedule_comp profile fn (c : computation) =
  if profile.moves_deps_inner then sink_dep_dims fn c;
  let dyn () = List.map (fun d -> d.d_name) (dyn_dims c.sched) in
  let names = dyn () in
  match names with
  | [] -> ()
  | first :: rest ->
      if profile.gpu then begin
        match rest with
        | second :: _ ->
            T.tile c first second profile.gpu_tile profile.gpu_tile
              (first ^ "0") (second ^ "0") (first ^ "1") (second ^ "1");
            if profile.good_thread_map then
              (* autotuned mapping: thread-x on the contiguous dim *)
              T.gpu c
                [ second ^ "0"; first ^ "0" ]
                [ second ^ "1"; first ^ "1" ]
            else
              (* naive mapping: thread-x on the outer (row) dim — the
                 uncoalesced accesses behind PENCIL's GPU gap *)
              T.gpu c
                [ first ^ "0"; second ^ "0" ]
                [ first ^ "1"; second ^ "1" ]
        | [] -> T.parallelize c first
      end
      else begin
        (match rest with
        | second :: _ when profile.tiles ->
            T.tile c first second profile.tile_size profile.tile_size
              (first ^ "0") (second ^ "0") (first ^ "1") (second ^ "1");
            T.parallelize c (first ^ "0")
        | _ -> T.parallelize c first);
        if profile.vectorizes then
          match List.rev (dyn ()) with
          | inner :: _ -> T.vectorize c inner 8
          | [] -> ()
      end

let apply profile fn =
  let regs =
    List.filter
      (fun (c : computation) -> c.kind = Regular && not c.inlined)
      fn.comps
  in
  List.iter (schedule_comp profile fn) regs;
  if profile.gpu then begin
    (* bracket with host/device copies like the hand-written GPU schedules *)
    List.iteri
      (fun k (c : computation) ->
        if c.kind = Input then begin
          let cp = T.host_to_device fn c in
          Schedule.set_static cp.sched 0 (-20 + k)
        end)
      fn.comps;
    match List.rev regs with
    | last :: _ ->
        let cp = T.device_to_host fn last in
        Schedule.set_static cp.sched 0 2000
    | [] -> ()
  end
