(** Fully automatic polyhedral scheduling — the Pluto-algorithm baseline
    (§II-a) used by Pluto, PENCIL and Polly, with per-system capability
    profiles for the Fig. 1 / Fig. 6 comparisons.

    The (simplified) objective is the one the paper critiques: minimize the
    distance between producer and consumer statements and maximize outermost
    parallelism — without considering data layout, spatial locality, or the
    control overhead of the generated code.  Concretely:

    + dimensions carrying dependences are moved innermost (legality-checked
      with the shared dependence analysis, reverting illegal moves);
    + the two outermost dimensions are tiled when the profile supports it;
    + the outermost loop is parallelized;
    + vectorization, unrolling, array packing and register blocking are
      {e never} applied — the key optimizations these compilers lack
      (§II-a) — unless the profile says otherwise. *)

type profile = {
  ps_name : string;
  tiles : bool;
  tile_size : int;
  vectorizes : bool;         (** TC's autotuner does vectorize-ish mapping *)
  moves_deps_inner : bool;   (** the fusion-distance objective *)
  gpu : bool;
  gpu_tile : int;            (** thread-block edge; a non-divisor of typical
                                 sizes yields divergent guards (PENCIL's
                                 "unnecessarily complicated control flow") *)
  gpu_constant_mem : bool;
  good_thread_map : bool;
      (** thread-x on the contiguous dimension (coalescing) *)
}

val pluto : profile
val polly : profile
val pencil_cpu : profile
val pencil_gpu : profile
val alphaz : profile
val tc : profile

val apply : profile -> Tiramisu_core.Ir.fn -> unit
(** Schedule every regular computation of the pipeline according to the
    profile.  CPU profiles produce CPU code; GPU profiles map the two
    outermost dimensions to the GPU grid. *)
