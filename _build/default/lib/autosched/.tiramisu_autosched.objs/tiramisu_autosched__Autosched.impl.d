lib/autosched/autosched.ml: Array Expr Ir List Lower Schedule Tiramisu Tiramisu_core Tiramisu_deps Tiramisu_presburger
