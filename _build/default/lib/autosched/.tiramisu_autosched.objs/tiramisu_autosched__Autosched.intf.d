lib/autosched/autosched.mli: Tiramisu_core
