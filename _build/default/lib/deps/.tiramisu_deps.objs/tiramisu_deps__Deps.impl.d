lib/deps/deps.ml: Aff Array Cstr Expr Format Hashtbl Ir Iset List Lower Poly Printf Space Tiramisu_core Tiramisu_presburger
