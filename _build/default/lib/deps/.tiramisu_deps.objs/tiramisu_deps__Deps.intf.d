lib/deps/deps.mli: Format Tiramisu_core Tiramisu_presburger
