exception Parse_error of string

(* ---------------- lexer ---------------- *)

type token =
  | INT of int
  | IDENT of string
  | LBRACE | RBRACE | LBRACK | RBRACK | LPAREN | RPAREN
  | COMMA | COLON | SEMI | ARROW
  | PLUS | MINUS | STAR
  | EQ | LE | LT | GE | GT
  | AND
  | EOF

let lex (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      push (INT (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      while
        !j < n
        && ((s.[!j] >= 'a' && s.[!j] <= 'z')
           || (s.[!j] >= 'A' && s.[!j] <= 'Z')
           || (s.[!j] >= '0' && s.[!j] <= '9')
           || s.[!j] = '_' || s.[!j] = '$' || s.[!j] = '\'')
      do incr j done;
      let id = String.sub s !i (!j - !i) in
      push (if id = "and" then AND else IDENT id);
      i := !j
    end
    else begin
      (match c with
      | '{' -> push LBRACE
      | '}' -> push RBRACE
      | '[' -> push LBRACK
      | ']' -> push RBRACK
      | '(' -> push LPAREN
      | ')' -> push RPAREN
      | ',' -> push COMMA
      | ':' -> push COLON
      | ';' -> push SEMI
      | '+' -> push PLUS
      | '*' -> push STAR
      | '-' ->
          if !i + 1 < n && s.[!i + 1] = '>' then begin
            push ARROW;
            incr i
          end
          else push MINUS
      | '=' -> push EQ
      | '<' ->
          if !i + 1 < n && s.[!i + 1] = '=' then begin
            push LE;
            incr i
          end
          else push LT
      | '>' ->
          if !i + 1 < n && s.[!i + 1] = '=' then begin
            push GE;
            incr i
          end
          else push GT
      | '&' ->
          if !i + 1 < n && s.[!i + 1] = '&' then begin
            push AND;
            incr i
          end
          else raise (Parse_error "stray '&'")
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %c" c)));
      incr i
    end
  done;
  List.rev (EOF :: !toks)

(* ---------------- parser ---------------- *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let next st =
  match st.toks with
  | [] -> EOF
  | t :: rest ->
      st.toks <- rest;
      t

let expect st t =
  let got = next st in
  if got <> t then raise (Parse_error "unexpected token")

let idents st close =
  let rec go acc =
    match peek st with
    | t when t = close ->
        ignore (next st);
        List.rev acc
    | COMMA ->
        ignore (next st);
        go acc
    | IDENT x ->
        ignore (next st);
        go (x :: acc)
    | _ -> raise (Parse_error "expected identifier list")
  in
  go []

(* params prefix: '[' ids ']' '->' — only if it is followed by '->' *)
let parse_params st =
  match st.toks with
  | LBRACK :: _ ->
      ignore (next st);
      let ps = idents st RBRACK in
      expect st ARROW;
      ps
  | _ -> []

let parse_tuple st =
  let name =
    match peek st with
    | IDENT x ->
        ignore (next st);
        Some x
    | _ -> None
  in
  match next st with
  | LBRACK -> (name, idents st RBRACK)
  | LPAREN -> (name, idents st RPAREN)
  | _ -> raise (Parse_error "expected tuple")

(* affine expression *)
let rec parse_expr st : Aff.t =
  let t = parse_term st in
  parse_expr_rest st t

and parse_expr_rest st acc =
  match peek st with
  | PLUS ->
      ignore (next st);
      parse_expr_rest st (Aff.add acc (parse_term st))
  | MINUS ->
      ignore (next st);
      parse_expr_rest st (Aff.sub acc (parse_term st))
  | _ -> acc

and parse_term st : Aff.t =
  match next st with
  | MINUS -> Aff.neg (parse_term st)
  | INT k -> (
      match peek st with
      | STAR ->
          ignore (next st);
          Aff.scale k (parse_atom st)
      | IDENT x ->
          ignore (next st);
          Aff.term k x
      | _ -> Aff.const k)
  | IDENT x -> (
      match peek st with
      | STAR -> (
          ignore (next st);
          match next st with
          | INT k -> Aff.term k x
          | _ -> raise (Parse_error "non-affine product"))
      | _ -> Aff.var x)
  | LPAREN ->
      let e = parse_expr st in
      expect st RPAREN;
      e
  | _ -> raise (Parse_error "expected term")

and parse_atom st : Aff.t =
  match next st with
  | IDENT x -> Aff.var x
  | INT k -> Aff.const k
  | LPAREN ->
      let e = parse_expr st in
      expect st RPAREN;
      e
  | _ -> raise (Parse_error "expected atom")

let rel_of = function
  | EQ -> Some `Eq
  | LE -> Some `Le
  | LT -> Some `Lt
  | GE -> Some `Ge
  | GT -> Some `Gt
  | _ -> None

(* chain: e1 rel e2 rel e3 ... *)
let parse_chain st : Cstr.t list =
  let e0 = parse_expr st in
  let rec go lhs acc =
    match rel_of (peek st) with
    | None -> if acc = [] then raise (Parse_error "expected relation") else acc
    | Some r ->
        ignore (next st);
        let rhs = parse_expr st in
        let c =
          match r with
          | `Eq -> Cstr.Eq (lhs, rhs)
          | `Le -> Cstr.Le (lhs, rhs)
          | `Lt -> Cstr.Lt (lhs, rhs)
          | `Ge -> Cstr.Ge (lhs, rhs)
          | `Gt -> Cstr.Gt (lhs, rhs)
        in
        go rhs (c :: acc)
  in
  go e0 []

let parse_constrs st : Cstr.t list =
  let rec go acc =
    let acc = parse_chain st @ acc in
    match peek st with
    | AND ->
        ignore (next st);
        go acc
    | _ -> acc
  in
  go []

let parse_set str =
  let st = { toks = lex str } in
  let params = parse_params st in
  expect st LBRACE;
  let rec pieces acc space =
    let name, vars = parse_tuple st in
    let cs =
      match peek st with
      | COLON ->
          ignore (next st);
          parse_constrs st
      | _ -> []
    in
    let sp =
      match space with
      | Some sp -> sp
      | None -> Space.set_space ?name ~params vars
    in
    let piece = Iset.of_constraints sp cs in
    let acc = match acc with None -> Some piece | Some s -> Some (Iset.union s piece) in
    match next st with
    | SEMI -> pieces acc (Some sp)
    | RBRACE -> Option.get acc
    | _ -> raise (Parse_error "expected ';' or '}'")
  in
  pieces None None

let parse_map str =
  let st = { toks = lex str } in
  let params = parse_params st in
  expect st LBRACE;
  let in_name, ins = parse_tuple st in
  expect st ARROW;
  let out_name, out_exprs_or_vars =
    (* output tuple entries may be affine expressions of the inputs *)
    let name =
      match peek st with
      | IDENT x when (match st.toks with _ :: (LBRACK | LPAREN) :: _ -> true | _ -> false) ->
          ignore (next st);
          Some x
      | _ -> None
    in
    let close =
      match next st with
      | LBRACK -> RBRACK
      | LPAREN -> RPAREN
      | _ -> raise (Parse_error "expected output tuple")
    in
    let rec go acc =
      match peek st with
      | t when t = close ->
          ignore (next st);
          (name, List.rev acc)
      | COMMA ->
          ignore (next st);
          go acc
      | _ -> go (parse_expr st :: acc)
    in
    go []
  in
  let cs =
    match peek st with
    | COLON ->
        ignore (next st);
        parse_constrs st
    | _ -> []
  in
  expect st RBRACE;
  (* Outputs that are plain fresh variables become named dims; expression
     outputs get synthesized names with linking equalities. *)
  let out_names, link =
    List.fold_left
      (fun (names, link) (k, e) ->
        match Aff.is_const e with
        | None
          when (match Aff.terms e with
               | [ (v, 1) ]
                 when Aff.constant_part e = 0 && not (List.mem v ins)
                      && not (List.mem v params) ->
                   true
               | _ -> false) ->
            let v = List.hd (Aff.vars e) in
            (names @ [ v ], link)
        | _ ->
            let v = Printf.sprintf "o$%d" k in
            (names @ [ v ], Cstr.Eq (Aff.var v, e) :: link))
      ([], [])
      (List.mapi (fun k e -> (k, e)) out_exprs_or_vars)
  in
  let sp = Space.map_space ?in_name ?out_name ~params ~ins out_names in
  Imap.of_constraints sp (link @ cs)
