(** Exact integer feasibility via the Omega test (Pugh, 1991).

    This is the decision procedure underlying every exactness claim the paper
    makes for its ISL substrate: compile-time set-emptiness checks (Table I)
    and exact dependence analysis (§II, §VI-B).

    A system is a list of equality rows and inequality rows over [n]
    variables.  A row [r] of length [n+1] denotes the affine form
    [r.(0) + Σ r.(i+1)·x_i]; an equality row asserts the form is [0], an
    inequality row asserts it is [>= 0].  All variables range over the
    integers (symbolic parameters are treated as ordinary existentially
    quantified variables). *)

val feasible : n:int -> eqs:int array list -> ineqs:int array list -> bool
(** [feasible ~n ~eqs ~ineqs] decides whether the system has an integer
    solution.  Exact: equalities are eliminated by Pugh's modular reduction;
    inequalities by Fourier–Motzkin with exact/dark shadows and splinter
    enumeration when the shadows disagree. *)

val sample : n:int -> eqs:int array list -> ineqs:int array list -> int array option
(** A witness integer point, or [None] when infeasible.  Requires the
    feasible region to be bounded in every coordinate it explores (loop-nest
    domains in this project always are once parameters are fixed); falls back
    to a bounded search and returns [None] if no point is found within it. *)

(** {1 Building blocks exposed for {!Poly}} *)

exception Infeasible

val normalize_eq : int array -> int array option
(** Divide an equality row by the GCD of its variable coefficients.  [None]
    for the trivial row [0 = 0]. @raise Infeasible when the constant is not
    divisible (no integer solutions). *)

val subst_eq : k:int -> int array -> int array -> int array
(** [subst_eq ~k e r] substitutes variable [k] out of row [r] using equality
    row [e], which must carry a unit coefficient on [k].  The result has a
    zero coefficient on [k]. *)
