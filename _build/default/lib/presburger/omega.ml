open Tiramisu_support

exception Infeasible

(* Symmetric residue of [a] modulo [m]: the representative of [a mod m] in
   (-m/2, m/2]. Pugh's modular reduction relies on mod_hat (m-1) m = -1. *)
let mod_hat a m =
  let r = Ints.emod a m in
  if 2 * r > m then r - m else r

let normalize_eq row =
  let g = Vec.content_except row 0 in
  if g = 0 then if row.(0) = 0 then None else raise Infeasible
  else if row.(0) mod g <> 0 then raise Infeasible
  else Some (Array.map (fun c -> c / g) row)

let normalize_ineq row =
  match Fm.tighten row with
  | None -> None
  | Some r ->
      if Vec.content_except r 0 = 0 then
        if r.(0) >= 0 then None else raise Infeasible
      else Some r

(* Substitute variable [k] (0-based) using equality [e] whose coefficient on
   [k] is +-1, into row [r]; the result has coefficient 0 on [k]. *)
let subst_eq ~k e r =
  let a = e.(k + 1) in
  assert (abs a = 1);
  let b = r.(k + 1) in
  if b = 0 then r else Vec.combine 1 r (-b * a) e

let drop_var ~k rows = List.map (fun r -> Vec.drop_cols r ~at:(k + 1) ~count:1) rows

(* Find an equality with a unit coefficient; returns (index-in-list, var). *)
let find_unit_eq eqs =
  let rec scan i = function
    | [] -> None
    | e :: rest -> (
        let unit_var = ref None in
        Array.iteri (fun j c -> if j > 0 && abs c = 1 && !unit_var = None then unit_var := Some (j - 1)) e;
        match !unit_var with Some v -> Some (i, v) | None -> scan (i + 1) rest)
  in
  scan 0 eqs

let nth_split l i =
  let rec go acc i = function
    | [] -> invalid_arg "nth_split"
    | x :: rest -> if i = 0 then (x, List.rev_append acc rest) else go (x :: acc) (i - 1) rest
  in
  go [] i l

(* Eliminate all equalities, returning an equivalent pure-inequality system.
   May grow the variable count (modular reduction introduces fresh
   variables); returns (n, ineqs). *)
let rec eliminate_eqs n eqs ineqs =
  let eqs = List.filter_map normalize_eq eqs in
  match eqs with
  | [] -> (n, List.filter_map normalize_ineq ineqs)
  | _ -> (
      match find_unit_eq eqs with
      | Some (i, k) ->
          let e, rest = nth_split eqs i in
          let eqs' = drop_var ~k (List.map (subst_eq ~k e) rest) in
          let ineqs' = drop_var ~k (List.map (subst_eq ~k e) ineqs) in
          eliminate_eqs (n - 1) eqs' ineqs'
      | None ->
          (* Modular reduction: no unit coefficient anywhere. Pick the
             equality variable with the smallest |coefficient| >= 2. *)
          let best = ref None in
          List.iteri
            (fun i e ->
              Array.iteri
                (fun j c ->
                  if j > 0 && c <> 0 then
                    match !best with
                    | Some (_, _, a) when abs a <= abs c -> ()
                    | _ -> best := Some (i, j - 1, c))
                e)
            eqs;
          let i, _k, a = Option.get !best in
          let e, _ = nth_split eqs i in
          let m = abs a + 1 in
          (* Fresh variable sigma appended as column n. New equality:
             sum mod_hat(a_i) x_i + mod_hat(c) - m*sigma = 0, with
             coefficient -sign(a) (i.e. unit) on x_k. *)
          let widen r = Vec.insert_cols r ~at:(Array.length r) ~count:1 in
          let e' =
            let r = Array.map (fun c -> mod_hat c m) (widen e) in
            r.(n + 1) <- -m;
            r
          in
          let eqs' = e' :: List.map widen eqs in
          let ineqs' = List.map widen ineqs in
          eliminate_eqs (n + 1) eqs' ineqs')

(* All-pairs shadow of [lo]x[hi] over [var]; [dark] subtracts (a-1)(b-1). *)
let shadows ~var ~dark lo hi rest =
  let combined =
    List.concat_map
      (fun l ->
        List.map
          (fun u ->
            let a = l.(var + 1) and b = -u.(var + 1) in
            let row = Vec.combine b l a u in
            if dark then row.(0) <- Ints.sub row.(0) ((a - 1) * (b - 1));
            row)
          hi)
      lo
  in
  drop_var ~k:var (combined @ rest)

let rec solve n ineqs =
  match List.filter_map normalize_ineq ineqs with
  | exception Infeasible -> false
  | [] -> true
  | ineqs ->
      if n = 0 then true
      else
        (* Drop variables unbounded in one direction: constraints bounding
           them cannot cause infeasibility. *)
        let has_lo = Array.make n false and has_hi = Array.make n false in
        List.iter
          (fun r ->
            for v = 0 to n - 1 do
              if r.(v + 1) > 0 then has_lo.(v) <- true
              else if r.(v + 1) < 0 then has_hi.(v) <- true
            done)
          ineqs;
        let free = ref None in
        for v = n - 1 downto 0 do
          if has_lo.(v) <> has_hi.(v) then free := Some v
        done;
        (match !free with
        | Some v ->
            let remaining = List.filter (fun r -> r.(v + 1) = 0) ineqs in
            solve (n - 1) (drop_var ~k:v remaining)
        | None ->
            (* Every variable is two-sided bounded (or absent). Choose the
               elimination variable: prefer an exact one, else fewest pairs. *)
            let metrics =
              Array.init n (fun v ->
                  let lo, hi, _ = Fm.bounds_on ~n ~var:v ineqs in
                  let exact =
                    (lo <> [] || hi <> [])
                    && (List.for_all (fun r -> r.(v + 1) = 1) lo
                       || List.for_all (fun r -> r.(v + 1) = -1) hi)
                  in
                  (v, List.length lo * List.length hi, exact, lo <> []))
            in
            let candidates =
              Array.to_list metrics |> List.filter (fun (_, _, _, used) -> used)
            in
            (match candidates with
            | [] ->
                (* No variable actually appears: all rows constant, already
                   validated by normalize_ineq. *)
                true
            | _ ->
                let v, _, exact, _ =
                  List.fold_left
                    (fun ((_, bp, be, _) as best) ((_, p, e, _) as cand) ->
                      if (e && not be) || (e = be && p < bp) then cand else best)
                    (List.hd candidates) (List.tl candidates)
                in
                let lo, hi, rest = Fm.bounds_on ~n ~var:v ineqs in
                if exact then solve (n - 1) (shadows ~var:v ~dark:false lo hi rest)
                else if solve (n - 1) (shadows ~var:v ~dark:true lo hi rest) then true
                else if not (solve (n - 1) (shadows ~var:v ~dark:false lo hi rest))
                then false
                else
                  (* Shadows disagree: enumerate Pugh's splinters. Feasibility
                     holds iff some lower bound is within its splinter range. *)
                  let cmax =
                    List.fold_left (fun m u -> max m (-u.(v + 1))) 1 hi
                  in
                  List.exists
                    (fun l ->
                      let a = l.(v + 1) in
                      let imax = (a * cmax - a - cmax) / cmax in
                      let rec try_i i =
                        if i > imax then false
                        else
                          let eq = Array.copy l in
                          eq.(0) <- Ints.sub eq.(0) i;
                          match eliminate_eqs n [ eq ] ineqs with
                          | exception Infeasible -> try_i (i + 1)
                          | n', sys -> solve n' sys || try_i (i + 1)
                      in
                      try_i 0)
                    lo))

let feasible ~n ~eqs ~ineqs =
  match eliminate_eqs n eqs ineqs with
  | exception Infeasible -> false
  | n', ineqs' -> solve n' ineqs'

let sample ~n ~eqs ~ineqs =
  if not (feasible ~n ~eqs ~ineqs) then None
  else
    (* Fix variables one at a time, highest index first; candidate values come
       from the FM-projected (over-approximated) bounds, validated by the
       exact test. *)
    let limit = 100_000 in
    let rec fix n eqs ineqs acc =
      if n = 0 then Some (Array.of_list acc)
      else
        let v = n - 1 in
        let rows =
          ineqs
          @ List.concat_map (fun e -> [ e; Vec.neg e ]) eqs
        in
        let proj = Fm.eliminate ~n ~keep:(fun i -> i = v) rows in
        let lo, hi, _ = Fm.bounds_on ~n ~var:v proj in
        let lb =
          List.fold_left
            (fun acc r -> max acc (Ints.cdiv (-r.(0)) r.(v + 1)))
            (-limit) lo
        in
        let ub =
          List.fold_left
            (fun acc r -> min acc (Ints.fdiv r.(0) (-r.(v + 1))))
            limit hi
        in
        let rec scan x =
          if x > ub then None
          else
            let fix_row = Vec.unit (n + 1) (v + 1) in
            fix_row.(0) <- -x;
            if feasible ~n ~eqs:(fix_row :: eqs) ~ineqs then
              let substitute r =
                let r' = Array.copy r in
                r'.(0) <- Ints.add r'.(0) (Ints.mul r.(v + 1) x);
                Vec.drop_cols r' ~at:(v + 1) ~count:1
              in
              fix (n - 1) (List.map substitute eqs) (List.map substitute ineqs)
                (x :: acc)
            else scan (x + 1)
        in
        scan lb
    in
    fix n eqs ineqs []
