type set = { params : string array; set_name : string option; vars : string array }

type map = {
  mparams : string array;
  in_name : string option;
  ins : string array;
  out_name : string option;
  outs : string array;
}

let check_distinct names =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Space: duplicate dimension name %s" n)
      else Hashtbl.add seen n ())
    names

let set_space ?name ~params vars =
  let s =
    {
      params = Array.of_list params;
      set_name = name;
      vars = Array.of_list vars;
    }
  in
  check_distinct (Array.append s.params s.vars);
  s

let map_space ?in_name ?out_name ~params ~ins outs =
  let m =
    {
      mparams = Array.of_list params;
      in_name;
      ins = Array.of_list ins;
      out_name;
      outs = Array.of_list outs;
    }
  in
  check_distinct (Array.concat [ m.mparams; m.ins; m.outs ]);
  m

let set_cols s = Array.append s.params s.vars
let map_cols m = Array.concat [ m.mparams; m.ins; m.outs ]
let set_arity s = Array.length s.params + Array.length s.vars

let map_arity m =
  Array.length m.mparams + Array.length m.ins + Array.length m.outs

let domain_of_map m =
  { params = m.mparams; set_name = m.in_name; vars = m.ins }

let range_of_map m =
  { params = m.mparams; set_name = m.out_name; vars = m.outs }

let set_equal a b =
  a.params = b.params && Array.length a.vars = Array.length b.vars

let pp_tuple ppf (name, vars) =
  Format.fprintf ppf "%s[%s]"
    (Option.value name ~default:"")
    (String.concat ", " (Array.to_list vars))

let pp_params ppf params =
  if Array.length params > 0 then
    Format.fprintf ppf "[%s] -> "
      (String.concat ", " (Array.to_list params))

let pp_set ppf s =
  Format.fprintf ppf "%a{ %a }" pp_params s.params pp_tuple
    (s.set_name, s.vars)

let pp_map ppf m =
  Format.fprintf ppf "%a{ %a -> %a }" pp_params m.mparams pp_tuple
    (m.in_name, m.ins) pp_tuple (m.out_name, m.outs)
