(** Fourier–Motzkin elimination with integer tightening.

    Projects variables out of an inequality system.  The result is an
    over-approximation of the exact integer projection (it is the rational
    shadow, tightened by GCD normalization with floored constants), which is
    precisely what loop-bound computation needs: bounds may only widen, and
    per-statement guards recover exactness (see {!Tiramisu_codegen.Ast_gen}).

    Rows follow the {!Omega} layout: [r.(0)] constant, [r.(i+1)] coefficient
    of variable [i], each row asserting the form is [>= 0]. *)

val tighten : int array -> int array option
(** Normalize one inequality row: divide by the GCD of the variable
    coefficients, flooring the constant.  [None] if the row has no variable
    and asserts a non-negative constant (trivially true); rows asserting a
    negative constant are returned unchanged (caller detects infeasibility). *)

val eliminate : n:int -> keep:(int -> bool) -> int array list -> int array list
(** [eliminate ~n ~keep rows] removes every variable [i] with [keep i =
    false] by pairwise combination.  The returned rows still have arity [n]
    (eliminated columns are zero), so callers can keep using the original
    column indexing. *)

val bounds_on : n:int -> var:int -> int array list ->
  int array list * int array list * int array list
(** [bounds_on ~n ~var rows] classifies rows into [(lowers, uppers, rest)]
    according to the sign of the coefficient on [var]: positive coefficient
    rows bound [var] from below, negative ones from above. *)
