(** Named affine expressions: [const + Σ coeff·name].

    These are the syntactic building blocks for iteration domains, schedules
    and access relations; they are resolved to coefficient rows against a
    {!Space} when building {!Iset}/{!Imap} values, and back again when
    extracting loop bounds. *)

type t

val const : int -> t
val var : string -> t
val term : int -> string -> t
val zero : t

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : int -> t -> t

val constant_part : t -> int
val coeff : t -> string -> int
val terms : t -> (string * int) list
(** Non-zero terms, sorted by name. *)

val is_const : t -> int option
val vars : t -> string list

val subst : t -> (string -> t option) -> t
(** Replace variables; [None] keeps the variable. *)

val eval : t -> (string -> int) -> int
(** @raise Not_found (from the callback) for unbound variables. *)

val to_row : cols:string array -> t -> int array
(** Row in {!Poly} layout: column 0 constant, column [i+1] = [cols.(i)].
    @raise Invalid_argument if the expression mentions a name outside
    [cols]. *)

val of_row : cols:string array -> int array -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
