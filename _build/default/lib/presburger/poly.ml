open Tiramisu_support

type t = { n : int; eqs : int array list; ineqs : int array list }

let check_row n r =
  if Array.length r <> n + 1 then
    invalid_arg
      (Printf.sprintf "Poly: row arity %d, expected %d" (Array.length r - 1) n)

let make n ~eqs ~ineqs =
  List.iter (check_row n) eqs;
  List.iter (check_row n) ineqs;
  { n; eqs; ineqs }

let universe n = { n; eqs = []; ineqs = [] }
let dim p = p.n

let add_eq p r =
  check_row p.n r;
  { p with eqs = r :: p.eqs }

let add_ineq p r =
  check_row p.n r;
  { p with ineqs = r :: p.ineqs }

let intersect a b =
  if a.n <> b.n then invalid_arg "Poly.intersect: arity mismatch";
  { n = a.n; eqs = a.eqs @ b.eqs; ineqs = a.ineqs @ b.ineqs }

let is_empty p = not (Omega.feasible ~n:p.n ~eqs:p.eqs ~ineqs:p.ineqs)
let sample p = Omega.sample ~n:p.n ~eqs:p.eqs ~ineqs:p.ineqs

let eval row pt =
  let acc = ref row.(0) in
  Array.iteri (fun i x -> acc := Ints.add !acc (Ints.mul row.(i + 1) x)) pt;
  !acc

let mem p pt =
  Array.length pt = p.n
  && List.for_all (fun r -> eval r pt = 0) p.eqs
  && List.for_all (fun r -> eval r pt >= 0) p.ineqs

let insert_vars p ~at ~count =
  let f r = Vec.insert_cols r ~at:(at + 1) ~count in
  { n = p.n + count; eqs = List.map f p.eqs; ineqs = List.map f p.ineqs }

let drop_vars p ~at ~count =
  let f r = Vec.drop_cols r ~at:(at + 1) ~count in
  { n = p.n - count; eqs = List.map f p.eqs; ineqs = List.map f p.ineqs }

(* Normalize equality rows; raises Omega.Infeasible on contradiction. *)
let normalize_eqs eqs = List.filter_map Omega.normalize_eq eqs

(* Substitute out every to-be-eliminated variable that carries a unit
   coefficient in some equality. Exact. *)
let subst_units ~keep p =
  let rec go eqs ineqs zeroed =
    let pick =
      List.find_opt
        (fun e ->
          let found = ref false in
          Array.iteri
            (fun j c ->
              if j > 0 && abs c = 1 && (not (keep (j - 1))) && not zeroed.(j - 1)
              then found := true)
            e;
          !found)
        eqs
    in
    match pick with
    | None -> (eqs, ineqs, zeroed)
    | Some e ->
        let k = ref (-1) in
        Array.iteri
          (fun j c ->
            if !k < 0 && j > 0 && abs c = 1 && (not (keep (j - 1)))
               && not zeroed.(j - 1)
            then k := j - 1)
          e;
        let k = !k in
        let sub r = if r == e then r else Omega.subst_eq ~k e r in
        let clear r =
          (* Keep arity: zero the substituted column instead of dropping. *)
          let r' = Array.copy r in
          r'.(k + 1) <- 0;
          r'
        in
        let eqs' =
          List.filter_map
            (fun r -> if r == e then None else Some (clear (sub r)))
            eqs
        in
        let ineqs' = List.map (fun r -> clear (sub r)) ineqs in
        zeroed.(k) <- true;
        go eqs' ineqs' zeroed
  in
  let zeroed = Array.make p.n false in
  go (normalize_eqs p.eqs) p.ineqs zeroed

let eliminate p ~keep =
  match subst_units ~keep p with
  | exception Omega.Infeasible ->
      (* Represent the contradiction explicitly: -1 >= 0. *)
      let bad = Vec.zero (p.n + 1) in
      bad.(0) <- -1;
      ({ n = p.n; eqs = []; ineqs = [ bad ] }, true)
  | eqs, ineqs, zeroed ->
      let still_to_go v = (not (keep v)) && not zeroed.(v) in
      let appears v =
        List.exists (fun r -> r.(v + 1) <> 0) eqs
        || List.exists (fun r -> r.(v + 1) <> 0) ineqs
      in
      let leftovers =
        List.filter
          (fun v -> still_to_go v && appears v)
          (List.init p.n Fun.id)
      in
      if leftovers = [] then ({ n = p.n; eqs; ineqs }, true)
      else
        (* Fall back to rational Fourier-Motzkin with integer tightening:
           an over-approximation of the integer projection. *)
        let rows =
          ineqs @ List.concat_map (fun e -> [ e; Vec.neg e ]) eqs
        in
        let keep' v = not (List.mem v leftovers) in
        let rows' = Fm.eliminate ~n:p.n ~keep:keep' rows in
        ({ n = p.n; eqs = []; ineqs = rows' }, false)

let project_out p ~at ~count =
  let keep v = v < at || v >= at + count in
  let q, exact = eliminate p ~keep in
  (drop_vars q ~at ~count, exact)

let fix_var p v c =
  let row = Vec.unit (p.n + 1) (v + 1) in
  row.(0) <- -c;
  add_eq p row

let constant_value p v =
  (* Gauss-propagate equalities to surface single-variable rows. *)
  match
    let eqs = ref (normalize_eqs p.eqs) in
    let progress = ref true in
    while !progress do
      progress := false;
      (* Use any single-variable equality x_j = c to substitute everywhere. *)
      List.iter
        (fun e ->
          let nz =
            List.filter (fun j -> e.(j + 1) <> 0) (List.init p.n Fun.id)
          in
          match nz with
          | [ j ] when abs e.(j + 1) = 1 ->
              let changed = ref false in
              eqs :=
                List.map
                  (fun r ->
                    if r != e && r.(j + 1) <> 0 then (
                      changed := true;
                      let r' = Omega.subst_eq ~k:j e r in
                      r'.(j + 1) <- 0;
                      r')
                    else r)
                  !eqs;
              if !changed then progress := true
          | _ -> ())
        !eqs;
      eqs := normalize_eqs !eqs
    done;
    !eqs
  with
  | exception Omega.Infeasible -> None
  | eqs ->
      List.find_map
        (fun e ->
          let nz =
            List.filter (fun j -> e.(j + 1) <> 0) (List.init p.n Fun.id)
          in
          match nz with
          | [ j ] when j = v && abs e.(j + 1) = 1 ->
              Some (-e.(0) * e.(j + 1))
          | _ -> None)
        eqs

let to_ineqs p = p.ineqs @ List.concat_map (fun e -> [ e; Vec.neg e ]) p.eqs

(* not (row >= 0)  <=>  -row - 1 >= 0 *)
let negate_ineq row =
  let r = Vec.neg row in
  r.(0) <- Ints.sub r.(0) 1;
  r

let subtract a b =
  if a.n <> b.n then invalid_arg "Poly.subtract: arity mismatch";
  let rows = to_ineqs b in
  let pieces, _ =
    List.fold_left
      (fun (acc, ctx) row ->
        let piece = add_ineq ctx (negate_ineq row) in
        let ctx' = add_ineq ctx row in
        ((if is_empty piece then acc else piece :: acc), ctx'))
      ([], a) rows
  in
  List.rev pieces

let implies_ineq p row =
  check_row p.n row;
  is_empty (add_ineq p (negate_ineq row))

let gist p ~ctx =
  let keep_ineqs = List.filter (fun r -> not (implies_ineq ctx r)) p.ineqs in
  let keep_eqs =
    List.filter
      (fun e -> not (implies_ineq ctx e && implies_ineq ctx (Vec.neg e)))
      p.eqs
  in
  { p with eqs = keep_eqs; ineqs = keep_ineqs }

let permute p perm =
  if Array.length perm <> p.n then invalid_arg "Poly.permute";
  let f r =
    Array.init (p.n + 1) (fun i -> if i = 0 then r.(0) else r.(perm.(i - 1) + 1))
  in
  { p with eqs = List.map f p.eqs; ineqs = List.map f p.ineqs }

let subset a b =
  a.n = b.n
  && List.for_all
       (fun r -> implies_ineq a r)
       (to_ineqs b)

let equal a b = subset a b && subset b a

let pp ppf p =
  let pp_row kind ppf r =
    Format.fprintf ppf "%d" r.(0);
    Array.iteri
      (fun i c -> if i > 0 && c <> 0 then Format.fprintf ppf " %+d·x%d" c (i - 1))
      r;
    Format.fprintf ppf " %s 0" kind
  in
  Format.fprintf ppf "@[<v>{ dim=%d" p.n;
  List.iter (fun r -> Format.fprintf ppf ";@ %a" (pp_row "=") r) p.eqs;
  List.iter (fun r -> Format.fprintf ppf ";@ %a" (pp_row ">=") r) p.ineqs;
  Format.fprintf ppf " }@]"
