open Tiramisu_support

let tighten row =
  let g = Vec.content_except row 0 in
  if g = 0 then if row.(0) >= 0 then None else Some row
  else if g = 1 then Some row
  else
    Some
      (Array.mapi
         (fun i c -> if i = 0 then Ints.fdiv c g else c / g)
         row)

let bounds_on ~n:_ ~var rows =
  List.fold_right
    (fun row (lo, hi, rest) ->
      let c = row.(var + 1) in
      if c > 0 then (row :: lo, hi, rest)
      else if c < 0 then (lo, row :: hi, rest)
      else (lo, hi, row :: rest))
    rows ([], [], [])

(* Combine a lower bound [l] (coefficient a > 0 on [var]) with an upper bound
   [u] (coefficient -b < 0) into the shadow constraint b*l + a*u, whose
   coefficient on [var] is zero. *)
let shadow_pair ~var l u =
  let a = l.(var + 1) and b = -u.(var + 1) in
  let row = Vec.combine b l a u in
  assert (row.(var + 1) = 0);
  row

let dedup rows =
  (* Keep, per distinct coefficient vector, only the tightest constant. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun row ->
      let key = Array.to_list (Array.sub row 1 (Array.length row - 1)) in
      match Hashtbl.find_opt tbl key with
      | Some c when c <= row.(0) -> ()
      | _ -> Hashtbl.replace tbl key row.(0))
    rows;
  Hashtbl.fold
    (fun key c acc -> (Array.of_list (c :: key) :: acc))
    tbl []

let eliminate_one ~n ~var rows =
  let lo, hi, rest = bounds_on ~n ~var rows in
  let combined =
    List.concat_map (fun l -> List.map (fun u -> shadow_pair ~var l u) hi) lo
  in
  let tightened =
    List.filter_map tighten (combined @ rest)
  in
  dedup tightened

let eliminate ~n ~keep rows =
  let rows = ref rows in
  for v = 0 to n - 1 do
    if not (keep v) then rows := eliminate_one ~n ~var:v !rows
  done;
  !rows
