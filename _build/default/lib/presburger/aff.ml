open Tiramisu_support

module M = Map.Make (String)

type t = { const : int; terms : int M.t }

let normalize terms = M.filter (fun _ c -> c <> 0) terms
let const c = { const = c; terms = M.empty }
let zero = const 0
let term c name = { const = 0; terms = normalize (M.singleton name c) }
let var name = term 1 name

let add a b =
  {
    const = Ints.add a.const b.const;
    terms =
      normalize
        (M.union (fun _ x y -> Some (Ints.add x y)) a.terms b.terms);
  }

let neg a = { const = Ints.neg a.const; terms = M.map Ints.neg a.terms }
let sub a b = add a (neg b)

let scale k a =
  if k = 0 then zero
  else { const = Ints.mul k a.const; terms = M.map (Ints.mul k) a.terms }

let ( + ) = add
let ( - ) = sub
let ( * ) = scale
let constant_part a = a.const
let coeff a name = match M.find_opt name a.terms with Some c -> c | None -> 0
let terms a = M.bindings a.terms
let is_const a = if M.is_empty a.terms then Some a.const else None
let vars a = List.map fst (M.bindings a.terms)

let subst a f =
  M.fold
    (fun name c acc ->
      match f name with
      | None -> add acc (term c name)
      | Some e -> add acc (scale c e))
    a.terms (const a.const)

let eval a f =
  M.fold (fun name c acc -> Ints.add acc (Ints.mul c (f name))) a.terms a.const

let to_row ~cols a =
  let row = Array.make (Stdlib.( + ) (Array.length cols) 1) 0 in
  row.(0) <- a.const;
  M.iter
    (fun name c ->
      let idx = ref (-1) in
      Array.iteri (fun i n -> if n = name && !idx < 0 then idx := i) cols;
      if !idx < 0 then
        invalid_arg (Printf.sprintf "Aff.to_row: unknown dimension %s" name);
      row.(Stdlib.( + ) !idx 1) <- c)
    a.terms;
  row

let of_row ~cols row =
  let acc = ref (const row.(0)) in
  Array.iteri
    (fun i name ->
      if row.(Stdlib.( + ) i 1) <> 0 then
        acc := add !acc (term row.(Stdlib.( + ) i 1) name))
    cols;
  !acc

let compare a b =
  match Stdlib.compare a.const b.const with
  | 0 -> M.compare Stdlib.compare a.terms b.terms
  | c -> c

let equal a b = compare a b = 0

let pp ppf a =
  let printed = ref false in
  M.iter
    (fun name c ->
      if !printed then
        if c > 0 then Format.fprintf ppf " + " else Format.fprintf ppf " - "
      else if c < 0 then Format.fprintf ppf "-";
      let ac = abs c in
      if ac = 1 then Format.fprintf ppf "%s" name
      else Format.fprintf ppf "%d%s" ac name;
      printed := true)
    a.terms;
  if a.const <> 0 || not !printed then
    if !printed then
      if a.const > 0 then Format.fprintf ppf " + %d" a.const
      else Format.fprintf ppf " - %d" (abs a.const)
    else Format.fprintf ppf "%d" a.const

let to_string a = Format.asprintf "%a" pp a
