type t =
  | Eq of Aff.t * Aff.t
  | Le of Aff.t * Aff.t
  | Lt of Aff.t * Aff.t
  | Ge of Aff.t * Aff.t
  | Gt of Aff.t * Aff.t

let between lo x hi = [ Le (lo, x); Lt (x, hi) ]

let to_row ~cols c =
  let open Aff in
  match c with
  | Eq (a, b) -> `Eq (to_row ~cols (sub a b))
  | Le (a, b) -> `Ineq (to_row ~cols (sub b a))
  | Lt (a, b) -> `Ineq (to_row ~cols (sub (sub b a) (const 1)))
  | Ge (a, b) -> `Ineq (to_row ~cols (sub a b))
  | Gt (a, b) -> `Ineq (to_row ~cols (sub (sub a b) (const 1)))

let pp ppf c =
  let op = function
    | Eq _ -> "=" | Le _ -> "<=" | Lt _ -> "<" | Ge _ -> ">=" | Gt _ -> ">"
  in
  match c with
  | Eq (a, b) | Le (a, b) | Lt (a, b) | Ge (a, b) | Gt (a, b) ->
      Format.fprintf ppf "%a %s %a" Aff.pp a (op c) Aff.pp b
