open Tiramisu_support

type t = { space : Space.map; polys : Poly.t list }

let of_polys space polys =
  let n = Space.map_arity space in
  List.iter (fun p -> if Poly.dim p <> n then invalid_arg "Imap: arity") polys;
  { space; polys }

let universe space = of_polys space [ Poly.universe (Space.map_arity space) ]

let of_constraints space cs =
  let cols = Space.map_cols space in
  let p =
    List.fold_left
      (fun p c ->
        match Cstr.to_row ~cols c with
        | `Eq row -> Poly.add_eq p row
        | `Ineq row -> Poly.add_ineq p row)
      (Poly.universe (Space.map_arity space))
      cs
  in
  { space; polys = [ p ] }

let from_exprs ?(extra = []) space outs =
  let souts = space.Space.outs in
  if List.length outs <> Array.length souts then
    invalid_arg "Imap.from_exprs: arity mismatch";
  let eqs =
    List.mapi (fun i e -> Cstr.Eq (Aff.var souts.(i), e)) outs
  in
  of_constraints space (eqs @ extra)

let identity space =
  if Array.length space.Space.ins <> Array.length space.Space.outs then
    invalid_arg "Imap.identity";
  from_exprs space
    (Array.to_list (Array.map Aff.var space.Space.ins))

let space m = m.space
let n_ins m = Array.length m.space.Space.ins
let n_outs m = Array.length m.space.Space.outs
let n_params m = Array.length m.space.Space.mparams

let same_shape a b =
  if
    a.space.Space.mparams <> b.space.Space.mparams
    || n_ins a <> n_ins b || n_outs a <> n_outs b
  then invalid_arg "Imap: space mismatch"

let intersect a b =
  same_shape a b;
  {
    a with
    polys =
      List.concat_map
        (fun p -> List.map (fun q -> Poly.intersect p q) b.polys)
        a.polys;
  }

let union a b =
  same_shape a b;
  { a with polys = a.polys @ b.polys }

let is_empty m = List.for_all Poly.is_empty m.polys

let domain m =
  let np = n_params m and ni = n_ins m and no = n_outs m in
  let polys =
    List.map (fun p -> fst (Poly.project_out p ~at:(np + ni) ~count:no)) m.polys
  in
  Iset.of_polys (Space.domain_of_map m.space) polys

let range m =
  let np = n_params m and ni = n_ins m in
  let polys =
    List.map (fun p -> fst (Poly.project_out p ~at:np ~count:ni)) m.polys
  in
  Iset.of_polys (Space.range_of_map m.space) polys

let inverse m =
  let np = n_params m and ni = n_ins m and no = n_outs m in
  let perm = Array.init (np + ni + no) Fun.id in
  (* Columns: params unchanged; new ins (old outs) then new outs (old ins). *)
  for i = 0 to no - 1 do
    perm.(np + i) <- np + ni + i
  done;
  for i = 0 to ni - 1 do
    perm.(np + no + i) <- np + i
  done;
  let space' =
    {
      m.space with
      Space.ins = m.space.Space.outs;
      outs = m.space.Space.ins;
      in_name = m.space.Space.out_name;
      out_name = m.space.Space.in_name;
    }
  in
  { space = space'; polys = List.map (fun p -> Poly.permute p perm) m.polys }

let apply s m =
  let np = n_params m and ni = n_ins m in
  if Iset.n_vars s <> ni then invalid_arg "Imap.apply: arity mismatch";
  if Array.length s.Iset.space.Space.params <> np then
    invalid_arg "Imap.apply: parameter mismatch";
  let no = n_outs m in
  let polys =
    List.concat_map
      (fun sp ->
        List.map
          (fun mp ->
            (* Lift the set poly into the map's column layout and intersect,
               then project out the inputs. *)
            let lifted = Poly.insert_vars sp ~at:(np + ni) ~count:no in
            let inter = Poly.intersect lifted mp in
            fst (Poly.project_out inter ~at:np ~count:ni))
          m.polys)
      s.Iset.polys
  in
  Iset.of_polys (Space.range_of_map m.space) polys

let compose f g =
  let np = n_params f in
  if n_outs f <> n_ins g then invalid_arg "Imap.compose: arity mismatch";
  let a = n_ins f and b = n_outs f and c = n_outs g in
  (* Work in columns [params; A; B; C]. *)
  let polys =
    List.concat_map
      (fun fp ->
        List.map
          (fun gp ->
            let fp' = Poly.insert_vars fp ~at:(np + a + b) ~count:c in
            let gp' = Poly.insert_vars gp ~at:np ~count:a in
            let inter = Poly.intersect fp' gp' in
            fst (Poly.project_out inter ~at:(np + a) ~count:b))
          g.polys)
      f.polys
  in
  let space' =
    {
      f.space with
      Space.outs = g.space.Space.outs;
      out_name = g.space.Space.out_name;
    }
  in
  { space = space'; polys }

let intersect_domain m s =
  let np = n_params m and ni = n_ins m and no = n_outs m in
  if Iset.n_vars s <> ni then invalid_arg "Imap.intersect_domain";
  let polys =
    List.concat_map
      (fun mp ->
        List.map
          (fun sp ->
            Poly.intersect mp (Poly.insert_vars sp ~at:(np + ni) ~count:no))
          s.Iset.polys)
      m.polys
  in
  { m with polys }

let intersect_range m s =
  let np = n_params m and ni = n_ins m in
  if Iset.n_vars s <> n_outs m then invalid_arg "Imap.intersect_range";
  let polys =
    List.concat_map
      (fun mp ->
        List.map
          (fun sp -> Poly.intersect mp (Poly.insert_vars sp ~at:np ~count:ni))
          s.Iset.polys)
      m.polys
  in
  { m with polys }

let fix_params m bindings =
  let fix p =
    List.fold_left
      (fun p (name, v) ->
        let idx = ref (-1) in
        Array.iteri
          (fun i n -> if n = name && !idx < 0 then idx := i)
          m.space.Space.mparams;
        if !idx < 0 then p else Poly.fix_var p !idx v)
      p bindings
  in
  { m with polys = List.map fix m.polys }

(* Solve the equality system for the given block of columns (offset, count),
   expressing each as an affine expression over the remaining columns. *)
let solve_block m ~offset ~count =
  match m.polys with
  | [ p ] -> (
      let n = Poly.dim p in
      let rows =
        List.map (fun r -> Array.map Rat.of_int r) p.Poly.eqs
      in
      let rows = Array.of_list rows in
      let nrows = Array.length rows in
      let pivot_of = Array.make count (-1) in
      let used = Array.make nrows false in
      (try
         for j = 0 to count - 1 do
           let col = offset + j + 1 in
           (* Find an unused row with a nonzero pivot. *)
           let r = ref (-1) in
           for i = 0 to nrows - 1 do
             if !r < 0 && (not used.(i)) && Rat.sign rows.(i).(col) <> 0 then
               r := i
           done;
           if !r >= 0 then begin
             used.(!r) <- true;
             pivot_of.(j) <- !r;
             let pr = rows.(!r) in
             let inv = Rat.inv pr.(col) in
             for k = 0 to n do
               pr.(k) <- Rat.mul pr.(k) inv
             done;
             for i = 0 to nrows - 1 do
               if i <> !r && Rat.sign rows.(i).(col) <> 0 then begin
                 let f = rows.(i).(col) in
                 for k = 0 to n do
                   rows.(i).(k) <- Rat.sub rows.(i).(k) (Rat.mul f pr.(k))
                 done
               end
             done
           end
         done;
         (* Each block column must have a pivot row whose other block
            coefficients are zero (guaranteed by Gauss-Jordan) and whose
            non-block coefficients are integers. *)
         let cols = Space.map_cols m.space in
         let exprs =
           Array.init count (fun j ->
               let r = pivot_of.(j) in
               if r < 0 then raise Exit;
               let pr = rows.(r) in
               (* pr: col has coeff 1; expression = -(rest). *)
               let acc = ref (Aff.const 0) in
               for k = 0 to n do
                 let within_block = k > offset && k <= offset + count in
                 if k <> offset + j + 1 && Rat.sign pr.(k) <> 0 then begin
                   if within_block then raise Exit;
                   if not (Rat.is_int pr.(k)) then raise Exit;
                   let c = -pr.(k).Rat.num in
                   if k = 0 then acc := Aff.add !acc (Aff.const c)
                   else acc := Aff.add !acc (Aff.term c cols.(k - 1))
                 end
               done;
               !acc)
         in
         Some exprs
       with Exit -> None))
  | _ -> None

let solve_outs m =
  let np = n_params m and ni = n_ins m in
  solve_block m ~offset:(np + ni) ~count:(n_outs m)

let solve_ins m =
  let np = n_params m in
  solve_block m ~offset:np ~count:(n_ins m)

let pairs m ~params =
  let ni = n_ins m in
  let wrap_space =
    Space.set_space
      ~params:(Array.to_list m.space.Space.mparams)
      (Array.to_list (Array.append m.space.Space.ins m.space.Space.outs))
  in
  let wrapped = Iset.of_polys wrap_space m.polys in
  List.map
    (fun pt -> (Array.sub pt 0 ni, Array.sub pt ni (Array.length pt - ni)))
    (Iset.points wrapped ~params)

let pp ppf m =
  let cols = Space.map_cols m.space in
  let params = m.space.Space.mparams in
  if Array.length params > 0 then
    Format.fprintf ppf "[%s] -> "
      (String.concat ", " (Array.to_list params));
  let tuple name vars =
    Printf.sprintf "%s[%s]"
      (Option.value name ~default:"")
      (String.concat ", " (Array.to_list vars))
  in
  let arrow =
    Printf.sprintf "%s -> %s"
      (tuple m.space.Space.in_name m.space.Space.ins)
      (tuple m.space.Space.out_name m.space.Space.outs)
  in
  match m.polys with
  | [] -> Format.fprintf ppf "{ %s : false }" arrow
  | polys ->
      Format.fprintf ppf "{ ";
      List.iteri
        (fun i p ->
          if i > 0 then Format.fprintf ppf "; ";
          Format.fprintf ppf "%s" arrow;
          if p.Poly.eqs <> [] || p.Poly.ineqs <> [] then begin
            let parts =
              List.map
                (fun r -> Format.asprintf "%a = 0" Aff.pp (Aff.of_row ~cols r))
                p.Poly.eqs
              @ List.map
                  (fun r ->
                    Format.asprintf "%a >= 0" Aff.pp (Aff.of_row ~cols r))
                  p.Poly.ineqs
            in
            Format.fprintf ppf " : %s" (String.concat " and " parts)
          end)
        polys;
      Format.fprintf ppf " }"

let to_string m = Format.asprintf "%a" pp m
