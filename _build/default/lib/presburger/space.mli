(** Dimension spaces: named parameters and tuple dimensions.

    A set space is [[params] -> { name[vars] }]; a map space is
    [[params] -> { in_name[ins] -> out_name[outs] }].  Spaces fix the column
    layout of the underlying {!Poly} values: column 0 is the constant, then
    parameters, then (for maps) input dims, then output dims. *)

type set = { params : string array; set_name : string option; vars : string array }

type map = {
  mparams : string array;
  in_name : string option;
  ins : string array;
  out_name : string option;
  outs : string array;
}

val set_space : ?name:string -> params:string list -> string list -> set
val map_space :
  ?in_name:string -> ?out_name:string -> params:string list ->
  ins:string list -> string list -> map

val set_cols : set -> string array
(** Parameter names followed by variable names — the {!Poly} column order. *)

val map_cols : map -> string array
val set_arity : set -> int
val map_arity : map -> int

val domain_of_map : map -> set
val range_of_map : map -> set

val check_distinct : string array -> unit
(** @raise Invalid_argument on duplicate names within one space. *)

val set_equal : set -> set -> bool
(** Same parameters and same number of variables (names need not match:
    positional identification, as in isl). *)

val pp_set : Format.formatter -> set -> unit
val pp_map : Format.formatter -> map -> unit
