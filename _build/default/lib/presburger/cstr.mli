(** Affine constraints between named expressions. *)

type t =
  | Eq of Aff.t * Aff.t
  | Le of Aff.t * Aff.t
  | Lt of Aff.t * Aff.t
  | Ge of Aff.t * Aff.t
  | Gt of Aff.t * Aff.t

val between : Aff.t -> Aff.t -> Aff.t -> t list
(** [between lo x hi] is [lo <= x] and [x < hi] — the half-open ranges used
    for iteration domains throughout the paper. *)

val to_row : cols:string array -> t -> [ `Eq of int array | `Ineq of int array ]
(** Resolve to a {!Poly} row: inequalities in [>= 0] form. *)

val pp : Format.formatter -> t -> unit
