(** Integer maps (relations between integer tuples).

    Maps represent schedules (Layer II time-space maps), access relations
    (Layer III data mappings) and dependence relations — exactly the roles
    isl maps play in the paper (§IV-B). *)

type t = { space : Space.map; polys : Poly.t list }

val of_constraints : Space.map -> Cstr.t list -> t
val of_polys : Space.map -> Poly.t list -> t
val universe : Space.map -> t

val from_exprs : ?extra:Cstr.t list -> Space.map -> Aff.t list -> t
(** [from_exprs space outs] is the graph [{ in -> out : out_k = outs_k(in),
    extra }]; the usual way schedules and access relations are built. *)

val identity : Space.map -> t
val space : t -> Space.map
val n_ins : t -> int
val n_outs : t -> int

val intersect : t -> t -> t
val union : t -> t -> t
val is_empty : t -> bool
val domain : t -> Iset.t
(** Exact when input dims carry unit coefficients (true for every schedule
    and access relation in this project); otherwise over-approximated. *)

val range : t -> Iset.t
val inverse : t -> t

val apply : Iset.t -> t -> Iset.t
(** Image of a set: [{ y : exists x in s, (x,y) in m }]. *)

val compose : t -> t -> t
(** [compose f g] is [g . f] : applies [f] first ([f : A -> B],
    [g : B -> C], result [A -> C]). *)

val intersect_domain : t -> Iset.t -> t
val intersect_range : t -> Iset.t -> t

val fix_params : t -> (string * int) list -> t

val solve_outs : t -> Aff.t array option
(** Express each output dimension as an affine expression of the inputs and
    parameters, when the map's equalities determine them uniquely with
    integer coefficients (Gaussian elimination). *)

val solve_ins : t -> Aff.t array option
(** Dual of {!solve_outs}: inputs as expressions of outputs — the backward
    substitution code generation uses to rewrite accesses into loop
    iterators. *)

val pairs : t -> params:(string * int) list -> (int array * int array) list
(** Enumerate (in, out) tuples for fixed parameters; tests only. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
