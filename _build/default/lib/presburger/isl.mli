(** Parser for the ISL set/map notation the paper uses throughout §IV
    (e.g. [{ S(i, j) : 1 <= i <= 3 and 1 <= j <= 2 }],
    [{ S1(i, j) -> S2(i + 2, j + 2) : ... }]).

    Supported grammar (a practical subset of isl's):

    {v
    set    ::= params? '{' piece (';' piece)* '}'
    piece  ::= tuple (':' constrs)?
    map    ::= params? '{' tuple '->' tuple (':' constrs)? '}'
    params ::= '[' idents ']' '->'
    tuple  ::= ident? ('[' idents ']' | '(' idents ')')
    constrs::= chain ('and' chain)*
    chain  ::= expr (rel expr)+          (chains like 0 <= i < N)
    expr   ::= affine terms with +, -, integer * ident
    v}

    Both [S[i,j]] and [S(i,j)] tuple syntax are accepted. *)

exception Parse_error of string

val parse_set : string -> Iset.t
val parse_map : string -> Imap.t
