lib/presburger/iset.ml: Aff Array Cstr Format List Option Poly Printf Space Stdlib String Tiramisu_support
