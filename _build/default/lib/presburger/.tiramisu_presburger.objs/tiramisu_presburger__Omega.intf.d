lib/presburger/omega.mli:
