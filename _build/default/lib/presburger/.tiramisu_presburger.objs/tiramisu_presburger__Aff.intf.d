lib/presburger/aff.mli: Format
