lib/presburger/cstr.mli: Aff Format
