lib/presburger/iset.mli: Cstr Format Poly Space
