lib/presburger/fm.mli:
