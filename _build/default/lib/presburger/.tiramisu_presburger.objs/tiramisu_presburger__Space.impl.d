lib/presburger/space.ml: Array Format Hashtbl Option Printf String
