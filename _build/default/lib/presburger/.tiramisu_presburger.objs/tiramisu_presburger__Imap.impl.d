lib/presburger/imap.ml: Aff Array Cstr Format Fun Iset List Option Poly Printf Rat Space String Tiramisu_support
