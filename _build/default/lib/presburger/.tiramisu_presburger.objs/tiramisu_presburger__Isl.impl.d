lib/presburger/isl.ml: Aff Cstr Imap Iset List Option Printf Space String
