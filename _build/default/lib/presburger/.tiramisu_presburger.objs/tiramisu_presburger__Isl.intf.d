lib/presburger/isl.mli: Imap Iset
