lib/presburger/cstr.ml: Aff Format
