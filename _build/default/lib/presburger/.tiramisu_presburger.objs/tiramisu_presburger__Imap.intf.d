lib/presburger/imap.mli: Aff Cstr Format Iset Poly Space
