lib/presburger/aff.ml: Array Format Ints List Map Printf Stdlib String Tiramisu_support
