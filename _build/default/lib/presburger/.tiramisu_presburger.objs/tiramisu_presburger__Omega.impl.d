lib/presburger/omega.ml: Array Fm Ints List Option Tiramisu_support Vec
