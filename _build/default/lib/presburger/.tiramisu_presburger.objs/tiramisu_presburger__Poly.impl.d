lib/presburger/poly.ml: Array Fm Format Fun Ints List Omega Printf Tiramisu_support Vec
