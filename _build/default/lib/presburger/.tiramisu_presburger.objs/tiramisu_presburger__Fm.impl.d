lib/presburger/fm.ml: Array Hashtbl Ints List Tiramisu_support Vec
