(** Dense integer coefficient rows.

    A row is an [int array]; the interpretation of columns (constant, params,
    variables) is fixed by the caller. All arithmetic is overflow-checked. *)

val zero : int -> int array
(** [zero n] is a fresh all-zero row of length [n]. *)

val unit : int -> int -> int array
(** [unit n i] is the length-[n] row with a [1] in column [i]. *)

val add : int array -> int array -> int array
val sub : int array -> int array -> int array
val neg : int array -> int array
val scale : int -> int array -> int array

val combine : int -> int array -> int -> int array -> int array
(** [combine a u b v] is [a*u + b*v], element-wise. *)

val content : int array -> int
(** GCD of all entries (non-negative); [0] for the zero row. *)

val content_except : int array -> int -> int
(** GCD of all entries except the given column. *)

val divide : int array -> int -> int array
(** Exact element-wise division. @raise Invalid_argument if not exact. *)

val is_zero : int array -> bool
val equal : int array -> int array -> bool
val dot : int array -> int array -> int

val insert_cols : int array -> at:int -> count:int -> int array
(** Insert [count] zero columns starting at position [at]. *)

val drop_cols : int array -> at:int -> count:int -> int array
val pp : Format.formatter -> int array -> unit
