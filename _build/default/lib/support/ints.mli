(** Overflow-checked arithmetic on native integers.

    The paper's ISL substrate uses GMP arbitrary-precision integers; this
    reproduction replaces them with OCaml's 63-bit native integers guarded by
    overflow checks.  Constraint systems are aggressively normalized by GCD
    division (see {!Tiramisu_presburger.Poly}), which keeps coefficients far
    below the overflow threshold in practice; if a computation ever would
    overflow, {!exception:Overflow} is raised rather than silently wrapping. *)

exception Overflow

val add : int -> int -> int
(** [add a b] is [a + b]. @raise Overflow on wrap-around. *)

val sub : int -> int -> int
(** [sub a b] is [a - b]. @raise Overflow on wrap-around. *)

val mul : int -> int -> int
(** [mul a b] is [a * b]. @raise Overflow on wrap-around. *)

val neg : int -> int
(** [neg a] is [-a]. @raise Overflow on [min_int]. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** Least common multiple, non-negative. *)

val fdiv : int -> int -> int
(** [fdiv a b] is the floor division [⌊a/b⌋] for [b <> 0]. *)

val cdiv : int -> int -> int
(** [cdiv a b] is the ceiling division [⌈a/b⌉] for [b <> 0]. *)

val emod : int -> int -> int
(** [emod a b] is the Euclidean remainder: [a - b * fdiv a b], always in
    [0, |b|). *)

val sign : int -> int
(** [-1], [0] or [1]. *)

val pow : int -> int -> int
(** [pow b e] for [e >= 0], overflow-checked. *)
