let zero n = Array.make n 0

let unit n i =
  let v = Array.make n 0 in
  v.(i) <- 1;
  v

let map2 f a b =
  if Array.length a <> Array.length b then invalid_arg "Vec: length mismatch";
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add = map2 Ints.add
let sub = map2 Ints.sub
let neg = Array.map Ints.neg
let scale k = Array.map (Ints.mul k)
let combine a u b v = map2 Ints.add (scale a u) (scale b v)
let content v = Array.fold_left (fun g x -> Ints.gcd g x) 0 v

let content_except v col =
  let g = ref 0 in
  Array.iteri (fun i x -> if i <> col then g := Ints.gcd !g x) v;
  !g

let divide v d =
  Array.map
    (fun x ->
      if d = 0 || x mod d <> 0 then invalid_arg "Vec.divide: inexact" else x / d)
    v

let is_zero = Array.for_all (fun x -> x = 0)
let equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

let dot a b =
  let acc = ref 0 in
  Array.iteri (fun i x -> acc := Ints.add !acc (Ints.mul x b.(i))) a;
  !acc

let insert_cols v ~at ~count =
  let n = Array.length v in
  Array.init (n + count) (fun i ->
      if i < at then v.(i) else if i < at + count then 0 else v.(i - count))

let drop_cols v ~at ~count =
  let n = Array.length v in
  Array.init (n - count) (fun i -> if i < at then v.(i) else v.(i + count))

let pp ppf v =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    v
