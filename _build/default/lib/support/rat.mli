(** Exact rational arithmetic over checked native integers.

    Used by the Fourier–Motzkin rational relaxation, by affine-map inversion
    (Gaussian elimination), and by the machine model. Values are kept in
    canonical form: positive denominator, numerator and denominator coprime. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] normalizes the fraction. @raise Division_by_zero if
    [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when dividing by {!zero}. *)

val neg : t -> t
val inv : t -> t
val abs : t -> t
val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_int : t -> bool

val floor : t -> int
val ceil : t -> int

val to_float : t -> float
val pp : Format.formatter -> t -> unit
val to_string : t -> string
