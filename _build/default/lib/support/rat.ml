type t = { num : int; den : int }

let make num den =
  if den = 0 then raise Division_by_zero
  else
    let s = if den < 0 then -1 else 1 in
    let g = Ints.gcd num den in
    if g = 0 then { num = 0; den = 1 }
    else { num = s * num / g; den = s * den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let add a b =
  make (Ints.add (Ints.mul a.num b.den) (Ints.mul b.num a.den)) (Ints.mul a.den b.den)

let neg a = { a with num = Ints.neg a.num }
let sub a b = add a (neg b)
let mul a b = make (Ints.mul a.num b.num) (Ints.mul a.den b.den)
let inv a = make a.den a.num
let div a b = if b.num = 0 then raise Division_by_zero else mul a (inv b)
let abs a = { a with num = Stdlib.abs a.num }
let compare a b = Stdlib.compare (Ints.mul a.num b.den) (Ints.mul b.num a.den)
let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let sign a = Ints.sign a.num
let is_int a = a.den = 1
let floor a = Ints.fdiv a.num a.den
let ceil a = Ints.cdiv a.num a.den
let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
