exception Overflow

let add a b =
  let r = a + b in
  if (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0) then raise Overflow else r

let neg a = if a = min_int then raise Overflow else -a
let sub a b = if b = min_int then raise Overflow else add a (-b)

let mul a b =
  if a = 0 || b = 0 then 0
  else
    let r = a * b in
    if r / b <> a || (a = min_int && b = -1) then raise Overflow else r

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let lcm a b = if a = 0 || b = 0 then 0 else abs (mul (a / gcd a b) b)

let fdiv a b =
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let cdiv a b = -fdiv (-a) b
let emod a b = a - mul b (fdiv a b)
let sign a = compare a 0

let rec pow b e =
  if e < 0 then invalid_arg "Ints.pow: negative exponent"
  else if e = 0 then 1
  else mul b (pow b (e - 1))
