lib/support/ints.ml:
