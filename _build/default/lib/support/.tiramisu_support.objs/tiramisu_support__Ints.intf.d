lib/support/ints.mli:
