lib/support/vec.mli: Format
