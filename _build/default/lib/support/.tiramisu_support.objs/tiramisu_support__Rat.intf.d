lib/support/rat.mli: Format
