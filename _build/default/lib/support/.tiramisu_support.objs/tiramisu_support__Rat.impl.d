lib/support/rat.ml: Format Ints Stdlib
