lib/support/vec.ml: Array Format Ints
