lib/codegen/c_emit.ml: Array Buffer List Loop_ir Printf String
