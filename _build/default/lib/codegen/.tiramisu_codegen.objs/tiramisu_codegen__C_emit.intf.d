lib/codegen/c_emit.mli: Loop_ir
