lib/codegen/ast_gen.ml: Array Hashtbl Iset List Loop_ir Option Poly Printf Space Tiramisu_presburger Tiramisu_support
