lib/codegen/loop_ir.ml: Format List Option Printf String Tiramisu_support
