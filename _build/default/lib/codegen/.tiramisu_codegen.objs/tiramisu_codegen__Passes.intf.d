lib/codegen/passes.mli: Loop_ir
