lib/codegen/passes.ml: List Loop_ir Option
