lib/codegen/ast_gen.mli: Loop_ir Tiramisu_presburger
