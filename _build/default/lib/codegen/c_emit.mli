(** C source emission from the loop IR.

    The paper lowers its AST to LLVM IR (via Halide) for CPUs and to CUDA
    for GPUs (§V-A).  This backend plays the same role textually: it turns
    generated loop nests into a self-contained, compilable C translation
    unit — OpenMP pragmas for [Parallel] loops, [#pragma omp simd] for
    vectorized loops, MPI-style calls for distributed send/receive, and a
    CUDA-flavoured rendering for GPU-tagged nests (kernel functions with
    blockIdx/threadIdx bindings). *)

val emit_function :
  name:string ->
  params:string list ->
  buffers:(string * int array) list ->
  Loop_ir.stmt ->
  string
(** A full translation unit: includes, buffer parameters (flat [float*]
    with explicit index linearization), and the loop nest. *)

val emit_expr : Loop_ir.expr -> string
(** A single expression in C syntax (indices linearized only inside
    {!emit_function}, where buffer shapes are known). *)
