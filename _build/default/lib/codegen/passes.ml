module L = Loop_ir

let rec subst_expr v rep (e : L.expr) : L.expr =
  match e with
  | L.Var x when x = v -> rep
  | L.Int _ | L.Float _ | L.Var _ -> e
  | L.Load (b, idx) -> L.Load (b, List.map (subst_expr v rep) idx)
  | L.Bin (op, a, b) -> L.Bin (op, subst_expr v rep a, subst_expr v rep b)
  | L.Neg a -> L.Neg (subst_expr v rep a)
  | L.Cast (d, a) -> L.Cast (d, subst_expr v rep a)
  | L.Select (c, a, b) ->
      L.Select (subst_cond v rep c, subst_expr v rep a, subst_expr v rep b)
  | L.Call (f, args) -> L.Call (f, List.map (subst_expr v rep) args)

and subst_cond v rep (c : L.cond) : L.cond =
  match c with
  | L.True -> L.True
  | L.Cmp (op, a, b) -> L.Cmp (op, subst_expr v rep a, subst_expr v rep b)
  | L.And (a, b) -> L.And (subst_cond v rep a, subst_cond v rep b)
  | L.Or (a, b) -> L.Or (subst_cond v rep a, subst_cond v rep b)
  | L.Not a -> L.Not (subst_cond v rep a)

let rec subst_var v rep (s : L.stmt) : L.stmt =
  match s with
  | L.Block l -> L.Block (List.map (subst_var v rep) l)
  | L.For f ->
      if f.var = v then s  (* shadowed *)
      else
        L.For
          { f with lo = subst_expr v rep f.lo; hi = subst_expr v rep f.hi;
            body = subst_var v rep f.body }
  | L.If (c, t, e) ->
      L.If (subst_cond v rep c, subst_var v rep t, Option.map (subst_var v rep) e)
  | L.Store (b, idx, e) ->
      L.Store (b, List.map (subst_expr v rep) idx, subst_expr v rep e)
  | L.Alloc a ->
      L.Alloc { a with dims = List.map (subst_expr v rep) a.dims;
                body = subst_var v rep a.body }
  | L.Barrier | L.Comment _ | L.Memcpy _ -> s
  | L.Send sd ->
      L.Send { sd with dst = subst_expr v rep sd.dst;
               offset = List.map (subst_expr v rep) sd.offset;
               count = subst_expr v rep sd.count }
  | L.Recv r ->
      L.Recv { r with src = subst_expr v rep r.src;
               offset = List.map (subst_expr v rep) r.offset;
               count = subst_expr v rep r.count }

(* A loop [for v in lo..hi vectorized(w)] becomes
     full  = (hi - lo + 1) / w         (number of full vectors)
     for vb in 0..full-1: for lane in 0..w-1 (vector): body[v := lo + w*vb + lane]
     for v in lo + w*full .. hi: body  (scalar epilogue)
   When the extent is statically w the wrapper loop folds away. *)
let rec vector_legalize (s : L.stmt) : L.stmt =
  match s with
  | L.For ({ tag = L.Vectorized w; _ } as f) ->
      let body = vector_legalize f.body in
      let extent = L.(f.hi -! f.lo +! int 1) in
      let extent = L.simplify_expr extent in
      (match extent with
      | L.Int n when n = w ->
          (* Statically full: keep as a pure vector loop. *)
          L.For { f with body }
      | L.Int n when n < w ->
          (* Statically partial: scalar loop. *)
          L.For { f with tag = L.Seq; body }
      | _ ->
          let full = L.Bin (L.FloorDiv, extent, L.Int w) in
          let vb = f.var ^ "_vb" in
          let lane = f.var ^ "_ln" in
          (* The lane loop runs 0..w-1 with the original iterator
             reconstructed in the body, so downstream analyses see the full
             index expression. *)
          let vec_body =
            L.For
              {
                var = lane;
                lo = L.Int 0;
                hi = L.Int (w - 1);
                tag = L.Vectorized w;
                body =
                  subst_var f.var
                    L.(f.lo +! (int w *! Var vb) +! Var lane)
                    body;
              }
          in
          let main =
            L.For
              { var = vb; lo = L.Int 0; hi = L.(simplify_expr (full -! int 1));
                tag = L.Seq; body = vec_body }
          in
          let epilogue =
            L.For
              { var = f.var; lo = L.(f.lo +! (int w *! full)); hi = f.hi;
                tag = L.Seq; body }
          in
          L.Block [ main; epilogue ])
  | L.Block l -> L.Block (List.map vector_legalize l)
  | L.For f -> L.For { f with body = vector_legalize f.body }
  | L.If (c, t, e) ->
      L.If (c, vector_legalize t, Option.map vector_legalize e)
  | L.Alloc a -> L.Alloc { a with body = vector_legalize a.body }
  | _ -> s

let rec stmt_size (s : L.stmt) : int =
  match s with
  | L.Block l -> List.fold_left (fun a s -> a + stmt_size s) 0 l
  | L.For f -> 1 + stmt_size f.body
  | L.If (_, t, e) ->
      1 + stmt_size t + Option.fold ~none:0 ~some:stmt_size e
  | L.Alloc a -> 1 + stmt_size a.body
  | _ -> 1

let rec unroll_expand ?(max_body = 64) (s : L.stmt) : L.stmt =
  match s with
  | L.For ({ tag = L.Unrolled; _ } as f) -> (
      let body = unroll_expand ~max_body f.body in
      match (L.simplify_expr f.lo, L.simplify_expr f.hi) with
      | L.Int lo, L.Int hi
        when hi >= lo && (hi - lo + 1) * stmt_size body <= max_body ->
          L.Block
            (List.init (hi - lo + 1) (fun k ->
                 subst_var f.var (L.Int (lo + k)) body))
      | _ -> L.For { f with body })
  | L.Block l -> L.Block (List.map (unroll_expand ~max_body) l)
  | L.For f -> L.For { f with body = unroll_expand ~max_body f.body }
  | L.If (c, t, e) ->
      L.If (c, unroll_expand ~max_body t,
            Option.map (unroll_expand ~max_body) e)
  | L.Alloc a -> L.Alloc { a with body = unroll_expand ~max_body a.body }
  | _ -> s

let legalize s = L.simplify_stmt (unroll_expand (vector_legalize s))
