open Tiramisu_presburger
module L = Loop_ir

type source = {
  name : string;
  sched : Iset.t;
  dim_names : string array;
  tags : L.loop_tag array;
  emit : (int -> L.expr) -> L.stmt;
}

exception Unbounded of string

(* One convex piece of one statement. [pending] holds guard conditions that
   were discovered at an outer shared loop but could not be emitted there
   without breaking the interleaving of fused statements; they are emitted at
   the first point where the instance is alone (or at the leaf). *)
type instance = {
  src : source;
  poly : Poly.t;          (* over [params; time dims] *)
  ctx : Poly.t;           (* constraints already enforced for this instance *)
  pending : L.cond list;
}

type gen_env = {
  params : string array;
  nt : int;                       (* number of time dimensions *)
  dim_vars : L.expr option array; (* value of each time dim, once generated *)
  used_names : (string, unit) Hashtbl.t;
}

let fresh_name env base =
  let base = if base = "" then "t" else base in
  let rec go i =
    let n = if i = 0 then base else Printf.sprintf "%s_%d" base i in
    if Hashtbl.mem env.used_names n then go (i + 1)
    else begin
      Hashtbl.add env.used_names n ();
      n
    end
  in
  go 0

(* Convert a coefficient row over [const; params; tdims] into an expression,
   resolving time dims through the environment. *)
let row_to_expr env row =
  let np = Array.length env.params in
  let acc = ref (L.Int row.(0)) in
  Array.iteri
    (fun i p ->
      let c = row.(i + 1) in
      if c <> 0 then acc := L.(!acc +! (int c *! Var p)))
    env.params;
  for k = 0 to env.nt - 1 do
    let c = row.(np + k + 1) in
    if c <> 0 then
      match env.dim_vars.(k) with
      | Some e -> acc := L.(!acc +! (int c *! e))
      | None ->
          invalid_arg
            (Printf.sprintf "Ast_gen: row references un-generated dim %d" k)
  done;
  L.simplify_expr !acc

(* Bounds of time dim [k] from the projected polyhedron: lower bounds come
   from rows with positive coefficient on k, upper bounds from negative. *)
let bounds_of env ~k proj name =
  let np = Array.length env.params in
  let col = np + k + 1 in
  let lbs = ref [] and ubs = ref [] in
  List.iter
    (fun row ->
      let a = row.(col) in
      if a <> 0 then begin
        (* a*t + rest >= 0 *)
        let rest = Array.copy row in
        rest.(col) <- 0;
        if a > 0 then begin
          (* t >= ceil(-rest / a) = floor((-rest + a - 1) / a) *)
          let e = row_to_expr env (Tiramisu_support.Vec.neg rest) in
          let e =
            if a = 1 then e
            else L.Bin (L.FloorDiv, L.(e +! L.int (a - 1)), L.int a)
          in
          lbs := L.simplify_expr e :: !lbs
        end
        else begin
          (* t <= floor(rest / -a) *)
          let b = -a in
          let e = row_to_expr env rest in
          let e = if b = 1 then e else L.Bin (L.FloorDiv, e, L.int b) in
          ubs := L.simplify_expr e :: !ubs
        end
      end)
    (Poly.to_ineqs proj);
  match (!lbs, !ubs) with
  | [], _ | _, [] -> raise (Unbounded name)
  | lbs, ubs -> (lbs, ubs)

(* Guard condition from the constraints of [g]. *)
let guard_cond env g =
  let ineq row = L.Cmp (L.GeOp, row_to_expr env row, L.Int 0) in
  let eq row = L.Cmp (L.EqOp, row_to_expr env row, L.Int 0) in
  let open Poly in
  L.simplify_cond (L.conj (List.map eq g.eqs @ List.map ineq g.ineqs))

let keep_upto ~np k i = i < np + k + 1 (* params and dims 0..k *)

(* Rows of [p] that mention time dim k. *)
let rows_on ~np ~k p =
  let col = np + k + 1 in
  let eqs = List.filter (fun r -> r.(col) <> 0) p.Poly.eqs in
  let ineqs = List.filter (fun r -> r.(col) <> 0) p.Poly.ineqs in
  Poly.make (Poly.dim p) ~eqs ~ineqs

let merge_tags name tags =
  List.fold_left
    (fun acc t ->
      match (acc, t) with
      | L.Seq, t -> t
      | t, L.Seq -> t
      | a, b when a = b -> a
      | _ ->
          invalid_arg
            (Printf.sprintf
               "Ast_gen: conflicting hardware tags on a shared loop of %s" name))
    L.Seq tags

let wrap_pending pending stmts =
  match L.simplify_cond (L.conj pending) with
  | L.True -> stmts
  | c -> [ L.If (c, L.block stmts, None) ]

let rec gen env level insts : L.stmt list =
  match insts with
  | [] -> []
  | [ inst ] when inst.pending <> [] ->
      (* Alone: safe to materialize the pending guards around the subtree. *)
      wrap_pending inst.pending (gen env level [ { inst with pending = [] } ])
  | _ when level = env.nt ->
      (* Leaf: emit each statement under its residual guard. *)
      List.concat_map
        (fun inst ->
          let g = Poly.gist inst.poly ~ctx:inst.ctx in
          let body =
            inst.src.emit (fun k ->
                match env.dim_vars.(k) with
                | Some e -> e
                | None -> invalid_arg "Ast_gen: missing dim value at leaf")
          in
          wrap_pending (guard_cond env g :: inst.pending) [ body ])
        insts
  | _ ->
      let np = Array.length env.params in
      let consts =
        List.map (fun i -> Poly.constant_value i.poly (np + level)) insts
      in
      if List.for_all Option.is_some consts then begin
        (* Static dimension: group by value, in increasing order. *)
        let tagged = List.map2 (fun i c -> (Option.get c, i)) insts consts in
        let values = List.sort_uniq compare (List.map fst tagged) in
        List.concat_map
          (fun v ->
            let group =
              List.filter_map
                (fun (c, i) ->
                  if c = v then
                    Some { i with ctx = Poly.fix_var i.ctx (np + level) v }
                  else None)
                tagged
            in
            env.dim_vars.(level) <- Some (L.Int v);
            let out = gen env (level + 1) group in
            env.dim_vars.(level) <- None;
            out)
          values
      end
      else begin
        (* Dynamic dimension: loop over the union of the instances' ranges. *)
        let name =
          let suggested =
            let s = (List.hd insts).src in
            if level < Array.length s.dim_names then s.dim_names.(level)
            else "t"
          in
          fresh_name env suggested
        in
        let projs =
          List.map
            (fun inst ->
              fst (Poly.eliminate inst.poly ~keep:(keep_upto ~np level)))
            insts
        in
        let per_inst_bounds =
          List.map2
            (fun inst proj -> bounds_of env ~k:level proj inst.src.name)
            insts projs
        in
        let lows = List.map (fun (lbs, _) -> L.fold_max lbs) per_inst_bounds in
        let ups = List.map (fun (_, ubs) -> L.fold_min ubs) per_inst_bounds in
        let lo = L.simplify_expr (L.fold_min lows) in
        let hi = L.simplify_expr (L.fold_max ups) in
        let tag =
          merge_tags (List.hd insts).src.name
            (List.map
               (fun i ->
                 if level < Array.length i.src.tags then i.src.tags.(level)
                 else L.Seq)
               insts)
        in
        let single = match insts with [ _ ] -> true | _ -> false in
        env.dim_vars.(level) <- Some (L.Var name);
        let insts' =
          List.map2
            (fun inst proj ->
              let enforced =
                if single then
                  Poly.intersect inst.ctx (rows_on ~np ~k:level proj)
                else inst.ctx
              in
              let g = Poly.gist proj ~ctx:enforced in
              let guard = guard_cond env g in
              let pending =
                match guard with L.True -> inst.pending | c -> c :: inst.pending
              in
              { inst with ctx = Poly.intersect inst.ctx proj; pending })
            insts projs
        in
        let body = L.block (gen env (level + 1) insts') in
        env.dim_vars.(level) <- None;
        [ L.For { var = name; lo; hi; tag; body } ]
      end

let generate ?(context = []) ~params sources =
  match sources with
  | [] -> L.Block []
  | s0 :: _ ->
      let nt = Iset.n_vars s0.sched in
      List.iter
        (fun s ->
          if Iset.n_vars s.sched <> nt then
            invalid_arg "Ast_gen.generate: time arity mismatch")
        sources;
      let params = Array.of_list params in
      let env =
        {
          params;
          nt;
          dim_vars = Array.make nt None;
          used_names = Hashtbl.create 16;
        }
      in
      Array.iter (fun p -> Hashtbl.add env.used_names p ()) params;
      let ctx0 =
        let space =
          Space.set_space ~params:(Array.to_list params)
            (List.init nt (Printf.sprintf "__t%d"))
        in
        (Iset.of_constraints space context).Iset.polys |> List.hd
      in
      let insts =
        List.concat_map
          (fun src ->
            List.map
              (fun poly -> { src; poly; ctx = ctx0; pending = [] })
              src.sched.Iset.polys)
          sources
      in
      L.simplify_stmt (L.block (gen env 0 insts))
