(** Polyhedral AST generation — the CLooG/isl-codegen replacement (§V-A).

    Given a list of statements, each with a scheduled iteration set over a
    common time-dimension space (Layer II/IV of the paper's IR), generates a
    loop nest that visits every point of every set exactly once, following
    the lexicographic order of the time tuples.

    Static dimensions (those fixed to a constant in every statement) become
    sequencing, dynamic dimensions become loops whose bounds are extracted by
    (possibly over-approximating) Fourier–Motzkin projection; per-statement
    guards — simplified against the accumulated context with exact emptiness
    tests — restore exactness. *)

type source = {
  name : string;  (** statement name, used in diagnostics *)
  sched : Tiramisu_presburger.Iset.t;
      (** scheduled domain: tuple variables are the time dimensions *)
  dim_names : string array;
      (** suggested loop-variable name per time dimension *)
  tags : Loop_ir.loop_tag array;  (** hardware tag per time dimension *)
  emit : (int -> Loop_ir.expr) -> Loop_ir.stmt;
      (** statement body builder; the callback maps a time-dimension index to
          the loop variable (or constant) that holds its value *)
}

exception Unbounded of string
(** Raised when a dynamic dimension of the named statement has no lower or
    no upper bound — generated loops must be finite. *)

val generate :
  ?context:Tiramisu_presburger.Cstr.t list ->
  params:string list ->
  source list ->
  Loop_ir.stmt
(** [generate ~params sources] produces the full loop nest.  [context] may
    carry assumptions on the parameters (e.g. [N >= 4]) used to simplify
    guards.  All sources must share the parameter list and time arity. *)
