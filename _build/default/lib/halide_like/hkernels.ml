(* The image benchmarks of §VI-B written against the mini-Halide API, with
   the expert schedules.  edgeDetector and ticket #2373 are deliberately
   absent: they cannot be expressed (see {!Halide.store_in_input} and the
   bounds-inference failure), which is what the "-" entries of Fig. 6
   denote. *)

open Tiramisu_core
module H = Halide
module E = Expr

let acc name idx = Ir.Access_e (name, idx)
let i' = E.iter "i"
let j' = E.iter "j"
let c' = E.iter "c"

type bench = {
  b_pipe : H.pipeline;
  b_out : H.func list;
  b_inputs : (H.func * (int * int) list) list;
  b_out_bounds : (int * int) list;
  cpu_sched : unit -> unit;
  gpu_sched : unit -> unit;
}

let rgb_bounds n m = [ (0, n - 1); (0, m - 1); (0, 2) ]

let cvt_color ~n ~m =
  let p = H.pipeline "h_cvtColor" in
  let inp = H.input p "img" 3 in
  let gray =
    H.func p "gray" [ "i"; "j" ]
      E.(
        (float 0.299 *: acc "img" [ i'; j'; int 0 ])
        +: (float 0.587 *: acc "img" [ i'; j'; int 1 ])
        +: (float 0.114 *: acc "img" [ i'; j'; int 2 ]))
  in
  {
    b_pipe = p;
    b_out = [ gray ];
    b_inputs = [ (inp, rgb_bounds n m) ];
    b_out_bounds = [ (0, n - 1); (0, m - 1) ];
    cpu_sched =
      (fun () ->
        H.parallel gray "i";
        H.vectorize gray "j" 8);
    gpu_sched = (fun () -> H.gpu_tile gray "i" "j" 16 16);
  }

let conv2d ~n ~m =
  let p = H.pipeline "h_conv2D" in
  let inp = H.input p "img" 3 in
  let w = H.input p "weights" 2 in
  let terms =
    List.concat_map
      (fun ki ->
        List.map
          (fun kj ->
            E.(
              acc "img"
                [
                  clamp (i' +: int (ki - 1)) (int 0) (int (n - 1));
                  clamp (j' +: int (kj - 1)) (int 0) (int (m - 1));
                  c';
                ]
              *: acc "weights" [ int ki; int kj ]))
          [ 0; 1; 2 ])
      [ 0; 1; 2 ]
  in
  let conv =
    H.func p "conv" [ "i"; "j"; "c" ]
      (List.fold_left E.( +: ) (List.hd terms) (List.tl terms))
  in
  {
    b_pipe = p;
    b_out = [ conv ];
    b_inputs = [ (inp, rgb_bounds n m); (w, [ (0, 2); (0, 2) ]) ];
    b_out_bounds = rgb_bounds n m;
    cpu_sched =
      (fun () ->
        H.parallel conv "i";
        H.vectorize conv "j" 8;
        H.unroll conv "c" 3);
    (* No constant-memory placement in the Halide PTX backend (§VI-B-b). *)
    gpu_sched = (fun () -> H.gpu_tile conv "i" "j" 16 16);
  }

let gaussian ~n ~m =
  let p = H.pipeline "h_gaussian" in
  let inp = H.input p "img" 3 in
  let weights = [ 0.0625; 0.25; 0.375; 0.25; 0.0625 ] in
  let s1 =
    List.mapi
      (fun k w ->
        E.(
          float w
          *: acc "img"
               [ i'; clamp (j' +: int (k - 2)) (int 0) (int (m - 1)); c' ]))
      weights
  in
  let gx =
    H.func p "gx" [ "i"; "j"; "c" ]
      (List.fold_left E.( +: ) (List.hd s1) (List.tl s1))
  in
  let s2 =
    List.mapi
      (fun k w ->
        E.(
          float w
          *: acc "gx"
               [ clamp (i' +: int (k - 2)) (int 0) (int (n - 1)); j'; c' ]))
      weights
  in
  let gy =
    H.func p "gy" [ "i"; "j"; "c" ]
      (List.fold_left E.( +: ) (List.hd s2) (List.tl s2))
  in
  {
    b_pipe = p;
    b_out = [ gy ];
    b_inputs = [ (inp, rgb_bounds n m) ];
    b_out_bounds = rgb_bounds n m;
    cpu_sched =
      (fun () ->
        H.parallel gx "i";
        H.vectorize gx "j" 8;
        H.parallel gy "i";
        H.vectorize gy "j" 8);
    gpu_sched =
      (fun () ->
        H.gpu_tile gx "i" "j" 16 16;
        H.gpu_tile gy "i" "j" 16 16);
  }

let warp_affine ~n ~m =
  let p = H.pipeline "h_warpAffine" in
  let inp = H.input p "img" 2 in
  let a11, a12, b1, a21, a22, b2 = (0.9, 0.1, 3.0, -0.1, 0.9, 5.0) in
  let open E in
  let xf = (float a11 *: i') +: (float a12 *: j') +: float b1 in
  let yf = (float a21 *: i') +: (float a22 *: j') +: float b2 in
  let xi =
    clamp (cast Tiramisu_codegen.Loop_ir.I32 (call "floor" [ xf ])) (int 0)
      (int (n - 2))
  in
  let yi =
    clamp (cast Tiramisu_codegen.Loop_ir.I32 (call "floor" [ yf ])) (int 0)
      (int (m - 2))
  in
  let wx = xf -: call "floor" [ xf ] and wy = yf -: call "floor" [ yf ] in
  let s dx dy = acc "img" [ xi +: int dx; yi +: int dy ] in
  let warp =
    H.func p "warp" [ "i"; "j" ]
      (((float 1.0 -: wx) *: (float 1.0 -: wy) *: s 0 0)
      +: (wx *: (float 1.0 -: wy) *: s 1 0)
      +: ((float 1.0 -: wx) *: wy *: s 0 1)
      +: (wx *: wy *: s 1 1))
  in
  {
    b_pipe = p;
    b_out = [ warp ];
    b_inputs = [ (inp, [ (0, n - 1); (0, m - 1) ]) ];
    b_out_bounds = [ (0, n - 1); (0, m - 1) ];
    cpu_sched =
      (fun () ->
        H.parallel warp "i";
        H.vectorize warp "j" 8);
    gpu_sched = (fun () -> H.gpu_tile warp "i" "j" 16 16);
  }

(* nb: Halide cannot fuse the four stages (conservative rule), so each runs
   as its own loop nest — 4x the memory traffic of the fused Tiramisu
   version. *)
let nb ~n ~m =
  let p = H.pipeline "h_nb" in
  let inp = H.input p "img" 3 in
  let t1 =
    H.func p "t1" [ "i"; "j"; "c" ]
      E.(float 255.0 -: acc "img" [ i'; j'; c' ])
  in
  let neg =
    H.func p "negative" [ "i"; "j"; "c" ]
      E.(max_ (float 0.0) (acc "t1" [ i'; j'; c' ]))
  in
  let t2 =
    H.func p "t2" [ "i"; "j"; "c" ]
      E.(float 1.5 *: acc "img" [ i'; j'; c' ])
  in
  let bright =
    H.func p "brightened" [ "i"; "j"; "c" ]
      E.(min_ (float 255.0) (acc "t2" [ i'; j'; c' ]))
  in
  let all = [ t1; neg; t2; bright ] in
  {
    b_pipe = p;
    b_out = [ neg; bright ];
    b_inputs = [ (inp, rgb_bounds n m) ];
    b_out_bounds = rgb_bounds n m;
    cpu_sched =
      (fun () ->
        List.iter
          (fun f ->
            H.parallel f "i";
            H.vectorize f "j" 8)
          all);
    gpu_sched = (fun () -> List.iter (fun f -> H.gpu_tile f "i" "j" 16 16) all);
  }

let blur ~n ~m =
  ignore (n, m);
  let p = H.pipeline "h_blur" in
  let inp = H.input p "img" 3 in
  let bx =
    H.func p "bx" [ "i"; "j"; "c" ]
      E.(
        ((acc "img" [ i'; j'; c' ] +: acc "img" [ i'; j' +: int 1; c' ])
        +: acc "img" [ i'; j' +: int 2; c' ])
        /: float 3.0)
  in
  let by =
    H.func p "by" [ "i"; "j"; "c" ]
      E.(
        ((acc "bx" [ i'; j'; c' ] +: acc "bx" [ i' +: int 1; j'; c' ])
        +: acc "bx" [ i' +: int 2; j'; c' ])
        /: float 3.0)
  in
  {
    b_pipe = p;
    b_out = [ by ];
    b_inputs = [ (inp, rgb_bounds n m) ];
    b_out_bounds = [ (0, n - 5); (0, m - 3); (0, 2) ];
    cpu_sched =
      (fun () ->
        H.parallel by "i";
        H.vectorize by "j" 8;
        H.parallel bx "i";
        H.vectorize bx "j" 8);
    gpu_sched =
      (fun () ->
        H.gpu_tile bx "i" "j" 16 16;
        H.gpu_tile by "i" "j" 16 16);
  }
