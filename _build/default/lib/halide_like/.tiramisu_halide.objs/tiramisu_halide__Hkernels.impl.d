lib/halide_like/hkernels.ml: Expr Halide Ir List Tiramisu_codegen Tiramisu_core
