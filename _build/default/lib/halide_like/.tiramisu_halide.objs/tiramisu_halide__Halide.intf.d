lib/halide_like/halide.mli: Tiramisu_backends Tiramisu_codegen Tiramisu_core
