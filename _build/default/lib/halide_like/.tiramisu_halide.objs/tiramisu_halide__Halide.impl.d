lib/halide_like/halide.ml: Array Expr Float Hashtbl Ir List Option Printf Seq Tiramisu_backends Tiramisu_codegen Tiramisu_core Tiramisu_presburger
