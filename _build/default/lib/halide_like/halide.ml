open Tiramisu_core
module L = Tiramisu_codegen.Loop_ir

exception Unsupported of string

type loop_kind =
  | Root of string              (* iterates an argument's full interval *)
  | Outer of string * int       (* split outer part of an argument *)
  | Inner of string * int       (* split inner part (factor iterations) *)

type loop = {
  mutable l_var : string;
  mutable l_tag : L.loop_tag;
  l_kind : loop_kind;
}

type func = {
  h_name : string;
  h_args : string list;
  h_rank : int;
  h_body : Ir.expr option;      (* None = input image *)
  mutable h_loops : loop list;  (* outermost first *)
  mutable h_with : func option; (* compute_with partner (fused) *)
}

type pipeline = {
  p_name : string;
  mutable p_funcs : func list;
}

let pipeline p_name = { p_name; p_funcs = [] }

let func p name args body =
  let f =
    {
      h_name = name;
      h_args = args;
      h_rank = List.length args;
      h_body = Some body;
      h_loops = List.map (fun a -> { l_var = a; l_tag = L.Seq; l_kind = Root a }) args;
      h_with = None;
    }
  in
  p.p_funcs <- p.p_funcs @ [ f ];
  f

let input p name rank =
  let f =
    {
      h_name = name;
      h_args = List.init rank (Printf.sprintf "_a%d");
      h_rank = rank;
      h_body = None;
      h_loops = [];
      h_with = None;
    }
  in
  p.p_funcs <- p.p_funcs @ [ f ];
  f

let name f = f.h_name

(* ---------------- scheduling ---------------- *)

let find_loop f v =
  match List.find_opt (fun l -> l.l_var = v) f.h_loops with
  | Some l -> l
  | None ->
      raise (Unsupported (Printf.sprintf "%s: no loop %s" f.h_name v))

let parallel f v = (find_loop f v).l_tag <- L.Parallel
let unroll f v _factor = (find_loop f v).l_tag <- L.Unrolled

let split f v factor outer inner =
  let rec go = function
    | [] -> raise (Unsupported (Printf.sprintf "%s: no loop %s" f.h_name v))
    | l :: rest when l.l_var = v -> (
        match l.l_kind with
        | Root arg ->
            { l_var = outer; l_tag = L.Seq; l_kind = Outer (arg, factor) }
            :: { l_var = inner; l_tag = l.l_tag; l_kind = Inner (arg, factor) }
            :: rest
        | _ ->
            raise (Unsupported "halide baseline: nested splits not supported"))
    | l :: rest -> l :: go rest
  in
  f.h_loops <- go f.h_loops

let vectorize f v width =
  split f v width v (v ^ "_v");
  (find_loop f (v ^ "_v")).l_tag <- L.Vectorized width

let reorder f order =
  let remaining =
    List.filter (fun l -> not (List.mem l.l_var order)) f.h_loops
  in
  let picked = List.map (find_loop f) order in
  (* Halide's reorder lists innermost-first; we take outermost-first for
     consistency with the rest of this codebase. *)
  f.h_loops <- picked @ remaining

let gpu_tile f vx vy fx fy =
  split f vx fx vx (vx ^ "_t");
  split f vy fy vy (vy ^ "_t");
  reorder f [ vx; vy; vx ^ "_t"; vy ^ "_t" ];
  (* threadIdx.x on the second (contiguous) dimension for coalescing, as
     Halide's gpu_tile does. *)
  (find_loop f vx).l_tag <- L.Gpu_block 1;
  (find_loop f vy).l_tag <- L.Gpu_block 0;
  (find_loop f (vx ^ "_t")).l_tag <- L.Gpu_thread 1;
  (find_loop f (vy ^ "_t")).l_tag <- L.Gpu_thread 0

let reads f g =
  (* does f's body access g? *)
  match f.h_body with
  | None -> false
  | Some body ->
      List.exists (fun (n, _) -> n = g.h_name) (Expr.accesses body)

let compute_with f g =
  if reads f g || reads g f then
    raise
      (Unsupported
         (Printf.sprintf
            "cannot compute %s with %s: one reads the other's output (Halide \
             cannot prove the fusion legal without dependence analysis)"
            f.h_name g.h_name));
  if f.h_rank <> g.h_rank then
    raise (Unsupported "compute_with: rank mismatch");
  f.h_with <- Some g

let store_in_input f inp =
  raise
    (Unsupported
       (Printf.sprintf
          "storing %s into input %s creates a cyclic dataflow graph, which \
           Halide's acyclic-pipeline restriction rejects"
          f.h_name inp.h_name))

(* ---------------- interval arithmetic ---------------- *)

type itv = { lo : float; hi : float }

let iconst v = { lo = v; hi = v }
let ijoin a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let rec interval env params (e : Ir.expr) : itv =
  match e with
  | Ir.Int_e n -> iconst (float_of_int n)
  | Ir.Float_e f -> iconst f
  | Ir.Param_e p -> (
      match List.assoc_opt p params with
      | Some v -> iconst (float_of_int v)
      | None -> raise (Unsupported ("unbound parameter " ^ p)))
  | Ir.Iter_e i -> (
      match List.assoc_opt i env with
      | Some itv -> itv
      | None -> raise (Unsupported ("unbound loop variable " ^ i)))
  | Ir.Neg_e a ->
      let x = interval env params a in
      { lo = -.x.hi; hi = -.x.lo }
  | Ir.Bin_e (op, a, b) -> (
      let x = interval env params a and y = interval env params b in
      match op with
      | Ir.Add -> { lo = x.lo +. y.lo; hi = x.hi +. y.hi }
      | Ir.Sub -> { lo = x.lo -. y.hi; hi = x.hi -. y.lo }
      | Ir.Mul ->
          let c = [ x.lo *. y.lo; x.lo *. y.hi; x.hi *. y.lo; x.hi *. y.hi ] in
          { lo = List.fold_left Float.min infinity c;
            hi = List.fold_left Float.max neg_infinity c }
      | Ir.Div ->
          let c = [ x.lo /. y.lo; x.lo /. y.hi; x.hi /. y.lo; x.hi /. y.hi ] in
          { lo = List.fold_left Float.min infinity c;
            hi = List.fold_left Float.max neg_infinity c }
      | Ir.Min -> { lo = Float.min x.lo y.lo; hi = Float.min x.hi y.hi }
      | Ir.Max -> { lo = Float.max x.lo y.lo; hi = Float.max x.hi y.hi })
  | Ir.Clamp_e (x, lo, hi) ->
      let xi = interval env params x in
      let li = interval env params lo and hi' = interval env params hi in
      { lo = Float.max xi.lo li.lo; hi = Float.min xi.hi hi'.hi }
  | Ir.Select_e (_, a, b) ->
      ijoin (interval env params a) (interval env params b)
  | Ir.Cmp_e _ -> { lo = 0.0; hi = 1.0 }
  | Ir.Call_e ("floor", [ a ]) ->
      let x = interval env params a in
      { lo = Float.of_int (int_of_float (Float.floor x.lo));
        hi = Float.of_int (int_of_float (Float.floor x.hi)) }
  | Ir.Call_e (_, args) ->
      List.fold_left
        (fun acc a -> ijoin acc (interval env params a))
        (iconst 0.0) args
  | Ir.Cast_e (_, a) -> interval env params a
  | Ir.Access_e (_, _) ->
      (* value intervals of data are unknown; only used in index position
         when data-dependent — not supported by Halide either *)
      raise (Unsupported "data-dependent index")

(* ---------------- bounds inference ---------------- *)

type box = (int * int) list (* (min, max) inclusive per dimension *)

let topo_order p outputs =
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit stack f =
    if List.memq f stack then
      raise
        (Unsupported
           (Printf.sprintf "cyclic dataflow through %s (Halide requires an \
                            acyclic pipeline)" f.h_name));
    if not (Hashtbl.mem visited f.h_name) then begin
      Hashtbl.replace visited f.h_name ();
      (match f.h_body with
      | None -> ()
      | Some body ->
          List.iter
            (fun (n, _) ->
              match List.find_opt (fun g -> g.h_name = n) p.p_funcs with
              | Some g -> visit (f :: stack) g
              | None -> ())
            (Expr.accesses body));
      order := f :: !order
    end
  in
  List.iter (fun (f, _) -> visit [] f) outputs;
  (* [!order] lists consumers before their producers. *)
  !order

let infer_bounds p ~outputs ~inputs ~params =
  let boxes : (string, box) Hashtbl.t = Hashtbl.create 16 in
  let union_box name (b : box) =
    match Hashtbl.find_opt boxes name with
    | None -> Hashtbl.replace boxes name b
    | Some b0 ->
        Hashtbl.replace boxes name
          (List.map2 (fun (l0, h0) (l, h) -> (min l0 l, max h0 h)) b0 b)
  in
  List.iter (fun (f, b) -> union_box f.h_name (List.map (fun (lo, hi) -> (lo, hi)) b)) outputs;
  (* consumers first: propagate requirements down to producers *)
  let order = topo_order p outputs in
  List.iter
    (fun f ->
      match (f.h_body, Hashtbl.find_opt boxes f.h_name) with
      | Some body, Some box ->
          let env =
            List.map2
              (fun a (lo, hi) ->
                (a, { lo = float_of_int lo; hi = float_of_int hi }))
              f.h_args box
          in
          List.iter
            (fun (callee, idx) ->
              match List.find_opt (fun g -> g.h_name = callee) p.p_funcs with
              | None -> ()
              | Some g ->
                  let b =
                    List.map
                      (fun e ->
                        let itv = interval env params e in
                        ( int_of_float (Float.floor itv.lo),
                          int_of_float (Float.ceil itv.hi) ))
                      idx
                  in
                  if List.length b <> g.h_rank then
                    raise (Unsupported (callee ^ ": access arity mismatch"));
                  union_box g.h_name b)
            (Expr.accesses body)
      | _ -> ())
    order;
  (* Inputs must cover their inferred required regions. *)
  List.iter
    (fun (f, declared) ->
      match Hashtbl.find_opt boxes f.h_name with
      | None -> Hashtbl.replace boxes f.h_name declared
      | Some required ->
          List.iter2
            (fun (rl, rh) (dl, dh) ->
              if rl < dl || rh > dh then
                raise
                  (Unsupported
                     (Printf.sprintf
                        "inferred required region of input %s ([%d,%d]) \
                         exceeds its bounds ([%d,%d]): execution would fail \
                         an assertion (Halide bounds over-approximation)"
                        f.h_name rl rh dl dh)))
            required declared;
          Hashtbl.replace boxes f.h_name declared)
    inputs;
  boxes

(* ---------------- lowering ---------------- *)

type compiled = {
  ast : L.stmt;
  buffers : (string * int array * L.mem_space) list;
  regions : (string * (int * int) list) list;
}

let rec translate p boxes (e : Ir.expr) : L.expr =
  let tr = translate p boxes in
  match e with
  | Ir.Int_e n -> L.Int n
  | Ir.Float_e f -> L.Float f
  | Ir.Param_e pm -> L.Var pm
  | Ir.Iter_e i -> L.Var i
  | Ir.Access_e (callee, idx) -> (
      match Hashtbl.find_opt boxes callee with
      | None -> raise (Unsupported ("unknown func " ^ callee))
      | Some box ->
          L.Load
            ( callee,
              List.map2
                (fun e (mn, _) -> L.simplify_expr L.(tr e -! int mn))
                idx box ))
  | Ir.Bin_e (op, a, b) ->
      let op' =
        match op with
        | Ir.Add -> L.Add | Ir.Sub -> L.Sub | Ir.Mul -> L.Mul
        | Ir.Div -> L.Div | Ir.Min -> L.MinOp | Ir.Max -> L.MaxOp
      in
      L.Bin (op', tr a, tr b)
  | Ir.Neg_e a -> L.Neg (tr a)
  | Ir.Cmp_e (op, a, b) ->
      let op' =
        match op with
        | Ir.Eq -> L.EqOp | Ir.Ne -> L.NeOp | Ir.Lt -> L.LtOp
        | Ir.Le -> L.LeOp | Ir.Gt -> L.GtOp | Ir.Ge -> L.GeOp
      in
      L.Select (L.Cmp (op', tr a, tr b), L.Int 1, L.Int 0)
  | Ir.Select_e (c, a, b) ->
      let cond =
        match c with
        | Ir.Cmp_e (op, x, y) ->
            let op' =
              match op with
              | Ir.Eq -> L.EqOp | Ir.Ne -> L.NeOp | Ir.Lt -> L.LtOp
              | Ir.Le -> L.LeOp | Ir.Gt -> L.GtOp | Ir.Ge -> L.GeOp
            in
            L.Cmp (op', tr x, tr y)
        | _ -> L.Cmp (L.NeOp, tr c, L.Int 0)
      in
      L.Select (cond, tr a, tr b)
  | Ir.Clamp_e (v, lo, hi) ->
      L.Bin (L.MaxOp, L.Bin (L.MinOp, tr v, tr hi), tr lo)
  | Ir.Call_e (f, args) -> L.Call (f, List.map tr args)
  | Ir.Cast_e (d, a) -> L.Cast (d, tr a)

(* Loop nest for one func over its inferred box. *)
let lower_func p boxes f =
  match f.h_body with
  | None -> L.Block []
  | Some body ->
      let box = Hashtbl.find boxes f.h_name in
      let arg_box a = List.nth box (Option.get (List.find_index (( = ) a) f.h_args)) in
      let store =
        L.Store
          ( f.h_name,
            List.map2
              (fun a (mn, _) -> L.simplify_expr L.(Var a -! int mn))
              f.h_args box,
            translate p boxes body )
      in
      (* Split loops reconstruct their argument and guard the tail. *)
      let rec build loops (body : L.stmt) =
        match loops with
        | [] -> body
        | l :: rest -> (
            let inner = build rest body in
            match l.l_kind with
            | Root a ->
                let mn, mx = arg_box a in
                L.For { var = a; lo = L.Int mn; hi = L.Int mx; tag = l.l_tag;
                        body = inner }
            | Outer (a, factor) ->
                let mn, mx = arg_box a in
                let extent = mx - mn + 1 in
                let n_outer = (extent + factor - 1) / factor in
                ignore mn;
                L.For { var = l.l_var; lo = L.Int 0; hi = L.Int (n_outer - 1);
                        tag = l.l_tag; body = inner }
            | Inner (a, factor) ->
                let mn, mx = arg_box a in
                let outer_var =
                  match
                    List.find_opt
                      (fun l' ->
                        match l'.l_kind with
                        | Outer (a', _) -> a' = a
                        | _ -> false)
                      f.h_loops
                  with
                  | Some l' -> l'.l_var
                  | None -> raise (Unsupported "split without outer loop")
                in
                (* Halide's ShiftInwards tail strategy: the last partial
                   chunk is shifted to overlap the previous one (pure funcs
                   may recompute), avoiding a per-iteration guard. *)
                let base =
                  L.(Bin
                       (MinOp,
                        int mn +! (Var outer_var *! int factor),
                        int (max mn (mx - factor + 1))))
                in
                let recon = L.(base +! Var l.l_var) in
                L.For { var = l.l_var; lo = L.Int 0; hi = L.Int (factor - 1);
                        tag = l.l_tag;
                        body = Tiramisu_codegen.Passes.subst_var a recon inner })
      in
      (* Substitute the reconstructed argument inside the body: Root loops
         bind the arg var directly; Inner loops substitute. *)
      build f.h_loops store

let compile p ~outputs ~inputs ~params =
  let boxes = infer_bounds p ~outputs ~inputs ~params in
  (* producers first, so values exist before they are read *)
  let order = List.rev (topo_order p outputs) in
  let fused_away =
    List.filter_map (fun f -> Option.map (fun g -> g.h_name) f.h_with) p.p_funcs
  in
  ignore fused_away;
  let stmts =
    List.filter_map
      (fun f ->
        match f.h_body with
        | None -> None
        | Some _ ->
            let s = lower_func p boxes f in
            let s =
              match f.h_with with
              | Some g -> L.Block [ lower_func p boxes g; s ]
              | None -> s
            in
            Some s)
      (List.filter
         (fun f ->
           not
             (List.exists
                (fun h -> match h.h_with with Some g -> g == f | None -> false)
                p.p_funcs))
         order)
  in
  let any_gpu =
    List.exists
      (fun f ->
        List.exists
          (fun l ->
            match l.l_tag with
            | L.Gpu_block _ | L.Gpu_thread _ -> true
            | _ -> false)
          f.h_loops)
      p.p_funcs
  in
  let copies_in, copies_out =
    if not any_gpu then ([], [])
    else
      ( List.map
          (fun (f, _) ->
            L.Memcpy { dst = f.h_name; src = f.h_name;
                       direction = "host_to_device" })
          inputs,
        List.map
          (fun (f, _) ->
            L.Memcpy { dst = f.h_name; src = f.h_name;
                       direction = "device_to_host" })
          outputs )
  in
  let buffers =
    List.filter_map
      (fun f ->
        match Hashtbl.find_opt boxes f.h_name with
        | None -> None
        | Some box ->
            Some
              ( f.h_name,
                Array.of_list (List.map (fun (mn, mx) -> mx - mn + 1) box),
                L.Host ))
      p.p_funcs
  in
  let ast =
    Tiramisu_codegen.Passes.legalize
      (L.Block (copies_in @ stmts @ copies_out))
  in
  {
    ast;
    buffers;
    regions =
      List.of_seq
        (Seq.map (fun (k, v) -> (k, v)) (Hashtbl.to_seq boxes));
  }

let run compiled ~params ~inputs =
  let module B = Tiramisu_backends in
  let interp = B.Interp.create ~params () in
  List.iter
    (fun (name, dims, mem) ->
      B.Interp.add_buffer interp (B.Buffers.create ~mem name dims))
    compiled.buffers;
  List.iter
    (fun (name, fill) ->
      B.Buffers.fill (B.Interp.buffer interp name) fill)
    inputs;
  B.Interp.run interp compiled.ast;
  interp

let estimate ?machine compiled ~params =
  Tiramisu_backends.Cost.estimate ?machine ~params ~buffers:compiled.buffers
    compiled.ast

(* Distributed Halide's per-exchange send volume: exact halo when the
   boundary access offsets are plain affine; the neighbour's whole chunk
   when accesses are clamped (cannot be analyzed statically), plus the data
   is packed into a contiguous buffer before sending (§VI-B-c). *)
let dist_comm_bytes p ~output ~rows ~cols ~elems ~nodes =
  ignore output;
  let has_clamp =
    List.exists
      (fun f ->
        match f.h_body with
        | None -> false
        | Some body ->
            List.exists
              (fun (_, idx) ->
                List.exists
                  (fun e ->
                    let rec clamped (e : Ir.expr) =
                      match e with
                      | Ir.Clamp_e _ -> true
                      | Ir.Bin_e (_, a, b) -> clamped a || clamped b
                      | Ir.Neg_e a | Ir.Cast_e (_, a) -> clamped a
                      | Ir.Call_e (_, args) -> List.exists clamped args
                      | _ -> false
                    in
                    clamped e)
                  idx)
              (Expr.accesses body))
      p.p_funcs
  in
  let chunk_rows = rows / nodes in
  let row_bytes = float_of_int (cols * elems * 4) in
  if has_clamp then float_of_int chunk_rows *. row_bytes
  else
    (* exact stencil extent: maximum |offset| over accesses *)
    let max_off = ref 0 in
    List.iter
      (fun f ->
        match f.h_body with
        | None -> ()
        | Some body ->
            List.iter
              (fun (_, idx) ->
                match idx with
                | e0 :: _ -> (
                    match
                      Expr.to_aff ~iters:f.h_args ~params:[] e0
                    with
                    | Some a ->
                        max_off :=
                          max !max_off
                            (abs (Tiramisu_presburger.Aff.constant_part a))
                    | None -> ())
                | [] -> ())
              (Expr.accesses body))
      p.p_funcs;
    float_of_int !max_off *. row_bytes
