(** A mini-Halide: the interval-based baseline compiler of §II-c / §VI-B.

    Halide represents iteration spaces as rectangular intervals and infers
    bounds by interval arithmetic, instead of the polyhedral sets Tiramisu
    uses.  This module reproduces that design point over the same expression
    language and loop IR, including Halide's documented restrictions:

    - {b rectangular domains only}: every Func is realized over the bounding
      box inferred from its consumers, which over-approximates non-
      rectangular regions (ticket #2373 faults at realization);
    - {b acyclic dataflow only}: in-place updates (edgeDetector) are
      rejected;
    - {b conservative fusion}: [compute_with] refuses to fuse two Funcs when
      one reads the other or both write the same buffer, without consulting
      dependence analysis (nb stays unfused);
    - {b no general affine transformations}: only split / reorder /
      parallel / vectorize / unroll / gpu_tile;
    - {b distributed over-approximation}: the halo a node must receive is
      derived from interval bounds of the (possibly clamped) accesses, so a
      clamped stencil requires the neighbour's entire chunk, which is then
      packed before sending (§VI-B-c). *)

exception Unsupported of string

type func
type pipeline

val pipeline : string -> pipeline
val func : pipeline -> string -> string list -> Tiramisu_core.Ir.expr -> func
(** Pure function definition over an unbounded rectangular domain. *)

val input : pipeline -> string -> int -> func
(** [input p name rank] declares an input image. *)

val name : func -> string

(** {1 Scheduling (the Halide subset)} *)

val parallel : func -> string -> unit
val vectorize : func -> string -> int -> unit
val split : func -> string -> int -> string -> string -> unit
val reorder : func -> string list -> unit
val unroll : func -> string -> int -> unit
val gpu_tile : func -> string -> string -> int -> int -> unit

val compute_with : func -> func -> unit
(** Fuse two Funcs' loop nests. @raise Unsupported under Halide's
    conservative rule: one reads the other, or they share an output
    buffer. *)

val store_in_input : func -> func -> unit
(** Write a Func's result into an input's buffer (in-place).
    @raise Unsupported always — Halide requires acyclic dataflow. *)

(** {1 Realization} *)

type compiled = {
  ast : Tiramisu_codegen.Loop_ir.stmt;
  buffers : (string * int array * Tiramisu_codegen.Loop_ir.mem_space) list;
  regions : (string * (int * int) list) list;
      (** inferred realization box per func (min, extent) *)
}

val compile :
  pipeline ->
  outputs:(func * (int * int) list) list ->
  inputs:(func * (int * int) list) list ->
  params:(string * int) list ->
  compiled
(** Interval bounds inference from the requested output regions, then loop
    generation.  @raise Unsupported on cyclic dataflow.
    @raise Unsupported when an inferred region exceeds an input's declared
    bounds (the ticket #2373 failure mode: the generated code would fault
    at execution). *)

val run :
  compiled -> params:(string * int) list ->
  inputs:(string * (int array -> float)) list ->
  Tiramisu_backends.Interp.t

val estimate :
  ?machine:Tiramisu_backends.Machine.t ->
  compiled -> params:(string * int) list ->
  Tiramisu_backends.Cost.report

val dist_comm_bytes :
  pipeline -> output:func -> rows:int -> cols:int -> elems:int -> nodes:int ->
  float
(** Bytes each node sends per exchange under distributed Halide's
    interval-derived halo (over-approximated for clamped accesses), used by
    the Fig. 6/7 distributed comparison. *)
