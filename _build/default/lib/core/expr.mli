(** Layer-I expression construction and analysis. *)

open Tiramisu_presburger

type t = Ir.expr

val int : int -> t
val float : float -> t
val param : string -> t
val iter : string -> t

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val neg : t -> t
val select : t -> t -> t -> t
val clamp : t -> t -> t -> t
val call : string -> t list -> t
val cast : Ir.dtype -> t -> t
val abs_ : t -> t
val sqrt_ : t -> t
val ( =: ) : t -> t -> t
val ( <: ) : t -> t -> t
val ( <=: ) : t -> t -> t

val of_aff : Aff.t -> t
(** Embed an affine expression (iterators become {!Ir.Iter_e}, other names
    parameters — callers resolve iterator names themselves). *)

val to_aff : iters:string list -> params:string list -> t -> Aff.t option
(** Affine view of an index expression; [None] for non-affine forms
    (clamp, select, products of variables). *)

val index_range :
  iters:string list -> params:string list -> t -> (Aff.t * Aff.t) option
(** Affine over-approximation of a quasi-affine index expression as an
    inclusive [lo, hi] interval — the paper's §V-B treatment of clamped
    accesses.  Exact expressions return a degenerate interval. *)

val accesses : t -> (string * t list) list
(** Every [Access_e] occurrence (producer name, index expressions), in
    left-to-right order, including nested ones. *)

val subst_access : (string -> t list -> t option) -> t -> t
(** Rewrite accesses (used by [inline]); [None] keeps the access. *)

val subst_iters : (string -> t option) -> t -> t
(** Substitute iterator occurrences. *)

val fold_consts : t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
