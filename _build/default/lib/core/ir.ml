(* Core IR types for the Tiramisu embedded DSL (paper §III-IV).

   A {!fn} ("function" in Tiramisu terms) is a pipeline: a set of
   computations plus symbolic size parameters.  Each computation carries the
   four layers of the paper's IR:

   - Layer I   — [domain] + [expr]: the pure algorithm;
   - Layer II  — [sched]: the time-space map (static/dynamic dims + space
     tags);
   - Layer III — [access]: where results are stored (buffer + affine
     indices);
   - Layer IV  — operation computations (send/recv/copy/alloc/barrier)
     scheduled like any other computation.

   The scheduling commands of Table II mutate this state in place, mirroring
   the imperative C++ API of the original system. *)

open Tiramisu_presburger

type dtype = Tiramisu_codegen.Loop_ir.dtype
type mem_space = Tiramisu_codegen.Loop_ir.mem_space

(* ---------- Layer I expressions ---------- *)

type binop = Add | Sub | Mul | Div | Min | Max

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int_e of int
  | Float_e of float
  | Param_e of string            (* symbolic constant (size parameter) *)
  | Iter_e of string             (* iterator of the computation's domain *)
  | Access_e of string * expr list
      (* value produced by another computation at the given (quasi-affine)
         index expressions — the producer-consumer edges of Layer I *)
  | Bin_e of binop * expr * expr
  | Neg_e of expr
  | Cmp_e of cmp * expr * expr   (* evaluates to 0/1 *)
  | Select_e of expr * expr * expr
  | Clamp_e of expr * expr * expr
      (* clamp(x, lo, hi) — the paper's non-affine boundary handling (§V-B) *)
  | Call_e of string * expr list (* math intrinsics *)
  | Cast_e of dtype * expr

(* ---------- buffers and access relations (Layer III) ---------- *)

type buffer = {
  buf_name : string;
  buf_dims : Aff.t list;         (* sizes, affine in the parameters *)
  buf_dtype : dtype;
  mutable buf_mem : mem_space;
  buf_auto : bool;               (* true when synthesized from the domain *)
}

type access = {
  acc_buf : buffer;
  acc_idx : Aff.t list;          (* indices over the computation's iterators *)
}

(* ---------- Layer II schedule ---------- *)

type dim_kind = Static of int | Dyn

type dim = {
  d_col : string;                (* unique column id within the schedule *)
  mutable d_name : string;       (* pretty loop-variable name *)
  mutable d_kind : dim_kind;
  mutable d_tag : Tiramisu_codegen.Loop_ir.loop_tag;
}

(* The time-space vector alternates static and dynamic dims:
   [s0; d0; s1; d1; ...; d_{k-1}; sk].  The relation between the
   computation's iterators and the dynamic columns is kept as constraints
   over iterator names, intermediate columns (retired by transformations)
   and live columns — e.g. tiling by 32 adds [i = 32*i0 + i1; 0 <= i1 < 32]
   and retires column [i]'s identity. *)
type sched = {
  mutable dims : dim list;
  mutable inter : string list;   (* retired intermediate columns *)
  mutable cstrs : Cstr.t list;
}

(* ---------- computations ---------- *)

type comp_kind =
  | Regular
  | Input                        (* wraps an input buffer; never executed *)
  | Op_send of send_info
  | Op_recv of recv_info
  | Op_copy of copy_info
  | Op_barrier

and send_info = {
  s_buf : buffer;
  s_offset : Aff.t list;
  s_count : Aff.t;
  s_dest : Aff.t;                (* over the send's iterators *)
  s_async : bool;
}

and recv_info = {
  r_buf : buffer;
  r_offset : Aff.t list;
  r_count : Aff.t;
  r_src : Aff.t;
  r_sync : bool;
}

and copy_info = {
  c_src : buffer;
  c_dst : buffer;
  c_direction : string;          (* "host_to_device" | "device_to_host" |
                                    "global_to_shared" | ... *)
}

and computation = {
  comp_name : string;
  mutable domain : Iset.t;       (* over params + iters *)
  iters : string list;
  ranges : (string * (Aff.t * Aff.t)) list;
      (* per-iterator half-open [lo, hi) box (bounding box of the domain;
         used to size auto buffers) *)
  mutable expr : expr;
  comp_dtype : dtype;
  kind : comp_kind;
  fn : fn;
  mutable sched : sched;
  mutable access : access option;   (* None: identity into an auto buffer *)
  mutable inlined : bool;
  mutable computed_at : (computation * int) option;
      (* compute_at(C, level): recompute inside C's loop nest at that level
         (overlapped tiling, possibly redundant — Fig. 3a) *)
  mutable cached_shared : (buffer * computation * int) option;
      (* cache_shared_at: consumers read the shared copy instead *)
}

(* ---------- function (pipeline) ---------- *)

and fn = {
  fn_name : string;
  params : string list;
  mutable context : Cstr.t list;     (* assumptions on parameters *)
  mutable comps : computation list;  (* in declaration order *)
  mutable buffers : buffer list;
  mutable allocs : (buffer * computation * int) list;
      (* allocate_at(b, C, level): scoped allocation inside C's loop nest *)
  mutable next_id : int;
}

let fresh_id fn prefix =
  fn.next_id <- fn.next_id + 1;
  Printf.sprintf "%s%d" prefix fn.next_id

let dyn_dims sched = List.filter (fun d -> d.d_kind = Dyn) sched.dims
let dyn_count sched = List.length (dyn_dims sched)

(* Position in [sched.dims] of the [k]-th dynamic dim. *)
let dyn_pos sched k =
  let rec go i seen = function
    | [] -> invalid_arg (Printf.sprintf "schedule has no dynamic dim %d" k)
    | d :: rest ->
        if d.d_kind = Dyn then
          if seen = k then i else go (i + 1) (seen + 1) rest
        else go (i + 1) seen rest
  in
  go 0 0 sched.dims

let find_dyn sched name =
  let rec go k = function
    | [] ->
        invalid_arg
          (Printf.sprintf "schedule has no dynamic dimension named %s" name)
    | d :: rest ->
        if d.d_kind = Dyn then
          if d.d_name = name then k else go (k + 1) rest
        else go k rest
  in
  go 0 sched.dims

let nth_dyn sched k = List.nth (dyn_dims sched) k
