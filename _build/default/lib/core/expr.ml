open Tiramisu_presburger
open Ir

type t = Ir.expr

let int n = Int_e n
let float f = Float_e f
let param p = Param_e p
let iter i = Iter_e i
let ( +: ) a b = Bin_e (Add, a, b)
let ( -: ) a b = Bin_e (Sub, a, b)
let ( *: ) a b = Bin_e (Mul, a, b)
let ( /: ) a b = Bin_e (Div, a, b)
let min_ a b = Bin_e (Min, a, b)
let max_ a b = Bin_e (Max, a, b)
let neg a = Neg_e a
let select c a b = Select_e (c, a, b)
let clamp x lo hi = Clamp_e (x, lo, hi)
let call f args = Call_e (f, args)
let cast d e = Cast_e (d, e)
let abs_ e = Call_e ("abs", [ e ])
let sqrt_ e = Call_e ("sqrt", [ e ])
let ( =: ) a b = Cmp_e (Eq, a, b)
let ( <: ) a b = Cmp_e (Lt, a, b)
let ( <=: ) a b = Cmp_e (Le, a, b)

let of_aff a =
  let terms =
    List.map (fun (name, c) -> Bin_e (Mul, Int_e c, Iter_e name)) (Aff.terms a)
  in
  List.fold_left
    (fun acc t -> Bin_e (Add, acc, t))
    (Int_e (Aff.constant_part a))
    terms

let rec to_aff ~iters ~params e =
  let ( let* ) = Option.bind in
  match e with
  | Int_e n -> Some (Aff.const n)
  | Param_e p when List.mem p params -> Some (Aff.var p)
  | Iter_e i when List.mem i iters -> Some (Aff.var i)
  | Neg_e a ->
      let* a = to_aff ~iters ~params a in
      Some (Aff.neg a)
  | Bin_e (Add, a, b) ->
      let* a = to_aff ~iters ~params a in
      let* b = to_aff ~iters ~params b in
      Some (Aff.add a b)
  | Bin_e (Sub, a, b) ->
      let* a = to_aff ~iters ~params a in
      let* b = to_aff ~iters ~params b in
      Some (Aff.sub a b)
  | Bin_e (Mul, a, b) -> (
      let* a = to_aff ~iters ~params a in
      let* b = to_aff ~iters ~params b in
      match (Aff.is_const a, Aff.is_const b) with
      | Some c, _ -> Some (Aff.scale c b)
      | _, Some c -> Some (Aff.scale c a)
      | None, None -> None)
  | Cast_e (_, a) -> to_aff ~iters ~params a
  | _ -> None

let index_range ~iters ~params e =
  match to_aff ~iters ~params e with
  | Some a -> Some (a, a)
  | None -> (
      match e with
      | Clamp_e (_, lo, hi) -> (
          (* The clamped value stays within [lo, hi]: over-approximate the
             accessed region by the clamp bounds (Benabderrahmane et al.). *)
          match (to_aff ~iters ~params lo, to_aff ~iters ~params hi) with
          | Some l, Some h -> Some (l, h)
          | _ -> None)
      | _ -> None)

let rec accesses e =
  match e with
  | Access_e (name, idx) ->
      ((name, idx) :: List.concat_map accesses idx)
  | Int_e _ | Float_e _ | Param_e _ | Iter_e _ -> []
  | Bin_e (_, a, b) | Cmp_e (_, a, b) -> accesses a @ accesses b
  | Neg_e a | Cast_e (_, a) -> accesses a
  | Select_e (a, b, c) | Clamp_e (a, b, c) ->
      accesses a @ accesses b @ accesses c
  | Call_e (_, args) -> List.concat_map accesses args

let rec subst_access f e =
  match e with
  | Access_e (name, idx) -> (
      let idx = List.map (subst_access f) idx in
      match f name idx with Some e' -> e' | None -> Access_e (name, idx))
  | Int_e _ | Float_e _ | Param_e _ | Iter_e _ -> e
  | Bin_e (op, a, b) -> Bin_e (op, subst_access f a, subst_access f b)
  | Cmp_e (op, a, b) -> Cmp_e (op, subst_access f a, subst_access f b)
  | Neg_e a -> Neg_e (subst_access f a)
  | Cast_e (d, a) -> Cast_e (d, subst_access f a)
  | Select_e (a, b, c) ->
      Select_e (subst_access f a, subst_access f b, subst_access f c)
  | Clamp_e (a, b, c) ->
      Clamp_e (subst_access f a, subst_access f b, subst_access f c)
  | Call_e (name, args) -> Call_e (name, List.map (subst_access f) args)

let rec subst_iters f e =
  match e with
  | Iter_e i -> ( match f i with Some e' -> e' | None -> e)
  | Int_e _ | Float_e _ | Param_e _ -> e
  | Access_e (name, idx) -> Access_e (name, List.map (subst_iters f) idx)
  | Bin_e (op, a, b) -> Bin_e (op, subst_iters f a, subst_iters f b)
  | Cmp_e (op, a, b) -> Cmp_e (op, subst_iters f a, subst_iters f b)
  | Neg_e a -> Neg_e (subst_iters f a)
  | Cast_e (d, a) -> Cast_e (d, subst_iters f a)
  | Select_e (a, b, c) ->
      Select_e (subst_iters f a, subst_iters f b, subst_iters f c)
  | Clamp_e (a, b, c) ->
      Clamp_e (subst_iters f a, subst_iters f b, subst_iters f c)
  | Call_e (name, args) -> Call_e (name, List.map (subst_iters f) args)

let rec fold_consts e =
  match e with
  | Bin_e (op, a, b) -> (
      let a = fold_consts a and b = fold_consts b in
      match (op, a, b) with
      | Add, Int_e x, Int_e y -> Int_e (x + y)
      | Sub, Int_e x, Int_e y -> Int_e (x - y)
      | Mul, Int_e x, Int_e y -> Int_e (x * y)
      | Add, Int_e 0, e | Add, e, Int_e 0 -> e
      | Sub, e, Int_e 0 -> e
      | Mul, Int_e 1, e | Mul, e, Int_e 1 -> e
      | Mul, Int_e 0, _ | Mul, _, Int_e 0 -> Int_e 0
      | _ -> Bin_e (op, a, b))
  | Neg_e a -> (
      match fold_consts a with Int_e n -> Int_e (-n) | a -> Neg_e a)
  | _ -> e

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Min -> "min" | Max -> "max"

let cmp_str = function
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp ppf e =
  match e with
  | Int_e n -> Format.fprintf ppf "%d" n
  | Float_e f -> Format.fprintf ppf "%g" f
  | Param_e p | Iter_e p -> Format.fprintf ppf "%s" p
  | Access_e (name, idx) ->
      Format.fprintf ppf "%s(%a)" name
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp)
        idx
  | Bin_e ((Min | Max) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_str op) pp a pp b
  | Bin_e (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (binop_str op) pp b
  | Neg_e a -> Format.fprintf ppf "(-%a)" pp a
  | Cmp_e (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (cmp_str op) pp b
  | Select_e (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" pp c pp a pp b
  | Clamp_e (x, lo, hi) ->
      Format.fprintf ppf "clamp(%a, %a, %a)" pp x pp lo pp hi
  | Call_e (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp)
        args
  | Cast_e (_, a) -> pp ppf a

let to_string e = Format.asprintf "%a" pp e
