(** Lowering: Layer IV → polyhedral AST → loop IR (paper §V).

    Builds every computation's scheduled set (including the footprint-derived
    sets of [compute_at] producers — overlapped tiling), pads the time
    vectors to a common arity, emits per-statement bodies with accesses
    rewritten through the backward schedule substitution, and runs the
    vectorization/unrolling legalization passes. *)

type t = {
  ast : Tiramisu_codegen.Loop_ir.stmt;
  fn : Ir.fn;
}

val expand : Ir.fn -> Expr.t -> Expr.t
(** Substitute inlined producers into an expression (beta-reduction of
    Layer-I accesses). *)

val lower : Ir.fn -> t
(** @raise Failure on malformed schedules (e.g. iterators not recoverable
    from the time dims). *)

val buffer_extents :
  Ir.fn -> params:(string * int) list -> (Ir.buffer * int array) list
(** Concrete sizes of every buffer of the pipeline for the given parameter
    values (used by backends to allocate storage). *)

val pseudocode : Ir.fn -> string
(** Generated-code pseudocode (Fig. 3 right column style). *)
