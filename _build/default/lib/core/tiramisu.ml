open Tiramisu_presburger
open Ir
module L = Tiramisu_codegen.Loop_ir

type var = { v_name : string; v_lo : Aff.t; v_hi : Aff.t }

let var v_name v_lo v_hi = { v_name; v_lo; v_hi }
let x v = Expr.iter v.v_name

let create ?(context = []) ~params fn_name =
  {
    fn_name;
    params;
    context;
    comps = [];
    buffers = [];
    allocs = [];
    next_id = 0;
  }

let domain_of_vars fn name vars =
  let space =
    Space.set_space ~name ~params:fn.params (List.map (fun v -> v.v_name) vars)
  in
  Iset.of_constraints space
    (List.concat_map
       (fun v -> Cstr.between v.v_lo (Aff.var v.v_name) v.v_hi)
       vars)

let add_comp fn c = fn.comps <- fn.comps @ [ c ]

let mk_comp ?(dtype = L.F32) ~kind ~expr fn name vars =
  let iters = List.map (fun v -> v.v_name) vars in
  let c =
    {
      comp_name = name;
      domain = domain_of_vars fn name vars;
      iters;
      ranges = List.map (fun v -> (v.v_name, (v.v_lo, v.v_hi))) vars;
      expr;
      comp_dtype = dtype;
      kind;
      fn;
      sched = Schedule.init fn ~order:(List.length fn.comps) iters;
      access = None;
      inlined = false;
      computed_at = None;
      cached_shared = None;
    }
  in
  add_comp fn c;
  c

let input ?dtype fn name vars =
  mk_comp ?dtype ~kind:Input ~expr:(Int_e 0) fn name vars

let comp ?dtype fn name vars expr = mk_comp ?dtype ~kind:Regular ~expr fn name vars

let add_domain_constraints c cs = c.domain <- Iset.add_constraints c.domain cs

let ( $ ) c idx =
  if List.length idx <> List.length c.iters then
    invalid_arg
      (Printf.sprintf "%s: access arity %d, expected %d" c.comp_name
         (List.length idx) (List.length c.iters));
  Access_e (c.comp_name, idx)

(* ---------- loop-nest transformations ---------- *)

let tile c i j t1 t2 i0 j0 i1 j1 = Schedule.tile c.sched i j t1 t2 i0 j0 i1 j1
let split c i f i0 i1 = Schedule.split c.sched i f i0 i1
let interchange c i j = Schedule.interchange c.sched i j
let shift c i s = Schedule.shift c.sched i s
let skew c i j f = Schedule.skew c.sched i j f
let reverse c i = Schedule.reverse c.sched i

let compute_at p c lvl =
  p.computed_at <- Some (c, find_dyn c.sched lvl)

let inline c =
  if c.kind <> Regular then invalid_arg "inline: only regular computations";
  c.inlined <- true

let root = "root"

let after c b lvl =
  let level = if lvl = root then 0 else find_dyn b.sched lvl + 1 in
  Schedule.after c.sched b.sched level

let before c b lvl =
  (* b runs after c at that level. *)
  after b c lvl

(* ---------- hardware mapping ---------- *)

let parallelize c i = Schedule.tag c.sched i L.Parallel
let vectorize c i s = Schedule.vectorize c.sched i s
let unroll c i f = Schedule.unroll c.sched i f
let distribute c i = Schedule.tag c.sched i L.Distributed

let gpu c blocks threads =
  List.iteri (fun a i -> Schedule.tag c.sched i (L.Gpu_block a)) blocks;
  List.iteri (fun a i -> Schedule.tag c.sched i (L.Gpu_thread a)) threads

let tile_gpu c i j t1 t2 i0 j0 i1 j1 =
  (* threadIdx.x (axis 0) maps to the contiguous [j] dimension so that
     global accesses coalesce — the Fig. 3b convention. *)
  tile c i j t1 t2 i0 j0 i1 j1;
  gpu c [ j0; i0 ] [ j1; i1 ]

(* ---------- data manipulation ---------- *)

let buffer ?(mem = L.Host) ?(dtype = L.F32) fn name dims =
  let b =
    { buf_name = name; buf_dims = dims; buf_dtype = dtype; buf_mem = mem;
      buf_auto = false }
  in
  fn.buffers <- fn.buffers @ [ b ];
  b

let extent (lo, hi) = Aff.sub hi lo

(* Auto buffer: one dimension per iterator, sized by the iterator's range,
   identity indexing shifted to zero base. *)
let buffer_of c =
  match c.access with
  | Some a -> a.acc_buf
  | None ->
      let b =
        {
          buf_name = c.comp_name;
          buf_dims = List.map (fun (_, r) -> extent r) c.ranges;
          buf_dtype = c.comp_dtype;
          buf_mem = L.Host;
          buf_auto = true;
        }
      in
      c.fn.buffers <- c.fn.buffers @ [ b ];
      c.access <-
        Some
          {
            acc_buf = b;
            acc_idx =
              List.map
                (fun (it, (lo, _)) -> Aff.sub (Aff.var it) lo)
                c.ranges;
          };
      b

let store_in c b idx = c.access <- Some { acc_buf = b; acc_idx = idx }

let store_in_dims c dims =
  (* Permuted identity layout into a fresh buffer, e.g. store_in({c,i,j}). *)
  let range it =
    match List.assoc_opt it c.ranges with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "store_in_dims: unknown iterator %s" it)
  in
  let b =
    {
      buf_name = c.comp_name;
      buf_dims = List.map (fun it -> extent (range it)) dims;
      buf_dtype = c.comp_dtype;
      buf_mem = L.Host;
      buf_auto = true;
    }
  in
  c.fn.buffers <- c.fn.buffers @ [ b ];
  c.access <-
    Some
      {
        acc_buf = b;
        acc_idx =
          List.map (fun it -> Aff.sub (Aff.var it) (fst (range it))) dims;
      }

let tag_mem b mem = b.buf_mem <- mem

let cache_shared_at p c lvl =
  p.cached_shared <-
    Some
      ( {
          buf_name = p.comp_name ^ "_shared";
          buf_dims = [];  (* sized during lowering from the footprint *)
          buf_dtype = p.comp_dtype;
          buf_mem = L.Gpu_shared;
          buf_auto = true;
        },
        c,
        find_dyn c.sched lvl )

let allocate_at b c lvl =
  c.fn.allocs <- c.fn.allocs @ [ (b, c, find_dyn c.sched lvl) ]

let unit_var = { v_name = "_o"; v_lo = Aff.const 0; v_hi = Aff.const 1 }

let host_to_device fn c =
  let b = buffer_of c in
  mk_comp
    ~kind:(Op_copy { c_src = b; c_dst = b; c_direction = "host_to_device" })
    ~expr:(Int_e 0) fn
    (fresh_id fn (c.comp_name ^ "_h2d_"))
    [ unit_var ]

let device_to_host fn c =
  let b = buffer_of c in
  mk_comp
    ~kind:(Op_copy { c_src = b; c_dst = b; c_direction = "device_to_host" })
    ~expr:(Int_e 0) fn
    (fresh_id fn (c.comp_name ^ "_d2h_"))
    [ unit_var ]

let send fn name ~iters ~buf ~offset ~count ~dest ~async =
  mk_comp
    ~kind:
      (Op_send
         { s_buf = buf; s_offset = offset; s_count = count; s_dest = dest;
           s_async = async })
    ~expr:(Int_e 0) fn name iters

let receive fn name ~iters ~buf ~offset ~count ~src ~sync =
  mk_comp
    ~kind:
      (Op_recv
         { r_buf = buf; r_offset = offset; r_count = count; r_src = src;
           r_sync = sync })
    ~expr:(Int_e 0) fn name iters

let barrier_at fn name ~iters =
  mk_comp ~kind:Op_barrier ~expr:(Int_e 0) fn name iters

let find_comp fn name =
  match List.find_opt (fun c -> c.comp_name = name) fn.comps with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "%s: no computation %s" fn.fn_name name)

let iter_ranges c = c.ranges

(* C.set_schedule(): replace the whole time-space map with an affine
   relation written in ISL syntax (Table II).  The map's input tuple must
   list the computation's iterators; its outputs become the new dynamic
   dimensions. *)
let set_schedule c str =
  let m = Isl.parse_map str in
  let msp = m.Imap.space in
  let ins = Array.to_list msp.Space.ins in
  if List.length ins <> List.length c.iters then
    invalid_arg "set_schedule: input arity does not match the iterators";
  (* Accept any input names: rename positionally to the iterators. *)
  let rename = List.combine ins c.iters in
  let outs = Array.to_list msp.Space.outs in
  let order = Schedule.get_static c.sched 0 in
  let fresh = Schedule.init c.fn ~order outs in
  (* [fresh] made one Dyn dim (+ statics) per output, with identity cstrs
     linking each col to an "iterator" named like the output; rewrite those
     into the parsed map's constraints. *)
  let out_cols =
    List.map (fun d -> d.d_col) (dyn_dims fresh)
  in
  let cols =
    Array.of_list
      (Array.to_list msp.Space.mparams @ List.map snd rename @ out_cols)
  in
  let poly =
    match m.Imap.polys with
    | [ p ] -> p
    | _ -> invalid_arg "set_schedule: expected a single-piece map"
  in
  let cstrs =
    List.map
      (fun r -> Cstr.Eq (Aff.of_row ~cols r, Aff.const 0))
      poly.Poly.eqs
    @ List.map
        (fun r -> Cstr.Ge (Aff.of_row ~cols r, Aff.const 0))
        poly.Poly.ineqs
  in
  fresh.cstrs <- cstrs;
  c.sched <- fresh
