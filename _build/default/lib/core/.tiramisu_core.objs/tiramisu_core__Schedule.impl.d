lib/core/schedule.ml: Aff Array Cstr Format Imap Ir Iset List Poly Printf Space Tiramisu_codegen Tiramisu_presburger
