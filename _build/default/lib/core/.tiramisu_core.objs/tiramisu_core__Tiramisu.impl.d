lib/core/tiramisu.ml: Aff Array Cstr Expr Imap Ir Iset Isl List Poly Printf Schedule Space Tiramisu_codegen Tiramisu_presburger
