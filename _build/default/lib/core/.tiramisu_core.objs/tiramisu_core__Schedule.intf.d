lib/core/schedule.mli: Aff Cstr Format Ir Iset Tiramisu_codegen Tiramisu_presburger
