lib/core/lower.mli: Expr Ir Tiramisu_codegen
