lib/core/expr.ml: Aff Format Ir List Option Tiramisu_presburger
