lib/core/tiramisu.mli: Aff Cstr Expr Ir Tiramisu_presburger
