lib/core/lower.ml: Aff Array Cstr Expr Hashtbl Ir Iset List Option Poly Printf Schedule Space String Tiramisu Tiramisu_codegen Tiramisu_presburger
