lib/core/expr.mli: Aff Format Ir Tiramisu_presburger
