lib/core/ir.ml: Aff Cstr Iset List Printf Tiramisu_codegen Tiramisu_presburger
