(** The Tiramisu embedded DSL: algorithms (Layer I) and the scheduling
    commands of Table II.

    Usage mirrors the paper's Figure 2/3 C++ snippets:

    {[
      let f = Tiramisu.create "blur" ~params:[ "N"; "M" ] in
      let i = Tiramisu.var "i" (A.const 0) A.(var "N" - const 2) in
      let j = Tiramisu.var "j" (A.const 0) A.(var "M" - const 2) in
      let c = Tiramisu.var "c" (A.const 0) (A.const 3) in
      let input = Tiramisu.input f "input" [ i; j; c ] in
      let bx = Tiramisu.comp f "bx" [ i; j; c ]
          E.((input $ [ x i; x j; x c ]) +: ...) in
      Tiramisu.tile by "i" "j" 32 32 "i0" "j0" "i1" "j1";
      Tiramisu.parallelize by "i0";
      Tiramisu.compute_at bx by "j0"
    ]} *)

open Tiramisu_presburger

type var = { v_name : string; v_lo : Aff.t; v_hi : Aff.t }
(** An iterator with its half-open range [lo, hi) — the paper's
    [Var i(0, N-2)]. *)

val var : string -> Aff.t -> Aff.t -> var
val x : var -> Expr.t
(** Use an iterator in an expression. *)

val create : ?context:Cstr.t list -> params:string list -> string -> Ir.fn
(** A fresh pipeline with symbolic size parameters and optional assumptions
    on them. *)

val input : ?dtype:Ir.dtype -> Ir.fn -> string -> var list -> Ir.computation
(** An input computation wrapping a buffer of the same name. *)

val comp :
  ?dtype:Ir.dtype -> Ir.fn -> string -> var list -> Expr.t -> Ir.computation
(** Declare a computation over the iteration domain spanned by the vars
    (Layer I).  Declaration order gives the default execution order. *)

val add_domain_constraints : Ir.computation -> Cstr.t list -> unit
(** Restrict the iteration domain beyond the box the vars span (e.g. the
    triangular domain of ticket #2373). *)

val ( $ ) : Ir.computation -> Expr.t list -> Expr.t
(** Access the value a computation produces at the given index expressions. *)

(** {1 Commands for loop nest transformations (Table II)} *)

val tile :
  Ir.computation -> string -> string -> int -> int ->
  string -> string -> string -> string -> unit

val split : Ir.computation -> string -> int -> string -> string -> unit
val interchange : Ir.computation -> string -> string -> unit
val shift : Ir.computation -> string -> int -> unit
val skew : Ir.computation -> string -> string -> int -> unit
val reverse : Ir.computation -> string -> unit

val compute_at : Ir.computation -> Ir.computation -> string -> unit
(** [compute_at p c lvl] — compute [p] inside [c]'s loop nest at loop level
    [lvl] (a loop name of [c]), recomputing the needed tile redundantly
    (overlapped tiling, Fig. 3a). *)

val inline : Ir.computation -> unit
(** Inline into all consumers. *)

val root : string
(** Pseudo loop-level for ordering at the outermost position. *)

val after : Ir.computation -> Ir.computation -> string -> unit
(** [after c b lvl] — order [c] after [b] at loop level [lvl] of [b]
    ([root] for whole-program sequencing). *)

val before : Ir.computation -> Ir.computation -> string -> unit

(** {1 Commands for mapping loop levels to hardware} *)

val parallelize : Ir.computation -> string -> unit
val vectorize : Ir.computation -> string -> int -> unit
val unroll : Ir.computation -> string -> int -> unit
val distribute : Ir.computation -> string -> unit

val gpu : Ir.computation -> string list -> string list -> unit
(** [gpu c blocks threads] maps existing loop levels to GPU block / thread
    dimensions. *)

val tile_gpu :
  Ir.computation -> string -> string -> int -> int ->
  string -> string -> string -> string -> unit
(** Tile then map the tiles to GPU blocks and the intra-tile dims to
    threads. *)

(** {1 Commands for data manipulation (Layer III)} *)

val buffer :
  ?mem:Ir.mem_space -> ?dtype:Ir.dtype -> Ir.fn -> string -> Aff.t list ->
  Ir.buffer

val store_in : Ir.computation -> Ir.buffer -> Aff.t list -> unit
(** [store_in c b idx] — Table II [C.store_in(b, {i,j})]: the result of
    [c(iters)] goes to [b[idx(iters)]].  Enables SOA/AOS layout changes,
    dimension permutation and contraction. *)

val store_in_dims : Ir.computation -> string list -> unit
(** Convenience: permuted identity layout, e.g. Fig. 3b's
    [bx.store_in({c,i,j})]. *)

val buffer_of : Ir.computation -> Ir.buffer
(** The buffer the computation writes to (auto-created on first use). *)

val tag_mem : Ir.buffer -> Ir.mem_space -> unit
(** The [tag_gpu_global/shared/local/constant] family. *)

val cache_shared_at : Ir.computation -> Ir.computation -> string -> unit
(** [cache_shared_at p c lvl] — copy [p]'s buffer region consumed by [c]'s
    tile into GPU shared memory at loop level [lvl]; footprint, copy loops
    and synchronization are derived automatically (§III-C). *)

val allocate_at : Ir.buffer -> Ir.computation -> string -> unit

val host_to_device : Ir.fn -> Ir.computation -> Ir.computation
val device_to_host : Ir.fn -> Ir.computation -> Ir.computation

(** {1 Communication (Layer IV)} *)

val send :
  Ir.fn -> string -> iters:var list -> buf:Ir.buffer -> offset:Aff.t list ->
  count:Aff.t -> dest:Aff.t -> async:bool -> Ir.computation

val receive :
  Ir.fn -> string -> iters:var list -> buf:Ir.buffer -> offset:Aff.t list ->
  count:Aff.t -> src:Aff.t -> sync:bool -> Ir.computation

val barrier_at : Ir.fn -> string -> iters:var list -> Ir.computation

(** {1 Introspection} *)

val find_comp : Ir.fn -> string -> Ir.computation
val iter_ranges : Ir.computation -> (string * (Aff.t * Aff.t)) list

val set_schedule : Ir.computation -> string -> unit
(** Table II [C.set_schedule()]: replace the time-space map with an affine
    relation in ISL syntax, e.g.
    [set_schedule c "{ c[i,j] -> [j, i] : ... }"].  The input tuple binds
    the computation's iterators positionally; outputs become the new
    dynamic dimensions. *)
