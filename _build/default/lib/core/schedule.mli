(** Layer-II scheduling state and the loop-nest transformation commands of
    Table II.

    Every command is a composition of affine constraints relating the
    computation's iterators to the live dynamic columns of its time-space
    vector; static dimensions carry the inter-computation ordering.  Commands
    mutate the schedule in place, as in the original C++ API. *)

open Tiramisu_presburger

val init : Ir.fn -> order:int -> string list -> Ir.sched
(** Identity schedule [s0=order; i0; 0; i1; 0; ...] for the given
    iterators. *)

(** {1 Loop-nest transformations} *)

val tile :
  Ir.sched -> string -> string -> int -> int ->
  string -> string -> string -> string -> unit
(** [tile s i j t1 t2 i0 j0 i1 j1] — Table II [C.tile(i,j,t1,t2,i0,j0,i1,j1)].
    [i] and [j] must be consecutive dynamic dims. *)

val split : Ir.sched -> string -> int -> string -> string -> unit
val interchange : Ir.sched -> string -> string -> unit
val shift : Ir.sched -> string -> int -> unit
val skew : Ir.sched -> string -> string -> int -> unit
(** [skew s i j f] replaces [j] with [j + f*i] — the affine transformation
    Halide's interval representation cannot express (§II-c). *)

val reverse : Ir.sched -> string -> unit

(** {1 Hardware mapping} *)

val tag : Ir.sched -> string -> Tiramisu_codegen.Loop_ir.loop_tag -> unit
val vectorize : Ir.sched -> string -> int -> unit
(** Split by the vector width and tag the inner dim [Vectorized]. *)

val unroll : Ir.sched -> string -> int -> unit

(** {1 Ordering} *)

val set_static : Ir.sched -> int -> int -> unit
(** [set_static s k v] sets the static dim before dynamic level [k]. *)

val get_static : Ir.sched -> int -> int
val after : Ir.sched -> Ir.sched -> int -> unit
(** [after c b level] — c runs after b at dynamic level [level], sharing all
    outer loops (statics above [level] are copied from [b]). [level = 0]
    means "at the root". *)

(** {1 Lowering support} *)

val scheduled_set :
  params:string list -> context:Cstr.t list -> Iset.t -> Ir.sched -> Iset.t
(** Apply the time-space map to the iteration domain: the Layer-II scheduled
    set over the live columns (statics as constant dims). *)

val backward_exprs :
  params:string list -> Iset.t -> Ir.sched -> (string * Aff.t) list
(** Each iterator as an affine expression of the live dynamic columns — the
    substitution code generation uses to rewrite accesses (§V-a).
    @raise Failure if the equalities do not determine an iterator. *)

val pp : Format.formatter -> Ir.sched -> unit
