(* Deep-learning and linear-algebra benchmarks of §VI-A: sgemm, Conv, VGG,
   HPCG, Baryon — as Tiramisu pipelines with the expert schedules whose
   optimizations the paper enumerates (two-level blocking, vectorization,
   unrolling, full/partial tile separation, fixed-filter-size
   specialization, fusion).

   Reductions are encoded as in-place accumulation: an init computation and
   an update computation that stores to the same buffer element and reads
   its own previous instance (a recurrence, expressible because Tiramisu
   supports cyclic dataflow and exact dependence analysis — Table I). *)

open Tiramisu_presburger
open Tiramisu_core
open Tiramisu
module E = Expr
module L = Tiramisu_codegen.Loop_ir

let a = Aff.var
let k0 = Aff.const

let alpha = 0.75
let beta = 0.25

(* ------------------------------------------------------------------ *)
(* sgemm: C = alpha*A*B + beta*C  (S x S square matrices).             *)
(* ------------------------------------------------------------------ *)

let sgemm () =
  let f = create ~params:[ "S" ] "sgemm" in
  let s_range name = var name (k0 0) (a "S") in
  let i = s_range "i" and j = s_range "j" and k = s_range "k" in
  let am = input f "A" [ s_range "i"; s_range "k" ] in
  let bm = input f "B" [ s_range "k"; s_range "j" ] in
  let cm = input f "C0" [ s_range "i"; s_range "j" ] in
  let cbuf = buffer f "C" [ a "S"; a "S" ] in
  let init =
    comp f "c_init" [ i; j ] E.(float beta *: (cm $ [ x i; x j ]))
  in
  store_in init cbuf [ a "i"; a "j" ];
  let upd =
    comp f "c_upd" [ i; j; k ] (E.int 0)
  in
  (* prev: own value at k-1 (init at k = 0). *)
  upd.Ir.expr <-
    E.(
      select
        (x k =: int 0)
        (init $ [ x i; x j ])
        (Ir.Access_e ("c_upd", [ x i; x j; x k -: int 1 ]))
      +: (float alpha *: (am $ [ x i; x k ]) *: (bm $ [ x k; x j ])));
  store_in upd cbuf [ a "i"; a "j" ];
  (f, init, upd)

(* The hand-tuned schedule (§VI-A): two-level blocking of the 3D loop nest,
   vectorization, unrolling, and separation of full/partial tiles (the
   vectorize command peels the partial tiles). *)
let sgemm_tuned ?(bi = 32) ?(bj = 64) ?(bk = 8) ?(vec = 8) ?(unr = 4) f =
  let upd = find_comp f "c_upd" in
  let init = find_comp f "c_init" in
  tile upd "i" "j" bi bj "i0" "j0" "i1" "j1";
  split upd "k" bk "k0" "k1";
  (* [i0 j0 i1 j1 k0 k1] -> [i0 j0 k0 i1 j1 k1] *)
  interchange upd "i1" "k0";
  interchange upd "j1" "i1";
  vectorize upd "j1" vec;
  Schedule.unroll upd.Ir.sched "k1" unr;
  parallelize upd "i0";
  tile init "i" "j" bi bj "i0" "j0" "i1" "j1";
  parallelize init "i0";
  vectorize init "j1" vec

(* A Pluto-style automatically derived schedule: tiling + outer parallelism
   but no vectorization, no unrolling, no tile-size tuning (§II-a). *)
let sgemm_pluto ?(t = 32) f =
  let upd = find_comp f "c_upd" in
  tile upd "i" "j" t t "i0" "j0" "i1" "j1";
  parallelize upd "i0"

(* ------------------------------------------------------------------ *)
(* Conv: direct convolution layer, NCHW, 3x3 filter, valid padding.    *)
(* B=batch, F=output features, C=input features, Y x X spatial.        *)
(* ------------------------------------------------------------------ *)

let conv_taps ~inp ~w ~b ~fo ~y ~x' ~c =
  (* Fixed 3x3 filter: fully specialized taps (the optimization MKL cannot
     apply for generic filter sizes, §VI-A). *)
  List.concat_map
    (fun ky ->
      List.map
        (fun kx ->
          E.(
            inp [ b; c; y +: int ky; x' +: int kx ]
            *: (w $ [ fo; c; int ky; int kx ])))
        [ 0; 1; 2 ])
    [ 0; 1; 2 ]
  |> function
  | [] -> E.int 0
  | e :: rest -> List.fold_left E.( +: ) e rest

let conv ?(name = "conv") ?(out_buf = None) ?(inp_name = "conv_in") f =
  (* Builds one conv layer inside [f]; returns (init, upd, out_buffer). *)
  let bv = var "b" (k0 0) (a "B") in
  let fv = var "f" (k0 0) (a "F") in
  let yv = var "y" (k0 0) Aff.(a "Y" - k0 2) in
  let xv = var "x" (k0 0) Aff.(a "X" - k0 2) in
  let cv = var "c" (k0 0) (a "C") in
  let inp =
    match List.find_opt (fun c -> c.Ir.comp_name = inp_name) f.Ir.comps with
    | Some c -> c
    | None ->
        input f inp_name
          [ var "b" (k0 0) (a "B"); var "c" (k0 0) (a "C");
            var "y" (k0 0) (a "Y"); var "x" (k0 0) (a "X") ]
  in
  let w =
    input f (name ^ "_w")
      [ var "f" (k0 0) (a "F"); var "c" (k0 0) (a "C");
        var "ky" (k0 0) (k0 3); var "kx" (k0 0) (k0 3) ]
  in
  let bias = input f (name ^ "_bias") [ var "f" (k0 0) (a "F") ] in
  let obuf =
    match out_buf with
    | Some b -> b
    | None ->
        buffer f (name ^ "_out")
          [ a "B"; a "F"; Aff.(a "Y" - k0 2); Aff.(a "X" - k0 2) ]
  in
  let init =
    comp f (name ^ "_init") [ bv; fv; yv; xv ] (bias $ [ x fv ])
  in
  store_in init obuf [ a "b"; a "f"; a "y"; a "x" ];
  let upd = comp f (name ^ "_upd") [ bv; fv; yv; xv; cv ] (E.int 0) in
  upd.Ir.expr <-
    E.(
      select
        (x cv =: int 0)
        (init $ [ x bv; x fv; x yv; x xv ])
        (Ir.Access_e
           (name ^ "_upd", [ x bv; x fv; x yv; x xv; x cv -: int 1 ]))
      +: conv_taps ~inp:(fun idx -> inp $ idx) ~w ~b:(x bv) ~fo:(x fv)
           ~y:(x yv) ~x':(x xv) ~c:(x cv));
  store_in upd obuf [ a "b"; a "f"; a "y"; a "x" ];
  (init, upd, obuf)

let conv_layer () =
  let f = create ~params:[ "B"; "F"; "C"; "Y"; "X" ] "conv_layer" in
  let init, upd, obuf = conv f in
  (f, init, upd, obuf)

let conv_schedule f ~name =
  let upd = find_comp f (name ^ "_upd") and init = find_comp f (name ^ "_init") in
  parallelize upd "b";
  parallelize init "b";
  vectorize upd "x" 8;
  vectorize init "x" 8

(* ------------------------------------------------------------------ *)
(* VGG block: conv1 -> relu1 -> conv2 -> relu2.                        *)
(* ------------------------------------------------------------------ *)

let vgg_block () =
  let f = create ~params:[ "B"; "F"; "C"; "Y"; "X" ] "vgg_block" in
  let _, _, obuf1 = conv ~name:"conv1" f in
  let bv = var "b" (k0 0) (a "B") in
  let fv = var "f" (k0 0) (a "F") in
  let yv = var "y" (k0 0) Aff.(a "Y" - k0 2) in
  let xv = var "x" (k0 0) Aff.(a "X" - k0 2) in
  ignore obuf1;
  let relu1 =
    comp f "relu1" [ bv; fv; yv; xv ]
      E.(max_ (float 0.0)
           (Ir.Access_e
              ("conv1_upd",
               [ x bv; x fv; x yv; x xv; Ir.Param_e "C" ])))
  in
  (* relu1 reads the final accumulation (c = C-1). *)
  relu1.Ir.expr <-
    E.(max_ (float 0.0)
         (Ir.Access_e
            ("conv1_upd",
             [ x bv; x fv; x yv; x xv;
               Ir.Bin_e (Ir.Sub, Ir.Param_e "C", Ir.Int_e 1) ])));
  (* conv2 consumes relu1 (its "input" has F channels and reduced size). *)
  let yv2 = var "y" (k0 0) Aff.(a "Y" - k0 4) in
  let xv2 = var "x" (k0 0) Aff.(a "X" - k0 4) in
  let cv2 = var "c" (k0 0) (a "F") in
  let w2 =
    input f "conv2_w"
      [ var "f" (k0 0) (a "F"); var "c" (k0 0) (a "F");
        var "ky" (k0 0) (k0 3); var "kx" (k0 0) (k0 3) ]
  in
  let bias2 = input f "conv2_bias" [ var "f" (k0 0) (a "F") ] in
  let obuf2 =
    buffer f "conv2_out" [ a "B"; a "F"; Aff.(a "Y" - k0 4); Aff.(a "X" - k0 4) ]
  in
  let init2 =
    comp f "conv2_init" [ bv; fv; yv2; xv2 ] (bias2 $ [ x fv ])
  in
  store_in init2 obuf2 [ a "b"; a "f"; a "y"; a "x" ];
  let upd2 = comp f "conv2_upd" [ bv; fv; yv2; xv2; cv2 ] (E.int 0) in
  upd2.Ir.expr <-
    E.(
      select
        (x cv2 =: int 0)
        (init2 $ [ x bv; x fv; x yv2; x xv2 ])
        (Ir.Access_e
           ("conv2_upd", [ x bv; x fv; x yv2; x xv2; x cv2 -: int 1 ]))
      +: conv_taps
           ~inp:(fun idx ->
             match idx with
             | [ b'; c'; y'; x' ] ->
                 Ir.Access_e ("relu1", [ b'; c'; y'; x' ])
             | _ -> assert false)
           ~w:w2 ~b:(x bv) ~fo:(x fv) ~y:(x yv2) ~x':(x xv2)
           ~c:(x cv2));
  store_in upd2 obuf2 [ a "b"; a "f"; a "y"; a "x" ];
  let relu2 =
    comp f "relu2" [ bv; fv; yv2; xv2 ]
      E.(max_ (float 0.0)
           (Ir.Access_e
              ("conv2_upd",
               [ x bv; x fv; x yv2; x xv2;
                 Ir.Bin_e (Ir.Sub, Ir.Param_e "F", Ir.Int_e 1) ])))
  in
  ignore relu2;
  (f, relu1)

(* VGG expert schedule: inline the relus into their consumers (fusion,
   improving locality — the 2.3x-over-MKL mechanism together with the
   fixed-size taps) and parallelize/vectorize. *)
let vgg_schedule f =
  inline (find_comp f "relu1");
  List.iter
    (fun n ->
      let c = find_comp f n in
      parallelize c "b";
      vectorize c "x" 8)
    [ "conv1_init"; "conv1_upd"; "conv2_init"; "conv2_upd"; "relu2" ]

(* ------------------------------------------------------------------ *)
(* HPCG kernel: 27-point stencil SpMV on a structured 3D grid —        *)
(* q = A p with A the standard 27-pt operator (26 off-diagonal -1s and  *)
(* a 26 diagonal), the dominant kernel of the HPCG benchmark.           *)
(* ------------------------------------------------------------------ *)

let hpcg () =
  let f = create ~params:[ "G" ] "hpcg" in
  let interior name = var name (k0 1) Aff.(a "G" - k0 1) in
  let i = interior "i" and j = interior "j" and k = interior "k" in
  let full name = var name (k0 0) (a "G") in
  let p = input f "p" [ full "i"; full "j"; full "k" ] in
  let terms =
    List.concat_map
      (fun di ->
        List.concat_map
          (fun dj ->
            List.map
              (fun dk ->
                let w = if di = 0 && dj = 0 && dk = 0 then 26.0 else -1.0 in
                E.(
                  float w
                  *: (p $ [ x i +: int di; x j +: int dj; x k +: int dk ])))
              [ -1; 0; 1 ])
          [ -1; 0; 1 ])
      [ -1; 0; 1 ]
  in
  let q =
    comp f "q" [ i; j; k ]
      (List.fold_left E.( +: ) (List.hd terms) (List.tl terms))
  in
  (f, q)

let hpcg_schedule f =
  let q = find_comp f "q" in
  parallelize q "i";
  vectorize q "k" 8

(* ------------------------------------------------------------------ *)
(* Baryon: dense tensor contraction for Baryon Building Blocks [16]:    *)
(* Bl(t) = sum_{i,j,k} w(i,j,k) * P1(i,t) * P2(j,t) * P3(k,t).          *)
(* ------------------------------------------------------------------ *)

let baryon () =
  let f = create ~params:[ "T"; "D" ] "baryon" in
  let t = var "t" (k0 0) (a "T") in
  let i = var "i" (k0 0) (a "D") in
  let j = var "j" (k0 0) (a "D") in
  let k = var "k" (k0 0) (a "D") in
  let d = var "d" (k0 0) (a "D") in
  let w = input f "w" [ i; j; k ] in
  let p1 = input f "P1" [ d; t ] in
  let p2 = input f "P2" [ d; t ] in
  let p3 = input f "P3" [ d; t ] in
  let bbuf = buffer f "Bl" [ a "T" ] in
  let init = comp f "bl_init" [ t ] (E.float 0.0) in
  store_in init bbuf [ a "t" ];
  let upd = comp f "bl_upd" [ t; i; j; k ] (E.int 0) in
  upd.Ir.expr <-
    E.(
      Ir.Access_e ("bl_init", [ x t ])
      +: ((w $ [ x i; x j; x k ]) *: (p1 $ [ x i; x t ])
         *: (p2 $ [ x j; x t ]) *: (p3 $ [ x k; x t ])));
  store_in upd bbuf [ a "t" ];
  (f, init, upd)

(* The paper's Baryon speedup comes from vectorizing (array expansion +
   gather/scatter); here: interchange so t is innermost and vectorize it
   (t-vectorization is exactly the "expansion" transposition). *)
let baryon_schedule f =
  let upd = find_comp f "bl_upd" in
  interchange upd "t" "i";
  interchange upd "t" "j";
  interchange upd "t" "k";
  vectorize upd "t" 8

(* ------------------------------------------------------------------ *)
(* Generic-filter-size conv: the MKL-style library kernel that cannot  *)
(* specialize on the filter size (§VI-A) — ky/kx are genuine loops.    *)
(* ------------------------------------------------------------------ *)

let conv_generic () =
  let f = create ~params:[ "B"; "F"; "C"; "Y"; "X" ] "conv_generic" in
  let bv = var "b" (k0 0) (a "B") in
  let fv = var "f" (k0 0) (a "F") in
  let yv = var "y" (k0 0) Aff.(a "Y" - k0 2) in
  let xv = var "x" (k0 0) Aff.(a "X" - k0 2) in
  let cv = var "c" (k0 0) (a "C") in
  let kyv = var "ky" (k0 0) (k0 3) in
  let kxv = var "kx" (k0 0) (k0 3) in
  let inp =
    input f "conv_in"
      [ var "b" (k0 0) (a "B"); var "c" (k0 0) (a "C");
        var "y" (k0 0) (a "Y"); var "x" (k0 0) (a "X") ]
  in
  let w =
    input f "conv_w"
      [ var "f" (k0 0) (a "F"); var "c" (k0 0) (a "C");
        var "ky" (k0 0) (k0 3); var "kx" (k0 0) (k0 3) ]
  in
  let bias = input f "conv_bias" [ var "f" (k0 0) (a "F") ] in
  let obuf =
    buffer f "conv_out" [ a "B"; a "F"; Aff.(a "Y" - k0 2); Aff.(a "X" - k0 2) ]
  in
  let init = comp f "conv_init" [ bv; fv; yv; xv ] (bias $ [ x fv ]) in
  store_in init obuf [ a "b"; a "f"; a "y"; a "x" ];
  let upd = comp f "conv_upd" [ bv; fv; yv; xv; cv; kyv; kxv ] (E.int 0) in
  (* In-place accumulation; the previous partial sum lives at the same
     buffer element (read through the init access). *)
  upd.Ir.expr <-
    E.(
      Ir.Access_e ("conv_init", [ x bv; x fv; x yv; x xv ])
      +: ((inp $ [ x bv; x cv; x yv +: x kyv; x xv +: x kxv ])
         *: (w $ [ x fv; x cv; x kyv; x kxv ])));
  store_in upd obuf [ a "b"; a "f"; a "y"; a "x" ];
  (f, init, upd)

let conv_generic_schedule f =
  (* Library-quality but generic: parallel batch, vectorized x; the filter
     loops remain rolled (no compile-time specialization). *)
  let upd = find_comp f "conv_upd" and init = find_comp f "conv_init" in
  parallelize upd "b";
  parallelize init "b";
  vectorize upd "x" 8;
  vectorize init "x" 8

(* MKL-style VGG: each stage library-optimized in isolation — generic
   convs, relus as separate vectorized passes, no inter-stage fusion. *)
let vgg_mkl_schedule f =
  List.iter
    (fun n ->
      let c = find_comp f n in
      parallelize c "b";
      vectorize c "x" 8)
    [ "conv1_init"; "conv1_upd"; "relu1"; "conv2_init"; "conv2_upd"; "relu2" ]

(* GPU sgemm: block-tiled i/j on the grid, k sequential per thread — the
   cuBLAS-shape schedule used for the Fig. 1 (right) comparison. *)
let sgemm_gpu ?(t = 16) f =
  let upd = find_comp f "c_upd" and init = find_comp f "c_init" in
  tile_gpu upd "i" "j" t t "i0" "j0" "i1" "j1";
  tile_gpu init "i" "j" t t "i0" "j0" "i1" "j1";
  List.iteri
    (fun k inp ->
      let cp = host_to_device f (find_comp f inp) in
      Schedule.set_static cp.Ir.sched 0 (-10 + k))
    [ "A"; "B"; "C0" ];
  let cp = device_to_host f upd in
  Schedule.set_static cp.Ir.sched 0 1000

(* Elementwise relu pass over a [B; F; Y; X] tensor (the standalone library
   call MKL-style pipelines issue between convolutions). *)
let relu_pass () =
  let f = create ~params:[ "B"; "F"; "Y"; "X" ] "relu_pass" in
  let bv = var "b" (k0 0) (a "B") in
  let fv = var "f" (k0 0) (a "F") in
  let yv = var "y" (k0 0) (a "Y") in
  let xv = var "x" (k0 0) (a "X") in
  let inp =
    input f "relu_in"
      [ var "b" (k0 0) (a "B"); var "f" (k0 0) (a "F");
        var "y" (k0 0) (a "Y"); var "x" (k0 0) (a "X") ]
  in
  let r =
    comp f "relu_out" [ bv; fv; yv; xv ]
      E.(max_ (float 0.0) (inp $ [ x bv; x fv; x yv; x xv ]))
  in
  parallelize r "b";
  vectorize r "x" 8;
  f
