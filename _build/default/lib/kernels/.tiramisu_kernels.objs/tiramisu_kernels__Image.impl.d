lib/kernels/image.ml: Aff Cstr Expr List Tiramisu Tiramisu_codegen Tiramisu_core Tiramisu_presburger
