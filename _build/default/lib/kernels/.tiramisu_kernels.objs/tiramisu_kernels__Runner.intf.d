lib/kernels/runner.mli: Ir Tiramisu_backends Tiramisu_core
