lib/kernels/schedules.ml: Aff Ir List Schedule Tiramisu Tiramisu_codegen Tiramisu_core Tiramisu_presburger
