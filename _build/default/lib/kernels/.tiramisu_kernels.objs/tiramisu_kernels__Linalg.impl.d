lib/kernels/linalg.ml: Aff Expr Ir List Schedule Tiramisu Tiramisu_codegen Tiramisu_core Tiramisu_presburger
