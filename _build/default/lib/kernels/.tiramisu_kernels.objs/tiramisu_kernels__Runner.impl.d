lib/kernels/runner.ml: Array Float Ir List Lower Printf String Tiramisu_backends Tiramisu_core
