(* Expert schedules for the image benchmarks, one per target architecture —
   the right-hand side of the paper's Fig. 6 heatmap.  These are the
   "hand-written by Halide experts" schedules of §VI-B, expressed with
   Table II commands.

   Conventions: every schedule function takes the pipeline built by the
   matching {!Image} builder and mutates it. Distributed schedules take the
   concrete row count and node count because [split] factors are integer
   literals (as in Fig. 3c, where the factor is N/Ranks). *)

open Tiramisu_presburger
open Tiramisu_core
open Tiramisu
module L = Tiramisu_codegen.Loop_ir

let a = Aff.var
let k0 = Aff.const

(* ---------------- CPU ---------------- *)

let cpu_blur ?(t = 32) (f : Ir.fn) =
  let bx = find_comp f "bx" and by = find_comp f "by" in
  tile by "i" "j" t t "i0" "j0" "i1" "j1";
  parallelize by "i0";
  compute_at bx by "j0";
  vectorize by "j1" 8

let cpu_cvt_color f =
  let g = find_comp f "gray" in
  parallelize g "i";
  vectorize g "j" 8

let cpu_conv2d f =
  let c = find_comp f "conv" in
  parallelize c "i";
  vectorize c "j" 8;
  unroll c "c" 3

let cpu_warp_affine f =
  let w = find_comp f "warp" in
  parallelize w "i";
  vectorize w "j" 8

let cpu_gaussian f =
  let gx = find_comp f "gx" and gy = find_comp f "gy" in
  parallelize gx "i";
  parallelize gy "i";
  vectorize gx "j" 8;
  vectorize gy "j" 8

(* nb: the fusion schedule — all four stages share one loop nest (Tiramisu
   proves legality via dependence analysis; Halide refuses, §VI-B). *)
let cpu_nb ?(fuse = true) f =
  let t1 = find_comp f "t1" and neg = find_comp f "negative" in
  let t2 = find_comp f "t2" and bright = find_comp f "brightened" in
  if fuse then begin
    after neg t1 "c";
    after t2 neg "c";
    after bright t2 "c"
  end;
  List.iter
    (fun c ->
      parallelize c "i";
      vectorize c "j" 8)
    [ t1; neg; t2; bright ]

let cpu_edge_detector f =
  let r = find_comp f "r" and e = find_comp f "edges" in
  parallelize r "i";
  parallelize e "i";
  vectorize r "j" 8;
  vectorize e "j" 8

let cpu_ticket2373 f =
  let t = find_comp f "t" in
  parallelize t "r"

(* ---------------- GPU ---------------- *)

(* Copy operations bracket the kernel: inputs host-to-device before the
   first computation, outputs device-to-host after the last (Fig. 3b). *)
let gpu_wrap f ~inputs ~outputs ~first ~last =
  ignore first;
  ignore last;
  (* Input copies run before every computation, output copies after: pin
     their root static orders directly. *)
  List.iteri
    (fun k i ->
      let cp = host_to_device f (find_comp f i) in
      Schedule.set_static cp.Ir.sched 0 (-10 + k))
    inputs;
  List.iteri
    (fun k o ->
      let cp = device_to_host f (find_comp f o) in
      Schedule.set_static cp.Ir.sched 0 (1000 + k))
    outputs

let gpu_tile_2d f name =
  let c = find_comp f name in
  tile_gpu c "i" "j" 16 16 "i0" "j0" "i1" "j1"

let gpu_blur f =
  gpu_tile_2d f "by";
  let bx = find_comp f "bx" and by = find_comp f "by" in
  compute_at bx by "j0";
  (* Stage bx's tile in shared memory (Fig. 3b line 8). *)
  cache_shared_at bx by "j0";
  (* SOA layout for coalesced accesses (Fig. 3b). *)
  store_in_dims bx [ "c"; "i"; "j" ];
  store_in_dims by [ "c"; "i"; "j" ];
  gpu_wrap f ~inputs:[ "img" ] ~outputs:[] ~first:"bx" ~last:"by";
  tag_mem (buffer_of by) L.Gpu_global

let gpu_cvt_color f =
  gpu_tile_2d f "gray";
  gpu_wrap f ~inputs:[ "img" ] ~outputs:[ "gray" ] ~first:"gray" ~last:"gray"

let gpu_conv2d f =
  gpu_tile_2d f "conv";
  (* The weights go to constant memory — the optimization behind the paper's
     win over Halide on conv2D/gaussian (§VI-B-b). *)
  tag_mem (buffer_of (find_comp f "weights")) L.Gpu_constant;
  gpu_wrap f ~inputs:[ "img"; "weights" ] ~outputs:[ "conv" ] ~first:"conv"
    ~last:"conv"

let gpu_warp_affine f =
  gpu_tile_2d f "warp";
  gpu_wrap f ~inputs:[ "img" ] ~outputs:[ "warp" ] ~first:"warp" ~last:"warp"

let gpu_gaussian f =
  gpu_tile_2d f "gx";
  gpu_tile_2d f "gy";
  gpu_wrap f ~inputs:[ "img" ] ~outputs:[ "gy" ] ~first:"gx" ~last:"gy"

let gpu_nb ?(fuse = true) f =
  let t1 = find_comp f "t1" and neg = find_comp f "negative" in
  let t2 = find_comp f "t2" and bright = find_comp f "brightened" in
  if fuse then begin
    after neg t1 "c";
    after t2 neg "c";
    after bright t2 "c"
  end;
  List.iter
    (fun c -> tile_gpu c "i" "j" 16 16 "i0" "j0" "i1" "j1")
    [ t1; neg; t2; bright ];
  gpu_wrap f ~inputs:[ "img" ] ~outputs:[ "negative"; "brightened" ]
    ~first:"t1" ~last:"brightened"

let gpu_edge_detector f =
  gpu_tile_2d f "r";
  gpu_tile_2d f "edges";
  gpu_wrap f ~inputs:[ "img" ] ~outputs:[] ~first:"r" ~last:"edges"

let gpu_ticket2373 f =
  let t = find_comp f "t" in
  tile_gpu t "r" "x" 16 16 "r0" "x0" "r1" "x1";
  gpu_wrap f ~inputs:[ "img" ] ~outputs:[ "t" ] ~first:"t" ~last:"t"

(* ---------------- distributed (Fig. 3c pattern) ---------------- *)

(* Split rows across [nodes], distribute the chunk dimension, and exchange
   [halo] boundary rows between neighbours with explicit send/receive
   (the exact-communication schedule distributed Halide cannot derive). *)
let dist_rows f ~comps ~buf ~rows:n ~row_elems ~nodes ~halo =
  let chunk = n / nodes in
  List.iter
    (fun name ->
      let c = find_comp f name in
      split c "i" chunk "i0" "i1";
      distribute c "i0";
      parallelize c "i1")
    comps;
  if halo > 0 then begin
    let is = var "is" (k0 1) (k0 nodes) in
    let ir = var "ir" (k0 0) (k0 (nodes - 1)) in
    let count = k0 (halo * row_elems) in
    let s =
      send f "halo_send" ~iters:[ is ] ~buf
        ~offset:[ Aff.(scale chunk (a "is")) ]
        ~count
        ~dest:Aff.(sub (a "is") (k0 1))
        ~async:true
    in
    let r =
      receive f "halo_recv" ~iters:[ ir ] ~buf
        ~offset:[ Aff.(add (scale chunk (a "ir")) (k0 chunk)) ]
        ~count
        ~src:Aff.(add (a "ir") (k0 1))
        ~sync:true
    in
    (* Halo exchange precedes all compute: sends first, then receives. *)
    Schedule.set_static s.Ir.sched 0 (-2);
    Schedule.set_static r.Ir.sched 0 (-1);
    distribute s "is";
    distribute r "ir"
  end

let dist_blur f ~n ~m ~nodes =
  dist_rows f ~comps:[ "bx"; "by" ] ~buf:(buffer_of (find_comp f "img"))
    ~rows:n ~row_elems:(m * 3) ~nodes ~halo:2

let dist_cvt_color f ~n ~m ~nodes =
  ignore m;
  dist_rows f ~comps:[ "gray" ] ~buf:(buffer_of (find_comp f "img")) ~rows:n
    ~row_elems:0 ~nodes ~halo:0

let dist_conv2d f ~n ~m ~nodes =
  dist_rows f ~comps:[ "conv" ] ~buf:(buffer_of (find_comp f "img")) ~rows:n
    ~row_elems:(m * 3) ~nodes ~halo:1

let dist_warp_affine f ~n ~m ~nodes =
  dist_rows f ~comps:[ "warp" ] ~buf:(buffer_of (find_comp f "img")) ~rows:n
    ~row_elems:m ~nodes ~halo:2

let dist_gaussian f ~n ~m ~nodes =
  dist_rows f ~comps:[ "gx"; "gy" ] ~buf:(buffer_of (find_comp f "img"))
    ~rows:n ~row_elems:(m * 3) ~nodes ~halo:2

let dist_nb f ~n ~m ~nodes =
  ignore m;
  List.iter
    (fun name ->
      let c = find_comp f name in
      split c "i" (n / nodes) "i0" "i1";
      distribute c "i0";
      parallelize c "i1")
    [ "t1"; "negative"; "t2"; "brightened" ]

let dist_edge_detector f ~n ~nodes =
  dist_rows f ~comps:[ "r"; "edges" ] ~buf:(buffer_of (find_comp f "img"))
    ~rows:n ~row_elems:n ~nodes ~halo:2

let dist_ticket2373 f ~n ~nodes =
  let t = find_comp f "t" in
  split t "r" (n / nodes) "r0" "r1";
  distribute t "r0"
