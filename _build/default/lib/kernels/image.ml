(* The image-processing benchmarks of §VI-B: edgeDetector, cvtColor, conv2D,
   warpAffine, gaussian, nb and ticket #2373, as Tiramisu pipelines, plus
   the expert schedules used for the CPU / GPU / distributed comparisons.

   Every builder returns a fresh pipeline; schedules mutate it in place
   (mirroring the paper's workflow: same algorithm, different scheduling
   commands per target). *)

open Tiramisu_presburger
open Tiramisu_core
open Tiramisu
module E = Expr

let a = Aff.var
let k0 = Aff.const

(* Common iterator helpers over an N x M (x3) image. *)
let rows ?(margin = 0) () = var "i" (k0 0) Aff.(a "N" - k0 margin)
let cols ?(margin = 0) () = var "j" (k0 0) Aff.(a "M" - k0 margin)
let chans = var "c" (k0 0) (k0 3)

let rgb_input f name =
  input f name [ rows (); cols (); chans ]

(* Sum of a list of expressions. *)
let sum = function
  | [] -> E.int 0
  | e :: rest -> List.fold_left E.( +: ) e rest

(* ------------------------------------------------------------------ *)
(* blur (Figs. 2-3): two-stage 3-point blur.                           *)
(* ------------------------------------------------------------------ *)

let blur () =
  let f = create ~params:[ "N"; "M" ] "blur" in
  let i = rows ~margin:2 () and j = cols ~margin:2 () in
  let ib = var "i" (k0 0) Aff.(a "N" - k0 4) in
  let inp = rgb_input f "img" in
  let bx =
    comp f "bx" [ i; j; chans ]
      E.(
        ((inp $ [ x i; x j; x chans ])
        +: (inp $ [ x i; x j +: int 1; x chans ])
        +: (inp $ [ x i; x j +: int 2; x chans ]))
        /: float 3.0)
  in
  let bx_of v j' = E.(bx $ [ v; j'; (x chans : t) ]) in
  let by =
    comp f "by" [ ib; j; chans ]
      E.(
        (bx_of (x ib) (x j) +: bx_of (x ib +: int 1) (x j)
        +: bx_of (x ib +: int 2) (x j))
        /: float 3.0)
  in
  (f, bx, by)

(* ------------------------------------------------------------------ *)
(* cvtColor: RGB -> grayscale (no stencil, no communication).          *)
(* ------------------------------------------------------------------ *)

let cvt_color () =
  let f = create ~params:[ "N"; "M" ] "cvtColor" in
  let i = rows () and j = cols () in
  let inp = rgb_input f "img" in
  let gray =
    comp f "gray" [ i; j ]
      E.(
        (float 0.299 *: (inp $ [ x i; x j; int 0 ]))
        +: (float 0.587 *: (inp $ [ x i; x j; int 1 ]))
        +: (float 0.114 *: (inp $ [ x i; x j; int 2 ])))
  in
  (f, gray)

(* ------------------------------------------------------------------ *)
(* conv2D: 3x3 convolution with clamped borders (non-affine accesses). *)
(* ------------------------------------------------------------------ *)

let conv2d () =
  let f = create ~params:[ "N"; "M" ] "conv2D" in
  let i = rows () and j = cols () in
  let inp = rgb_input f "img" in
  let kern =
    input f "weights" [ var "ki" (k0 0) (k0 3); var "kj" (k0 0) (k0 3) ]
  in
  let terms =
    List.concat_map
      (fun ki ->
        List.map
          (fun kj ->
            E.(
              (inp
              $ [
                  clamp (x i +: int (ki - 1)) (int 0) (param "N" -: int 1);
                  clamp (x j +: int (kj - 1)) (int 0) (param "M" -: int 1);
                  x chans;
                ])
              *: (kern $ [ int ki; int kj ])))
          [ 0; 1; 2 ])
      [ 0; 1; 2 ]
  in
  let out = comp f "conv" [ i; j; chans ] (sum terms) in
  (f, kern, out)

(* ------------------------------------------------------------------ *)
(* warpAffine: inverse affine warp with bilinear sampling (non-affine). *)
(* ------------------------------------------------------------------ *)

let warp_coeffs = (0.9, 0.1, 3.0, -0.1, 0.9, 5.0)

let warp_affine () =
  let f = create ~params:[ "N"; "M" ] "warpAffine" in
  let i = rows () and j = cols () in
  let inp = input f "img" [ rows (); cols () ] in
  let a11, a12, b1, a21, a22, b2 = warp_coeffs in
  let open E in
  let xf = (float a11 *: x i) +: (float a12 *: x j) +: float b1 in
  let yf = (float a21 *: x i) +: (float a22 *: x j) +: float b2 in
  let xi = cast Tiramisu_codegen.Loop_ir.I32 (call "floor" [ xf ]) in
  let yi = cast Tiramisu_codegen.Loop_ir.I32 (call "floor" [ yf ]) in
  let cl v hi = clamp v (int 0) (param hi -: int 2) in
  let xi = cl xi "N" and yi = cl yi "M" in
  let wx = xf -: call "floor" [ xf ] and wy = yf -: call "floor" [ yf ] in
  let s dx dy = inp $ [ xi +: int dx; yi +: int dy ] in
  let out =
    comp f "warp" [ i; j ]
      (((float 1.0 -: wx) *: (float 1.0 -: wy) *: s 0 0)
      +: (wx *: (float 1.0 -: wy) *: s 1 0)
      +: ((float 1.0 -: wx) *: wy *: s 0 1)
      +: (wx *: wy *: s 1 1))
  in
  (f, out)

(* ------------------------------------------------------------------ *)
(* gaussian: separable 5-tap blur with clamped borders.                *)
(* ------------------------------------------------------------------ *)

let gaussian_weights = [ 0.0625; 0.25; 0.375; 0.25; 0.0625 ]

let gaussian () =
  let f = create ~params:[ "N"; "M" ] "gaussian" in
  let i = rows () and j = cols () in
  let inp = rgb_input f "img" in
  let tap e w = E.(float w *: e) in
  let gx =
    comp f "gx" [ i; j; chans ]
      (sum
         (List.mapi
            (fun k w ->
              tap
                E.(
                  inp
                  $ [
                      x i;
                      clamp (x j +: int (k - 2)) (int 0) (param "M" -: int 1);
                      x chans;
                    ])
                w)
            gaussian_weights))
  in
  let gy =
    comp f "gy" [ i; j; chans ]
      (sum
         (List.mapi
            (fun k w ->
              tap
                E.(
                  gx
                  $ [
                      clamp (x i +: int (k - 2)) (int 0) (param "N" -: int 1);
                      x j;
                      x chans;
                    ])
                w)
            gaussian_weights))
  in
  (f, gx, gy)

(* ------------------------------------------------------------------ *)
(* nb: 4-stage synthetic pipeline producing a negative and a brightened *)
(* image from the same input (the fusion benchmark).                   *)
(* ------------------------------------------------------------------ *)

let nb () =
  let f = create ~params:[ "N"; "M" ] "nb" in
  let i = rows () and j = cols () in
  let inp = rgb_input f "img" in
  let t1 =
    comp f "t1" [ i; j; chans ] E.(float 255.0 -: (inp $ [ x i; x j; x chans ]))
  in
  let neg =
    comp f "negative" [ i; j; chans ]
      E.(max_ (float 0.0) (t1 $ [ x i; x j; x chans ]))
  in
  let t2 =
    comp f "t2" [ i; j; chans ] E.(float 1.5 *: (inp $ [ x i; x j; x chans ]))
  in
  let bright =
    comp f "brightened" [ i; j; chans ]
      E.(min_ (float 255.0) (t2 $ [ x i; x j; x chans ]))
  in
  (f, t1, neg, t2, bright)

(* ------------------------------------------------------------------ *)
(* edgeDetector: ring blur + Roberts edge filter, writing the result   *)
(* back into the image buffer (cyclic memory dataflow; §VI-B).         *)
(* ------------------------------------------------------------------ *)

let edge_detector () =
  let f = create ~params:[ "N" ] "edgeDetector" in
  let i = var "i" (k0 1) Aff.(a "N" - k0 2) in
  let j = var "j" (k0 1) Aff.(a "N" - k0 2) in
  let img = input f "img" [ var "i" (k0 0) (a "N"); var "j" (k0 0) (a "N") ] in
  let open E in
  let at di dj = img $ [ x i +: int di; x j +: int dj ] in
  let r =
    comp f "r" [ i; j ]
      ((at (-1) (-1) +: at (-1) 0 +: at (-1) 1 +: at 0 (-1) +: at 0 1
       +: at 1 (-1) +: at 1 0 +: at 1 1)
      /: float 8.0)
  in
  let racc di dj = r $ [ x i +: int di; x j +: int dj ] in
  (* edges reads r at (i+1, j-1): stay within r's domain. *)
  let out =
    comp f "edges" [ var "i" (k0 1) Aff.(a "N" - k0 3);
                     var "j" (k0 2) Aff.(a "N" - k0 2) ]
      (abs_ (racc 0 0 -: racc 1 (-1)) +: abs_ (racc 1 0 -: racc 0 (-1)))
  in
  (* In-place: the edge image overwrites the input buffer — the cyclic
     dataflow Halide rejects. *)
  store_in out (buffer_of img) [ a "i"; a "j" ];
  (f, r, out)

(* ------------------------------------------------------------------ *)
(* ticket #2373: non-rectangular (triangular) iteration space.  The    *)
(* read in(x - r) is only in-bounds on the triangle x >= r: a compiler  *)
(* that over-approximates the domain to its bounding box faults.       *)
(* ------------------------------------------------------------------ *)

let ticket2373 () =
  let f = create ~params:[ "N" ] "ticket2373" in
  let r = var "r" (k0 0) (a "N") in
  let xx = var "x" (k0 0) (a "N") in
  let inp = input f "img" [ var "i" (k0 0) (a "N") ] in
  let t = comp f "t" [ r; xx ] E.(inp $ [ x xx -: x r ]) in
  add_domain_constraints t [ Cstr.Ge (a "x", a "r") ];
  (f, t)

(* Expert schedules live in {!Schedules}. *)
