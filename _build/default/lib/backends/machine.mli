(** Machine descriptions for the performance models.

    The paper evaluates on dual-socket 24-core Xeon E5-2680v3 nodes (16 of
    them, Infiniband) and an NVIDIA Tesla K40.  Since no such hardware exists
    in this environment, the backends estimate execution time against these
    analytical descriptions; all constants are in nanoseconds unless noted.
    The *shape* of the paper's results (who wins, by what factor) is driven
    by which optimizations a schedule expresses — vectorization, locality,
    packing, fusion, communication volume — which is what the model scores. *)

type gpu = {
  sms : int;                  (** streaming multiprocessors *)
  warp : int;                 (** threads per warp *)
  max_threads_per_sm : int;
  gflop_ns : float;           (** ns per scalar fp op at full throughput *)
  lat_global : float;         (** ns per uncoalesced global access *)
  lat_coalesced : float;      (** ns per element of a coalesced access *)
  lat_shared : float;
  lat_constant : float;       (** broadcast constant-cache hit *)
  divergence_penalty : float; (** multiplier for guarded bodies *)
  kernel_launch : float;      (** ns per launch *)
  copy_bandwidth : float;     (** GB/s over PCIe *)
}

type net = {
  alpha : float;              (** message latency, ns *)
  beta : float;               (** ns per byte *)
}

type t = {
  name : string;
  cores : int;
  vec_width : int;            (** f32 lanes (AVX2 = 8) *)
  flop : float;               (** ns per scalar fp op *)
  loop_overhead : float;      (** ns per loop iteration of control *)
  branch : float;             (** ns per evaluated guard *)
  parallel_overhead : float;  (** ns per parallel region entry *)
  cache_line : int;           (** elements (f32) per line *)
  l1 : int;                   (** bytes *)
  l2 : int;
  l3 : int;
  lat_l1 : float;             (** ns per access *)
  lat_l2 : float;
  lat_l3 : float;
  lat_mem : float;
  mem_bw : float;             (** ns per byte of aggregate DRAM bandwidth *)
  gpu : gpu;
  net : net;
}

val xeon_e5_2680v3 : t
(** The paper's CPU node (one of the 16-node cluster). *)

val tesla_k40 : gpu
val infiniband : net
val default : t
