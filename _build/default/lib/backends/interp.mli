(** Reference interpreter for the loop IR.

    Executes generated code sequentially with exact reference semantics
    (parallel, vectorized and GPU-tagged loops run as ordinary loops; the
    mapping only affects the performance models).  This is the oracle the
    test-suite uses to check that every schedule-transformed program still
    computes what its Layer-I algorithm specifies.

    Distributed programs: [Distributed]-tagged loops iterate over ranks in
    increasing order within a single process, with sends and receives moving
    data through in-memory channels; a synchronous receive with no matching
    message raises (the real-MPI deadlock analogue).  Per-rank timing is the
    job of {!Dist_sim}. *)

type counters = {
  mutable flops : int;         (** arithmetic on loaded values *)
  mutable loads : int;
  mutable stores : int;
  mutable iterations : int;    (** loop-body executions *)
  mutable messages : int;
  mutable bytes_sent : int;
}

type t

val create :
  ?params:(string * int) list ->
  ?buffers:Buffers.t list ->
  unit -> t

val add_buffer : t -> Buffers.t -> unit
val buffer : t -> string -> Buffers.t
val counters : t -> counters

val on_store : t -> (string -> int array -> float -> unit) -> unit
(** Register a hook called at every store, in execution order — the
    visit-trace oracle for AST-generation tests. *)

val run : t -> Tiramisu_codegen.Loop_ir.stmt -> unit
(** @raise Failure on a synchronous receive with no matching message or on
    reads of undeclared buffers. *)

val eval_expr : t -> Tiramisu_codegen.Loop_ir.expr -> float
(** Evaluate a closed expression (no loop variables) — exposed for tests. *)
