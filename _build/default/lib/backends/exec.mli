(** Closure-compiling native executor.

    Where the paper lowers its AST to LLVM IR (§V-A), this backend compiles
    the loop IR once into nested OCaml closures — eliminating the
    interpreter's dispatch overhead — and executes [Parallel]-tagged loops
    on real cores with OCaml 5 domains.  It is the wall-clock backend: the
    reference {!Interp} stays the semantics oracle, and the two are checked
    against each other in the test-suite.

    GPU-tagged loops run as ordinary loops (a functional grid simulation);
    distributed loops run rank-by-rank with in-memory channels, exactly as
    in {!Interp}. *)

type compiled

val compile :
  params:(string * int) list ->
  buffers:Buffers.t list ->
  Tiramisu_codegen.Loop_ir.stmt ->
  compiled
(** Compile once; buffers are captured by reference (re-fill between runs
    to reuse). @raise Failure on constructs the executor does not support. *)

val run : compiled -> unit
(** Execute. Parallel loops use [Domain.spawn] when more than one core is
    available. *)

val buffer : compiled -> string -> Buffers.t

val time_run : compiled -> float
(** Wall-clock seconds of one execution. *)
