type gpu = {
  sms : int;
  warp : int;
  max_threads_per_sm : int;
  gflop_ns : float;
  lat_global : float;
  lat_coalesced : float;
  lat_shared : float;
  lat_constant : float;
  divergence_penalty : float;
  kernel_launch : float;
  copy_bandwidth : float;
}

type net = {
  alpha : float;
  beta : float;
}

type t = {
  name : string;
  cores : int;
  vec_width : int;
  flop : float;
  loop_overhead : float;
  branch : float;
  parallel_overhead : float;
  cache_line : int;
  l1 : int;
  l2 : int;
  l3 : int;
  lat_l1 : float;
  lat_l2 : float;
  lat_l3 : float;
  lat_mem : float;
  mem_bw : float;   (* ns per byte of aggregate DRAM bandwidth *)
  gpu : gpu;
  net : net;
}

let tesla_k40 =
  {
    sms = 15;
    warp = 32;
    max_threads_per_sm = 2048;
    gflop_ns = 0.0007;        (* ~1.4 Tflop/s single SM-aggregated scalar *)
    lat_global = 2.0;
    lat_coalesced = 0.08;
    lat_shared = 0.04;
    lat_constant = 0.02;
    divergence_penalty = 1.8;
    kernel_launch = 8_000.0;
    copy_bandwidth = 10.0;    (* GB/s PCIe gen3 *)
  }

let infiniband = { alpha = 1_500.0; beta = 0.18 (* ~5.5 GB/s FDR *) }

let xeon_e5_2680v3 =
  {
    name = "2x Xeon E5-2680v3";
    cores = 24;
    vec_width = 8;
    flop = 0.4;               (* ~2.5 GHz, ~1 fp op issue per cycle *)
    loop_overhead = 0.8;
    branch = 0.6;
    parallel_overhead = 4_000.0;
    cache_line = 16;          (* 64B / 4B *)
    l1 = 32 * 1024;
    l2 = 256 * 1024;
    l3 = 30 * 1024 * 1024;
    lat_l1 = 0.4;
    lat_l2 = 1.6;
    lat_l3 = 8.0;
    lat_mem = 30.0;
    mem_bw = 1.0 /. 60.0;     (* ~60 GB/s aggregate *)
    gpu = tesla_k40;
    net = infiniband;
  }

let default = xeon_e5_2680v3
