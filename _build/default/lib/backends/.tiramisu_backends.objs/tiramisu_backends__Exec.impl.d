lib/backends/exec.ml: Array Buffers Domain Float Hashtbl List Loop_ir Mutex Printf Queue Tiramisu_codegen Tiramisu_support Unix
