lib/backends/interp.ml: Array Buffers Float Hashtbl List Loop_ir Option Printf Queue String Tiramisu_codegen Tiramisu_support
