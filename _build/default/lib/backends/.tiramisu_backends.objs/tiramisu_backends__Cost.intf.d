lib/backends/cost.mli: Format Machine Tiramisu_codegen
