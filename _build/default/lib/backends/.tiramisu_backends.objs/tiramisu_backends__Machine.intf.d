lib/backends/machine.mli:
