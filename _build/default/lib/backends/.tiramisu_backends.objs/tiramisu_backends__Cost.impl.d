lib/backends/cost.ml: Array Float Format Hashtbl List Machine Option Tiramisu_codegen Tiramisu_support
