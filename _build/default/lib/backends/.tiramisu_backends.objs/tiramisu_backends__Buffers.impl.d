lib/backends/buffers.ml: Array Float Printf Tiramisu_codegen
