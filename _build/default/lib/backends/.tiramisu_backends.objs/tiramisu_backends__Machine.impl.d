lib/backends/machine.ml:
