lib/backends/interp.mli: Buffers Tiramisu_codegen
