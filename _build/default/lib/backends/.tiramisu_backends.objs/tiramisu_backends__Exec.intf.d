lib/backends/exec.mli: Buffers Tiramisu_codegen
