lib/backends/buffers.mli: Tiramisu_codegen
