open Tiramisu_codegen
module L = Loop_ir

(* Compiled code operates on a register file of integers (loop variables and
   parameters), one slot per name; closures capture slot indices. *)

type compiled = {
  body : int array -> unit;
  regs0 : int array;             (* initial register file (params bound) *)
  bufs : (string, Buffers.t) Hashtbl.t;
}

type ctx = {
  slots : (string, int) Hashtbl.t;
  mutable nslots : int;
  cbufs : (string, Buffers.t) Hashtbl.t;
  channels : (int * int, float array Queue.t) Hashtbl.t;
  chan_mutex : Mutex.t;
  rank_slot : int;
}

let slot ctx name =
  match Hashtbl.find_opt ctx.slots name with
  | Some s -> s
  | None ->
      let s = ctx.nslots in
      ctx.nslots <- ctx.nslots + 1;
      Hashtbl.replace ctx.slots name s;
      s

let buf ctx name =
  match Hashtbl.find_opt ctx.cbufs name with
  | Some b -> b
  | None -> failwith (Printf.sprintf "Exec: unknown buffer %s" name)

(* Flat index closure with a single bounds check against the buffer size;
   per-dimension checks are the interpreter's job. *)
let index_fn (b : Buffers.t) (idx : (int array -> int) array) =
  let dims = b.Buffers.dims in
  let rank = Array.length dims in
  if Array.length idx <> rank then
    failwith (Printf.sprintf "Exec: rank mismatch on %s" b.Buffers.name);
  let strides = Array.make rank 1 in
  for k = rank - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * dims.(k + 1)
  done;
  let total = Array.length b.Buffers.data in
  fun env ->
    let acc = ref 0 in
    for k = 0 to rank - 1 do
      let i = idx.(k) env in
      if i < 0 || i >= dims.(k) then
        invalid_arg
          (Printf.sprintf "buffer %s: index %d out of bounds [0,%d) at dim %d"
             b.Buffers.name i dims.(k) k);
      acc := !acc + (i * strides.(k))
    done;
    if !acc >= total then invalid_arg "Exec: flat index out of range";
    !acc

let rec compile_int ctx (e : L.expr) : int array -> int =
  match e with
  | L.Int n -> fun _ -> n
  | L.Float _ -> failwith "Exec: float in integer context"
  | L.Var v ->
      let s = slot ctx v in
      fun env -> env.(s)
  | L.Neg a ->
      let f = compile_int ctx a in
      fun env -> -f env
  | L.Cast (L.I32, a) ->
      let f = compile_f ctx a in
      fun env -> int_of_float (f env)
  | L.Cast (_, a) -> compile_int ctx a
  | L.Load (b, idx) ->
      let bb = buf ctx b in
      let fidx = index_fn bb (Array.of_list (List.map (compile_int ctx) idx)) in
      fun env -> int_of_float bb.Buffers.data.(fidx env)
  | L.Select (c, a, b) ->
      let fc = compile_cond ctx c
      and fa = compile_int ctx a
      and fb = compile_int ctx b in
      fun env -> if fc env then fa env else fb env
  | L.Call ("abs", [ a ]) ->
      let f = compile_int ctx a in
      fun env -> abs (f env)
  | L.Call (f, _) -> failwith ("Exec: unknown int intrinsic " ^ f)
  | L.Bin (op, a, b) -> (
      let fa = compile_int ctx a and fb = compile_int ctx b in
      match op with
      | L.Add -> fun env -> fa env + fb env
      | L.Sub -> fun env -> fa env - fb env
      | L.Mul -> fun env -> fa env * fb env
      | L.Div -> fun env -> fa env / fb env
      | L.FloorDiv -> fun env -> Tiramisu_support.Ints.fdiv (fa env) (fb env)
      | L.Mod -> fun env -> Tiramisu_support.Ints.emod (fa env) (fb env)
      | L.MinOp -> fun env -> min (fa env) (fb env)
      | L.MaxOp -> fun env -> max (fa env) (fb env))

and compile_cond ctx (c : L.cond) : int array -> bool =
  match c with
  | L.True -> fun _ -> true
  | L.And (a, b) ->
      let fa = compile_cond ctx a and fb = compile_cond ctx b in
      fun env -> fa env && fb env
  | L.Or (a, b) ->
      let fa = compile_cond ctx a and fb = compile_cond ctx b in
      fun env -> fa env || fb env
  | L.Not a ->
      let f = compile_cond ctx a in
      fun env -> not (f env)
  | L.Cmp (op, a, b) -> (
      let fa = compile_int ctx a and fb = compile_int ctx b in
      match op with
      | L.EqOp -> fun env -> fa env = fb env
      | L.NeOp -> fun env -> fa env <> fb env
      | L.LtOp -> fun env -> fa env < fb env
      | L.LeOp -> fun env -> fa env <= fb env
      | L.GtOp -> fun env -> fa env > fb env
      | L.GeOp -> fun env -> fa env >= fb env)

and compile_f ctx (e : L.expr) : int array -> float =
  match e with
  | L.Int n ->
      let x = float_of_int n in
      fun _ -> x
  | L.Float f -> fun _ -> f
  | L.Var v ->
      let s = slot ctx v in
      fun env -> float_of_int env.(s)
  | L.Neg a ->
      let f = compile_f ctx a in
      fun env -> -.f env
  | L.Cast (L.I32, a) ->
      let f = compile_f ctx a in
      fun env -> Float.of_int (int_of_float (f env))
  | L.Cast (_, a) -> compile_f ctx a
  | L.Load (b, idx) ->
      let bb = buf ctx b in
      let fidx = index_fn bb (Array.of_list (List.map (compile_int ctx) idx)) in
      fun env -> bb.Buffers.data.(fidx env)
  | L.Select (c, a, b) ->
      let fc = compile_cond ctx c
      and fa = compile_f ctx a
      and fb = compile_f ctx b in
      fun env -> if fc env then fa env else fb env
  | L.Call (name, args) -> (
      let fargs = List.map (compile_f ctx) args in
      match (name, fargs) with
      | "abs", [ a ] -> fun env -> Float.abs (a env)
      | "sqrt", [ a ] -> fun env -> sqrt (a env)
      | "exp", [ a ] -> fun env -> exp (a env)
      | "log", [ a ] -> fun env -> log (a env)
      | "sin", [ a ] -> fun env -> sin (a env)
      | "cos", [ a ] -> fun env -> cos (a env)
      | "floor", [ a ] -> fun env -> Float.round (a env -. 0.5)
      | "pow", [ a; b ] -> fun env -> Float.pow (a env) (b env)
      | "fmin", [ a; b ] -> fun env -> Float.min (a env) (b env)
      | "fmax", [ a; b ] -> fun env -> Float.max (a env) (b env)
      | "clamp", [ x; lo; hi ] ->
          fun env -> Float.min (Float.max (x env) (lo env)) (hi env)
      | _ -> failwith ("Exec: unknown intrinsic " ^ name))
  | L.Bin (op, a, b) -> (
      let fa = compile_f ctx a and fb = compile_f ctx b in
      match op with
      | L.Add -> fun env -> fa env +. fb env
      | L.Sub -> fun env -> fa env -. fb env
      | L.Mul -> fun env -> fa env *. fb env
      | L.Div -> fun env -> fa env /. fb env
      | L.FloorDiv ->
          fun env ->
            Float.of_int
              (Tiramisu_support.Ints.fdiv (int_of_float (fa env))
                 (int_of_float (fb env)))
      | L.Mod ->
          fun env ->
            Float.of_int
              (Tiramisu_support.Ints.emod (int_of_float (fa env))
                 (int_of_float (fb env)))
      | L.MinOp -> fun env -> Float.min (fa env) (fb env)
      | L.MaxOp -> fun env -> Float.max (fa env) (fb env))

let flat_offset (b : Buffers.t) (idx : (int array -> int) list) env =
  let dims = b.Buffers.dims in
  let n = Array.length dims in
  let acc = ref 0 in
  List.iteri
    (fun k f ->
      let stride = ref 1 in
      for d = k + 1 to n - 1 do
        stride := !stride * dims.(d)
      done;
      acc := !acc + (f env * !stride))
    idx;
  !acc

let rec compile_stmt ctx (s : L.stmt) : int array -> unit =
  match s with
  | L.Block l ->
      let fs = Array.of_list (List.map (compile_stmt ctx) l) in
      fun env -> Array.iter (fun f -> f env) fs
  | L.Comment _ | L.Barrier -> fun _ -> ()
  | L.If (c, t, e) -> (
      let fc = compile_cond ctx c and ft = compile_stmt ctx t in
      match e with
      | None -> fun env -> if fc env then ft env
      | Some e ->
          let fe = compile_stmt ctx e in
          fun env -> if fc env then ft env else fe env)
  | L.Store (b, idx, v) ->
      let bb = buf ctx b in
      let fidx = index_fn bb (Array.of_list (List.map (compile_int ctx) idx)) in
      let fv = compile_f ctx v in
      fun env -> bb.Buffers.data.(fidx env) <- fv env
  | L.Alloc _ ->
      (* Scoped allocations capture buffers by reference at compile time;
         re-sizing per entry would need re-compilation. The reference
         interpreter handles these pipelines. *)
      failwith "Exec: scoped Alloc not supported; use the interpreter" 
  | L.For { var; lo; hi; tag = L.Parallel; body } ->
      let s = slot ctx var in
      let flo = compile_int ctx lo and fhi = compile_int ctx hi in
      let fbody = compile_stmt ctx body in
      fun env ->
        let lo = flo env and hi = fhi env in
        let extent = hi - lo + 1 in
        if extent <= 0 then ()
        else begin
          let nd = min (Domain.recommended_domain_count ()) extent in
          if nd <= 1 then
            for x = lo to hi do
              env.(s) <- x;
              fbody env
            done
          else begin
            let chunk = (extent + nd - 1) / nd in
            let workers =
              List.init nd (fun d ->
                  Domain.spawn (fun () ->
                      let env' = Array.copy env in
                      let from = lo + (d * chunk) in
                      let upto = min hi (from + chunk - 1) in
                      for x = from to upto do
                        env'.(s) <- x;
                        fbody env'
                      done))
            in
            List.iter Domain.join workers
          end
        end
  | L.For { var; lo; hi; tag; body } ->
      let s = slot ctx var in
      let is_dist = tag = L.Distributed in
      let flo = compile_int ctx lo and fhi = compile_int ctx hi in
      let fbody = compile_stmt ctx body in
      let rs = ctx.rank_slot in
      fun env ->
        let lo = flo env and hi = fhi env in
        for x = lo to hi do
          env.(s) <- x;
          if is_dist then env.(rs) <- x;
          fbody env
        done
  | L.Send { dst; buf = b; offset; count; _ } ->
      let bb = buf ctx b in
      let fdst = compile_int ctx dst in
      let foffs = List.map (compile_int ctx) offset in
      let fcount = compile_int ctx count in
      let rs = ctx.rank_slot in
      fun env ->
        let payload =
          Array.sub bb.Buffers.data (flat_offset bb foffs env) (fcount env)
        in
        Mutex.lock ctx.chan_mutex;
        let key = (env.(rs), fdst env) in
        let q =
          match Hashtbl.find_opt ctx.channels key with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.replace ctx.channels key q;
              q
        in
        Queue.push payload q;
        Mutex.unlock ctx.chan_mutex
  | L.Recv { src; buf = b; offset; count; _ } ->
      let bb = buf ctx b in
      let fsrc = compile_int ctx src in
      let foffs = List.map (compile_int ctx) offset in
      let fcount = compile_int ctx count in
      let rs = ctx.rank_slot in
      fun env ->
        Mutex.lock ctx.chan_mutex;
        let key = (fsrc env, env.(rs)) in
        (match Hashtbl.find_opt ctx.channels key with
        | Some q when not (Queue.is_empty q) ->
            let payload = Queue.pop q in
            Mutex.unlock ctx.chan_mutex;
            if Array.length payload <> fcount env then
              failwith "Exec: message size mismatch";
            Array.blit payload 0 bb.Buffers.data (flat_offset bb foffs env)
              (Array.length payload)
        | _ ->
            Mutex.unlock ctx.chan_mutex;
            failwith "Exec: synchronous recv with no message (deadlock)")
  | L.Memcpy { dst; src; _ } ->
      let s = buf ctx src and d = buf ctx dst in
      fun _ ->
        if Buffers.size s <> Buffers.size d then
          failwith "Exec: memcpy size mismatch";
        Array.blit s.Buffers.data 0 d.Buffers.data 0 (Buffers.size s)

let compile ~params ~buffers stmt =
  let ctx =
    {
      slots = Hashtbl.create 32;
      nslots = 0;
      cbufs = Hashtbl.create 16;
      channels = Hashtbl.create 16;
      chan_mutex = Mutex.create ();
      rank_slot = 0;
    }
  in
  let rank_slot = slot ctx "__rank" in
  assert (rank_slot = 0);
  List.iter (fun b -> Hashtbl.replace ctx.cbufs b.Buffers.name b) buffers;
  List.iter (fun (p, _) -> ignore (slot ctx p)) params;
  let body = compile_stmt ctx stmt in
  (* size the register file after compilation discovered all names *)
  let regs0 = Array.make (max 1 ctx.nslots) 0 in
  List.iter (fun (p, v) -> regs0.(Hashtbl.find ctx.slots p) <- v) params;
  { body; regs0; bufs = ctx.cbufs }

let run c = c.body (Array.copy c.regs0)

let buffer c name =
  match Hashtbl.find_opt c.bufs name with
  | Some b -> b
  | None -> failwith (Printf.sprintf "Exec: unknown buffer %s" name)

let time_run c =
  let t0 = Unix.gettimeofday () in
  run c;
  Unix.gettimeofday () -. t0
