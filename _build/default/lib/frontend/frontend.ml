open Tiramisu_presburger
open Tiramisu_core

exception Parse_error of string

(* ---------------- lexer ---------------- *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | STRING of string
  | LPAREN | RPAREN | LBRACK | RBRACK
  | COMMA | EQUALS | DOTDOT
  | PLUS | MINUS | STAR | SLASH
  | EOF

let lex (src : string) : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  let err msg = raise (Parse_error (Printf.sprintf "line %d: %s" !line msg)) in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && src.[!j] <> '"' do incr j done;
      if !j >= n then err "unterminated string";
      push (STRING (String.sub src (!i + 1) (!j - !i - 1)));
      i := !j + 1
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do incr j done;
      (* a float only if '.' is followed by a digit — '..' is a range *)
      if !j < n && src.[!j] = '.' && !j + 1 < n
         && src.[!j + 1] >= '0' && src.[!j + 1] <= '9'
      then begin
        incr j;
        while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do incr j done;
        push (FLOAT (float_of_string (String.sub src !i (!j - !i))))
      end
      else push (INT (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      while
        !j < n
        && ((src.[!j] >= 'a' && src.[!j] <= 'z')
           || (src.[!j] >= 'A' && src.[!j] <= 'Z')
           || (src.[!j] >= '0' && src.[!j] <= '9')
           || src.[!j] = '_')
      do incr j done;
      push (IDENT (String.sub src !i (!j - !i)));
      i := !j
    end
    else begin
      (match c with
      | '(' -> push LPAREN
      | ')' -> push RPAREN
      | '[' -> push LBRACK
      | ']' -> push RBRACK
      | ',' -> push COMMA
      | '=' -> push EQUALS
      | '+' -> push PLUS
      | '-' -> push MINUS
      | '*' -> push STAR
      | '/' -> push SLASH
      | '.' ->
          if !i + 1 < n && src.[!i + 1] = '.' then begin
            push DOTDOT;
            incr i
          end
          else err "stray '.'"
      | c -> err (Printf.sprintf "unexpected character %c" c));
      incr i
    end
  done;
  List.rev ((EOF, !line) :: !toks)

(* ---------------- parser ---------------- *)

type st = { mutable toks : (token * int) list }

let peek st = match st.toks with [] -> EOF | (t, _) :: _ -> t

let cur_line st = match st.toks with [] -> 0 | (_, l) :: _ -> l

let err st msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" (cur_line st) msg))

let next st =
  match st.toks with
  | [] -> EOF
  | (t, _) :: rest ->
      st.toks <- rest;
      t

let expect st t what = if next st <> t then err st ("expected " ^ what)

let ident st =
  match next st with IDENT x -> x | _ -> err st "expected identifier"

let int_lit st =
  match next st with
  | INT k -> k
  | MINUS -> ( match next st with INT k -> -k | _ -> err st "expected int")
  | _ -> err st "expected integer"

(* affine expressions for bounds and [where] constraints *)
let rec parse_aff st : Aff.t =
  let t = parse_aff_term st in
  let rec rest acc =
    match peek st with
    | PLUS ->
        ignore (next st);
        rest (Aff.add acc (parse_aff_term st))
    | MINUS ->
        ignore (next st);
        rest (Aff.sub acc (parse_aff_term st))
    | _ -> acc
  in
  rest t

and parse_aff_term st : Aff.t =
  match next st with
  | MINUS -> Aff.neg (parse_aff_term st)
  | INT k -> (
      match peek st with
      | STAR ->
          ignore (next st);
          Aff.scale k (Aff.var (ident st))
      | IDENT x ->
          ignore (next st);
          Aff.term k x
      | _ -> Aff.const k)
  | IDENT x -> Aff.var x
  | LPAREN ->
      let a = parse_aff st in
      expect st RPAREN ")";
      a
  | _ -> err st "expected affine term"

(* value expressions *)
let rec parse_expr env st : Ir.expr =
  let lhs = parse_mul env st in
  let rec rest acc =
    match peek st with
    | PLUS ->
        ignore (next st);
        rest (Ir.Bin_e (Ir.Add, acc, parse_mul env st))
    | MINUS ->
        ignore (next st);
        rest (Ir.Bin_e (Ir.Sub, acc, parse_mul env st))
    | _ -> acc
  in
  rest lhs

and parse_mul env st : Ir.expr =
  let lhs = parse_atom env st in
  let rec rest acc =
    match peek st with
    | STAR ->
        ignore (next st);
        rest (Ir.Bin_e (Ir.Mul, acc, parse_atom env st))
    | SLASH ->
        ignore (next st);
        rest (Ir.Bin_e (Ir.Div, acc, parse_atom env st))
    | _ -> acc
  in
  rest lhs

and parse_atom env st : Ir.expr =
  match next st with
  | INT k -> Ir.Int_e k
  | FLOAT f -> Ir.Float_e f
  | MINUS -> Ir.Neg_e (parse_atom env st)
  | LPAREN ->
      let e = parse_expr env st in
      expect st RPAREN ")";
      e
  | IDENT name -> (
      match peek st with
      | LPAREN -> (
          ignore (next st);
          let args = parse_args env st in
          match name with
          | "min" -> (
              match args with
              | [ a; b ] -> Ir.Bin_e (Ir.Min, a, b)
              | _ -> err st "min takes 2 arguments")
          | "max" -> (
              match args with
              | [ a; b ] -> Ir.Bin_e (Ir.Max, a, b)
              | _ -> err st "max takes 2 arguments")
          | "clamp" -> (
              match args with
              | [ x; lo; hi ] -> Ir.Clamp_e (x, lo, hi)
              | _ -> err st "clamp takes 3 arguments")
          | "select" -> (
              match args with
              | [ c; a; b ] -> Ir.Select_e (c, a, b)
              | _ -> err st "select takes 3 arguments")
          | "abs" | "sqrt" | "exp" | "log" | "sin" | "cos" | "floor"
          | "pow" ->
              Ir.Call_e (name, args)
          | _ -> Ir.Access_e (name, args))
      | _ ->
          let is_iter, is_param = env name in
          if is_iter then Ir.Iter_e name
          else if is_param then Ir.Param_e name
          else err st (Printf.sprintf "unknown name %s" name))
  | _ -> err st "expected expression"

and parse_args env st : Ir.expr list =
  let rec go acc =
    match peek st with
    | RPAREN ->
        ignore (next st);
        List.rev acc
    | COMMA ->
        ignore (next st);
        go acc
    | _ -> go (parse_expr env st :: acc)
  in
  go []

(* ---------------- top-level ---------------- *)

let parse src =
  let st = { toks = lex src } in
  (match ident st with
  | "function" -> ()
  | _ -> err st "program must start with 'function'");
  let fname = ident st in
  expect st LPAREN "(";
  let params =
    let rec go acc =
      match next st with
      | RPAREN -> List.rev acc
      | COMMA -> go acc
      | IDENT p -> go (p :: acc)
      | _ -> err st "expected parameter name"
    in
    go []
  in
  let fn = Tiramisu.create ~params fname in
  let is_param n = List.mem n params in
  (* iterator scope is per computation; the env closure is rebuilt below *)
  let parse_iter_list () =
    (* (i in lo..hi, j in lo..hi, ...) *)
    expect st LPAREN "(";
    let rec go acc =
      match next st with
      | RPAREN -> List.rev acc
      | COMMA -> go acc
      | IDENT it ->
          (match next st with
          | IDENT "in" -> ()
          | _ -> err st "expected 'in'");
          let lo = parse_aff st in
          expect st DOTDOT "..";
          let hi = parse_aff st in
          (* ranges are written inclusive..exclusive-minus-one? we use
             lo..hi as half-open [lo, hi): 0..N-2 means i < N-2 *)
          go (Tiramisu.var it lo hi :: acc)
      | _ -> err st "expected iterator"
    in
    go []
  in
  let rec statements () =
    match peek st with
    | EOF -> ()
    | IDENT "input" ->
        ignore (next st);
        let name = ident st in
        expect st LBRACK "[";
        let dims =
          let rec go acc =
            match peek st with
            | RBRACK ->
                ignore (next st);
                List.rev acc
            | COMMA ->
                ignore (next st);
                go acc
            | _ -> go (parse_aff st :: acc)
          in
          go []
        in
        let vars =
          List.mapi
            (fun k d -> Tiramisu.var (Printf.sprintf "_d%d" k) (Aff.const 0) d)
            dims
        in
        ignore (Tiramisu.input fn name vars);
        statements ()
    | IDENT "comp" ->
        ignore (next st);
        let name = ident st in
        let vars = parse_iter_list () in
        expect st EQUALS "=";
        let iters = List.map (fun v -> v.Tiramisu.v_name) vars in
        let env n = (List.mem n iters, is_param n) in
        let body = parse_expr env st in
        let c = Tiramisu.comp fn name vars body in
        (match peek st with
        | IDENT "where" ->
            ignore (next st);
            (* a single affine comparison chain, e.g. where x >= r is not
               lexable here (no relations in this lexer) — accept the form
               lo <= expr style via the ISL parser instead: where "..." *)
            (match next st with
            | STRING s ->
                let set =
                  Isl.parse_set
                    (Printf.sprintf "[%s] -> { %s[%s] : %s }"
                       (String.concat ", " params) name
                       (String.concat ", " iters) s)
                in
                c.Ir.domain <- Iset.intersect c.Ir.domain set
            | _ -> err st "expected string of ISL constraints after 'where'")
        | _ -> ());
        statements ()
    | IDENT "schedule" ->
        ignore (next st);
        schedule ()
    | _ -> err st "expected 'input', 'comp' or 'schedule'"
  and schedule () =
    match peek st with
    | EOF -> ()
    | IDENT cmd -> (
        ignore (next st);
        let comp () = Tiramisu.find_comp fn (ident st) in
        (match cmd with
        | "tile" ->
            let c = comp () in
            let i = ident st and j = ident st in
            let t1 = int_lit st and t2 = int_lit st in
            let a = ident st and b = ident st and x = ident st and y = ident st in
            Tiramisu.tile c i j t1 t2 a b x y
        | "tile_gpu" ->
            let c = comp () in
            let i = ident st and j = ident st in
            let t1 = int_lit st and t2 = int_lit st in
            let a = ident st and b = ident st and x = ident st and y = ident st in
            Tiramisu.tile_gpu c i j t1 t2 a b x y
        | "split" ->
            let c = comp () in
            let i = ident st in
            let f = int_lit st in
            let a = ident st and b = ident st in
            Tiramisu.split c i f a b
        | "interchange" ->
            let c = comp () in
            let i = ident st and j = ident st in
            Tiramisu.interchange c i j
        | "shift" ->
            let c = comp () in
            let i = ident st in
            Tiramisu.shift c i (int_lit st)
        | "skew" ->
            let c = comp () in
            let i = ident st and j = ident st in
            Tiramisu.skew c i j (int_lit st)
        | "reverse" ->
            let c = comp () in
            Tiramisu.reverse c (ident st)
        | "parallelize" ->
            let c = comp () in
            Tiramisu.parallelize c (ident st)
        | "vectorize" ->
            let c = comp () in
            let i = ident st in
            Tiramisu.vectorize c i (int_lit st)
        | "unroll" ->
            let c = comp () in
            let i = ident st in
            Tiramisu.unroll c i (int_lit st)
        | "distribute" ->
            let c = comp () in
            Tiramisu.distribute c (ident st)
        | "compute_at" ->
            let p = comp () in
            let c = comp () in
            Tiramisu.compute_at p c (ident st)
        | "cache_shared_at" ->
            let p = comp () in
            let c = comp () in
            Tiramisu.cache_shared_at p c (ident st)
        | "inline" -> Tiramisu.inline (comp ())
        | "after" ->
            let c = comp () in
            let b = comp () in
            Tiramisu.after c b (ident st)
        | "store_in_dims" ->
            let c = comp () in
            expect st LPAREN "(";
            let rec dims acc =
              match next st with
              | RPAREN -> List.rev acc
              | COMMA -> dims acc
              | IDENT d -> dims (d :: acc)
              | _ -> err st "expected dimension name"
            in
            Tiramisu.store_in_dims c (dims [])
        | "set_schedule" -> (
            let c = comp () in
            match next st with
            | STRING s -> Tiramisu.set_schedule c s
            | _ -> err st "expected ISL map string")
        | _ -> err st (Printf.sprintf "unknown scheduling command %s" cmd));
        schedule ())
    | _ -> err st "expected a scheduling command"
  in
  statements ();
  fn

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  parse src
