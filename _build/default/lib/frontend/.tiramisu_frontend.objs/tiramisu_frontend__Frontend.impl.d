lib/frontend/frontend.ml: Aff Ir Iset Isl List Printf String Tiramisu Tiramisu_core Tiramisu_presburger
