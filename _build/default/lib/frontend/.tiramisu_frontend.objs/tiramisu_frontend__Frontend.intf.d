lib/frontend/frontend.mli: Tiramisu_core
