(* GPU mapping example (Fig. 3b): tile the blur onto the GPU grid, switch
   the intermediate buffers to an SOA layout for coalescing, and bracket the
   kernel with host-to-device / device-to-host copies — then show the
   generated pseudocode, the emitted CUDA-flavoured C, and the machine-model
   estimate against the Tesla K40 description.

   Run with: dune exec examples/gpu_blur.exe *)

open Tiramisu_kernels
module B = Tiramisu_backends
module C = Tiramisu_codegen

let () =
  let f, _, _ = Image.blur () in
  Schedules.gpu_blur f;
  print_endline "generated code (Fig. 3b right-hand side):";
  print_endline (Tiramisu_core.Lower.pseudocode f);

  (* functional execution on the grid interpreter *)
  let n = 24 and m = 20 in
  let pix (idx : int array) =
    float_of_int (((idx.(0) * 5) + (idx.(1) * 3) + idx.(2)) mod 17)
  in
  let interp =
    Runner.run ~fn:f ~params:[ ("N", n); ("M", m) ] ~inputs:[ ("img", pix) ]
  in
  let soa = B.Interp.buffer interp "by" in
  Printf.printf "\nexecuted on the grid interpreter; by[c=0][i=1][j=1] = %g\n"
    (B.Buffers.get soa [| 0; 1; 1 |]);

  (* emitted C (CUDA-flavoured annotations) *)
  let lowered = Tiramisu_pipeline.Pipeline.lower f in
  let buffers =
    List.map
      (fun ((b : Tiramisu_core.Ir.buffer), dims) ->
        (b.Tiramisu_core.Ir.buf_name, dims))
      (Tiramisu_core.Lower.buffer_extents f ~params:[ ("N", n); ("M", m) ])
  in
  print_endline "\nemitted C (excerpt):";
  let c =
    C.C_emit.emit_function ~name:"blur_gpu" ~params:[ "N"; "M" ] ~buffers
      lowered.Tiramisu_core.Lower.ast
  in
  print_string (String.sub c 0 (min 1400 (String.length c)));
  print_endline "...";

  (* model estimate at the paper's image size *)
  let r = Runner.model ~fn:f ~params:[ ("N", 2112); ("M", 3520) ] () in
  Format.printf "\nK40 model estimate at 2112x3520: %a@." B.Cost.pp_report r
