(* tiramisuc — command-line driver over the built-in benchmark kernels.

   Subcommands:
     list                         available kernels and schedule variants
     show   KERNEL [-s SCHED]     generated pseudocode
     cc     KERNEL [-s SCHED]     emit C source
     run    KERNEL [-s SCHED]     execute (interpreter or native) and check
     model  KERNEL [-s SCHED]     machine-model estimate at paper sizes
     legal  KERNEL [-s SCHED]     dependence-based legality verdict
     compile FILE.tir             parse a textual pipeline; print pseudocode
                                  (or C with --emit-c), check legality *)

open Cmdliner
open Tiramisu_kernels
module B = Tiramisu_backends
module A = Tiramisu_autosched.Autosched
module P = Tiramisu_pipeline.Pipeline

type kernel = {
  k_name : string;
  k_desc : string;
  build : unit -> Tiramisu_core.Ir.fn;
  schedules : (string * (Tiramisu_core.Ir.fn -> unit)) list;
  params_small : (string * int) list;
  params_paper : (string * int) list;
  inputs : (string * (int array -> float)) list;
}

let img3 (idx : int array) =
  float_of_int (((idx.(0) * 13) + (idx.(1) * 7) + (idx.(2) * 3)) mod 31) /. 7.0

let img2 (idx : int array) =
  float_of_int (((idx.(0) * 11) + (idx.(1) * 5)) mod 23) /. 3.0

let kern3 (idx : int array) =
  [| 0.05; 0.1; 0.05; 0.1; 0.4; 0.1; 0.05; 0.1; 0.05 |].((idx.(0) * 3) + idx.(1))

let mat (idx : int array) =
  float_of_int (((idx.(0) * 7) + (idx.(1) * 3)) mod 11) /. 4.0

let pencil f = A.apply A.pencil_cpu f
let none _ = ()

let kernels =
  [
    {
      k_name = "blur";
      k_desc = "two-stage 3-point blur (Figs. 2-3)";
      build =
        (fun () ->
          let f, _, _ = Image.blur () in
          f);
      schedules =
        [ ("none", none); ("cpu", fun f -> Schedules.cpu_blur f);
          ("gpu", Schedules.gpu_blur);
          ("dist", fun f -> Schedules.dist_blur f ~n:2112 ~m:3520 ~nodes:16);
          ("pencil", pencil) ];
      params_small = [ ("N", 20); ("M", 16) ];
      params_paper = [ ("N", 2112); ("M", 3520) ];
      inputs = [ ("img", img3) ];
    };
    {
      k_name = "cvtColor";
      k_desc = "RGB to grayscale (§VI-B)";
      build = (fun () -> fst (Image.cvt_color ()));
      schedules =
        [ ("none", none); ("cpu", Schedules.cpu_cvt_color);
          ("gpu", Schedules.gpu_cvt_color); ("pencil", pencil) ];
      params_small = [ ("N", 24); ("M", 20) ];
      params_paper = [ ("N", 2112); ("M", 3520) ];
      inputs = [ ("img", img3) ];
    };
    {
      k_name = "conv2D";
      k_desc = "3x3 convolution with clamped borders (§VI-B)";
      build =
        (fun () ->
          let f, _, _ = Image.conv2d () in
          f);
      schedules =
        [ ("none", none); ("cpu", Schedules.cpu_conv2d);
          ("gpu", Schedules.gpu_conv2d); ("pencil", pencil) ];
      params_small = [ ("N", 20); ("M", 16) ];
      params_paper = [ ("N", 2112); ("M", 3520) ];
      inputs = [ ("img", img3); ("weights", kern3) ];
    };
    {
      k_name = "warpAffine";
      k_desc = "affine warp with bilinear sampling (§VI-B)";
      build = (fun () -> fst (Image.warp_affine ()));
      schedules =
        [ ("none", none); ("cpu", Schedules.cpu_warp_affine);
          ("gpu", Schedules.gpu_warp_affine); ("pencil", pencil) ];
      params_small = [ ("N", 20); ("M", 16) ];
      params_paper = [ ("N", 2112); ("M", 3520) ];
      inputs = [ ("img", img2) ];
    };
    {
      k_name = "gaussian";
      k_desc = "separable 5-tap gaussian (§VI-B)";
      build =
        (fun () ->
          let f, _, _ = Image.gaussian () in
          f);
      schedules =
        [ ("none", none); ("cpu", Schedules.cpu_gaussian);
          ("gpu", Schedules.gpu_gaussian); ("pencil", pencil) ];
      params_small = [ ("N", 20); ("M", 16) ];
      params_paper = [ ("N", 2112); ("M", 3520) ];
      inputs = [ ("img", img3) ];
    };
    {
      k_name = "nb";
      k_desc = "4-stage negative+brighten pipeline (fusion demo, §VI-B)";
      build =
        (fun () ->
          let f, _, _, _, _ = Image.nb () in
          f);
      schedules =
        [ ("none", none); ("cpu", Schedules.cpu_nb ~fuse:true);
          ("cpu-unfused", Schedules.cpu_nb ~fuse:false);
          ("gpu", Schedules.gpu_nb ~fuse:true); ("pencil", pencil) ];
      params_small = [ ("N", 20); ("M", 16) ];
      params_paper = [ ("N", 2112); ("M", 3520) ];
      inputs = [ ("img", img3) ];
    };
    {
      k_name = "edgeDetector";
      k_desc = "ring blur + Roberts filter, in-place (cyclic dataflow)";
      build =
        (fun () ->
          let f, _, _ = Image.edge_detector () in
          f);
      schedules =
        [ ("none", none); ("cpu", Schedules.cpu_edge_detector);
          ("gpu", Schedules.gpu_edge_detector); ("pencil", pencil) ];
      params_small = [ ("N", 20) ];
      params_paper = [ ("N", 2112) ];
      inputs = [ ("img", img2) ];
    };
    {
      k_name = "ticket2373";
      k_desc = "triangular iteration space (Halide bug reproduction)";
      build = (fun () -> fst (Image.ticket2373 ()));
      schedules =
        [ ("none", none); ("cpu", Schedules.cpu_ticket2373);
          ("pencil", pencil) ];
      params_small = [ ("N", 16) ];
      params_paper = [ ("N", 2112) ];
      inputs = [ ("img", fun idx -> float_of_int (idx.(0) mod 13)) ];
    };
    {
      k_name = "sgemm";
      k_desc = "C = alpha*A*B + beta*C (§VI-A)";
      build =
        (fun () ->
          let f, _, _ = Linalg.sgemm () in
          f);
      schedules =
        [ ("none", none); ("tuned", fun f -> Linalg.sgemm_tuned f);
          ("pluto", fun f -> Linalg.sgemm_pluto f);
          ("gpu", fun f -> Linalg.sgemm_gpu f) ];
      params_small = [ ("S", 16) ];
      params_paper = [ ("S", 1060) ];
      inputs = [ ("A", mat); ("B", mat); ("C0", mat) ];
    };
    {
      k_name = "hpcg";
      k_desc = "27-point stencil SpMV (HPCG kernel, §VI-A)";
      build = (fun () -> fst (Linalg.hpcg ()));
      schedules = [ ("none", none); ("cpu", Linalg.hpcg_schedule) ];
      params_small = [ ("G", 10) ];
      params_paper = [ ("G", 104) ];
      inputs = [ ("p", img3) ];
    };
    {
      k_name = "baryon";
      k_desc = "Baryon Building Blocks tensor contraction (§VI-A)";
      build =
        (fun () ->
          let f, _, _ = Linalg.baryon () in
          f);
      schedules = [ ("none", none); ("cpu", Linalg.baryon_schedule) ];
      params_small = [ ("T", 8); ("D", 4) ];
      params_paper = [ ("T", 64); ("D", 16) ];
      inputs = [ ("w", img3); ("P1", img2); ("P2", img2); ("P3", img2) ];
    };
  ]

let find_kernel name =
  match List.find_opt (fun k -> k.k_name = name) kernels with
  | Some k -> k
  | None ->
      Printf.eprintf "unknown kernel %s; try 'tiramisuc list'\n" name;
      exit 1

let scheduled k sched =
  let f = k.build () in
  (match List.assoc_opt sched k.schedules with
  | Some s -> s f
  | None ->
      Printf.eprintf "kernel %s has no schedule %s (available: %s)\n"
        k.k_name sched
        (String.concat ", " (List.map fst k.schedules));
      exit 1);
  f

(* ---------------- subcommands ---------------- *)

let kernel_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL")

let sched_arg =
  Arg.(value & opt string "none" & info [ "s"; "schedule" ] ~docv:"SCHED")

let paper_arg =
  Arg.(value & flag & info [ "paper-size" ] ~doc:"Use the paper's sizes.")

let native_arg =
  Arg.(value & flag & info [ "native" ] ~doc:"Closure-compiled executor.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace-passes" ]
        ~doc:
          "Print the pipeline pass trace (per-pass wall-clock time and \
           loop-metadata deltas) after compiling.")

(* --target=cpu|cpu:pool|cpu:spawn|cpu:seq|gpu-sim|dist:N, parsed by
   Target.of_string so the CLI grammar and the cache-key grammar cannot
   drift apart. *)
let target_arg =
  let parse s =
    match B.Target.of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print fmt t = Format.fprintf fmt "%s" (B.Target.to_string t) in
  Arg.(
    value
    & opt (conv (parse, print)) B.Target.default
    & info [ "target" ] ~docv:"TARGET"
        ~doc:
          "Execution target: $(b,cpu) (optionally $(b,cpu:pool), \
           $(b,cpu:spawn), $(b,cpu:seq)), $(b,gpu-sim), or $(b,dist:N) \
           for N simulated ranks.")

let dump_after_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-after" ] ~docv:"PASS"
        ~doc:
          "Print the loop IR after the named pipeline pass (one of: lower, \
           legalize, alloc-scope, narrow, simplify, tape-compile).  For \
           tape-compile the dump is the disassembled instruction tape of \
           every claimed nest rather than the loop IR.")

(* A tracer when either observation flag is set, [None] otherwise.  The
   resolved target is stamped on the tracer up front so even lower-only
   runs (cc, compile) print it in the pass-trace header; compile-stage
   runs overwrite it with the same string. *)
let cli_tracer ?(target = B.Target.default) ~trace ~dump_after ~name () =
  if (not trace) && dump_after = None then None
  else
    let on_after =
      Option.map
        (fun want pass s ->
          if String.equal pass want then
            if String.equal pass "tape-compile" then
              (* The tape pass is an observation point: dump the bytecode the
                 executor will run instead of the (unchanged) loop IR. *)
              match Tiramisu_codegen.Tape_gen.scan s with
              | [] -> Printf.printf "=== after %s ===\n(no nest claimed)\n" pass
              | progs ->
                  List.iter
                    (fun p ->
                      Printf.printf "=== after %s: %s ===\n%s" pass
                        (Tiramisu_codegen.Tape_gen.summary p)
                        (Tiramisu_codegen.Tape_gen.disassemble
                           ~lanes:P.default_knobs.P.lanes p))
                    progs
            else
              Printf.printf "=== after %s ===\n%s\n" pass
                (Tiramisu_codegen.Loop_ir.to_string s))
        dump_after
    in
    let tr = P.make_tracer ?on_after ~name () in
    tr.P.tr_target <- B.Target.to_key_string target;
    Some tr

let report_tracer ~trace tracer =
  match tracer with
  | Some tr when trace -> Format.printf "%a" P.print_trace (P.trace_of tr)
  | _ -> ()

let list_cmd =
  let doc = "List the built-in kernels and their schedule variants." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter
            (fun k ->
              Printf.printf "%-14s %s\n  schedules: %s\n" k.k_name k.k_desc
                (String.concat ", " (List.map fst k.schedules)))
            kernels)
      $ const ())

let show_cmd =
  let doc = "Print the generated pseudocode for a kernel." in
  let run name sched =
    let k = find_kernel name in
    print_endline (Tiramisu_core.Lower.pseudocode (scheduled k sched))
  in
  Cmd.v (Cmd.info "show" ~doc) Term.(const run $ kernel_arg $ sched_arg)

let cc_cmd =
  let doc = "Emit C source for a kernel." in
  let run name sched paper target trace dump_after =
    let k = find_kernel name in
    let f = scheduled k sched in
    let tracer = cli_tracer ~target ~trace ~dump_after ~name:k.k_name () in
    let lowered = P.lower ?tracer f in
    let params = if paper then k.params_paper else k.params_small in
    let buffers =
      List.map
        (fun ((b : Tiramisu_core.Ir.buffer), dims) ->
          (b.Tiramisu_core.Ir.buf_name, dims))
        (Tiramisu_core.Lower.buffer_extents f ~params)
    in
    print_string
      (Tiramisu_codegen.C_emit.emit_function ~name:k.k_name
         ~params:(List.map fst params) ~buffers
         lowered.Tiramisu_core.Lower.ast);
    report_tracer ~trace tracer
  in
  Cmd.v (Cmd.info "cc" ~doc)
    Term.(
      const run $ kernel_arg $ sched_arg $ paper_arg $ target_arg $ trace_arg
      $ dump_after_arg)

let run_cmd =
  let doc = "Execute a kernel (small size) and report counters / time." in
  let run name sched native target trace dump_after =
    let k = find_kernel name in
    let f = scheduled k sched in
    let tracer = cli_tracer ~target ~trace ~dump_after ~name:k.k_name () in
    let params = k.params_small in
    if native then begin
      let t0 = Tiramisu_backends.Clock.now_ms () in
      let art =
        Runner.build_native ?tracer ~target ~fn:f ~params ~inputs:k.inputs ()
      in
      B.Exec.run art.P.exec;
      Printf.printf "native execution (%s) ok in %.3f ms\n"
        (B.Target.to_string target)
        (Tiramisu_backends.Clock.now_ms () -. t0)
    end
    else begin
      let lowered = P.lower ?tracer f in
      let interp =
        Runner.interp_of ~params ~extents:(P.extents_of_fn f ~params)
          ~inputs:k.inputs lowered.Tiramisu_core.Lower.ast
      in
      let c = B.Interp.counters interp in
      Printf.printf
        "executed: %d stores, %d loads, %d flops, %d messages (%d bytes)\n"
        c.B.Interp.stores c.B.Interp.loads c.B.Interp.flops
        c.B.Interp.messages c.B.Interp.bytes_sent
    end;
    report_tracer ~trace tracer
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ kernel_arg $ sched_arg $ native_arg $ target_arg $ trace_arg
      $ dump_after_arg)

let model_cmd =
  let doc = "Machine-model estimate (Xeon E5-2680v3 / Tesla K40)." in
  let run name sched paper =
    let k = find_kernel name in
    let f = scheduled k sched in
    let params = if paper then k.params_paper else k.params_small in
    let r = Runner.model ~fn:f ~params () in
    Format.printf "%a@." B.Cost.pp_report r
  in
  Cmd.v (Cmd.info "model" ~doc)
    Term.(const run $ kernel_arg $ sched_arg $ paper_arg)

let legal_cmd =
  let doc = "Check the schedule against the dependence analysis." in
  let run name sched =
    let k = find_kernel name in
    let f = scheduled k sched in
    match Tiramisu_deps.Deps.check_legality f with
    | [] -> print_endline "legal: all flow dependences preserved"
    | vs ->
        List.iter
          (fun v ->
            Format.printf "VIOLATION: %a@." Tiramisu_deps.Deps.pp_violation v)
          vs;
        exit 1
  in
  Cmd.v (Cmd.info "legal" ~doc) Term.(const run $ kernel_arg $ sched_arg)

let autoschedule_cmd =
  let doc =
    "Search the schedule space (beam search over tile/fuse/interchange/\
     parallelize/vectorize/unroll pipelines, legality-oracle pruned, \
     cost-model ranked, measured through the compile cache) and print the \
     best schedule found as a replayable OCaml action list."
  in
  let budget_arg =
    Arg.(
      value & opt float 30.0
      & info [ "budget" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget for the whole search (anytime).")
  in
  let rounds_arg =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"N" ~doc:"Beam rounds.")
  in
  let beam_arg =
    Arg.(value & opt int 4 & info [ "beam" ] ~docv:"N" ~doc:"Beam width.")
  in
  let verbose_arg =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Progress on stderr.")
  in
  let run name paper target budget rounds beam verbose =
    let k = find_kernel name in
    let params = if paper then k.params_paper else k.params_small in
    let config =
      {
        Tiramisu_autosched.Search.default_config with
        Tiramisu_autosched.Search.budget_ms = budget *. 1000.0;
        rounds;
        beam_width = beam;
        target;
        verbose;
      }
    in
    let r =
      Runner.autoschedule ~config ~name:k.k_name ~build:k.build ~params
        ~inputs:k.inputs ()
    in
    Format.printf "%a@." Tiramisu_autosched.Search.pp_result r;
    if not r.Tiramisu_autosched.Search.r_verified then begin
      prerr_endline "autoschedule: winner failed bit-exact replay";
      exit 1
    end
  in
  Cmd.v (Cmd.info "autoschedule" ~doc)
    Term.(
      const run $ kernel_arg $ paper_arg $ target_arg $ budget_arg
      $ rounds_arg $ beam_arg $ verbose_arg)

let compile_cmd =
  let doc = "Compile a textual .tir pipeline (see lib/frontend)." in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let emit_c_arg =
    Arg.(value & flag & info [ "emit-c" ] ~doc:"Emit C instead of pseudocode.")
  in
  let run file emit_c trace dump_after =
    match Tiramisu_frontend.Frontend.parse_file file with
    | exception Tiramisu_frontend.Frontend.Parse_error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
    | f ->
        (match Tiramisu_deps.Deps.check_legality f with
        | [] -> prerr_endline "legality: ok"
        | vs ->
            List.iter
              (fun v ->
                Format.eprintf "VIOLATION: %a@."
                  Tiramisu_deps.Deps.pp_violation v)
              vs);
        let tracer =
          cli_tracer ~trace ~dump_after ~name:f.Tiramisu_core.Ir.fn_name ()
        in
        (match
           if emit_c then begin
             let lowered = P.lower ?tracer f in
             print_string
               (Tiramisu_codegen.C_emit.emit_function
                  ~name:f.Tiramisu_core.Ir.fn_name
                  ~params:f.Tiramisu_core.Ir.params ~buffers:[]
                  lowered.Tiramisu_core.Lower.ast)
           end
           else if trace || dump_after <> None then
             (* pseudocode lowers internally; trace the pipeline run. *)
             ignore (P.lower ?tracer f)
         with
        | () -> ()
        | exception P.Error e ->
            Printf.eprintf "%s\n" (P.error_to_string e);
            exit 1);
        if not emit_c then print_endline (Tiramisu_core.Lower.pseudocode f);
        report_tracer ~trace tracer
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(const run $ file_arg $ emit_c_arg $ trace_arg $ dump_after_arg)

(* ---------------- compile service over a unix-domain socket ---------------- *)

module S = Tiramisu_service.Service

(* One-shot wire protocol, shared by [serve] and [client] (both ends are
   this binary, so Marshal is safe): magic, then a marshalled request,
   then a marshalled reply.  The magic guards against pointing the client
   at something that is not a tiramisuc server. *)
let wire_magic = "TIRSRV1\n"

type wire_request = {
  w_kernel : string;
  w_sched : string;
  w_paper : bool;
  w_deadline_s : float option;
}

type wire_reply =
  | Wire_done of S.response
  | Wire_rejected
  | Wire_failed of string

let source_name = function
  | `Compiled -> "compiled"
  | `Disk -> "disk"
  | `Mem -> "mem"

(* Registry lookup that reports instead of exiting: the server must
   survive a client asking for a kernel that does not exist. *)
let kernel_request ?deadline_s ~kernel ~sched ~paper () =
  match List.find_opt (fun k -> k.k_name = kernel) kernels with
  | None -> Error (Printf.sprintf "unknown kernel %s" kernel)
  | Some k -> (
      match List.assoc_opt sched k.schedules with
      | None ->
          Error
            (Printf.sprintf "kernel %s has no schedule %s (available: %s)"
               kernel sched
               (String.concat ", " (List.map fst k.schedules)))
      | Some apply ->
          let f = k.build () in
          apply f;
          let params = if paper then k.params_paper else k.params_small in
          Ok (k, S.request_of_fn ?deadline_s ~fn:f ~params ()))

let handle_connection sv fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let reply =
        try
          let magic = really_input_string ic (String.length wire_magic) in
          if not (String.equal magic wire_magic) then
            Wire_failed "bad protocol magic"
          else
            let (w : wire_request) = Marshal.from_channel ic in
            match
              kernel_request ?deadline_s:w.w_deadline_s ~kernel:w.w_kernel
                ~sched:w.w_sched ~paper:w.w_paper ()
            with
            | Error msg -> Wire_failed msg
            | Ok (_, req) -> (
                match S.submit sv req with
                | S.Done rs -> Wire_done rs
                | S.Rejected -> Wire_rejected
                | S.Failed msg -> Wire_failed msg)
        with e -> Wire_failed (Printexc.to_string e)
      in
      (try
         Marshal.to_channel oc reply [];
         flush oc
       with Sys_error _ -> ()))

let serve_cmd =
  let doc =
    "Run the compile service on a unix-domain socket: worker-domain pool, \
     in-flight dedup, in-memory LRU and the persistent content-addressed \
     artifact store."
  in
  let socket_arg =
    Arg.(
      value
      & opt string "/tmp/tiramisuc.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"Compile worker domains (0 = one per available core).")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string "_tiramisu_artifacts"
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Root of the on-disk artifact store.")
  in
  let max_requests_arg =
    Arg.(
      value & opt int 0
      & info [ "max-requests" ] ~docv:"N"
          ~doc:
            "Exit after accepting N connections (0 = serve forever).  For \
             scripted smoke tests.")
  in
  let run socket workers cache_dir max_requests =
    (try Sys.remove socket with Sys_error _ -> ());
    let sv =
      S.create
        ?workers:(if workers > 0 then Some workers else None)
        ~root:cache_dir ()
    in
    let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind srv (Unix.ADDR_UNIX socket);
    Unix.listen srv 64;
    Printf.printf "tiramisuc serve: listening on %s (store: %s)\n%!" socket
      cache_dir;
    let threads = ref [] in
    let served = ref 0 in
    while max_requests = 0 || !served < max_requests do
      match Unix.accept srv with
      | fd, _ ->
          incr served;
          threads := Thread.create (handle_connection sv) fd :: !threads
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done;
    List.iter Thread.join !threads;
    Unix.close srv;
    (try Sys.remove socket with Sys_error _ -> ());
    S.shutdown sv;
    let st = S.stats sv in
    Printf.printf
      "served %d requests: %d compiled, %d mem hits, %d disk hits, %d dedup \
       waits, %d rejected, %d failed\n"
      st.S.requests st.S.compiles st.S.mem_hits st.S.disk_hits
      st.S.dedup_waits st.S.rejected st.S.failed
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ workers_arg $ cache_dir_arg $ max_requests_arg)

let client_cmd =
  let doc =
    "Submit a kernel to a running $(b,tiramisuc serve) and report where \
     the artifact came from."
  in
  let socket_arg =
    Arg.(
      value
      & opt string "/tmp/tiramisuc.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "n" ] ~docv:"N" ~doc:"Submit the request N times.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Per-request compile deadline (cooperative).")
  in
  let run_flag =
    Arg.(
      value & flag
      & info [ "run" ]
          ~doc:
            "Compile the returned prepared statement locally (backend stage \
             only) and execute it once.")
  in
  let run name sched paper socket repeats deadline do_run =
    let submit () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX socket);
          let oc = Unix.out_channel_of_descr fd in
          output_string oc wire_magic;
          Marshal.to_channel oc
            { w_kernel = name; w_sched = sched; w_paper = paper;
              w_deadline_s = deadline }
            [];
          flush oc;
          (Marshal.from_channel (Unix.in_channel_of_descr fd) : wire_reply))
    in
    let failures = ref 0 in
    for i = 1 to repeats do
      match submit () with
      | Wire_done rs ->
          Printf.printf "[%d/%d] %s  key=%s  source=%s  %.3f ms\n" i repeats
            name rs.S.rs_key (source_name rs.S.rs_source) rs.S.rs_ms;
          if do_run then begin
            match kernel_request ~kernel:name ~sched ~paper () with
            | Error msg ->
                Printf.eprintf "local instantiation failed: %s\n" msg;
                incr failures
            | Ok (k, req) ->
                let exec = S.instantiate req rs ~inputs:k.inputs in
                let t0 = B.Clock.now_ms () in
                B.Exec.run exec;
                Printf.printf "  ran locally in %.3f ms\n"
                  (B.Clock.now_ms () -. t0)
          end
      | Wire_rejected ->
          Printf.printf "[%d/%d] %s  REJECTED (admission queue full)\n" i
            repeats name;
          incr failures
      | Wire_failed msg ->
          Printf.printf "[%d/%d] %s  FAILED: %s\n" i repeats name msg;
          incr failures
    done;
    if !failures > 0 then exit 1
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ kernel_arg $ sched_arg $ paper_arg $ socket_arg
      $ repeat_arg $ deadline_arg $ run_flag)

let () =
  let doc = "Tiramisu-OCaml compiler driver (CGO'19 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "tiramisuc" ~doc ~version:"1.0")
          [ list_cmd; show_cmd; cc_cmd; run_cmd; model_cmd; legal_cmd;
            autoschedule_cmd; compile_cmd; serve_cmd; client_cmd ]))
