(* Differential fuzzer CLI: `dune exec bin/fuzz.exe -- -count 500`.

   Exit status 0 when every case passes (oracle-rejected cases cannot occur
   for generated cases — the generator only emits vetted schedules); 1 when
   any configuration diverged, printing the shrunk case as an OCaml literal
   ready to paste into test/test_fuzz.ml's replay corpus. *)

module F = Tiramisu_fuzz

let () =
  let seed = ref 0 and count = ref 500 and verbose = ref false in
  let no_shrink = ref false in
  Arg.parse
    [
      ("-seed", Arg.Set_int seed, "base seed (default 0)");
      ("-count", Arg.Set_int count, "number of cases (default 500)");
      ("-v", Arg.Set verbose, "print every case outcome");
      ("-no-shrink", Arg.Set no_shrink, "report failures unshrunk");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "fuzz [-seed N] [-count N] [-v]";
  (* A fixed small pool keeps parallel-strategy runs deterministic in
     resource usage across machines. *)
  Tiramisu_backends.Pool.set_num_workers 4;
  let t0 = Unix.gettimeofday () in
  let r =
    F.Fuzz.campaign ~verbose:!verbose ~shrink:(not !no_shrink) ~seed:!seed
      ~count:!count ()
  in
  F.Fuzz.print_report r;
  Printf.printf "elapsed: %.1fs\n" (Unix.gettimeofday () -. t0);
  if r.F.Fuzz.failures <> [] then exit 1
