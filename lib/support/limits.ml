(* Wall-clock guard for the polyhedral machinery.  Deeply stacked
   split/tile schedules can blow up the Omega-test elimination in the
   legality check (exponential constraint growth), so both candidate
   vetting and case execution run under an alarm: a candidate that cannot
   be decided in time is dropped, never allowed to wedge the campaign.
   SIGALRM raises at the next allocation point — the presburger code
   allocates constantly, so delivery is prompt. *)

exception Timeout

let with_time_limit secs f =
  let old =
    Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timeout))
  in
  ignore (Unix.alarm secs);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.alarm 0);
      Sys.set_signal Sys.sigalrm old)
    (fun () -> try Some (f ()) with Timeout -> None)
