(* Wall-clock guards for the polyhedral machinery and the compile service.

   Two mechanisms, picked by context:

   - [with_time_limit]: the SIGALRM guard.  Deeply stacked split/tile
     schedules can blow up the Omega-test elimination in the legality
     check (exponential constraint growth), so both candidate vetting and
     case execution run under an alarm: a candidate that cannot be
     decided in time is dropped, never allowed to wedge the campaign.
     SIGALRM raises at the next allocation point — the presburger code
     allocates constantly, so delivery is prompt.  But the alarm and the
     handler are PROCESS-GLOBAL state: two domains arming alarms race
     each other's [Unix.alarm] resets, and the signal is delivered to
     whichever domain the runtime picks — a slow Omega-test query on one
     domain could fire [Timeout] into an unrelated domain's compile.
     [with_time_limit] therefore only arms the alarm on the main domain.

   - [with_deadline] / [check_deadline]: the cooperative guard.  The
     deadline is domain-local state; the guarded code observes it by
     calling [check_deadline] at its safe points (the pipeline checks at
     every pass boundary).  No signals, no cross-domain interference —
     this is the only guard the concurrent compile service uses, and
     what [with_time_limit] degrades to off the main domain. *)

exception Timeout

(* ---------- cooperative deadline guard (domain-safe) ---------- *)

(* Absolute deadline (epoch seconds) for the current domain, [None] when
   unguarded.  Domain-local: a deadline set by a service worker is
   invisible to every other domain. *)
let deadline_key : float option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let deadline_remaining () =
  match Domain.DLS.get deadline_key with
  | None -> None
  | Some t -> Some (t -. Unix.gettimeofday ())

let deadline_expired () =
  match deadline_remaining () with Some r -> r <= 0.0 | None -> false

let check_deadline () = if deadline_expired () then raise Timeout

(** [with_deadline secs f] runs [f] with the current domain's deadline set
    [secs] from now (nested deadlines keep the tighter one) and returns
    [Some (f ())], or [None] if [f] raised {!Timeout} — which only happens
    at [f]'s own {!check_deadline} points; nothing fires asynchronously. *)
let with_deadline secs f =
  let prev = Domain.DLS.get deadline_key in
  let t = Unix.gettimeofday () +. secs in
  let t = match prev with Some p -> Float.min p t | None -> t in
  Domain.DLS.set deadline_key (Some t);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set deadline_key prev)
    (fun () -> try Some (f ()) with Timeout -> None)

(* ---------- SIGALRM guard (main domain only) ---------- *)

let with_time_limit secs f =
  if Domain.is_main_domain () then begin
    let old =
      Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> raise Timeout))
    in
    ignore (Unix.alarm secs);
    Fun.protect
      ~finally:(fun () ->
        ignore (Unix.alarm 0);
        Sys.set_signal Sys.sigalrm old)
      (fun () -> try Some (f ()) with Timeout -> None)
  end
  else
    (* Arming SIGALRM here would race the main domain's alarms and could
       deliver the signal into unrelated code; degrade to the cooperative
       deadline — [f] is interrupted at its [check_deadline] points. *)
    with_deadline (float_of_int secs) f
