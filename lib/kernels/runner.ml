open Tiramisu_core
module B = Tiramisu_backends
module P = Tiramisu_pipeline.Pipeline

(* The one buffer-setup everything shares: allocate every buffer of the
   function at its concrete extents, then fill the declared inputs. *)
let interp_of ~params ~extents ~inputs ast =
  let interp = B.Interp.create ~params () in
  List.iter
    (fun (name, dims, mem) ->
      B.Interp.add_buffer interp (B.Buffers.create ~mem name dims))
    extents;
  List.iter
    (fun (name, fill) -> B.Buffers.fill (B.Interp.buffer interp name) fill)
    inputs;
  B.Interp.run interp ast;
  interp

let prepare ~fn ~params ~inputs =
  (* Lower once; each call of the thunk re-creates buffers and executes the
     generated code (used by the wall-clock micro-benchmarks). *)
  let lowered = P.lower fn in
  let extents = P.extents_of_fn fn ~params in
  fun () -> interp_of ~params ~extents ~inputs lowered.Lower.ast

let run ~fn ~params ~inputs =
  let lowered = P.lower fn in
  interp_of ~params ~extents:(P.extents_of_fn fn ~params) ~inputs
    lowered.Lower.ast

let model ?machine ~fn ~params () =
  let lowered = P.lower fn in
  B.Cost.estimate ?machine ~params ~buffers:(P.extents_of_fn fn ~params)
    lowered.Lower.ast

let check ~fn ~params ~inputs ~output ~expect ?(eps = 1e-3) () =
  let interp = run ~fn ~params ~inputs in
  let buf = B.Interp.buffer interp output in
  let bad = ref None in
  let rank = Array.length buf.B.Buffers.dims in
  let idx = Array.make rank 0 in
  let n = B.Buffers.size buf in
  (try
     for flat = 0 to n - 1 do
       let r = ref flat in
       for k = rank - 1 downto 0 do
         idx.(k) <- !r mod buf.B.Buffers.dims.(k);
         r := !r / buf.B.Buffers.dims.(k)
       done;
       let got = buf.B.Buffers.data.(flat) in
       let want = expect idx in
       if Float.abs (got -. want) > eps then begin
         bad :=
           Some
             (Printf.sprintf "%s%s: got %g, want %g" output
                (String.concat ""
                   (List.map (Printf.sprintf "[%d]") (Array.to_list idx)))
                got want);
         raise Exit
       end
     done
   with Exit -> ());
  match !bad with None -> Ok () | Some m -> Error m

let build_native ?tracer ?(target = B.Target.default) ?(tape = true)
    ?(lanes = P.default_knobs.P.lanes) ~fn ~params ~inputs () =
  (* Lower and compile through the pipeline's compile cache — identical
     (fn, params, knobs) configurations reuse the compiled executor with
     buffers restored to their freshly-filled state. *)
  let knobs = { P.default_knobs with P.target; P.tape; P.lanes = lanes } in
  P.build ?tracer ~knobs ~fn ~params ~inputs ()

let prepare_native ?tracer ?target ?tape ?lanes ~fn ~params ~inputs () =
  (build_native ?tracer ?target ?tape ?lanes ~fn ~params ~inputs ()).P.exec

let run_native ?target ?tape ?lanes ~fn ~params ~inputs () =
  (* Closure-compiled execution (the fast backend); same contract as
     {!run}. *)
  let compiled =
    prepare_native ?target ?tape ?lanes ~fn ~params ~inputs ()
  in
  B.Exec.run compiled;
  compiled

module Search = Tiramisu_autosched.Search

let autoschedule ?config ~name ~build ~params ~inputs ?outputs () =
  (* Measurement-driven schedule search (see {!Tiramisu_autosched.Search}).
     [outputs] defaults to every non-input buffer of the pipeline — the
     winner is replayed bit-exactly against the interpreter on all of
     them. *)
  let outputs =
    match outputs with
    | Some o -> o
    | None ->
        let fn = build () in
        (* lowering materializes the auto buffers the defaults range over *)
        ignore (P.lower fn : Lower.t);
        List.filter_map
          (fun (n, _, _) ->
            if List.mem_assoc n inputs then None else Some n)
          (P.extents_of_fn fn ~params)
  in
  Search.run ?config { Search.name; build; params; inputs; outputs }
