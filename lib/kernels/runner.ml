open Tiramisu_core
module B = Tiramisu_backends

let prepare ~fn ~params ~inputs =
  (* Lower once; each call of the thunk re-creates buffers and executes the
     generated code (used by the wall-clock micro-benchmarks). *)
  let lowered = Lower.lower fn in
  let extents = Lower.buffer_extents fn ~params in
  fun () ->
    let interp = B.Interp.create ~params () in
    List.iter
      (fun ((b : Ir.buffer), dims) ->
        B.Interp.add_buffer interp
          (B.Buffers.create ~mem:b.Ir.buf_mem b.Ir.buf_name dims))
      extents;
    List.iter
      (fun (name, fill) -> B.Buffers.fill (B.Interp.buffer interp name) fill)
      inputs;
    B.Interp.run interp lowered.Lower.ast;
    interp

let run ~fn ~params ~inputs =
  let lowered = Lower.lower fn in
  let interp = B.Interp.create ~params () in
  List.iter
    (fun ((b : Ir.buffer), dims) ->
      B.Interp.add_buffer interp (B.Buffers.create ~mem:b.Ir.buf_mem b.Ir.buf_name dims))
    (Lower.buffer_extents fn ~params);
  List.iter
    (fun (name, fill) ->
      let buf = B.Interp.buffer interp name in
      B.Buffers.fill buf fill)
    inputs;
  B.Interp.run interp lowered.Lower.ast;
  interp

let model ?machine ~fn ~params () =
  let lowered = Lower.lower fn in
  let buffers =
    List.map
      (fun ((b : Ir.buffer), dims) -> (b.Ir.buf_name, dims, b.Ir.buf_mem))
      (Lower.buffer_extents fn ~params)
  in
  B.Cost.estimate ?machine ~params ~buffers lowered.Lower.ast

let check ~fn ~params ~inputs ~output ~expect ?(eps = 1e-3) () =
  let interp = run ~fn ~params ~inputs in
  let buf = B.Interp.buffer interp output in
  let bad = ref None in
  let rank = Array.length buf.B.Buffers.dims in
  let idx = Array.make rank 0 in
  let n = B.Buffers.size buf in
  (try
     for flat = 0 to n - 1 do
       let r = ref flat in
       for k = rank - 1 downto 0 do
         idx.(k) <- !r mod buf.B.Buffers.dims.(k);
         r := !r / buf.B.Buffers.dims.(k)
       done;
       let got = buf.B.Buffers.data.(flat) in
       let want = expect idx in
       if Float.abs (got -. want) > eps then begin
         bad :=
           Some
             (Printf.sprintf "%s%s: got %g, want %g" output
                (String.concat ""
                   (List.map (Printf.sprintf "[%d]") (Array.to_list idx)))
                got want);
         raise Exit
       end
     done
   with Exit -> ());
  match !bad with None -> Ok () | Some m -> Error m

let prepare_native ?(parallel = `Pool) ~fn ~params ~inputs () =
  (* Lower and compile without running — the wall-clock benchmarks compile
     once and time [B.Exec.run] over many repetitions. *)
  let lowered = Lower.lower fn in
  let buffers =
    List.map
      (fun ((b : Ir.buffer), dims) ->
        B.Buffers.create ~mem:b.Ir.buf_mem b.Ir.buf_name dims)
      (Lower.buffer_extents fn ~params)
  in
  List.iter
    (fun (name, fill) ->
      match List.find_opt (fun b -> b.B.Buffers.name = name) buffers with
      | Some b -> B.Buffers.fill b fill
      | None -> invalid_arg ("prepare_native: unknown input " ^ name))
    inputs;
  B.Exec.compile ~parallel ~params ~buffers lowered.Lower.ast

let run_native ?parallel ~fn ~params ~inputs () =
  (* Closure-compiled execution (the fast backend); same contract as
     {!run}. *)
  let compiled = prepare_native ?parallel ~fn ~params ~inputs () in
  B.Exec.run compiled;
  compiled
