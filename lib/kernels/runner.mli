(** Uniform execution and modeling entry points for the benchmark kernels. *)

open Tiramisu_core
module B = Tiramisu_backends

val interp_of :
  params:(string * int) list ->
  extents:(string * int array * Tiramisu_codegen.Loop_ir.mem_space) list ->
  inputs:(string * (int array -> float)) list ->
  Tiramisu_codegen.Loop_ir.stmt ->
  B.Interp.t
(** The shared buffer setup: allocate every declared buffer, fill the
    inputs, run the statement on the reference interpreter. *)

val prepare :
  fn:Ir.fn ->
  params:(string * int) list ->
  inputs:(string * (int array -> float)) list ->
  (unit -> B.Interp.t)
(** Lower once and return a thunk that executes the generated code (for
    wall-clock measurement without recompilation). *)

val run :
  fn:Ir.fn ->
  params:(string * int) list ->
  inputs:(string * (int array -> float)) list ->
  B.Interp.t
(** Lower the pipeline and execute it with the reference interpreter; input
    buffers are filled from the given functions, every other buffer starts
    zeroed.  Returns the interpreter (query outputs via
    {!B.Interp.buffer}). *)

val model :
  ?machine:B.Machine.t ->
  fn:Ir.fn ->
  params:(string * int) list ->
  unit ->
  B.Cost.report
(** Lower the pipeline and estimate its execution time on the machine
    model. *)

val check :
  fn:Ir.fn ->
  params:(string * int) list ->
  inputs:(string * (int array -> float)) list ->
  output:string ->
  expect:(int array -> float) ->
  ?eps:float ->
  unit ->
  (unit, string) result
(** Run and compare the named output buffer element-wise against [expect]. *)

val build_native :
  ?tracer:Tiramisu_pipeline.Pipeline.tracer ->
  ?target:B.Target.t ->
  ?tape:bool ->
  ?lanes:int ->
  fn:Ir.fn ->
  params:(string * int) list ->
  inputs:(string * (int array -> float)) list ->
  unit ->
  Tiramisu_pipeline.Pipeline.artifact
(** Lower, allocate and fill buffers, and compile through the pipeline's
    compile cache — without running.  The returned artifact says whether
    the compile was a cache hit and carries the structural hash of the
    lowered statement.  [target] (default {!B.Target.default}, the pool
    CPU) selects the execution backend; [tape] (default [true]) gates the
    flat-tape backend, the knob the benchmarks use for their tape-off
    control; [lanes] (default the pipeline's, 8) is the vector lane width
    claimed nests are bound with ([<= 1] forces the scalar tape, the
    benchmarks' vector-off control). *)

val prepare_native :
  ?tracer:Tiramisu_pipeline.Pipeline.tracer ->
  ?target:B.Target.t ->
  ?tape:bool ->
  ?lanes:int ->
  fn:Ir.fn ->
  params:(string * int) list ->
  inputs:(string * (int array -> float)) list ->
  unit ->
  B.Exec.compiled
(** [build_native] returning just the executor.  The wall-clock benchmarks
    compile once and time [B.Exec.run] repeatedly. *)

val run_native :
  ?target:B.Target.t ->
  ?tape:bool ->
  ?lanes:int ->
  fn:Ir.fn ->
  params:(string * int) list ->
  inputs:(string * (int array -> float)) list ->
  unit ->
  B.Exec.compiled
(** Closure-compiled execution with real multicore parallelism (OCaml 5
    domains on the persistent pool); the fast counterpart of {!run}. *)

val autoschedule :
  ?config:Tiramisu_autosched.Search.config ->
  name:string ->
  build:(unit -> Ir.fn) ->
  params:(string * int) list ->
  inputs:(string * (int array -> float)) list ->
  ?outputs:string list ->
  unit ->
  Tiramisu_autosched.Search.result
(** Measurement-driven schedule search over [build ()]'s schedule space
    (see {!Tiramisu_autosched.Search}).  [outputs] — the buffers the
    winner must replay bit-exactly against the interpreter — defaults to
    every non-input buffer of the pipeline. *)
