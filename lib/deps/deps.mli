(** Exact dependence analysis and schedule legality (paper §II, §V).

    Tiramisu "avoids over-conservative constraints by relying on dependence
    analysis to check for the correctness of code transformations, enabling
    more possible schedules" — in contrast to Halide's conservative rules
    (no fusion when the second loop reads the first's output, acyclic
    dataflow only).  This module implements that analysis on the presburger
    substrate:

    - {e flow dependences} come from Layer I's explicit producer-consumer
      edges (value-based, exact up to the §V-B over-approximation of
      clamped accesses);
    - {e memory dependences} (flow/anti/output through buffers) come from
      Layer III access relations and catch hazards introduced by data-layout
      decisions;
    - {e legality} checks that a schedule executes every producer instance
      strictly before its consumers, by per-level emptiness of the violation
      sets (the Omega test makes this exact). *)

type kind = Flow | Anti | Output

type dep = {
  src : Tiramisu_core.Ir.computation;
  dst : Tiramisu_core.Ir.computation;
  kind : kind;
  rel : Tiramisu_presburger.Poly.t list;
      (** pieces over columns [params; src iters; dst iters] *)
}

val flow_deps : Tiramisu_core.Ir.fn -> dep list
(** Producer-consumer dependences of the algorithm (Layer I). *)

val memory_deps : Tiramisu_core.Ir.fn -> dep list
(** Buffer-based dependences after data mapping (Layer III): all pairs of
    accesses to the same buffer where at least one writes. *)

val is_empty_dep : dep -> bool

type violation = {
  dep : dep;
  level : int;  (** time dimension at which the order breaks *)
  carried : bool;
      (** [false]: the mapping reverses (or collapses) the order at
          [level].  [true]: the mapping orders the dependence at [level],
          but the generated loop there is tagged order-relaxing (parallel,
          vectorized, gpu, distributed), so the carried dependence races. *)
}

val check_legality : Tiramisu_core.Ir.fn -> violation list
(** Empty list = the current schedules preserve every flow dependence, and
    no flow dependence is carried by a loop whose hardware tag relaxes
    execution order.  Tag legality mirrors code generation's loop sharing:
    computations fused into one generated loop share its tag, so a
    [Parallel] tag contributed by any of them is checked against the
    dependences of all of them.  Computations under [compute_at] are
    validated separately by {!compute_at_covered} and skipped here. *)

val compute_at_covered : Tiramisu_core.Ir.fn -> Tiramisu_core.Ir.computation -> bool
(** For a producer scheduled with [compute_at]: does every consumer read hit
    an instance computed in the same or an earlier tile?  (Overlapped tiling
    makes this true by construction; this is the verification.) *)

val legal_under_schedule : Tiramisu_core.Ir.fn -> (unit, string) result
(** The one-call schedule-legality oracle: [Ok ()] iff {!check_legality}
    reports no violation and every [compute_at] producer passes
    {!compute_at_covered}.  [Error msg] describes every violated dependence
    (kind, endpoints, time level).  This is the check the differential
    fuzzer runs on each randomly generated schedule before execution.  It
    validates both the time-space mapping and the hardware tags: a
    dependence carried by a parallelized or vectorized loop is reported
    even though the mapping itself orders it correctly. *)

val widen_parallel :
  Tiramisu_core.Ir.fn -> (string * string) list * (unit -> unit)
(** Grow each computation's parallel band before lowering: [Seq] dynamic
    dims contiguous with the existing [Parallel] band (just outside its
    outermost dim, or just inside its innermost) are trial-retagged
    [Parallel] and kept only when {!check_legality} still reports no
    violation — each trial is vetted against the whole function, so tags
    shared through loop fusion are checked against every fused
    computation's dependences.  Greedy and deterministic; computations that
    are inlined, [compute_at]-scheduled, or have no [Parallel] dim are left
    alone.  Returns the accepted [(computation, dim-name)] pairs
    (outermost-first per computation) and an undo closure restoring every
    mutated tag, so a caller can widen, lower, and hand the user's
    schedule back unchanged. *)

val has_cycle : Tiramisu_core.Ir.fn -> bool
(** Does the computation-level dataflow graph contain a cycle?  Tiramisu
    supports cyclic graphs (edgeDetector, §VI-B); the Halide baseline
    rejects them. *)

val pp_dep : Format.formatter -> dep -> unit
val pp_violation : Format.formatter -> violation -> unit
