open Tiramisu_presburger
open Tiramisu_core
open Ir

type kind = Flow | Anti | Output

type dep = {
  src : Ir.computation;
  dst : Ir.computation;
  kind : kind;
  rel : Poly.t list;
}

let kind_str = function Flow -> "flow" | Anti -> "anti" | Output -> "output"

let sren x = "s@" ^ x
let dren x = "d@" ^ x

(* Rename everything except parameters. *)
let rename_aff_np ~params f a =
  Aff.subst a (fun n ->
      if List.mem n params then None else Some (Aff.var (f n)))

let rename_cstr ~params f = function
  | Cstr.Eq (a, b) -> Cstr.Eq (rename_aff_np ~params f a, rename_aff_np ~params f b)
  | Cstr.Le (a, b) -> Cstr.Le (rename_aff_np ~params f a, rename_aff_np ~params f b)
  | Cstr.Lt (a, b) -> Cstr.Lt (rename_aff_np ~params f a, rename_aff_np ~params f b)
  | Cstr.Ge (a, b) -> Cstr.Ge (rename_aff_np ~params f a, rename_aff_np ~params f b)
  | Cstr.Gt (a, b) -> Cstr.Gt (rename_aff_np ~params f a, rename_aff_np ~params f b)

(* Lift a domain poly (over [params; iters]) into [cols], assuming the
   renamed iterators appear contiguously in cols starting at [at]. *)
let lift_domain ~np ~at ~total p =
  let ni = Poly.dim p - np in
  (* insert columns between params and iters, then after iters *)
  let p = Poly.insert_vars p ~at:np ~count:(at - np) in
  Poly.insert_vars p ~at:(at + ni) ~count:(total - (at + ni))

(* Flow dependences from Layer I producer-consumer edges. *)
let flow_deps fn =
  let params = fn.params in
  let np = List.length params in
  let regulars =
    List.filter (fun (c : computation) -> c.kind = Regular && not c.inlined) fn.comps
  in
  List.concat_map
    (fun (dst : computation) ->
      let expr = Lower.expand fn dst.expr in
      let accs = Expr.accesses expr in
      List.filter_map
        (fun (pname, idx) ->
          match
            List.find_opt
              (fun (p : computation) -> p.comp_name = pname && p.kind = Regular && not p.inlined)
              regulars
          with
          | None -> None
          | Some src ->
              let s_iters = List.map sren src.iters in
              let d_iters = List.map dren dst.iters in
              let cols = Array.of_list (params @ s_iters @ d_iters) in
              let total = Array.length cols in
              let nsi = List.length s_iters in
              let base = Poly.universe total in
              (* index linking constraints *)
              let base =
                List.fold_left
                  (fun acc (k, (e : Ir.expr)) ->
                    let coord = Aff.var (List.nth s_iters k) in
                    let cs =
                      match
                        Expr.to_aff ~iters:dst.iters ~params e
                      with
                      | Some a ->
                          [ Cstr.Eq (coord, rename_aff_np ~params dren a) ]
                      | None -> (
                          match
                            Expr.index_range ~iters:dst.iters ~params e
                          with
                          | Some (lo, hi) ->
                              [
                                Cstr.Ge (coord, rename_aff_np ~params dren lo);
                                Cstr.Le (coord, rename_aff_np ~params dren hi);
                              ]
                          | None ->
                              (* Unanalyzable index: any producer instance
                                 may be read. *)
                              [])
                    in
                    List.fold_left
                      (fun acc c ->
                        match Cstr.to_row ~cols c with
                        | `Eq r -> Poly.add_eq acc r
                        | `Ineq r -> Poly.add_ineq acc r)
                      acc cs)
                  base
                  (List.mapi (fun k e -> (k, e)) idx)
              in
              let rel =
                List.concat_map
                  (fun sp ->
                    List.map
                      (fun dp ->
                        let sp' = lift_domain ~np ~at:np ~total sp in
                        let dp' = lift_domain ~np ~at:(np + nsi) ~total dp in
                        Poly.intersect base (Poly.intersect sp' dp'))
                      dst.domain.Iset.polys)
                  src.domain.Iset.polys
              in
              let rel = List.filter (fun p -> not (Poly.is_empty p)) rel in
              if rel = [] then None
              else Some { src; dst; kind = Flow; rel })
        accs)
    regulars

(* Memory dependences through shared buffers (Layer III). *)
let memory_deps fn =
  let params = fn.params in
  let np = List.length params in
  let stored =
    List.filter_map
      (fun (c : computation) ->
        match (c.kind, c.access, c.inlined) with
        | Regular, Some a, false -> Some (c, a)
        | _ -> None)
      fn.comps
  in
  (* Reads of buffer b: consumer c accessing producer p stored in b, at
     index A_p(g(c)). *)
  let reads =
    List.concat_map
      (fun ((c : computation), _) ->
        List.filter_map
          (fun (pname, idx) ->
            match List.find_opt (fun (p, _) -> p.comp_name = pname) stored with
            | Some (p, pa) ->
                (* buffer index k = acc_idx_k with p.iters bound to idx *)
                let bind k =
                  let a = List.nth pa.acc_idx k in
                  (* a is affine over p.iters; each p iter j substituted by
                     idx_j (range if non-affine). Approximate: only handle
                     the affine case exactly. *)
                  let subst_ok = ref true in
                  let e =
                    Aff.subst a (fun n ->
                        match
                          List.find_index (fun i -> i = n) p.iters
                        with
                        | Some j -> (
                            match
                              Expr.to_aff ~iters:c.iters ~params
                                (List.nth idx j)
                            with
                            | Some g -> Some g
                            | None ->
                                subst_ok := false;
                                None)
                        | None -> None)
                  in
                  if !subst_ok then Some e else None
                in
                let idx_affs =
                  List.mapi (fun k _ -> bind k) pa.acc_idx
                in
                Some (c, pa.acc_buf, idx_affs)
            | None -> None)
          (Expr.accesses (Lower.expand fn c.expr)))
      stored
  in
  let mk_rel (src : computation) src_idx (dst : computation) dst_idx =
    let s_iters = List.map sren src.iters in
    let d_iters = List.map dren dst.iters in
    let cols = Array.of_list (params @ s_iters @ d_iters) in
    let total = Array.length cols in
    let nsi = List.length s_iters in
    let base = Poly.universe total in
    let base =
      List.fold_left2
        (fun acc sa da ->
          match (sa, da) with
          | Some sa, Some da ->
              let c =
                Cstr.Eq
                  ( rename_aff_np ~params sren sa,
                    rename_aff_np ~params dren da )
              in
              (match Cstr.to_row ~cols c with
              | `Eq r -> Poly.add_eq acc r
              | `Ineq r -> Poly.add_ineq acc r)
          | _ -> acc)
        base src_idx dst_idx
    in
    let rels =
      List.concat_map
        (fun sp ->
          List.map
            (fun dp ->
              let sp' = lift_domain ~np ~at:np ~total sp in
              let dp' = lift_domain ~np ~at:(np + nsi) ~total dp in
              Poly.intersect base (Poly.intersect sp' dp'))
            dst.domain.Iset.polys)
        src.domain.Iset.polys
    in
    List.filter (fun p -> not (Poly.is_empty p)) rels
  in
  let write_idx (c, (a : access)) =
    List.map (fun x -> Some x) a.acc_idx |> fun l -> (c, a.acc_buf, l)
  in
  let writes = List.map write_idx stored in
  let deps = ref [] in
  (* Output deps: write/write on the same buffer. *)
  List.iter
    (fun (w1, b1, i1) ->
      List.iter
        (fun (w2, b2, i2) ->
          if b1.buf_name = b2.buf_name then begin
            let rel = mk_rel w1 i1 w2 i2 in
            if rel <> [] then
              deps := { src = w1; dst = w2; kind = Output; rel } :: !deps
          end)
        writes)
    writes;
  (* Flow (write then read) and anti (read then write). *)
  List.iter
    (fun (w, bw, iw) ->
      List.iter
        (fun (r, br, ir) ->
          if bw.buf_name = br.buf_name then begin
            let rel = mk_rel w iw r ir in
            if rel <> [] then
              deps := { src = w; dst = r; kind = Flow; rel } :: !deps;
            let rel' = mk_rel r ir w iw in
            if rel' <> [] then
              deps := { src = r; dst = w; kind = Anti; rel = rel' } :: !deps
          end)
        reads)
    writes;
  List.rev !deps

let is_empty_dep d = List.for_all Poly.is_empty d.rel

type violation = {
  dep : dep;
  level : int;
  carried : bool;
}

(* Materialized time description of a computation: list of (column name or
   constant) in order, using the same doubling of statics as lowering. *)
let time_desc (c : computation) =
  List.map
    (fun d ->
      match d.d_kind with
      | Static v -> `Const (2 * v)
      | Dyn -> `Col d.d_col)
    c.sched.dims

module LT = Tiramisu_codegen.Loop_ir

(* Tags under which a loop's iterations are not executed in increasing
   order: a dependence carried at such a level races even though the
   time-space mapping orders it correctly.  [Unrolled] expansion preserves
   sequential order and stays legal. *)
let relaxes_order = function LT.Seq | LT.Unrolled -> false | _ -> true

(* The hardware tag the *generated loop* at each time level carries, per
   computation.  This mirrors Ast_gen's merging: statements descend the
   time dims together, splitting into separate subtrees only at levels
   where every member is a distinct static constant; at a dynamic level
   the whole group shares one loop, whose tag is the join of the members'
   tags.  So a Parallel tag contributed by any fused computation applies
   to every statement under that loop — which is exactly what a
   per-endpoint tag check would miss. *)
let effective_tags fn =
  let comps =
    List.filter (fun (c : computation) -> c.kind = Regular && not c.inlined) fn.comps
  in
  let nt =
    List.fold_left (fun acc c -> max acc (List.length c.sched.dims)) 0 comps
  in
  let pad l z = Array.of_list (l @ List.init (nt - List.length l) (fun _ -> z)) in
  let info =
    List.map
      (fun (c : computation) ->
        ( c.comp_name,
          pad (time_desc c) (`Const 0),
          pad (List.map (fun d -> d.d_tag) c.sched.dims) LT.Seq ))
      comps
  in
  let eff = Hashtbl.create 16 in
  List.iter (fun (n, _, _) -> Hashtbl.replace eff n (Array.make nt LT.Seq)) info;
  let rec go group level =
    if level < nt && group <> [] then
      let static (_, desc, _) =
        match desc.(level) with `Const v -> Some v | `Col _ -> None
      in
      if List.for_all (fun m -> static m <> None) group then
        List.sort_uniq compare (List.filter_map static group)
        |> List.iter (fun v ->
               go (List.filter (fun m -> static m = Some v) group) (level + 1))
      else begin
        let t =
          List.fold_left
            (fun acc (_, _, tags) ->
              if relaxes_order tags.(level) then tags.(level) else acc)
            LT.Seq group
        in
        List.iter (fun (n, _, _) -> (Hashtbl.find eff n).(level) <- t) group;
        go group (level + 1)
      end
  in
  go info 0;
  fun name level ->
    match Hashtbl.find_opt eff name with
    | Some arr when level < Array.length arr -> arr.(level)
    | _ -> LT.Seq

let check_dep_legality ?(tags = fun _ _ -> LT.Seq) ~params (d : dep) =
  let src = d.src and dst = d.dst in
  let s_desc = time_desc src and d_desc = time_desc dst in
  let t = max (List.length s_desc) (List.length d_desc) in
  let pad desc = desc @ List.init (t - List.length desc) (fun _ -> `Const 0) in
  let s_desc = pad s_desc and d_desc = pad d_desc in
  let s_iters = List.map sren src.iters in
  let d_iters = List.map dren dst.iters in
  let s_extra = List.map sren (src.sched.inter @ List.map (fun dd -> dd.d_col) src.sched.dims) in
  let d_extra = List.map dren (dst.sched.inter @ List.map (fun dd -> dd.d_col) dst.sched.dims) in
  let ts = List.init t (Printf.sprintf "ts$%d") in
  let td = List.init t (Printf.sprintf "td$%d") in
  let cols =
    Array.of_list (params @ s_iters @ d_iters @ s_extra @ d_extra @ ts @ td)
  in
  let total = Array.length cols in
  let np = List.length params in
  let nsi = List.length s_iters and ndi = List.length d_iters in
  let add p c =
    match Cstr.to_row ~cols c with
    | `Eq r -> Poly.add_eq p r
    | `Ineq r -> Poly.add_ineq p r
  in
  let base = Poly.universe total in
  (* Schedule constraints for both sides. *)
  let base =
    List.fold_left add base
      (List.map (rename_cstr ~params sren) src.sched.cstrs
      @ List.map (rename_cstr ~params dren) dst.sched.cstrs)
  in
  (* Time columns equal the (renamed) schedule columns or constants. *)
  let link base tdesc names f =
    List.fold_left2
      (fun acc slot name ->
        match slot with
        | `Const v -> add acc (Cstr.Eq (Aff.var name, Aff.const v))
        | `Col col -> add acc (Cstr.Eq (Aff.var name, Aff.var (f col))))
      base tdesc names
  in
  let base = link base s_desc ts sren in
  let base = link base d_desc td dren in
  (* Violation at level k: equal prefix, ts_k >= td_k at k... strictly:
     source not strictly before = exists k with prefix equal and ts_k >
     td_k, or all equal. *)
  let violations = ref [] in
  let satisfiable cstrs =
    List.exists
      (fun rp ->
        let lifted =
          Poly.insert_vars rp ~at:(np + nsi + ndi)
            ~count:(total - np - nsi - ndi)
        in
        not (Poly.is_empty (Poly.intersect (List.fold_left add base cstrs) lifted)))
      d.rel
  in
  for k = 0 to t - 1 do
    let prefix_eq =
      List.init k (fun m ->
          Cstr.Eq (Aff.var (List.nth ts m), Aff.var (List.nth td m)))
    in
    if
      satisfiable
        (prefix_eq @ [ Cstr.Gt (Aff.var (List.nth ts k), Aff.var (List.nth td k)) ])
    then violations := { dep = d; level = k; carried = false } :: !violations
    else if
      (* The mapping orders the dependence at level k — but if the
         generated loop there runs its iterations out of order (parallel,
         vector lanes, gpu, distributed), a dependence *carried* at k
         still races.  Carried = some instance pair first separates at k. *)
      (relaxes_order (tags d.src.comp_name k)
      || relaxes_order (tags d.dst.comp_name k))
      && satisfiable
           (prefix_eq
           @ [ Cstr.Lt (Aff.var (List.nth ts k), Aff.var (List.nth td k)) ])
    then violations := { dep = d; level = k; carried = true } :: !violations
  done;
  (* Simultaneity: all time dims equal. *)
  let any_eq =
    List.exists
      (fun rp ->
        let lifted =
          Poly.insert_vars rp ~at:(np + nsi + ndi)
            ~count:(total - np - nsi - ndi)
        in
        let sys =
          Poly.intersect
            (List.fold_left add base
               (List.init t (fun m ->
                    Cstr.Eq (Aff.var (List.nth ts m), Aff.var (List.nth td m)))))
            lifted
        in
        not (Poly.is_empty sys))
      d.rel
  in
  if any_eq then violations := { dep = d; level = t; carried = false } :: !violations;
  List.rev !violations

let check_legality fn =
  let deps = flow_deps fn in
  let deps =
    List.filter
      (fun d -> d.src.computed_at = None && d.dst.computed_at = None)
      deps
  in
  let tags = effective_tags fn in
  List.concat_map (check_dep_legality ~tags ~params:fn.params) deps

let compute_at_covered fn (p : computation) =
  match p.computed_at with
  | None -> true
  | Some (consumer, _) ->
      (* Every index the consumer reads must lie in the producer's domain
         (the footprint construction then covers it in the same tile). *)
      let params = fn.params in
      let accs =
        List.filter
          (fun (name, _) -> name = p.comp_name)
          (Expr.accesses (Lower.expand fn consumer.expr))
      in
      List.for_all
        (fun (_, idx) ->
          let p_coord = List.map (fun i -> "p@" ^ i) p.iters in
          let cols =
            Array.of_list (params @ consumer.iters @ p_coord)
          in
          let total = Array.length cols in
          let np = List.length params in
          let nci = List.length consumer.iters in
          let add acc c =
            match Cstr.to_row ~cols c with
            | `Eq r -> Poly.add_eq acc r
            | `Ineq r -> Poly.add_ineq acc r
          in
          let base = Poly.universe total in
          let base =
            List.fold_left add base
              (List.concat
                 (List.mapi
                    (fun k e ->
                      let coord = Aff.var (List.nth p_coord k) in
                      match Expr.to_aff ~iters:consumer.iters ~params e with
                      | Some a -> [ Cstr.Eq (coord, a) ]
                      | None -> (
                          match
                            Expr.index_range ~iters:consumer.iters ~params e
                          with
                          | Some (lo, hi) ->
                              [ Cstr.Ge (coord, lo); Cstr.Le (coord, hi) ]
                          | None -> []))
                    idx))
          in
          let reads =
            List.concat_map
              (fun cp ->
                let lifted =
                  Poly.insert_vars cp ~at:(np + nci)
                    ~count:(total - np - nci)
                in
                let joined = Poly.intersect base lifted in
                [ fst (Poly.project_out joined ~at:np ~count:nci) ])
              consumer.domain.Iset.polys
          in
          let read_set =
            Iset.of_polys (Space.set_space ~params p_coord) reads
          in
          let dom = Iset.rename_vars p.domain p_coord in
          Iset.subset read_set dom)
        accs

let has_cycle fn =
  let names = List.map (fun c -> c.comp_name) fn.comps in
  let edges c =
    List.filter_map
      (fun (n, _) -> if List.mem n names then Some n else None)
      (Expr.accesses c.expr)
  in
  let state = Hashtbl.create 16 in
  let rec dfs n =
    match Hashtbl.find_opt state n with
    | Some `Active -> true
    | Some `Done -> false
    | None -> (
        Hashtbl.replace state n `Active;
        let c = List.find_opt (fun c -> c.comp_name = n) fn.comps in
        let cyc =
          match c with
          | Some c -> List.exists dfs (edges c)
          | None -> false
        in
        Hashtbl.replace state n `Done;
        cyc)
  in
  List.exists (fun c -> dfs c.comp_name) fn.comps

let pp_dep ppf d =
  Format.fprintf ppf "%s: %s -> %s (%d pieces)" (kind_str d.kind)
    d.src.comp_name d.dst.comp_name (List.length d.rel)

let pp_violation ppf v =
  if v.carried then
    Format.fprintf ppf "%a carried by an order-relaxing (parallel/vector) loop at level %d"
      pp_dep v.dep v.level
  else Format.fprintf ppf "%a violated at level %d" pp_dep v.dep v.level

(* The one-call legality oracle: flow-dependence preservation under the
   current schedules plus coverage of every [compute_at] producer.  This is
   what the differential fuzzer runs before executing a randomly scheduled
   pipeline — an [Error] means the schedule must not be executed. *)
let legal_under_schedule fn =
  let viols = check_legality fn in
  let uncovered =
    List.filter
      (fun (c : computation) ->
        c.computed_at <> None && not (compute_at_covered fn c))
      fn.comps
  in
  if viols = [] && uncovered = [] then Ok ()
  else
    let b = Buffer.create 128 in
    List.iter
      (fun v -> Buffer.add_string b (Format.asprintf "%a; " pp_violation v))
      viols;
    List.iter
      (fun (c : computation) ->
        Buffer.add_string b
          (Printf.sprintf "compute_at producer %s not covered; " c.comp_name))
      uncovered;
    Error (Buffer.contents b)

(* ---------- Parallel tag widening (used by the pipeline's planner) ----------

   Before lowering, try to grow each computation's parallel band: any [Seq]
   dynamic dim contiguous with the existing [Parallel] band — just outside
   its outermost dim, or just inside its innermost — is trial-retagged
   [Parallel] and kept only if {!check_legality} still reports no violation
   (the trial runs against the whole function, so loop sharing via
   [effective_tags] is honoured: a tag widened on one computation is vetted
   against the dependences of everything fused into that loop).  The result
   is a perfectly-nested [Parallel] chain the planner can coalesce into one
   fused loop.  Widening is greedy and order-deterministic; the returned
   closure undoes every accepted mutation, so callers can widen, lower, and
   restore the user's schedule.

   Cost: each trial used to re-run {!check_legality} from scratch — flow
   dependence computation plus an Omega-test per dependence — which
   dominated whole-pipeline compiles (BENCH_pass_trace.json showed 32ms of
   439ms on sgemm_tuned in widening alone).  Both halves are memoizable
   exactly: [flow_deps] reads only domains and access relations, never
   tags, so it is hoisted out of the trial loop; and [check_dep_legality]
   sees the trial tags only through the two endpoints' effective-tag
   vectors, so its verdict is cached keyed by (dependence index, source
   tag signature, destination tag signature).  A rejected trial's revert
   restores a previously-seen signature, so subsequent trials hit the
   cache instead of re-eliminating. *)
let widen_parallel fn =
  let deps =
    Array.of_list
      (List.filter
         (fun d -> d.src.computed_at = None && d.dst.computed_at = None)
         (flow_deps fn))
  in
  (* Tag signatures cover every level a dependence check can query:
     check_dep_legality looks at levels < max (length time_desc) over the
     two endpoints, and time_desc has one slot per schedule dim. *)
  let nlev =
    List.fold_left
      (fun acc (c : computation) -> max acc (List.length c.sched.dims))
      0 fn.comps
  in
  let verdicts = Hashtbl.create 64 in
  let all_legal () =
    let tags = effective_tags fn in
    let sigs = Hashtbl.create 8 in
    let sg name =
      match Hashtbl.find_opt sigs name with
      | Some s -> s
      | None ->
          let s = List.init nlev (tags name) in
          Hashtbl.add sigs name s;
          s
    in
    try
      Array.iteri
        (fun i d ->
          let key = (i, sg d.src.comp_name, sg d.dst.comp_name) in
          let ok =
            match Hashtbl.find_opt verdicts key with
            | Some ok -> ok
            | None ->
                let ok = check_dep_legality ~tags ~params:fn.params d = [] in
                Hashtbl.add verdicts key ok;
                ok
          in
          if not ok then raise Exit)
        deps;
      true
    with Exit -> false
  in
  let widened = ref [] in
  let undos = ref [] in
  let try_widen (c : computation) (d : dim) =
    d.d_tag = LT.Seq
    && begin
         d.d_tag <- LT.Parallel;
         if all_legal () then begin
           widened := (c.comp_name, d.d_name) :: !widened;
           undos := (fun () -> d.d_tag <- LT.Seq) :: !undos;
           true
         end
         else begin
           d.d_tag <- LT.Seq;
           false
         end
       end
  in
  List.iter
    (fun (c : computation) ->
      if c.kind = Regular && (not c.inlined) && c.computed_at = None then begin
        let dyns = Array.of_list (dyn_dims c.sched) in
        let n = Array.length dyns in
        let p = ref (-1) in
        (try
           for i = 0 to n - 1 do
             if dyns.(i).d_tag = LT.Parallel then begin
               p := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !p >= 0 then begin
          (* outward: contiguous Seq dims above the band *)
          let i = ref (!p - 1) in
          while !i >= 0 && try_widen c dyns.(!i) do
            decr i
          done;
          (* inward: extend below the innermost dim of the band *)
          let q = ref !p in
          while !q + 1 < n && dyns.(!q + 1).d_tag = LT.Parallel do
            incr q
          done;
          let j = ref (!q + 1) in
          while !j < n && try_widen c dyns.(!j) do
            incr j
          done
        end
      end)
    fn.comps;
  let ws = List.rev !widened in
  let undo_list = !undos in
  (ws, fun () -> List.iter (fun f -> f ()) undo_list)
