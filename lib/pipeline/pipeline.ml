(** Unified compilation pipeline: a typed pass manager owning the whole
    path from [Ir.fn] to a runnable artifact.

    The paper's toolchain (§V) is a fixed sequence of lowering stages
    (Layer IV → ISL AST → Halide IR → LLVM); this module makes our
    reproduction's equivalent sequence — expand/lower, legalize,
    alloc-scope, narrow, simplify, backend compile — a first-class object.
    Every stage runs as a named pass with per-pass wall-clock timing,
    before/after {!Tiramisu_codegen.Loop_ir.loop_meta} deltas, and an
    optional differential-verify hook (the reference interpreter runs on
    the IR before and after a statement-level pass on a probe input, and
    the outputs must match bitwise).  A run's trace serializes to JSON.

    On top of the pass manager sits a compile cache keyed on
    [(structural hash of the statement, params, knobs, extents)]: building
    an identical configuration twice returns the previously compiled
    executor with its buffers restored to their initial contents — making
    repeated compiles in benchmark reps, fuzz replay, and autoscheduler
    candidate search near-free. *)

module L = Tiramisu_codegen.Loop_ir
module Passes = Tiramisu_codegen.Passes
module Plan = Tiramisu_codegen.Parallel_plan
module Tape_gen = Tiramisu_codegen.Tape_gen
module Lower = Tiramisu_core.Lower
module Ir = Tiramisu_core.Ir
module B = Tiramisu_backends
module Deps = Tiramisu_deps.Deps

(* ---------- typed errors ---------- *)

type error = {
  err_stage : string;    (** name of the pass that rejected the program *)
  err_context : string;  (** what the pipeline was doing (function name…) *)
  err_msg : string;
}

exception Error of error

let error_to_string e =
  Printf.sprintf "pipeline pass %S rejected %s: %s" e.err_stage
    e.err_context e.err_msg

let () =
  Printexc.register_printer (function
    | Error e -> Some (error_to_string e)
    | _ -> None)

(* Wrap only the exception families the stages are specified to raise on
   unsupported programs.  Everything else — notably the fuzzer's
   [Limits.Timeout] — must propagate untouched.

   Every pass boundary is also a cooperative cancellation point: when the
   caller (the compile service) set a domain-local deadline via
   [Limits.with_deadline], an expired budget raises [Limits.Timeout] here
   instead of letting a slow pass run to completion.  With no deadline set
   (every pre-service caller) the check is a few loads and never fires. *)
let guard ~stage ~context f x =
  Tiramisu_support.Limits.check_deadline ();
  try f x with
  | Failure m -> raise (Error { err_stage = stage; err_context = context; err_msg = m })
  | Lower.Unsupported m ->
      raise (Error { err_stage = stage; err_context = context;
                     err_msg = "unsupported: " ^ m })
  | Invalid_argument m ->
      raise (Error { err_stage = stage; err_context = context; err_msg = m })

(* ---------- tracing ---------- *)

type verdict =
  | Verified            (** probe outputs bitwise-equal before/after *)
  | Mismatch of string  (** semantics changed — the pass is buggy *)
  | Skipped             (** no probe, pass not verifiable, or probe N/A *)

type pass_trace = {
  p_name : string;
  p_ms : float;
  p_before : L.loop_meta option;  (** [None] for non-statement passes *)
  p_after : L.loop_meta option;
  p_verify : verdict;
  p_note : string;  (** pass-specific summary (planner decisions…), or "" *)
}

type cache_status = Hit | Miss | Bypass

type trace = {
  t_fn : string;
  t_cache : cache_status;
  t_target : string;  (** resolved {!Tiramisu_backends.Target.to_key_string} *)
  t_total_ms : float;
  t_passes : pass_trace list;  (** in execution order *)
}

(** Probe input for differential verification: enough to run the
    interpreter on a statement in isolation. *)
type probe = {
  probe_params : (string * int) list;
  probe_extents : (string * int array * L.mem_space) list;
  probe_fills : (string * (int array -> float)) list;
  probe_outputs : string list;  (** buffers compared bitwise *)
}

type tracer = {
  tr_fn : string;
  tr_start : float;
  mutable tr_cache : cache_status;
  mutable tr_target : string;  (* resolved target key, "" until known *)
  mutable tr_passes : pass_trace list;  (* reverse execution order *)
  tr_probe : probe option;
  tr_on_after : (string -> L.stmt -> unit) option;
}

let make_tracer ?probe ?on_after ?(name = "<stmt>") () =
  { tr_fn = name; tr_start = B.Clock.now_ms (); tr_cache = Bypass;
    tr_target = ""; tr_passes = []; tr_probe = probe; tr_on_after = on_after }

let trace_of tr =
  { t_fn = tr.tr_fn; t_cache = tr.tr_cache; t_target = tr.tr_target;
    t_total_ms = B.Clock.now_ms () -. tr.tr_start;
    t_passes = List.rev tr.tr_passes }

(* ---------- differential verification ---------- *)

let bits_equal (a : float array) (b : float array) =
  Array.length a = Array.length b
  && (try
        Array.iteri
          (fun i x ->
            if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
              raise Exit)
          a;
        true
      with Exit -> false)

let probe_run (p : probe) (s : L.stmt) =
  let interp = B.Interp.create ~params:p.probe_params () in
  List.iter
    (fun (name, dims, mem) ->
      B.Interp.add_buffer interp (B.Buffers.create ~mem name dims))
    p.probe_extents;
  List.iter
    (fun (name, fill) -> B.Buffers.fill (B.Interp.buffer interp name) fill)
    p.probe_fills;
  B.Interp.run interp s;
  List.map (fun name -> (B.Interp.buffer interp name).B.Buffers.data)
    p.probe_outputs

(* Interp the probe on [before] and [after]; outputs must match bitwise.
   If the *reference* run on [before] fails (construct outside the probe's
   reach), the probe can't judge the pass: Skipped.  If only the [after]
   run fails, the pass broke the program: Mismatch. *)
let differential_verify p ~before ~after =
  match probe_run p before with
  | exception e ->
      if Sys.getenv_opt "TIRAMISU_DEBUG_PROBE" <> None then
        Printf.eprintf "probe reference run failed: %s\n"
          (Printexc.to_string e);
      Skipped
  | ref_out -> (
      match probe_run p after with
      | exception e ->
          Mismatch ("transformed program failed: " ^ Printexc.to_string e)
      | out ->
          let bad = ref None in
          List.iteri
            (fun i name ->
              if !bad = None && not (bits_equal (List.nth ref_out i) (List.nth out i))
              then bad := Some name)
            p.probe_outputs;
          (match !bad with
           | None -> Verified
           | Some name -> Mismatch ("buffer " ^ name ^ " differs bitwise")))

(* ---------- the pass runner ---------- *)

let record tr pt =
  tr.tr_passes <- pt :: tr.tr_passes

(** Run one statement→statement pass: time it, wrap its errors, diff the
    loop metadata, optionally verify semantics on the probe, and fire the
    dump hook.  A verification mismatch is itself a pipeline {!Error} on
    the failing pass. *)
let stmt_pass ?tracer ~name ~context ?(verifiable = false)
    ?(note = fun () -> "") f (s : L.stmt) =
  match tracer with
  | None -> guard ~stage:name ~context f s
  | Some tr ->
      let before = L.analyze_loops s in
      let t0 = B.Clock.now_ms () in
      let s' = guard ~stage:name ~context f s in
      let ms = B.Clock.now_ms () -. t0 in
      let verify =
        match tr.tr_probe with
        | Some p when verifiable -> differential_verify p ~before:s ~after:s'
        | _ -> Skipped
      in
      record tr
        { p_name = name; p_ms = ms; p_before = Some before;
          p_after = Some (L.analyze_loops s'); p_verify = verify;
          p_note = note () };
      (match tr.tr_on_after with Some h -> h name s' | None -> ());
      (match verify with
       | Mismatch m ->
           raise (Error { err_stage = name; err_context = context;
                          err_msg = "differential verify failed: " ^ m })
       | Verified | Skipped -> ());
      s'

(* A pass whose input is not a statement (the Layer-IV expansion); only
   the output metadata is recorded. *)
let front_pass ?tracer ~name ~context f x =
  match tracer with
  | None -> guard ~stage:name ~context f x
  | Some tr ->
      let t0 = B.Clock.now_ms () in
      let s = guard ~stage:name ~context f x in
      let ms = B.Clock.now_ms () -. t0 in
      record tr
        { p_name = name; p_ms = ms; p_before = None;
          p_after = Some (L.analyze_loops s); p_verify = Skipped;
          p_note = "" };
      (match tr.tr_on_after with Some h -> h name s | None -> ());
      s

(* ---------- the staged path ---------- *)

type knobs = {
  target : B.Target.t;
      (** which backend this compilation is for (see
          {!Tiramisu_backends.Target}): the CPU strategy/pool schedule,
          the GPU simulator's grid config, or the distributed rank count.
          The target's capability flags gate the parallel planner
          ([pool_schedulable]) and the tape ([tape_claimable]), and its
          key string participates in the compile-cache and service-store
          keys. *)
  specialize : bool;
  narrow : bool;
  plan : [ `Auto | `Off | `Force ];
      (** parallel-planning pass: [`Auto] plans with the pool's effective
          parallelism and work threshold, [`Force] fuses the maximal
          rectangular prefix unconditionally (machine-independent, for
          differential testing), [`Off] skips the pass (the executor's own
          demotion heuristic then applies).  Only runs when the target is
          pool-schedulable. *)
  tape : bool;
      (** flat-tape backend: rectangular nests compile to register-file
          bytecode (see {!Tiramisu_backends.Tape}), with the closure path
          as the checked fallback.  Also steers the parallel planner away
          from coalescing nests the tape would claim.  Effective only when
          the target is tape-claimable. *)
  lanes : int;
      (** vector lane width the tape binds claimed nests with (see
          {!Tiramisu_backends.Tape.bind}); [<= 1] forces the scalar tape.
          Participates in the compile-cache key: the vector and scalar
          tapes are different generated code. *)
}

let default_knobs =
  { target = B.Target.default; specialize = true; narrow = true;
    plan = `Auto; tape = true; lanes = 8 }

(** Layer IV → loop IR, as three traced passes: [lower] (scheduled-domain
    AST generation), [legalize] (vector/unroll legality rewrites, the one
    front-end pass that is semantics-preserving on its own and therefore
    verifiable), and [alloc-scope] ([allocate_at] placement). *)
let lower ?tracer ?(keep_claimable = false) (fn : Ir.fn) : Lower.t =
  let context = "function " ^ fn.Ir.fn_name in
  let ast = front_pass ?tracer ~name:"lower" ~context Lower.generate_ast fn in
  let ast =
    stmt_pass ?tracer ~name:"legalize" ~context ~verifiable:true
      (Passes.legalize ~keep_claimable) ast
  in
  let ast =
    stmt_pass ?tracer ~name:"alloc-scope" ~context (Lower.scope_allocs fn) ast
  in
  { Lower.ast; fn }

(** The statement-level optimization passes ([Exec.prepare], staged):
    interval narrowing under the concrete parameter values, then unroll
    expansion + simplification.  Both are verifiable. *)
let prepare ?tracer ?(knobs = default_knobs) ~params (s : L.stmt) =
  let context = "statement" in
  let s =
    if knobs.narrow then
      stmt_pass ?tracer ~name:"narrow" ~context ~verifiable:true
        (Passes.narrow ~params) s
    else s
  in
  stmt_pass ?tracer ~name:"simplify" ~context ~verifiable:true
    (fun s -> L.simplify_stmt (Passes.unroll_expand s))
    s

(** The parallel-planning pass (see {!Tiramisu_codegen.Parallel_plan}):
    runs after [prepare] so the bounds the trip-count estimator sees are
    already narrowed to concrete integers, and only under the [`Pool]
    strategy.  Returns the rewritten statement and the planner's report. *)
let plan_pass ?tracer ~knobs ~params (s : L.stmt) =
  if (not (B.Target.pool_schedulable knobs.target)) || knobs.plan = `Off then
    (s, Plan.empty_report)
  else begin
    let report = ref Plan.empty_report in
    let s =
      stmt_pass ?tracer ~name:"parallel-plan" ~context:"statement"
        ~verifiable:true
        ~note:(fun () -> Plan.report_str !report)
        (fun s ->
          let s', r =
            Plan.plan
              ~workers:(B.Pool.effective_parallelism ())
              ~min_work:(B.Pool.min_work ())
              ~params
              ~force:(knobs.plan = `Force)
              ~tape:knobs.tape
              s
          in
          report := r;
          s')
        s
    in
    (s, !report)
  end

(** The whole statement-level rewrite sequence — [prepare] then the
    parallel-planning pass — as one function: what the compile service
    persists in its on-disk artifact tier is exactly this function's
    result (a prepared+planned statement plus the planner's report), so
    a warm service load skips every pass and goes straight to
    {!compile_stage}. *)
let prepare_and_plan ?tracer ?(knobs = default_knobs) ~params (s : L.stmt) =
  let s = prepare ?tracer ~knobs ~params s in
  plan_pass ?tracer ~knobs ~params s

(** Closure-compile an already prepared+planned statement (the backend
    stage alone, traced).  Buffers are captured by reference, exactly as
    with [Exec.compile]. *)
let compile_stage ?tracer ?(knobs = default_knobs) ~params ~buffers
    (s : L.stmt) =
  (* The tape claim itself happens inside [Exec.compile_prepared]; this
     named identity pass exists for observability — its note lists every
     nest the tape backend will claim ([--trace-passes]), and its dump
     hook ([--dump-after=tape-compile]) is where the disassembler binds.
     Targets the tape cannot claim on skip the pass entirely. *)
  let s =
    if not (knobs.tape && B.Target.tape_claimable knobs.target) then s
    else
      stmt_pass ?tracer ~name:"tape-compile" ~context:"statement"
        ~note:(fun () ->
          match Tape_gen.scan s with
          | [] -> "no nest claimed"
          | ps -> String.concat "; " (List.map Tape_gen.summary ps))
        (fun s -> s) s
  in
  (* When the planner ran it already made every serialize/keep decision, so
     the executor's own demotion heuristic is switched off — a loop is
     never profitability-tested twice. *)
  let demote =
    (not (B.Target.pool_schedulable knobs.target)) || knobs.plan = `Off
  in
  let do_compile s =
    B.Exec.compile_prepared ~target:knobs.target
      ~specialize:knobs.specialize ~demote ~tape:knobs.tape
      ~lanes:knobs.lanes ~params ~buffers s
  in
  (match tracer with
  | Some tr -> tr.tr_target <- B.Target.to_key_string knobs.target
  | None -> ());
  match tracer with
  | None -> guard ~stage:"compile" ~context:"statement" do_compile s
  | Some tr ->
      let meta = L.analyze_loops s in
      let t0 = B.Clock.now_ms () in
      let exec = guard ~stage:"compile" ~context:"statement" do_compile s in
      let ms = B.Clock.now_ms () -. t0 in
      record tr
        { p_name = "compile"; p_ms = ms; p_before = Some meta;
          p_after = Some meta; p_verify = Skipped; p_note = "" };
      exec

(** [prepare] + parallel planning + closure compilation, each stage traced.
    Returns the compiled executor, the prepared statement it was compiled
    from (what the cache stores so contended hits can re-compile without
    re-running any pass) and the planner's report. *)
let compile_with_report ?tracer ?(knobs = default_knobs) ~params ~buffers
    (s : L.stmt) =
  let s, report = prepare_and_plan ?tracer ~knobs ~params s in
  let exec = compile_stage ?tracer ~knobs ~params ~buffers s in
  (exec, s, report)

let compile ?tracer ?(knobs = default_knobs) ~params ~buffers (s : L.stmt) =
  let exec, _, _ = compile_with_report ?tracer ~knobs ~params ~buffers s in
  exec

(* ---------- compile cache ---------- *)

type artifact = {
  exec : B.Exec.compiled;
  buffers : B.Buffers.t list;
      (** leased to this artifact: exclusively owned by the caller's domain
          until {!field-release} is called (see the lease model below) *)
  cache : cache_status;
  key_hash : int;              (** structural hash of the source statement *)
  plan_report : Plan.report;   (** parallel-planner decisions (empty when
                                   the pass did not run) *)
  release : unit -> unit;
      (** return the leased executor+buffers to the cache so another domain
          can check them out.  Idempotent; never required for correctness —
          an unreleased lease stays pinned to its domain (sequential reuse
          by that domain keeps hitting it) and other domains get their own
          clone — but releasing keeps the lease pool minimal. *)
}

(* The key is pure data (no closures): structural equality and the
   polymorphic hash are both well-defined on it.  The structural hash of
   the statement stands in for the statement itself; collisions are
   disambiguated by comparing the stored statement structurally. *)
type ckey = {
  k_hash : int;
  k_params : (string * int) list;  (* sorted by name *)
  k_target : string;
    (* {!B.Target.to_key_string}: artifacts for different execution
       targets never alias — the same program compiled for [Cpu] and
       [Gpu_sim] is two cache entries and two store artifacts *)
  k_specialize : bool;
  k_narrow : bool;
  k_plan : [ `Auto | `Off | `Force ];
  k_tape : bool;
  k_lanes : int;
    (* vector lane width claimed nests are bound with: the vector and
       scalar tapes are different generated code, so artifacts built at
       different widths never alias *)
  k_tapegen : int;
    (* {!Tape_gen.version}: a cached artifact compiled by an older tape
       generator must miss, never be served — the same determinism class
       as the pool-environment fields below *)
  k_pool : int * int * int;
    (* (num_workers, min_work, effective_parallelism) sampled at build
       time: planner decisions and the compiled schedule depend on the
       pool environment, so a [set_num_workers] or TIRAMISU_* change
       between builds must miss rather than replay a stale plan *)
  k_extents : (string * int array * L.mem_space) list;
}

(* A lease is one (compiled executor, buffer set) pair.  The executor
   captures its buffers by reference at compile time, so the two are
   inseparable: handing out fresh buffers means handing out a fresh
   executor.  [l_owner] is the domain id currently holding the pair
   ([None] = checked in):

   - the same domain re-hitting an entry reuses its own lease — the
     pre-lease semantics, and the pure lookup+blit fast path the warm-hit
     benchmark gate measures;
   - a hit from a *different* domain while every lease is held checks out
     nothing shared: it compiles a clone pair from the stored prepared
     statement (no pass re-runs, just closure compilation) and registers
     it as a new lease.  Two concurrent users of one entry can therefore
     never alias mutable buffers — the shared-state class the `Spawn`
     race in PR 3 was. *)
type lease = {
  l_exec : B.Exec.compiled;
  l_buffers : B.Buffers.t list;
  mutable l_owner : int option;  (* domain id holding the pair *)
}

type centry = {
  ce_stmt : L.stmt;  (* collision guard: must equal the requested stmt *)
  ce_prepared : L.stmt;  (* post prepare+plan: clones skip every pass *)
  ce_knobs : knobs;
  ce_params : (string * int) list;
  ce_extents : (string * int array * L.mem_space) list;
  mutable ce_leases : lease list;
  ce_snapshot : (string * float array) list;  (* initial buffer contents *)
  ce_fills : (string * (int array -> float)) list;
  ce_plan : Plan.report;
  mutable ce_gen : int;  (* LRU generation: bumped on every hit/insert *)
}

let cache : (ckey, centry list) Hashtbl.t = Hashtbl.create 64
let default_cache_cap = 512
let cache_cap_ref = ref default_cache_cap
let cache_entries = ref 0
let cache_hits = ref 0
let cache_misses = ref 0
let cache_evictions = ref 0
let cache_resets = ref 0
let cache_clones = ref 0
let cache_tick = ref 0

(* One lock for the table, the counters and the hash memo.  Everything it
   guards is O(entries) bookkeeping; compiles, pass runs and buffer
   restores all happen outside it. *)
let cache_mutex = Mutex.create ()
let locked f = Mutex.protect cache_mutex f
let self_id () = (Domain.self () :> int)

let cache_cap () = !cache_cap_ref

(* with the mutex held: evict the least-recently-used entry, preferring
   entries with no lease checked out (an evicted busy lease stays valid
   for its holder — it just no longer belongs to the cache). *)
let evict_one_locked () =
  let is_free e = List.for_all (fun l -> l.l_owner = None) e.ce_leases in
  let best_free = ref None and best_any = ref None in
  let consider slot (c : ckey * centry) =
    match !slot with
    | None -> slot := Some c
    | Some (_, e') -> if (snd c).ce_gen < e'.ce_gen then slot := Some c
  in
  Hashtbl.iter
    (fun k es ->
      List.iter
        (fun e ->
          consider best_any (k, e);
          if is_free e then consider best_free (k, e))
        es)
    cache;
  match (match !best_free with Some _ as c -> c | None -> !best_any) with
  | None -> ()
  | Some (k, victim) ->
      let rest = List.filter (fun e -> e != victim) (Hashtbl.find cache k) in
      if rest = [] then Hashtbl.remove cache k
      else Hashtbl.replace cache k rest;
      decr cache_entries;
      incr cache_evictions

let set_cache_cap n =
  if n < 1 then invalid_arg "Pipeline.set_cache_cap";
  locked (fun () ->
      cache_cap_ref := n;
      while !cache_entries > n do
        evict_one_locked ()
      done)

(* Explicit full reset (tests, bench isolation).  The capacity-overflow
   path never comes here: reaching [cache_cap] evicts exactly one entry
   ({!evict_one_locked}), so warm state is shed incrementally, never
   destroyed wholesale. *)
let clear_cache () =
  locked (fun () ->
      Hashtbl.reset cache;
      cache_entries := 0;
      incr cache_resets)

type cache_stats = {
  hits : int;
  misses : int;
  entries : int;
  evictions : int;  (** single-entry LRU evictions at capacity *)
  resets : int;     (** explicit {!clear_cache} calls — never incremented
                        by the eviction path *)
  clones : int;     (** hits served by compiling a fresh lease because every
                        existing one was held by another domain *)
}

let cache_stats () =
  locked (fun () ->
      { hits = !cache_hits; misses = !cache_misses;
        entries = !cache_entries; evictions = !cache_evictions;
        resets = !cache_resets; clones = !cache_clones })

(* Hashing is a full statement traversal; rebuilding the *same* statement
   value (benchmark reps, fuzz replay of one case, repeated autoscheduler
   probes) would pay it on every hit.  A tiny physical-equality memo keeps
   the hit path free of the traversal without affecting the hash's
   structural semantics. *)
let hash_memo : (L.stmt * int) list ref = ref []
let hash_memo_cap = 16

let structural_hash_memo s =
  match
    locked (fun () -> List.find_opt (fun (s', _) -> s' == s) !hash_memo)
  with
  | Some (_, h) -> h
  | None ->
      let h = L.structural_hash s in
      locked (fun () ->
          let kept =
            if List.length !hash_memo >= hash_memo_cap then
              List.filteri (fun i _ -> i < hash_memo_cap - 1) !hash_memo
            else !hash_memo
          in
          hash_memo := (s, h) :: kept);
      h

let make_key ~knobs ~params ~extents hash =
  { k_hash = hash;
    k_params = List.sort (fun (a, _) (b, _) -> compare a b) params;
    k_target = B.Target.to_key_string knobs.target;
    k_specialize = knobs.specialize;
    k_narrow = knobs.narrow; k_plan = knobs.plan;
    k_tape = knobs.tape; k_lanes = knobs.lanes;
    k_tapegen = Tape_gen.version;
    k_pool =
      ( B.Pool.num_workers (), B.Pool.min_work (),
        B.Pool.effective_parallelism () );
    k_extents = extents }

let find_buffer buffers name =
  List.find_opt (fun b -> b.B.Buffers.name = name) buffers

let fill_inputs ~stage buffers inputs =
  List.iter
    (fun (name, fill) ->
      match find_buffer buffers name with
      | Some b -> B.Buffers.fill b fill
      | None ->
          raise (Error { err_stage = stage; err_context = "buffer setup";
                         err_msg = "unknown input buffer " ^ name }))
    inputs

(* Restore a lease's buffers to the initial state implied by [fills].
   When the fill closures are the very same functions the entry was built
   with (the common case: call sites pass top-level functions), blitting
   the snapshot back is both exact and allocation-free.  Otherwise zero
   everything and re-fill. *)
let restore entry lease fills =
  let same =
    List.length fills = List.length entry.ce_fills
    && List.for_all2
         (fun (n1, f1) (n2, f2) -> String.equal n1 n2 && f1 == f2)
         fills entry.ce_fills
  in
  if same then
    List.iter
      (fun (name, snap) ->
        match find_buffer lease.l_buffers name with
        | Some b -> Array.blit snap 0 b.B.Buffers.data 0 (Array.length snap)
        | None -> ())
      entry.ce_snapshot
  else begin
    List.iter
      (fun b ->
        Array.fill b.B.Buffers.data 0 (Array.length b.B.Buffers.data) 0.)
      lease.l_buffers;
    fill_inputs ~stage:"cache" lease.l_buffers fills
  end

let release_of lease () = locked (fun () -> lease.l_owner <- None)

(* bump the entry's LRU generation; with the mutex held *)
let touch_locked entry =
  incr cache_tick;
  entry.ce_gen <- !cache_tick

let artifact_of_lease entry lease ~hash ~status =
  { exec = lease.l_exec; buffers = lease.l_buffers; cache = status;
    key_hash = hash; plan_report = entry.ce_plan;
    release = release_of lease }

(** Serializable digest of a cache key — what the on-disk service tier is
    content-addressed by.  [ckey] is pure data (the structural hash stands
    in for the statement), so marshalling it is well-defined. *)
let key_digest (k : ckey) = Digest.to_hex (Digest.string (Marshal.to_string k []))

(** Compile a statement through the cache.  [extents] declares every
    buffer the program touches ([(name, dims, mem_space)]); [inputs] are
    fill functions applied before the snapshot is taken.  On a hit the
    caller's domain checks out an exclusive (executor, buffers) lease with
    the buffers restored to their initial contents — bit-identical to what
    a cold build would produce — and concurrent hits from other domains
    are served disjoint leases (see {!type-lease}).  At capacity the
    least-recently-used entry is evicted; the cache never resets
    wholesale on its own. *)
let build_stmt ?tracer ?(knobs = default_knobs) ~params ~extents ~inputs
    (s : L.stmt) : artifact =
  let t0 = B.Clock.now_ms () in
  let hash = structural_hash_memo s in
  (match tracer with
   | Some tr ->
       tr.tr_target <- B.Target.to_key_string knobs.target;
       record tr
         { p_name = "hash"; p_ms = B.Clock.now_ms () -. t0;
           p_before = None; p_after = None; p_verify = Skipped;
           p_note = "" }
   | None -> ());
  let key = make_key ~knobs ~params ~extents hash in
  let find_entry_locked () =
    match Hashtbl.find_opt cache key with
    | None -> None
    | Some bucket -> List.find_opt (fun e -> e.ce_stmt = s) bucket
  in
  (* claim: on a hit, either check out a free lease (or the one this very
     domain already holds — sequential reuse) or decide to clone. *)
  let claim =
    locked (fun () ->
        match find_entry_locked () with
        | None -> None
        | Some entry ->
            touch_locked entry;
            incr cache_hits;
            let self = self_id () in
            (match
               List.find_opt
                 (fun l -> l.l_owner = None || l.l_owner = Some self)
                 entry.ce_leases
             with
            | Some l ->
                l.l_owner <- Some self;
                Some (entry, Some l)
            | None ->
                incr cache_clones;
                Some (entry, None)))
  in
  match claim with
  | Some (entry, Some lease) ->
      restore entry lease inputs;
      (match tracer with Some tr -> tr.tr_cache <- Hit | None -> ());
      artifact_of_lease entry lease ~hash ~status:Hit
  | Some (entry, None) ->
      (* every lease is checked out by some other domain: compile a clone
         pair from the stored prepared statement — no pass re-runs, only
         the backend closure compilation — and lease it to this domain. *)
      let buffers =
        List.map
          (fun (name, dims, mem) -> B.Buffers.create ~mem name dims)
          entry.ce_extents
      in
      fill_inputs ~stage:"cache" buffers inputs;
      let exec =
        compile_stage ?tracer ~knobs:entry.ce_knobs ~params:entry.ce_params
          ~buffers entry.ce_prepared
      in
      let lease = { l_exec = exec; l_buffers = buffers;
                    l_owner = Some (self_id ()) } in
      locked (fun () -> entry.ce_leases <- entry.ce_leases @ [ lease ]);
      (match tracer with Some tr -> tr.tr_cache <- Hit | None -> ());
      artifact_of_lease entry lease ~hash ~status:Hit
  | None ->
      locked (fun () -> incr cache_misses);
      let buffers =
        List.map
          (fun (name, dims, mem) -> B.Buffers.create ~mem name dims)
          extents
      in
      fill_inputs ~stage:"buffers" buffers inputs;
      let exec, prepared, report =
        compile_with_report ?tracer ~knobs ~params ~buffers s
      in
      let snapshot =
        List.map
          (fun b -> (b.B.Buffers.name, Array.copy b.B.Buffers.data))
          buffers
      in
      let lease =
        { l_exec = exec; l_buffers = buffers; l_owner = Some (self_id ()) }
      in
      let entry =
        locked (fun () ->
            match find_entry_locked () with
            | Some entry ->
                (* another domain compiled the same configuration while we
                   did: keep one entry and register our pair as an extra
                   lease of it *)
                touch_locked entry;
                entry.ce_leases <- entry.ce_leases @ [ lease ];
                entry
            | None ->
                if !cache_entries >= !cache_cap_ref then evict_one_locked ();
                let entry =
                  { ce_stmt = s; ce_prepared = prepared; ce_knobs = knobs;
                    ce_params = params; ce_extents = extents;
                    ce_leases = [ lease ]; ce_snapshot = snapshot;
                    ce_fills = inputs; ce_plan = report; ce_gen = 0 }
                in
                touch_locked entry;
                let bucket =
                  match Hashtbl.find_opt cache key with
                  | Some b -> b
                  | None -> []
                in
                Hashtbl.replace cache key (entry :: bucket);
                incr cache_entries;
                entry)
      in
      (match tracer with Some tr -> tr.tr_cache <- Miss | None -> ());
      artifact_of_lease entry lease ~hash ~status:Miss

let extents_of_fn fn ~params =
  List.map
    (fun ((b : Ir.buffer), dims) -> (b.Ir.buf_name, dims, b.Ir.buf_mem))
    (Lower.buffer_extents fn ~params)

(** The whole path: [Ir.fn] → lowered statement → cached compiled
    artifact, with buffer extents derived from the function's buffer
    declarations.

    Under the [`Pool] strategy with planning enabled, the schedule-level
    widening pass ({!Tiramisu_deps.Deps.widen_parallel}) first grows each
    computation's parallel band with every adjacent [Seq] dim the
    dependence oracle proves safe — handing the planner a deeper perfectly
    nested [Parallel] chain to coalesce.  The user's schedule is restored
    after lowering whatever happens. *)
let lower_for_build ?tracer ?(knobs = default_knobs) fn
    (k : Lower.t -> 'a) : 'a =
  let context = "function " ^ fn.Ir.fn_name in
  let widen () =
    if B.Target.pool_schedulable knobs.target && knobs.plan <> `Off then begin
      let t0 = B.Clock.now_ms () in
      let widened, undo =
        guard ~stage:"widen-parallel" ~context Deps.widen_parallel fn
      in
      (match tracer with
       | Some tr ->
           record tr
             { p_name = "widen-parallel"; p_ms = B.Clock.now_ms () -. t0;
               p_before = None; p_after = None; p_verify = Skipped;
               p_note =
                 (match widened with
                  | [] -> "no dim widened"
                  | ws ->
                      String.concat ", "
                        (List.map (fun (c, d) -> c ^ "/" ^ d) ws)) }
       | None -> ());
      undo
    end
    else fun () -> ()
  in
  let undo = widen () in
  (* Vector loops the tape would claim stay unsplit when this compile can
     actually claim them (CPU target, tape on): the tape lane-batches the
     unsplit loop with its own scalar remainder, and splitting would only
     fragment the nest into many small per-invocation tape entries.  See
     {!Passes.vector_legalize}. *)
  let keep_claimable = knobs.tape && B.Target.tape_claimable knobs.target in
  Fun.protect ~finally:undo (fun () -> k (lower ?tracer ~keep_claimable fn))

let build ?tracer ?(knobs = default_knobs) ~fn ~params ~inputs () : artifact =
  lower_for_build ?tracer ~knobs fn (fun lowered ->
      build_stmt ?tracer ~knobs ~params ~extents:(extents_of_fn fn ~params)
        ~inputs lowered.Lower.ast)

(* ---------- trace serialization ---------- *)

let json_of_meta (m : L.loop_meta) =
  Printf.sprintf
    {|{ "n_loops": %d, "n_parallel": %d, "n_nested_parallel": %d, "max_depth": %d, "n_specializable": %d }|}
    m.L.n_loops m.L.n_parallel m.L.n_nested_parallel m.L.max_depth
    m.L.n_specializable

let json_of_verdict = function
  | Verified -> {|"verified"|}
  | Skipped -> {|"skipped"|}
  | Mismatch m -> Printf.sprintf "%S" ("mismatch: " ^ m)

let string_of_cache_status = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Bypass -> "bypass"

let json_of_pass p =
  let opt_meta = function
    | None -> "null"
    | Some m -> json_of_meta m
  in
  let note = if p.p_note = "" then "" else Printf.sprintf {|, "note": %S|} p.p_note in
  Printf.sprintf
    {|      { "pass": %S, "ms": %.4f, "verify": %s, "before": %s, "after": %s%s }|}
    p.p_name p.p_ms (json_of_verdict p.p_verify) (opt_meta p.p_before)
    (opt_meta p.p_after) note

let json_of_trace t =
  Printf.sprintf
    "  { \"fn\": %S, \"cache\": \"%s\", \"target\": %S, \"total_ms\": \
     %.4f,\n    \"passes\": [\n%s\n    ] }"
    t.t_fn
    (string_of_cache_status t.t_cache)
    t.t_target t.t_total_ms
    (String.concat ",\n" (List.map json_of_pass t.t_passes))

let write_traces path traces =
  let oc = open_out path in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.map json_of_trace traces));
  output_string oc "\n]\n";
  close_out oc

let print_trace ppf t =
  Fmt.pf ppf "%s: target %s, cache %s, %.3f ms total@." t.t_fn
    (if t.t_target = "" then "<unresolved>" else t.t_target)
    (string_of_cache_status t.t_cache)
    t.t_total_ms;
  List.iter
    (fun p ->
      let delta =
        match (p.p_before, p.p_after) with
        | Some b, Some a when b <> a ->
            Printf.sprintf " loops %d->%d depth %d->%d" b.L.n_loops
              a.L.n_loops b.L.max_depth a.L.max_depth
        | _ -> ""
      in
      let verify =
        match p.p_verify with
        | Verified -> " [verified]"
        | Mismatch m -> " [MISMATCH: " ^ m ^ "]"
        | Skipped -> ""
      in
      let note = if p.p_note = "" then "" else " (" ^ p.p_note ^ ")" in
      Fmt.pf ppf "  %-14s %8.4f ms%s%s%s@." p.p_name p.p_ms delta verify note)
    t.t_passes
