module L = Loop_ir

let rec subst_expr v rep (e : L.expr) : L.expr =
  match e with
  | L.Var x when x = v -> rep
  | L.Int _ | L.Float _ | L.Var _ -> e
  | L.Load (b, idx) -> L.Load (b, List.map (subst_expr v rep) idx)
  | L.Bin (op, a, b) -> L.Bin (op, subst_expr v rep a, subst_expr v rep b)
  | L.Neg a -> L.Neg (subst_expr v rep a)
  | L.Cast (d, a) -> L.Cast (d, subst_expr v rep a)
  | L.Select (c, a, b) ->
      L.Select (subst_cond v rep c, subst_expr v rep a, subst_expr v rep b)
  | L.Call (f, args) -> L.Call (f, List.map (subst_expr v rep) args)

and subst_cond v rep (c : L.cond) : L.cond =
  match c with
  | L.True -> L.True
  | L.Cmp (op, a, b) -> L.Cmp (op, subst_expr v rep a, subst_expr v rep b)
  | L.And (a, b) -> L.And (subst_cond v rep a, subst_cond v rep b)
  | L.Or (a, b) -> L.Or (subst_cond v rep a, subst_cond v rep b)
  | L.Not a -> L.Not (subst_cond v rep a)

let rec subst_var v rep (s : L.stmt) : L.stmt =
  match s with
  | L.Block l -> L.Block (List.map (subst_var v rep) l)
  | L.For f ->
      if f.var = v then s  (* shadowed *)
      else
        L.For
          { f with lo = subst_expr v rep f.lo; hi = subst_expr v rep f.hi;
            body = subst_var v rep f.body }
  | L.If (c, t, e) ->
      L.If (subst_cond v rep c, subst_var v rep t, Option.map (subst_var v rep) e)
  | L.Store (b, idx, e) ->
      L.Store (b, List.map (subst_expr v rep) idx, subst_expr v rep e)
  | L.Alloc a ->
      L.Alloc { a with dims = List.map (subst_expr v rep) a.dims;
                body = subst_var v rep a.body }
  | L.Barrier | L.Comment _ | L.Memcpy _ -> s
  | L.Send sd ->
      L.Send { sd with dst = subst_expr v rep sd.dst;
               offset = List.map (subst_expr v rep) sd.offset;
               count = subst_expr v rep sd.count }
  | L.Recv r ->
      L.Recv { r with src = subst_expr v rep r.src;
               offset = List.map (subst_expr v rep) r.offset;
               count = subst_expr v rep r.count }

(* A loop [for v in lo..hi vectorized(w)] becomes
     full  = (hi - lo + 1) / w         (number of full vectors)
     for vb in 0..full-1: for lane in 0..w-1 (vector): body[v := lo + w*vb + lane]
     for v in lo + w*full .. hi: body  (scalar epilogue)
   When the extent is statically w the wrapper loop folds away.

   With [keep_claimable] (CPU compiles with the tape enabled), a
   dynamic-extent vector loop the tape classifier would claim stays
   unsplit: the tape lane-batches it with its own scalar remainder, and
   splitting here would only break the surrounding perfect nest into
   per-block and epilogue claims — each a separate bind/enter per entry.
   The closure fallback drives an unsplit [Vectorized] tag with its own
   lane-blocked loop + epilogue, so the shape is legal either way. *)
let rec vector_legalize ?(keep_claimable = false) (s : L.stmt) : L.stmt =
  match s with
  | L.For ({ tag = L.Vectorized w; _ } as f) ->
      let body = vector_legalize ~keep_claimable f.body in
      let extent = L.(f.hi -! f.lo +! int 1) in
      let extent = L.simplify_expr extent in
      (match extent with
      | L.Int n when n = w ->
          (* Statically full: keep as a pure vector loop. *)
          L.For { f with body }
      | L.Int n when n < w ->
          (* Statically partial: scalar loop. *)
          L.For { f with tag = L.Seq; body }
      | _ when keep_claimable && Tape_gen.claimable (L.For { f with body })
        ->
          L.For { f with body }
      | _ ->
          let full = L.Bin (L.FloorDiv, extent, L.Int w) in
          let vb = f.var ^ "_vb" in
          let lane = f.var ^ "_ln" in
          (* The lane loop runs 0..w-1 with the original iterator
             reconstructed in the body, so downstream analyses see the full
             index expression. *)
          let vec_body =
            L.For
              {
                var = lane;
                lo = L.Int 0;
                hi = L.Int (w - 1);
                tag = L.Vectorized w;
                body =
                  subst_var f.var
                    L.(f.lo +! (int w *! Var vb) +! Var lane)
                    body;
              }
          in
          let main =
            L.For
              { var = vb; lo = L.Int 0; hi = L.(simplify_expr (full -! int 1));
                tag = L.Seq; body = vec_body }
          in
          match extent with
          | L.Int n when n mod w = 0 ->
              (* statically divisible extent: every block is full, so the
                 scalar epilogue would be empty — elide it *)
              main
          | _ ->
              let epilogue =
                L.For
                  { var = f.var; lo = L.(f.lo +! (int w *! full)); hi = f.hi;
                    tag = L.Seq; body }
              in
              L.Block [ main; epilogue ])
  | L.Block l -> L.Block (List.map (vector_legalize ~keep_claimable) l)
  | L.For f -> L.For { f with body = vector_legalize ~keep_claimable f.body }
  | L.If (c, t, e) ->
      L.If
        ( c,
          vector_legalize ~keep_claimable t,
          Option.map (vector_legalize ~keep_claimable) e )
  | L.Alloc a ->
      L.Alloc { a with body = vector_legalize ~keep_claimable a.body }
  | _ -> s

let rec stmt_size (s : L.stmt) : int =
  match s with
  | L.Block l -> List.fold_left (fun a s -> a + stmt_size s) 0 l
  | L.For f -> 1 + stmt_size f.body
  | L.If (_, t, e) ->
      1 + stmt_size t + Option.fold ~none:0 ~some:stmt_size e
  | L.Alloc a -> 1 + stmt_size a.body
  | _ -> 1

let rec unroll_expand ?(max_body = 64) (s : L.stmt) : L.stmt =
  match s with
  | L.For ({ tag = L.Unrolled; _ } as f) -> (
      let body = unroll_expand ~max_body f.body in
      match (L.simplify_expr f.lo, L.simplify_expr f.hi) with
      | L.Int lo, L.Int hi
        when hi >= lo && (hi - lo + 1) * stmt_size body <= max_body ->
          L.Block
            (List.init (hi - lo + 1) (fun k ->
                 subst_var f.var (L.Int (lo + k)) body))
      | _ -> L.For { f with body })
  | L.Block l -> L.Block (List.map (unroll_expand ~max_body) l)
  | L.For f -> L.For { f with body = unroll_expand ~max_body f.body }
  | L.If (c, t, e) ->
      L.If (c, unroll_expand ~max_body t,
            Option.map (unroll_expand ~max_body) e)
  | L.Alloc a -> L.Alloc { a with body = unroll_expand ~max_body a.body }
  | _ -> s

let legalize ?keep_claimable s =
  L.simplify_stmt (unroll_expand (vector_legalize ?keep_claimable s))

(* ---------- interval-based bound narrowing ---------- *)

(* Once parameter values are known (the compiled backend knows them at
   [Exec.compile] time), interval analysis over loop ranges collapses most
   of the [min]/[max]/[floord] scaffolding the polyhedral AST generator
   emits for partial tiles: a bound like [min(floord(S-1-8*k0, 2), 3)] with
   [S = 64] and [k0 in 0..7] is the constant 3.  Downstream this turns
   dynamic bounds static (so [unroll_expand] fires and vector epilogues
   become provably empty), makes indices affine (so the executor's kernel
   specializer accepts them), and deletes guards that always hold.

   Soundness: every rewrite replaces an expression with one provably equal
   on all executions, using only the variable ranges established by the
   enclosing (already-narrowed) loop bounds; semantics — including
   out-of-bounds failures — are preserved.  Intervals are [(lo, hi)] with
   [None] for unbounded sides; [Float]/[Load]/[Call]/[Cast] expressions are
   opaque ([None, None]), so only genuinely integer-valued subexpressions
   ever fold. *)

let narrow ~(params : (string * int) list) (s : L.stmt) : L.stmt =
  let env : (string, int option * int option) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (p, v) -> Hashtbl.replace env p (Some v, Some v)) params;
  let unknown = (None, None) in
  let lift2 f a b =
    match (a, b) with Some x, Some y -> Some (f x y) | _ -> None
  in
  let le a b = match (a, b) with Some x, Some y -> x <= y | _ -> false in
  let lt a b = match (a, b) with Some x, Some y -> x < y | _ -> false in
  (* point-collapse, else local constant folding *)
  let finish e (iv : int option * int option) =
    match iv with
    | Some a, Some b when a = b -> (L.Int a, iv)
    | _ -> (L.simplify_expr e, iv)
  in
  let rec norm (e : L.expr) : L.expr * (int option * int option) =
    match e with
    | L.Int n -> (e, (Some n, Some n))
    | L.Float _ -> (e, unknown)
    | L.Var v -> (
        match Hashtbl.find_opt env v with
        | Some ((Some a, Some b) as iv) when a = b -> (L.Int a, iv)
        | Some iv -> (e, iv)
        | None -> (e, unknown))
    | L.Load (b, idx) ->
        (L.Load (b, List.map (fun e -> fst (norm e)) idx), unknown)
    | L.Call (f, args) ->
        (L.Call (f, List.map (fun e -> fst (norm e)) args), unknown)
    | L.Cast (t, a) -> (L.Cast (t, fst (norm a)), unknown)
    | L.Neg a ->
        let a', (lo, hi) = norm a in
        finish (L.Neg a')
          (Option.map (fun x -> -x) hi, Option.map (fun x -> -x) lo)
    | L.Select (c, a, b) -> (
        let c', truth = norm_cond c in
        let a', ia = norm a and b', ib = norm b in
        match truth with
        | Some true -> (a', ia)
        | Some false -> (b', ib)
        | None ->
            if a' = b' then (a', ia)
            else
              let hull =
                ( (match (fst ia, fst ib) with
                  | Some x, Some y -> Some (min x y)
                  | _ -> None),
                  match (snd ia, snd ib) with
                  | Some x, Some y -> Some (max x y)
                  | _ -> None )
              in
              (L.Select (c', a', b'), hull))
    | L.Bin (op, a, b) -> (
        let a', ((alo, ahi) as ia) = norm a in
        let b', ((blo, bhi) as ib) = norm b in
        match op with
        (* one side provably dominated: the min/max IS the other side *)
        | L.MaxOp when le ahi blo -> (b', ib)
        | L.MaxOp when le bhi alo -> (a', ia)
        | L.MinOp when le ahi blo -> (a', ia)
        | L.MinOp when le bhi alo -> (b', ib)
        | _ ->
            let iv =
              match op with
              | L.Add -> (lift2 ( + ) alo blo, lift2 ( + ) ahi bhi)
              | L.Sub -> (lift2 ( - ) alo bhi, lift2 ( - ) ahi blo)
              | L.Mul -> (
                  match (alo, ahi, blo, bhi) with
                  | Some p, Some q, Some r, Some s ->
                      let xs = [ p * r; p * s; q * r; q * s ] in
                      ( Some (List.fold_left min max_int xs),
                        Some (List.fold_left max min_int xs) )
                  | _ -> unknown)
              | L.MinOp ->
                  ( lift2 min alo blo,
                    match (ahi, bhi) with
                    | Some x, Some y -> Some (min x y)
                    | (Some _ as s), None | None, (Some _ as s) -> s
                    | None, None -> None )
              | L.MaxOp ->
                  ( (match (alo, blo) with
                    | Some x, Some y -> Some (max x y)
                    | (Some _ as s), None | None, (Some _ as s) -> s
                    | None, None -> None),
                    lift2 max ahi bhi )
              | L.FloorDiv -> (
                  match b' with
                  | L.Int d when d > 0 ->
                      ( Option.map (fun x -> Tiramisu_support.Ints.fdiv x d) alo,
                        Option.map (fun x -> Tiramisu_support.Ints.fdiv x d) ahi
                      )
                  | _ -> unknown)
              | L.Mod -> (
                  match b' with
                  | L.Int d when d > 0 -> (Some 0, Some (d - 1))
                  | _ -> unknown)
              | L.Div -> unknown (* float division in value contexts *)
            in
            finish (L.Bin (op, a', b')) iv)
  and norm_cond (c : L.cond) : L.cond * bool option =
    match c with
    | L.True -> (c, Some true)
    | L.Cmp (op, a, b) ->
        let a', (alo, ahi) = norm a and b', (blo, bhi) = norm b in
        let truth =
          match op with
          | L.LtOp ->
              if lt ahi blo then Some true
              else if le bhi alo then Some false
              else None
          | L.LeOp ->
              if le ahi blo then Some true
              else if lt bhi alo then Some false
              else None
          | L.GtOp ->
              if lt bhi alo then Some true
              else if le ahi blo then Some false
              else None
          | L.GeOp ->
              if le bhi alo then Some true
              else if lt ahi blo then Some false
              else None
          | L.EqOp ->
              if lt ahi blo || lt bhi alo then Some false
              else (
                match (alo, ahi, blo, bhi) with
                | Some p, Some q, Some r, Some s when p = q && r = s && p = r
                  ->
                    Some true
                | _ -> None)
          | L.NeOp ->
              if lt ahi blo || lt bhi alo then Some true
              else (
                match (alo, ahi, blo, bhi) with
                | Some p, Some q, Some r, Some s when p = q && r = s && p = r
                  ->
                    Some false
                | _ -> None)
        in
        (L.Cmp (op, a', b'), truth)
    | L.And (a, b) -> (
        let a', ta = norm_cond a and b', tb = norm_cond b in
        match (ta, tb) with
        | Some true, _ -> (b', tb)
        | _, Some true -> (a', ta)
        | Some false, _ | _, Some false -> (L.And (a', b'), Some false)
        | _ -> (L.And (a', b'), None))
    | L.Or (a, b) -> (
        let a', ta = norm_cond a and b', tb = norm_cond b in
        match (ta, tb) with
        | Some false, _ -> (b', tb)
        | _, Some false -> (a', ta)
        | Some true, _ | _, Some true -> (L.Or (a', b'), Some true)
        | _ -> (L.Or (a', b'), None))
    | L.Not a ->
        let a', t = norm_cond a in
        (L.Not a', Option.map not t)
  in
  let rec walk (s : L.stmt) : L.stmt =
    match s with
    | L.Block l -> L.Block (List.map walk l)
    | L.Comment _ | L.Barrier | L.Memcpy _ -> s
    | L.Store (b, idx, v) ->
        L.Store (b, List.map (fun e -> fst (norm e)) idx, fst (norm v))
    | L.If (c, t, e) -> (
        let c', truth = norm_cond c in
        match truth with
        | Some true -> walk t
        | Some false -> (
            match e with Some e -> walk e | None -> L.Block [])
        | None -> L.If (c', walk t, Option.map walk e))
    | L.For { var; lo; hi; tag; body } -> (
        let lo', (llo, _) = norm lo in
        let hi', (_, hhi) = norm hi in
        match (lo', hi') with
        | L.Int a, L.Int b when b < a -> L.Block []
        | _ ->
            let saved = Hashtbl.find_opt env var in
            Hashtbl.replace env var (llo, hhi);
            let body' = walk body in
            (match saved with
            | Some iv -> Hashtbl.replace env var iv
            | None -> Hashtbl.remove env var);
            L.For { var; lo = lo'; hi = hi'; tag; body = body' })
    | L.Alloc a ->
        L.Alloc
          { a with
            dims = List.map (fun e -> fst (norm e)) a.dims;
            body = walk a.body }
    | L.Send sd ->
        L.Send
          { sd with
            dst = fst (norm sd.dst);
            offset = List.map (fun e -> fst (norm e)) sd.offset;
            count = fst (norm sd.count) }
    | L.Recv r ->
        L.Recv
          { r with
            src = fst (norm r.src);
            offset = List.map (fun e -> fst (norm e)) r.offset;
            count = fst (norm r.count) }
  in
  walk s
