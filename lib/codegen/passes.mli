(** Loop-IR legalization passes.

    - {b Vector legalization} implements the paper's "separation of full and
      partial tiles" (§V-A, §VI-A): a loop tagged [Vectorized w] whose extent
      may be smaller than [w] at domain edges is split into a full part
      executed as a genuine width-[w] vector loop and a scalar epilogue.
    - {b Unroll expansion} replicates the body of constant-extent
      [Unrolled] loops. *)

val vector_legalize : ?keep_claimable:bool -> Loop_ir.stmt -> Loop_ir.stmt
(** Split dynamic-extent [Vectorized] loops into a full-block nest plus a
    scalar epilogue.  [~keep_claimable:true] (CPU compiles with the tape
    enabled) leaves a loop the tape classifier would claim unsplit — the
    tape lane-batches it with its own scalar remainder, and the closure
    fallback has a lane-blocked driver for the unsplit tag. *)

val unroll_expand : ?max_body:int -> Loop_ir.stmt -> Loop_ir.stmt

val legalize : ?keep_claimable:bool -> Loop_ir.stmt -> Loop_ir.stmt
(** [vector_legalize] followed by [unroll_expand]. *)

val subst_var : string -> Loop_ir.expr -> Loop_ir.stmt -> Loop_ir.stmt
(** Substitute a loop variable in a statement (exposed for tests). *)

val narrow : params:(string * int) list -> Loop_ir.stmt -> Loop_ir.stmt
(** Interval-based bound narrowing with known parameter values: propagates
    loop-variable ranges top-down and collapses [min]/[max]/[floord]
    expressions (in bounds, indices and guards) that the ranges decide,
    deletes provably-empty loops and always/never-taken guards.  Purely a
    strengthening of constant folding: the rewritten program computes the
    same values and fails the same bounds checks as the original.  Used by
    the compiled backend, whose parameters are fixed at compile time. *)
