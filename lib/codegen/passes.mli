(** Loop-IR legalization passes.

    - {b Vector legalization} implements the paper's "separation of full and
      partial tiles" (§V-A, §VI-A): a loop tagged [Vectorized w] whose extent
      may be smaller than [w] at domain edges is split into a full part
      executed as a genuine width-[w] vector loop and a scalar epilogue.
    - {b Unroll expansion} replicates the body of constant-extent
      [Unrolled] loops. *)

val vector_legalize : Loop_ir.stmt -> Loop_ir.stmt
val unroll_expand : ?max_body:int -> Loop_ir.stmt -> Loop_ir.stmt
val legalize : Loop_ir.stmt -> Loop_ir.stmt
(** [vector_legalize] followed by [unroll_expand]. *)

val subst_var : string -> Loop_ir.expr -> Loop_ir.stmt -> Loop_ir.stmt
(** Substitute a loop variable in a statement (exposed for tests). *)

val narrow : params:(string * int) list -> Loop_ir.stmt -> Loop_ir.stmt
(** Interval-based bound narrowing with known parameter values: propagates
    loop-variable ranges top-down and collapses [min]/[max]/[floord]
    expressions (in bounds, indices and guards) that the ranges decide,
    deletes provably-empty loops and always/never-taken guards.  Purely a
    strengthening of constant folding: the rewritten program computes the
    same values and fails the same bounds checks as the original.  Used by
    the compiled backend, whose parameters are fixed at compile time. *)
