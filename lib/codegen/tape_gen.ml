(* Lowering rectangular loop nests to flat instruction tapes.

   The closure compiler pays an indirect call (and a boxed float result)
   per IR node per iteration; no schedule can amortize that floor.  This
   module widens the kernel specializer's contract — innermost loops over
   straight-line stores — to whole rectangular nests, and lowers them to a
   compact bytecode the {e backend} tape executor runs with no closures,
   no env lookups and no allocation in the hot loop:

   - a nest qualifies when it is a perfect [For] chain (comments allowed
     between levels) whose bounds are affine in names {e outside} the
     nest, whose tags are CPU tags ([Seq]/[Parallel]/[Unrolled]/
     [Vectorized]), and whose leaf is the {!Loop_ir.spec_stores} shape
     with affine indices and {!Loop_ir.spec_value_ok} values;
   - [Parallel] tags must form a prefix of the chain; the prefix depth is
     recorded so the executor can split the {e fused} iteration space of
     those levels across workers without the binder div/mods the parallel
     planner's coalescing would emit;
   - values compile to fixed-width (4-int) instructions over a float
     register file: literals, hoisted outer names and per-level iteration
     variables live in persistent registers, temporaries in a stack region
     sized by the deepest expression;
   - loads/stores address memory through per-access cursors the executor
     strength-reduces (base + per-level steps); loads invariant in the
     innermost variable from unwritten buffers are promoted to registers,
     and a single store invariant in the innermost variable whose
     same-buffer loads all alias it becomes a register accumulator
     (disallowed when the innermost level is part of the parallel prefix,
     where a worker boundary could split the accumulation);
   - [Add (x, Mul (a, b))] folds to an [Fma] instruction, defined with two
     roundings (multiply then add) so results stay bit-identical to the
     interpreter — it is a dispatch fusion, not a hardware fma.

   The program built here is abstract: buffer names and affine index
   terms, no arrays or strides.  The backend binds it against concrete
   buffers ({!Tape.bind}), which is also where rank mismatches and unknown
   buffers turn into a (counted) fallback to the closure path. *)

module L = Loop_ir

(* Bump when instruction semantics or the program layout change: the
   pipeline compile cache mixes this into its key, so a cached artifact
   built by an older tape generator can never be served to a newer one. *)
let version = 2

(* ---------- instruction set ---------- *)

(* One instruction is 4 ints: [op; dst; a; b].  For [op_load] the [a]
   field is an access index; for [op_store] the [a] field is the access
   and [b] the source register; everywhere else the fields are registers
   (unused fields are 0). *)

let op_load = 0   (* dst <- data[a][cur[a]] *)
let op_store = 1  (* data[a][cur[a]] <- regs[b] *)
let op_mov = 2
let op_add = 3
let op_sub = 4
let op_mul = 5
let op_div = 6
let op_min = 7
let op_max = 8
let op_fma = 9    (* dst <- dst +. (a *. b): two roundings, bit-exact *)
let op_neg = 10
let op_abs = 11
let op_sqrt = 12
let op_exp = 13
let op_log = 14
let op_sin = 15
let op_cos = 16
let op_floor = 17
let op_pow = 18
let op_fdivi = 19 (* euclidean floordiv on int_of_float operands *)
let op_modi = 20  (* euclidean mod on int_of_float operands *)
let op_trunc = 21 (* Cast to I32 and back: float_of_int (int_of_float a) *)

(* Vector-tier memory opcodes.  The generator never emits these — the
   backend derives a vector tape from [p_code] at bind time, once access
   strides are known, rewriting [op_load]/[op_store] to the forms below
   and reusing codes 2..21 with lane-wise semantics.  For the unit forms
   the step is implicitly 1; for the strided forms it rides in the
   otherwise-unused field ([b] for loads, [dst] for stores). *)
let op_vload_unit = 22    (* vregs[dst][0..w) <- data[a][cur[a] ..] (blit) *)
let op_vload_strided = 23 (* vregs[dst][j] <- data[a][cur[a] + j*b] *)
let op_vload_bcast = 24   (* vregs[dst][0..w) <- data[a][cur[a]] *)
let op_vstore_unit = 25   (* data[a][cur[a] ..] <- vregs[b][0..w) (blit) *)
let op_vstore_strided = 26 (* data[a][cur[a] + j*dst] <- vregs[b][j] *)

let op_name = function
  | 0 -> "load" | 1 -> "store" | 2 -> "mov" | 3 -> "add" | 4 -> "sub"
  | 5 -> "mul" | 6 -> "div" | 7 -> "min" | 8 -> "max" | 9 -> "fma"
  | 10 -> "neg" | 11 -> "abs" | 12 -> "sqrt" | 13 -> "exp" | 14 -> "log"
  | 15 -> "sin" | 16 -> "cos" | 17 -> "floor" | 18 -> "pow"
  | 19 -> "fdivi" | 20 -> "modi" | 21 -> "trunc"
  | 22 -> "vload.u" | 23 -> "vload.s" | 24 -> "vbcast"
  | 25 -> "vstore.u" | 26 -> "vstore.s"
  | _ -> "?"

(* Mnemonic of an opcode as the vector tier executes it: memory opcodes
   keep their specialized names, ALU codes gain a [v] prefix (lane-wise
   semantics over the vector register file). *)
let vop_name op =
  if op >= op_vload_unit && op <= op_vstore_strided then op_name op
  else "v" ^ op_name op

(* ---------- the abstract program ---------- *)

(* Per-dimension affine index: sorted (var, coeff) terms plus a constant.
   Terms may reference nest variables (resolved to per-level cursor steps
   at bind time) and free names (parameters, enclosing loop variables —
   resolved to env slots at bind time). *)
type affine = (string * int) list * int

(* Loop bounds: affine in outside names at the core, with the min/max and
   constant floordiv/mod layers that tiling with partial tiles and vector
   legalization wrap around them.  Still pure data — the backend compiles
   a bound to an [env -> int] closure at bind time.  Access indices stay
   strictly affine: only bounds grow this richer grammar. *)
type bexpr =
  | Baff of affine
  | Badd of bexpr * bexpr
  | Bsub of bexpr * bexpr
  | Bscale of bexpr * int
  | Bmin of bexpr * bexpr
  | Bmax of bexpr * bexpr
  | Bfdiv of bexpr * int  (* euclidean, positive constant divisor *)
  | Bmod of bexpr * int   (* euclidean, positive constant divisor *)

type access = {
  ac_buf : string;
  ac_idx : affine array;  (* one entry per dimension *)
  ac_stored : bool;       (* some store in the leaf writes this buffer *)
}

type level = {
  lv_var : string;
  lv_lo : bexpr;          (* over names outside the nest only *)
  lv_hi : bexpr;
  lv_tag : L.loop_tag;
}

type program = {
  p_levels : level array;        (* outermost first *)
  p_par : int;                   (* length of the Parallel tag prefix *)
  p_accesses : access array;
  p_nregs : int;                 (* register-file size *)
  p_lits : (int * float) array;  (* reg <- literal, once per state *)
  p_hoists : (int * string) array; (* reg <- float env.(name), per range *)
  p_ivregs : int array;          (* float register of each level's var *)
  p_promos : (int * int) array;  (* (reg, access): per-segment load *)
  p_accum : (int * int * bool) option;
    (* (reg, store access, init-from-memory): register accumulator *)
  p_code : int array;            (* packed body instructions *)
  p_ivuse : bool array;          (* per level: body reads the var's register *)
  p_vec_ok : bool;
    (* lane batching preserves scalar semantics: no accumulator, every
       load from a stored buffer exactly aliases the store, and no two
       stores target the same buffer *)
  p_rmw : int array;
    (* accesses both loaded and stored (exact read-modify-write alias);
       vector execution additionally needs their innermost step nonzero
       so lanes touch distinct addresses *)
  p_pieces : (bexpr * bexpr) array array;
    (* guarded leaf pieces, piece-major then level-major (lo, hi): the
       program's level bounds are the union box (min of lows, max of
       highs); the executor verifies per entry that the non-empty
       pieces tile that box contiguously and otherwise falls back.
       [[||]] when the leaf was unguarded (or a single piece, whose
       bounds are the level bounds themselves) *)
}

let instr_count p = Array.length p.p_code / 4

(* ---------- classification ---------- *)

exception Reject

let norm_affine ((ts, c) : affine) : affine =
  (List.sort (fun (a, _) (b, _) -> compare a b) ts, c)

(* ---------- bound simplification ----------

   Guarded-piece claiming intersects and unions bounds mechanically, which
   leaves [min]/[max] trees full of duplicated and dominated arms (e.g.
   [min (min (8j0+7, 61), 8j0+7)]).  Bounds are built once per claimed
   nest but re-evaluated by the executor on every nest entry — [enter]'s
   corner checks, the piece-cover check and the range prologue each walk
   them — so pruning the trees here is a direct cut to per-entry cost. *)

(* [ble a b]: true only when [a <= b] holds for every assignment of the
   free names (conservative — false means "unknown").  Affine leaves with
   identical term lists compare by constant; [min]/[max] recurse by the
   lattice rules; a floordiv by the same divisor is monotone. *)
let rec ble a b =
  match (a, b) with
  | Baff (ts1, c1), Baff (ts2, c2) -> ts1 = ts2 && c1 <= c2
  | Bmin (x, y), _ -> ble x b || ble y b
  | _, Bmax (x, y) -> ble a x || ble a y
  | Bmax (x, y), _ -> ble x b && ble y b
  | _, Bmin (x, y) -> ble a x && ble a y
  | Bfdiv (x, k1), Bfdiv (y, k2) -> k1 = k2 && ble x y
  | _ -> a = b

let aff_combine f (ts1, c1) (ts2, c2) =
  let ts =
    List.fold_left
      (fun acc (v, k) ->
        match List.assoc_opt v acc with
        | Some k0 ->
            let acc = List.remove_assoc v acc in
            let k' = f k0 k in
            if k' = 0 then acc else (v, k') :: acc
        | None ->
            let k' = f 0 k in
            if k' = 0 then acc else (v, k') :: acc)
      ts1 ts2
  in
  norm_affine (ts, f c1 c2)

(* Smart constructors: fold affine arithmetic, drop dominated arms. *)
let badd a b =
  match (a, b) with
  | Baff x, Baff y -> Baff (aff_combine ( + ) x y)
  | _ -> Badd (a, b)

let bsub a b =
  match (a, b) with
  | Baff x, Baff y -> Baff (aff_combine ( - ) x y)
  | _ -> Bsub (a, b)

let bscale a k =
  if k = 0 then Baff ([], 0)
  else
    match a with
    | Baff (ts, c) -> Baff (List.map (fun (v, q) -> (v, q * k)) ts, c * k)
    | _ -> Bscale (a, k)

let bmin a b = if ble a b then a else if ble b a then b else Bmin (a, b)
let bmax a b = if ble a b then b else if ble b a then a else Bmax (a, b)

let rec bsimp e =
  match e with
  | Baff _ -> e
  | Badd (a, b) -> badd (bsimp a) (bsimp b)
  | Bsub (a, b) -> bsub (bsimp a) (bsimp b)
  | Bscale (a, k) -> bscale (bsimp a) k
  | Bmin (a, b) -> bmin (bsimp a) (bsimp b)
  | Bmax (a, b) -> bmax (bsimp a) (bsimp b)
  | Bfdiv (a, k) -> (
      match bsimp a with
      | Baff ([], c) -> Baff ([], Tiramisu_support.Ints.fdiv c k)
      | a' -> Bfdiv (a', k))
  | Bmod (a, k) -> (
      match bsimp a with
      | Baff ([], c) -> Baff ([], Tiramisu_support.Ints.emod c k)
      | a' -> Bmod (a', k))

(* The body of a perfect-nest level: exactly one [For], comments allowed
   around it (same shape the parallel planner walks). *)
let single_for (s : L.stmt) : L.stmt option =
  match s with
  | L.For _ -> Some s
  | L.Block l -> (
      match
        List.filter
          (fun s -> match s with L.Comment _ -> false | _ -> true)
          l
      with
      | [ (L.For _ as f) ] -> Some f
      | _ -> None)
  | _ -> None

(* A guarded leaf: one else-less [If], or a block of them — the shape
   [compute_at]'s shifted producer copies lower to (blur's coalesced
   producer nest stores the same stencil under three overlapping
   interval guards).  Comments are dropped; anything else is not a
   guarded leaf. *)
let guard_pieces (s : L.stmt) : (L.cond * L.stmt) list option =
  match s with
  | L.If (c, t, None) -> Some [ (c, t) ]
  | L.Block l -> (
      let l =
        List.filter
          (fun s -> match s with L.Comment _ -> false | _ -> true)
          l
      in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | L.If (c, t, None) :: rest -> go ((c, t) :: acc) rest
        | _ -> None
      in
      match l with [] -> None | l -> go [] l)
  | _ -> None

(* Collect the maximal perfect [For] chain at [s]; raises [Reject] on
   non-CPU tags, shadowed variables, or bounds referencing a nest
   variable (non-rectangular).  Returns the levels outermost-first and
   the leaf body. *)
let collect_chain (s : L.stmt) : level list * string list * L.stmt =
  let rec go acc vars s =
    match s with
    | L.For { var; lo; hi; tag; body } ->
        (match tag with
        | L.Seq | L.Parallel | L.Unrolled | L.Vectorized _ -> ()
        | L.Gpu_block _ | L.Gpu_thread _ | L.Distributed -> raise Reject);
        if List.mem var vars then raise Reject;
        let vars = var :: vars in
        (* Bound classifier: affine where possible, otherwise peel the
           min/max/floordiv/mod/scale layers tiling and vector
           legalization produce (partial tiles bound inner loops by
           [min(t-1, n-1-t*outer)]; legalized vector blocks by
           [floord(...)]).  Nest variables stay rejected, so the
           planner's coalesced binder loops — whose bounds divide the
           fused variable — are still not claimable. *)
        let rec bnd e =
          match L.affine_terms e with
          | Some (ts, c) ->
              if List.exists (fun (v, _) -> List.mem v vars) ts then
                raise Reject;
              Baff (norm_affine (ts, c))
          | None -> (
              match e with
              | L.Bin (L.MinOp, a, b) -> Bmin (bnd a, bnd b)
              | L.Bin (L.MaxOp, a, b) -> Bmax (bnd a, bnd b)
              | L.Bin (L.FloorDiv, a, L.Int k) when k > 0 -> Bfdiv (bnd a, k)
              | L.Bin (L.Mod, a, L.Int k) when k > 0 -> Bmod (bnd a, k)
              | L.Bin (L.Add, a, b) -> Badd (bnd a, bnd b)
              | L.Bin (L.Sub, a, b) -> Bsub (bnd a, bnd b)
              | L.Bin (L.Mul, a, L.Int k) | L.Bin (L.Mul, L.Int k, a) ->
                  Bscale (bnd a, k)
              | L.Cast (_, a) -> bnd a
              | _ -> raise Reject)
        in
        let lvl =
          { lv_var = var; lv_lo = bnd lo; lv_hi = bnd hi; lv_tag = tag }
        in
        (match single_for body with
        | Some inner -> go (lvl :: acc) vars inner
        | None -> (List.rev (lvl :: acc), vars, body))
    | _ -> raise Reject
  in
  go [] [] s

(* ---------- emission ---------- *)

let compile_nest (s : L.stmt) : program option =
  match s with
  | L.For _ -> (
      try
        let levels, nest_vars, leaf = collect_chain s in
        let levels = Array.of_list levels in
        let d = Array.length levels in
        (* Parallel tags must be a prefix: a Parallel level under a
           sequential one would silently serialize inside the tape. *)
        let q = ref 0 in
        while !q < d && levels.(!q).lv_tag = L.Parallel do incr q done;
        let q = !q in
        for l = q to d - 1 do
          if levels.(l).lv_tag = L.Parallel then raise Reject
        done;
        (* Guarded leaves lower to bound intersections.  Each piece's
           guard must be a conjunction of affine comparisons over at most
           one nest variable each: a single-variable atom tightens that
           level's bounds (ceil/floor division against the coefficient),
           an environment-only atom empties the piece when violated
           (encoded by pushing the level-0 lower bound past any real
           extent — bounds are evaluated, never iterated, so the
           magnitude is safe).  The program iterates the union box
           (min of lows / max of highs across pieces) and, for >= 2
           pieces, records the per-piece bounds in [p_pieces] so the
           executor can verify per entry that the non-empty pieces tile
           the box contiguously — any other shape takes the counted
           closure fallback. *)
        let level_of_var v =
          let rec go l =
            if l >= d then raise Reject
            else if levels.(l).lv_var = v then l
            else go (l + 1)
          in
          go 0
        in
        let piece_bounds (cond : L.cond) : (bexpr * bexpr) array =
          let lo = Array.map (fun lv -> lv.lv_lo) levels in
          let hi = Array.map (fun lv -> lv.lv_hi) levels in
          let rec conjuncts c =
            match c with
            | L.And (a, b) -> conjuncts a @ conjuncts b
            | c -> [ c ]
          in
          let neg ts = List.map (fun (v, k) -> (v, -k)) ts in
          let merge t1 t2 =
            List.fold_left
              (fun acc (v, k) ->
                match List.assoc_opt v acc with
                | Some k0 ->
                    let acc = List.remove_assoc v acc in
                    if k0 + k = 0 then acc else (v, k0 + k) :: acc
                | None -> if k = 0 then acc else (v, k) :: acc)
              t1 t2
          in
          (* ts·vars + c >= 0 *)
          let constrain ((ts, c) : affine) =
            let nest, rest =
              List.partition (fun (v, _) -> List.mem v nest_vars) ts
            in
            match nest with
            | [] ->
                (* environment-only atom: 0 when satisfied, <= -1 when
                   violated; violation empties the piece *)
                let g = Bmin (Baff (norm_affine (rest, c)), Baff ([], 0)) in
                lo.(0) <-
                  Bmax (lo.(0), Badd (lo.(0), Bscale (g, -(1 lsl 40))))
            | [ (v, k) ] when k > 0 ->
                (* v >= ceil(-(rest + c) / k) *)
                let l = level_of_var v in
                let b =
                  if k = 1 then Baff (norm_affine (neg rest, -c))
                  else Bfdiv (Baff (norm_affine (neg rest, -c + k - 1)), k)
                in
                lo.(l) <- Bmax (lo.(l), b)
            | [ (v, k) ] ->
                (* v <= floor((rest + c) / -k) *)
                let l = level_of_var v in
                let k = -k in
                let b =
                  if k = 1 then Baff (norm_affine (rest, c))
                  else Bfdiv (Baff (norm_affine (rest, c)), k)
                in
                hi.(l) <- Bmin (hi.(l), b)
            | _ -> raise Reject
          in
          let atom a b =
            match (L.affine_terms a, L.affine_terms b) with
            | Some (ta, ca), Some (tb, cb) -> (merge ta (neg tb), ca - cb)
            | _ -> raise Reject
          in
          List.iter
            (fun (c : L.cond) ->
              match c with
              | L.True -> ()
              | L.Cmp (op, a, b) -> (
                  match op with
                  | L.GeOp -> constrain (atom a b)
                  | L.GtOp ->
                      let ts, c = atom a b in
                      constrain (ts, c - 1)
                  | L.LeOp -> constrain (atom b a)
                  | L.LtOp ->
                      let ts, c = atom b a in
                      constrain (ts, c - 1)
                  | L.EqOp ->
                      constrain (atom a b);
                      constrain (atom b a)
                  | L.NeOp -> raise Reject)
              | _ -> raise Reject)
            (conjuncts cond);
          Array.init d (fun l -> (lo.(l), hi.(l)))
        in
        let leaf, piece_bnds =
          match guard_pieces leaf with
          | None -> (leaf, [])
          | Some [] -> raise Reject
          | Some (((_, b0) :: rest) as ps) ->
              (* overlap soundness rests on the bodies being the same
                 program: structural equality, checked here *)
              List.iter (fun (_, b) -> if b <> b0 then raise Reject) rest;
              (b0, List.map (fun (c, _) -> piece_bounds c) ps)
        in
        let npieces = List.length piece_bnds in
        let piece_bnds =
          List.map
            (Array.map (fun (plo, phi) -> (bsimp plo, bsimp phi)))
            piece_bnds
        in
        let levels =
          if npieces = 0 then
            Array.map
              (fun lv ->
                { lv with lv_lo = bsimp lv.lv_lo; lv_hi = bsimp lv.lv_hi })
              levels
          else
            Array.mapi
              (fun l lv ->
                let fold1 f = function
                  | [] -> assert false
                  | x :: rest -> List.fold_left f x rest
                in
                { lv with
                  lv_lo =
                    fold1 bmin (List.map (fun pb -> fst pb.(l)) piece_bnds);
                  lv_hi =
                    fold1 bmax (List.map (fun pb -> snd pb.(l)) piece_bnds) })
              levels
        in
        let stores =
          match L.spec_stores leaf with
          | None | Some [] -> raise Reject
          | Some stores -> stores
        in
        List.iter
          (fun (_, idx, v) ->
            if not (List.for_all L.affine idx) then raise Reject;
            if not (L.spec_value_ok v) then raise Reject)
          stores;
        let stored_bufs = List.map (fun (b, _, _) -> b) stores in
        let inner_var = levels.(d - 1).lv_var in
        (* access table: identical (buffer, normalized index) pairs share
           one cursor *)
        let acc_tbl : (string * affine list, int) Hashtbl.t =
          Hashtbl.create 8
        in
        let acc_list = ref [] in
        let acc_index bname (idx : L.expr list) : int =
          let aidx =
            List.map
              (fun e ->
                match L.affine_terms e with
                | Some a -> norm_affine a
                | None -> raise Reject)
              idx
          in
          let key = (bname, aidx) in
          match Hashtbl.find_opt acc_tbl key with
          | Some i -> i
          | None ->
              let i = Hashtbl.length acc_tbl in
              Hashtbl.add acc_tbl key i;
              acc_list :=
                { ac_buf = bname; ac_idx = Array.of_list aidx;
                  ac_stored = List.mem bname stored_bufs }
                :: !acc_list;
              i
        in
        let access i = List.nth (List.rev !acc_list) i in
        let invariant_in_inner i =
          Array.for_all
            (fun (ts, _) -> not (List.mem_assoc inner_var ts))
            (access i).ac_idx
        in
        (* persistent registers *)
        let nreg = ref 0 in
        let new_reg () =
          let r = !nreg in
          incr nreg;
          r
        in
        let lits = ref [] in
        let lit_tbl : (int64, int) Hashtbl.t = Hashtbl.create 8 in
        let lit f =
          let key = Int64.bits_of_float f in
          match Hashtbl.find_opt lit_tbl key with
          | Some r -> r
          | None ->
              let r = new_reg () in
              Hashtbl.add lit_tbl key r;
              lits := (r, f) :: !lits;
              r
        in
        let hoists = ref [] in
        let hoist_tbl : (string, int) Hashtbl.t = Hashtbl.create 4 in
        let hoist u =
          match Hashtbl.find_opt hoist_tbl u with
          | Some r -> r
          | None ->
              let r = new_reg () in
              Hashtbl.add hoist_tbl u r;
              hoists := (r, u) :: !hoists;
              r
        in
        let ivregs = Array.init d (fun _ -> new_reg ()) in
        let iv_of_var u =
          let rec find l = if levels.(l).lv_var = u then l else find (l + 1) in
          ivregs.(find 0)
        in
        let promos = ref [] in
        let promo_tbl : (int, int) Hashtbl.t = Hashtbl.create 4 in
        (* accumulator: single store, address invariant in the innermost
           variable, same-buffer loads all alias it exactly — and the
           innermost level must not be part of the parallel split space *)
        let rec value_loads (e : L.expr) acc =
          match e with
          | L.Int _ | L.Float _ | L.Var _ -> acc
          | L.Load (b, idx) -> (b, idx) :: acc
          | L.Neg a | L.Cast (_, a) -> value_loads a acc
          | L.Bin (_, a, b) -> value_loads b (value_loads a acc)
          | L.Call (_, args) ->
              List.fold_left (fun acc a -> value_loads a acc) acc args
          | L.Select _ -> raise Reject
        in
        let all_loads =
          List.concat_map (fun (_, _, v) -> value_loads v []) stores
        in
        (* overlapping guarded pieces re-execute points; that is only
           sound when re-running the body stores the same bits, i.e. no
           stored value reads a buffer the nest writes *)
        if
          npieces >= 2
          && List.exists (fun (b, _) -> List.mem b stored_bufs) all_loads
        then raise Reject;
        let accum =
          match stores with
          | [ (sb, sidx, _) ] when npieces <= 1 && (q = 0 || q < d) ->
              let i = acc_index sb sidx in
              if
                invariant_in_inner i
                && List.for_all
                     (fun (b, idx) ->
                       b <> sb || acc_index b idx = i)
                     all_loads
              then begin
                let needs_load =
                  List.exists (fun (b, idx) -> b = sb && acc_index b idx = i)
                    all_loads
                in
                Some (new_reg (), i, needs_load)
              end
              else None
          | _ -> None
        in
        (* instruction emission with stack-disciplined temporaries; temps
           are encoded negative and remapped after the persistent count is
           final *)
        let code = ref [] in
        let ins op dst a b = code := b :: a :: dst :: op :: !code in
        let sp = ref 0 and max_tmp = ref 0 in
        let push () =
          let t = !sp in
          incr sp;
          if !sp > !max_tmp then max_tmp := !sp;
          -(t + 1)
        in
        let is_tmp r = r < 0 in
        let pop_if r = if is_tmp r then decr sp in
        let promo_or_load i =
          match accum with
          | Some (areg, ai, _) when ai = i -> areg
          | _ ->
              if invariant_in_inner i && not (access i).ac_stored then begin
                match Hashtbl.find_opt promo_tbl i with
                | Some r -> r
                | None ->
                    let r = new_reg () in
                    Hashtbl.add promo_tbl i r;
                    promos := (r, i) :: !promos;
                    r
              end
              else begin
                let dst = push () in
                ins op_load dst i 0;
                dst
              end
        in
        let unop op a_reg =
          pop_if a_reg;
          let t = push () in
          ins op t a_reg 0;
          t
        in
        let binop op ra rb =
          pop_if rb;
          pop_if ra;
          let t = push () in
          ins op t ra rb;
          t
        in
        let rec emit (e : L.expr) : int =
          match e with
          | L.Int n -> lit (float_of_int n)
          | L.Float f -> lit f
          | L.Var u ->
              if List.mem u nest_vars then iv_of_var u else hoist u
          | L.Load (b, idx) -> promo_or_load (acc_index b idx)
          | L.Neg a -> unop op_neg (emit a)
          | L.Cast (L.I32, a) -> unop op_trunc (emit a)
          | L.Cast (_, a) -> emit a
          | L.Select _ -> raise Reject
          | L.Bin (L.Add, x, L.Bin (L.Mul, a, b)) ->
              (* fma fusion: safe in place only when x landed in a temp *)
              let rx = emit x in
              let ra = emit a in
              let rb = emit b in
              pop_if rb;
              pop_if ra;
              if is_tmp rx then begin
                ins op_fma rx ra rb;
                rx
              end
              else begin
                let t = push () in
                ins op_mul t ra rb;
                ins op_add t rx t;
                t
              end
          | L.Bin (op, a, b) ->
              let code =
                match op with
                | L.Add -> op_add
                | L.Sub -> op_sub
                | L.Mul -> op_mul
                | L.Div -> op_div
                | L.FloorDiv -> op_fdivi
                | L.Mod -> op_modi
                | L.MinOp -> op_min
                | L.MaxOp -> op_max
              in
              let ra = emit a in
              let rb = emit b in
              binop code ra rb
          | L.Call (name, args) -> (
              match (name, args) with
              | "abs", [ a ] -> unop op_abs (emit a)
              | "sqrt", [ a ] -> unop op_sqrt (emit a)
              | "exp", [ a ] -> unop op_exp (emit a)
              | "log", [ a ] -> unop op_log (emit a)
              | "sin", [ a ] -> unop op_sin (emit a)
              | "cos", [ a ] -> unop op_cos (emit a)
              | "floor", [ a ] -> unop op_floor (emit a)
              | "pow", [ a; b ] ->
                  let ra = emit a in
                  let rb = emit b in
                  binop op_pow ra rb
              | "fmin", [ a; b ] ->
                  let ra = emit a in
                  let rb = emit b in
                  binop op_min ra rb
              | "fmax", [ a; b ] ->
                  let ra = emit a in
                  let rb = emit b in
                  binop op_max ra rb
              | "clamp", [ x; lo; hi ] ->
                  (* min (max x lo) hi, matching the closure evaluator *)
                  let rx = emit x in
                  let rlo = emit lo in
                  let t = binop op_max rx rlo in
                  let rhi = emit hi in
                  binop op_min t rhi
              | _ -> raise Reject)
        in
        List.iter
          (fun (sb, sidx, sval) ->
            sp := 0;
            let i = acc_index sb sidx in
            match accum with
            | Some (areg, ai, _) when ai = i -> (
                (* read-modify-write collapses onto the accumulator: the
                   aliasing load reads [areg], and the single write at the
                   end is the only mutation, so folding [acc + rest] into
                   an in-place add/fma is exact *)
                match sval with
                | L.Bin (L.Add, L.Load (b2, idx2), rest)
                  when b2 = sb && acc_index b2 idx2 = i -> (
                    match rest with
                    | L.Bin (L.Mul, a, b) ->
                        let ra = emit a in
                        let rb = emit b in
                        pop_if rb;
                        pop_if ra;
                        ins op_fma areg ra rb
                    | rest ->
                        let r = emit rest in
                        pop_if r;
                        ins op_add areg areg r)
                | sval ->
                    let r = emit sval in
                    pop_if r;
                    if r <> areg then ins op_mov areg r 0)
            | _ ->
                let r = emit sval in
                pop_if r;
                ins op_store 0 i r)
          stores;
        (* finalize: remap negative temps above the persistent registers *)
        let npersist = !nreg in
        let remap r = if r < 0 then npersist + (-r - 1) else r in
        let raw = Array.of_list (List.rev !code) in
        let n = Array.length raw / 4 in
        let packed = Array.make (Array.length raw) 0 in
        for k = 0 to n - 1 do
          let op = raw.(4 * k) in
          let dst = raw.((4 * k) + 1)
          and a = raw.((4 * k) + 2)
          and b = raw.((4 * k) + 3) in
          packed.(4 * k) <- op;
          if op = op_load then begin
            packed.((4 * k) + 1) <- remap dst;
            packed.((4 * k) + 2) <- a;
            packed.((4 * k) + 3) <- 0
          end
          else if op = op_store then begin
            packed.((4 * k) + 1) <- 0;
            packed.((4 * k) + 2) <- a;
            packed.((4 * k) + 3) <- remap b
          end
          else begin
            packed.((4 * k) + 1) <- remap dst;
            packed.((4 * k) + 2) <- remap a;
            packed.((4 * k) + 3) <- remap b
          end
        done;
        let accesses = Array.of_list (List.rev !acc_list) in
        (* vector-tier analysis: which iteration variables the body reads
           (operand scan, since unused fields are literal 0 and register 0
           is a real register), and whether lane batching is semantically
           transparent *)
        let ivuse = Array.make d false in
        let mark r =
          for l = 0 to d - 1 do
            if ivregs.(l) = r then ivuse.(l) <- true
          done
        in
        let load_set = Hashtbl.create 8 in
        let store_set = Hashtbl.create 8 in
        for k = 0 to n - 1 do
          let op = packed.(4 * k) in
          let dst = packed.((4 * k) + 1)
          and a = packed.((4 * k) + 2)
          and b = packed.((4 * k) + 3) in
          if op = op_load then Hashtbl.replace load_set a ()
          else if op = op_store then begin
            Hashtbl.replace store_set a ();
            mark b
          end
          else if op = op_fma then begin
            mark dst;
            mark a;
            mark b
          end
          else if
            op = op_mov || (op >= op_neg && op <= op_floor) || op = op_trunc
          then mark a
          else begin
            mark a;
            mark b
          end
        done;
        let rmw =
          List.sort compare
            (Hashtbl.fold
               (fun i () l -> if Hashtbl.mem load_set i then i :: l else l)
               store_set [])
        in
        let alias_bad =
          Hashtbl.fold
            (fun i () bad ->
              bad
              || (accesses.(i).ac_stored && not (Hashtbl.mem store_set i)))
            load_set false
        in
        let dup_store =
          let bufs =
            Hashtbl.fold (fun i () l -> accesses.(i).ac_buf :: l) store_set []
          in
          List.length bufs <> List.length (List.sort_uniq compare bufs)
        in
        Some
          { p_levels = levels;
            p_par = q;
            p_accesses = accesses;
            p_nregs = max 1 (npersist + !max_tmp);
            p_lits = Array.of_list (List.rev !lits);
            p_hoists = Array.of_list (List.rev !hoists);
            p_ivregs = ivregs;
            p_promos = Array.of_list (List.rev !promos);
            p_accum = accum;
            p_code = packed;
            p_ivuse = ivuse;
            p_vec_ok = accum = None && (not alias_bad) && not dup_store;
            p_rmw = Array.of_list rmw;
            p_pieces =
              (if npieces >= 2 then Array.of_list piece_bnds else [||]) }
      with Reject -> None)
  | _ -> None

let claimable s = compile_nest s <> None

(* Tape programs of a whole statement: claim maximal nests top-down, never
   descending into a claimed subtree (mirrors the executor's dispatch). *)
let scan (s : L.stmt) : program list =
  let out = ref [] in
  let rec go (s : L.stmt) =
    match s with
    | L.For { body; _ } -> (
        match compile_nest s with
        | Some p -> out := p :: !out
        | None -> go body)
    | L.Block l -> List.iter go l
    | L.If (_, t, e) ->
        go t;
        Option.iter go e
    | L.Alloc { body; _ } -> go body
    | L.Store _ | L.Barrier | L.Comment _ | L.Send _ | L.Recv _
    | L.Memcpy _ ->
        ()
  in
  go s;
  List.rev !out

(* ---------- printing ---------- *)

let nest_name p =
  String.concat "."
    (Array.to_list (Array.map (fun l -> l.lv_var) p.p_levels))

let summary p =
  Printf.sprintf
    "tape %s: depth=%d par=%d instrs=%d regs=%d accesses=%d vec=%s%s"
    (nest_name p)
    (Array.length p.p_levels)
    p.p_par (instr_count p) p.p_nregs
    (Array.length p.p_accesses)
    (if p.p_vec_ok then "ok"
     else if p.p_accum <> None then "accum"
     else "alias")
    (if Array.length p.p_pieces = 0 then ""
     else Printf.sprintf " pieces=%d" (Array.length p.p_pieces))

let affine_str ((ts, c) : affine) =
  let terms =
    List.map
      (fun (v, a) ->
        if a = 1 then v else Printf.sprintf "%d*%s" a v)
      ts
  in
  let parts = terms @ (if c <> 0 || terms = [] then [ string_of_int c ] else []) in
  String.concat "+" parts

let rec bexpr_str = function
  | Baff a -> affine_str a
  | Badd (a, b) -> Printf.sprintf "(%s+%s)" (bexpr_str a) (bexpr_str b)
  | Bsub (a, b) -> Printf.sprintf "(%s-%s)" (bexpr_str a) (bexpr_str b)
  | Bscale (a, k) -> Printf.sprintf "%d*%s" k (bexpr_str a)
  | Bmin (a, b) -> Printf.sprintf "min(%s,%s)" (bexpr_str a) (bexpr_str b)
  | Bmax (a, b) -> Printf.sprintf "max(%s,%s)" (bexpr_str a) (bexpr_str b)
  | Bfdiv (a, k) -> Printf.sprintf "floord(%s,%d)" (bexpr_str a) k
  | Bmod (a, k) -> Printf.sprintf "emod(%s,%d)" (bexpr_str a) k

let disassemble ?(lanes = 0) p =
  let vec = lanes > 1 && p.p_vec_ok in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "tape nest %s (depth %d, parallel prefix %d%s)\n"
       (nest_name p)
       (Array.length p.p_levels)
       p.p_par
       (if vec then Printf.sprintf ", lanes %d" lanes
        else if lanes > 1 then Printf.sprintf ", scalar (lanes %d off)" lanes
        else ""));
  Array.iteri
    (fun l (lv : level) ->
      Buffer.add_string b
        (Printf.sprintf "  level %d: %s in %s..%s [%s]\n" l lv.lv_var
           (bexpr_str lv.lv_lo) (bexpr_str lv.lv_hi)
           (L.tag_name lv.lv_tag)))
    p.p_levels;
  Array.iteri
    (fun k pb ->
      let parts =
        Array.to_list
          (Array.mapi
             (fun l (plo, phi) ->
               Printf.sprintf "%s in %s..%s" p.p_levels.(l).lv_var
                 (bexpr_str plo) (bexpr_str phi))
             pb)
      in
      Buffer.add_string b
        (Printf.sprintf "  piece %d: %s\n" k (String.concat ", " parts)))
    p.p_pieces;
  Array.iteri
    (fun i (a : access) ->
      Buffer.add_string b
        (Printf.sprintf "  access %d: %s%s%s\n" i a.ac_buf
           (String.concat ""
              (Array.to_list
                 (Array.map (fun ix -> "[" ^ affine_str ix ^ "]") a.ac_idx)))
           (if a.ac_stored then " (stored)" else "")))
    p.p_accesses;
  Buffer.add_string b
    (Printf.sprintf "  regs=%d lits=%d hoists=%d promos=%d%s\n" p.p_nregs
       (Array.length p.p_lits)
       (Array.length p.p_hoists)
       (Array.length p.p_promos)
       (match p.p_accum with
       | Some (r, i, load) ->
           Printf.sprintf " accum=r%d(access %d%s)" r i
             (if load then ", init from memory" else "")
       | None -> ""));
  let n = instr_count p in
  for k = 0 to n - 1 do
    let op = p.p_code.(4 * k) in
    let dst = p.p_code.((4 * k) + 1)
    and a = p.p_code.((4 * k) + 2)
    and bb = p.p_code.((4 * k) + 3) in
    let txt =
      if op = op_load then Printf.sprintf "r%d <- access%d" dst a
      else if op = op_store then Printf.sprintf "access%d <- r%d" a bb
      else if op = op_mov || (op >= op_neg && op <= op_floor) || op = op_trunc
      then Printf.sprintf "r%d <- r%d" dst a
      else Printf.sprintf "r%d <- r%d, r%d" dst a bb
    in
    let name =
      if not vec then op_name op
      else if op = op_load then "vload"   (* unit/strided/bcast at bind *)
      else if op = op_store then "vstore" (* unit/strided at bind *)
      else vop_name op
    in
    Buffer.add_string b (Printf.sprintf "    %2d: %-7s %s\n" k name txt)
  done;
  Buffer.contents b
