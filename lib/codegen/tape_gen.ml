(* Lowering rectangular loop nests to flat instruction tapes.

   The closure compiler pays an indirect call (and a boxed float result)
   per IR node per iteration; no schedule can amortize that floor.  This
   module widens the kernel specializer's contract — innermost loops over
   straight-line stores — to whole rectangular nests, and lowers them to a
   compact bytecode the {e backend} tape executor runs with no closures,
   no env lookups and no allocation in the hot loop:

   - a nest qualifies when it is a perfect [For] chain (comments allowed
     between levels) whose bounds are affine in names {e outside} the
     nest, whose tags are CPU tags ([Seq]/[Parallel]/[Unrolled]/
     [Vectorized]), and whose leaf is the {!Loop_ir.spec_stores} shape
     with affine indices and {!Loop_ir.spec_value_ok} values;
   - [Parallel] tags must form a prefix of the chain; the prefix depth is
     recorded so the executor can split the {e fused} iteration space of
     those levels across workers without the binder div/mods the parallel
     planner's coalescing would emit;
   - values compile to fixed-width (4-int) instructions over a float
     register file: literals, hoisted outer names and per-level iteration
     variables live in persistent registers, temporaries in a stack region
     sized by the deepest expression;
   - loads/stores address memory through per-access cursors the executor
     strength-reduces (base + per-level steps); loads invariant in the
     innermost variable from unwritten buffers are promoted to registers,
     and a single store invariant in the innermost variable whose
     same-buffer loads all alias it becomes a register accumulator
     (disallowed when the innermost level is part of the parallel prefix,
     where a worker boundary could split the accumulation);
   - [Add (x, Mul (a, b))] folds to an [Fma] instruction, defined with two
     roundings (multiply then add) so results stay bit-identical to the
     interpreter — it is a dispatch fusion, not a hardware fma.

   The program built here is abstract: buffer names and affine index
   terms, no arrays or strides.  The backend binds it against concrete
   buffers ({!Tape.bind}), which is also where rank mismatches and unknown
   buffers turn into a (counted) fallback to the closure path. *)

module L = Loop_ir

(* Bump when instruction semantics or the program layout change: the
   pipeline compile cache mixes this into its key, so a cached artifact
   built by an older tape generator can never be served to a newer one. *)
let version = 1

(* ---------- instruction set ---------- *)

(* One instruction is 4 ints: [op; dst; a; b].  For [op_load] the [a]
   field is an access index; for [op_store] the [a] field is the access
   and [b] the source register; everywhere else the fields are registers
   (unused fields are 0). *)

let op_load = 0   (* dst <- data[a][cur[a]] *)
let op_store = 1  (* data[a][cur[a]] <- regs[b] *)
let op_mov = 2
let op_add = 3
let op_sub = 4
let op_mul = 5
let op_div = 6
let op_min = 7
let op_max = 8
let op_fma = 9    (* dst <- dst +. (a *. b): two roundings, bit-exact *)
let op_neg = 10
let op_abs = 11
let op_sqrt = 12
let op_exp = 13
let op_log = 14
let op_sin = 15
let op_cos = 16
let op_floor = 17
let op_pow = 18
let op_fdivi = 19 (* euclidean floordiv on int_of_float operands *)
let op_modi = 20  (* euclidean mod on int_of_float operands *)
let op_trunc = 21 (* Cast to I32 and back: float_of_int (int_of_float a) *)

let op_name = function
  | 0 -> "load" | 1 -> "store" | 2 -> "mov" | 3 -> "add" | 4 -> "sub"
  | 5 -> "mul" | 6 -> "div" | 7 -> "min" | 8 -> "max" | 9 -> "fma"
  | 10 -> "neg" | 11 -> "abs" | 12 -> "sqrt" | 13 -> "exp" | 14 -> "log"
  | 15 -> "sin" | 16 -> "cos" | 17 -> "floor" | 18 -> "pow"
  | 19 -> "fdivi" | 20 -> "modi" | 21 -> "trunc"
  | _ -> "?"

(* ---------- the abstract program ---------- *)

(* Per-dimension affine index: sorted (var, coeff) terms plus a constant.
   Terms may reference nest variables (resolved to per-level cursor steps
   at bind time) and free names (parameters, enclosing loop variables —
   resolved to env slots at bind time). *)
type affine = (string * int) list * int

type access = {
  ac_buf : string;
  ac_idx : affine array;  (* one entry per dimension *)
  ac_stored : bool;       (* some store in the leaf writes this buffer *)
}

type level = {
  lv_var : string;
  lv_lo : affine;         (* over names outside the nest only *)
  lv_hi : affine;
  lv_tag : L.loop_tag;
}

type program = {
  p_levels : level array;        (* outermost first *)
  p_par : int;                   (* length of the Parallel tag prefix *)
  p_accesses : access array;
  p_nregs : int;                 (* register-file size *)
  p_lits : (int * float) array;  (* reg <- literal, once per state *)
  p_hoists : (int * string) array; (* reg <- float env.(name), per range *)
  p_ivregs : int array;          (* float register of each level's var *)
  p_promos : (int * int) array;  (* (reg, access): per-segment load *)
  p_accum : (int * int * bool) option;
    (* (reg, store access, init-from-memory): register accumulator *)
  p_code : int array;            (* packed body instructions *)
}

let instr_count p = Array.length p.p_code / 4

(* ---------- classification ---------- *)

exception Reject

let norm_affine ((ts, c) : affine) : affine =
  (List.sort (fun (a, _) (b, _) -> compare a b) ts, c)

(* The body of a perfect-nest level: exactly one [For], comments allowed
   around it (same shape the parallel planner walks). *)
let single_for (s : L.stmt) : L.stmt option =
  match s with
  | L.For _ -> Some s
  | L.Block l -> (
      match
        List.filter
          (fun s -> match s with L.Comment _ -> false | _ -> true)
          l
      with
      | [ (L.For _ as f) ] -> Some f
      | _ -> None)
  | _ -> None

(* Collect the maximal perfect [For] chain at [s]; raises [Reject] on
   non-CPU tags, shadowed variables, or bounds referencing a nest
   variable (non-rectangular).  Returns the levels outermost-first and
   the leaf body. *)
let collect_chain (s : L.stmt) : level list * string list * L.stmt =
  let rec go acc vars s =
    match s with
    | L.For { var; lo; hi; tag; body } ->
        (match tag with
        | L.Seq | L.Parallel | L.Unrolled | L.Vectorized _ -> ()
        | L.Gpu_block _ | L.Gpu_thread _ | L.Distributed -> raise Reject);
        if List.mem var vars then raise Reject;
        let vars = var :: vars in
        let aff e =
          match L.affine_terms e with
          | None -> raise Reject
          | Some (ts, c) ->
              if List.exists (fun (v, _) -> List.mem v vars) ts then
                raise Reject;
              norm_affine (ts, c)
        in
        let lvl =
          { lv_var = var; lv_lo = aff lo; lv_hi = aff hi; lv_tag = tag }
        in
        (match single_for body with
        | Some inner -> go (lvl :: acc) vars inner
        | None -> (List.rev (lvl :: acc), vars, body))
    | _ -> raise Reject
  in
  go [] [] s

(* ---------- emission ---------- *)

let compile_nest (s : L.stmt) : program option =
  match s with
  | L.For _ -> (
      try
        let levels, nest_vars, leaf = collect_chain s in
        let levels = Array.of_list levels in
        let d = Array.length levels in
        (* Parallel tags must be a prefix: a Parallel level under a
           sequential one would silently serialize inside the tape. *)
        let q = ref 0 in
        while !q < d && levels.(!q).lv_tag = L.Parallel do incr q done;
        let q = !q in
        for l = q to d - 1 do
          if levels.(l).lv_tag = L.Parallel then raise Reject
        done;
        let stores =
          match L.spec_stores leaf with
          | None | Some [] -> raise Reject
          | Some stores -> stores
        in
        List.iter
          (fun (_, idx, v) ->
            if not (List.for_all L.affine idx) then raise Reject;
            if not (L.spec_value_ok v) then raise Reject)
          stores;
        let stored_bufs = List.map (fun (b, _, _) -> b) stores in
        let inner_var = levels.(d - 1).lv_var in
        (* access table: identical (buffer, normalized index) pairs share
           one cursor *)
        let acc_tbl : (string * affine list, int) Hashtbl.t =
          Hashtbl.create 8
        in
        let acc_list = ref [] in
        let acc_index bname (idx : L.expr list) : int =
          let aidx =
            List.map
              (fun e ->
                match L.affine_terms e with
                | Some a -> norm_affine a
                | None -> raise Reject)
              idx
          in
          let key = (bname, aidx) in
          match Hashtbl.find_opt acc_tbl key with
          | Some i -> i
          | None ->
              let i = Hashtbl.length acc_tbl in
              Hashtbl.add acc_tbl key i;
              acc_list :=
                { ac_buf = bname; ac_idx = Array.of_list aidx;
                  ac_stored = List.mem bname stored_bufs }
                :: !acc_list;
              i
        in
        let access i = List.nth (List.rev !acc_list) i in
        let invariant_in_inner i =
          Array.for_all
            (fun (ts, _) -> not (List.mem_assoc inner_var ts))
            (access i).ac_idx
        in
        (* persistent registers *)
        let nreg = ref 0 in
        let new_reg () =
          let r = !nreg in
          incr nreg;
          r
        in
        let lits = ref [] in
        let lit_tbl : (int64, int) Hashtbl.t = Hashtbl.create 8 in
        let lit f =
          let key = Int64.bits_of_float f in
          match Hashtbl.find_opt lit_tbl key with
          | Some r -> r
          | None ->
              let r = new_reg () in
              Hashtbl.add lit_tbl key r;
              lits := (r, f) :: !lits;
              r
        in
        let hoists = ref [] in
        let hoist_tbl : (string, int) Hashtbl.t = Hashtbl.create 4 in
        let hoist u =
          match Hashtbl.find_opt hoist_tbl u with
          | Some r -> r
          | None ->
              let r = new_reg () in
              Hashtbl.add hoist_tbl u r;
              hoists := (r, u) :: !hoists;
              r
        in
        let ivregs = Array.init d (fun _ -> new_reg ()) in
        let iv_of_var u =
          let rec find l = if levels.(l).lv_var = u then l else find (l + 1) in
          ivregs.(find 0)
        in
        let promos = ref [] in
        let promo_tbl : (int, int) Hashtbl.t = Hashtbl.create 4 in
        (* accumulator: single store, address invariant in the innermost
           variable, same-buffer loads all alias it exactly — and the
           innermost level must not be part of the parallel split space *)
        let rec value_loads (e : L.expr) acc =
          match e with
          | L.Int _ | L.Float _ | L.Var _ -> acc
          | L.Load (b, idx) -> (b, idx) :: acc
          | L.Neg a | L.Cast (_, a) -> value_loads a acc
          | L.Bin (_, a, b) -> value_loads b (value_loads a acc)
          | L.Call (_, args) ->
              List.fold_left (fun acc a -> value_loads a acc) acc args
          | L.Select _ -> raise Reject
        in
        let all_loads =
          List.concat_map (fun (_, _, v) -> value_loads v []) stores
        in
        let accum =
          match stores with
          | [ (sb, sidx, _) ] when q = 0 || q < d ->
              let i = acc_index sb sidx in
              if
                invariant_in_inner i
                && List.for_all
                     (fun (b, idx) ->
                       b <> sb || acc_index b idx = i)
                     all_loads
              then begin
                let needs_load =
                  List.exists (fun (b, idx) -> b = sb && acc_index b idx = i)
                    all_loads
                in
                Some (new_reg (), i, needs_load)
              end
              else None
          | _ -> None
        in
        (* instruction emission with stack-disciplined temporaries; temps
           are encoded negative and remapped after the persistent count is
           final *)
        let code = ref [] in
        let ins op dst a b = code := b :: a :: dst :: op :: !code in
        let sp = ref 0 and max_tmp = ref 0 in
        let push () =
          let t = !sp in
          incr sp;
          if !sp > !max_tmp then max_tmp := !sp;
          -(t + 1)
        in
        let is_tmp r = r < 0 in
        let pop_if r = if is_tmp r then decr sp in
        let promo_or_load i =
          match accum with
          | Some (areg, ai, _) when ai = i -> areg
          | _ ->
              if invariant_in_inner i && not (access i).ac_stored then begin
                match Hashtbl.find_opt promo_tbl i with
                | Some r -> r
                | None ->
                    let r = new_reg () in
                    Hashtbl.add promo_tbl i r;
                    promos := (r, i) :: !promos;
                    r
              end
              else begin
                let dst = push () in
                ins op_load dst i 0;
                dst
              end
        in
        let unop op a_reg =
          pop_if a_reg;
          let t = push () in
          ins op t a_reg 0;
          t
        in
        let binop op ra rb =
          pop_if rb;
          pop_if ra;
          let t = push () in
          ins op t ra rb;
          t
        in
        let rec emit (e : L.expr) : int =
          match e with
          | L.Int n -> lit (float_of_int n)
          | L.Float f -> lit f
          | L.Var u ->
              if List.mem u nest_vars then iv_of_var u else hoist u
          | L.Load (b, idx) -> promo_or_load (acc_index b idx)
          | L.Neg a -> unop op_neg (emit a)
          | L.Cast (L.I32, a) -> unop op_trunc (emit a)
          | L.Cast (_, a) -> emit a
          | L.Select _ -> raise Reject
          | L.Bin (L.Add, x, L.Bin (L.Mul, a, b)) ->
              (* fma fusion: safe in place only when x landed in a temp *)
              let rx = emit x in
              let ra = emit a in
              let rb = emit b in
              pop_if rb;
              pop_if ra;
              if is_tmp rx then begin
                ins op_fma rx ra rb;
                rx
              end
              else begin
                let t = push () in
                ins op_mul t ra rb;
                ins op_add t rx t;
                t
              end
          | L.Bin (op, a, b) ->
              let code =
                match op with
                | L.Add -> op_add
                | L.Sub -> op_sub
                | L.Mul -> op_mul
                | L.Div -> op_div
                | L.FloorDiv -> op_fdivi
                | L.Mod -> op_modi
                | L.MinOp -> op_min
                | L.MaxOp -> op_max
              in
              let ra = emit a in
              let rb = emit b in
              binop code ra rb
          | L.Call (name, args) -> (
              match (name, args) with
              | "abs", [ a ] -> unop op_abs (emit a)
              | "sqrt", [ a ] -> unop op_sqrt (emit a)
              | "exp", [ a ] -> unop op_exp (emit a)
              | "log", [ a ] -> unop op_log (emit a)
              | "sin", [ a ] -> unop op_sin (emit a)
              | "cos", [ a ] -> unop op_cos (emit a)
              | "floor", [ a ] -> unop op_floor (emit a)
              | "pow", [ a; b ] ->
                  let ra = emit a in
                  let rb = emit b in
                  binop op_pow ra rb
              | "fmin", [ a; b ] ->
                  let ra = emit a in
                  let rb = emit b in
                  binop op_min ra rb
              | "fmax", [ a; b ] ->
                  let ra = emit a in
                  let rb = emit b in
                  binop op_max ra rb
              | "clamp", [ x; lo; hi ] ->
                  (* min (max x lo) hi, matching the closure evaluator *)
                  let rx = emit x in
                  let rlo = emit lo in
                  let t = binop op_max rx rlo in
                  let rhi = emit hi in
                  binop op_min t rhi
              | _ -> raise Reject)
        in
        List.iter
          (fun (sb, sidx, sval) ->
            sp := 0;
            let i = acc_index sb sidx in
            match accum with
            | Some (areg, ai, _) when ai = i -> (
                (* read-modify-write collapses onto the accumulator: the
                   aliasing load reads [areg], and the single write at the
                   end is the only mutation, so folding [acc + rest] into
                   an in-place add/fma is exact *)
                match sval with
                | L.Bin (L.Add, L.Load (b2, idx2), rest)
                  when b2 = sb && acc_index b2 idx2 = i -> (
                    match rest with
                    | L.Bin (L.Mul, a, b) ->
                        let ra = emit a in
                        let rb = emit b in
                        pop_if rb;
                        pop_if ra;
                        ins op_fma areg ra rb
                    | rest ->
                        let r = emit rest in
                        pop_if r;
                        ins op_add areg areg r)
                | sval ->
                    let r = emit sval in
                    pop_if r;
                    if r <> areg then ins op_mov areg r 0)
            | _ ->
                let r = emit sval in
                pop_if r;
                ins op_store 0 i r)
          stores;
        (* finalize: remap negative temps above the persistent registers *)
        let npersist = !nreg in
        let remap r = if r < 0 then npersist + (-r - 1) else r in
        let raw = Array.of_list (List.rev !code) in
        let n = Array.length raw / 4 in
        let packed = Array.make (Array.length raw) 0 in
        for k = 0 to n - 1 do
          let op = raw.(4 * k) in
          let dst = raw.((4 * k) + 1)
          and a = raw.((4 * k) + 2)
          and b = raw.((4 * k) + 3) in
          packed.(4 * k) <- op;
          if op = op_load then begin
            packed.((4 * k) + 1) <- remap dst;
            packed.((4 * k) + 2) <- a;
            packed.((4 * k) + 3) <- 0
          end
          else if op = op_store then begin
            packed.((4 * k) + 1) <- 0;
            packed.((4 * k) + 2) <- a;
            packed.((4 * k) + 3) <- remap b
          end
          else begin
            packed.((4 * k) + 1) <- remap dst;
            packed.((4 * k) + 2) <- remap a;
            packed.((4 * k) + 3) <- remap b
          end
        done;
        Some
          { p_levels = levels;
            p_par = q;
            p_accesses = Array.of_list (List.rev !acc_list);
            p_nregs = max 1 (npersist + !max_tmp);
            p_lits = Array.of_list (List.rev !lits);
            p_hoists = Array.of_list (List.rev !hoists);
            p_ivregs = ivregs;
            p_promos = Array.of_list (List.rev !promos);
            p_accum = accum;
            p_code = packed }
      with Reject -> None)
  | _ -> None

let claimable s = compile_nest s <> None

(* Tape programs of a whole statement: claim maximal nests top-down, never
   descending into a claimed subtree (mirrors the executor's dispatch). *)
let scan (s : L.stmt) : program list =
  let out = ref [] in
  let rec go (s : L.stmt) =
    match s with
    | L.For { body; _ } -> (
        match compile_nest s with
        | Some p -> out := p :: !out
        | None -> go body)
    | L.Block l -> List.iter go l
    | L.If (_, t, e) ->
        go t;
        Option.iter go e
    | L.Alloc { body; _ } -> go body
    | L.Store _ | L.Barrier | L.Comment _ | L.Send _ | L.Recv _
    | L.Memcpy _ ->
        ()
  in
  go s;
  List.rev !out

(* ---------- printing ---------- *)

let nest_name p =
  String.concat "."
    (Array.to_list (Array.map (fun l -> l.lv_var) p.p_levels))

let summary p =
  Printf.sprintf "tape %s: depth=%d par=%d instrs=%d regs=%d accesses=%d"
    (nest_name p)
    (Array.length p.p_levels)
    p.p_par (instr_count p) p.p_nregs
    (Array.length p.p_accesses)

let affine_str ((ts, c) : affine) =
  let terms =
    List.map
      (fun (v, a) ->
        if a = 1 then v else Printf.sprintf "%d*%s" a v)
      ts
  in
  let parts = terms @ (if c <> 0 || terms = [] then [ string_of_int c ] else []) in
  String.concat "+" parts

let disassemble p =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "tape nest %s (depth %d, parallel prefix %d)\n"
       (nest_name p)
       (Array.length p.p_levels)
       p.p_par);
  Array.iteri
    (fun l (lv : level) ->
      Buffer.add_string b
        (Printf.sprintf "  level %d: %s in %s..%s [%s]\n" l lv.lv_var
           (affine_str lv.lv_lo) (affine_str lv.lv_hi)
           (L.tag_name lv.lv_tag)))
    p.p_levels;
  Array.iteri
    (fun i (a : access) ->
      Buffer.add_string b
        (Printf.sprintf "  access %d: %s%s%s\n" i a.ac_buf
           (String.concat ""
              (Array.to_list
                 (Array.map (fun ix -> "[" ^ affine_str ix ^ "]") a.ac_idx)))
           (if a.ac_stored then " (stored)" else "")))
    p.p_accesses;
  Buffer.add_string b
    (Printf.sprintf "  regs=%d lits=%d hoists=%d promos=%d%s\n" p.p_nregs
       (Array.length p.p_lits)
       (Array.length p.p_hoists)
       (Array.length p.p_promos)
       (match p.p_accum with
       | Some (r, i, load) ->
           Printf.sprintf " accum=r%d(access %d%s)" r i
             (if load then ", init from memory" else "")
       | None -> ""));
  let n = instr_count p in
  for k = 0 to n - 1 do
    let op = p.p_code.(4 * k) in
    let dst = p.p_code.((4 * k) + 1)
    and a = p.p_code.((4 * k) + 2)
    and bb = p.p_code.((4 * k) + 3) in
    let txt =
      if op = op_load then Printf.sprintf "r%d <- access%d" dst a
      else if op = op_store then Printf.sprintf "access%d <- r%d" a bb
      else if op = op_mov || (op >= op_neg && op <= op_floor) || op = op_trunc
      then Printf.sprintf "r%d <- r%d" dst a
      else Printf.sprintf "r%d <- r%d, r%d" dst a bb
    in
    Buffer.add_string b (Printf.sprintf "    %2d: %-6s %s\n" k (op_name op) txt)
  done;
  Buffer.contents b
