module L = Loop_ir

(* FloorDiv, Mod, MinOp and MaxOp are emitted as helper calls (floord /
   emod / min / max) by [expr], never through this infix table: C's native
   [/] and [%] truncate toward zero, while the interpreter and the compiled
   backend use floor division and the matching floored modulo
   ({!Tiramisu_support.Ints.fdiv}/[emod]) — they differ on negative
   operands, e.g. [-5 mod 3] is 1 floored but -2 truncated. *)
let binop = function
  | L.Add -> "+" | L.Sub -> "-" | L.Mul -> "*" | L.Div -> "/"
  | L.FloorDiv | L.Mod | L.MinOp | L.MaxOp -> assert false

let cmpop = function
  | L.EqOp -> "==" | L.NeOp -> "!=" | L.LtOp -> "<" | L.LeOp -> "<="
  | L.GtOp -> ">" | L.GeOp -> ">="

type ctx = {
  shapes : (string * int array) list;
  buf : Buffer.t;
  mutable indent : int;
  mutable kernels : string list;  (* emitted CUDA-style kernels *)
}

let rec expr ctx (e : L.expr) : string =
  match e with
  | L.Int n -> string_of_int n
  | L.Float f ->
      let s = Printf.sprintf "%.9g" f in
      if String.contains s '.' || String.contains s 'e' then s ^ "f"
      else s ^ ".0f"
  | L.Var v -> v
  | L.Neg a -> Printf.sprintf "(-%s)" (expr ctx a)
  | L.Cast (t, a) -> Printf.sprintf "((%s)%s)" (L.dtype_name t) (expr ctx a)
  | L.Bin (L.MinOp, a, b) ->
      Printf.sprintf "min(%s, %s)" (expr ctx a) (expr ctx b)
  | L.Bin (L.MaxOp, a, b) ->
      Printf.sprintf "max(%s, %s)" (expr ctx a) (expr ctx b)
  | L.Bin (L.FloorDiv, a, b) ->
      Printf.sprintf "floord(%s, %s)" (expr ctx a) (expr ctx b)
  | L.Bin (L.Mod, a, b) ->
      Printf.sprintf "emod(%s, %s)" (expr ctx a) (expr ctx b)
  | L.Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr ctx a) (binop op) (expr ctx b)
  | L.Select (c, a, b) ->
      Printf.sprintf "(%s ? %s : %s)" (cond ctx c) (expr ctx a) (expr ctx b)
  | L.Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (expr ctx) args))
  | L.Load (b, idx) -> Printf.sprintf "%s[%s]" b (linear ctx b idx)

and linear ctx b idx =
  (* Row-major flattening against the known buffer shape. *)
  match List.assoc_opt b ctx.shapes with
  | None -> String.concat " + " (List.map (expr ctx) idx)
  | Some dims ->
      let n = List.length idx in
      let parts =
        List.mapi
          (fun k e ->
            let stride = ref 1 in
            for d = k + 1 to n - 1 do
              if d < Array.length dims then stride := !stride * dims.(d)
            done;
            if !stride = 1 then Printf.sprintf "(%s)" (expr ctx e)
            else Printf.sprintf "(%s) * %d" (expr ctx e) !stride)
          idx
      in
      String.concat " + " parts

and cond ctx (c : L.cond) : string =
  match c with
  | L.True -> "1"
  | L.Cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (expr ctx a) (cmpop op) (expr ctx b)
  | L.And (a, b) -> Printf.sprintf "(%s && %s)" (cond ctx a) (cond ctx b)
  | L.Or (a, b) -> Printf.sprintf "(%s || %s)" (cond ctx a) (cond ctx b)
  | L.Not a -> Printf.sprintf "(!%s)" (cond ctx a)

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let rec stmt ctx (s : L.stmt) : unit =
  match s with
  | L.Block l -> List.iter (stmt ctx) l
  | L.Comment c -> line ctx "// %s" c
  | L.Barrier -> line ctx "__syncthreads();"
  | L.Store (b, idx, v) ->
      line ctx "%s[%s] = %s;" b (linear ctx b idx) (expr ctx v)
  | L.If (c, t, e) ->
      line ctx "if (%s) {" (cond ctx c);
      ctx.indent <- ctx.indent + 1;
      stmt ctx t;
      ctx.indent <- ctx.indent - 1;
      (match e with
      | None -> line ctx "}"
      | Some e ->
          line ctx "} else {";
          ctx.indent <- ctx.indent + 1;
          stmt ctx e;
          ctx.indent <- ctx.indent - 1;
          line ctx "}")
  | L.For { var; lo; hi; tag; body } ->
      (match tag with
      | L.Distributed ->
          line ctx "// distributed: each rank executes one iteration";
          line ctx "// int %s = rank; if (%s < %s || %s > %s) skip;" var var
            (expr ctx lo) var (expr ctx hi)
      | L.Gpu_block a ->
          line ctx "// CUDA: %s = blockIdx.%c in [%s, %s]" var "xyz".[a]
            (expr ctx lo) (expr ctx hi)
      | L.Gpu_thread a ->
          line ctx "// CUDA: %s = threadIdx.%c in [%s, %s]" var "xyz".[a]
            (expr ctx lo) (expr ctx hi)
      | L.Parallel | L.Vectorized _ | L.Unrolled | L.Seq -> ());
      (* A loop pragma binds to the next [for] statement in C, so it must
         be the immediately preceding emitted line — nothing (a guard [if],
         a comment, another statement) may come between them.  Emitting the
         pragma and the for-line back-to-back here is the only place loop
         pragmas are produced. *)
      (match tag with
      | L.Parallel -> line ctx "#pragma omp parallel for"
      | L.Vectorized w -> line ctx "#pragma omp simd simdlen(%d)" w
      | L.Unrolled -> line ctx "#pragma unroll"
      | _ -> ());
      line ctx "for (int %s = %s; %s <= %s; %s++) {" var (expr ctx lo) var
        (expr ctx hi) var;
      ctx.indent <- ctx.indent + 1;
      stmt ctx body;
      ctx.indent <- ctx.indent - 1;
      line ctx "}"
  | L.Alloc { buf; dtype; dims; mem; body } ->
      let size =
        String.concat " * " (List.map (fun d -> expr ctx d) dims)
      in
      line ctx "{ // %s allocation" (L.mem_space_name mem);
      ctx.indent <- ctx.indent + 1;
      (match mem with
      | L.Gpu_shared -> line ctx "__shared__ %s %s[%s];" (L.dtype_name dtype) buf size
      | _ ->
          line ctx "%s *%s = (%s *)malloc(sizeof(%s) * %s);"
            (L.dtype_name dtype) buf (L.dtype_name dtype) (L.dtype_name dtype)
            size);
      stmt ctx body;
      (match mem with L.Gpu_shared -> () | _ -> line ctx "free(%s);" buf);
      ctx.indent <- ctx.indent - 1;
      line ctx "}"
  | L.Send { dst; buf; offset; count; props } ->
      line ctx "MPI_%s(&%s[%s], %s, MPI_FLOAT, %s, 0, MPI_COMM_WORLD%s);"
        (if props.L.async then "Isend" else "Send")
        buf (linear ctx buf offset) (expr ctx count) (expr ctx dst)
        (if props.L.async then ", &req" else "")
  | L.Recv { src; buf; offset; count; _ } ->
      line ctx
        "MPI_Recv(&%s[%s], %s, MPI_FLOAT, %s, 0, MPI_COMM_WORLD, \
         MPI_STATUS_IGNORE);"
        buf (linear ctx buf offset) (expr ctx count) (expr ctx src)
  | L.Memcpy { dst; src; direction } ->
      line ctx "cudaMemcpy(%s, %s, sizeof(%s), cudaMemcpy%s);" dst src src
        (match direction with
        | "host_to_device" -> "HostToDevice"
        | "device_to_host" -> "DeviceToHost"
        | _ -> "DeviceToDevice")

let emit_function ~name ~params ~buffers body =
  let ctx = { shapes = buffers; buf = Buffer.create 4096; indent = 0;
              kernels = [] } in
  ignore ctx.kernels;
  line ctx "// generated by tiramisu-ocaml";
  line ctx "#include <math.h>";
  line ctx "#include <stdlib.h>";
  line ctx "#include <stdint.h>";
  line ctx "#define min(a, b) ((a) < (b) ? (a) : (b))";
  line ctx "#define max(a, b) ((a) > (b) ? (a) : (b))";
  line ctx
    "static inline int floord(int a, int b) { int q = a / b, r = a %% b; \
     return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q; }";
  (* Floored modulo, matching Ints.emod = a - b * floord(a, b): the result
     has the divisor's sign, where C's %% truncates (dividend's sign). *)
  line ctx
    "static inline int emod(int a, int b) { int r = a %% b; \
     return (r != 0 && ((r < 0) != (b < 0))) ? r + b : r; }";
  line ctx "";
  let args =
    List.map (fun p -> Printf.sprintf "int %s" p) params
    @ List.map (fun (b, _) -> Printf.sprintf "float *%s" b) buffers
  in
  line ctx "void %s(%s) {" name (String.concat ", " args);
  ctx.indent <- 1;
  stmt ctx body;
  ctx.indent <- 0;
  line ctx "}";
  Buffer.contents ctx.buf

let emit_expr e =
  expr { shapes = []; buf = Buffer.create 64; indent = 0; kernels = [] } e
