(* The imperative loop IR that polyhedral AST generation targets.

   This plays the role LLVM IR (via Halide) plays in the paper's §V-A: the
   common lowering target of the CPU, GPU and distributed backends.  Unlike
   a textual IR it is directly executable by the backends (interpreter,
   closure compiler, simulators) and printable as C-like source. *)

type dtype = F32 | F64 | I32 | U8

let dtype_name = function F32 -> "float" | F64 -> "double" | I32 -> "int32_t" | U8 -> "uint8_t"

(* Where a buffer lives; mirrors Table II's tag_gpu_* commands and the
   distributed local buffers. *)
type mem_space =
  | Host
  | Gpu_global
  | Gpu_shared
  | Gpu_local
  | Gpu_constant

let mem_space_name = function
  | Host -> "host"
  | Gpu_global -> "global"
  | Gpu_shared -> "shared"
  | Gpu_local -> "local"
  | Gpu_constant -> "constant"

type binop = Add | Sub | Mul | Div | FloorDiv | Mod | MinOp | MaxOp

type cmpop = EqOp | NeOp | LtOp | LeOp | GtOp | GeOp

type expr =
  | Int of int
  | Float of float
  | Var of string                     (* loop iterator or parameter *)
  | Load of string * expr list        (* buffer, indices *)
  | Bin of binop * expr * expr
  | Neg of expr
  | Cast of dtype * expr
  | Select of cond * expr * expr
  | Call of string * expr list        (* pure math intrinsics: abs, sqrt, ... *)

and cond =
  | True
  | Cmp of cmpop * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond

(* How a loop dimension is mapped to hardware (Layer II space tags). *)
type loop_tag =
  | Seq
  | Parallel                          (* cpu tag: shared-memory parallel *)
  | Vectorized of int                 (* vec(s) *)
  | Unrolled                          (* unroll *)
  | Gpu_block of int                  (* gpuB, grid axis 0/1/2 *)
  | Gpu_thread of int                 (* gpuT, thread axis 0/1/2 *)
  | Distributed                       (* node tag: MPI rank dimension *)

let tag_name = function
  | Seq -> "for"
  | Parallel -> "parallel for"
  | Vectorized s -> Printf.sprintf "vectorized(%d) for" s
  | Unrolled -> "unrolled for"
  | Gpu_block a -> Printf.sprintf "GPUBlock.%c for" "xyz".[a]
  | Gpu_thread a -> Printf.sprintf "GPUThread.%c for" "xyz".[a]
  | Distributed -> "distributed for"

type comm_props = { async : bool }

type stmt =
  | Block of stmt list
  | For of { var : string; lo : expr; hi : expr; tag : loop_tag; body : stmt }
    (* iterates var = lo .. hi inclusive *)
  | If of cond * stmt * stmt option
  | Store of string * expr list * expr
  | Alloc of { buf : string; dtype : dtype; dims : expr list; mem : mem_space; body : stmt }
    (* scoped allocation: freed when body exits — paper's allocate_at *)
  | Barrier                            (* barrier_at: GPU block / node barrier *)
  | Send of { dst : expr; buf : string; offset : expr list; count : expr; props : comm_props }
  | Recv of { src : expr; buf : string; offset : expr list; count : expr; props : comm_props }
  | Memcpy of { dst : string; src : string; direction : string }
    (* whole-buffer host_to_device / device_to_host copies *)
  | Comment of string

(* ---------- constructors / helpers ---------- *)

let block = function [ s ] -> s | l -> Block l
let ( +! ) a b = Bin (Add, a, b)
let ( -! ) a b = Bin (Sub, a, b)
let ( *! ) a b = Bin (Mul, a, b)
let int n = Int n

let rec fold_min = function
  | [] -> invalid_arg "fold_min: empty"
  | [ e ] -> e
  | e :: rest -> Bin (MinOp, e, fold_min rest)

let rec fold_max = function
  | [] -> invalid_arg "fold_max: empty"
  | [ e ] -> e
  | e :: rest -> Bin (MaxOp, e, fold_max rest)

let conj = function
  | [] -> True
  | c :: rest -> List.fold_left (fun a b -> And (a, b)) c rest

(* Constant folding & algebraic simplification, so emitted code (and golden
   pseudocode tests) stay readable. *)
let rec simplify_expr e =
  match e with
  | Int _ | Float _ | Var _ -> e
  | Load (b, idx) -> Load (b, List.map simplify_expr idx)
  | Neg a -> (
      match simplify_expr a with
      | Int n -> Int (-n)
      | a' -> Neg a')
  | Cast (t, a) -> Cast (t, simplify_expr a)
  | Call (f, args) -> Call (f, List.map simplify_expr args)
  | Select (c, a, b) -> (
      match (simplify_cond c, simplify_expr a, simplify_expr b) with
      | True, a', _ -> a'
      | _, a', b' when a' = b' -> a' (* conditions are pure *)
      | c', a', b' -> Select (c', a', b'))
  | Bin (op, a, b) -> (
      let a = simplify_expr a and b = simplify_expr b in
      match (op, a, b) with
      | Add, Int x, Int y -> Int (x + y)
      | Sub, Int x, Int y -> Int (x - y)
      | Mul, Int x, Int y -> Int (x * y)
      | FloorDiv, Int x, Int y when y <> 0 -> Int (Tiramisu_support.Ints.fdiv x y)
      | Mod, Int x, Int y when y <> 0 -> Int (Tiramisu_support.Ints.emod x y)
      | MinOp, Int x, Int y -> Int (min x y)
      | MaxOp, Int x, Int y -> Int (max x y)
      | Add, Int 0, e | Add, e, Int 0 -> e
      | Sub, e, Int 0 -> e
      | Mul, Int 1, e | Mul, e, Int 1 -> e
      | Mul, Int 0, _ | Mul, _, Int 0 -> Int 0
      | FloorDiv, e, Int 1 -> e
      | MinOp, x, y when x = y -> x
      | MaxOp, x, y when x = y -> x
      | _ -> Bin (op, a, b))

and simplify_cond c =
  match c with
  | True -> True
  | Cmp (op, a, b) -> (
      let a = simplify_expr a and b = simplify_expr b in
      match (a, b) with
      | Int x, Int y ->
          let r =
            match op with
            | EqOp -> x = y | NeOp -> x <> y | LtOp -> x < y
            | LeOp -> x <= y | GtOp -> x > y | GeOp -> x >= y
          in
          if r then True else Cmp (op, a, b)
      | _ -> Cmp (op, a, b))
  | And (_, _) ->
      (* flatten, simplify and deduplicate the conjuncts *)
      let rec conjuncts c =
        match c with And (a, b) -> conjuncts a @ conjuncts b | c -> [ c ]
      in
      let parts =
        List.filter (fun c -> c <> True)
          (List.map simplify_cond (conjuncts c))
      in
      let parts =
        List.fold_left
          (fun acc c -> if List.mem c acc then acc else acc @ [ c ])
          [] parts
      in
      (match parts with
      | [] -> True
      | c :: rest -> List.fold_left (fun a b -> And (a, b)) c rest)
  | Or (a, b) -> (
      match (simplify_cond a, simplify_cond b) with
      | True, _ | _, True -> True
      | a, b -> Or (a, b))
  | Not a -> ( match simplify_cond a with Not b -> b | a -> Not a)

let rec simplify_stmt s =
  match s with
  | Block l -> (
      match List.filter (fun s -> s <> Block []) (List.map simplify_stmt l) with
      | [ s ] -> s
      | l -> Block l)
  | For f -> (
      let lo = simplify_expr f.lo and hi = simplify_expr f.hi in
      match (lo, hi) with
      | Int a, Int b when b < a ->
          (* statically empty range, e.g. the elided epilogue of a vector
             loop whose extent divides the width *)
          Block []
      | _ -> For { f with lo; hi; body = simplify_stmt f.body })
  | If (c, t, e) -> (
      let t = simplify_stmt t and e = Option.map simplify_stmt e in
      match simplify_cond c with
      | True -> t
      | c -> If (c, t, e))
  | Store (b, idx, v) -> Store (b, List.map simplify_expr idx, simplify_expr v)
  | Alloc a ->
      Alloc { a with dims = List.map simplify_expr a.dims;
              body = simplify_stmt a.body }
  | Barrier | Comment _ | Memcpy _ -> s
  | Send s' -> Send { s' with dst = simplify_expr s'.dst;
                      offset = List.map simplify_expr s'.offset;
                      count = simplify_expr s'.count }
  | Recv r -> Recv { r with src = simplify_expr r.src;
                     offset = List.map simplify_expr r.offset;
                     count = simplify_expr r.count }

(* ---------- affine index analysis ---------- *)

(* Σ coeff·var + const view of an index expression; None if not affine.
   Shared by the compiled backend's addressing (stride folding, corner
   bounds checks, kernel specialization) and the cost model. *)
let affine_terms (e : expr) : ((string * int) list * int) option =
  let merge t1 t2 =
    List.fold_left
      (fun acc (v, c) ->
        match List.assoc_opt v acc with
        | Some c0 -> (v, c0 + c) :: List.remove_assoc v acc
        | None -> (v, c) :: acc)
      t1 t2
  in
  let neg ts = List.map (fun (v, k) -> (v, -k)) ts in
  let rec go e =
    match e with
    | Int n -> Some ([], n)
    | Var v -> Some ([ (v, 1) ], 0)
    | Neg a -> Option.map (fun (ts, c) -> (neg ts, -c)) (go a)
    | Bin (Add, a, b) -> (
        match (go a, go b) with
        | Some (t1, c1), Some (t2, c2) -> Some (merge t1 t2, c1 + c2)
        | _ -> None)
    | Bin (Sub, a, b) -> (
        match (go a, go b) with
        | Some (t1, c1), Some (t2, c2) -> Some (merge t1 (neg t2), c1 - c2)
        | _ -> None)
    | Bin (Mul, a, b) -> (
        match (go a, go b) with
        | Some ([], k), Some (ts, c) | Some (ts, c), Some ([], k) ->
            Some (List.map (fun (v, q) -> (v, q * k)) ts, c * k)
        | _ -> None)
    | _ -> None
  in
  Option.map
    (fun (ts, c) -> (List.filter (fun (_, k) -> k <> 0) ts, c))
    (go e)

let affine e = affine_terms e <> None

(* ---------- kernel-specialization classifier (structural part) ---------- *)

(* The compiled backend specializes innermost loops whose body is a
   comment-free sequence of [Store]s of arithmetic expressions over affine
   [Load]s: addressing is strength-reduced to incremental flat-offset bumps,
   loop-invariant loads are promoted to scalars, and [Unrolled]/[Vectorized]
   tags select unrolled / lane-blocked drivers.  This predicate is the
   *structural* half of the contract (the executor additionally requires the
   buffers to exist with matching rank and the entry corner checks to pass);
   it is shared with {!analyze_loops} and the cost model. *)

(* [Some stores] when [s] is a straight-line sequence of stores (comments
   skipped); [None] when it contains control flow, nested loops, or
   communication. *)
let rec spec_stores (s : stmt) : (string * expr list * expr) list option =
  match s with
  | Store (b, idx, v) -> Some [ (b, idx, v) ]
  | Comment _ -> Some []
  | Block l ->
      List.fold_left
        (fun acc s ->
          match (acc, spec_stores s) with
          | Some a, Some b -> Some (a @ b)
          | _ -> None)
        (Some []) l
  | _ -> None

(* Value grammar the specialized evaluator replicates bit-for-bit: float
   arithmetic, casts, known intrinsics and affine loads.  [Select] is
   excluded (its integer condition would reintroduce per-iteration affine
   evaluation). *)
let rec spec_value_ok (e : expr) : bool =
  match e with
  | Int _ | Float _ | Var _ -> true
  | Load (_, idx) -> List.for_all affine idx
  | Neg a | Cast (_, a) -> spec_value_ok a
  | Bin (_, a, b) -> spec_value_ok a && spec_value_ok b
  | Call
      ( ("abs" | "sqrt" | "exp" | "log" | "sin" | "cos" | "floor" | "pow"
        | "fmin" | "fmax" | "clamp"),
        args ) ->
      List.for_all spec_value_ok args
  | Call _ | Select _ -> false

let spec_candidate (s : stmt) : bool =
  match s with
  | For { tag = Seq | Unrolled | Vectorized _; body; _ } -> (
      match spec_stores body with
      | Some (_ :: _ as stores) ->
          List.for_all
            (fun (_, idx, v) -> List.for_all affine idx && spec_value_ok v)
            stores
      | _ -> false)
  | _ -> false

(* ---------- structural hashing ---------- *)

(* Deterministic structural hash of a statement; the compile cache keys on
   it (together with parameter values and backend knobs).  Loop variables
   are numbered de-Bruijn-style at their binder, so alpha-equivalent
   renamings of loop variables hash equal, while any structural rewrite —
   bound narrowing, simplification, unroll expansion — changes the mixed
   constructor sequence and therefore the hash (modulo 62-bit collisions;
   the cache additionally compares statements structurally before reusing
   an artifact).  Free names (parameters, buffers, intrinsics) hash by
   spelling.  No [Hashtbl.hash] involvement: the value is stable across
   processes and OCaml versions, so it can appear in persisted traces. *)

let structural_hash (s0 : stmt) : int =
  let h = ref 0x2545f4914f6cdd1d in
  let mix v = h := ((!h * 0x100000001b3) lxor v) land max_int in
  let mix_str s =
    mix (String.length s);
    String.iter (fun c -> mix (Char.code c)) s
  in
  let mix_float f =
    let b = Int64.bits_of_float f in
    mix (Int64.to_int b land max_int);
    mix (Int64.to_int (Int64.shift_right_logical b 62))
  in
  let mix_var env v =
    match List.assoc_opt v env with
    | Some level -> mix 2; mix level          (* bound loop variable *)
    | None -> mix 3; mix_str v                (* parameter / free name *)
  in
  let mix_dtype = function F32 -> mix 4 | F64 -> mix 5 | I32 -> mix 6 | U8 -> mix 7 in
  let mix_mem = function
    | Host -> mix 8 | Gpu_global -> mix 9 | Gpu_shared -> mix 10
    | Gpu_local -> mix 11 | Gpu_constant -> mix 12
  in
  let mix_tag = function
    | Seq -> mix 13
    | Parallel -> mix 14
    | Vectorized w -> mix 15; mix w
    | Unrolled -> mix 16
    | Gpu_block a -> mix 17; mix a
    | Gpu_thread a -> mix 18; mix a
    | Distributed -> mix 19
  in
  let mix_binop = function
    | Add -> mix 20 | Sub -> mix 21 | Mul -> mix 22 | Div -> mix 23
    | FloorDiv -> mix 24 | Mod -> mix 25 | MinOp -> mix 26 | MaxOp -> mix 27
  in
  let mix_cmpop = function
    | EqOp -> mix 28 | NeOp -> mix 29 | LtOp -> mix 30
    | LeOp -> mix 31 | GtOp -> mix 32 | GeOp -> mix 33
  in
  let rec expr env (e : expr) =
    match e with
    | Int n -> mix 34; mix n
    | Float f -> mix 35; mix_float f
    | Var v -> mix_var env v
    | Load (b, idx) -> mix 36; mix_str b; List.iter (expr env) idx
    | Bin (op, a, b) -> mix_binop op; expr env a; expr env b
    | Neg a -> mix 37; expr env a
    | Cast (t, a) -> mix 38; mix_dtype t; expr env a
    | Select (c, a, b) -> mix 39; cond env c; expr env a; expr env b
    | Call (f, args) -> mix 40; mix_str f; List.iter (expr env) args
  and cond env (c : cond) =
    match c with
    | True -> mix 41
    | Cmp (op, a, b) -> mix_cmpop op; expr env a; expr env b
    | And (a, b) -> mix 42; cond env a; cond env b
    | Or (a, b) -> mix 43; cond env a; cond env b
    | Not a -> mix 44; cond env a
  in
  let rec stmt env (s : stmt) =
    match s with
    | Block l -> mix 45; mix (List.length l); List.iter (stmt env) l
    | For { var; lo; hi; tag; body } ->
        mix 46; mix_tag tag; expr env lo; expr env hi;
        stmt ((var, List.length env) :: env) body
    | If (c, t, e) ->
        mix 47; cond env c; stmt env t;
        (match e with None -> mix 48 | Some e -> mix 49; stmt env e)
    | Store (b, idx, v) -> mix 50; mix_str b; List.iter (expr env) idx; expr env v
    | Alloc { buf; dtype; dims; mem; body } ->
        mix 51; mix_str buf; mix_dtype dtype; mix_mem mem;
        List.iter (expr env) dims; stmt env body
    | Barrier -> mix 52
    | Send { dst; buf; offset; count; props } ->
        mix 53; mix_str buf; expr env dst; List.iter (expr env) offset;
        expr env count; mix (if props.async then 54 else 55)
    | Recv { src; buf; offset; count; props } ->
        mix 56; mix_str buf; expr env src; List.iter (expr env) offset;
        expr env count; mix (if props.async then 57 else 58)
    | Memcpy { dst; src; direction } ->
        mix 59; mix_str dst; mix_str src; mix_str direction
    | Comment c -> mix 60; mix_str c
  in
  stmt [] s0;
  !h

(* ---------- static loop metadata ---------- *)

(* Shape summary of a lowered loop nest, computed once per program.  The
   executing backends use it to plan the runtime (e.g. compile statically
   nested Parallel loops sequentially instead of oversubscribing the domain
   pool), and the benchmark harness records it next to its timings. *)
type loop_meta = {
  n_loops : int;
  n_parallel : int;          (* Parallel-tagged loops *)
  n_nested_parallel : int;   (* Parallel loops inside another Parallel loop *)
  max_depth : int;           (* deepest loop nesting *)
  innermost : string list;   (* vars of loops containing no other loop *)
  n_specializable : int;     (* innermost loops matching {!spec_candidate} *)
}

let analyze_loops stmt =
  let meta =
    ref { n_loops = 0; n_parallel = 0; n_nested_parallel = 0; max_depth = 0;
          innermost = []; n_specializable = 0 }
  in
  (* returns whether [s] contains a loop *)
  let rec go depth in_par s =
    match s with
    | Block l -> List.fold_left (fun acc s -> go depth in_par s || acc) false l
    | For { var; tag; body; _ } ->
        let m = !meta in
        meta :=
          { m with
            n_loops = m.n_loops + 1;
            n_parallel = (m.n_parallel + if tag = Parallel then 1 else 0);
            n_nested_parallel =
              (m.n_nested_parallel
               + if tag = Parallel && in_par then 1 else 0);
            max_depth = max m.max_depth (depth + 1);
            n_specializable =
              (m.n_specializable + if spec_candidate s then 1 else 0) };
        let inner = go (depth + 1) (in_par || tag = Parallel) body in
        if not inner then begin
          let m = !meta in
          meta := { m with innermost = var :: m.innermost }
        end;
        true
    | If (_, t, e) ->
        let a = go depth in_par t in
        let b = match e with Some e -> go depth in_par e | None -> false in
        a || b
    | Alloc { body; _ } -> go depth in_par body
    | Store _ | Barrier | Comment _ | Send _ | Recv _ | Memcpy _ -> false
  in
  ignore (go 0 false stmt);
  let m = !meta in
  { m with innermost = List.rev m.innermost }

(* ---------- pretty printing (paper-style pseudocode) ---------- *)

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | FloorDiv -> "/" | Mod -> "%" | MinOp -> "min" | MaxOp -> "max"

let cmpop_str = function
  | EqOp -> "==" | NeOp -> "!=" | LtOp -> "<" | LeOp -> "<="
  | GtOp -> ">" | GeOp -> ">="

let rec pp_expr ppf e =
  match e with
  | Int n -> Format.fprintf ppf "%d" n
  | Float f -> Format.fprintf ppf "%g" f
  | Var v -> Format.fprintf ppf "%s" v
  | Load (b, idx) ->
      Format.fprintf ppf "%s%a" b pp_indices idx
  | Bin ((MinOp | MaxOp) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_str op) pp_expr a pp_expr b
  | Bin (FloorDiv, a, b) ->
      Format.fprintf ppf "floord(%a, %a)" pp_expr a pp_expr b
  | Bin (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Neg a -> Format.fprintf ppf "(-%a)" pp_expr a
  | Cast (t, a) -> Format.fprintf ppf "(%s)%a" (dtype_name t) pp_expr a
  | Select (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" pp_cond c pp_expr a pp_expr b
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_expr)
        args

and pp_indices ppf idx =
  List.iter (fun e -> Format.fprintf ppf "[%a]" pp_expr e) idx

and pp_cond ppf c =
  match c with
  | True -> Format.fprintf ppf "true"
  | Cmp (op, a, b) ->
      Format.fprintf ppf "%a %s %a" pp_expr a (cmpop_str op) pp_expr b
  | And (a, b) -> Format.fprintf ppf "%a && %a" pp_cond a pp_cond b
  | Or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_cond a pp_cond b
  | Not a -> Format.fprintf ppf "!(%a)" pp_cond a

let rec pp_stmt ppf s =
  match s with
  | Block l ->
      Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf l
  | For { var; lo; hi; tag; body } ->
      Format.fprintf ppf "@[<v 2>%s (%s in %a..%a)@,%a@]" (tag_name tag) var
        pp_expr lo pp_expr hi pp_stmt body
  | If (c, t, None) ->
      Format.fprintf ppf "@[<v 2>if (%a)@,%a@]" pp_cond c pp_stmt t
  | If (c, t, Some e) ->
      Format.fprintf ppf "@[<v 2>if (%a)@,%a@]@,@[<v 2>else@,%a@]" pp_cond c
        pp_stmt t pp_stmt e
  | Store (b, idx, v) ->
      Format.fprintf ppf "%s%a = %a" b pp_indices idx pp_expr v
  | Alloc { buf; dtype; dims; mem; body } ->
      Format.fprintf ppf "@[<v 2>%s %s %s%a {@,%a@]@,}"
        (mem_space_name mem) (dtype_name dtype) buf
        (fun ppf -> List.iter (fun d -> Format.fprintf ppf "[%a]" pp_expr d))
        dims pp_stmt body
  | Barrier -> Format.fprintf ppf "barrier()"
  | Send { dst; buf; offset; count; props } ->
      Format.fprintf ppf "send(%s%a, %a, %a, {%s})" buf pp_indices offset
        pp_expr count pp_expr dst
        (if props.async then "ASYNC" else "SYNC")
  | Recv { src; buf; offset; count; props } ->
      Format.fprintf ppf "recv(%s%a, %a, %a, {%s})" buf pp_indices offset
        pp_expr count pp_expr src
        (if props.async then "ASYNC" else "SYNC")
  | Memcpy { dst; src; direction } ->
      Format.fprintf ppf "%s_copy(%s, %s)" direction src dst
  | Comment c -> Format.fprintf ppf "// %s" c

let to_string s = Format.asprintf "@[<v>%a@]" pp_stmt s
