(* Compile-time parallel planning (OpenMP collapse-style coalescing).

   The pool runtime used to decide parallel granularity per loop entry with
   a runtime heuristic — which, on the bench kernels, demoted every
   [Parallel] loop because a single tiled outer loop (6–16 entries) never
   clears the fork/join break-even on its own.  Tiramisu makes granularity
   a compile-time scheduling decision over polyhedral domains; this pass
   implements that decision on the lowered loop IR:

   - the trip count of a run of perfectly-nested [Parallel] loops is
     computed exactly with {!Tiramisu_presburger.Poly.card} (bounds are
     turned into constraint rows; [max]-of-affine lower bounds and
     [min]-of-affine upper bounds split into one row per argument, so tile
     scaffolding stays exact);
   - adjacent [Parallel] levels with constant bounds are coalesced into a
     single parallel loop over the product domain ([collapse]): the fused
     loop iterates [0 .. Πnᵢ-1] and single-trip binder loops recover each
     original variable as [lᵢ + (fused / strideᵢ) mod nᵢ], preserving the
     affine addressing, hoisted corner checks and kernel specialization of
     everything below;
   - loops whose whole subtree carries less estimated work than
     [min_work] per worker are serialized outright (the plan, not the
     runtime, says no);
   - [Parallel] loops nested under a kept parallel loop are retagged [Seq]
     (the backend would run them inline anyway; the retag makes their
     innermost loops eligible for kernel specialization).

   The pass is shape-preserving from the executor's point of view: binder
   loops are ordinary [For]s with equal bounds, so the interpreter, the
   closure compiler and the C emitter need no new cases. *)

module L = Loop_ir
module Poly = Tiramisu_presburger.Poly

type decision = {
  d_var : string;              (* outermost loop var the decision is about *)
  d_action :
    [ `Coalesce of string list | `Keep | `Keep_tape of string list
    | `Serialize ];
  d_trip : int option;         (* parallel-chain trip count (card) *)
  d_trip_exact : bool;
  d_per_worker : int;          (* estimated work units per worker *)
  d_uniform : bool;            (* per-entry work independent of the index *)
}

type report = {
  r_parallel : int;            (* parallel loops kept (fused groups count 1) *)
  r_coalesced : int;           (* fused groups emitted *)
  r_fused_levels : int;        (* original loops folded into fused groups *)
  r_serialized : int;          (* top-level Parallel subtrees demoted *)
  r_retagged : int;            (* nested Parallel loops retagged Seq *)
  r_decisions : decision list; (* outermost-first *)
}

let empty_report =
  { r_parallel = 0; r_coalesced = 0; r_fused_levels = 0; r_serialized = 0;
    r_retagged = 0; r_decisions = [] }

let decision_str d =
  let action =
    match d.d_action with
    | `Coalesce vs -> Printf.sprintf "coalesce[%s]" (String.concat "+" vs)
    | `Keep -> "parallel"
    | `Keep_tape vs -> Printf.sprintf "tape[%s]" (String.concat "+" vs)
    | `Serialize -> "serialize"
  in
  Printf.sprintf "%s %s trip=%s%s work/worker=%d %s" action d.d_var
    (match d.d_trip with Some n -> string_of_int n | None -> "?")
    (if d.d_trip_exact then "" else "~")
    d.d_per_worker
    (if d.d_uniform then "uniform" else "irregular")

(* ---------- static work estimate (mirrors the executor's) ---------- *)

let rec est_int env (e : L.expr) : int =
  match e with
  | L.Int n -> n
  | L.Float f -> int_of_float f
  | L.Var v -> ( match Hashtbl.find_opt env v with Some x -> x | None -> 0)
  | L.Neg a -> -est_int env a
  | L.Cast (_, a) -> est_int env a
  | L.Load _ | L.Call _ -> 0
  | L.Select (_, a, _) -> est_int env a
  | L.Bin (op, a, b) -> (
      let x = est_int env a and y = est_int env b in
      match op with
      | L.Add -> x + y
      | L.Sub -> x - y
      | L.Mul -> x * y
      | L.Div -> if y = 0 then 0 else x / y
      | L.FloorDiv -> if y = 0 then 0 else Tiramisu_support.Ints.fdiv x y
      | L.Mod -> if y = 0 then 0 else Tiramisu_support.Ints.emod x y
      | L.MinOp -> min x y
      | L.MaxOp -> max x y)

let with_var env var v f =
  let saved = Hashtbl.find_opt env var in
  Hashtbl.replace env var v;
  let r = f () in
  (match saved with
  | Some x -> Hashtbl.replace env var x
  | None -> Hashtbl.remove env var);
  r

let rec est_work env (s : L.stmt) : int =
  match s with
  | L.Block l -> List.fold_left (fun acc s -> acc + est_work env s) 0 l
  | L.Comment _ | L.Barrier -> 0
  | L.Store _ -> 1
  | L.Send _ | L.Recv _ | L.Memcpy _ -> 8
  | L.If (_, t, e) ->
      max (est_work env t)
        (match e with Some e -> est_work env e | None -> 0)
  | L.Alloc { body; _ } -> 8 + est_work env body
  | L.For { var; lo; hi; body; _ } ->
      let lo = est_int env lo and hi = est_int env hi in
      let extent = max 0 (hi - lo + 1) in
      if extent = 0 then 0
      else
        with_var env var
          (lo + ((extent - 1) / 2))
          (fun () -> extent * (1 + est_work env body))

(* ---------- polyhedral trip count of a parallel chain ---------- *)

(* A chain level: one loop of the perfect nest. *)
type level = { l_var : string; l_lo : L.expr; l_hi : L.expr }

(* [max]-trees on lower bounds (and [min]-trees on upper bounds) split into
   one conjunct per argument: [v >= max(a,b)] iff [v >= a && v >= b]. *)
let rec max_args (e : L.expr) =
  match e with
  | L.Bin (L.MaxOp, a, b) -> max_args a @ max_args b
  | e -> [ e ]

let rec min_args (e : L.expr) =
  match e with
  | L.Bin (L.MinOp, a, b) -> min_args a @ min_args b
  | e -> [ e ]

(* Constraint row over the chain variables for [sign·(v - e) >= 0].
   Occurrences of non-chain names take their static-estimate value, which
   keeps the row linear; the count is flagged inexact unless the name's
   value is exact (a parameter).  [None] when [e] is not affine. *)
let bound_row env ~exact_names ~vars ~nvars ~v ~sign e =
  match L.affine_terms e with
  | None -> None
  | Some (ts, c) ->
      let row = Array.make (nvars + 1) 0 in
      let inexact = ref false in
      row.(0) <- -sign * c;
      row.(v + 1) <- sign;
      List.iter
        (fun (u, a) ->
          match Hashtbl.find_opt vars u with
          | Some j -> row.(j + 1) <- row.(j + 1) - (sign * a)
          | None ->
              if not (List.mem u exact_names) then inexact := true;
              row.(0) <- row.(0) - (sign * a * est_int env (L.Var u)))
        ts;
      Some (row, not !inexact)

(* Exact cardinality of the chain's iteration domain, via {!Poly.card}.
   Returns [(count, exact)]; falls back to the product of estimated extents
   (never exact) when a bound is not affine or the count is unavailable. *)
let chain_trip env ~exact_names (levels : level list) : int option * bool =
  let nvars = List.length levels in
  let vars = Hashtbl.create 8 in
  List.iteri (fun j l -> Hashtbl.replace vars l.l_var j) levels;
  let rows = ref [] in
  let exact = ref true in
  let ok =
    List.for_all
      (fun l ->
        let v = Hashtbl.find vars l.l_var in
        let push sign e =
          match bound_row env ~exact_names ~vars ~nvars ~v ~sign e with
          | Some (row, ex) ->
              rows := row :: !rows;
              if not ex then exact := false;
              true
          | None -> false
        in
        List.for_all (push 1) (max_args l.l_lo)
        && List.for_all (push (-1)) (min_args l.l_hi))
      levels
  in
  if ok then
    match Poly.card (Poly.make nvars ~eqs:[] ~ineqs:!rows) with
    | Some n -> (Some n, !exact)
    | None -> (None, false)
  else
    (* product of midpoint extents: an estimate, never exact *)
    let n =
      List.fold_left
        (fun acc l ->
          let lo = est_int env l.l_lo and hi = est_int env l.l_hi in
          acc * max 0 (hi - lo + 1))
        1 levels
    in
    (Some n, false)

(* ---------- the planning walk ---------- *)

(* Names already used anywhere in a subtree (loop vars and free names), to
   uniquify the fused binder variable. *)
let used_names (s : L.stmt) =
  let tbl = Hashtbl.create 32 in
  let add v = Hashtbl.replace tbl v () in
  let rec expr (e : L.expr) =
    match e with
    | L.Int _ | L.Float _ -> ()
    | L.Var v -> add v
    | L.Load (b, idx) -> add b; List.iter expr idx
    | L.Bin (_, a, b) -> expr a; expr b
    | L.Neg a | L.Cast (_, a) -> expr a
    | L.Select (c, a, b) -> cond c; expr a; expr b
    | L.Call (_, args) -> List.iter expr args
  and cond (c : L.cond) =
    match c with
    | L.True -> ()
    | L.Cmp (_, a, b) -> expr a; expr b
    | L.And (a, b) | L.Or (a, b) -> cond a; cond b
    | L.Not a -> cond a
  and stmt (s : L.stmt) =
    match s with
    | L.Block l -> List.iter stmt l
    | L.For { var; lo; hi; body; _ } -> add var; expr lo; expr hi; stmt body
    | L.If (c, t, e) -> cond c; stmt t; Option.iter stmt e
    | L.Store (b, idx, v) -> add b; List.iter expr idx; expr v
    | L.Alloc { buf; dims; body; _ } -> add buf; List.iter expr dims; stmt body
    | L.Barrier | L.Comment _ | L.Memcpy _ -> ()
    | L.Send { dst; buf; offset; count; _ } ->
        add buf; expr dst; List.iter expr offset; expr count
    | L.Recv { src; buf; offset; count; _ } ->
        add buf; expr src; List.iter expr offset; expr count
  in
  stmt s;
  tbl

(* The body of a perfect-nest level: exactly one [For] (comments allowed
   around it). *)
let single_for (s : L.stmt) : L.stmt option =
  match s with
  | L.For _ -> Some s
  | L.Block l -> (
      match List.filter (fun s -> match s with L.Comment _ -> false | _ -> true) l with
      | [ (L.For _ as f) ] -> Some f
      | _ -> None)
  | _ -> None

(* Maximal run of perfectly-nested Parallel loops starting at [s]. *)
let rec parallel_chain (s : L.stmt) : (level * L.stmt) list =
  match s with
  | L.For { var; lo; hi; tag = L.Parallel; body } -> (
      let lvl = ({ l_var = var; l_lo = lo; l_hi = hi }, body) in
      match single_for body with
      | Some inner -> lvl :: parallel_chain inner
      | None -> [ lvl ])
  | _ -> []

let retag_seq_deep count (s : L.stmt) =
  let rec go (s : L.stmt) : L.stmt =
    match s with
    | L.Block l -> L.Block (List.map go l)
    | L.For ({ tag = L.Parallel; _ } as f) ->
        incr count;
        L.For { f with tag = L.Seq; body = go f.body }
    | L.For f -> L.For { f with body = go f.body }
    | L.If (c, t, e) -> L.If (c, go t, Option.map go e)
    | L.Alloc a -> L.Alloc { a with body = go a.body }
    | s -> s
  in
  go s

let chunks_per_worker = 4

let plan ~workers ~min_work ~params ?(force = false) ?(tape = false)
    (stmt : L.stmt) : L.stmt * report =
  let env = Hashtbl.create 16 in
  List.iter (fun (p, v) -> Hashtbl.replace env p v) params;
  let exact_names = List.map fst params in
  let used = used_names stmt in
  (* parameters occupy register slots too: the fused binder must not
     shadow one *)
  List.iter (fun (p, _) -> Hashtbl.replace used p ()) params;
  let fresh_fused base =
    let rec go i =
      let cand = if i = 0 then base else Printf.sprintf "%s_%d" base i in
      if Hashtbl.mem used cand then go (i + 1)
      else begin
        Hashtbl.replace used cand ();
        cand
      end
    in
    go 0
  in
  let rep = ref empty_report in
  let note d = rep := { !rep with r_decisions = d :: !(rep).r_decisions } in
  (* Build the collapsed nest for the first [m] levels of [chain]; the body
     below level [m] is [inner] (already planned). *)
  let coalesce (chain : (level * L.stmt) list) m inner =
    let levels = List.filteri (fun i _ -> i < m) (List.map fst chain) in
    let extents =
      List.map
        (fun l ->
          match (l.l_lo, l.l_hi) with
          | L.Int a, L.Int b -> (a, max 0 (b - a + 1))
          | _ -> assert false)
        levels
    in
    let total = List.fold_left (fun acc (_, n) -> acc * n) 1 extents in
    let fused = fresh_fused (String.concat "_" (List.map (fun l -> l.l_var) levels)) in
    (* strides: level i covers Π of the extents below it within the fuse *)
    let strides =
      let rec go = function
        | [] -> []
        | (_, _) :: rest as all ->
            let below =
              List.fold_left (fun acc (_, n) -> acc * n) 1 (List.tl all)
            in
            below :: go rest
      in
      go extents
    in
    let rec binders lvls exts strs =
      match (lvls, exts, strs) with
      | [], [], [] -> inner
      | l :: lvls', (lo, n) :: exts', stride :: strs' ->
          let q = L.Bin (L.FloorDiv, L.Var fused, L.Int stride) in
          let idx =
            L.simplify_expr
              (L.Bin (L.Add, L.Int lo, L.Bin (L.Mod, q, L.Int n)))
          in
          L.For
            { var = l.l_var; lo = idx; hi = idx; tag = L.Seq;
              body = binders lvls' exts' strs' }
      | _ -> assert false
    in
    (* the first binder needs no [mod]: fused/stride₀ < n₀ by construction *)
    let body =
      match (levels, extents, strides) with
      | l0 :: lvls', (lo0, _) :: exts', s0 :: strs' ->
          let idx =
            L.simplify_expr
              (L.Bin (L.Add, L.Int lo0, L.Bin (L.FloorDiv, L.Var fused, L.Int s0)))
          in
          L.For
            { var = l0.l_var; lo = idx; hi = idx; tag = L.Seq;
              body = binders lvls' exts' strs' }
      | _ -> assert false
    in
    L.For
      { var = fused; lo = L.Int 0; hi = L.Int (total - 1); tag = L.Parallel;
        body }
  in
  let rec go in_par (s : L.stmt) : L.stmt =
    match s with
    | L.Block l -> L.Block (List.map (go in_par) l)
    | L.If (c, t, e) -> L.If (c, go in_par t, Option.map (go in_par) e)
    | L.Alloc a -> L.Alloc { a with body = go in_par a.body }
    | L.For ({ tag = L.Parallel; _ } as f) when in_par ->
        (* Under a kept parallel loop the backend runs this inline; retag so
           the specializer sees an ordinary loop. *)
        rep := { !rep with r_retagged = !(rep).r_retagged + 1 };
        go in_par (L.For { f with tag = L.Seq })
    | L.For ({ tag = L.Parallel; var; lo; hi; _ } as f) -> (
        let chain = parallel_chain s in
        let levels = List.map fst chain in
        let trip, trip_exact = chain_trip env ~exact_names levels in
        let total_work =
          with_var env var 0 (fun () -> est_work env (L.For f))
        in
        let per_worker = total_work / max 1 workers in
        let uniform =
          let at x =
            with_var env var x (fun () -> est_work env f.body)
          in
          let lo = est_int env lo and hi = est_int env hi in
          hi < lo || at lo = at hi
        in
        if (not force) && min_work > 0
           && (workers <= 1 || per_worker < min_work)
        then begin
          (* Not worth forking: serialize the whole subtree (anything nested
             carries even less work per entry). *)
          rep := { !rep with r_serialized = !(rep).r_serialized + 1 };
          note
            { d_var = var; d_action = `Serialize; d_trip = trip;
              d_trip_exact = trip_exact; d_per_worker = per_worker;
              d_uniform = uniform };
          retag_seq_deep (ref 0) s
        end
        else begin
          (* Fusible prefix: adjacent Parallel levels with constant bounds. *)
          let rect_prefix =
            let rec count = function
              | { l_lo = L.Int _; l_hi = L.Int _; _ } :: rest ->
                  1 + count rest
              | _ -> 0
            in
            count levels
          in
          let target = workers * chunks_per_worker in
          let m =
            if rect_prefix = 0 then 1
            else begin
              let exts =
                List.filteri (fun i _ -> i < rect_prefix) levels
                |> List.map (fun l ->
                       match (l.l_lo, l.l_hi) with
                       | L.Int a, L.Int b -> max 0 (b - a + 1)
                       | _ -> assert false)
              in
              if List.exists (fun n -> n = 0) exts then 1
              else if force then rect_prefix
                (* forced (fuzzing): maximal fusion, machine-independent *)
              else
                (* fewest levels whose product already spreads the pool:
                   deeper fusion buys nothing and pays div/mod per entry *)
                let rec pick i acc = function
                  | [] -> i
                  | n :: rest ->
                      if acc >= target then i else pick (i + 1) (acc * n) rest
                in
                pick 0 1 exts
            end
          in
          let m = max 1 (min m rect_prefix) in
          if m >= 2 then begin
            let vars_m =
              List.filteri (fun i _ -> i < m)
                (List.map (fun l -> l.l_var) levels)
            in
            if tape && Tape_gen.claimable s then begin
              (* The tape backend linearizes the Parallel prefix itself
                 (no div/mod binder loops — which would destroy tape
                 eligibility); keep the first [m] levels as they are,
                 retag deeper Parallel levels, and let the executor's
                 fused split do the collapse. *)
              let rec keep_chain k (t : L.stmt) : L.stmt =
                if k = 0 then retag_seq_deep_counted t
                else
                  match t with
                  | L.For ({ tag = L.Parallel; _ } as f) ->
                      L.For { f with body = keep_chain (k - 1) f.body }
                  | L.Block l -> L.Block (List.map (keep_chain k) l)
                  | t -> t
              in
              rep :=
                { !rep with
                  r_parallel = !(rep).r_parallel + 1;
                  r_fused_levels = !(rep).r_fused_levels + m };
              note
                { d_var = var; d_action = `Keep_tape vars_m; d_trip = trip;
                  d_trip_exact = trip_exact; d_per_worker = per_worker;
                  d_uniform = uniform };
              keep_chain m s
            end
            else begin
              let inner_before = snd (List.nth chain (m - 1)) in
              let inner = retag_seq_deep_counted inner_before in
              rep :=
                { !rep with
                  r_parallel = !(rep).r_parallel + 1;
                  r_coalesced = !(rep).r_coalesced + 1;
                  r_fused_levels = !(rep).r_fused_levels + m };
              note
                { d_var = var; d_action = `Coalesce vars_m; d_trip = trip;
                  d_trip_exact = trip_exact; d_per_worker = per_worker;
                  d_uniform = uniform };
              coalesce chain m inner
            end
          end
          else begin
            rep := { !rep with r_parallel = !(rep).r_parallel + 1 };
            note
              { d_var = var; d_action = `Keep; d_trip = trip;
                d_trip_exact = trip_exact; d_per_worker = per_worker;
                d_uniform = uniform };
            let elo = est_int env lo and ehi = est_int env hi in
            L.For
              { f with
                body =
                  with_var env var
                    (elo + (max 0 (ehi - elo) / 2))
                    (fun () -> go true f.body) }
          end
        end)
    | L.For f ->
        let lo = est_int env f.lo and hi = est_int env f.hi in
        L.For
          { f with
            body =
              with_var env f.var
                (lo + (max 0 (hi - lo) / 2))
                (fun () -> go in_par f.body) }
    | s -> s
  and retag_seq_deep_counted s =
    let c = ref 0 in
    let s' = retag_seq_deep c s in
    rep := { !rep with r_retagged = !(rep).r_retagged + !c };
    s'
  in
  let planned = go false stmt in
  let r = !rep in
  (planned, { r with r_decisions = List.rev r.r_decisions })

let report_str r =
  Printf.sprintf
    "parallel=%d coalesced=%d fused_levels=%d serialized=%d retagged=%d%s"
    r.r_parallel r.r_coalesced r.r_fused_levels r.r_serialized r.r_retagged
    (match r.r_decisions with
    | [] -> ""
    | ds ->
        "; " ^ String.concat "; " (List.map decision_str ds))
