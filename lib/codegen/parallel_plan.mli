(** Compile-time parallel planning for pool-scheduled loops.

    Decides, per outermost [Parallel] loop of a lowered statement, whether
    to keep it parallel, coalesce it with adjacent nested [Parallel] levels
    (OpenMP [collapse]-style: one parallel loop over the product domain,
    with single-trip binder loops recovering each original variable as
    [lᵢ + (fused / strideᵢ) mod nᵢ]), or serialize the subtree when the
    estimated work per worker is below the fork/join break-even.  Trip
    counts come from the exact polyhedral cardinality of the chain's
    iteration domain ({!Tiramisu_presburger.Poly.card}); [max]/[min] bound
    scaffolding splits into one constraint row per argument.

    The result is plain loop IR — binder loops are ordinary single-trip
    [For]s — so the interpreter, the closure compiler and the C emitter
    execute it unchanged, and everything below a fused group keeps its
    affine addressing, hoisted corner checks and kernel specialization. *)

type decision = {
  d_var : string;              (** outermost loop var the decision is about *)
  d_action :
    [ `Coalesce of string list | `Keep | `Keep_tape of string list
    | `Serialize ];
      (** [`Keep_tape vs]: the nest is claimable by the flat-tape backend,
          which linearizes the [Parallel] prefix [vs] itself — the levels
          are kept intact (no binder loops, which would destroy tape
          eligibility) and count into [r_fused_levels]. *)
  d_trip : int option;         (** parallel-chain trip count *)
  d_trip_exact : bool;         (** [d_trip] is exact, not an estimate *)
  d_per_worker : int;          (** estimated work units per worker *)
  d_uniform : bool;            (** per-entry work independent of the index *)
}

type report = {
  r_parallel : int;            (** parallel loops kept (a fused group is 1) *)
  r_coalesced : int;           (** fused groups emitted *)
  r_fused_levels : int;        (** original loops folded into fused groups *)
  r_serialized : int;          (** top-level [Parallel] subtrees demoted *)
  r_retagged : int;            (** nested [Parallel] loops retagged [Seq] *)
  r_decisions : decision list; (** outermost-first *)
}

val empty_report : report

val plan :
  workers:int ->
  min_work:int ->
  params:(string * int) list ->
  ?force:bool ->
  ?tape:bool ->
  Loop_ir.stmt ->
  Loop_ir.stmt * report
(** [plan ~workers ~min_work ~params stmt] rewrites the outermost
    [Parallel] loops of [stmt] as described above.  [workers] is the
    parallelism the plan budgets for (normally the pool's effective
    parallelism), [min_work] the per-worker work threshold below which a
    subtree is serialized ([0] disables serialization), [params] the known
    parameter values used by the work estimator.  [~force:true] skips the
    profitability test and fuses the maximal rectangular prefix — a
    machine-independent mode for differential testing.  [~tape:true]
    (default [false]) tells the planner the executor's flat-tape backend is
    on: a fusible nest that {!Tape_gen.claimable} would claim is kept
    intact instead of coalesced, because the tape linearizes the
    [Parallel] prefix itself and div/mod binder loops would destroy its
    eligibility.  Semantics are preserved for any input whose [Parallel]
    tags are legal (the pass only reorders work across parallel entries
    that carry no dependence). *)

val decision_str : decision -> string
val report_str : report -> string
