(** Lowering rectangular loop nests to flat instruction tapes.

    Classifies perfect [For] chains over straight-line affine stores and
    compiles them to an abstract fixed-width bytecode program over a float
    register file.  The program references buffers by name and indices as
    affine terms; the backend tape executor binds it against concrete
    buffers and runs it with strength-reduced cursor addressing — see
    [Tiramisu_backends.Tape]. *)

(** Bumped when instruction semantics or program layout change; the
    pipeline compile cache mixes it into its key so stale artifacts are
    never served across generator versions. *)
val version : int

(** {1 Instruction set}

    One instruction is 4 ints [op; dst; a; b].  For [op_load], [a] is an
    access index; for [op_store], [a] is the access and [b] the source
    register; all other fields are registers. *)

val op_load : int
val op_store : int
val op_mov : int
val op_add : int
val op_sub : int
val op_mul : int
val op_div : int
val op_min : int
val op_max : int

(** [dst <- dst +. (a *. b)] with two roundings (multiply, then add):
    a dispatch fusion that stays bit-identical to the interpreter, not a
    hardware fused multiply-add. *)
val op_fma : int

val op_neg : int
val op_abs : int
val op_sqrt : int
val op_exp : int
val op_log : int
val op_sin : int
val op_cos : int
val op_floor : int
val op_pow : int
val op_fdivi : int
val op_modi : int
val op_trunc : int

(** {2 Vector-tier opcodes}

    The generator never emits these: the backend derives a vector tape
    from [p_code] at bind time (when access strides are known), rewriting
    [op_load]/[op_store] into the forms below and reusing codes 2..21
    with lane-wise semantics over the vector register file.  Unit forms
    imply step 1; strided forms carry the step in the otherwise-unused
    field ([b] for loads, [dst] for stores). *)

val op_vload_unit : int
val op_vload_strided : int
val op_vload_bcast : int
val op_vstore_unit : int
val op_vstore_strided : int

val op_name : int -> string

(** Mnemonic as executed by the vector tier: memory opcodes keep their
    specialized names, ALU codes gain a [v] prefix. *)
val vop_name : int -> string

(** {1 Programs} *)

(** Sorted affine terms plus constant, the per-dimension index view. *)
type affine = (string * int) list * int

(** Loop bounds: affine at the core plus the [min]/[max] and
    constant-divisor [floord]/[emod] layers produced by tiling with
    partial tiles and by vector legalization.  Compiled to an
    [env -> int] closure at bind time; access indices stay strictly
    affine. *)
type bexpr =
  | Baff of affine
  | Badd of bexpr * bexpr
  | Bsub of bexpr * bexpr
  | Bscale of bexpr * int
  | Bmin of bexpr * bexpr
  | Bmax of bexpr * bexpr
  | Bfdiv of bexpr * int  (** euclidean, positive constant divisor *)
  | Bmod of bexpr * int   (** euclidean, positive constant divisor *)

type access = {
  ac_buf : string;
  ac_idx : affine array;
  ac_stored : bool;
}

type level = {
  lv_var : string;
  lv_lo : bexpr;  (** over names outside the nest only *)
  lv_hi : bexpr;
  lv_tag : Loop_ir.loop_tag;
}

type program = {
  p_levels : level array;          (** outermost first *)
  p_par : int;                     (** length of the [Parallel] tag prefix *)
  p_accesses : access array;
  p_nregs : int;
  p_lits : (int * float) array;    (** reg <- literal, once per state *)
  p_hoists : (int * string) array; (** reg <- float env.(name), per range *)
  p_ivregs : int array;            (** float register of each level's var *)
  p_promos : (int * int) array;    (** (reg, access): per-segment load *)
  p_accum : (int * int * bool) option;
      (** (reg, store access, init-from-memory) accumulator *)
  p_code : int array;              (** packed body instructions *)
  p_ivuse : bool array;
      (** per level: the body reads the variable's register *)
  p_vec_ok : bool;
      (** lane batching preserves scalar semantics: no accumulator, every
          load from a stored buffer exactly aliases the store, no two
          stores share a buffer *)
  p_rmw : int array;
      (** accesses both loaded and stored (exact read-modify-write);
          vector execution additionally requires their innermost step be
          nonzero so lanes touch distinct addresses *)
  p_pieces : (bexpr * bexpr) array array;
      (** guarded leaf pieces, piece-major then level-major (lo, hi).
          The program's level bounds are the union box (min of lows,
          max of highs across pieces); the executor verifies per entry
          that the non-empty pieces tile that box contiguously and
          otherwise takes the counted closure fallback.  [[||]] for an
          unguarded leaf, or a single piece folded straight into the
          level bounds *)
}

val instr_count : program -> int

(** [compile_nest s] lowers the perfect rectangular nest rooted at [s]
    (which must be a [For]) to a tape program, or [None] when the nest
    does not qualify: non-CPU tags, a [Parallel] tag below a sequential
    level, non-affine bounds or indices, bounds referencing a nest
    variable, or a leaf that is not a straight-line store sequence.

    A leaf made of else-less [If]s over structurally identical bodies
    (the shape [compute_at]'s shifted producer copies lower to) also
    qualifies: each guard must be a conjunction of affine comparisons
    over at most one nest variable, peeled into per-piece bound
    intersections; >= 2 pieces additionally require that no stored
    value reads a written buffer, so overlapped points re-store the
    same bits. *)
val compile_nest : Loop_ir.stmt -> program option

(** [claimable s] = [compile_nest s <> None]; used by the parallel
    planner to leave tape-eligible nests uncoalesced. *)
val claimable : Loop_ir.stmt -> bool

(** All programs the executor would claim in a statement: maximal nests,
    top-down, never descending into a claimed subtree. *)
val scan : Loop_ir.stmt -> program list

(** One-line shape summary (for [--trace-passes]). *)
val summary : program -> string

(** Full listing: levels, accesses, register layout, instructions.
    With [~lanes] > 1 and a vector-eligible program, instructions are
    printed with their vector-tier mnemonics and the header records the
    lane width. *)
val disassemble : ?lanes:int -> program -> string
