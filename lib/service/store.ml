module L = Tiramisu_codegen.Loop_ir
module Plan = Tiramisu_codegen.Parallel_plan
module Tape_gen = Tiramisu_codegen.Tape_gen

type payload = {
  p_src : L.stmt;
  p_stmt : L.stmt;
  p_plan : Plan.report;
}

type verdict =
  | Hit of payload
  | Miss
  | Quarantined of string

(* v2 added [f_target] (the execution target the artifact was prepared
   for): one store now holds CPU, GPU-sim and distributed artifacts
   without aliasing.  Pre-refactor (v1) artifacts read as clean misses —
   the format check runs first, so the old record shape is never
   interpreted further. *)
let format_version = 2

(* What one artifact file holds (after the leading whole-payload digest).
   Pure data — Marshal with no flags, so a closure sneaking in is a loud
   error at [put] time, never a poisoned file.  New fields go LAST: the
   format check only needs field 0 to be readable when an old file is
   viewed through the new record type. *)
type persisted = {
  f_format : int;
  f_tapegen : int;
  f_key : string;
  f_prep_hash : int;  (* structural hash of [f_stmt], recomputed on load *)
  f_payload : payload;
  f_target : string;  (* {!Tiramisu_backends.Target.to_key_string} *)
}

type t = {
  st_root : string;
  st_locks : Mutex.t array;  (* one per shard *)
  st_quarantined : int Atomic.t;
}

let n_shards = 256

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()  (* lost a race: fine *)
  end

let open_store root =
  mkdir_p root;
  { st_root = root;
    st_locks = Array.init n_shards (fun _ -> Mutex.create ());
    st_quarantined = Atomic.make 0 }

let root t = t.st_root
let quarantined t = Atomic.get t.st_quarantined

(* Keys are hex digests ([Pipeline.key_digest]); reject anything else so a
   key can never traverse outside the store directory. *)
let check_key key =
  if key = ""
     || not
          (String.for_all
             (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
             key)
  then invalid_arg ("Store: malformed key " ^ String.escaped key)

let shard_of_key key =
  check_key key;
  if String.length key >= 2 then String.sub key 0 2 else key ^ "0"

let shard_index key =
  let s = shard_of_key key in
  int_of_string ("0x" ^ s) mod n_shards

let path_of_key t key =
  Filename.concat (Filename.concat t.st_root (shard_of_key key)) (key ^ ".art")

let with_shard t key f =
  let m = t.st_locks.(shard_index key) in
  Mutex.protect m f

let digest_len = 16

let put ?(tapegen = Tape_gen.version) t ~key ~target payload =
  check_key key;
  let record =
    { f_format = format_version; f_tapegen = tapegen; f_key = key;
      f_prep_hash = L.structural_hash payload.p_stmt; f_payload = payload;
      f_target = target }
  in
  let body = Marshal.to_string record [] in
  let digest = Digest.string body in
  with_shard t key (fun () ->
      let path = path_of_key t key in
      mkdir_p (Filename.dirname path);
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      output_string oc digest;
      output_string oc body;
      close_out oc;
      Sys.rename tmp path)

let quarantine t key path reason =
  let qdir = Filename.concat t.st_root "quarantine" in
  mkdir_p qdir;
  (try Sys.rename path (Filename.concat qdir (key ^ ".art"))
   with Sys_error _ -> (try Sys.remove path with Sys_error _ -> ()));
  Atomic.incr t.st_quarantined;
  Quarantined reason

let get t ~key ~src ~target =
  check_key key;
  with_shard t key (fun () ->
      let path = path_of_key t key in
      if not (Sys.file_exists path) then Miss
      else begin
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let raw =
          try Some (really_input_string ic n) with End_of_file -> None
        in
        close_in ic;
        match raw with
        | None -> quarantine t key path "short read"
        | Some raw when String.length raw < digest_len ->
            quarantine t key path "truncated: shorter than its digest"
        | Some raw -> (
            let digest = String.sub raw 0 digest_len in
            let body = String.sub raw digest_len (String.length raw - digest_len) in
            if not (String.equal (Digest.string body) digest) then
              quarantine t key path "payload digest mismatch"
            else
              match (Marshal.from_string body 0 : persisted) with
              | exception _ -> quarantine t key path "unmarshal failed"
              | r ->
                  (* The format check MUST stay first: a pre-v2 file viewed
                     through the current record type only has its leading
                     fields — touching [f_target] on one is undefined. *)
                  if r.f_format <> format_version then Miss  (* stale format *)
                  else if r.f_tapegen <> Tape_gen.version then
                    Miss  (* compiled by another tape generator: stale *)
                  else if not (String.equal r.f_target target) then
                    Miss  (* prepared for a different execution target *)
                  else if not (String.equal r.f_key key) then
                    quarantine t key path "stored under a foreign key"
                  else if
                    L.structural_hash r.f_payload.p_stmt <> r.f_prep_hash
                  then quarantine t key path "rehash mismatch"
                  else if r.f_payload.p_src <> src then
                    Miss  (* digest collision on a different statement *)
                  else Hit r.f_payload)
      end)
