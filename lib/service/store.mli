(** On-disk content-addressed compile-artifact store.

    The persistent tier of the compile service: every artifact is a
    prepared+planned statement (the output of
    {!Tiramisu_pipeline.Pipeline.prepare_and_plan}) keyed by the hex
    digest of its full compile-cache key — structural hash of the source
    statement, knobs, params, extents, pool environment and
    {!Tiramisu_codegen.Tape_gen.version}.  A warm load therefore skips
    every pipeline pass and goes straight to the backend compile stage.

    Layout: [root/<hh>/<key>.art] where [<hh>] is the first two hex
    characters of the key — 256 shards, each with its own lock, so
    concurrent service workers loading or persisting different keys
    almost never contend.  Writes go through a temp file + atomic rename,
    so a crashed writer leaves no half-written artifact under the key.

    Integrity: the file carries a whole-payload digest and the payload
    re-states the prepared statement's structural hash, which is
    recomputed on load.  Any mismatch — truncation, bit flip, partial
    write that survived rename, unmarshallable bytes — moves the file to
    [root/quarantine/] and reports {!Quarantined}: corrupt entries are
    misses that can never wedge the service, and the quarantined file is
    kept for post-mortem.  An artifact persisted by a different
    {!Tiramisu_codegen.Tape_gen.version} or store format version is a
    clean {!Miss} (stale, not corrupt) and is overwritten by the next
    {!put}. *)

type t

type payload = {
  p_src : Tiramisu_codegen.Loop_ir.stmt;
      (** the source statement, stored verbatim: the digest collision
          guard — load compares it structurally against the requested
          statement, exactly as the in-memory cache buckets do *)
  p_stmt : Tiramisu_codegen.Loop_ir.stmt;  (** prepared+planned statement *)
  p_plan : Tiramisu_codegen.Parallel_plan.report;
}

type verdict =
  | Hit of payload
  | Miss
      (** absent, persisted by an older tape-generator / format version,
          or a digest collision with a different source statement *)
  | Quarantined of string
      (** integrity check failed (reason attached); the file was moved to
          [root/quarantine/] and the key now misses *)

val format_version : int
(** Bumped on any change to the on-disk record layout; older files
    load as {!Miss}. *)

val open_store : string -> t
(** Create/open a store rooted at the given directory (created, with its
    shard directories, on demand). *)

val root : t -> string

val put : ?tapegen:int -> t -> key:string -> target:string -> payload -> unit
(** Persist an artifact under [key] (lower-case hex, as produced by
    {!Tiramisu_pipeline.Pipeline.key_digest}), recording the execution
    target it was prepared for ([target] is
    {!Tiramisu_backends.Target.to_key_string}).  [tapegen] overrides the
    recorded generator version — exposed so tests can fabricate stale
    entries; real callers never pass it. *)

val get :
  t ->
  key:string ->
  src:Tiramisu_codegen.Loop_ir.stmt ->
  target:string ->
  verdict
(** An artifact recorded for a different [target] is a clean {!Miss} —
    one store holds CPU, GPU-sim and distributed artifacts without
    aliasing. *)

val quarantined : t -> int
(** Number of files this store instance moved to quarantine. *)

val shard_of_key : string -> string
(** The two-hex-character shard a key lives in (exposed for tests). *)

val path_of_key : t -> string -> string
(** Absolute artifact path for a key (exposed for tests that corrupt
    files on purpose). *)
