(** Kernel-compilation-as-a-service: a concurrent compile server over the
    pipeline, the persistent {!Store} and an in-memory artifact tier.

    The production-scale story of ROADMAP item 3: many clients submit
    kernels; the server compiles each unique configuration at most once —
    whatever the concurrency — and serves everyone else from one of three
    tiers:

    + {b in-flight dedup}: N requests for one key while it is queued or
      compiling become one compile and N waiters on its result;
    + {b memory tier}: a bounded LRU of recently produced artifacts;
    + {b disk tier}: the content-addressed {!Store}, which survives
      processes — a fresh server on a warm store never re-runs a pass.

    Compiles run on a pool of dedicated worker domains fed by a {e
    bounded} admission queue: when the queue is full, new keys are
    rejected immediately ({!Rejected}) instead of building unbounded
    backlog — load sheds at admission, and dedup waiters are exempt (they
    consume no queue slot).  Per-request deadlines use the {e cooperative}
    guard ({!Tiramisu_support.Limits.with_deadline}): the pipeline checks
    it at every pass boundary, so a slow compile aborts between passes —
    no SIGALRM, which is process-global and unsafe under domains.

    What the service produces and persists is the prepared+planned
    statement (every pipeline pass applied); {!instantiate} turns a
    response into a runnable executor with the backend compile stage
    only. *)

module P = Tiramisu_pipeline.Pipeline

type request = {
  rq_name : string;  (** diagnostic label (kernel name) *)
  rq_stmt : Tiramisu_codegen.Loop_ir.stmt;  (** lowered source statement *)
  rq_knobs : P.knobs;
  rq_params : (string * int) list;
  rq_extents :
    (string * int array * Tiramisu_codegen.Loop_ir.mem_space) list;
  rq_deadline_s : float option;
      (** processing budget in seconds, counted from submission; enforced
          cooperatively at pass boundaries *)
}

type source =
  [ `Compiled  (** ran the pipeline passes; artifact persisted *)
  | `Disk      (** loaded from the store, integrity-checked *)
  | `Mem       (** served from the in-memory tier *) ]

type response = {
  rs_key : string;  (** content address (hex digest of the cache key) *)
  rs_source : source;
  rs_ms : float;  (** server-side processing time (queue wait excluded for
                      [`Mem], included for waiters sharing a compile) *)
  rs_prepared : Tiramisu_codegen.Loop_ir.stmt;
  rs_plan : Tiramisu_codegen.Parallel_plan.report;
}

type outcome =
  | Done of response
  | Rejected            (** admission queue full — try again later *)
  | Failed of string    (** pass rejection, deadline expiry, shutdown *)

type stats = {
  requests : int;
  compiles : int;      (** pipeline pass runs — at most one per unique key *)
  mem_hits : int;
  disk_hits : int;
  dedup_waits : int;   (** requests that waited on another's compile *)
  rejected : int;
  failed : int;
  quarantined : int;   (** corrupt store files moved aside (see {!Store}) *)
}

type t

val create :
  ?workers:int ->
  ?queue_cap:int ->
  ?mem_cap:int ->
  ?before_compile:(request -> unit) ->
  root:string ->
  unit ->
  t
(** Start a server: [workers] compile domains (default
    [max 1 (recommended_domain_count - 1)]), a [queue_cap]-bounded
    admission queue (default 64), a [mem_cap]-entry memory tier (default
    256).  [before_compile] is an instrumentation hook run by the worker
    just before the pipeline passes (tracing, fault injection in tests).
    [root] is the disk store directory. *)

val key_of : request -> string
(** The request's content address — [Pipeline.key_digest] of its full
    compile-cache key (includes {!Tiramisu_codegen.Tape_gen.version} and
    the pool environment). *)

val submit : t -> request -> outcome
(** Submit and block until the artifact is available (or rejected/failed).
    Safe to call from any thread or domain; concurrent submissions of the
    same key share one compile. *)

val stats : t -> stats
val store : t -> Store.t

val shutdown : t -> unit
(** Drain the queue (every accepted request still gets its outcome), stop
    and join the workers.  Subsequent {!submit}s fail. *)

val request_of_fn :
  ?knobs:P.knobs ->
  ?deadline_s:float ->
  fn:Tiramisu_core.Ir.fn ->
  params:(string * int) list ->
  unit ->
  request
(** Build a request from a scheduled function: applies the same
    schedule-level widening + lowering as [Pipeline.build], and derives
    the buffer extents from the function's declarations. *)

val instantiate :
  request ->
  response ->
  inputs:(string * (int array -> float)) list ->
  Tiramisu_backends.Exec.compiled
(** Turn a response into a runnable executor: fresh buffers at the
    request's extents, inputs filled, backend compile stage only (no pass
    re-runs).  Each call returns an independent executor+buffer pair, so
    concurrent clients never share mutable state. *)
