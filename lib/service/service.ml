module P = Tiramisu_pipeline.Pipeline
module L = Tiramisu_codegen.Loop_ir
module Plan = Tiramisu_codegen.Parallel_plan
module B = Tiramisu_backends
module Limits = Tiramisu_support.Limits
module Ir = Tiramisu_core.Ir
module Lower = Tiramisu_core.Lower

type request = {
  rq_name : string;
  rq_stmt : L.stmt;
  rq_knobs : P.knobs;
  rq_params : (string * int) list;
  rq_extents : (string * int array * L.mem_space) list;
  rq_deadline_s : float option;
}

type source = [ `Compiled | `Disk | `Mem ]

type response = {
  rs_key : string;
  rs_source : source;
  rs_ms : float;
  rs_prepared : L.stmt;
  rs_plan : Plan.report;
}

type outcome = Done of response | Rejected | Failed of string

type stats = {
  requests : int;
  compiles : int;
  mem_hits : int;
  disk_hits : int;
  dedup_waits : int;
  rejected : int;
  failed : int;
  quarantined : int;
}

(* One queued/in-flight compile; all fields guarded by [sv_m].  Waiters
   block on [sv_done] (a single broadcast condition: completions are rare
   events next to compiles, so thundering-herd re-checks are noise). *)
type job = {
  j_key : string;
  j_req : request;
  j_deadline : float option;  (* absolute, epoch seconds *)
  mutable j_outcome : outcome option;
}

type mem_entry = { me_payload : Store.payload; mutable me_gen : int }

type t = {
  sv_store : Store.t;
  sv_m : Mutex.t;
  sv_work : Condition.t;
  sv_done : Condition.t;
  sv_queue : job Queue.t;
  sv_queue_cap : int;
  sv_inflight : (string, job) Hashtbl.t;
  sv_mem : (string, mem_entry) Hashtbl.t;
  sv_mem_cap : int;
  sv_before_compile : (request -> unit) option;
  mutable sv_tick : int;
  mutable sv_down : bool;
  mutable sv_workers : unit Domain.t list;
  mutable c_requests : int;
  mutable c_compiles : int;
  mutable c_mem_hits : int;
  mutable c_disk_hits : int;
  mutable c_dedup_waits : int;
  mutable c_rejected : int;
  mutable c_failed : int;
}

let key_of (req : request) =
  let hash = P.structural_hash_memo req.rq_stmt in
  P.key_digest
    (P.make_key ~knobs:req.rq_knobs ~params:req.rq_params
       ~extents:req.rq_extents hash)

(* ---------- memory tier (LRU by generation, mutex held) ---------- *)

let mem_get_locked t key =
  match Hashtbl.find_opt t.sv_mem key with
  | None -> None
  | Some me ->
      t.sv_tick <- t.sv_tick + 1;
      me.me_gen <- t.sv_tick;
      Some me.me_payload

let mem_put_locked t key payload =
  if not (Hashtbl.mem t.sv_mem key) then begin
    if Hashtbl.length t.sv_mem >= t.sv_mem_cap then begin
      (* evict the least-recently-used entry — one, never the lot *)
      let victim = ref None in
      Hashtbl.iter
        (fun k me ->
          match !victim with
          | None -> victim := Some (k, me.me_gen)
          | Some (_, g) -> if me.me_gen < g then victim := Some (k, me.me_gen))
        t.sv_mem;
      match !victim with
      | Some (k, _) -> Hashtbl.remove t.sv_mem k
      | None -> ()
    end;
    t.sv_tick <- t.sv_tick + 1;
    Hashtbl.replace t.sv_mem key { me_payload = payload; me_gen = t.sv_tick }
  end

(* ---------- the worker side ---------- *)

(* Produce the artifact for [job]: disk tier first, then the pipeline
   passes.  Runs on a worker domain, outside the server mutex. *)
let produce t (job : job) : (source * Store.payload) =
  let req = job.j_req in
  let target = B.Target.to_key_string req.rq_knobs.P.target in
  Limits.check_deadline ();
  match Store.get t.sv_store ~key:job.j_key ~src:req.rq_stmt ~target with
  | Store.Hit payload -> (`Disk, payload)
  | Store.Miss | Store.Quarantined _ ->
      (* a quarantined file is a miss that also moved the corpse aside;
         recompiling below repairs the key *)
      (match t.sv_before_compile with Some h -> h req | None -> ());
      let prepared, plan =
        P.prepare_and_plan ~knobs:req.rq_knobs ~params:req.rq_params
          req.rq_stmt
      in
      let payload =
        { Store.p_src = req.rq_stmt; p_stmt = prepared; p_plan = plan }
      in
      Store.put t.sv_store ~key:job.j_key ~target payload;
      (`Compiled, payload)

let process t (job : job) =
  let t0 = B.Clock.now_ms () in
  let result =
    try
      let run () = produce t job in
      match job.j_deadline with
      | None -> Ok (run ())
      | Some abs -> (
          let remain = abs -. Unix.gettimeofday () in
          if remain <= 0.0 then Error "deadline expired while queued"
          else
            match Limits.with_deadline remain run with
            | Some r -> Ok r
            | None -> Error "deadline expired during compile")
    with
    | P.Error e -> Error (P.error_to_string e)
    | Limits.Timeout -> Error "deadline expired during compile"
    | e -> Error (Printexc.to_string e)
  in
  let ms = B.Clock.now_ms () -. t0 in
  Mutex.protect t.sv_m (fun () ->
      let outcome =
        match result with
        | Ok (src, payload) ->
            (match src with
            | `Compiled -> t.c_compiles <- t.c_compiles + 1
            | `Disk -> t.c_disk_hits <- t.c_disk_hits + 1
            | `Mem -> ());
            mem_put_locked t job.j_key payload;
            Done
              { rs_key = job.j_key; rs_source = src; rs_ms = ms;
                rs_prepared = payload.Store.p_stmt;
                rs_plan = payload.Store.p_plan }
        | Error msg ->
            t.c_failed <- t.c_failed + 1;
            Failed (job.j_req.rq_name ^ ": " ^ msg)
      in
      job.j_outcome <- Some outcome;
      Hashtbl.remove t.sv_inflight job.j_key;
      Condition.broadcast t.sv_done)

let rec worker t =
  let next =
    Mutex.protect t.sv_m (fun () ->
        while Queue.is_empty t.sv_queue && not t.sv_down do
          Condition.wait t.sv_work t.sv_m
        done;
        (* drain even when shutting down: every accepted job owes its
           waiters an outcome *)
        if Queue.is_empty t.sv_queue then None else Some (Queue.pop t.sv_queue))
  in
  match next with
  | None -> ()
  | Some job ->
      process t job;
      worker t

(* ---------- the client side ---------- *)

let create ?workers ?(queue_cap = 64) ?(mem_cap = 256) ?before_compile ~root
    () =
  let workers =
    match workers with
    | Some w ->
        if w < 1 then invalid_arg "Service.create: workers < 1";
        w
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  if queue_cap < 1 then invalid_arg "Service.create: queue_cap < 1";
  let t =
    { sv_store = Store.open_store root;
      sv_m = Mutex.create ();
      sv_work = Condition.create ();
      sv_done = Condition.create ();
      sv_queue = Queue.create ();
      sv_queue_cap = queue_cap;
      sv_inflight = Hashtbl.create 64;
      sv_mem = Hashtbl.create 64;
      sv_mem_cap = mem_cap;
      sv_before_compile = before_compile;
      sv_tick = 0;
      sv_down = false;
      sv_workers = [];
      c_requests = 0; c_compiles = 0; c_mem_hits = 0; c_disk_hits = 0;
      c_dedup_waits = 0; c_rejected = 0; c_failed = 0 }
  in
  t.sv_workers <- List.init workers (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t (req : request) : outcome =
  let key = key_of req in
  let t0 = B.Clock.now_ms () in
  let decision =
    Mutex.protect t.sv_m (fun () ->
        t.c_requests <- t.c_requests + 1;
        match mem_get_locked t key with
        | Some payload ->
            t.c_mem_hits <- t.c_mem_hits + 1;
            `Mem payload
        | None -> (
            match Hashtbl.find_opt t.sv_inflight key with
            | Some job ->
                t.c_dedup_waits <- t.c_dedup_waits + 1;
                `Wait job
            | None ->
                if t.sv_down then `Down
                else if Queue.length t.sv_queue >= t.sv_queue_cap then begin
                  t.c_rejected <- t.c_rejected + 1;
                  `Reject
                end
                else begin
                  let job =
                    { j_key = key; j_req = req;
                      j_deadline =
                        Option.map
                          (fun d -> Unix.gettimeofday () +. d)
                          req.rq_deadline_s;
                      j_outcome = None }
                  in
                  Hashtbl.replace t.sv_inflight key job;
                  Queue.push job t.sv_queue;
                  Condition.signal t.sv_work;
                  `Wait job
                end))
  in
  match decision with
  | `Mem payload ->
      Done
        { rs_key = key; rs_source = `Mem; rs_ms = B.Clock.now_ms () -. t0;
          rs_prepared = payload.Store.p_stmt;
          rs_plan = payload.Store.p_plan }
  | `Reject -> Rejected
  | `Down -> Failed (req.rq_name ^ ": service is shut down")
  | `Wait job ->
      Mutex.protect t.sv_m (fun () ->
          while job.j_outcome = None do
            Condition.wait t.sv_done t.sv_m
          done;
          Option.get job.j_outcome)

let stats t =
  Mutex.protect t.sv_m (fun () ->
      { requests = t.c_requests; compiles = t.c_compiles;
        mem_hits = t.c_mem_hits; disk_hits = t.c_disk_hits;
        dedup_waits = t.c_dedup_waits; rejected = t.c_rejected;
        failed = t.c_failed; quarantined = Store.quarantined t.sv_store })

let store t = t.sv_store

let shutdown t =
  let ws =
    Mutex.protect t.sv_m (fun () ->
        t.sv_down <- true;
        Condition.broadcast t.sv_work;
        let ws = t.sv_workers in
        t.sv_workers <- [];
        ws)
  in
  List.iter Domain.join ws

let request_of_fn ?(knobs = P.default_knobs) ?deadline_s ~fn ~params () =
  P.lower_for_build ~knobs fn (fun lowered ->
      { rq_name = fn.Ir.fn_name;
        rq_stmt = lowered.Lower.ast;
        rq_knobs = knobs;
        rq_params = params;
        rq_extents = P.extents_of_fn fn ~params;
        rq_deadline_s = deadline_s })

let instantiate (req : request) (rs : response) ~inputs =
  let buffers =
    List.map
      (fun (name, dims, mem) -> B.Buffers.create ~mem name dims)
      req.rq_extents
  in
  List.iter
    (fun (name, fill) ->
      match List.find_opt (fun b -> b.B.Buffers.name = name) buffers with
      | Some b -> B.Buffers.fill b fill
      | None -> invalid_arg ("Service.instantiate: unknown input " ^ name))
    inputs;
  P.compile_stage ~knobs:req.rq_knobs ~params:req.rq_params ~buffers
    rs.rs_prepared
