(** Integer sets: finite unions of convex polyhedra over a named space.

    These are the Layer-I iteration domains of the paper (§IV-C1), e.g.
    [{ by[i,j,c] : 0 <= i < N-2 and 0 <= j < M-2 and 0 <= c < 3 }]. *)

type t = { space : Space.set; polys : Poly.t list }

val of_constraints : Space.set -> Cstr.t list -> t
(** The single convex piece satisfying all constraints. *)

val of_polys : Space.set -> Poly.t list -> t
val universe : Space.set -> t
val empty : Space.set -> t
val space : t -> Space.set
val n_vars : t -> int
val n_params : t -> int

val add_constraints : t -> Cstr.t list -> t
val intersect : t -> t -> t
val union : t -> t -> t
val subtract : t -> t -> t

val is_empty : t -> bool
(** Exact (parameters are existentially quantified). *)

val equal : t -> t -> bool
val subset : t -> t -> bool

val mem : t -> params:int array -> int array -> bool
val sample : t -> int array option
(** Full column vector [params @ vars]. *)

val fix_params : t -> (string * int) list -> t
val fix_var : t -> int -> int -> t
val constant_value : t -> int -> int option
(** Is variable [i] (0-based within the tuple) forced to a constant? *)

val project_onto_prefix : t -> int -> t
(** Keep only the first [k] tuple variables (existentially projecting the
    rest, possibly over-approximating); the space shrinks to arity [k]. *)

val rename_vars : t -> string list -> t

val points : t -> params:(string * int) list -> int array list
(** Enumerate all integer points for fixed parameter values, in
    lexicographic order.  Intended for tests and small domains.
    @raise Invalid_argument if the set is unbounded within [-2^20, 2^20]. *)

val card : ?budget:int -> t -> params:(string * int) list -> int option
(** Exact number of integer points for fixed parameter values (the trip
    count of the domain).  Union pieces are disjointified via
    {!Poly.subtract} before summing, so overlap is never double-counted.
    [None] when some piece is unbounded or the per-piece enumeration budget
    is exhausted — never approximate. *)

val card_estimate : ?budget:int -> t -> params:(string * int) list -> int option
(** {!card} when it succeeds, otherwise an upper bound from
    Fourier–Motzkin bounding-box products summed over union pieces. *)

val pp : Format.formatter -> t -> unit
(** ISL-style notation, e.g.
    [[N] -> { S[i, j] : i >= 0 and -i + N - 1 >= 0 }]. *)

val to_string : t -> string
