(** Raw convex integer polyhedra (conjunctions of affine constraints).

    A value of type {!t} represents the set of integer points of dimension
    [n] satisfying a list of equality and inequality rows (layout as in
    {!Omega}: column 0 is the constant).  This module is nameless — the
    {!Set_} and {!Map_} wrappers assign meaning (parameters, tuple
    dimensions) to columns. *)

type t = private { n : int; eqs : int array list; ineqs : int array list }

val make : int -> eqs:int array list -> ineqs:int array list -> t
(** @raise Invalid_argument if a row's length differs from [n+1]. *)

val universe : int -> t
val dim : t -> int
val add_eq : t -> int array -> t
val add_ineq : t -> int array -> t
val intersect : t -> t -> t

val is_empty : t -> bool
(** Exact integer emptiness (Omega test). *)

val sample : t -> int array option
(** A witness integer point (see {!Omega.sample} for caveats). *)

val mem : t -> int array -> bool
(** Point membership. *)

val insert_vars : t -> at:int -> count:int -> t
(** Add [count] fresh unconstrained dimensions before position [at]. *)

val drop_vars : t -> at:int -> count:int -> t
(** Remove columns without elimination — only safe if the dropped variables
    are unconstrained or already eliminated. *)

val eliminate : t -> keep:(int -> bool) -> t * bool
(** Existentially project out all variables [v] with [keep v = false].  The
    boolean is [true] when the projection is exact (every eliminated variable
    was removed by unit-coefficient equality substitution); otherwise the
    result is a Fourier–Motzkin over-approximation.  The result keeps arity
    [n] with zero columns for eliminated variables. *)

val project_out : t -> at:int -> count:int -> t * bool
(** [eliminate] followed by [drop_vars]: the result has [n - count]
    dimensions. *)

val fix_var : t -> int -> int -> t
(** [fix_var p v c] adds the equality [x_v = c]. *)

val constant_value : t -> int -> int option
(** [constant_value p v] is [Some c] when the (normalized, propagated)
    equalities force [x_v = c] syntactically. *)

val subtract : t -> t -> t list
(** [subtract a b] is a disjoint decomposition of [a \ b] into convex
    pieces; empty pieces are filtered out. *)

val implies_ineq : t -> int array -> bool
(** [implies_ineq p row] holds when every point of [p] satisfies [row >= 0]. *)

val gist : t -> ctx:t -> t
(** Drop from [p] every constraint already implied by [ctx]. *)

val to_ineqs : t -> int array list
(** All constraints as inequality rows (equalities become two rows). *)

val permute : t -> int array -> t
(** [permute p perm]: variable [i] of the result is variable [perm.(i)] of
    [p]. *)

val equal : t -> t -> bool
(** Set equality (double inclusion, exact). *)

val subset : t -> t -> bool
(** [subset a b]: every integer point of [a] lies in [b]. *)

val card : ?budget:int -> t -> int option
(** Exact number of integer points.  Counting factors into a product over
    connected components of the constraint graph; single-variable components
    are intervals, multi-variable components are enumerated (bound one
    variable by projection, fix, recurse) within [budget] point visits.
    [None] when the set is unbounded (or not provably bounded) or the budget
    is exhausted — never an approximate count. *)

val card_box : t -> int option
(** Upper bound on {!card}: the product of the per-dimension
    Fourier–Motzkin-projected extents (the bounding box).  [None] when some
    dimension has no finite projected bound. *)

val pp : Format.formatter -> t -> unit
