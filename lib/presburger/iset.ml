type t = { space : Space.set; polys : Poly.t list }

let of_polys space polys =
  let n = Space.set_arity space in
  List.iter (fun p -> if Poly.dim p <> n then invalid_arg "Iset: arity") polys;
  { space; polys }

let universe space = of_polys space [ Poly.universe (Space.set_arity space) ]
let empty space = of_polys space []
let space s = s.space
let n_vars s = Array.length s.space.Space.vars
let n_params s = Array.length s.space.Space.params

let poly_of_constraints space cs =
  let cols = Space.set_cols space in
  List.fold_left
    (fun p c ->
      match Cstr.to_row ~cols c with
      | `Eq row -> Poly.add_eq p row
      | `Ineq row -> Poly.add_ineq p row)
    (Poly.universe (Space.set_arity space))
    cs

let of_constraints space cs = { space; polys = [ poly_of_constraints space cs ] }

let add_constraints s cs =
  let extra = poly_of_constraints s.space cs in
  { s with polys = List.map (Poly.intersect extra) s.polys }

let same_shape a b =
  if not (Space.set_equal a.space b.space) then
    invalid_arg "Iset: space mismatch"

let intersect a b =
  same_shape a b;
  {
    a with
    polys =
      List.concat_map
        (fun p -> List.map (fun q -> Poly.intersect p q) b.polys)
        a.polys;
  }

let union a b =
  same_shape a b;
  { a with polys = a.polys @ b.polys }

let subtract a b =
  same_shape a b;
  {
    a with
    polys =
      List.fold_left
        (fun pieces q -> List.concat_map (fun p -> Poly.subtract p q) pieces)
        a.polys b.polys;
  }

let is_empty s = List.for_all Poly.is_empty s.polys

let subset a b =
  same_shape a b;
  is_empty (subtract a b)

let equal a b = subset a b && subset b a

let mem s ~params pt =
  let full = Array.append params pt in
  List.exists (fun p -> Poly.mem p full) s.polys

let sample s = List.find_map Poly.sample s.polys

let fix_params s bindings =
  let np = n_params s in
  let fix p =
    List.fold_left
      (fun p (name, v) ->
        let idx = ref (-1) in
        Array.iteri
          (fun i n -> if n = name && !idx < 0 then idx := i)
          s.space.Space.params;
        if !idx < 0 then p else Poly.fix_var p !idx v)
      p bindings
  in
  ignore np;
  { s with polys = List.map fix s.polys }

let fix_var s i v =
  let np = n_params s in
  { s with polys = List.map (fun p -> Poly.fix_var p (np + i) v) s.polys }

let constant_value s i =
  let np = n_params s in
  match s.polys with
  | [] -> None
  | p :: rest -> (
      match Poly.constant_value p (np + i) with
      | None -> None
      | Some c ->
          if
            List.for_all
              (fun q -> Poly.constant_value q (np + i) = Some c)
              rest
          then Some c
          else None)

let project_onto_prefix s k =
  let np = n_params s and nv = n_vars s in
  if k > nv then invalid_arg "Iset.project_onto_prefix";
  let space' =
    {
      s.space with
      Space.vars = Array.sub s.space.Space.vars 0 k;
    }
  in
  let polys =
    List.map
      (fun p -> fst (Poly.project_out p ~at:(np + k) ~count:(nv - k)))
      s.polys
  in
  { space = space'; polys }

let rename_vars s names =
  if List.length names <> n_vars s then invalid_arg "Iset.rename_vars";
  { s with space = { s.space with Space.vars = Array.of_list names } }

let points s ~params =
  let limit = 1 lsl 20 in
  let s = fix_params s params in
  let nv = n_vars s and np = n_params s in
  let acc = ref [] in
  List.iter
    (fun p ->
      (* Enumerate recursively: bound each var via FM projection. *)
      let rec go p depth prefix =
        if depth = nv then acc := Array.of_list (List.rev prefix) :: !acc
        else
          let v = np + depth in
          (* Outer variables and parameters are already fixed by equalities,
             so eliminating everything but [v] leaves constant bounds. *)
          let proj, _ = Poly.eliminate p ~keep:(fun i -> i = v) in
          let lo, hi =
            List.fold_left
              (fun (lo, hi) row ->
                let c = row.(v + 1) in
                let k = row.(0) in
                if c > 0 then (max lo (Tiramisu_support.Ints.cdiv (-k) c), hi)
                else if c < 0 then (lo, min hi (Tiramisu_support.Ints.fdiv k (-c)))
                else (lo, hi))
              (-limit, limit)
              (Poly.to_ineqs proj)
          in
          if hi - lo > limit then invalid_arg "Iset.points: unbounded";
          for x = lo to hi do
            let p' = Poly.fix_var p v x in
            if not (Poly.is_empty p') then go p' (depth + 1) (x :: prefix)
          done
      in
      go p 0 [])
    s.polys;
  (* Deduplicate (union pieces may overlap) and sort lexicographically. *)
  let cmp a b = Stdlib.compare (Array.to_list a) (Array.to_list b) in
  List.sort_uniq cmp !acc

let card ?(budget = 1 lsl 16) s ~params =
  let s = fix_params s params in
  (* Disjointify the union before summing: each piece is counted minus the
     pieces already counted. *)
  let rec go acc prev = function
    | [] -> Some acc
    | p :: rest -> (
        let frags =
          List.fold_left
            (fun frs q -> List.concat_map (fun f -> Poly.subtract f q) frs)
            [ p ] prev
        in
        let sub =
          List.fold_left
            (fun a f ->
              match (a, Poly.card ~budget f) with
              | Some a, Some c -> Some (a + c)
              | _ -> None)
            (Some 0) frags
        in
        match sub with
        | Some c -> go (acc + c) (p :: prev) rest
        | None -> None)
  in
  go 0 [] s.polys

let card_estimate ?(budget = 1 lsl 16) s ~params =
  match card ~budget s ~params with
  | Some _ as r -> r
  | None ->
      (* Bounding-box upper bound; union pieces may overlap, which only
         pushes the estimate further up. *)
      let s = fix_params s params in
      List.fold_left
        (fun acc p ->
          match (acc, Poly.card_box p) with
          | Some a, Some c -> Some (a + c)
          | _ -> None)
        (Some 0) s.polys

let pp_poly ~cols ppf p =
  let { Poly.eqs; ineqs; _ } = p in
  let parts =
    List.map (fun r -> Format.asprintf "%a = 0" Aff.pp (Aff.of_row ~cols r)) eqs
    @ List.map
        (fun r -> Format.asprintf "%a >= 0" Aff.pp (Aff.of_row ~cols r))
        ineqs
  in
  Format.fprintf ppf "%s" (String.concat " and " parts)

let pp ppf s =
  let cols = Space.set_cols s.space in
  let params = s.space.Space.params in
  if Array.length params > 0 then
    Format.fprintf ppf "[%s] -> "
      (String.concat ", " (Array.to_list params));
  let tuple =
    Printf.sprintf "%s[%s]"
      (Option.value s.space.Space.set_name ~default:"")
      (String.concat ", " (Array.to_list s.space.Space.vars))
  in
  match s.polys with
  | [] -> Format.fprintf ppf "{ %s : false }" tuple
  | polys ->
      Format.fprintf ppf "{ ";
      List.iteri
        (fun i p ->
          if i > 0 then Format.fprintf ppf "; ";
          Format.fprintf ppf "%s" tuple;
          if p.Poly.eqs <> [] || p.Poly.ineqs <> [] then
            Format.fprintf ppf " : %a" (pp_poly ~cols) p)
        polys;
      Format.fprintf ppf " }"

let to_string s = Format.asprintf "%a" pp s
