open Tiramisu_support

type t = { n : int; eqs : int array list; ineqs : int array list }

let check_row n r =
  if Array.length r <> n + 1 then
    invalid_arg
      (Printf.sprintf "Poly: row arity %d, expected %d" (Array.length r - 1) n)

let make n ~eqs ~ineqs =
  List.iter (check_row n) eqs;
  List.iter (check_row n) ineqs;
  { n; eqs; ineqs }

let universe n = { n; eqs = []; ineqs = [] }
let dim p = p.n

let add_eq p r =
  check_row p.n r;
  { p with eqs = r :: p.eqs }

let add_ineq p r =
  check_row p.n r;
  { p with ineqs = r :: p.ineqs }

let intersect a b =
  if a.n <> b.n then invalid_arg "Poly.intersect: arity mismatch";
  { n = a.n; eqs = a.eqs @ b.eqs; ineqs = a.ineqs @ b.ineqs }

let is_empty p = not (Omega.feasible ~n:p.n ~eqs:p.eqs ~ineqs:p.ineqs)
let sample p = Omega.sample ~n:p.n ~eqs:p.eqs ~ineqs:p.ineqs

let eval row pt =
  let acc = ref row.(0) in
  Array.iteri (fun i x -> acc := Ints.add !acc (Ints.mul row.(i + 1) x)) pt;
  !acc

let mem p pt =
  Array.length pt = p.n
  && List.for_all (fun r -> eval r pt = 0) p.eqs
  && List.for_all (fun r -> eval r pt >= 0) p.ineqs

let insert_vars p ~at ~count =
  let f r = Vec.insert_cols r ~at:(at + 1) ~count in
  { n = p.n + count; eqs = List.map f p.eqs; ineqs = List.map f p.ineqs }

let drop_vars p ~at ~count =
  let f r = Vec.drop_cols r ~at:(at + 1) ~count in
  { n = p.n - count; eqs = List.map f p.eqs; ineqs = List.map f p.ineqs }

(* Normalize equality rows; raises Omega.Infeasible on contradiction. *)
let normalize_eqs eqs = List.filter_map Omega.normalize_eq eqs

(* Substitute out every to-be-eliminated variable that carries a unit
   coefficient in some equality. Exact. *)
let subst_units ~keep p =
  let rec go eqs ineqs zeroed =
    let pick =
      List.find_opt
        (fun e ->
          let found = ref false in
          Array.iteri
            (fun j c ->
              if j > 0 && abs c = 1 && (not (keep (j - 1))) && not zeroed.(j - 1)
              then found := true)
            e;
          !found)
        eqs
    in
    match pick with
    | None -> (eqs, ineqs, zeroed)
    | Some e ->
        let k = ref (-1) in
        Array.iteri
          (fun j c ->
            if !k < 0 && j > 0 && abs c = 1 && (not (keep (j - 1)))
               && not zeroed.(j - 1)
            then k := j - 1)
          e;
        let k = !k in
        let sub r = if r == e then r else Omega.subst_eq ~k e r in
        let clear r =
          (* Keep arity: zero the substituted column instead of dropping. *)
          let r' = Array.copy r in
          r'.(k + 1) <- 0;
          r'
        in
        let eqs' =
          List.filter_map
            (fun r -> if r == e then None else Some (clear (sub r)))
            eqs
        in
        let ineqs' = List.map (fun r -> clear (sub r)) ineqs in
        zeroed.(k) <- true;
        go eqs' ineqs' zeroed
  in
  let zeroed = Array.make p.n false in
  go (normalize_eqs p.eqs) p.ineqs zeroed

let eliminate p ~keep =
  match subst_units ~keep p with
  | exception Omega.Infeasible ->
      (* Represent the contradiction explicitly: -1 >= 0. *)
      let bad = Vec.zero (p.n + 1) in
      bad.(0) <- -1;
      ({ n = p.n; eqs = []; ineqs = [ bad ] }, true)
  | eqs, ineqs, zeroed ->
      let still_to_go v = (not (keep v)) && not zeroed.(v) in
      let appears v =
        List.exists (fun r -> r.(v + 1) <> 0) eqs
        || List.exists (fun r -> r.(v + 1) <> 0) ineqs
      in
      let leftovers =
        List.filter
          (fun v -> still_to_go v && appears v)
          (List.init p.n Fun.id)
      in
      if leftovers = [] then ({ n = p.n; eqs; ineqs }, true)
      else
        (* Fall back to rational Fourier-Motzkin with integer tightening:
           an over-approximation of the integer projection. *)
        let rows =
          ineqs @ List.concat_map (fun e -> [ e; Vec.neg e ]) eqs
        in
        let keep' v = not (List.mem v leftovers) in
        let rows' = Fm.eliminate ~n:p.n ~keep:keep' rows in
        ({ n = p.n; eqs = []; ineqs = rows' }, false)

let project_out p ~at ~count =
  let keep v = v < at || v >= at + count in
  let q, exact = eliminate p ~keep in
  (drop_vars q ~at ~count, exact)

let fix_var p v c =
  let row = Vec.unit (p.n + 1) (v + 1) in
  row.(0) <- -c;
  add_eq p row

let constant_value p v =
  (* Gauss-propagate equalities to surface single-variable rows. *)
  match
    let eqs = ref (normalize_eqs p.eqs) in
    let progress = ref true in
    while !progress do
      progress := false;
      (* Use any single-variable equality x_j = c to substitute everywhere. *)
      List.iter
        (fun e ->
          let nz =
            List.filter (fun j -> e.(j + 1) <> 0) (List.init p.n Fun.id)
          in
          match nz with
          | [ j ] when abs e.(j + 1) = 1 ->
              let changed = ref false in
              eqs :=
                List.map
                  (fun r ->
                    if r != e && r.(j + 1) <> 0 then (
                      changed := true;
                      let r' = Omega.subst_eq ~k:j e r in
                      r'.(j + 1) <- 0;
                      r')
                    else r)
                  !eqs;
              if !changed then progress := true
          | _ -> ())
        !eqs;
      eqs := normalize_eqs !eqs
    done;
    !eqs
  with
  | exception Omega.Infeasible -> None
  | eqs ->
      List.find_map
        (fun e ->
          let nz =
            List.filter (fun j -> e.(j + 1) <> 0) (List.init p.n Fun.id)
          in
          match nz with
          | [ j ] when j = v && abs e.(j + 1) = 1 ->
              Some (-e.(0) * e.(j + 1))
          | _ -> None)
        eqs

let to_ineqs p = p.ineqs @ List.concat_map (fun e -> [ e; Vec.neg e ]) p.eqs

(* not (row >= 0)  <=>  -row - 1 >= 0 *)
let negate_ineq row =
  let r = Vec.neg row in
  r.(0) <- Ints.sub r.(0) 1;
  r

let subtract a b =
  if a.n <> b.n then invalid_arg "Poly.subtract: arity mismatch";
  let rows = to_ineqs b in
  let pieces, _ =
    List.fold_left
      (fun (acc, ctx) row ->
        let piece = add_ineq ctx (negate_ineq row) in
        let ctx' = add_ineq ctx row in
        ((if is_empty piece then acc else piece :: acc), ctx'))
      ([], a) rows
  in
  List.rev pieces

let implies_ineq p row =
  check_row p.n row;
  is_empty (add_ineq p (negate_ineq row))

let gist p ~ctx =
  let keep_ineqs = List.filter (fun r -> not (implies_ineq ctx r)) p.ineqs in
  let keep_eqs =
    List.filter
      (fun e -> not (implies_ineq ctx e && implies_ineq ctx (Vec.neg e)))
      p.eqs
  in
  { p with eqs = keep_eqs; ineqs = keep_ineqs }

let permute p perm =
  if Array.length perm <> p.n then invalid_arg "Poly.permute";
  let f r =
    Array.init (p.n + 1) (fun i -> if i = 0 then r.(0) else r.(perm.(i - 1) + 1))
  in
  { p with eqs = List.map f p.eqs; ineqs = List.map f p.ineqs }

let subset a b =
  a.n = b.n
  && List.for_all
       (fun r -> implies_ineq a r)
       (to_ineqs b)

let equal a b = subset a b && subset b a

(* ---------- cardinality ---------- *)

(* Integer bounds on column [v] from inequality rows: [c·v + k >= 0] gives
   [v >= cdiv(-k,c)] for c > 0 and [v <= fdiv(k,-c)] for c < 0.  [None]
   means no finite bound on that side. *)
let var_bounds rows v =
  List.fold_left
    (fun (lo, hi) row ->
      let c = row.(v + 1) and k = row.(0) in
      if c > 0 then
        let b = Ints.cdiv (-k) c in
        ((match lo with None -> Some b | Some l -> Some (max l b)), hi)
      else if c < 0 then
        let b = Ints.fdiv k (-c) in
        (lo, match hi with None -> Some b | Some h -> Some (min h b))
      else (lo, hi))
    (None, None) rows

(* Partition the dimensions that appear in some constraint into connected
   components (two variables are linked when a row mentions both); counting
   factors into a product over components. *)
let components p =
  let parent = Array.init p.n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  let appears = Array.make p.n false in
  List.iter
    (fun r ->
      let first = ref (-1) in
      Array.iteri
        (fun j c ->
          if j > 0 && c <> 0 then begin
            appears.(j - 1) <- true;
            if !first < 0 then first := j - 1
            else parent.(find !first) <- find (j - 1)
          end)
        r)
    (p.eqs @ p.ineqs);
  let groups = Hashtbl.create 8 in
  for v = p.n - 1 downto 0 do
    if appears.(v) then
      let r = find v in
      Hashtbl.replace groups r
        (v :: Option.value (Hashtbl.find_opt groups r) ~default:[])
  done;
  (appears, Hashtbl.fold (fun _ vs acc -> vs :: acc) groups [])

let card ?(budget = 1 lsl 16) p =
  if is_empty p then Some 0
  else
    let appears, comps = components p in
    if Array.exists (fun a -> not a) appears then
      (* An unconstrained dimension makes a non-empty set infinite. *)
      None
    else begin
      let remaining = ref budget in
      (* Enumerate a multi-variable component: bound one variable by
         projection, fix each value, recurse.  The FM range may
         over-approximate; the emptiness check keeps the count exact. *)
      let rec enum q = function
        | [] -> Some 1
        | v :: rest -> (
            let proj, _ = eliminate q ~keep:(fun i -> i = v) in
            match var_bounds (to_ineqs proj) v with
            | Some lo, Some hi ->
                if hi < lo then Some 0
                else if hi - lo + 1 > !remaining then None
                else begin
                  let total = ref 0 and ok = ref true in
                  let x = ref lo in
                  while !ok && !x <= hi do
                    decr remaining;
                    let q' = fix_var q v !x in
                    if not (is_empty q') then begin
                      match enum q' rest with
                      | Some c -> total := !total + c
                      | None -> ok := false
                    end;
                    incr x
                  done;
                  if !ok then Some !total else None
                end
            | _ -> None)
      in
      let count_comp = function
        | [ v ] -> (
            (* Every row mentioning a singleton-component variable mentions
               only that variable, so its points form exactly the integer
               interval [lo, hi]. *)
            match var_bounds (to_ineqs p) v with
            | Some lo, Some hi -> Some (max 0 (hi - lo + 1))
            | _ -> None)
        | vs -> enum p vs
      in
      List.fold_left
        (fun acc vs ->
          match (acc, count_comp vs) with
          | Some a, Some c -> Some (a * c)
          | _ -> None)
        (Some 1) comps
    end

let card_box p =
  if is_empty p then Some 0
  else
    let rec go v acc =
      if v = p.n then Some acc
      else
        let proj, _ = eliminate p ~keep:(fun i -> i = v) in
        match var_bounds (to_ineqs proj) v with
        | Some lo, Some hi -> go (v + 1) (acc * max 0 (hi - lo + 1))
        | _ -> None
    in
    go 0 1

let pp ppf p =
  let pp_row kind ppf r =
    Format.fprintf ppf "%d" r.(0);
    Array.iteri
      (fun i c -> if i > 0 && c <> 0 then Format.fprintf ppf " %+d·x%d" c (i - 1))
      r;
    Format.fprintf ppf " %s 0" kind
  in
  Format.fprintf ppf "@[<v>{ dim=%d" p.n;
  List.iter (fun r -> Format.fprintf ppf ";@ %a" (pp_row "=") r) p.eqs;
  List.iter (fun r -> Format.fprintf ppf ";@ %a" (pp_row ">=") r) p.ineqs;
  Format.fprintf ppf " }@]"
