(** Lowering: Layer IV → polyhedral AST → loop IR (paper §V).

    Builds every computation's scheduled set (including the footprint-derived
    sets of [compute_at] producers — overlapped tiling), pads the time
    vectors to a common arity, emits per-statement bodies with accesses
    rewritten through the backward schedule substitution, and runs the
    vectorization/unrolling legalization passes. *)

type t = {
  ast : Tiramisu_codegen.Loop_ir.stmt;
  fn : Ir.fn;
}

exception Unsupported of string
(** A schedule/operation combination the lowering does not handle.  The
    pipeline pass manager wraps this into its typed error. *)

val expand : Ir.fn -> Expr.t -> Expr.t
(** Substitute inlined producers into an expression (beta-reduction of
    Layer-I accesses). *)

val generate_ast : Ir.fn -> Tiramisu_codegen.Loop_ir.stmt
(** The front half of {!lower}: shared-cache expansion, per-computation
    descriptors, and scheduled-domain AST generation — before
    legalization and allocation scoping.  Exposed so the pipeline pass
    manager can run and time the three stages individually. *)

val scope_allocs : Ir.fn -> Tiramisu_codegen.Loop_ir.stmt ->
  Tiramisu_codegen.Loop_ir.stmt
(** The back half of {!lower}: wrap buffers at their [allocate_at] scopes
    (or at the root).  [lower fn] is [scope_allocs fn] of the legalized
    {!generate_ast}. *)

val lower : Ir.fn -> t
(** @raise Failure on malformed schedules (e.g. iterators not recoverable
    from the time dims).
    @raise Unsupported on operations outside the lowering's reach. *)

val buffer_extents :
  Ir.fn -> params:(string * int) list -> (Ir.buffer * int array) list
(** Concrete sizes of every buffer of the pipeline for the given parameter
    values (used by backends to allocate storage). *)

val pseudocode : Ir.fn -> string
(** Generated-code pseudocode (Fig. 3 right column style). *)
