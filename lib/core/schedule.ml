open Tiramisu_presburger
open Ir
module L = Tiramisu_codegen.Loop_ir

let col_ctr = ref 0

let fresh_col () =
  incr col_ctr;
  (* Zero-padded so the lexicographic order Aff's term map uses agrees
     with allocation order regardless of the counter's magnitude: term
     order in reconstructed index expressions — and hence the structural
     hash of the lowered IR — must not depend on how many columns other
     functions allocated earlier in the process. *)
  Printf.sprintf "c$%09d" !col_ctr

let mk_dyn name = { d_col = fresh_col (); d_name = name; d_kind = Dyn; d_tag = L.Seq }
let mk_static v =
  { d_col = fresh_col (); d_name = "_s"; d_kind = Static v; d_tag = L.Seq }

let init _fn ~order iters =
  let dims =
    mk_static order
    :: List.concat_map (fun i -> [ mk_dyn i; mk_static 0 ]) iters
  in
  let dyns = List.filter (fun d -> d.d_kind = Dyn) dims in
  let cstrs =
    List.map2
      (fun d i -> Cstr.Eq (Aff.var d.d_col, Aff.var i))
      dyns iters
  in
  { dims; inter = []; cstrs }

(* Replace the [len] dims starting at list position [pos] with [news]. *)
let splice sched pos len news =
  let rec go i = function
    | rest when i = pos -> news @ drop len rest
    | d :: rest -> d :: go (i + 1) rest
    | [] -> invalid_arg "Schedule.splice"
  and drop n l = if n = 0 then l else drop (n - 1) (List.tl l)
  in
  sched.dims <- go 0 sched.dims

let dim_at sched pos = List.nth sched.dims pos

let split sched name factor n_out n_in =
  if factor <= 0 then invalid_arg "split: factor must be positive";
  let k = find_dyn sched name in
  let pos = dyn_pos sched k in
  let old = dim_at sched pos in
  let d0 = mk_dyn n_out and d1 = { (mk_dyn n_in) with d_tag = old.d_tag } in
  sched.cstrs <-
    Cstr.Eq
      (Aff.var old.d_col, Aff.(add (scale factor (var d0.d_col)) (var d1.d_col)))
    :: (Cstr.between (Aff.const 0) (Aff.var d1.d_col) (Aff.const factor)
       @ sched.cstrs);
  sched.inter <- old.d_col :: sched.inter;
  splice sched pos 1 [ d0; mk_static 0; d1 ]

let tile sched i j t1 t2 i0 j0 i1 j1 =
  let ki = find_dyn sched i and kj = find_dyn sched j in
  if kj <> ki + 1 then
    invalid_arg "tile: dimensions must be consecutive loop levels";
  (* Split both, then move j0 out: [i0 i1 j0 j1] -> [i0 j0 i1 j1]. *)
  split sched i t1 i0 i1;
  split sched j t2 j0 j1;
  (* dims now: ... i0 s i1 s j0 s j1 ... — swap i1 and j0. *)
  let p_i1 = dyn_pos sched (ki + 1) and p_j0 = dyn_pos sched (ki + 2) in
  let di1 = dim_at sched p_i1 and dj0 = dim_at sched p_j0 in
  let rec swap idx = function
    | [] -> []
    | d :: rest ->
        (if idx = p_i1 then dj0 else if idx = p_j0 then di1 else d)
        :: swap (idx + 1) rest
  in
  sched.dims <- swap 0 sched.dims

let interchange sched i j =
  let ki = find_dyn sched i and kj = find_dyn sched j in
  let pi = dyn_pos sched ki and pj = dyn_pos sched kj in
  let di = dim_at sched pi and dj = dim_at sched pj in
  let rec swap idx = function
    | [] -> []
    | d :: rest ->
        (if idx = pi then dj else if idx = pj then di else d)
        :: swap (idx + 1) rest
  in
  sched.dims <- swap 0 sched.dims

let replace_col sched name mk_expr =
  let k = find_dyn sched name in
  let pos = dyn_pos sched k in
  let old = dim_at sched pos in
  let fresh =
    { old with d_col = fresh_col () }
  in
  sched.cstrs <- Cstr.Eq (Aff.var fresh.d_col, mk_expr old.d_col) :: sched.cstrs;
  sched.inter <- old.d_col :: sched.inter;
  splice sched pos 1 [ fresh ]

let shift sched name s =
  replace_col sched name (fun old -> Aff.(add (var old) (const s)))

let skew sched i j f =
  let ki = find_dyn sched i in
  let di = List.nth (dyn_dims sched) ki in
  replace_col sched j (fun old ->
      Aff.(add (var old) (scale f (var di.d_col))))

let reverse sched name =
  replace_col sched name (fun old -> Aff.neg (Aff.var old))

let tag sched name t =
  let k = find_dyn sched name in
  (nth_dyn sched k).d_tag <- t

let vectorize sched name width =
  split sched name width name (name ^ "_v");
  tag sched (name ^ "_v") (L.Vectorized width)

let unroll sched name factor =
  split sched name factor name (name ^ "_u");
  tag sched (name ^ "_u") L.Unrolled

(* The static dim ordering computations at dynamic level [k] is the one
   immediately preceding dynamic dim k (or the trailing one for
   k = dyn_count). *)
let static_before sched k =
  let rec go seen last = function
    | [] ->
        if k >= seen then last
        else invalid_arg "Schedule.static_before"
    | d :: rest -> (
        match d.d_kind with
        | Static _ -> go seen d rest
        | Dyn -> if seen = k then last else go (seen + 1) last rest)
  in
  match go 0 (List.hd sched.dims) sched.dims with
  | { d_kind = Static _; _ } as d -> d
  | _ -> invalid_arg "Schedule.static_before: malformed schedule"

let set_static sched k v = (static_before sched k).d_kind <- Static v

let get_static sched k =
  match (static_before sched k).d_kind with
  | Static v -> v
  | Dyn -> assert false

let after c b level =
  for m = 0 to level - 1 do
    set_static c m (get_static b m)
  done;
  set_static c level (get_static b level + 1)

(* ---------- lowering support ---------- *)

let live_cols sched = List.map (fun d -> d.d_col) sched.dims

let scheduled_set ~params ~context domain sched =
  let iters = Array.to_list domain.Iset.space.Space.vars in
  let inter = sched.inter in
  let dims = sched.dims in
  let cols =
    Array.of_list (params @ iters @ inter @ live_cols sched)
  in
  let n = Array.length cols in
  let np = List.length params in
  let ni = List.length iters and nint = List.length inter in
  let base = Poly.universe n in
  let add_cstr p c =
    match Cstr.to_row ~cols c with
    | `Eq r -> Poly.add_eq p r
    | `Ineq r -> Poly.add_ineq p r
  in
  let base = List.fold_left add_cstr base sched.cstrs in
  let base = List.fold_left add_cstr base context in
  let base =
    List.fold_left
      (fun p (d, idx) ->
        match d.d_kind with
        | Static v -> Poly.fix_var p (np + ni + nint + idx) v
        | Dyn -> p)
      base
      (List.mapi (fun i d -> (d, i)) dims)
  in
  let polys =
    List.map
      (fun dp ->
        (* Lift the domain poly (params+iters) into the full column space. *)
        let lifted =
          Poly.insert_vars dp ~at:(np + ni)
            ~count:(n - np - ni)
        in
        let inter_poly = Poly.intersect lifted base in
        fst (Poly.project_out inter_poly ~at:np ~count:(ni + nint)))
      domain.Iset.polys
  in
  let out_space =
    Space.set_space ~params (List.map (fun d -> d.d_col) dims)
  in
  Iset.of_polys out_space polys

let backward_exprs ~params domain sched =
  let iters = Array.to_list domain.Iset.space.Space.vars in
  if iters = [] then []
  else begin
    let sp =
      Space.map_space ~params ~ins:(iters @ sched.inter) (live_cols sched)
    in
    let m = Imap.of_constraints sp sched.cstrs in
    match Imap.solve_ins m with
    | None ->
        failwith
          "Schedule.backward_exprs: iterators not determined by the schedule"
    | Some exprs ->
        (* Substitute static columns by their constant values. *)
        let static_val =
          List.filter_map
            (fun d ->
              match d.d_kind with
              | Static v -> Some (d.d_col, v)
              | Dyn -> None)
            sched.dims
        in
        List.mapi
          (fun idx it ->
            let e =
              Aff.subst exprs.(idx) (fun name ->
                  match List.assoc_opt name static_val with
                  | Some v -> Some (Aff.const v)
                  | None -> None)
            in
            (it, e))
          iters
  end

let pp ppf sched =
  Format.fprintf ppf "[";
  List.iteri
    (fun i d ->
      if i > 0 then Format.fprintf ppf "; ";
      match d.d_kind with
      | Static v -> Format.fprintf ppf "%d" v
      | Dyn -> Format.fprintf ppf "%s%s" d.d_name
                 (match d.d_tag with
                  | L.Seq -> ""
                  | t -> "(" ^ L.tag_name t ^ ")"))
    sched.dims;
  Format.fprintf ppf "]"
