open Tiramisu_presburger
open Ir
module L = Tiramisu_codegen.Loop_ir
module AG = Tiramisu_codegen.Ast_gen

type t = {
  ast : L.stmt;
  fn : Ir.fn;
}

exception Unsupported of string

(* ---------- inline expansion ---------- *)

let rec expand fn e =
  Expr.subst_access
    (fun name idx ->
      match List.find_opt (fun c -> c.comp_name = name) fn.comps with
      | Some p when p.inlined ->
          let body = expand fn p.expr in
          let bind = List.combine p.iters idx in
          Some (Expr.subst_iters (fun i -> List.assoc_opt i bind) body)
      | _ -> None)
    e

(* ---------- time-vector description ----------

   Each executable computation is described by a list of time dimensions
   (alternating statics and dynamics) together with its scheduled set over
   the dynamic columns.  Static values are doubled when materialized so that
   compute_at producers can slot in "just before" their consumer with value
   2v - 1. *)

type tdim =
  | T_static of int * int   (* (value, sub-order): materializes as 2v + sub *)
  | T_dyn of dim

type desc = {
  comp : computation;
  tdims : tdim list;
  set : Iset.t;   (* over the dynamic columns appearing in tdims *)
}

let col_index cols col =
  let rec go i = function
    | [] -> None
    | c :: rest -> if c = col then Some i else go (i + 1) rest
  in
  go 0 cols

(* Build a polyhedron set over [tuple_cols] from [domain] (over iters),
   constraints [cstrs] (over iters/elim/tuple columns), and fixed columns. *)
let build_set ~params ~context ~domain ~elim ~tuple_cols ~cstrs ~fixes =
  let iters = Array.to_list domain.Iset.space.Space.vars in
  let cols = Array.of_list (params @ iters @ elim @ tuple_cols) in
  let n = Array.length cols in
  let np = List.length params in
  let ni = List.length iters and ne = List.length elim in
  let add p c =
    match Cstr.to_row ~cols c with
    | `Eq r -> Poly.add_eq p r
    | `Ineq r -> Poly.add_ineq p r
  in
  let base = List.fold_left add (Poly.universe n) cstrs in
  let base = List.fold_left add base context in
  let base =
    List.fold_left
      (fun p (col, v) ->
        match col_index (Array.to_list cols) col with
        | Some idx -> Poly.fix_var p idx v
        | None -> p)
      base fixes
  in
  let polys =
    List.map
      (fun dp ->
        let lifted = Poly.insert_vars dp ~at:(np + ni) ~count:(n - np - ni) in
        fst
          (Poly.project_out (Poly.intersect lifted base) ~at:np
             ~count:(ni + ne)))
      domain.Iset.polys
  in
  Iset.of_polys (Space.set_space ~params tuple_cols) polys

(* Static fixes (materialized value 2v + sub) for a schedule's dims. *)
let static_fixes ?(sub = 0) dims =
  List.filter_map
    (fun d ->
      match d.d_kind with
      | Static v -> Some (d.d_col, (2 * v) + sub)
      | Dyn -> None)
    dims

(* Footprint of [consumer]'s accesses to [producer] within the loop prefix
   ending at consumer's dynamic level [lvl]: a set over
   [prefix_cols @ p_coord] (footprint coordinates are renamed producer
   iterators). *)
let footprint ~params ~context ~(consumer : computation) ~(producer : computation) ~lvl =
  let fn = consumer.fn in
  let c_iters = consumer.iters in
  let p_coord = List.map (fun i -> "p$" ^ i) producer.iters in
  let prefix_pos = dyn_pos consumer.sched lvl in
  let all_dims = consumer.sched.dims in
  let prefix_dims = List.filteri (fun i _ -> i <= prefix_pos) all_dims in
  let rest_dims = List.filteri (fun i _ -> i > prefix_pos) all_dims in
  let prefix_dyn_cols =
    List.filter_map
      (fun d -> match d.d_kind with Dyn -> Some d.d_col | Static _ -> None)
      prefix_dims
  in
  let prefix_static_cols =
    List.filter_map
      (fun d -> match d.d_kind with Static _ -> Some d.d_col | Dyn -> None)
      prefix_dims
  in
  let rest_cols = List.map (fun d -> d.d_col) rest_dims in
  let accs =
    (* A consumer rewired by cache_shared_at reads "<producer>_shared"; its
       accesses still define the producer's footprint. *)
    List.filter
      (fun (name, _) ->
        name = producer.comp_name || name = producer.comp_name ^ "_shared")
      (Expr.accesses (expand fn consumer.expr))
  in
  if accs = [] then
    invalid_arg
      (Printf.sprintf "compute_at: %s does not consume %s" consumer.comp_name
         producer.comp_name);
  let sets =
    List.map
      (fun (_, idx) ->
        let range_cstrs =
          List.concat
            (List.mapi
               (fun k (e : Ir.expr) ->
                 let coord = List.nth p_coord k in
                 match
                   Expr.index_range ~iters:c_iters ~params:fn.params e
                 with
                 | Some (lo, hi) ->
                     [ Cstr.Ge (Aff.var coord, lo); Cstr.Le (Aff.var coord, hi) ]
                 | None ->
                     (* Non-affine index: fall back to the producer's full
                        extent (§V-B over-approximation). *)
                     let _, (lo, hi) = List.nth producer.ranges k in
                     [ Cstr.Ge (Aff.var coord, lo); Cstr.Lt (Aff.var coord, hi) ])
               idx)
        in
        build_set ~params ~context ~domain:consumer.domain
          ~elim:(consumer.sched.inter @ rest_cols @ prefix_static_cols)
          ~tuple_cols:(prefix_dyn_cols @ p_coord)
          ~cstrs:(consumer.sched.cstrs @ range_cstrs)
          ~fixes:(static_fixes all_dims))
      accs
  in
  (List.fold_left Iset.union (List.hd sets) (List.tl sets), prefix_dims, p_coord)

let rename_cstrs bind cstrs =
  let ren a =
    Aff.subst a (fun n ->
        Option.map Aff.var (List.assoc_opt n bind))
  in
  List.map
    (function
      | Cstr.Eq (a, b) -> Cstr.Eq (ren a, ren b)
      | Cstr.Le (a, b) -> Cstr.Le (ren a, ren b)
      | Cstr.Lt (a, b) -> Cstr.Lt (ren a, ren b)
      | Cstr.Ge (a, b) -> Cstr.Ge (ren a, ren b)
      | Cstr.Gt (a, b) -> Cstr.Gt (ren a, ren b))
    cstrs

(* ---------- per-computation descriptions ---------- *)

let rec desc_of ~params ~context memo (c : computation) =
  match Hashtbl.find_opt memo c.comp_name with
  | Some d -> d
  | None ->
      let d =
        match c.computed_at with
        | None ->
            let set =
              build_set ~params ~context ~domain:c.domain ~elim:c.sched.inter
                ~tuple_cols:
                  (List.filter_map
                     (fun d ->
                       match d.d_kind with Dyn -> Some d.d_col | Static _ -> None)
                     c.sched.dims)
                ~cstrs:c.sched.cstrs ~fixes:[]
            in
            {
              comp = c;
              tdims =
                List.map
                  (fun d ->
                    match d.d_kind with
                    | Static v -> T_static (v, 0)
                    | Dyn -> T_dyn d)
                  c.sched.dims;
              set;
            }
        | Some (consumer, lvl) ->
            let cons_desc = desc_of ~params ~context memo consumer in
            let fp, prefix_dims, p_coord =
              footprint ~params ~context ~consumer ~producer:c ~lvl
            in
            (* The producer's own dims, minus its leading static (replaced by
               the ordering slot before the consumer). *)
            let own_dims =
              match c.sched.dims with
              | { d_kind = Static _; _ } :: rest -> rest
              | rest -> rest
            in
            let own_dyn_cols =
              List.filter_map
                (fun d ->
                  match d.d_kind with Dyn -> Some d.d_col | Static _ -> None)
                own_dims
            in
            let prefix_dyn_cols =
              List.filter_map
                (fun d ->
                  match d.d_kind with Dyn -> Some d.d_col | Static _ -> None)
                prefix_dims
            in
            (* Producer's domain and schedule constraints over the renamed
               footprint coordinates. *)
            let dom = Iset.rename_vars c.domain p_coord in
            let bind = List.combine c.iters p_coord in
            let cstrs = rename_cstrs bind c.sched.cstrs in
            (* The footprint links p_coord to the prefix dyn columns: turn
               each of its convex pieces into constraints over those columns
               and build one set per piece (unioned). *)
            let fp_cols =
              Array.append (Array.of_list params) fp.Iset.space.Space.vars
            in
            let piece_cstrs p =
              List.map
                (fun r -> Cstr.Eq (Aff.of_row ~cols:fp_cols r, Aff.const 0))
                p.Poly.eqs
              @ List.map
                  (fun r -> Cstr.Ge (Aff.of_row ~cols:fp_cols r, Aff.const 0))
                  p.Poly.ineqs
            in
            let build_with piece =
              build_set ~params ~context ~domain:dom ~elim:c.sched.inter
                ~tuple_cols:(prefix_dyn_cols @ own_dyn_cols)
                ~cstrs:(cstrs @ piece_cstrs piece)
                ~fixes:[]
            in
            let set =
              match fp.Iset.polys with
              | [] ->
                  Iset.empty
                    (Space.set_space ~params (prefix_dyn_cols @ own_dyn_cols))
              | p :: rest ->
                  List.fold_left
                    (fun acc q -> Iset.union acc (build_with q))
                    (build_with p) rest
            in
            let cons_prefix_tdims =
              List.filteri (fun i _ -> i <= dyn_pos consumer.sched lvl)
                cons_desc.tdims
            in
            let order_slot =
              match
                List.nth_opt cons_desc.tdims (dyn_pos consumer.sched lvl + 1)
              with
              | Some (T_static (v, _)) -> T_static (v, -1)
              | _ -> T_static (0, -1)
            in
            {
              comp = c;
              tdims =
                cons_prefix_tdims
                @ order_slot
                  :: List.map
                       (fun d ->
                         match d.d_kind with
                         | Static v -> T_static (v, 0)
                         | Dyn -> T_dyn d)
                       own_dims;
              set;
            }
      in
      Hashtbl.replace memo c.comp_name d;
      d

(* ---------- expression translation ---------- *)

(* Translate an affine expression over iters/params/cols to a loop
   expression.  [iter_map]: iterator -> Aff over columns; [col_env]: column
   name -> loop expr (None if unknown). *)
let rec aff_to_expr ~params ~iter_map ~col_env a =
  let acc = ref (L.Int (Aff.constant_part a)) in
  List.iter
    (fun (name, c) ->
      let e =
        if List.mem name params then L.Var name
        else
          match List.assoc_opt name iter_map with
          | Some sub -> aff_to_expr ~params ~iter_map:[] ~col_env sub
          | None -> (
              match col_env name with
              | Some e -> e
              | None ->
                  raise
                    (Unsupported
                       (Printf.sprintf "unresolved name %s in affine expr" name)))
      in
      acc := L.(!acc +! (int c *! e)))
    (Aff.terms a);
  L.simplify_expr !acc

let rec cond_of_expr translate (e : Ir.expr) : L.cond =
  match e with
  | Cmp_e (op, a, b) ->
      let op' =
        match op with
        | Eq -> L.EqOp | Ne -> L.NeOp | Lt -> L.LtOp
        | Le -> L.LeOp | Gt -> L.GtOp | Ge -> L.GeOp
      in
      L.Cmp (op', translate a, translate b)
  | _ -> L.Cmp (L.NeOp, translate e, L.Int 0)

and translate_expr ~fn ~params ~iter_map ~col_env (e : Ir.expr) : L.expr =
  let tr = translate_expr ~fn ~params ~iter_map ~col_env in
  match e with
  | Int_e n -> L.Int n
  | Float_e f -> L.Float f
  | Param_e p -> L.Var p
  | Iter_e i -> (
      match List.assoc_opt i iter_map with
      | Some a -> aff_to_expr ~params ~iter_map:[] ~col_env a
      | None -> raise (Unsupported (Printf.sprintf "unbound iterator %s" i)))
  | Access_e (name, idx) -> (
      let idx' = List.map tr idx in
      match List.find_opt (fun c -> c.comp_name = name) fn.comps with
      | None ->
          raise (Unsupported (Printf.sprintf "unknown computation %s" name))
      | Some p ->
          let acc =
            match p.access with
            | Some a -> a
            | None -> raise (Unsupported (name ^ " has no buffer"))
          in
          let bind = List.combine p.iters idx' in
          let dim_expr a =
            let acc_e = ref (L.Int (Aff.constant_part a)) in
            List.iter
              (fun (nm, cf) ->
                let e =
                  match List.assoc_opt nm bind with
                  | Some e -> e
                  | None -> (
                      if List.mem nm params then L.Var nm
                      else
                        match col_env nm with
                        | Some e -> e
                        | None ->
                            raise
                              (Unsupported
                                 (Printf.sprintf "access to %s via %s" name nm)))
                in
                acc_e := L.(!acc_e +! (int cf *! e)))
              (Aff.terms a);
            L.simplify_expr !acc_e
          in
          L.Load (acc.acc_buf.buf_name, List.map dim_expr acc.acc_idx))
  | Bin_e (op, a, b) ->
      let op' =
        match op with
        | Add -> L.Add | Sub -> L.Sub | Mul -> L.Mul | Div -> L.Div
        | Min -> L.MinOp | Max -> L.MaxOp
      in
      L.Bin (op', tr a, tr b)
  | Neg_e a -> L.Neg (tr a)
  | Cmp_e _ -> L.Select (cond_of_expr tr e, L.Int 1, L.Int 0)
  | Select_e (c, a, b) -> L.Select (cond_of_expr tr c, tr a, tr b)
  | Clamp_e (v, lo, hi) ->
      L.Bin (L.MaxOp, L.Bin (L.MinOp, tr v, tr hi), tr lo)
  | Call_e (f, args) -> L.Call (f, List.map tr args)
  | Cast_e (d, a) -> L.Cast (d, tr a)

(* ---------- allocate_at (Table II, b.allocate_at(C, i)) ----------

   Scope a buffer's allocation inside the named loop level of a
   computation: the post-pass finds the first loop whose variable carries
   the level's name and whose subtree touches the buffer, and wraps its
   body in a scoped Alloc. *)

let stmt_mentions buf (s0 : L.stmt) =
  let rec expr_mentions (e : L.expr) =
    match e with
    | L.Load (b, idx) -> b = buf || List.exists expr_mentions idx
    | L.Int _ | L.Float _ | L.Var _ -> false
    | L.Bin (_, a, b) -> expr_mentions a || expr_mentions b
    | L.Neg a | L.Cast (_, a) -> expr_mentions a
    | L.Select (_, a, b) -> expr_mentions a || expr_mentions b
    | L.Call (_, args) -> List.exists expr_mentions args
  in
  let rec go (s : L.stmt) =
    match s with
    | L.Block l -> List.exists go l
    | L.For f -> go f.body
    | L.If (_, t, e) ->
        go t || (match e with Some e -> go e | None -> false)
    | L.Store (b, idx, v) ->
        b = buf || List.exists expr_mentions idx || expr_mentions v
    | L.Alloc a -> go a.body
    | _ -> false
  in
  go s0

let wrap_allocs fn ast =
  let aff_to_simple_expr a =
    let acc = ref (L.Int (Aff.constant_part a)) in
    List.iter
      (fun (n, c) -> acc := L.(!acc +! (int c *! Var n)))
      (Aff.terms a);
    L.simplify_expr !acc
  in
  List.fold_left
    (fun ast ((b : buffer), (c : computation), lvl) ->
      let target = (nth_dyn c.sched lvl).d_name in
      let matches v =
        v = target
        || (String.length v > String.length target
           && String.sub v 0 (String.length target) = target
           && v.[String.length target] = '_')
      in
      let done_ = ref false in
      let rec rewrite (s : L.stmt) =
        match s with
        | L.For f
          when (not !done_) && matches f.var && stmt_mentions b.buf_name f.body
          ->
            done_ := true;
            L.For
              {
                f with
                body =
                  L.Alloc
                    {
                      buf = b.buf_name;
                      dtype = b.buf_dtype;
                      dims = List.map aff_to_simple_expr b.buf_dims;
                      mem = b.buf_mem;
                      body = f.body;
                    };
              }
        | L.For f -> L.For { f with body = rewrite f.body }
        | L.Block l -> L.Block (List.map rewrite l)
        | L.If (cnd, t, e) -> L.If (cnd, rewrite t, Option.map rewrite e)
        | s -> s
      in
      rewrite ast)
    ast fn.allocs

(* ---------- lowering ---------- *)

(* cache_shared_at (Table II): synthesize a copy computation that stages the
   producer's buffer into GPU shared memory inside the consumer's tile, and
   rewire the consumer to read the shared copy.  The copy is computed_at the
   same loop level, so the footprint machinery sizes its iteration set
   automatically (the paper's "amount of data to copy ... computed
   automatically", §III-C).  The shared buffer conservatively mirrors the
   producer's global buffer shape (the simulator has no 48 KB limit; see
   DESIGN.md). *)
let expand_shared_caches fn =
  List.iter
    (fun (p : computation) ->
      match p.cached_shared with
      | None -> ()
      | Some (sbuf, consumer, lvl) ->
          p.cached_shared <- None;
          (* shaped by the producer's iteration box, indexed identically to
             the copy's iterators *)
          let sbuf =
            { sbuf with
              buf_dims =
                List.map
                  (fun (_, (lo, hi)) -> Tiramisu_presburger.Aff.sub hi lo)
                  p.ranges }
          in
          fn.buffers <- fn.buffers @ [ sbuf ];
          let cache_name = p.comp_name ^ "_shared" in
          let vars =
            List.map
              (fun (it, (lo, hi)) -> Tiramisu.var it lo hi)
              p.ranges
          in
          let copy =
            Tiramisu.comp fn cache_name vars
              (Ir.Access_e
                 (p.comp_name, List.map (fun it -> Ir.Iter_e it) p.iters))
          in
          copy.computed_at <- Some (consumer, lvl);
          Tiramisu.store_in copy sbuf
            (List.map
               (fun (it, (lo, _)) ->
                 Tiramisu_presburger.Aff.sub (Tiramisu_presburger.Aff.var it) lo)
               p.ranges);
          (* consumers now read the shared copy *)
          consumer.expr <-
            Expr.subst_access
              (fun name idx ->
                if name = p.comp_name then Some (Ir.Access_e (cache_name, idx))
                else None)
              consumer.expr)
    fn.comps

(* Expansion + polyhedral AST generation only — the raw statement before
   legalization and alloc scoping.  {!Tiramisu_pipeline.Pipeline} runs the
   three stages as separately traced passes; {!lower} below composes them
   for direct callers. *)
let generate_ast fn =
  let params = fn.params in
  let context = fn.context in
  expand_shared_caches fn;
  List.iter
    (fun c ->
      match c.kind with
      | Regular when not c.inlined -> ignore (Tiramisu.buffer_of c)
      | Input -> ignore (Tiramisu.buffer_of c)
      | _ -> ())
    fn.comps;
  let memo = Hashtbl.create 16 in
  let execs =
    List.filter (fun c -> (not c.inlined) && c.kind <> Input) fn.comps
  in
  let descs = List.map (desc_of ~params ~context memo) execs in
  let max_len =
    List.fold_left (fun m d -> max m (List.length d.tdims)) 0 descs
  in
  let sources =
    List.map
      (fun d ->
        let c = d.comp in
        let pad = max_len - List.length d.tdims in
        let tdims = d.tdims @ List.init pad (fun _ -> T_static (0, 0)) in
        let set_cols = Array.to_list d.set.Iset.space.Space.vars in
        (* Full tuple: one column per tdim; statics get fresh columns fixed
           to their materialized value (2v + sub). *)
        let full_cols =
          List.mapi
            (fun i td ->
              match td with
              | T_dyn dd -> dd.d_col
              | T_static _ -> Printf.sprintf "s$%d" i)
            tdims
        in
        let fixes =
          List.concat
            (List.mapi
               (fun i td ->
                 match td with
                 | T_static (v, sub) ->
                     [ (Printf.sprintf "s$%d" i, (2 * v) + sub) ]
                 | T_dyn _ -> [])
               tdims)
        in
        let np = List.length params in
        let polys =
          List.map
            (fun p ->
              let nfull = List.length full_cols in
              let q = ref (Poly.universe (np + nfull)) in
              let remap row =
                let row' = Array.make (np + nfull + 1) 0 in
                row'.(0) <- row.(0);
                for i = 0 to np - 1 do
                  row'.(i + 1) <- row.(i + 1)
                done;
                List.iteri
                  (fun fi col ->
                    match col_index set_cols col with
                    | Some si -> row'.(np + fi + 1) <- row.(np + si + 1)
                    | None -> ())
                  full_cols;
                row'
              in
              List.iter (fun r -> q := Poly.add_eq !q (remap r)) p.Poly.eqs;
              List.iter (fun r -> q := Poly.add_ineq !q (remap r)) p.Poly.ineqs;
              List.iteri
                (fun fi col ->
                  match List.assoc_opt col fixes with
                  | Some v -> q := Poly.fix_var !q (np + fi) v
                  | None -> ())
                full_cols;
              !q)
            d.set.Iset.polys
        in
        let sched_set =
          Iset.of_polys (Space.set_space ~params full_cols) polys
        in
        let dim_names =
          Array.of_list
            (List.map
               (function T_dyn dd -> dd.d_name | T_static _ -> "_s")
               tdims)
        in
        let tags =
          Array.of_list
            (List.map
               (function T_dyn dd -> dd.d_tag | T_static _ -> L.Seq)
               tdims)
        in
        let col_pos = List.mapi (fun i col -> (col, i)) full_cols in
        let emit env =
          let col_env name =
            Option.map env (List.assoc_opt name col_pos)
          in
          let iter_map =
            match c.kind with
            | Op_barrier | Op_copy _ -> []
            | _ -> (
                try
                  Schedule.backward_exprs ~params:c.fn.params c.domain c.sched
                with Failure m -> failwith (c.comp_name ^ ": " ^ m))
          in
          let translate e = translate_expr ~fn ~params ~iter_map ~col_env e in
          let aff a = aff_to_expr ~params ~iter_map ~col_env a in
          match c.kind with
          | Regular ->
              let acc = Option.get c.access in
              L.Store
                ( acc.acc_buf.buf_name,
                  List.map aff acc.acc_idx,
                  translate (expand fn c.expr) )
          | Op_copy ci ->
              L.Memcpy
                { dst = ci.c_dst.buf_name; src = ci.c_src.buf_name;
                  direction = ci.c_direction }
          | Op_send si ->
              L.Send
                { dst = aff si.s_dest; buf = si.s_buf.buf_name;
                  offset = List.map aff si.s_offset; count = aff si.s_count;
                  props = { L.async = si.s_async } }
          | Op_recv ri ->
              L.Recv
                { src = aff ri.r_src; buf = ri.r_buf.buf_name;
                  offset = List.map aff ri.r_offset; count = aff ri.r_count;
                  props = { L.async = not ri.r_sync } }
          | Op_barrier -> L.Barrier
          | Input -> assert false
        in
        { AG.name = c.comp_name; sched = sched_set; dim_names; tags; emit })
      descs
  in
  AG.generate ~context ~params sources

(* allocate_at post-pass, exposed as its own pipeline stage. *)
let scope_allocs fn ast = wrap_allocs fn ast

let lower fn =
  let ast = generate_ast fn in
  let ast = Tiramisu_codegen.Passes.legalize ast in
  let ast = scope_allocs fn ast in
  { ast; fn }

let buffer_extents fn ~params =
  let eval a =
    Aff.eval a (fun n ->
        match List.assoc_opt n params with
        | Some v -> v
        | None -> failwith ("buffer_extents: unbound parameter " ^ n))
  in
  List.map (fun b -> (b, Array.of_list (List.map eval b.buf_dims))) fn.buffers

let pseudocode fn = L.to_string (lower fn).ast
