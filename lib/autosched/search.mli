(** Measurement-driven autoscheduler: beam search over schedule pipelines.

    Candidates are enumerated from {!Sched_space} (plus composite expert
    templates in the first round), pruned by the dependence legality
    oracle, ranked by the tape-aware analytical cost model as a prior, and
    the top of the beam is measured for real through {!Pipeline.build} —
    the structural-hash compile cache deduplicates candidates that lower
    to the same statement, and an early-cutoff incumbent keeps bad
    candidates cheap.  The winner is replayed bit-exactly against the
    interpreter before it is reported. *)

type problem = {
  name : string;
  build : unit -> Tiramisu_core.Ir.fn;  (** fresh, unscheduled pipeline *)
  params : (string * int) list;
  inputs : (string * (int array -> float)) list;
  outputs : string list;  (** buffer names to verify bit-exactly *)
}

type config = {
  beam_width : int;
  measure_top : int;
  rounds : int;
  reps : int;
  budget_ms : float;  (** whole-search wall-clock budget (anytime) *)
  cutoff_ratio : float;
  max_frontier : int;  (** vetting cap per round; overflow is counted *)
  menu : Sched_space.menu;
  templates : bool;
  target : Tiramisu_backends.Target.t;
      (** execution target measured (default: sequential CPU); GPU-sim
          and distributed candidates share the compile cache without
          aliasing CPU artifacts *)
  try_notape : bool;  (** also challenge the incumbent with the tape off *)
  try_lanes : bool;
      (** also challenge the incumbent at every [menu.lane_widths] tape
          lane width (the vector tape's payoff is shape-dependent) *)
  timeout_s : int;
      (** per-candidate alarm on vetting and measuring (Omega-test
          blowup guard, as in the fuzz campaign); timed-out candidates
          count as errored *)
  verbose : bool;  (** progress on stderr *)
}

val default_config : config

type trajectory_point = { tp_candidates : int; tp_best_ms : float }

type result = {
  r_best : Sched_space.action list;
  r_best_ms : float;
  r_best_tape : bool;
  r_best_lanes : int;
      (** tape lane width of the winner: the default, or the
          [menu.lane_widths] probe that beat it *)
  r_default_ms : float;  (** the measured empty schedule (the incumbent's
                             floor: searched <= default by construction) *)
  r_enumerated : int;
  r_vetted : int;
  r_illegal : int;
  r_errored : int;
  r_measured : int;
  r_cutoffs : int;
  r_dropped : int;
  r_cache_hits : int;
  r_cache_misses : int;
  r_trajectory : trajectory_point list;  (** oldest first *)
  r_verified : bool;  (** winner matched the interpreter bitwise *)
  r_elapsed_ms : float;
}

val run : ?config:config -> problem -> result

val literal : Sched_space.action list -> string
(** The winning schedule as a replayable OCaml action-list literal. *)

val pp_result : Format.formatter -> result -> unit
