(* The schedule-space vocabulary shared by the random fuzzer (lib/fuzz) and
   the measurement-driven beam search (search.ml): one first-class action
   type covering the Table II commands the repo exercises, an applier that
   replays an action onto a freshly-built [Ir.fn], a literal printer for
   replayable OCaml, and the tracked-dim-name machinery that mirrors how
   split/tile/vectorize derive and retire dynamic-dim names.

   Both clients build candidate pipelines the same way: draw (or enumerate)
   actions against the tracked names, rebuild the program from scratch with
   the candidate appended, and keep it only if the dependence oracle
   (Deps.legal_under_schedule) and lowering accept it.  Factoring the
   vocabulary here means the fuzzer's corpus literals and the search's
   winning schedules are the same artifact. *)

open Tiramisu_core
open Tiramisu
module R = Random.State

type action =
  | Split of string * string * int
      (** comp, dyn name v, factor — derived names [v0], [v1] *)
  | Tile of string * string * string * int * int
      (** comp, i, j (adjacent), factors — derived [i0 j0 i1 j1] *)
  | Interchange of string * string * string
  | Shift of string * string * int
  | Skew of string * string * string * int
  | Reverse of string * string
  | Parallelize of string * string
  | Vectorize of string * string * int  (** derived inner name [v_v] *)
  | Unroll of string * string * int  (** derived inner name [v_u] *)
  | Fuse of string * string * string
      (** [after c b lvl], lvl = "root" or a loop of b *)
  | Compute_at of string * string * string
      (** [compute_at producer consumer lvl] — the stencil-locality move
          (Fig. 2 of the paper); search-only, never drawn randomly because
          the fuzz corpus predates it. *)

let apply fn = function
  | Split (c, v, f) -> split (find_comp fn c) v f (v ^ "0") (v ^ "1")
  | Tile (c, i, j, t1, t2) ->
      tile (find_comp fn c) i j t1 t2 (i ^ "0") (j ^ "0") (i ^ "1") (j ^ "1")
  | Interchange (c, i, j) -> interchange (find_comp fn c) i j
  | Shift (c, i, s) -> shift (find_comp fn c) i s
  | Skew (c, i, j, f) -> skew (find_comp fn c) i j f
  | Reverse (c, i) -> reverse (find_comp fn c) i
  | Parallelize (c, i) -> parallelize (find_comp fn c) i
  | Vectorize (c, i, w) -> vectorize (find_comp fn c) i w
  | Unroll (c, i, f) -> unroll (find_comp fn c) i f
  | Fuse (c, b, lvl) -> after (find_comp fn c) (find_comp fn b) lvl
  | Compute_at (c, b, lvl) -> compute_at (find_comp fn c) (find_comp fn b) lvl

let to_literal = function
  | Split (c, v, f) -> Printf.sprintf "Split (%S, %S, %d)" c v f
  | Tile (c, i, j, a, b) -> Printf.sprintf "Tile (%S, %S, %S, %d, %d)" c i j a b
  | Interchange (c, i, j) -> Printf.sprintf "Interchange (%S, %S, %S)" c i j
  | Shift (c, i, s) -> Printf.sprintf "Shift (%S, %S, %d)" c i s
  | Skew (c, i, j, f) -> Printf.sprintf "Skew (%S, %S, %S, %d)" c i j f
  | Reverse (c, i) -> Printf.sprintf "Reverse (%S, %S)" c i
  | Parallelize (c, i) -> Printf.sprintf "Parallelize (%S, %S)" c i
  | Vectorize (c, i, w) -> Printf.sprintf "Vectorize (%S, %S, %d)" c i w
  | Unroll (c, i, f) -> Printf.sprintf "Unroll (%S, %S, %d)" c i f
  | Fuse (c, b, l) -> Printf.sprintf "Fuse (%S, %S, %S)" c b l
  | Compute_at (c, b, l) -> Printf.sprintf "Compute_at (%S, %S, %S)" c b l

(* ---------- tracked dynamic-dim names ---------- *)

type entry = string * string list ref
(** computation name, current dynamic-dim names (outer to inner) *)

let replace1 l v repl =
  List.concat_map (fun s -> if s = v then repl else [ s ]) l

let replace_pair l i j repl =
  let rec go = function
    | a :: b :: tl when a = i && b = j -> repl @ tl
    | a :: tl -> a :: go tl
    | [] -> []
  in
  go l

let swap l a b =
  List.map (fun s -> if s = a then b else if s = b then a else s) l

let copy_entries entries = List.map (fun (c, r) -> (c, ref !r)) entries

(* Replay the name derivation an action performs, so an action sequence can
   be re-tracked deterministically (the search replays prefixes this way;
   the fuzzer uses per-candidate commit thunks with identical effect). *)
let commit entries act =
  let upd c f =
    match List.assoc_opt c entries with Some r -> r := f !r | None -> ()
  in
  match act with
  | Split (c, v, _) -> upd c (fun l -> replace1 l v [ v ^ "0"; v ^ "1" ])
  | Tile (c, i, j, _, _) ->
      upd c (fun l -> replace_pair l i j [ i ^ "0"; j ^ "0"; i ^ "1"; j ^ "1" ])
  | Interchange (c, a, b) -> upd c (fun l -> swap l a b)
  | Vectorize (c, v, _) -> upd c (fun l -> replace1 l v [ v; v ^ "_v" ])
  | Unroll (c, v, _) -> upd c (fun l -> replace1 l v [ v; v ^ "_u" ])
  | Shift _ | Skew _ | Reverse _ | Parallelize _ | Fuse _ | Compute_at _ -> ()

(* ---------- random candidates (the fuzzer's draw) ---------- *)

let pick rng arr = arr.(R.int rng (Array.length arr))
let pick_list rng l = List.nth l (R.int rng (List.length l))
let factor_pool = [| 2; 2; 3; 4 |]

(* One candidate action, or None when the drawn shape does not apply.
   Returns the action plus a commit thunk updating the tracked names.

   Split/Tile only apply to names of length <= 2 (the base dims plus one
   derivation level): each stacked split or tile adds another div/mod pair
   to every access relation, and the Omega-test elimination in the
   legality check grows exponentially in those — a third level can eat
   gigabytes before deciding.  The vet timeout backstops whatever the
   bound still lets through.

   The draw sequence against [rng] is load-bearing: the pinned fuzz corpus
   seeds (test/test_fuzz.ml) replay through this exact R.int stream. *)
let random_candidate rng (entries : entry list) =
  let cname, nref = pick_list rng entries in
  let names = !nref in
  let nn = List.length names in
  if nn = 0 then None
  else
    let nm i = List.nth names i in
    let rand_name () = nm (R.int rng nn) in
    match R.int rng 11 with
    | 0 | 1 ->
        let v = rand_name () in
        if
          String.length v > 2
          || List.mem (v ^ "0") names
          || List.mem (v ^ "1") names
        then None
        else
          Some
            ( Split (cname, v, pick rng factor_pool),
              fun () -> nref := replace1 !nref v [ v ^ "0"; v ^ "1" ] )
    | 2 ->
        if nn < 2 then None
        else
          let p = R.int rng (nn - 1) in
          let i = nm p and j = nm (p + 1) in
          let derived = [ i ^ "0"; j ^ "0"; i ^ "1"; j ^ "1" ] in
          if
            String.length i > 2 || String.length j > 2
            || List.exists (fun s -> List.mem s names) derived
          then None
          else
            Some
              ( Tile (cname, i, j, pick rng factor_pool, pick rng factor_pool),
                fun () -> nref := replace_pair !nref i j derived )
    | 3 ->
        if nn < 2 then None
        else
          let a = rand_name () and b = rand_name () in
          if a = b then None
          else Some (Interchange (cname, a, b), fun () -> nref := swap !nref a b)
    | 4 -> Some (Shift (cname, rand_name (), R.int rng 7 - 3), fun () -> ())
    | 5 ->
        if nn < 2 then None
        else
          let a = rand_name () and b = rand_name () in
          if a = b then None
          else Some (Skew (cname, a, b, 1 + R.int rng 2), fun () -> ())
    | 6 -> Some (Reverse (cname, rand_name ()), fun () -> ())
    | 7 ->
        let v = rand_name () in
        if v.[0] = 'r' then None
        else Some (Parallelize (cname, v), fun () -> ())
    | 8 ->
        let v = nm (nn - 1) in
        if v.[0] = 'r' || List.mem (v ^ "_v") names then None
        else
          Some
            ( Vectorize (cname, v, pick rng [| 2; 4; 8 |]),
              fun () -> nref := replace1 !nref v [ v; v ^ "_v" ] )
    | 9 ->
        let v = nm (nn - 1) in
        if List.mem (v ^ "_u") names then None
        else
          Some
            ( Unroll (cname, v, pick rng [| 2; 3; 4 |]),
              fun () -> nref := replace1 !nref v [ v; v ^ "_u" ] )
    | _ ->
        if List.length entries < 2 then None
        else
          let c, _ = pick_list rng entries in
          let b, bref = pick_list rng entries in
          if c = b then None
          else
            let lvl =
              if R.int rng 3 = 0 && !bref <> [] then pick_list rng !bref
              else "root"
            in
            Some (Fuse (c, b, lvl), fun () -> ())

(* ---------- exhaustive enumeration (the search's frontier) ---------- *)

type menu = {
  tile_sizes : int list;  (** square tile edge — power-of-two menu *)
  split_factors : int list;
  vec_widths : int list;
  unroll_factors : int list;
  lane_widths : int list;
      (* tape lane widths the search probes the incumbent with — a
         backend knob, not a schedule action, so [enumerate] never
         consumes it *)
}

let default_menu =
  {
    tile_sizes = [ 8; 16; 32; 64 ];
    split_factors = [ 4; 8; 16 ];
    vec_widths = [ 4; 8 ];
    unroll_factors = [ 2; 4 ];
    lane_widths = [ 1; 4; 16 ];
  }

(* All single actions applicable to the tracked state, in a deterministic
   order.  Same structural guards as [random_candidate]; tags are bounded
   to the shapes the cost model can reward (parallelize outer, vectorize /
   unroll innermost), and compute_at/fuse enumerate producer->consumer
   pairs at the consumer's outer levels only. *)
let enumerate ?(menu = default_menu) (entries : entry list) : action list =
  let acc = ref [] in
  let push a = acc := a :: !acc in
  List.iter
    (fun (cname, nref) ->
      let names = !nref in
      let nn = List.length names in
      if nn > 0 then begin
        (* splits *)
        List.iter
          (fun v ->
            if
              String.length v <= 2
              && (not (List.mem (v ^ "0") names))
              && not (List.mem (v ^ "1") names)
            then
              List.iter (fun f -> push (Split (cname, v, f))) menu.split_factors)
          names;
        (* square tiles of adjacent pairs *)
        for p = 0 to nn - 2 do
          let i = List.nth names p and j = List.nth names (p + 1) in
          let derived = [ i ^ "0"; j ^ "0"; i ^ "1"; j ^ "1" ] in
          if
            String.length i <= 2 && String.length j <= 2
            && not (List.exists (fun s -> List.mem s names) derived)
          then List.iter (fun t -> push (Tile (cname, i, j, t, t))) menu.tile_sizes
        done;
        (* adjacent interchanges *)
        for p = 0 to nn - 2 do
          push (Interchange (cname, List.nth names p, List.nth names (p + 1)))
        done;
        (* parallelize the outermost non-reduction dim *)
        (match names with
        | v :: _ when v.[0] <> 'r' -> push (Parallelize (cname, v))
        | _ -> ());
        (* vectorize / unroll the innermost dim *)
        let v = List.nth names (nn - 1) in
        if v.[0] <> 'r' && not (List.mem (v ^ "_v") names) then
          List.iter (fun w -> push (Vectorize (cname, v, w))) menu.vec_widths;
        if not (List.mem (v ^ "_u") names) then
          List.iter (fun f -> push (Unroll (cname, v, f))) menu.unroll_factors
      end)
    entries;
  (* cross-computation moves: fuse at root, compute_at the consumer's outer
     levels (producer earlier in declaration order reads naturally; both
     directions are proposed — the oracle prunes the illegal one) *)
  List.iter
    (fun (c, _) ->
      List.iter
        (fun (b, bref) ->
          if c <> b then begin
            push (Fuse (c, b, "root"));
            List.iteri
              (fun k lvl -> if k < 2 then push (Compute_at (c, b, lvl)))
              !bref
          end)
        entries)
    entries;
  List.rev !acc
