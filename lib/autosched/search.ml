(* Measurement-driven autoscheduling: beam search over schedule pipelines
   with the legality oracle as the pruner, the (tape-aware) cost model as
   the prior, and measured wall-clock through the compile cache as the
   objective — the Mullapudi-2016 / Adams-2019 recipe over this repo's
   own verification and caching machinery.

   One search round expands every beam state with (a) single actions
   enumerated against the tracked dynamic-dim names (Sched_space.enumerate)
   and (b), in the first round, composite expert templates — register
   blocking for init/upd reduction pairs, tile + compute_at + vectorize for
   producer/consumer pairs — instantiated over the power-of-two menu.  Each
   candidate is rebuilt from scratch, pruned by Deps.legal_under_schedule,
   lowered and prepared, and ranked by Cost.estimate ~tape:true; the top of
   the beam is then measured for real through Pipeline.build, where the
   structural-hash compile cache deduplicates candidates that lower to the
   same statement.  Measurement keeps a best-so-far incumbent and abandons
   a candidate as soon as a rep exceeds the incumbent by the cutoff ratio.
   The whole search is anytime: the wall-clock budget is checked between
   candidates and the incumbent is always a legal, measured schedule.

   The winner is replayed bit-exactly against the interpreter on every
   output buffer before being reported (exec vs interp on the same
   scheduled IR is bitwise identical; a mismatch marks the result
   unverified and the caller should not trust it). *)

open Tiramisu_core
module B = Tiramisu_backends
module P = Tiramisu_pipeline.Pipeline
module D = Tiramisu_deps.Deps
module Lower = Tiramisu_core.Lower
module S = Sched_space

type problem = {
  name : string;
  build : unit -> Ir.fn;  (** fresh, unscheduled pipeline *)
  params : (string * int) list;
  inputs : (string * (int array -> float)) list;
  outputs : string list;  (** buffer names to verify bit-exactly *)
}

type config = {
  beam_width : int;  (** states kept per round *)
  measure_top : int;  (** states measured per round *)
  rounds : int;
  reps : int;  (** timing reps per measured candidate *)
  budget_ms : float;  (** whole-search wall-clock budget *)
  cutoff_ratio : float;
      (** abandon a candidate once a rep exceeds incumbent * ratio *)
  max_frontier : int;  (** candidates vetted per round (cost-ordered) *)
  menu : S.menu;
  templates : bool;  (** seed round 1 with composite expert templates *)
  target : B.Target.t;
      (** execution target measured; the default is the sequential CPU —
          deterministic, and matching the exec-bench headline medians.
          GPU-sim and distributed candidates measure through the same
          compile cache (their artifacts never alias the CPU ones: the
          target is part of the cache key). *)
  try_notape : bool;  (** also measure the incumbent with the tape off *)
  try_lanes : bool;
      (** also measure the incumbent at every [menu.lane_widths] width —
          the vector tape's payoff is shape-dependent (lane-safe stores,
          epilogue cost), so the knob is searched, not assumed *)
  timeout_s : int;
      (** per-candidate alarm on vetting and measuring: deeply stacked
          schedules can blow up the Omega-test elimination (exponential
          constraint growth), and the wall-clock budget is only checked
          between candidates — the same guard the fuzz campaign uses *)
  verbose : bool;
}

let default_config =
  {
    beam_width = 4;
    measure_top = 4;
    rounds = 3;
    reps = 5;
    budget_ms = 120_000.0;
    cutoff_ratio = 1.5;
    max_frontier = 200;
    menu = S.default_menu;
    templates = true;
    target = B.Target.cpu ~parallel:`Seq ();
    try_notape = true;
    try_lanes = true;
    timeout_s = 5;
    verbose = false;
  }

type trajectory_point = { tp_candidates : int; tp_best_ms : float }

type result = {
  r_best : S.action list;
  r_best_ms : float;
  r_best_tape : bool;
  r_best_lanes : int;  (** tape lane width of the winner (the default, or
                           a [menu.lane_widths] probe that beat it) *)
  r_default_ms : float;
  r_enumerated : int;
  r_vetted : int;  (** survived the oracle and lowering *)
  r_illegal : int;  (** rejected by the legality oracle *)
  r_errored : int;  (** apply/lower raised *)
  r_measured : int;
  r_cutoffs : int;  (** measurements abandoned early *)
  r_dropped : int;  (** frontier candidates dropped by max_frontier *)
  r_cache_hits : int;
  r_cache_misses : int;
  r_trajectory : trajectory_point list;  (** oldest first *)
  r_verified : bool;
  r_elapsed_ms : float;
}

let literal actions =
  "[ " ^ String.concat ";\n  " (List.map S.to_literal actions) ^ " ]"

(* ---------- building and vetting candidates ---------- *)

let scheduled problem actions =
  let fn = problem.build () in
  List.iter (S.apply fn) actions;
  fn

let initial_entries problem : S.entry list =
  let fn = problem.build () in
  List.filter_map
    (fun (c : Ir.computation) ->
      if c.Ir.kind = Ir.Regular && not c.Ir.inlined then
        Some
          ( c.Ir.comp_name,
            ref (List.map (fun d -> d.Ir.d_name) (Ir.dyn_dims c.Ir.sched)) )
      else None)
    fn.Ir.comps

let replay_entries base actions =
  let entries = S.copy_entries base in
  List.iter (S.commit entries) actions;
  entries

(* Oracle + lowering + preparation; `Ok carries the prepared statement the
   cost prior scores (narrowed bounds let the tape-claim check in the model
   see the concrete rectangles the backend will see). *)
let vet problem actions =
  match scheduled problem actions with
  | exception e -> `Err (Printexc.to_string e)
  | fn -> (
      match D.legal_under_schedule fn with
      | Error e -> `Illegal e
      | Ok () -> (
          match
            let lowered = P.lower fn in
            P.prepare ~params:problem.params lowered.Lower.ast
          with
          | exception e -> `Err (Printexc.to_string e)
          | stmt -> `Ok (fn, stmt)))

let prior problem fn stmt =
  (B.Cost.estimate ~tape:true ~params:problem.params
     ~buffers:(P.extents_of_fn fn ~params:problem.params)
     stmt)
    .B.Cost.time_ns

(* ---------- composite expert templates ---------- *)

(* Register blocking for a reduction pair base_init/base_upd (the
   sgemm_tuned shape, §VI-A): tile the two free dims, split the reduction,
   hoist the reduction block above the intra-tile loops, vectorize the
   innermost free dim and unroll the reduction remainder. *)
let blocking_templates menu (entries : S.entry list) =
  List.concat_map
    (fun (uname, uref) ->
      match Filename.chop_suffix_opt ~suffix:"_upd" uname with
      | None -> []
      | Some base -> (
          let iname = base ^ "_init" in
          match (List.assoc_opt iname entries, !uref) with
          | Some iref, [ i; j; k ] when List.length !iref >= 2 ->
              let i' = List.nth !iref 0 and j' = List.nth !iref 1 in
              List.concat_map
                (fun b ->
                  List.concat_map
                    (fun bk ->
                      List.concat_map
                        (fun vec ->
                          List.map
                            (fun unr ->
                              [
                                S.Tile (uname, i, j, b, b);
                                S.Split (uname, k, bk);
                                S.Interchange (uname, i ^ "1", k ^ "0");
                                S.Interchange (uname, j ^ "1", i ^ "1");
                                S.Vectorize (uname, j ^ "1", vec);
                                S.Unroll (uname, k ^ "1", unr);
                                S.Parallelize (uname, i ^ "0");
                                S.Tile (iname, i', j', b, b);
                                S.Parallelize (iname, i' ^ "0");
                                S.Vectorize (iname, j' ^ "1", vec);
                              ])
                            menu.S.unroll_factors)
                        menu.S.vec_widths)
                    menu.S.split_factors)
                menu.S.tile_sizes
          | _ -> []))
    entries

(* Stencil fusion (the cpu_blur shape): tile a consumer, parallelize the
   outer tile loop, compute the producer at the tile, vectorize the
   intra-tile column loop.  Proposed for every ordered pair — the oracle
   and the apply step prune pairs that are not producer/consumer. *)
let stencil_templates menu (entries : S.entry list) =
  List.concat_map
    (fun (prod, _) ->
      List.concat_map
        (fun (cons, cref) ->
          if prod = cons || List.length !cref < 2 then []
          else
            let i = List.nth !cref 0 and j = List.nth !cref 1 in
            List.concat_map
              (fun t ->
                List.map
                  (fun vec ->
                    [
                      S.Tile (cons, i, j, t, t);
                      S.Parallelize (cons, i ^ "0");
                      S.Compute_at (prod, cons, j ^ "0");
                      S.Vectorize (cons, j ^ "1", vec);
                    ])
                  menu.S.vec_widths)
              menu.S.tile_sizes)
        entries)
    entries

(* Pluto-with-vectorization: tile + outer parallel + vectorize, per
   computation (what the beam would assemble in three rounds, offered in
   one). *)
let tile_par_vec_templates menu (entries : S.entry list) =
  List.concat_map
    (fun (c, nref) ->
      if List.length !nref < 2 then []
      else
        let i = List.nth !nref 0 and j = List.nth !nref 1 in
        List.concat_map
          (fun t ->
            List.map
              (fun vec ->
                [
                  S.Tile (c, i, j, t, t);
                  S.Parallelize (c, i ^ "0");
                  S.Vectorize (c, j ^ "1", vec);
                ])
              menu.S.vec_widths)
          menu.S.tile_sizes)
    entries

let templates menu entries =
  blocking_templates menu entries
  @ stencil_templates menu entries
  @ tile_par_vec_templates menu entries

(* ---------- measurement ---------- *)

let knobs_of cfg ~tape ~lanes =
  { P.default_knobs with P.target = cfg.target; P.tape = tape;
    P.lanes = lanes }

(* Median wall-clock of [reps] runs with early cutoff against the
   incumbent: once the best rep so far cannot beat [cutoff], stop — the
   candidate has lost, and its partial minimum is score enough. *)
let measure cfg problem ~tape ~lanes ~cutoff actions =
  let fn = scheduled problem actions in
  let art =
    P.build ~knobs:(knobs_of cfg ~tape ~lanes) ~fn ~params:problem.params
      ~inputs:problem.inputs ()
  in
  let c = art.P.exec in
  B.Exec.run c (* warmup; surfaces bounds failures before timing *);
  let samples = ref [] in
  let best = ref infinity in
  let cut = ref false in
  (try
     for _ = 1 to cfg.reps do
       let t0 = B.Clock.now_ms () in
       B.Exec.run c;
       let ms = B.Clock.now_ms () -. t0 in
       samples := ms :: !samples;
       best := Float.min !best ms;
       if !best > cutoff then begin
         cut := true;
         raise Exit
       end
     done
   with Exit -> ());
  let sorted = List.sort compare !samples in
  let n = List.length sorted in
  let median =
    if n = 0 then infinity
    else if n mod 2 = 1 then List.nth sorted (n / 2)
    else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0
  in
  (median, !cut)

(* Bit-exact replay of the winner against the interpreter: rebuild through
   the cache (restoring buffers to their freshly-filled snapshot), run the
   executor once, and compare every output buffer with an interpreter run
   of the same scheduled IR. *)
let verify cfg problem ~tape ~lanes actions =
  match
    let fn = scheduled problem actions in
    let art =
      P.build ~knobs:(knobs_of cfg ~tape ~lanes) ~fn ~params:problem.params
        ~inputs:problem.inputs ()
    in
    B.Exec.run art.P.exec;
    let fn2 = scheduled problem actions in
    let lowered = P.lower fn2 in
    let extents = P.extents_of_fn fn2 ~params:problem.params in
    let interp = B.Interp.create ~params:problem.params () in
    List.iter
      (fun (name, dims, mem) ->
        B.Interp.add_buffer interp (B.Buffers.create ~mem name dims))
      extents;
    List.iter
      (fun (name, fill) ->
        B.Buffers.fill (B.Interp.buffer interp name) fill)
      problem.inputs;
    B.Interp.run interp lowered.Lower.ast;
    List.for_all
      (fun out ->
        let ib = B.Interp.buffer interp out in
        match
          List.find_opt (fun b -> b.B.Buffers.name = out) art.P.buffers
        with
        | None -> false
        | Some eb ->
            Array.length ib.B.Buffers.data = Array.length eb.B.Buffers.data
            && (let ok = ref true in
                Array.iteri
                  (fun k v ->
                    if
                      Int64.bits_of_float v
                      <> Int64.bits_of_float eb.B.Buffers.data.(k)
                    then ok := false)
                  ib.B.Buffers.data;
                !ok))
      problem.outputs
  with
  | ok -> ok
  | exception _ -> false

(* ---------- the search ---------- *)

type scored = { sc_actions : S.action list; sc_prior : float }

let run ?(config = default_config) (problem : problem) : result =
  let cfg = config in
  let t_start = B.Clock.now_ms () in
  let elapsed () = B.Clock.now_ms () -. t_start in
  let over_budget () = elapsed () > cfg.budget_ms in
  let stats0 = P.cache_stats () in
  let base_entries = initial_entries problem in
  let enumerated = ref 0
  and vetted = ref 0
  and illegal = ref 0
  and errored = ref 0
  and measured = ref 0
  and cutoffs = ref 0
  and dropped = ref 0 in
  let seen = Hashtbl.create 256 in
  let trajectory = ref [] in
  let say fmt =
    Printf.ksprintf (fun s -> if cfg.verbose then prerr_endline s) fmt
  in
  let limited f =
    Tiramisu_support.Limits.with_time_limit cfg.timeout_s f
  in
  (* Incumbent: the default (empty) schedule, measured first — so "searched
     >= default" holds by construction and the trajectory starts anchored.
     The default gets a generous multiple of the per-candidate limit: if
     even it cannot compile and run, the search has no incumbent and no
     legal answer, so failing loudly beats searching blind. *)
  let default_ms, _ =
    match
      Tiramisu_support.Limits.with_time_limit (8 * cfg.timeout_s) (fun () ->
          measure cfg problem ~tape:true ~lanes:P.default_knobs.P.lanes
            ~cutoff:infinity [])
    with
    | Some r -> r
    | None ->
        failwith
          (problem.name
         ^ ": default schedule did not compile and measure within the limit")
  in
  incr measured;
  Hashtbl.replace seen (literal []) ();
  let best = ref [] and best_ms = ref default_ms and best_tape = ref true in
  let best_lanes = ref P.default_knobs.P.lanes in
  trajectory := { tp_candidates = !measured; tp_best_ms = !best_ms } :: [];
  say "autosched %s: default %.3f ms" problem.name default_ms;
  let consider ~tape ?(lanes = P.default_knobs.P.lanes) actions =
    if not (over_budget ()) then begin
      let cutoff = cfg.cutoff_ratio *. !best_ms in
      match
        limited (fun () -> measure cfg problem ~tape ~lanes ~cutoff actions)
      with
      | exception _ -> ()
      | None -> ()
      | Some (ms, cut) ->
          incr measured;
          if cut then incr cutoffs;
          if ms < !best_ms then begin
            best := actions;
            best_ms := ms;
            best_tape := tape;
            best_lanes := lanes;
            say "autosched %s: new best %.3f ms (%d actions, tape=%b, \
                 lanes=%d)"
              problem.name ms (List.length actions) tape lanes
          end;
          trajectory :=
            { tp_candidates = !measured; tp_best_ms = !best_ms } :: !trajectory
    end
  in
  let beam = ref [ { sc_actions = []; sc_prior = infinity } ] in
  (try
     for round = 1 to cfg.rounds do
       if over_budget () then raise Exit;
       (* frontier: template pipelines (first round) + one-action
          expansions of every beam state *)
       let frontier =
         (if cfg.templates && round = 1 then
            List.map (fun t -> t) (templates cfg.menu base_entries)
          else [])
         @ List.concat_map
             (fun st ->
               let entries = replay_entries base_entries st.sc_actions in
               List.map
                 (fun a -> st.sc_actions @ [ a ])
                 (S.enumerate ~menu:cfg.menu entries))
             !beam
       in
       let frontier =
         List.filter
           (fun acts ->
             let key = literal acts in
             if Hashtbl.mem seen key then false
             else begin
               Hashtbl.replace seen key ();
               true
             end)
           frontier
       in
       enumerated := !enumerated + List.length frontier;
       let frontier =
         if List.length frontier <= cfg.max_frontier then frontier
         else begin
           dropped := !dropped + List.length frontier - cfg.max_frontier;
           List.filteri (fun k _ -> k < cfg.max_frontier) frontier
         end
       in
       say "autosched %s: round %d, %d candidates" problem.name round
         (List.length frontier);
       (* oracle-prune, lower, cost-rank *)
       let survivors =
         List.filter_map
           (fun acts ->
             if over_budget () then None
             else
               match limited (fun () -> vet problem acts) with
               | None (* Omega blowup: the alarm fired mid-vet *)
               | Some (`Err _) ->
                   incr errored;
                   None
               | Some (`Illegal _) ->
                   incr illegal;
                   None
               | Some (`Ok (fn, stmt)) ->
                   incr vetted;
                   Some { sc_actions = acts; sc_prior = prior problem fn stmt })
           frontier
       in
       let ranked =
         List.sort (fun a b -> compare a.sc_prior b.sc_prior) survivors
       in
       let top = List.filteri (fun k _ -> k < cfg.beam_width) ranked in
       if top = [] then raise Exit;
       beam := top;
       (* measure the head of the beam; the compile cache deduplicates
          candidates that lower to an already-compiled statement *)
       List.iteri
         (fun k st ->
           if k < cfg.measure_top then consider ~tape:true st.sc_actions)
         top
     done
   with Exit -> ());
  (* the backend knobs: challenge the incumbent at the menu's other lane
     widths, then with the tape off entirely — same pattern for both, the
     schedule stays the winner's and only the knob moves *)
  if cfg.try_lanes then
    List.iter
      (fun w ->
        if w <> !best_lanes && not (over_budget ()) then
          consider ~tape:true ~lanes:w !best)
      cfg.menu.S.lane_widths;
  if cfg.try_notape && not (over_budget ()) then consider ~tape:false !best;
  (* the verify rebuild goes through the cache too — a hit, since the
     winner was measured moments ago — so snapshot the stats after it *)
  let verified =
    verify cfg problem ~tape:!best_tape ~lanes:!best_lanes !best
  in
  let stats1 = P.cache_stats () in
  {
    r_best = !best;
    r_best_ms = !best_ms;
    r_best_tape = !best_tape;
    r_best_lanes = !best_lanes;
    r_default_ms = default_ms;
    r_enumerated = !enumerated;
    r_vetted = !vetted;
    r_illegal = !illegal;
    r_errored = !errored;
    r_measured = !measured;
    r_cutoffs = !cutoffs;
    r_dropped = !dropped;
    r_cache_hits = stats1.P.hits - stats0.P.hits;
    r_cache_misses = stats1.P.misses - stats0.P.misses;
    r_trajectory = List.rev !trajectory;
    r_verified = verified;
    r_elapsed_ms = elapsed ();
  }

let pp_result ppf (r : result) =
  Format.fprintf ppf
    "best %.3f ms (default %.3f ms, %.2fx) in %.0f ms@\n\
     candidates: %d enumerated, %d vetted, %d illegal, %d errored, %d \
     dropped@\n\
     measured: %d (%d cutoffs), cache %d hits / %d misses@\n\
     verified: %b, tape: %b, lanes: %d@\n\
     schedule:@\n%s@\n"
    r.r_best_ms r.r_default_ms
    (r.r_default_ms /. r.r_best_ms)
    r.r_elapsed_ms r.r_enumerated r.r_vetted r.r_illegal r.r_errored
    r.r_dropped r.r_measured r.r_cutoffs r.r_cache_hits r.r_cache_misses
    r.r_verified r.r_best_tape r.r_best_lanes (literal r.r_best)
