(** The schedule-space vocabulary shared by the random fuzzer and the
    measurement-driven beam search: first-class schedule actions, an
    applier, a replayable-OCaml printer, tracked dynamic-dim names, and
    both a random draw (fuzz) and a deterministic enumerator (search). *)

type action =
  | Split of string * string * int
      (** comp, dyn name v, factor — derived names [v0], [v1] *)
  | Tile of string * string * string * int * int
      (** comp, i, j (adjacent), factors — derived [i0 j0 i1 j1] *)
  | Interchange of string * string * string
  | Shift of string * string * int
  | Skew of string * string * string * int
  | Reverse of string * string
  | Parallelize of string * string
  | Vectorize of string * string * int  (** derived inner name [v_v] *)
  | Unroll of string * string * int  (** derived inner name [v_u] *)
  | Fuse of string * string * string
      (** [after c b lvl], lvl = "root" or a loop of b *)
  | Compute_at of string * string * string
      (** [compute_at producer consumer lvl]; search-only *)

val apply : Tiramisu_core.Ir.fn -> action -> unit
(** Replay one action onto a freshly-built function (raises on a malformed
    action, e.g. an unknown computation or dim name). *)

val to_literal : action -> string

type entry = string * string list ref
(** computation name, current dynamic-dim names (outer to inner) *)

val replace1 : string list -> string -> string list -> string list
val replace_pair : string list -> string -> string -> string list -> string list
val swap : string list -> string -> string -> string list

val copy_entries : entry list -> entry list

val commit : entry list -> action -> unit
(** Replay the dim-name derivation of one action on the tracked entries. *)

val pick : Random.State.t -> 'a array -> 'a
val pick_list : Random.State.t -> 'a list -> 'a

val random_candidate :
  Random.State.t -> entry list -> (action * (unit -> unit)) option
(** One random candidate action against the tracked names, with a commit
    thunk; [None] when the drawn shape does not apply.  The [Random.State]
    draw sequence is load-bearing for the pinned fuzz corpus. *)

type menu = {
  tile_sizes : int list;
  split_factors : int list;
  vec_widths : int list;
  unroll_factors : int list;
  lane_widths : int list;
      (** tape lane widths the beam search probes the incumbent with
          (against the default width).  A backend knob rather than a
          schedule action: {!enumerate} never consumes it. *)
}

val default_menu : menu

val enumerate : ?menu:menu -> entry list -> action list
(** All single actions applicable to the tracked state, deterministic
    order, structural guards only (legality is the caller's vet). *)
