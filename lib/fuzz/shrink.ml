(* Greedy shrinking: propose structurally smaller variants of a failing
   case and keep any variant that still fails, to a fixpoint.  Variants
   that no longer build (e.g. a step referencing a dropped computation's
   loops) simply don't fail and are discarded by the predicate, so moves
   don't need to be individually safe — only plausible. *)

let rec prods_of = function
  | Case.Prod p -> [ p ]
  | Case.Bin (_, a, b) -> prods_of a @ prods_of b
  | Case.Const _ | Case.In _ -> []

let rec inputs_of = function
  | Case.In (n, _) -> [ n ]
  | Case.Bin (_, a, b) -> inputs_of a @ inputs_of b
  | Case.Const _ | Case.Prod _ -> []

let step_touches names = function
  | Case.Split (c, _, _)
  | Case.Tile (c, _, _, _, _)
  | Case.Interchange (c, _, _)
  | Case.Shift (c, _, _)
  | Case.Skew (c, _, _, _)
  | Case.Reverse (c, _)
  | Case.Parallelize (c, _)
  | Case.Vectorize (c, _, _)
  | Case.Unroll (c, _, _) ->
      List.mem c names
  | Case.Fuse (c, b, _) | Case.Compute_at (c, b, _) ->
      List.mem c names || List.mem b names

(* Every variant with one schedule step removed. *)
let drop_steps (t : Case.t) =
  List.mapi
    (fun i _ ->
      { t with Case.steps = List.filteri (fun j _ -> j <> i) t.Case.steps })
    t.Case.steps

(* Drop a computation no later computation reads, along with the steps
   that schedule it. *)
let drop_comps (t : Case.t) =
  List.filter_map
    (fun (rc : Case.rcomp) ->
      let name = rc.Case.rc_name in
      let used =
        List.exists
          (fun (rc' : Case.rcomp) ->
            rc'.Case.rc_name <> name
            && List.mem name (prods_of rc'.Case.rc_expr))
          t.Case.comps
      in
      if used || List.length t.Case.comps <= 1 then None
      else
        let dead = [ name; name ^ "_init"; name ^ "_upd" ] in
        Some
          {
            t with
            Case.comps =
              List.filter (fun (c : Case.rcomp) -> c.Case.rc_name <> name) t.Case.comps;
            steps = List.filter (fun s -> not (step_touches dead s)) t.Case.steps;
          })
    t.Case.comps

(* Drop an input no computation reads. *)
let drop_inputs (t : Case.t) =
  List.filter_map
    (fun (name, _) ->
      let used =
        List.exists
          (fun (rc : Case.rcomp) -> List.mem name (inputs_of rc.Case.rc_expr))
          t.Case.comps
      in
      if used then None
      else
        Some
          { t with Case.inputs = List.filter (fun (n, _) -> n <> name) t.Case.inputs })
    t.Case.inputs

(* Replace a computation's expression by a constant or by one child of its
   top-level operator; the shrink fixpoint deepens this one level at a
   time. *)
let simplify_exprs (t : Case.t) =
  List.concat_map
    (fun (rc : Case.rcomp) ->
      let with_expr e =
        {
          t with
          Case.comps =
            List.map
              (fun (c : Case.rcomp) ->
                if c.Case.rc_name = rc.Case.rc_name then { c with Case.rc_expr = e }
                else c)
              t.Case.comps;
        }
      in
      match rc.Case.rc_expr with
      | Case.Bin (_, a, b) -> [ with_expr a; with_expr b; with_expr (Case.Const 1) ]
      | Case.Const 1 -> []
      | _ -> [ with_expr (Case.Const 1) ])
    t.Case.comps

(* Turn a reduction into a plain computation, or shorten it. *)
let shrink_reductions (t : Case.t) =
  List.concat_map
    (fun (rc : Case.rcomp) ->
      match rc.Case.rc_red with
      | None -> []
      | Some k ->
          let with_red r =
            let dead = [ rc.Case.rc_name ^ "_init"; rc.Case.rc_name ^ "_upd" ] in
            {
              t with
              Case.comps =
                List.map
                  (fun (c : Case.rcomp) ->
                    if c.Case.rc_name = rc.Case.rc_name then
                      { c with Case.rc_red = r }
                    else c)
                  t.Case.comps;
              steps =
                (if r = None then
                   List.filter (fun s -> not (step_touches dead s)) t.Case.steps
                 else t.Case.steps);
            }
          in
          (if k > 1 then [ with_red (Some (k - 1)) ] else [])
          @ [ with_red None ])
    t.Case.comps

(* Shrink extents and the parameter value toward boundary values. *)
let shrink_extents (t : Case.t) =
  let smaller n =
    List.sort_uniq compare
      (List.filter (fun v -> v >= 0 && v < n) [ 0; 1; 2; n / 2; n - 1 ])
  in
  let at_pos i e =
    {
      t with
      Case.extents = List.mapi (fun j e0 -> if j = i then e else e0) t.Case.extents;
    }
  in
  List.concat
    (List.mapi
       (fun i e ->
         match e with
         | Case.Lit n -> List.map (fun v -> at_pos i (Case.Lit v)) (smaller n)
         | Case.NParam -> [ at_pos i (Case.Lit t.Case.n_value) ])
       t.Case.extents)
  @
  if List.mem Case.NParam t.Case.extents then
    List.map (fun v -> { t with Case.n_value = v }) (smaller t.Case.n_value)
  else []

let candidates t =
  List.concat
    [
      drop_steps t;
      drop_comps t;
      drop_inputs t;
      shrink_reductions t;
      shrink_extents t;
      simplify_exprs t;
    ]

let shrink still_fails case =
  let rec go case rounds =
    if rounds = 0 then case
    else
      match List.find_opt still_fails (candidates case) with
      | Some c -> go c (rounds - 1)
      | None -> case
  in
  go case 50
