(* Seeded random generation of fuzz cases.

   Programs: 1-3 dims with boundary-heavy extents (0, 1, small, and the
   symbolic parameter N), 1-2 padded inputs, 1-3 computations (some
   reductions) whose expressions are magnitude-tracked so every value stays
   an exact integer-valued float.

   Schedules: candidate steps are drawn against a per-computation record of
   the current dynamic-dim names (mirroring how split/tile/vectorize derive
   and retire names), then *vetted*: the case is rebuilt from scratch with
   the candidate appended, run through the legality oracle
   (Deps.legal_under_schedule) and through lowering.  Only candidates that
   survive are kept, so every emitted case is legal by construction — and
   every oracle rejection is counted, which is how the harness exercises
   the oracle itself.

   Split/Tile only apply to names of length <= 2 (the base dims plus one
   derivation level): each stacked split or tile adds another div/mod pair
   to every access relation, and the Omega-test elimination in the
   legality check grows exponentially in those — a third level can eat
   gigabytes before deciding.  The vet timeout backstops whatever the
   bound still lets through.

   The oracle checks hardware tags too (a dependence carried by a
   parallelized or vectorized loop is rejected — found by this fuzzer,
   sweep seeds 3320/1188), so tag candidates need no special safety
   handling here; the generator still skips parallelizing or vectorizing
   the reduction dim (and its r-prefixed derivatives) purely to avoid
   proposing steps the oracle would refuse anyway.  Unrolling r is fine —
   unrolled drivers preserve sequential order. *)

module R = Random.State

type stats = {
  mutable cases : int;
  mutable steps_accepted : int;
  mutable steps_illegal : int;  (** rejected by the legality oracle *)
  mutable steps_errored : int;  (** apply/lower raised (malformed) *)
}

let mk_stats () =
  { cases = 0; steps_accepted = 0; steps_illegal = 0; steps_errored = 0 }

module S = Tiramisu_autosched.Sched_space

let pick = S.pick
let pick_list = S.pick_list
let extent_pool = [| 0; 1; 2; 3; 3; 4; 5; 8; 17 |]

(* Magnitude cap keeping every intermediate integer exactly representable
   (reductions multiply by at most 4, leaving headroom below 2^53). *)
let mag_cap = 1 lsl 40

(* Returns (expr, magnitude bound).  [nall] counts the consumer dims an
   input access may map to; [prods] lists earlier computations usable as
   producers, already filtered to rank <= consumer free rank. *)
let rec gen_expr rng ~depth ~nall ~inputs ~prods =
  let gen_input () =
    let name, irank = pick_list rng inputs in
    let dims =
      List.init irank (fun _ -> (R.int rng nall, R.int rng 5 - 2))
    in
    (Case.In (name, dims), 8)
  in
  let leaf () =
    match R.int rng 4 with
    | 0 -> (Case.Const (R.int rng 17 - 8), 8)
    | 1 | 2 -> gen_input ()
    | _ ->
        if prods = [] then gen_input ()
        else
          let name, _, mag = pick_list rng prods in
          (Case.Prod name, mag)
  in
  if depth = 0 || R.int rng 3 = 0 then leaf ()
  else
    let a, ma = gen_expr rng ~depth:(depth - 1) ~nall ~inputs ~prods in
    let b, mb = gen_expr rng ~depth:(depth - 1) ~nall ~inputs ~prods in
    let op, m =
      match pick rng [| `Add; `Add; `Sub; `Mul; `Min; `Max |] with
      | `Add -> (Case.Add, ma + mb)
      | `Sub -> (Case.Sub, ma + mb)
      | `Mul -> (Case.Mul, ma * mb)
      | `Min -> (Case.Min, max ma mb)
      | `Max -> (Case.Max, max ma mb)
    in
    if m > mag_cap then (Case.Bin (Case.Min, a, b), max ma mb)
    else (Case.Bin (op, a, b), m)

(* ---------- schedule candidates against tracked dim names ---------- *)

(* The candidate draw lives in Sched_space (shared with the beam search);
   the R.int stream it consumes is unchanged, so pinned sweep seeds and the
   replay corpus are unaffected by the factoring. *)
let candidate : R.t -> S.entry list -> (Case.step * (unit -> unit)) option =
  S.random_candidate

let debug = Sys.getenv_opt "TIRAMISU_FUZZ_DEBUG" <> None

(* Rebuild from scratch and check: schedule applies, the oracle accepts,
   lowering succeeds.  Runs under a wall-clock limit: candidates whose
   legality check blows up are dropped as errored, not allowed to hang. *)
let vet case =
  if debug then prerr_endline ("vet:\n" ^ Case.to_literal case);
  match
    Limits.with_time_limit 5 (fun () ->
        match Case.build case with
        | exception e -> `Err (Printexc.to_string e)
        | b -> (
            match Tiramisu_deps.Deps.legal_under_schedule b.Case.fn with
            | Error e -> `Illegal e
            | Ok () -> (
                match Tiramisu_pipeline.Pipeline.lower b.Case.fn with
                | exception e -> `Err (Printexc.to_string e)
                | _ -> `Ok)))
  with
  | Some r -> r
  | None -> `Err "vet timed out"

(* Schedulable computations with their initial dynamic-dim names. *)
let schedulable (t : Case.t) =
  List.concat_map
    (fun (rc : Case.rcomp) ->
      let free = List.init rc.Case.rc_rank Case.dim_name in
      match rc.Case.rc_red with
      | None -> [ (rc.Case.rc_name, ref free) ]
      | Some _ ->
          [
            (rc.Case.rc_name ^ "_init", ref free);
            (rc.Case.rc_name ^ "_upd", ref (free @ [ "r" ]));
          ])
    t.Case.comps

let gen ?(stats = mk_stats ()) rng : Case.t =
  stats.cases <- stats.cases + 1;
  let ndims = 1 + R.int rng 3 in
  let n_value = pick rng extent_pool in
  let extents =
    List.init ndims (fun _ ->
        if R.int rng 4 = 0 then Case.NParam else Case.Lit (pick rng extent_pool))
  in
  let ninputs = 1 + R.int rng 2 in
  let inputs =
    List.init ninputs (fun k -> ("a" ^ string_of_int k, 1 + R.int rng ndims))
  in
  let ncomps = 1 + R.int rng 3 in
  let comps = ref [] and prods = ref [] in
  for k = 0 to ncomps - 1 do
    let rank = 1 + R.int rng ndims in
    let red =
      if R.int rng 10 < 3 then Some (1 + R.int rng 4) else None
    in
    let nall = rank + if red = None then 0 else 1 in
    let usable = List.filter (fun (_, r, _) -> r <= rank) !prods in
    let name = "c" ^ string_of_int k in
    let expr, mag =
      gen_expr rng ~depth:(1 + R.int rng 2) ~nall ~inputs ~prods:usable
    in
    let mag = match red with None -> mag | Some kx -> kx * mag in
    comps := { Case.rc_name = name; rc_rank = rank; rc_red = red; rc_expr = expr } :: !comps;
    prods := (name, rank, mag) :: !prods
  done;
  let base =
    {
      Case.extents;
      n_value;
      inputs;
      comps = List.rev !comps;
      steps = [];
    }
  in
  let entries = schedulable base in
  let target = R.int rng 5 in
  let case = ref base in
  let attempts = ref 0 in
  while List.length !case.Case.steps < target && !attempts < target * 4 do
    incr attempts;
    match candidate rng entries with
    | None -> ()
    | Some (st, commit) -> (
        let cand = { !case with Case.steps = !case.Case.steps @ [ st ] } in
        match vet cand with
        | `Ok ->
            commit ();
            case := cand;
            stats.steps_accepted <- stats.steps_accepted + 1
        | `Illegal _ -> stats.steps_illegal <- stats.steps_illegal + 1
        | `Err _ -> stats.steps_errored <- stats.steps_errored + 1)
  done;
  !case
