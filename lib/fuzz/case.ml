(* A fuzz case is a *description* of a Tiramisu pipeline plus a schedule —
   not an opaque seed.  Keeping the description first-class is what makes
   shrinking possible (drop a computation, strip a step, shrink an extent
   and re-build) and lets failing cases be replayed from an OCaml literal
   checked into the regression corpus (test/test_fuzz.ml).

   Generated programs are arranged so that bit-exact comparison across
   backends and schedules is sound: inputs are filled with small integers,
   expressions use only Add/Sub/Mul/Min/Max with generator-side magnitude
   tracking, so every intermediate value is an exactly-representable
   integer-valued float.  Any dependence-preserving reorder then computes
   bit-identical results. *)

open Tiramisu_presburger
open Tiramisu_core
open Tiramisu
module E = Expr

type ext = Lit of int | NParam
(** Per-dimension extent: a literal, or the shared symbolic parameter [N]
    (whose runtime value is [n_value]) — the latter exercises the
    [Passes.narrow] symbolic-bound paths. *)

type binop = Add | Sub | Mul | Min | Max

type cexpr =
  | Const of int
  | In of string * (int * int) list
      (** Input access: per input dimension, [(consumer dim index, offset)].
          Consumer dim indices cover the free dims and, for reduction
          computations, the reduction dim (index = rank).  Offsets stay in
          [-pad, pad]; input domains are padded accordingly. *)
  | Prod of string
      (** Identity access to an earlier computation (offset 0 on every dim).
          For a reduction producer this reads the final accumulator
          (the update computation at r = extent - 1). *)
  | Bin of binop * cexpr * cexpr

type rcomp = {
  rc_name : string;
  rc_rank : int;  (** number of free dims (1..3), shared extents *)
  rc_red : int option;
      (** [Some k]: accumulate [rc_expr] over a reduction dim r in [0, k) *)
  rc_expr : cexpr;
}

(* The schedule-step vocabulary is shared with the beam search
   (lib/autosched/sched_space.ml); re-exporting the constructors keeps the
   pinned corpus literals in test/test_fuzz.ml source-compatible. *)
type step = Tiramisu_autosched.Sched_space.action =
  | Split of string * string * int
      (** comp, dyn name v, factor — derived names [v0], [v1] *)
  | Tile of string * string * string * int * int
      (** comp, i, j (adjacent), factors — derived [i0 j0 i1 j1] *)
  | Interchange of string * string * string
  | Shift of string * string * int
  | Skew of string * string * string * int
  | Reverse of string * string
  | Parallelize of string * string
  | Vectorize of string * string * int  (** derived inner name [v_v] *)
  | Unroll of string * string * int  (** derived inner name [v_u] *)
  | Fuse of string * string * string  (** [after c b lvl], lvl = "root" or a loop of b *)
  | Compute_at of string * string * string
      (** [compute_at producer consumer lvl]; search-only *)

type t = {
  extents : ext list;  (** one per dimension; length = dimensionality *)
  n_value : int;  (** runtime value of [N] when any extent is [NParam] *)
  inputs : (string * int) list;  (** name, rank *)
  comps : rcomp list;  (** in declaration (= dependence) order *)
  steps : step list;  (** schedule pipeline, applied in order *)
}

let pad = 2
let dim_name d = [| "i"; "j"; "l" |].(d)
let concrete t = function Lit n -> n | NParam -> t.n_value

(* Inputs are sized to the *maximum* extent in the case (plus padding on
   both sides), so that any mapping of input dims to consumer dims — at any
   offset in [-pad, pad] — is in bounds.  Inputs are read-only, so the
   oversizing cannot change semantics. *)
let max_extent t =
  let m = List.fold_left (fun m e -> max m (concrete t e)) 1 t.extents in
  List.fold_left
    (fun m rc -> match rc.rc_red with Some k -> max m k | None -> m)
    m t.comps

(* Deterministic integer-valued fill in a small range, keyed by the buffer
   name so distinct inputs hold distinct data. *)
let fill_for name =
  let h = Hashtbl.hash name land 0xffff in
  fun idx ->
    let a = ref (h + 17) in
    Array.iter (fun i -> a := (!a * 131) + (i * 7) + (i * i)) idx;
    float_of_int (((!a land 0x3fffffff) mod 17) - 8)

type built = {
  fn : Ir.fn;
  params : (string * int) list;
  fills : (string * (int array -> float)) list;
      (** input buffer name -> fill function *)
  outputs : string list;  (** buffer names whose contents to compare *)
}

let apply_step = Tiramisu_autosched.Sched_space.apply

let build ?(with_steps = true) (t : t) : built =
  let has_n = List.exists (fun e -> e = NParam) t.extents in
  let fn = create ~params:(if has_n then [ "N" ] else []) "fuzz" in
  let ext_aff d =
    match List.nth t.extents d with
    | Lit n -> Aff.const n
    | NParam -> Aff.var "N"
  in
  let mx = max_extent t in
  let producers = Hashtbl.create 8 in
  List.iter
    (fun (name, rank) ->
      let vars =
        List.init rank (fun d ->
            var (dim_name d) (Aff.const (-pad)) (Aff.const (mx + pad)))
      in
      let c = input fn name vars in
      ignore (buffer_of c);
      Hashtbl.replace producers name (`Input c))
    t.inputs;
  (* [all_vars]: the consumer's full iterator list (free dims then the
     reduction dim, when present); [fvars]: free dims only. *)
  let conv all_vars fvars e =
    let rec go = function
      | Const n -> E.float (float_of_int n)
      | Bin (op, u, v) -> (
          let fu = go u and fv = go v in
          match op with
          | Add -> E.(fu +: fv)
          | Sub -> E.(fu -: fv)
          | Mul -> E.(fu *: fv)
          | Min -> E.min_ fu fv
          | Max -> E.max_ fu fv)
      | In (name, dims) -> (
          match Hashtbl.find_opt producers name with
          | Some (`Input c) ->
              c
              $ List.map
                  (fun (cd, off) ->
                    let v = List.nth all_vars cd in
                    if off = 0 then x v else E.(x v +: int off))
                  dims
          | _ -> failwith ("fuzz case: unknown input " ^ name))
      | Prod p -> (
          match Hashtbl.find_opt producers p with
          | Some (`Plain (c, rank)) ->
              c $ List.init rank (fun d -> x (List.nth fvars d))
          | Some (`Red (upd, rank, kx)) ->
              upd
              $ (List.init rank (fun d -> x (List.nth fvars d))
                @ [ E.int (kx - 1) ])
          | _ -> failwith ("fuzz case: unknown producer " ^ p))
    in
    go e
  in
  let outputs = ref [] in
  List.iter
    (fun rc ->
      let fvars =
        List.init rc.rc_rank (fun d ->
            var (dim_name d) (Aff.const 0) (ext_aff d))
      in
      match rc.rc_red with
      | None ->
          let c = comp fn rc.rc_name fvars (conv fvars fvars rc.rc_expr) in
          ignore (buffer_of c);
          Hashtbl.replace producers rc.rc_name (`Plain (c, rc.rc_rank));
          outputs := rc.rc_name :: !outputs
      | Some kx ->
          (* The sgemm idiom (lib/kernels/linalg.ml): an init computation
             and an update computation accumulating in place over r, both
             stored to the init's buffer with the r dim contracted away. *)
          let rvar = var "r" (Aff.const 0) (Aff.const kx) in
          let init = comp fn (rc.rc_name ^ "_init") fvars (E.float 0.) in
          let upd = comp fn (rc.rc_name ^ "_upd") (fvars @ [ rvar ]) (E.int 0) in
          let term = conv (fvars @ [ rvar ]) fvars rc.rc_expr in
          let prev =
            Ir.Access_e
              (rc.rc_name ^ "_upd", List.map x fvars @ [ E.(x rvar -: int 1) ])
          in
          upd.Ir.expr <-
            E.(select (x rvar =: int 0) (init $ List.map x fvars) prev +: term);
          let buf = buffer_of init in
          store_in upd buf (List.init rc.rc_rank (fun d -> Aff.var (dim_name d)));
          Hashtbl.replace producers rc.rc_name (`Red (upd, rc.rc_rank, kx));
          outputs := (rc.rc_name ^ "_init") :: !outputs)
    t.comps;
  if with_steps then List.iter (apply_step fn) t.steps;
  {
    fn;
    params = (if has_n then [ ("N", t.n_value) ] else []);
    fills = List.map (fun (n, _) -> (n, fill_for n)) t.inputs;
    outputs = List.rev !outputs;
  }

let has_parallel t =
  List.exists (function Parallelize _ -> true | _ -> false) t.steps

(* ---------- OCaml-literal printing (for the replay corpus) ---------- *)

let op_name = function
  | Add -> "Add"
  | Sub -> "Sub"
  | Mul -> "Mul"
  | Min -> "Min"
  | Max -> "Max"

let rec expr_lit = function
  | Const n -> Printf.sprintf "Const (%d)" n
  | In (s, l) ->
      Printf.sprintf "In (%S, [ %s ])" s
        (String.concat "; "
           (List.map (fun (d, o) -> Printf.sprintf "(%d, %d)" d o) l))
  | Prod s -> Printf.sprintf "Prod %S" s
  | Bin (op, a, b) ->
      Printf.sprintf "Bin (%s, %s, %s)" (op_name op) (expr_lit a) (expr_lit b)

let step_lit = Tiramisu_autosched.Sched_space.to_literal

let ext_lit = function Lit n -> Printf.sprintf "Lit %d" n | NParam -> "NParam"

let rcomp_lit rc =
  Printf.sprintf "{ rc_name = %S; rc_rank = %d; rc_red = %s; rc_expr = %s }"
    rc.rc_name rc.rc_rank
    (match rc.rc_red with
    | None -> "None"
    | Some k -> Printf.sprintf "Some %d" k)
    (expr_lit rc.rc_expr)

let to_literal t =
  Printf.sprintf
    "{ extents = [ %s ];\n  n_value = %d;\n  inputs = [ %s ];\n  comps =\n    [ %s ];\n  steps = [ %s ] }"
    (String.concat "; " (List.map ext_lit t.extents))
    t.n_value
    (String.concat "; "
       (List.map (fun (n, r) -> Printf.sprintf "(%S, %d)" n r) t.inputs))
    (String.concat ";\n      " (List.map rcomp_lit t.comps))
    (String.concat ";\n    " (List.map step_lit t.steps))
