(* Campaign driver: seed -> generate -> differential -> (on failure)
   shrink.  Deterministic: seed s always produces the same case, so a
   failure report's seed and shrunk literal are both replayable. *)

type report = {
  mutable passed : int;
  mutable rejected : int;
      (** oracle-rejected cases; generator-vetted cases should never land
          here, replayed corpus entries may *)
  mutable failures : (int * Case.t * string) list;
      (** seed, shrunk case, divergence message *)
  gstats : Generator.stats;
}

let gen_seed ?stats seed =
  let rng = Random.State.make [| 0x7e57; seed |] in
  Generator.gen ?stats rng

let run_seed ?stats seed =
  let case = gen_seed ?stats seed in
  (case, Differential.run_case case)

let still_fails case =
  match Differential.run_case case with Differential.Fail _ -> true | _ -> false

let campaign ?(verbose = false) ?(shrink = true) ~seed ~count () =
  let gstats = Generator.mk_stats () in
  let r = { passed = 0; rejected = 0; failures = []; gstats } in
  for s = seed to seed + count - 1 do
    let case = gen_seed ~stats:gstats s in
    if verbose then
      Printf.printf "seed %d: generated\n%s\n%!" s (Case.to_literal case);
    let oc = Differential.run_case case in
    (match oc with
    | Differential.Pass -> r.passed <- r.passed + 1
    | Differential.Rejected _ -> r.rejected <- r.rejected + 1
    | Differential.Fail msg ->
        let small = if shrink then Shrink.shrink still_fails case else case in
        let msg =
          match Differential.run_case small with
          | Differential.Fail m -> m
          | _ -> msg
        in
        r.failures <- (s, small, msg) :: r.failures);
    if verbose then
      Printf.printf "seed %d: %s\n%!" s (Differential.outcome_str oc)
  done;
  r.failures <- List.rev r.failures;
  r

let print_report r =
  Printf.printf
    "fuzz: %d passed, %d rejected, %d failed | steps: %d accepted, %d \
     oracle-rejected, %d errored\n"
    r.passed r.rejected
    (List.length r.failures)
    r.gstats.Generator.steps_accepted r.gstats.Generator.steps_illegal
    r.gstats.Generator.steps_errored;
  List.iter
    (fun (seed, case, msg) ->
      Printf.printf "\n--- seed %d: %s\nshrunk case:\n%s\n" seed msg
        (Case.to_literal case))
    r.failures
