(* Differential execution of one fuzz case.

   The reference is the *unscheduled* program run on the interpreter — the
   Layer-I semantics with the default (declaration-order) schedule.  The
   case passes when:

     1. the schedule is accepted by the legality oracle
        (Deps.legal_under_schedule);
     2. the scheduled program, still on the interpreter, computes the same
        bits (a legal schedule must be semantics-preserving; generated
        programs use exact integer-valued floats so bit equality is the
        right notion);
     3. every compiled-executor configuration computes the same bits as
        the scheduled interpreter run.  The configurations cross the
        parallel strategy with the optimization knobs:
        Seq x {specialize, narrow} (all four), plus Pool and Spawn (full
        optimization) when the schedule parallelizes anything.

   Each configuration gets freshly created and filled buffers, so runs
   cannot contaminate each other. *)

open Tiramisu_core
module B = Tiramisu_backends
module P = Tiramisu_pipeline.Pipeline

type outcome =
  | Pass
  | Rejected of string  (** the legality oracle refused the schedule *)
  | Fail of string  (** divergence or crash: a real bug *)

exception Stop of outcome

let make_buffers fn ~params ~fills =
  Lower.buffer_extents fn ~params
  |> List.map (fun ((b : Ir.buffer), dims) ->
         let buf = B.Buffers.create b.Ir.buf_name dims in
         (match List.assoc_opt b.Ir.buf_name fills with
         | Some f -> B.Buffers.fill buf f
         | None -> ());
         buf)

let bits_equal (a : B.Buffers.t) (b : B.Buffers.t) =
  Array.length a.B.Buffers.data = Array.length b.B.Buffers.data
  &&
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.B.Buffers.data.(i) then
        ok := false)
    a.B.Buffers.data;
  !ok

let first_diff (a : B.Buffers.t) (b : B.Buffers.t) =
  let n = min (Array.length a.B.Buffers.data) (Array.length b.B.Buffers.data) in
  let r = ref (Printf.sprintf "(sizes %d vs %d)"
                 (Array.length a.B.Buffers.data) (Array.length b.B.Buffers.data))
  in
  (try
     for i = 0 to n - 1 do
       if
         Int64.bits_of_float a.B.Buffers.data.(i)
         <> Int64.bits_of_float b.B.Buffers.data.(i)
       then (
         r :=
           Printf.sprintf "[%d]: %.17g vs %.17g" i a.B.Buffers.data.(i)
             b.B.Buffers.data.(i);
         raise Exit)
     done
   with Exit -> ());
  !r

let find_buf name bufs = List.find (fun b -> b.B.Buffers.name = name) bufs

(* Per-pass differential-verify probe for the pipeline: the case's own
   parameters, buffers, fills and outputs.  Every verifiable pass
   (legalize, narrow, simplify) then gets interpreted before and after on
   this input, a cross-check axis orthogonal to the config sweep below. *)
let probe_of fn ~params ~fills ~outputs =
  { P.probe_params = params;
    P.probe_extents = P.extents_of_fn fn ~params;
    P.probe_fills = fills;
    P.probe_outputs = outputs }

(* Run the loop IR on the interpreter over fresh buffers; return them. *)
let interp_run ~params ~fills fn ast =
  let bufs = make_buffers fn ~params ~fills in
  let t = B.Interp.create ~params ~buffers:bufs () in
  B.Interp.run t ast;
  bufs

(* Each config: (tag, pipeline knobs).  The CPU rows cross the parallel
   strategy with the optimization knobs; for parallel schedules the pool
   rows cross the parallel planner (coalescing forced on / off —
   [`Force] is machine-independent, it fuses the maximal rectangular
   prefix regardless of core count) with the pool schedule (static
   per-worker ranges / dynamic chunk stealing), plus the default
   auto/auto row and the spawn baseline.  The tape axis runs the
   flat-tape backend (default, on) against tape-off rows of the same
   configuration: bit-exact interp-vs-tape diffing for sequential,
   planned-static and default pool rows.  The lanes axis crosses the
   tape's vector tier (default width) against a forced-scalar tape
   ([lanes = 1]) — lane batching must be bit-identical to the scalar
   tape, which itself must match the closure path and interpreter.

   Every case additionally runs on the GPU-sim and distributed targets:
   their compiled executors (grid simulation / rank-by-rank channels)
   must match the interpreter bit-exactly too, and their rows exercise
   the target-keyed compile cache end to end. *)
let exec_configs case =
  let cpu ?(spec = true) ?(narrow = true) ?(plan = `Off) ?(sched = `Auto)
      ?(tape = true) ?(lanes = P.default_knobs.P.lanes) par =
    { P.target = B.Target.cpu ~parallel:par ~sched ();
      P.specialize = spec; P.narrow = narrow; P.plan = plan; P.tape = tape;
      P.lanes = lanes }
  in
  let base =
    [
      ("seq", cpu `Seq);
      ("seq,notape", cpu ~tape:false `Seq);
      ("seq,nolanes", cpu ~lanes:1 `Seq);
      ("seq,nospec", cpu ~spec:false `Seq);
      ("seq,nonarrow", cpu ~narrow:false `Seq);
      ("seq,nospec,nonarrow", cpu ~spec:false ~narrow:false `Seq);
      ("gpu-sim", { P.default_knobs with P.target = B.Target.gpu_sim () });
      ( "dist",
        { P.default_knobs with P.target = B.Target.distributed ~ranks:4 () }
      );
    ]
  in
  if Case.has_parallel case then
    base
    @ [
        ("pool", cpu ~plan:`Auto `Pool);
        ("pool,notape", cpu ~plan:`Auto ~tape:false `Pool);
        ("pool,nolanes", cpu ~plan:`Auto ~lanes:1 `Pool);
        ("pool,plan,static", cpu ~plan:`Force ~sched:`Static `Pool);
        ( "pool,plan,static,notape",
          cpu ~plan:`Force ~sched:`Static ~tape:false `Pool );
        ("pool,plan,dyn", cpu ~plan:`Force ~sched:`Dynamic `Pool);
        ("pool,noplan,static", cpu ~sched:`Static `Pool);
        ("pool,noplan,dyn", cpu ~sched:`Dynamic `Pool);
        ("spawn", cpu `Spawn);
      ]
  else base

let run_case_unguarded (case : Case.t) : outcome =
  try
    (* Reference: unscheduled program on the interpreter. *)
    let b0 = Case.build ~with_steps:false case in
    let ast0 = (P.lower b0.Case.fn).Lower.ast in
    let ref_bufs =
      interp_run ~params:b0.Case.params ~fills:b0.Case.fills b0.Case.fn ast0
    in
    (* Scheduled build + oracle. *)
    let b1 =
      try Case.build case with
      | Limits.Timeout as t -> raise t
      | e ->
          raise
            (Stop (Rejected ("schedule failed to apply: " ^ Printexc.to_string e)))
    in
    (match Tiramisu_deps.Deps.legal_under_schedule b1.Case.fn with
    | Error e -> raise (Stop (Rejected e))
    | Ok () -> ());
    let probe =
      probe_of b1.Case.fn ~params:b1.Case.params ~fills:b1.Case.fills
        ~outputs:b1.Case.outputs
    in
    let ast1 =
      let tracer = P.make_tracer ~probe ~name:"scheduled" () in
      try (P.lower ~tracer b1.Case.fn).Lower.ast with
      | Limits.Timeout as t -> raise t
      | P.Error pe ->
          raise
            (Stop
               (Fail
                  (Printf.sprintf "lowering a legal schedule: pass %S %s: %s"
                     pe.P.err_stage pe.P.err_context pe.P.err_msg)))
      | e ->
          raise
            (Stop
               (Fail ("lowering a legal schedule raised: " ^ Printexc.to_string e)))
    in
    let sched_bufs =
      try interp_run ~params:b1.Case.params ~fills:b1.Case.fills b1.Case.fn ast1
      with
      | Limits.Timeout as t -> raise t
      | e ->
          raise (Stop (Fail ("interp(scheduled) raised: " ^ Printexc.to_string e)))
    in
    List.iter
      (fun out ->
        let r = find_buf out ref_bufs and s = find_buf out sched_bufs in
        if not (bits_equal r s) then
          raise
            (Stop
               (Fail
                  (Printf.sprintf "schedule changed semantics: %s %s" out
                     (first_diff r s)))))
      b1.Case.outputs;
    (* Compiled executor, every configuration, vs the scheduled interp. *)
    List.iter
      (fun (tag, knobs) ->
        let bufs =
          try
            let bufs =
              make_buffers b1.Case.fn ~params:b1.Case.params ~fills:b1.Case.fills
            in
            let tracer = P.make_tracer ~probe ~name:("exec:" ^ tag) () in
            let c =
              P.compile ~tracer ~knobs ~params:b1.Case.params ~buffers:bufs
                ast1
            in
            B.Exec.run c;
            bufs
          with
          | Limits.Timeout as t -> raise t
          | P.Error pe ->
              raise
                (Stop
                   (Fail
                      (Printf.sprintf "exec(%s): pass %S rejected: %s" tag
                         pe.P.err_stage pe.P.err_msg)))
          | e ->
              raise
                (Stop
                   (Fail
                      (Printf.sprintf "exec(%s) raised: %s" tag
                         (Printexc.to_string e))))
        in
        List.iter
          (fun out ->
            let s = find_buf out sched_bufs and x = find_buf out bufs in
            if not (bits_equal s x) then
              raise
                (Stop
                   (Fail
                      (Printf.sprintf "exec(%s) diverges from interp: %s %s" tag
                         out (first_diff s x)))))
          b1.Case.outputs)
      (exec_configs case);
    Pass
  with
  | Stop o -> o
  | Limits.Timeout as t -> raise t
  | e -> Fail ("reference run raised: " ^ Printexc.to_string e)

(* Corpus replays skip generator vetting, so the polyhedral blowup guard
   has to live here too: a case the machinery cannot decide in time is
   reported as rejected, never allowed to wedge the campaign. *)
let run_case (case : Case.t) : outcome =
  match Limits.with_time_limit 30 (fun () -> run_case_unguarded case) with
  | Some o -> o
  | None -> Rejected "timed out (polyhedral blowup guard)"

let outcome_str = function
  | Pass -> "pass"
  | Rejected m -> "rejected: " ^ m
  | Fail m -> "FAIL: " ^ m
