(* Moved to lib/support so the autoscheduler's candidate vetting can use
   the same wall-clock guard as the fuzz campaign; re-exported here to
   keep fuzz-internal call sites unchanged. *)
include Tiramisu_support.Limits
