(** Closure-compiling native executor.

    Where the paper lowers its AST to LLVM IR (§V-A), this backend compiles
    the loop IR once into nested OCaml closures — eliminating the
    interpreter's dispatch overhead — and executes [Parallel]-tagged loops
    on real cores.  It is the wall-clock backend: the reference {!Interp}
    stays the semantics oracle, and the two are checked against each other
    in the test-suite.

    Parallel loops run on the persistent {!Pool} of domains (chunked ranges,
    work stealing); nested parallel loops — statically detected via the loop
    metadata, or dynamically via {!Pool.in_worker} — run sequentially on
    their worker instead of oversubscribing.

    Addressing is hoisted: strides are precomputed per access, affine index
    expressions fold to register/coefficient pairs, and per-dimension bounds
    checks move to the entry of the innermost loop whose variable they
    involve (the two corners of the range are checked once; non-affine
    indices and failed corner checks fall back to per-access checks).

    GPU-tagged loops run as ordinary loops (a functional grid simulation);
    distributed loops run rank-by-rank with in-memory channels, exactly as
    in {!Interp}. *)

type compiled

type par_strategy = [ `Pool | `Spawn | `Seq ]
(** How [Parallel]-tagged loops execute: on the persistent domain pool
    (default), with a fresh [Domain.spawn]/[join] per loop entry (the seed
    strategy, kept as a benchmark baseline), or sequentially. *)

val compile :
  ?parallel:par_strategy ->
  params:(string * int) list ->
  buffers:Buffers.t list ->
  Tiramisu_codegen.Loop_ir.stmt ->
  compiled
(** Compile once; buffers are captured by reference (re-fill between runs
    to reuse). @raise Failure on constructs the executor does not support. *)

val run : compiled -> unit
(** Execute.  With the default [`Pool] strategy, parallel loops use the
    domain pool when {!Pool.num_workers} is more than one. *)

val buffer : compiled -> string -> Buffers.t

val meta : compiled -> Tiramisu_codegen.Loop_ir.loop_meta
(** Static loop metadata of the compiled program. *)

val time_run : compiled -> float
(** Wall-clock (monotonic) seconds of one execution. *)
