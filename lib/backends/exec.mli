(** Closure-compiling native executor.

    Where the paper lowers its AST to LLVM IR (§V-A), this backend compiles
    the loop IR once into nested OCaml closures — eliminating the
    interpreter's dispatch overhead — and executes [Parallel]-tagged loops
    on real cores.  It is the wall-clock backend: the reference {!Interp}
    stays the semantics oracle, and the two are checked against each other
    in the test-suite.

    Parallel loops run on the persistent {!Pool} of domains (chunked ranges,
    work stealing); nested parallel loops — statically detected via the loop
    metadata, or dynamically via {!Pool.in_worker} — run sequentially on
    their worker instead of oversubscribing.

    Addressing is hoisted: strides are precomputed per access, affine index
    expressions fold to register/coefficient pairs, and per-dimension bounds
    checks move to the entry of the innermost loop whose variable they
    involve (the two corners of the range are checked once; non-affine
    indices and failed corner checks fall back to per-access checks).

    Innermost loops whose body is a straight-line sequence of stores of
    arithmetic over affine loads are additionally {e specialized}: flat
    offsets are strength-reduced to per-iteration cursor bumps, [Unrolled]
    and [Vectorized] tags select unrolled / lane-blocked drivers (with a
    scalar epilogue for partial blocks), and loop-invariant loads are
    promoted to scalars read once at entry ({!spec_count} reports how many
    loops took this path).  Under the [`Pool] strategy, [Parallel] loops are
    demoted to sequential when forking cannot pay off — the process has a
    single CPU ({!Pool.effective_parallelism} is 1), or the static per-chunk
    work estimate is below {!Pool.min_work} ({!pool_fallbacks}).

    GPU-tagged loops run as ordinary loops (a functional grid simulation);
    distributed loops run rank-by-rank with in-memory channels, exactly as
    in {!Interp}.  Which backend a compilation is for is named by a
    {!Target.t}: the target decides the CPU parallel strategy and pool
    schedule, whether the flat tape may claim nests, the GPU simulator's
    thread-block ceiling, and the rank count/α–β model recorded with
    distributed artifacts. *)

type compiled

exception
  Comm_error of { src : int; dst : int; channel : string; reason : string }
(** Typed diagnostic for distributed-executor communication faults: a
    synchronous receive with no queued message (the in-process analogue
    of an MPI deadlock), a payload size disagreeing with the receive
    count, or a send left undelivered at program exit.  [channel] is the
    buffer the message travels through; [src]/[dst] are ranks. *)

type par_strategy = [ `Pool | `Spawn | `Seq ]
(** How [Parallel]-tagged loops execute: on the persistent domain pool
    (default), with a fresh [Domain.spawn]/[join] per loop entry (the seed
    strategy, kept as a benchmark baseline), or sequentially. *)

type schedule = [ `Auto | `Static | `Dynamic ]
(** How a pool-executed [Parallel] loop deals iterations to workers.
    [`Static] assigns each worker one contiguous near-equal range up front
    ({!Pool.static_for}: one hand-off per worker, persistent per-range
    register files, no per-chunk allocation); [`Dynamic] deals ~4 chunks
    per worker with work stealing ({!Pool.parallel_for}).  [`Auto]
    (default) picks statically per loop: static when the per-entry work
    estimate is the same at both ends of the range (rectangular domains,
    including everything the parallel planner coalesces), dynamic
    otherwise (triangular domains, guarded partial tiles). *)

val prepare :
  ?narrow:bool ->
  params:(string * int) list ->
  Tiramisu_codegen.Loop_ir.stmt ->
  Tiramisu_codegen.Loop_ir.stmt
(** The statement-level pre-passes of {!compile}: interval-based bound
    narrowing with the concrete parameter values (gated by [narrow],
    default [true]), then unroll expansion and simplification.  Exposed so
    the {e pipeline} pass manager can run and time each stage
    individually. *)

val compile_prepared :
  ?target:Target.t ->
  ?specialize:bool ->
  ?demote:bool ->
  ?tape:bool ->
  ?lanes:int ->
  params:(string * int) list ->
  buffers:Buffers.t list ->
  Tiramisu_codegen.Loop_ir.stmt ->
  compiled
(** Closure-compile a statement that already went through {!prepare} (or
    that the caller wants compiled verbatim) for [target] (default
    {!Target.default}, the pool CPU).  The target's projections replace
    the old [?parallel]/[?sched] knobs; [tape] is additionally gated by
    {!Target.tape_claimable}, and a [Gpu_sim] target statically validates
    thread-block sizes against its [max_threads].  [lanes] (default [8])
    is the vector lane width claimed nests are bound with — [<= 1] forces
    the scalar tape; lane-unsafe nests stay scalar either way (see
    {!Tape.bind}).  [compile] is [compile_prepared] after [prepare].
    [demote] (default [true]) gates the executor's own profitability
    demotion of pool loops — the pipeline passes [~demote:false] when the
    parallel-planning pass has already made the serialize/keep decisions,
    so a loop is never tested twice. *)

val compile :
  ?target:Target.t ->
  ?specialize:bool ->
  ?narrow:bool ->
  ?demote:bool ->
  ?tape:bool ->
  ?lanes:int ->
  params:(string * int) list ->
  buffers:Buffers.t list ->
  Tiramisu_codegen.Loop_ir.stmt ->
  compiled
(** Compile once; buffers are captured by reference (re-fill between runs
    to reuse).  The knobs are orthogonal, so the differential fuzzer can
    cross targets with optimization settings: [specialize] (default
    [true]) gates the kernel specializer, [narrow] (default [true]) gates
    the {!Tiramisu_codegen.Passes.narrow} bound-narrowing pre-pass; with
    specialize and narrow off the executor is the plain hoisted-addressing
    closure compiler.
    @raise Failure on constructs the executor does not support. *)

val run : compiled -> unit
(** Execute.  With the default [`Pool] strategy, parallel loops use the
    domain pool when {!Pool.num_workers} is more than one. *)

val buffer : compiled -> string -> Buffers.t

val meta : compiled -> Tiramisu_codegen.Loop_ir.loop_meta
(** Static loop metadata of the compiled program. *)

val time_run : compiled -> float
(** Wall-clock (monotonic) seconds of one execution. *)

val spec_count : compiled -> int
(** Number of innermost loops compiled through the kernel specializer
    (strength-reduced addressing, unroll/vector drivers, scalar promotion).
    Entries whose corner bounds checks fail still fall back to the generic
    closures at run time; this counts compile-time decisions.  The count is
    per-[compiled] value — repeated compiles in one process each report
    their own number, nothing accumulates across compiles. *)

val pool_fallbacks : compiled -> int
(** Number of [Parallel] loops demoted to sequential by the demotion
    heuristic (single effective CPU, or static per-chunk work estimate below
    {!Pool.min_work}).  Always 0 for the [`Spawn] and [`Seq] strategies, and
    when [TIRAMISU_POOL_MIN_WORK=0].  Per-[compiled] value, like
    {!spec_count}. *)

val static_count : compiled -> int
(** Number of pool-executed [Parallel] loops compiled with the static
    per-worker schedule (see {!schedule}).  Per-[compiled] value, like
    {!spec_count}. *)

val tape_count : compiled -> int
(** Number of loop nests claimed by the flat-tape backend ([tape], default
    on): perfect rectangular nests over straight-line affine stores compiled
    to register-file bytecode with strength-reduced cursor addressing (see
    {!Tape}).  The whole closure path stays compiled as the checked
    fallback.  Per-[compiled] value, like {!spec_count}. *)

val tape_vec_count : compiled -> int
(** Number of claimed nests bound with lane batching (the vector tier):
    the generator marked them lane-safe and the backend found a usable
    batched level at the requested width.  Per-[compiled], like
    {!tape_count}. *)

val tape_lanes : compiled -> int
(** The lane width this program was compiled with ([0] when the tape was
    disabled or [lanes <= 1] forced the scalar tape). *)

val tape_instrs : compiled -> int
(** Total tape instructions across all claimed nests.  Per-[compiled]. *)

val tape_fallbacks : compiled -> int
(** Number of nest {e entries} whose whole-box corner check failed at run
    time, falling back to the generic closure path (whose per-access checks
    raise at the faulting iteration).  Unlike the compile-time counters this
    accumulates across {!run} calls of the same [compiled] value. *)

val comm_msgs : compiled -> int
(** Messages sent through distributed channels so far.  Accumulates across
    {!run} calls, like {!tape_fallbacks}; feeds the α–β model in the
    distributed bench. *)

val comm_bytes : compiled -> int
(** Payload bytes sent through distributed channels so far (8 bytes per
    element).  Accumulates across {!run} calls. *)
