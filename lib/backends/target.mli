(** First-class execution target: which backend a compilation is for.

    Replaces the ad-hoc [(parallel, sched, ...)] knob tuples that used to
    thread through Exec, Pipeline, Runner, Service, Autosched and the
    fuzzer.  A target participates in compile-cache and service-store
    keys via {!to_key_string}, so artifacts for different backends never
    alias (DESIGN.md §14). *)

type cpu_knobs = {
  parallel : [ `Pool | `Spawn | `Seq ];
  sched : [ `Auto | `Static | `Dynamic ];
}

type grid_cfg = {
  max_threads : int;  (** thread-block size ceiling *)
  shared_kb : int;    (** shared-memory budget per block, KiB *)
}

type dist_cfg = {
  ranks : int;        (** number of in-process ranks *)
  net : Machine.net;  (** α–β model for predicted communication time *)
}

type t =
  | Cpu of cpu_knobs
  | Gpu_sim of grid_cfg
  | Distributed of dist_cfg

val default : t
(** [Cpu { parallel = `Pool; sched = `Auto }] — what every caller that
    never asks for a target gets. *)

val cpu :
  ?parallel:[ `Pool | `Spawn | `Seq ] ->
  ?sched:[ `Auto | `Static | `Dynamic ] ->
  unit ->
  t

val gpu_sim : ?max_threads:int -> ?shared_kb:int -> unit -> t
(** Defaults come from {!Machine.default}'s GPU record. *)

val distributed : ?net:Machine.net -> ranks:int -> unit -> t
(** @raise Invalid_argument if [ranks < 1]. *)

(** {1 Capability flags} *)

val tape_claimable : t -> bool
(** Whether the flat instruction tape may claim nests when compiling for
    this target.  True only for [Cpu]: the grid simulator and the
    per-rank executor re-bind environment slots per grid point / rank,
    which claimed rectangular nests cannot observe. *)

val pool_schedulable : t -> bool
(** Whether the compile-time parallel planner (trip counts, band
    widening, static ranges) applies.  True only for [Cpu] with the
    [`Pool] strategy. *)

(** {1 Projections for Exec} *)

val par_strategy : t -> [ `Pool | `Spawn | `Seq ]
(** CPU strategy; [`Seq] for GPU-sim and distributed targets (their
    parallelism is expressed by hardware tags, not the domain pool). *)

val sched : t -> [ `Auto | `Static | `Dynamic ]
val ranks : t -> int option

(** {1 Naming} *)

val to_key_string : t -> string
(** Stable, total rendering folded into cache/store keys, e.g.
    ["cpu:pool:auto"], ["gpu-sim:2048:48k"], ["dist:4:a1500:b0.180"]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> (t, string) result
(** CLI grammar: [cpu | cpu:pool|spawn|seq | gpu-sim | dist:N]. *)
