module L = Tiramisu_codegen.Loop_ir
module M = Machine

type report = {
  time_ns : float;
  compute_ns : float;
  memory_ns : float;
  overhead_ns : float;
  comm_ns : float;
  flops : float;
  bytes : float;
  messages : int;
}

(* Cost of one execution of a statement under the current environment. *)
type cost = {
  c_compute : float;
  c_memory : float;
  c_overhead : float;
  c_comm : float;
  c_flops : float;
  c_bytes : float;
  c_msgs : float;
}

let zero =
  { c_compute = 0.; c_memory = 0.; c_overhead = 0.; c_comm = 0.;
    c_flops = 0.; c_bytes = 0.; c_msgs = 0. }

let ( ++ ) a b =
  {
    c_compute = a.c_compute +. b.c_compute;
    c_memory = a.c_memory +. b.c_memory;
    c_overhead = a.c_overhead +. b.c_overhead;
    c_comm = a.c_comm +. b.c_comm;
    c_flops = a.c_flops +. b.c_flops;
    c_bytes = a.c_bytes +. b.c_bytes;
    c_msgs = a.c_msgs +. b.c_msgs;
  }

let scale k c =
  {
    c_compute = k *. c.c_compute;
    c_memory = k *. c.c_memory;
    c_overhead = k *. c.c_overhead;
    c_comm = k *. c.c_comm;
    c_flops = k *. c.c_flops;
    c_bytes = k *. c.c_bytes;
    c_msgs = k *. c.c_msgs;
  }

type frame = {
  f_var : string;
  f_extent : int;
  f_tag : L.loop_tag;
}

type state = {
  m : M.t;
  vars : (string, int) Hashtbl.t;          (* representative values *)
  bufs : (string, int array * L.mem_space) Hashtbl.t;
  mutable stack : frame list;              (* innermost first *)
  mutable in_gpu : bool;
  mutable launch_charged : bool;
  mutable block_threads : int;   (* product of Gpu_thread extents on path *)
  mutable local_stores : string list;
      (* buffers stored within the current innermost loop body: loads of
         them hit the cache (producer-consumer fusion locality) *)
  tape : bool;     (* model the flat-tape backend (DESIGN.md §11) *)
  lanes : int;     (* vector-tape lane width (<= 1: scalar tape) *)
  mutable in_tape : bool;
      (* inside a nest Tape_gen would claim: loop control runs as
         strength-reduced bytecode cursors, not closure dispatch *)
  mutable tape_vec : string option;
      (* innermost variable of the claimed nest when the generator marked
         it lane-safe: that loop runs width-[lanes] batches, amortizing
         the per-instruction dispatch *)
}

let rec eval st (e : L.expr) : int =
  match e with
  | L.Int n -> n
  | L.Float f -> int_of_float f
  | L.Var v -> ( match Hashtbl.find_opt st.vars v with Some x -> x | None -> 0)
  | L.Neg a -> -eval st a
  | L.Cast (_, a) -> eval st a
  | L.Load _ -> 0
  | L.Select (c, a, b) -> if eval_cond st c then eval st a else eval st b
  | L.Call _ -> 0
  | L.Bin (op, a, b) -> (
      let x = eval st a and y = eval st b in
      match op with
      | L.Add -> x + y
      | L.Sub -> x - y
      | L.Mul -> x * y
      | L.Div -> if y = 0 then 0 else x / y
      | L.FloorDiv -> if y = 0 then 0 else Tiramisu_support.Ints.fdiv x y
      | L.Mod -> if y = 0 then 0 else Tiramisu_support.Ints.emod x y
      | L.MinOp -> min x y
      | L.MaxOp -> max x y)

and eval_cond st (c : L.cond) : bool =
  match c with
  | L.True -> true
  | L.And (a, b) -> eval_cond st a && eval_cond st b
  | L.Or (a, b) -> eval_cond st a || eval_cond st b
  | L.Not a -> not (eval_cond st a)
  | L.Cmp (op, a, b) -> (
      let x = eval st a and y = eval st b in
      match op with
      | L.EqOp -> x = y | L.NeOp -> x <> y | L.LtOp -> x < y
      | L.LeOp -> x <= y | L.GtOp -> x > y | L.GeOp -> x >= y)

(* Count arithmetic in a value expression (address arithmetic inside Load
   indices is considered free). *)
let rec flops_of (e : L.expr) : float =
  match e with
  | L.Int _ | L.Float _ | L.Var _ | L.Load _ -> 0.
  | L.Neg a | L.Cast (_, a) -> flops_of a
  | L.Bin (L.Div, a, b) -> 4. +. flops_of a +. flops_of b
  | L.Bin (_, a, b) -> 1. +. flops_of a +. flops_of b
  | L.Select (_, a, b) -> 1. +. flops_of a +. flops_of b
  | L.Call ("sqrt", args) | L.Call ("exp", args) | L.Call ("log", args) ->
      8. +. List.fold_left (fun acc a -> acc +. flops_of a) 0. args
  | L.Call (_, args) ->
      2. +. List.fold_left (fun acc a -> acc +. flops_of a) 0. args

let rec loads_of (e : L.expr) : (string * L.expr list) list =
  match e with
  | L.Int _ | L.Float _ | L.Var _ -> []
  | L.Load (b, idx) -> (b, idx) :: List.concat_map loads_of idx
  | L.Neg a | L.Cast (_, a) -> loads_of a
  | L.Bin (_, a, b) -> loads_of a @ loads_of b
  | L.Select (c, a, b) -> loads_of_cond c @ loads_of a @ loads_of b
  | L.Call (_, args) -> List.concat_map loads_of args

and loads_of_cond (c : L.cond) : (string * L.expr list) list =
  match c with
  | L.True -> []
  | L.Cmp (_, a, b) -> loads_of a @ loads_of b
  | L.And (a, b) | L.Or (a, b) -> loads_of_cond a @ loads_of_cond b
  | L.Not a -> loads_of_cond a

let flat_index st buf idx =
  match Hashtbl.find_opt st.bufs buf with
  | None -> List.fold_left (fun acc e -> (acc * 1024) + eval st e) 0 idx
  | Some (dims, _) ->
      let acc = ref 0 in
      List.iteri
        (fun k e ->
          let d = if k < Array.length dims then dims.(k) else 1 in
          acc := (!acc * d) + eval st e)
        idx;
      !acc

let buffer_bytes st buf =
  match Hashtbl.find_opt st.bufs buf with
  | None -> 1 lsl 24
  | Some (dims, _) -> 4 * Array.fold_left ( * ) 1 dims

let buffer_mem st buf =
  match Hashtbl.find_opt st.bufs buf with
  | None -> L.Host
  | Some (_, mem) -> mem

(* Stride of the flat index w.r.t. a loop variable. *)
let stride_wrt st buf idx v =
  let base = flat_index st buf idx in
  let old = Hashtbl.find_opt st.vars v in
  Hashtbl.replace st.vars v (Option.value old ~default:0 + 1);
  let bumped = flat_index st buf idx in
  (match old with
  | Some x -> Hashtbl.replace st.vars v x
  | None -> Hashtbl.remove st.vars v);
  bumped - base

(* Amortization for register promotion: an access whose address is fixed
   across the innermost sequential loop (e.g. the gemm accumulator along k)
   is kept in a register by any serious backend, paying its cost once per
   loop entry rather than per iteration. *)
let promotion_factor st buf idx =
  match st.stack with
  | f :: _
    when (match f.f_tag with
         | L.Seq | L.Unrolled | L.Vectorized _ -> true
         | _ -> false)
         && stride_wrt st buf idx f.f_var = 0
         && f.f_extent > 1 ->
      1.0 /. float_of_int f.f_extent
  | _ -> 1.0

(* Cost of one execution of a single memory access. *)
let access_cost st ?(is_store = false) (buf, idx) =
  ignore is_store;
  let m = st.m in
  let promo = promotion_factor st buf idx in
  if st.in_gpu then begin
    let g = m.M.gpu in
    (* Occupancy: small thread blocks leave SMs idle. *)
    let occ =
      if st.block_threads <= 0 then 1.0
      else Float.max 1.0 (sqrt (192.0 /. float_of_int st.block_threads))
    in
    let base =
      if List.mem buf st.local_stores then
        (* produced by this very thread in this loop body: register reuse *)
        g.M.lat_shared *. 0.5
      else
        match buffer_mem st buf with
        | L.Gpu_shared | L.Gpu_local -> g.M.lat_shared
        | L.Gpu_constant -> g.M.lat_constant
        | _ -> (
            (* Global memory: coalescing w.r.t. the x thread axis
               (threadIdx.x decides the memory transaction shape). *)
            let thread_x =
              List.find_opt
                (fun f -> f.f_tag = L.Gpu_thread 0)
                st.stack
            in
            match thread_x with
            | Some f ->
                let s = abs (stride_wrt st buf idx f.f_var) in
                if s = 0 then
                  (* broadcast from global: served by L2, slower than the
                     constant cache — the tag_gpu_constant() win (§VI-B) *)
                  4.0 *. g.M.lat_constant
                else if s = 1 then g.M.lat_coalesced
                else g.M.lat_global
            | None -> g.M.lat_global)
    in
    (base *. occ *. promo, 4. *. promo)
  end
  else if List.mem buf st.local_stores then
    (* Produced in this very loop body: register/L1 reuse — the locality
       fusion buys (nb, VGG; §VI-B). *)
    (m.M.lat_l1 *. promo, 0.)
  else begin
    (* Innermost loop whose variable moves this access. *)
    let rec find_varying = function
      | [] -> None
      | f :: rest ->
          let s = stride_wrt st buf idx f.f_var in
          if s <> 0 then Some (f, s, rest) else find_varying rest
    in
    match find_varying st.stack with
    | None -> (m.M.lat_l1, 0.)
    | Some (_f, s, outer) ->
        let s = abs s in
        (* A cache line is amortized along whichever (inner) loop walks this
           access with the smallest stride — e.g. a conv input indexed
           [c][y][x] with c innermost still enjoys unit-stride line reuse
           along x. *)
        let best_stride =
          List.fold_left
            (fun acc fr ->
              let sf = abs (stride_wrt st buf idx fr.f_var) in
              if sf <> 0 then min acc sf else acc)
            s st.stack
        in
        let miss_rate =
          Float.min 1.0
            (float_of_int best_stride /. float_of_int m.M.cache_line)
        in
        (* Reuse loop: innermost enclosing loop that does NOT move the
           access; its body's distinct-element footprint decides which cache
           level serves the misses. *)
        let footprint_inside frames =
          (* distinct elements touched by this access inside [frames]
             (the loops inner to the reuse loop), approximated by the
             product of extents of varying loops. *)
          let prod = ref 1.0 in
          List.iter
            (fun fr ->
              if stride_wrt st buf idx fr.f_var <> 0 then
                prod := !prod *. float_of_int (max 1 fr.f_extent))
            frames;
          Float.min (!prod *. 4.0) (float_of_int (buffer_bytes st buf))
        in
        let rec find_reuse inner = function
          | [] -> None
          | f :: rest ->
              if stride_wrt st buf idx f.f_var = 0 then Some inner
              else find_reuse (inner @ [ f ]) rest
        in
        let lat_src =
          match find_reuse [] st.stack with
          | Some inner_frames ->
              let fp = footprint_inside inner_frames in
              if fp <= float_of_int m.M.l1 then m.M.lat_l1
              else if fp <= float_of_int m.M.l2 then m.M.lat_l2
              else if fp <= float_of_int m.M.l3 then m.M.lat_l3
              else m.M.lat_mem
          | None ->
              (* Streamed once: served from the level that fits the whole
                 buffer, or memory. *)
              let b = float_of_int (buffer_bytes st buf) in
              if b <= float_of_int m.M.l2 then m.M.lat_l2
              else if b <= float_of_int m.M.l3 then m.M.lat_l3
              else m.M.lat_mem
        in
        ignore outer;
        (* Only misses served by DRAM count toward the bandwidth bound. *)
        let dram_bytes =
          if lat_src >= m.M.lat_mem then miss_rate *. 64. else 0.
        in
        ((m.M.lat_l1 +. (miss_rate *. lat_src)) *. promo,
         dram_bytes *. promo)
  end

let rec walk st (s : L.stmt) : cost =
  let m = st.m in
  match s with
  | L.Block l -> List.fold_left (fun acc s -> acc ++ walk st s) zero l
  | L.Comment _ -> zero
  | L.Barrier ->
      { zero with c_overhead = (if st.in_gpu then 20.0 else 200.0) }
  | L.If (c, t, e) ->
      let branch = { zero with c_overhead = m.M.branch } in
      let body =
        if eval_cond st c then walk st t
        else match e with Some e -> walk st e | None -> zero
      in
      (* Divergent control flow is costly inside GPU kernels (the PENCIL
         comparison in §VI-B hinges on this) — but only when the condition
         actually depends on thread indices; uniform branches are free. *)
      let rec cond_vars (c : L.cond) =
        let rec expr_vars (e : L.expr) =
          match e with
          | L.Var v -> [ v ]
          | L.Int _ | L.Float _ -> []
          | L.Load (_, idx) -> List.concat_map expr_vars idx
          | L.Bin (_, a, b) -> expr_vars a @ expr_vars b
          | L.Neg a | L.Cast (_, a) -> expr_vars a
          | L.Select (c, a, b) -> cond_vars c @ expr_vars a @ expr_vars b
          | L.Call (_, args) -> List.concat_map expr_vars args
        in
        match c with
        | L.True -> []
        | L.Cmp (_, a, b) -> expr_vars a @ expr_vars b
        | L.And (a, b) | L.Or (a, b) -> cond_vars a @ cond_vars b
        | L.Not a -> cond_vars a
      in
      let divergent =
        st.in_gpu
        && List.exists
             (fun v ->
               List.exists
                 (fun f ->
                   f.f_var = v
                   && match f.f_tag with L.Gpu_thread _ -> true | _ -> false)
                 st.stack)
             (cond_vars c)
      in
      let body =
        if divergent then scale m.M.gpu.M.divergence_penalty body else body
      in
      branch ++ body
  | L.Store (b, idx, v) ->
      let fl = flops_of v in
      (* gflop_ns is per scalar op at full-chip throughput: GPU grids are
         modeled as throughput-limited, so grid loops multiply normally. *)
      let flop_time =
        fl *. (if st.in_gpu then m.M.gpu.M.gflop_ns else m.M.flop)
      in
      let accesses =
        ((b, idx) :: List.map (fun (bb, ii) -> (bb, ii)) (loads_of v))
      in
      let mem, bytes =
        List.fold_left
          (fun (t, by) acc ->
            let c, b' = access_cost st acc in
            (t +. c, by +. b'))
          (0., 0.) accesses
      in
      {
        zero with
        c_compute = flop_time;
        c_memory = mem;
        c_flops = fl;
        c_bytes = bytes;
      }
  | L.Alloc a ->
      { zero with c_overhead = 100.0 } ++ walk st a.body
  | L.Memcpy { src; _ } ->
      let bytes = float_of_int (buffer_bytes st src) in
      {
        zero with
        c_comm = bytes /. m.M.gpu.M.copy_bandwidth;  (* GB/s = B/ns *)
        c_bytes = bytes;
        c_msgs = 1.;
      }
  | L.Send { count; props; _ } ->
      let bytes = 4.0 *. float_of_int (max 0 (eval st count)) in
      let t = m.M.net.M.alpha +. (bytes *. m.M.net.M.beta) in
      {
        zero with
        c_comm = (if props.L.async then 0.4 *. t else t);
        c_bytes = bytes;
        c_msgs = 1.;
      }
  | L.Recv { count; _ } ->
      let bytes = 4.0 *. float_of_int (max 0 (eval st count)) in
      { zero with c_comm = m.M.net.M.alpha +. (bytes *. m.M.net.M.beta);
        c_bytes = bytes; c_msgs = 1. }
  | L.For { var; lo; hi; tag; body } ->
      let lo_v = eval st lo and hi_v = eval st hi in
      let extent = max 0 (hi_v - lo_v + 1) in
      if extent = 0 then zero
      else begin
        let saved_tape = st.in_tape in
        let saved_vec = st.tape_vec in
        (if st.tape && not st.in_tape then
           match
             Tiramisu_codegen.Tape_gen.compile_nest
               (L.For { var; lo; hi; tag; body })
           with
           | Some p ->
               st.in_tape <- true;
               if st.lanes > 1 && p.Tiramisu_codegen.Tape_gen.p_vec_ok then
                 st.tape_vec <-
                   (let lvls = p.Tiramisu_codegen.Tape_gen.p_levels in
                    Some lvls.(Array.length lvls - 1).Tiramisu_codegen.Tape_gen.lv_var)
           | None -> ());
        let mid = lo_v + ((extent - 1) / 2) in
        let saved = Hashtbl.find_opt st.vars var in
        Hashtbl.replace st.vars var mid;
        st.stack <- { f_var = var; f_extent = extent; f_tag = tag } :: st.stack;
        let saved_local = st.local_stores in
        (* Buffers stored directly in this loop's body (not under deeper
           loops): loads of them within the same body are cache-resident. *)
        let rec direct_stores (s : L.stmt) =
          match s with
          | L.Store (b, _, _) -> [ b ]
          | L.Block l -> List.concat_map direct_stores l
          | L.If (_, t, e) ->
              direct_stores t
              @ (match e with Some e -> direct_stores e | None -> [])
          | _ -> []
        in
        st.local_stores <- direct_stores body;
        let saved_gpu = st.in_gpu in
        let saved_bt = st.block_threads in
        (match tag with
        | L.Gpu_block _ -> st.in_gpu <- true
        | L.Gpu_thread _ ->
            st.in_gpu <- true;
            st.block_threads <-
              (if st.block_threads <= 0 then extent
               else st.block_threads * extent)
        | _ -> ());
        let c = walk st body in
        let in_tape = st.in_tape in
        let batched =
          in_tape
          && (match st.tape_vec with Some v -> v = var | None -> false)
          && (match tag with L.Vectorized _ -> false | _ -> true)
        in
        st.in_tape <- saved_tape;
        st.tape_vec <- saved_vec;
        st.stack <- List.tl st.stack;
        st.in_gpu <- saved_gpu;
        st.block_threads <- saved_bt;
        st.local_stores <- saved_local;
        (match saved with
        | Some x -> Hashtbl.replace st.vars var x
        | None -> Hashtbl.remove st.vars var);
        let e = float_of_int extent in
        (* Lane batching of the claimed nest's innermost loop: one
           bytecode dispatch covers [lanes] elements and unit-stride
           loads/stores become blits, so the per-element compute/dispatch
           cost amortizes the same way a [Vectorized] driver's does. *)
        let c =
          if not batched then c
          else begin
            let f = float_of_int (min st.lanes st.m.M.vec_width) in
            {
              c with
              c_compute = c.c_compute /. f;
              c_memory = c.c_memory *. (0.25 +. (0.75 /. f));
            }
          end
        in
        match tag with
        | L.Seq ->
            (* Specializable innermost loops (straight-line affine stores)
               compile to strength-reduced drivers with no per-iteration
               dispatch, so most of the loop overhead disappears; inside a
               tape-claimed nest, loop control is bytecode cursor bumps —
               nearly free (the 1.9-2.8x tape-vs-closure wins are mostly
               this term). *)
            let oh =
              if in_tape then m.M.loop_overhead *. 0.05
              else if L.spec_candidate (L.For { var; lo; hi; tag; body }) then
                m.M.loop_overhead *. 0.25
              else m.M.loop_overhead
            in
            scale e c ++ { zero with c_overhead = e *. oh }
        | L.Unrolled ->
            let oh = if in_tape then 0.05 else 0.15 in
            scale e c ++ { zero with c_overhead = e *. m.M.loop_overhead *. oh }
        | L.Vectorized w ->
            let f = float_of_int (min w m.M.vec_width) in
            let c' =
              {
                c with
                c_compute = c.c_compute /. f;
                c_memory = c.c_memory *. (0.25 +. (0.75 /. f));
              }
            in
            scale e c'
        | L.Parallel ->
            let p = float_of_int (min extent m.M.cores) in
            let r =
              scale (e /. p)
                (c ++ { zero with c_overhead = m.M.loop_overhead })
              ++ { zero with c_overhead = m.M.parallel_overhead }
            in
            (* p cores streaming together saturate DRAM bandwidth: the
               aggregate-bytes bound can exceed the per-core latency bound. *)
            let bw_bound = e *. c.c_bytes *. m.M.mem_bw in
            { r with c_memory = Float.max r.c_memory bw_bound }
        | L.Distributed ->
            (* SPMD: wall-clock is one rank's share (assumed balanced). *)
            c ++ { zero with c_overhead = m.M.loop_overhead }
        | L.Gpu_block _ | L.Gpu_thread _ ->
            (* Throughput model: per-op/per-access GPU constants already
               express full-chip parallel throughput, so the grid loops
               multiply normally; one launch cost per kernel. *)
            let launch =
              if saved_gpu || st.launch_charged then 0.0
              else begin
                st.launch_charged <- true;
                m.M.gpu.M.kernel_launch
              end
            in
            scale e c ++ { zero with c_overhead = launch }
      end

let estimate ?(machine = M.default) ?(tape = false) ?(lanes = 8) ~params
    ~buffers stmt =
  let st =
    {
      m = machine;
      vars = Hashtbl.create 32;
      bufs = Hashtbl.create 32;
      stack = [];
      in_gpu = false;
      launch_charged = false;
      block_threads = 0;
      local_stores = [];
      tape;
      lanes;
      in_tape = false;
      tape_vec = None;
    }
  in
  List.iter (fun (k, v) -> Hashtbl.replace st.vars k v) params;
  List.iter (fun (k, dims, mem) -> Hashtbl.replace st.bufs k (dims, mem)) buffers;
  let c = walk st stmt in
  {
    time_ns = c.c_compute +. c.c_memory +. c.c_overhead +. c.c_comm;
    compute_ns = c.c_compute;
    memory_ns = c.c_memory;
    overhead_ns = c.c_overhead;
    comm_ns = c.c_comm;
    flops = c.c_flops;
    bytes = c.c_bytes;
    messages = int_of_float c.c_msgs;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "time %.3f ms (compute %.3f, memory %.3f, overhead %.3f, comm %.3f) \
     flops %.3g bytes %.3g msgs %d"
    (r.time_ns /. 1e6) (r.compute_ns /. 1e6) (r.memory_ns /. 1e6)
    (r.overhead_ns /. 1e6) (r.comm_ns /. 1e6) r.flops r.bytes r.messages
