(* Monotonic wall-clock for the runtime and the benchmark harness.

   [Unix.gettimeofday] is subject to NTP slews and leap adjustments, which
   makes interp-vs-exec speedup numbers noisy and occasionally negative.
   We read CLOCK_MONOTONIC through the bechamel stubs that are already in
   the preinstalled package set; [Sys.time] would only measure CPU time of
   the calling domain, which undercounts parallel regions. *)

let now_ns () : int64 = Monotonic_clock.now ()

let now_s () = Int64.to_float (now_ns ()) /. 1e9
let now_ms () = Int64.to_float (now_ns ()) /. 1e6

(* Seconds elapsed while running [f]. *)
let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9)
