type t = {
  name : string;
  dims : int array;
  data : float array;
  mem : Tiramisu_codegen.Loop_ir.mem_space;
}

let size_of dims = Array.fold_left ( * ) 1 dims

let create ?(mem = Tiramisu_codegen.Loop_ir.Host) name dims =
  { name; dims; data = Array.make (size_of dims) 0.0; mem }

let of_array ?(mem = Tiramisu_codegen.Loop_ir.Host) name dims data =
  if Array.length data <> size_of dims then
    invalid_arg "Buffers.of_array: size mismatch";
  { name; dims; data; mem }

let size b = Array.length b.data

(* Row-major strides of a dims vector; the single stride computation shared
   by every backend (interpreter offsets, compiled addressing, send/recv). *)
let strides_of dims =
  let n = Array.length dims in
  let s = Array.make (max n 1) 1 in
  for k = n - 2 downto 0 do
    s.(k) <- s.(k + 1) * dims.(k + 1)
  done;
  s

let strides b = strides_of b.dims

let flat_index b idx =
  if Array.length idx <> Array.length b.dims then
    invalid_arg
      (Printf.sprintf "buffer %s: rank %d access on rank %d buffer" b.name
         (Array.length idx) (Array.length b.dims));
  let acc = ref 0 in
  Array.iteri
    (fun k i ->
      if i < 0 || i >= b.dims.(k) then
        invalid_arg
          (Printf.sprintf "buffer %s: index %d out of bounds [0,%d) at dim %d"
             b.name i b.dims.(k) k);
      acc := (!acc * b.dims.(k)) + i)
    idx;
  !acc

let get b idx = b.data.(flat_index b idx)
let set b idx v = b.data.(flat_index b idx) <- v

let fill b f =
  let rank = Array.length b.dims in
  let idx = Array.make rank 0 in
  let n = size b in
  (* incremental odometer over the coordinates: bump the last dimension and
     ripple the carry, instead of mod/div-decoding every flat index *)
  for flat = 0 to n - 1 do
    b.data.(flat) <- f idx;
    let k = ref (rank - 1) in
    let carry = ref true in
    while !carry && !k >= 0 do
      idx.(!k) <- idx.(!k) + 1;
      if idx.(!k) = b.dims.(!k) then idx.(!k) <- 0 else carry := false;
      decr k
    done
  done

let copy b = { b with data = Array.copy b.data }

let max_abs_diff a b =
  if size a <> size b then invalid_arg "Buffers.max_abs_diff: size mismatch";
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.data.(i)))) a.data;
  !m

let equal ?(eps = 1e-4) a b = size a = size b && max_abs_diff a b <= eps
