(** Monotonic wall-clock (CLOCK_MONOTONIC), shared by {!Exec.time_run} and
    the benchmark harness.  Never jumps backwards, unlike
    [Unix.gettimeofday]. *)

val now_ns : unit -> int64
(** Nanoseconds from an arbitrary fixed origin. *)

val now_s : unit -> float
val now_ms : unit -> float

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f] and returns its result with the elapsed wall-clock
    seconds. *)
