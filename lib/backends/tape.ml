(* The flat-tape executor: binds an abstract {!Tiramisu_codegen.Tape_gen}
   program against concrete buffers and runs it with no closures, no env
   lookups and no allocation in the hot loop.

   Binding strength-reduces the addressing once: per access, the affine
   index of every dimension folds with the buffer's strides into a single
   flat base (affine over env slots of names outside the nest) plus one
   integer step per nest level.  Execution walks the nest as an odometer
   over "segments" — maximal runs of the innermost variable — and per
   segment recomputes each cursor from the base and the current outer
   indices, then runs the instruction tape once per iteration with
   constant cursor bumps.

   Binding also builds an "execution view" of the nest: trailing levels
   whose fold is a pure linearization — constant 0-based inner bounds,
   every access stepping through the pair as one flat run, no body use of
   either variable — are merged, so a [lane][channel] tail becomes one
   long unit-stride segment.  The merge preserves iteration order
   exactly, so it is semantically invisible; entry corner checks keep the
   original per-level view.

   On top of the exec view sits the vector tier: when the generator
   marked the program lane-batchable ([p_vec_ok]) and the caller asked
   for [lanes] > 1, binding derives a vector tape from the scalar code —
   loads and stores specialized by their now-known innermost step into
   unit (blit), strided and broadcast forms, ALU opcodes re-read with
   lane-wise semantics over a vector register file.  A segment then runs
   [len / lanes] batches through the vector tape and the remainder
   through the scalar tape; each lane applies the same float operations
   in the same order as the scalar interpreter, so results stay
   bit-identical.  Programs with an accumulator or inexact store/load
   aliasing never vectorize (the generator's analysis), and a
   read-modify-write access with innermost step 0 falls back to scalar
   at bind time (lanes must touch distinct addresses).

   The iteration space of the [Parallel] tag prefix (levels [0..p_par-1])
   is linearized into a single fused range the caller may split across
   workers: ranges of the fused space never cut a sequential subnest, so
   accumulators and loop-carried store/load orders inside it are
   preserved exactly.  When the whole nest is the prefix, segments are
   additionally clipped to the caller's range (and the generator emitted
   no accumulator for that shape).

   Entry corner checks cover the whole box at once: every access
   dimension's min and max over all levels' ranges are computed from the
   coefficient signs, so a passing check makes every executed iteration
   in-bounds with no per-access checks inside the loop.  A failing check
   (or a zero-extent level: nothing to do) is reported to the caller, who
   falls back to the generic closure path — whose per-access checks then
   raise at exactly the faulting iteration. *)

module T = Tiramisu_codegen.Tape_gen

type baccess = {
  b_data : float array;
  b_base : int array -> int;  (* env -> flat offset with all nest ivs 0 *)
  b_steps : int array;        (* flat-offset step per unit of each level *)
}

(* One access dimension's whole-box bounds check. *)
type dimchk = {
  c_coeffs : int array;       (* per nest level *)
  c_rest : int array -> int;  (* env -> non-nest part of the index *)
  c_dim : int;
}

type t = {
  t_d : int;                   (* nest depth (original view) *)
  t_split : int;               (* fused split depth: max 1 p_par *)
  t_nregs : int;
  t_lits : (int * float) array;
  t_hoists : (int * int) array;     (* (reg, env slot) *)
  t_accum : (int * int * bool) option;
  t_code : int array;
  t_accs : baccess array;
  t_datas : float array array;      (* per access, aliases t_accs *)
  t_checks : dimchk array;
  t_lo : (int array -> int) array;  (* per original level (entry checks) *)
  t_hi : (int array -> int) array;
  t_promos : (int * int) array;
  (* --- execution view: trailing levels merged where linearizable --- *)
  t_xd : int;                       (* exec depth, <= t_d *)
  t_xlo : (int array -> int) array; (* per exec level *)
  t_xhi : (int array -> int) array;
  t_xivregs : int array;            (* per exec level *)
  t_xsteps : int array array;       (* per access, per exec level *)
  t_inner_steps : int array;        (* per access, step of the exec-inner level *)
  t_pieces : ((int array -> int) * (int array -> int)) array array;
    (* guarded-piece bounds, piece-major then level-major; [||] when the
       program's leaf was unguarded (no per-entry coverage check) *)
  (* --- vector tier --- *)
  t_lanes : int;                    (* 0 = scalar execution *)
  t_vcode : int array;              (* derived vector tape ([||] if scalar) *)
  t_vlivein : int array;
    (* registers the vector tape reads before writing (minus the batched
       iteration variable): the only ones whose scalar value must be
       broadcast into lanes at segment entry *)
  t_winc : int array;               (* per access, lanes * inner step *)
  t_iv_vec : bool;                  (* body reads the batched level's var *)
}

type state = {
  regs : float array;
  vregs : float array array;  (* lane registers, [|..|] when scalar *)
  cur : int array;     (* flat cursor per access *)
  abase : int array;   (* per-range base per access *)
  ivs : int array;     (* integer odometer per exec level *)
  los : int array;
  exts : int array;
  fstr : int array;    (* fused-space stride per split level *)
}

let affine_fn ~slot ((ts, c) : T.affine) : int array -> int =
  match ts with
  | [] -> fun _ -> c
  | [ (v, a) ] ->
      let s = slot v in
      fun env -> (a * env.(s)) + c
  | ts ->
      let pairs = Array.of_list (List.map (fun (v, a) -> (slot v, a)) ts) in
      fun env ->
        let x = ref c in
        Array.iter (fun (s, a) -> x := !x + (a * env.(s))) pairs;
        !x

(* Bound-expression compiler: euclidean floordiv/mod, matching the
   interpreter and the closure path exactly. *)
let rec bexpr_fn ~slot (e : T.bexpr) : int array -> int =
  match e with
  | T.Baff a -> affine_fn ~slot a
  | T.Badd (x, y) ->
      let f = bexpr_fn ~slot x and g = bexpr_fn ~slot y in
      fun env -> f env + g env
  | T.Bsub (x, y) ->
      let f = bexpr_fn ~slot x and g = bexpr_fn ~slot y in
      fun env -> f env - g env
  | T.Bscale (x, k) ->
      let f = bexpr_fn ~slot x in
      fun env -> k * f env
  | T.Bmin (x, y) ->
      let f = bexpr_fn ~slot x and g = bexpr_fn ~slot y in
      fun env -> min (f env) (g env)
  | T.Bmax (x, y) ->
      let f = bexpr_fn ~slot x and g = bexpr_fn ~slot y in
      fun env -> max (f env) (g env)
  | T.Bfdiv (x, k) ->
      let f = bexpr_fn ~slot x in
      fun env -> Tiramisu_support.Ints.fdiv (f env) k
  | T.Bmod (x, k) ->
      let f = bexpr_fn ~slot x in
      fun env -> Tiramisu_support.Ints.emod (f env) k

(* Constant bounds of a level, when statically known. *)
let const_bounds (lv : T.level) =
  match (lv.T.lv_lo, lv.T.lv_hi) with
  | T.Baff ([], lo), T.Baff ([], hi) -> Some (lo, hi)
  | _ -> None

(* [bind p ~buf ~slot] resolves buffer names and free names; [None] when
   a buffer is unknown or its rank does not match the access.  [lanes]
   asks for vector execution; it takes effect only when the program is
   lane-batchable (see the header comment). *)
let bind ?(lanes = 0) ~(buf : string -> Buffers.t option)
    ~(slot : string -> int) (p : T.program) : t option =
  let d = Array.length p.T.p_levels in
  let nest_vars =
    Array.to_list (Array.map (fun l -> l.T.lv_var) p.T.p_levels)
  in
  let level_of v =
    let rec go l = if p.T.p_levels.(l).T.lv_var = v then l else go (l + 1) in
    go 0
  in
  let exception Unbound in
  try
    let checks = ref [] in
    let accs =
      Array.map
        (fun (a : T.access) ->
          let b = match buf a.T.ac_buf with Some b -> b | None -> raise Unbound in
          let dims = b.Buffers.dims in
          if Array.length dims <> Array.length a.T.ac_idx then raise Unbound;
          let strides = Buffers.strides_of dims in
          let steps = Array.make d 0 in
          (* non-nest part of the flat offset, merged across dimensions *)
          let rest_terms : (string, int) Hashtbl.t = Hashtbl.create 4 in
          let rest_const = ref 0 in
          Array.iteri
            (fun k (ts, c) ->
              let stride = strides.(k) in
              let dim_coeffs = Array.make d 0 in
              let dim_rest = ref [] in
              List.iter
                (fun (v, coeff) ->
                  if List.mem v nest_vars then begin
                    let l = level_of v in
                    steps.(l) <- steps.(l) + (coeff * stride);
                    dim_coeffs.(l) <- dim_coeffs.(l) + coeff
                  end
                  else begin
                    let prev =
                      Option.value ~default:0 (Hashtbl.find_opt rest_terms v)
                    in
                    Hashtbl.replace rest_terms v (prev + (coeff * stride));
                    dim_rest := (v, coeff) :: !dim_rest
                  end)
                ts;
              rest_const := !rest_const + (c * stride);
              checks :=
                { c_coeffs = dim_coeffs;
                  c_rest = affine_fn ~slot (!dim_rest, c);
                  c_dim = dims.(k) }
                :: !checks)
            a.T.ac_idx;
          let rest =
            Hashtbl.fold (fun v c acc -> (v, c) :: acc) rest_terms []
          in
          { b_data = b.Buffers.data;
            b_base = affine_fn ~slot (rest, !rest_const);
            b_steps = steps })
        p.T.p_accesses
    in
    let nacc = Array.length accs in
    let split = max 1 p.T.p_par in
    let lo = Array.map (fun l -> bexpr_fn ~slot l.T.lv_lo) p.T.p_levels in
    let hi = Array.map (fun l -> bexpr_fn ~slot l.T.lv_hi) p.T.p_levels in
    (* execution view: greedily fold the innermost level into its parent
       while the fold is a pure linearization.  Conditions: the inner
       level has constant bounds [0..e-1]; the pair is outside the fused
       split space; no accumulator; the body reads neither variable's
       register; every access steps through the pair as one flat run
       (outer step = e * inner step, which also keeps promoted loads
       segment-invariant). *)
    let xd = ref d in
    let xlo = Array.copy lo and xhi = Array.copy hi in
    let xiv = Array.copy p.T.p_ivregs in
    let xsteps = Array.map (fun a -> Array.copy a.b_steps) accs in
    let inner_c = ref (const_bounds p.T.p_levels.(d - 1)) in
    let stop = ref (p.T.p_accum <> None || p.T.p_ivuse.(d - 1)) in
    while (not !stop) && !xd >= 2 do
      let li = !xd - 2 in
      match !inner_c with
      | Some (0, hi_i)
        when hi_i >= 0 && li >= split && not p.T.p_ivuse.(li) ->
          let e = hi_i + 1 in
          let ok = ref true in
          for a = 0 to nacc - 1 do
            if xsteps.(a).(li) <> e * xsteps.(a).(li + 1) then ok := false
          done;
          if !ok then begin
            let lo_o = xlo.(li) and hi_o = xhi.(li) in
            xlo.(li) <- (fun env -> lo_o env * e);
            xhi.(li) <- (fun env -> (hi_o env * e) + e - 1);
            for a = 0 to nacc - 1 do
              xsteps.(a).(li) <- xsteps.(a).(li + 1)
            done;
            xiv.(li) <- xiv.(li + 1);
            inner_c :=
              (match const_bounds p.T.p_levels.(li) with
              | Some (clo, chi) -> Some (clo * e, (chi * e) + e - 1)
              | None -> None);
            decr xd
          end
          else stop := true
      | _ -> stop := true
    done;
    let xd = !xd in
    let inner_steps = Array.init nacc (fun a -> xsteps.(a).(xd - 1)) in
    (* vector tier: effective only when the program is lane-batchable and
       every read-modify-write access has lanes on distinct addresses *)
    let lanes_eff =
      if
        lanes > 1 && p.T.p_vec_ok
        && Array.for_all (fun i -> inner_steps.(i) <> 0) p.T.p_rmw
      then lanes
      else 0
    in
    let vcode =
      if lanes_eff = 0 then [||]
      else begin
        let c = Array.copy p.T.p_code in
        let n = Array.length c / 4 in
        for k = 0 to n - 1 do
          let op = c.(4 * k) and a = c.((4 * k) + 2) in
          if op = T.op_load then begin
            let s = inner_steps.(a) in
            if s = 0 then c.(4 * k) <- T.op_vload_bcast
            else if s = 1 then c.(4 * k) <- T.op_vload_unit
            else begin
              c.(4 * k) <- T.op_vload_strided;
              c.((4 * k) + 3) <- s
            end
          end
          else if op = T.op_store then begin
            let s = inner_steps.(a) in
            if s = 1 then c.(4 * k) <- T.op_vstore_unit
            else begin
              c.(4 * k) <- T.op_vstore_strided;
              c.((4 * k) + 1) <- s
            end
          end
        done;
        c
      end
    in
    let vlivein =
      if lanes_eff = 0 then [||]
      else begin
        (* live-in scan over the derived vector tape: a register read
           before any write needs its scalar value broadcast at segment
           entry; one written first (vector loads, ALU results) does not.
           The batched level's variable is excluded — when the body reads
           it, the batch loop fills its lanes itself. *)
        let ivd = xiv.(xd - 1) in
        let nregs = p.T.p_nregs in
        let written = Array.make nregs false in
        let livein = Array.make nregs false in
        let read r =
          if r <> ivd && not written.(r) then livein.(r) <- true
        in
        let n = Array.length vcode / 4 in
        for k = 0 to n - 1 do
          let op = vcode.(4 * k) in
          let dst = vcode.((4 * k) + 1)
          and a = vcode.((4 * k) + 2)
          and b = vcode.((4 * k) + 3) in
          if
            op = T.op_vload_unit || op = T.op_vload_strided
            || op = T.op_vload_bcast
          then written.(dst) <- true
          else if op = T.op_vstore_unit || op = T.op_vstore_strided then
            read b
          else if op = T.op_fma then begin
            read dst;
            read a;
            read b;
            written.(dst) <- true
          end
          else if
            op = T.op_mov
            || (op >= T.op_neg && op <= T.op_floor)
            || op = T.op_trunc
          then begin
            read a;
            written.(dst) <- true
          end
          else begin
            read a;
            read b;
            written.(dst) <- true
          end
        done;
        let out = ref [] in
        for r = nregs - 1 downto 0 do
          if livein.(r) then out := r :: !out
        done;
        Array.of_list !out
      end
    in
    Some
      { t_d = d;
        t_split = split;
        t_nregs = p.T.p_nregs;
        t_lits = p.T.p_lits;
        t_hoists = Array.map (fun (r, v) -> (r, slot v)) p.T.p_hoists;
        t_accum = p.T.p_accum;
        t_code = p.T.p_code;
        t_accs = accs;
        t_datas = Array.map (fun a -> a.b_data) accs;
        t_checks = Array.of_list (List.rev !checks);
        t_lo = lo;
        t_hi = hi;
        t_promos = p.T.p_promos;
        t_xd = xd;
        t_xlo = Array.sub xlo 0 xd;
        t_xhi = Array.sub xhi 0 xd;
        t_xivregs = Array.sub xiv 0 xd;
        t_xsteps = Array.map (fun s -> Array.sub s 0 xd) xsteps;
        t_inner_steps = inner_steps;
        t_pieces =
          Array.map
            (Array.map (fun (plo, phi) ->
                 (bexpr_fn ~slot plo, bexpr_fn ~slot phi)))
            p.T.p_pieces;
        t_lanes = lanes_eff;
        t_vcode = vcode;
        t_vlivein = vlivein;
        t_winc = Array.map (fun s -> lanes_eff * s) inner_steps;
        t_iv_vec = xd = d && p.T.p_ivuse.(d - 1) }
  with Unbound -> None

let vectorized t = t.t_lanes > 1
let lanes t = t.t_lanes

let new_state t =
  let st =
    { regs = Array.make t.t_nregs 0.0;
      vregs =
        (if t.t_lanes > 1 then
           Array.init t.t_nregs (fun _ -> Array.make t.t_lanes 0.0)
         else [||]);
      cur = Array.make (Array.length t.t_accs) 0;
      abase = Array.make (Array.length t.t_accs) 0;
      ivs = Array.make t.t_d 0;
      los = Array.make t.t_d 0;
      exts = Array.make t.t_d 0;
      fstr = Array.make t.t_split 1 }
  in
  Array.iter (fun (r, v) -> st.regs.(r) <- v) t.t_lits;
  st

(* A program merged from guarded pieces iterates the union box of the
   piece bounds; that equals the union of the pieces only when, at this
   env, the non-empty pieces agree on every level but at most one and
   their intervals on that level tile the box contiguously (overlap is
   fine — the generator required identical, idempotent piece bodies).
   Any other shape reports [false] and the caller takes the closure
   fallback, which replays the original guarded IR exactly. *)
let pieces_cover t env (lo : int array) (hi : int array) =
  let np = Array.length t.t_pieces in
  if np = 0 then true
  else begin
    let d = t.t_d in
    let boxes = ref [] in
    for k = np - 1 downto 0 do
      let pb = t.t_pieces.(k) in
      let plo = Array.init d (fun l -> fst pb.(l) env) in
      let phi = Array.init d (fun l -> snd pb.(l) env) in
      let empty = ref false in
      for l = 0 to d - 1 do
        if phi.(l) < plo.(l) then empty := true
      done;
      if not !empty then boxes := (plo, phi) :: !boxes
    done;
    match !boxes with
    | [] -> false (* program box is non-empty but no piece covers it *)
    | (l0, h0) :: rest ->
        let varying = ref (-1) and ok = ref true in
        List.iter
          (fun (l1, h1) ->
            for l = 0 to d - 1 do
              if l1.(l) <> l0.(l) || h1.(l) <> h0.(l) then
                if !varying = -1 || !varying = l then varying := l
                else ok := false
            done)
          rest;
        (* levels the pieces agree on must coincide with the program box
           (an empty piece may have widened the min/max fold) *)
        for l = 0 to d - 1 do
          if l <> !varying && (l0.(l) <> lo.(l) || h0.(l) <> hi.(l)) then
            ok := false
        done;
        if not !ok then false
        else if !varying = -1 then true
        else begin
          let lv = !varying in
          let iv =
            List.sort compare
              (List.map (fun (l1, h1) -> (l1.(lv), h1.(lv))) !boxes)
          in
          match iv with
          | [] -> false
          | (a0, b0) :: rest ->
              a0 = lo.(lv)
              &&
              let cover = ref b0 and good = ref true in
              List.iter
                (fun (a, b) ->
                  if a > !cover + 1 then good := false
                  else if b > !cover then cover := b)
                rest;
              !good && !cover = hi.(lv)
        end
  end

(* [enter t env] evaluates bounds and runs the whole-box corner checks:
   [-1] when a check fails (caller takes the closure fallback), otherwise
   the size of the fused split space (0 when any level is empty: nothing
   to run, vacuously in bounds).  Checks run against the original
   per-level view — the exec view merge is order-preserving, so a passing
   check covers it too. *)
let enter t env =
  let d = t.t_d in
  let lo = Array.init d (fun l -> t.t_lo.(l) env) in
  let hi = Array.init d (fun l -> t.t_hi.(l) env) in
  let empty = ref false in
  for l = 0 to d - 1 do
    if hi.(l) < lo.(l) then empty := true
  done;
  if !empty then 0
  else begin
    let ok = ref true in
    let nchk = Array.length t.t_checks in
    let i = ref 0 in
    while !ok && !i < nchk do
      let c = t.t_checks.(!i) in
      let mn = ref (c.c_rest env) in
      let mx = ref !mn in
      for l = 0 to d - 1 do
        let a = c.c_coeffs.(l) in
        if a >= 0 then begin
          mn := !mn + (a * lo.(l));
          mx := !mx + (a * hi.(l))
        end
        else begin
          mn := !mn + (a * hi.(l));
          mx := !mx + (a * lo.(l))
        end
      done;
      ok := !mn >= 0 && !mx < c.c_dim;
      incr i
    done;
    if not !ok then -1
    else if not (pieces_cover t env lo hi) then -1
    else begin
      let total = ref 1 in
      for l = 0 to t.t_split - 1 do
        total := !total * (hi.(l) - lo.(l) + 1)
      done;
      !total
    end
  end

(* The instruction interpreter.  Opcode numbering mirrors
   {!Tiramisu_codegen.Tape_gen}; [fma] deliberately rounds twice so
   results stay bit-identical to the reference interpreter.

   Both interpreters run unchecked array accesses: [enter]'s whole-box
   corner checks prove every data cursor the segment will touch is in
   bounds before a single instruction runs, register/cursor indices are
   validated against the register-file and access counts at bind time,
   and the tape length is a multiple of 4 by construction.  Re-checking
   each access in the hot loop would only re-prove what [enter] already
   established. *)
let[@inline] exec_code (code : int array) (st : state)
    (datas : float array array) =
  let regs = st.regs and cur = st.cur in
  let n = Array.length code in
  let pc = ref 0 in
  while !pc < n do
    let i = !pc in
    let dst = Array.unsafe_get code (i + 1)
    and a = Array.unsafe_get code (i + 2)
    and b = Array.unsafe_get code (i + 3) in
    (match Array.unsafe_get code i with
    | 0 (* load *) ->
        let src = Array.unsafe_get datas a in
        Array.unsafe_set regs dst
          (Array.unsafe_get src (Array.unsafe_get cur a))
    | 1 (* store *) ->
        let d_ = Array.unsafe_get datas a in
        Array.unsafe_set d_ (Array.unsafe_get cur a) (Array.unsafe_get regs b)
    | 2 (* mov *) -> Array.unsafe_set regs dst (Array.unsafe_get regs a)
    | 3 (* add *) ->
        Array.unsafe_set regs dst
          (Array.unsafe_get regs a +. Array.unsafe_get regs b)
    | 4 (* sub *) ->
        Array.unsafe_set regs dst
          (Array.unsafe_get regs a -. Array.unsafe_get regs b)
    | 5 (* mul *) ->
        Array.unsafe_set regs dst
          (Array.unsafe_get regs a *. Array.unsafe_get regs b)
    | 6 (* div *) ->
        Array.unsafe_set regs dst
          (Array.unsafe_get regs a /. Array.unsafe_get regs b)
    | 7 (* min *) ->
        Array.unsafe_set regs dst
          (Float.min (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | 8 (* max *) ->
        Array.unsafe_set regs dst
          (Float.max (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | 9 (* fma *) ->
        Array.unsafe_set regs dst
          (Array.unsafe_get regs dst
          +. (Array.unsafe_get regs a *. Array.unsafe_get regs b))
    | 10 (* neg *) -> Array.unsafe_set regs dst (-.Array.unsafe_get regs a)
    | 11 (* abs *) ->
        Array.unsafe_set regs dst (Float.abs (Array.unsafe_get regs a))
    | 12 (* sqrt *) ->
        Array.unsafe_set regs dst (sqrt (Array.unsafe_get regs a))
    | 13 (* exp *) -> Array.unsafe_set regs dst (exp (Array.unsafe_get regs a))
    | 14 (* log *) -> Array.unsafe_set regs dst (log (Array.unsafe_get regs a))
    | 15 (* sin *) -> Array.unsafe_set regs dst (sin (Array.unsafe_get regs a))
    | 16 (* cos *) -> Array.unsafe_set regs dst (cos (Array.unsafe_get regs a))
    | 17 (* floor *) ->
        Array.unsafe_set regs dst (Float.floor (Array.unsafe_get regs a))
    | 18 (* pow *) ->
        Array.unsafe_set regs dst
          (Float.pow (Array.unsafe_get regs a) (Array.unsafe_get regs b))
    | 19 (* fdivi *) ->
        Array.unsafe_set regs dst
          (Float.of_int
             (Tiramisu_support.Ints.fdiv
                (int_of_float (Array.unsafe_get regs a))
                (int_of_float (Array.unsafe_get regs b))))
    | 20 (* modi *) ->
        Array.unsafe_set regs dst
          (Float.of_int
             (Tiramisu_support.Ints.emod
                (int_of_float (Array.unsafe_get regs a))
                (int_of_float (Array.unsafe_get regs b))))
    | 21 (* trunc *) ->
        Array.unsafe_set regs dst
          (Float.of_int (int_of_float (Array.unsafe_get regs a)))
    | _ -> assert false);
    pc := i + 4
  done

(* The vector interpreter: one dispatch covers [w] lanes.  ALU opcodes
   keep their scalar numbering (lane-wise semantics); loads and stores
   were specialized at bind time into unit (blit), strided and broadcast
   forms.  Each lane performs the same float operations in the same
   order as {!exec_code}, so results are bit-identical. *)
let[@inline] exec_code_vec (code : int array) (st : state)
    (datas : float array array) (w : int) =
  let vr = st.vregs and cur = st.cur in
  let n = Array.length code in
  let pc = ref 0 in
  while !pc < n do
    let i = !pc in
    let dst = code.(i + 1) and a = code.(i + 2) and b = code.(i + 3) in
    (match Array.unsafe_get code i with
    | 22 (* vload.u *) -> Array.blit datas.(a) cur.(a) vr.(dst) 0 w
    | 23 (* vload.s *) ->
        let d_ = vr.(dst) and src = datas.(a) in
        let c = cur.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (Array.unsafe_get src (c + (j * b)))
        done
    | 24 (* vbcast *) -> Array.fill vr.(dst) 0 w datas.(a).(cur.(a))
    | 25 (* vstore.u *) -> Array.blit vr.(b) 0 datas.(a) cur.(a) w
    | 26 (* vstore.s *) ->
        let s = vr.(b) and d_ = datas.(a) in
        let c = cur.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ (c + (j * dst)) (Array.unsafe_get s j)
        done
    | 2 (* vmov *) -> Array.blit vr.(a) 0 vr.(dst) 0 w
    | 3 (* vadd *) ->
        let d_ = vr.(dst) and x = vr.(a) and y = vr.(b) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (Array.unsafe_get x j +. Array.unsafe_get y j)
        done
    | 4 (* vsub *) ->
        let d_ = vr.(dst) and x = vr.(a) and y = vr.(b) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (Array.unsafe_get x j -. Array.unsafe_get y j)
        done
    | 5 (* vmul *) ->
        let d_ = vr.(dst) and x = vr.(a) and y = vr.(b) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (Array.unsafe_get x j *. Array.unsafe_get y j)
        done
    | 6 (* vdiv *) ->
        let d_ = vr.(dst) and x = vr.(a) and y = vr.(b) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (Array.unsafe_get x j /. Array.unsafe_get y j)
        done
    | 7 (* vmin *) ->
        let d_ = vr.(dst) and x = vr.(a) and y = vr.(b) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j
            (Float.min (Array.unsafe_get x j) (Array.unsafe_get y j))
        done
    | 8 (* vmax *) ->
        let d_ = vr.(dst) and x = vr.(a) and y = vr.(b) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j
            (Float.max (Array.unsafe_get x j) (Array.unsafe_get y j))
        done
    | 9 (* vfma *) ->
        let d_ = vr.(dst) and x = vr.(a) and y = vr.(b) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j
            (Array.unsafe_get d_ j
            +. (Array.unsafe_get x j *. Array.unsafe_get y j))
        done
    | 10 (* vneg *) ->
        let d_ = vr.(dst) and x = vr.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (-.Array.unsafe_get x j)
        done
    | 11 (* vabs *) ->
        let d_ = vr.(dst) and x = vr.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (Float.abs (Array.unsafe_get x j))
        done
    | 12 (* vsqrt *) ->
        let d_ = vr.(dst) and x = vr.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (sqrt (Array.unsafe_get x j))
        done
    | 13 (* vexp *) ->
        let d_ = vr.(dst) and x = vr.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (exp (Array.unsafe_get x j))
        done
    | 14 (* vlog *) ->
        let d_ = vr.(dst) and x = vr.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (log (Array.unsafe_get x j))
        done
    | 15 (* vsin *) ->
        let d_ = vr.(dst) and x = vr.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (sin (Array.unsafe_get x j))
        done
    | 16 (* vcos *) ->
        let d_ = vr.(dst) and x = vr.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (cos (Array.unsafe_get x j))
        done
    | 17 (* vfloor *) ->
        let d_ = vr.(dst) and x = vr.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (Float.floor (Array.unsafe_get x j))
        done
    | 18 (* vpow *) ->
        let d_ = vr.(dst) and x = vr.(a) and y = vr.(b) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j
            (Float.pow (Array.unsafe_get x j) (Array.unsafe_get y j))
        done
    | 19 (* vfdivi *) ->
        let d_ = vr.(dst) and x = vr.(a) and y = vr.(b) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j
            (Float.of_int
               (Tiramisu_support.Ints.fdiv
                  (int_of_float (Array.unsafe_get x j))
                  (int_of_float (Array.unsafe_get y j))))
        done
    | 20 (* vmodi *) ->
        let d_ = vr.(dst) and x = vr.(a) and y = vr.(b) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j
            (Float.of_int
               (Tiramisu_support.Ints.emod
                  (int_of_float (Array.unsafe_get x j))
                  (int_of_float (Array.unsafe_get y j))))
        done
    | 21 (* vtrunc *) ->
        let d_ = vr.(dst) and x = vr.(a) in
        for j = 0 to w - 1 do
          Array.unsafe_set d_ j (Float.of_int (int_of_float (Array.unsafe_get x j)))
        done
    | _ -> assert false);
    pc := i + 4
  done

(* One segment: the outer odometer [st.ivs] is in position, run [len]
   iterations of the exec-inner level starting at its current value. *)
let run_segment t st len =
  let xd = t.t_xd in
  let nacc = Array.length t.t_accs in
  let datas = t.t_datas in
  (* cursors from the per-range base and the odometer *)
  for a = 0 to nacc - 1 do
    let steps = t.t_xsteps.(a) in
    let c = ref st.abase.(a) in
    for l = 0 to xd - 1 do
      c := !c + (steps.(l) * st.ivs.(l))
    done;
    st.cur.(a) <- !c
  done;
  (* float iteration-variable registers *)
  for l = 0 to xd - 1 do
    st.regs.(t.t_xivregs.(l)) <- float_of_int st.ivs.(l)
  done;
  (* segment prologue: promoted loads, accumulator init *)
  Array.iter
    (fun (r, a) -> st.regs.(r) <- datas.(a).(st.cur.(a)))
    t.t_promos;
  (match t.t_accum with
  | Some (r, a, true) -> st.regs.(r) <- datas.(a).(st.cur.(a))
  | Some (_, _, false) | None -> ());
  let code = t.t_code in
  let inner = t.t_inner_steps in
  let ivd = t.t_xivregs.(xd - 1) in
  let cur = st.cur and regs = st.regs in
  let w = t.t_lanes in
  let rest =
    if w > 1 && len >= w then begin
      (* lane batches through the vector tape; the scalar register file
         stays authoritative for the remainder loop below.  Only live-in
         registers broadcast — the rest are written before read. *)
      let vr = st.vregs in
      let lv = t.t_vlivein in
      for q = 0 to Array.length lv - 1 do
        let r = lv.(q) in
        Array.fill vr.(r) 0 w regs.(r)
      done;
      let vcode = t.t_vcode and winc = t.t_winc in
      let ivv = if t.t_iv_vec then vr.(ivd) else [||] in
      let nb = len / w in
      for _ = 1 to nb do
        if t.t_iv_vec then begin
          let b0 = regs.(ivd) in
          for j = 0 to w - 1 do
            ivv.(j) <- b0 +. float_of_int j
          done
        end;
        exec_code_vec vcode st datas w;
        for a = 0 to nacc - 1 do
          cur.(a) <- cur.(a) + winc.(a)
        done;
        regs.(ivd) <- regs.(ivd) +. float_of_int w
      done;
      len - (nb * w)
    end
    else len
  in
  (* the scalar hot loop (whole segment, or the masked-out remainder) *)
  for _ = 1 to rest do
    exec_code code st datas;
    for a = 0 to nacc - 1 do
      cur.(a) <- cur.(a) + inner.(a)
    done;
    regs.(ivd) <- regs.(ivd) +. 1.0
  done;
  (* epilogue: accumulator writeback (its cursor has inner step 0) *)
  match t.t_accum with
  | Some (r, a, _) -> datas.(a).(st.cur.(a)) <- st.regs.(r)
  | None -> ()

(* [run_range t st env f_lo f_hi] executes the fused-range slice
   [f_lo..f_hi] (inclusive) of the split space on [st].  The caller
   guarantees [enter] returned a total > f_hi.  Iteration runs over the
   exec view; its split prefix coincides with the original one. *)
let run_range t st env f_lo f_hi =
  if f_hi >= f_lo then begin
    let d = t.t_xd and p = t.t_split in
    for l = 0 to d - 1 do
      st.los.(l) <- t.t_xlo.(l) env;
      st.exts.(l) <- t.t_xhi.(l) env - st.los.(l) + 1
    done;
    (* fused-space strides over the split levels *)
    st.fstr.(p - 1) <- 1;
    for l = p - 2 downto 0 do
      st.fstr.(l) <- st.fstr.(l + 1) * st.exts.(l + 1)
    done;
    Array.iter
      (fun (r, s) -> st.regs.(r) <- float_of_int env.(s))
      t.t_hoists;
    for a = 0 to Array.length t.t_accs - 1 do
      st.abase.(a) <- t.t_accs.(a).b_base env
    done;
    let decode f =
      for l = 0 to p - 1 do
        st.ivs.(l) <- st.los.(l) + (f / st.fstr.(l) mod st.exts.(l))
      done
    in
    if p = d then begin
      (* the whole nest is the split space: segments are innermost runs
         clipped to the caller's slice *)
      let nlast = st.exts.(d - 1) in
      let f = ref f_lo in
      while !f <= f_hi do
        decode !f;
        let off = st.ivs.(d - 1) - st.los.(d - 1) in
        let len = min (nlast - off) (f_hi - !f + 1) in
        run_segment t st len;
        f := !f + len
      done
    end
    else begin
      (* each fused point owns a full sequential subnest *)
      let nonempty = ref true in
      for l = p to d - 1 do
        if st.exts.(l) <= 0 then nonempty := false
      done;
      if !nonempty then
        for f = f_lo to f_hi do
          decode f;
          for l = p to d - 1 do
            st.ivs.(l) <- st.los.(l)
          done;
          (* odometer over the middle levels; the innermost level is one
             whole segment per middle position *)
          let running = ref true in
          while !running do
            run_segment t st st.exts.(d - 1);
            let l = ref (d - 2) in
            let carry = ref true in
            while !carry && !l >= p do
              st.ivs.(!l) <- st.ivs.(!l) + 1;
              if st.ivs.(!l) - st.los.(!l) < st.exts.(!l) then carry := false
              else begin
                st.ivs.(!l) <- st.los.(!l);
                decr l
              end
            done;
            if !carry then running := false
          done
        done
    end
  end
