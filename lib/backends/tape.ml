(* The flat-tape executor: binds an abstract {!Tiramisu_codegen.Tape_gen}
   program against concrete buffers and runs it with no closures, no env
   lookups and no allocation in the hot loop.

   Binding strength-reduces the addressing once: per access, the affine
   index of every dimension folds with the buffer's strides into a single
   flat base (affine over env slots of names outside the nest) plus one
   integer step per nest level.  Execution walks the nest as an odometer
   over "segments" — maximal runs of the innermost variable — and per
   segment recomputes each cursor from the base and the current outer
   indices, then runs the instruction tape once per iteration with
   constant cursor bumps.

   The iteration space of the [Parallel] tag prefix (levels [0..p_par-1])
   is linearized into a single fused range the caller may split across
   workers: ranges of the fused space never cut a sequential subnest, so
   accumulators and loop-carried store/load orders inside it are
   preserved exactly.  When the whole nest is the prefix, segments are
   additionally clipped to the caller's range (and the generator emitted
   no accumulator for that shape).

   Entry corner checks cover the whole box at once: every access
   dimension's min and max over all levels' ranges are computed from the
   coefficient signs, so a passing check makes every executed iteration
   in-bounds with no per-access checks inside the loop.  A failing check
   (or a zero-extent level: nothing to do) is reported to the caller, who
   falls back to the generic closure path — whose per-access checks then
   raise at exactly the faulting iteration. *)

module T = Tiramisu_codegen.Tape_gen

type baccess = {
  b_data : float array;
  b_base : int array -> int;  (* env -> flat offset with all nest ivs 0 *)
  b_steps : int array;        (* flat-offset step per unit of each level *)
}

(* One access dimension's whole-box bounds check. *)
type dimchk = {
  c_coeffs : int array;       (* per nest level *)
  c_rest : int array -> int;  (* env -> non-nest part of the index *)
  c_dim : int;
}

type t = {
  t_d : int;                   (* nest depth *)
  t_split : int;               (* fused split depth: max 1 p_par *)
  t_nregs : int;
  t_lits : (int * float) array;
  t_hoists : (int * int) array;     (* (reg, env slot) *)
  t_ivregs : int array;
  t_promos : (int * int) array;
  t_accum : (int * int * bool) option;
  t_code : int array;
  t_accs : baccess array;
  t_datas : float array array;      (* per access, aliases t_accs *)
  t_inner_steps : int array;        (* per access, step of the last level *)
  t_checks : dimchk array;
  t_lo : (int array -> int) array;  (* per level *)
  t_hi : (int array -> int) array;
}

type state = {
  regs : float array;
  cur : int array;     (* flat cursor per access *)
  abase : int array;   (* per-range base per access *)
  ivs : int array;     (* integer odometer per level *)
  los : int array;
  exts : int array;
  fstr : int array;    (* fused-space stride per split level *)
}

let affine_fn ~slot ((ts, c) : T.affine) : int array -> int =
  match ts with
  | [] -> fun _ -> c
  | [ (v, a) ] ->
      let s = slot v in
      fun env -> (a * env.(s)) + c
  | ts ->
      let pairs = Array.of_list (List.map (fun (v, a) -> (slot v, a)) ts) in
      fun env ->
        let x = ref c in
        Array.iter (fun (s, a) -> x := !x + (a * env.(s))) pairs;
        !x

(* [bind p ~buf ~slot] resolves buffer names and free names; [None] when
   a buffer is unknown or its rank does not match the access. *)
let bind ~(buf : string -> Buffers.t option) ~(slot : string -> int)
    (p : T.program) : t option =
  let d = Array.length p.T.p_levels in
  let nest_vars =
    Array.to_list (Array.map (fun l -> l.T.lv_var) p.T.p_levels)
  in
  let level_of v =
    let rec go l = if p.T.p_levels.(l).T.lv_var = v then l else go (l + 1) in
    go 0
  in
  let exception Unbound in
  try
    let checks = ref [] in
    let accs =
      Array.map
        (fun (a : T.access) ->
          let b = match buf a.T.ac_buf with Some b -> b | None -> raise Unbound in
          let dims = b.Buffers.dims in
          if Array.length dims <> Array.length a.T.ac_idx then raise Unbound;
          let strides = Buffers.strides_of dims in
          let steps = Array.make d 0 in
          (* non-nest part of the flat offset, merged across dimensions *)
          let rest_terms : (string, int) Hashtbl.t = Hashtbl.create 4 in
          let rest_const = ref 0 in
          Array.iteri
            (fun k (ts, c) ->
              let stride = strides.(k) in
              let dim_coeffs = Array.make d 0 in
              let dim_rest = ref [] in
              List.iter
                (fun (v, coeff) ->
                  if List.mem v nest_vars then begin
                    let l = level_of v in
                    steps.(l) <- steps.(l) + (coeff * stride);
                    dim_coeffs.(l) <- dim_coeffs.(l) + coeff
                  end
                  else begin
                    let prev =
                      Option.value ~default:0 (Hashtbl.find_opt rest_terms v)
                    in
                    Hashtbl.replace rest_terms v (prev + (coeff * stride));
                    dim_rest := (v, coeff) :: !dim_rest
                  end)
                ts;
              rest_const := !rest_const + (c * stride);
              checks :=
                { c_coeffs = dim_coeffs;
                  c_rest = affine_fn ~slot (!dim_rest, c);
                  c_dim = dims.(k) }
                :: !checks)
            a.T.ac_idx;
          let rest =
            Hashtbl.fold (fun v c acc -> (v, c) :: acc) rest_terms []
          in
          { b_data = b.Buffers.data;
            b_base = affine_fn ~slot (rest, !rest_const);
            b_steps = steps })
        p.T.p_accesses
    in
    Some
      { t_d = d;
        t_split = max 1 p.T.p_par;
        t_nregs = p.T.p_nregs;
        t_lits = p.T.p_lits;
        t_hoists = Array.map (fun (r, v) -> (r, slot v)) p.T.p_hoists;
        t_ivregs = p.T.p_ivregs;
        t_promos = p.T.p_promos;
        t_accum = p.T.p_accum;
        t_code = p.T.p_code;
        t_accs = accs;
        t_datas = Array.map (fun a -> a.b_data) accs;
        t_inner_steps = Array.map (fun a -> a.b_steps.(d - 1)) accs;
        t_checks = Array.of_list (List.rev !checks);
        t_lo = Array.map (fun l -> affine_fn ~slot l.T.lv_lo) p.T.p_levels;
        t_hi = Array.map (fun l -> affine_fn ~slot l.T.lv_hi) p.T.p_levels }
  with Unbound -> None

let new_state t =
  let st =
    { regs = Array.make t.t_nregs 0.0;
      cur = Array.make (Array.length t.t_accs) 0;
      abase = Array.make (Array.length t.t_accs) 0;
      ivs = Array.make t.t_d 0;
      los = Array.make t.t_d 0;
      exts = Array.make t.t_d 0;
      fstr = Array.make t.t_split 1 }
  in
  Array.iter (fun (r, v) -> st.regs.(r) <- v) t.t_lits;
  st

(* [enter t env] evaluates bounds and runs the whole-box corner checks:
   [-1] when a check fails (caller takes the closure fallback), otherwise
   the size of the fused split space (0 when any level is empty: nothing
   to run, vacuously in bounds). *)
let enter t env =
  let d = t.t_d in
  let lo = Array.init d (fun l -> t.t_lo.(l) env) in
  let hi = Array.init d (fun l -> t.t_hi.(l) env) in
  let empty = ref false in
  for l = 0 to d - 1 do
    if hi.(l) < lo.(l) then empty := true
  done;
  if !empty then 0
  else begin
    let ok = ref true in
    let nchk = Array.length t.t_checks in
    let i = ref 0 in
    while !ok && !i < nchk do
      let c = t.t_checks.(!i) in
      let mn = ref (c.c_rest env) in
      let mx = ref !mn in
      for l = 0 to d - 1 do
        let a = c.c_coeffs.(l) in
        if a >= 0 then begin
          mn := !mn + (a * lo.(l));
          mx := !mx + (a * hi.(l))
        end
        else begin
          mn := !mn + (a * hi.(l));
          mx := !mx + (a * lo.(l))
        end
      done;
      ok := !mn >= 0 && !mx < c.c_dim;
      incr i
    done;
    if not !ok then -1
    else begin
      let total = ref 1 in
      for l = 0 to t.t_split - 1 do
        total := !total * (hi.(l) - lo.(l) + 1)
      done;
      !total
    end
  end

(* The instruction interpreter.  Opcode numbering mirrors
   {!Tiramisu_codegen.Tape_gen}; [fma] deliberately rounds twice so
   results stay bit-identical to the reference interpreter. *)
let[@inline] exec_code (code : int array) (st : state)
    (datas : float array array) =
  let regs = st.regs and cur = st.cur in
  let n = Array.length code in
  let pc = ref 0 in
  while !pc < n do
    let i = !pc in
    let dst = code.(i + 1) and a = code.(i + 2) and b = code.(i + 3) in
    (match code.(i) with
    | 0 (* load *) -> regs.(dst) <- datas.(a).(cur.(a))
    | 1 (* store *) -> datas.(a).(cur.(a)) <- regs.(b)
    | 2 (* mov *) -> regs.(dst) <- regs.(a)
    | 3 (* add *) -> regs.(dst) <- regs.(a) +. regs.(b)
    | 4 (* sub *) -> regs.(dst) <- regs.(a) -. regs.(b)
    | 5 (* mul *) -> regs.(dst) <- regs.(a) *. regs.(b)
    | 6 (* div *) -> regs.(dst) <- regs.(a) /. regs.(b)
    | 7 (* min *) -> regs.(dst) <- Float.min regs.(a) regs.(b)
    | 8 (* max *) -> regs.(dst) <- Float.max regs.(a) regs.(b)
    | 9 (* fma *) -> regs.(dst) <- regs.(dst) +. (regs.(a) *. regs.(b))
    | 10 (* neg *) -> regs.(dst) <- -.regs.(a)
    | 11 (* abs *) -> regs.(dst) <- Float.abs regs.(a)
    | 12 (* sqrt *) -> regs.(dst) <- sqrt regs.(a)
    | 13 (* exp *) -> regs.(dst) <- exp regs.(a)
    | 14 (* log *) -> regs.(dst) <- log regs.(a)
    | 15 (* sin *) -> regs.(dst) <- sin regs.(a)
    | 16 (* cos *) -> regs.(dst) <- cos regs.(a)
    | 17 (* floor *) -> regs.(dst) <- Float.floor regs.(a)
    | 18 (* pow *) -> regs.(dst) <- Float.pow regs.(a) regs.(b)
    | 19 (* fdivi *) ->
        regs.(dst) <-
          Float.of_int
            (Tiramisu_support.Ints.fdiv
               (int_of_float regs.(a))
               (int_of_float regs.(b)))
    | 20 (* modi *) ->
        regs.(dst) <-
          Float.of_int
            (Tiramisu_support.Ints.emod
               (int_of_float regs.(a))
               (int_of_float regs.(b)))
    | 21 (* trunc *) -> regs.(dst) <- Float.of_int (int_of_float regs.(a))
    | _ -> assert false);
    pc := i + 4
  done

(* One segment: the outer odometer [st.ivs] is in position, run [len]
   iterations of the innermost level starting at its current value. *)
let run_segment t st len =
  let d = t.t_d in
  let nacc = Array.length t.t_accs in
  let datas = t.t_datas in
  (* cursors from the per-range base and the odometer *)
  for a = 0 to nacc - 1 do
    let steps = t.t_accs.(a).b_steps in
    let c = ref st.abase.(a) in
    for l = 0 to d - 1 do
      c := !c + (steps.(l) * st.ivs.(l))
    done;
    st.cur.(a) <- !c
  done;
  (* float iteration-variable registers *)
  for l = 0 to d - 1 do
    st.regs.(t.t_ivregs.(l)) <- float_of_int st.ivs.(l)
  done;
  (* segment prologue: promoted loads, accumulator init *)
  Array.iter
    (fun (r, a) -> st.regs.(r) <- datas.(a).(st.cur.(a)))
    t.t_promos;
  (match t.t_accum with
  | Some (r, a, true) -> st.regs.(r) <- datas.(a).(st.cur.(a))
  | Some (_, _, false) | None -> ());
  (* the hot loop *)
  let code = t.t_code in
  let inner = t.t_inner_steps in
  let ivd = t.t_ivregs.(d - 1) in
  let cur = st.cur and regs = st.regs in
  for _ = 1 to len do
    exec_code code st datas;
    for a = 0 to nacc - 1 do
      cur.(a) <- cur.(a) + inner.(a)
    done;
    regs.(ivd) <- regs.(ivd) +. 1.0
  done;
  (* epilogue: accumulator writeback (its cursor has inner step 0) *)
  match t.t_accum with
  | Some (r, a, _) -> datas.(a).(st.cur.(a)) <- st.regs.(r)
  | None -> ()

(* [run_range t st env f_lo f_hi] executes the fused-range slice
   [f_lo..f_hi] (inclusive) of the split space on [st].  The caller
   guarantees [enter] returned a total > f_hi. *)
let run_range t st env f_lo f_hi =
  if f_hi >= f_lo then begin
    let d = t.t_d and p = t.t_split in
    for l = 0 to d - 1 do
      st.los.(l) <- t.t_lo.(l) env;
      st.exts.(l) <- t.t_hi.(l) env - st.los.(l) + 1
    done;
    (* fused-space strides over the split levels *)
    st.fstr.(p - 1) <- 1;
    for l = p - 2 downto 0 do
      st.fstr.(l) <- st.fstr.(l + 1) * st.exts.(l + 1)
    done;
    Array.iter
      (fun (r, s) -> st.regs.(r) <- float_of_int env.(s))
      t.t_hoists;
    for a = 0 to Array.length t.t_accs - 1 do
      st.abase.(a) <- t.t_accs.(a).b_base env
    done;
    let decode f =
      for l = 0 to p - 1 do
        st.ivs.(l) <- st.los.(l) + (f / st.fstr.(l) mod st.exts.(l))
      done
    in
    if p = d then begin
      (* the whole nest is the split space: segments are innermost runs
         clipped to the caller's slice *)
      let nlast = st.exts.(d - 1) in
      let f = ref f_lo in
      while !f <= f_hi do
        decode !f;
        let off = st.ivs.(d - 1) - st.los.(d - 1) in
        let len = min (nlast - off) (f_hi - !f + 1) in
        run_segment t st len;
        f := !f + len
      done
    end
    else begin
      (* each fused point owns a full sequential subnest *)
      let nonempty = ref true in
      for l = p to d - 1 do
        if st.exts.(l) <= 0 then nonempty := false
      done;
      if !nonempty then
        for f = f_lo to f_hi do
          decode f;
          for l = p to d - 1 do
            st.ivs.(l) <- st.los.(l)
          done;
          (* odometer over the middle levels; the innermost level is one
             whole segment per middle position *)
          let running = ref true in
          while !running do
            run_segment t st st.exts.(d - 1);
            let l = ref (d - 2) in
            let carry = ref true in
            while !carry && !l >= p do
              st.ivs.(!l) <- st.ivs.(!l) + 1;
              if st.ivs.(!l) - st.los.(!l) < st.exts.(!l) then carry := false
              else begin
                st.ivs.(!l) <- st.los.(!l);
                decr l
              end
            done;
            if !carry then running := false
          done
        done
    end
  end
