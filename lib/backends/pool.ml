(* Persistent domain pool for [Parallel]-tagged loops.

   The seed executor paid a [Domain.spawn]/[Domain.join] round-trip on every
   entry of a parallel loop — hundreds of microseconds that dwarf the body of
   a tile-sized loop nest.  This module spawns the worker domains once per
   process and hands them chunked index ranges through per-worker deques:

   - the pool holds [num_workers () - 1] domains (the caller of
     [parallel_for] is the remaining worker and participates);
   - a [parallel_for lo hi] is split into ~4 chunks per worker and the chunk
     descriptors are dealt round-robin across the deques;
   - each worker pops from the back of its own deque (LIFO, cache-friendly)
     and steals from the front of the others (FIFO), which balances the
     irregular extents produced by triangular domains and partial tiles;
   - a nested [parallel_for] issued from inside a pool task runs inline on
     that worker instead of oversubscribing the machine.

   Sizing: [TIRAMISU_NUM_DOMAINS] overrides, then {!set_num_workers}, then
   [Domain.recommended_domain_count].  Workers sleep on a condition variable
   between jobs; an [at_exit] hook stops them so the runtime can terminate
   (OCaml waits for all domains at exit). *)

(* ---------- work-stealing deque (mutex-protected, two-list) ---------- *)

module Deque = struct
  (* front-to-back order is [xs @ List.rev sx] *)
  type 'a t = { mu : Mutex.t; mutable xs : 'a list; mutable sx : 'a list }

  let create () = { mu = Mutex.create (); xs = []; sx = [] }

  let push_back d v =
    Mutex.lock d.mu;
    d.sx <- v :: d.sx;
    Mutex.unlock d.mu

  let pop_back d =
    Mutex.lock d.mu;
    let r =
      match d.sx with
      | v :: rest ->
          d.sx <- rest;
          Some v
      | [] -> (
          match List.rev d.xs with
          | v :: rest ->
              d.xs <- [];
              d.sx <- rest;
              Some v
          | [] -> None)
    in
    Mutex.unlock d.mu;
    r

  let steal_front d =
    Mutex.lock d.mu;
    let r =
      match d.xs with
      | v :: rest ->
          d.xs <- rest;
          Some v
      | [] -> (
          match List.rev d.sx with
          | v :: rest ->
              d.xs <- rest;
              d.sx <- [];
              Some v
          | [] -> None)
    in
    Mutex.unlock d.mu;
    r
end

(* ---------- jobs and tasks ---------- *)

type job = {
  mutable pending : int; (* chunks not yet finished *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
  jmu : Mutex.t;
  jcv : Condition.t;
}

type task = { t_lo : int; t_hi : int; t_run : int -> int -> unit; t_job : job }

type pool = {
  nworkers : int; (* total parallelism, caller included *)
  deques : task Deque.t array;
  mu : Mutex.t; (* guards gen/stop *)
  cv : Condition.t;
  mutable gen : int; (* bumped on every submission: the wakeup ticket *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let worker_flag = Domain.DLS.new_key (fun () -> ref false)
let in_worker () = !(Domain.DLS.get worker_flag)

(* Stable per-domain identity: spawned worker [i] is [i + 1], the main (or
   any other caller) domain is [0].  The compiled backend indexes persistent
   per-worker scratch with this instead of a DLS lookup per loop entry. *)
let worker_id_key = Domain.DLS.new_key (fun () -> 0)
let worker_id () = Domain.DLS.get worker_id_key

let exec_task t =
  let j = t.t_job in
  (* Once a sibling chunk failed, the job's result is its exception: skip
     the remaining in-flight chunks instead of running them (a bounds
     failure in one chunk must not let the others keep mutating buffers),
     but still decrement [pending] so the caller's wait terminates. *)
  Mutex.lock j.jmu;
  let cancelled = j.failed <> None in
  Mutex.unlock j.jmu;
  (if not cancelled then
     try t.t_run t.t_lo t.t_hi
     with e ->
       (* First failure wins; keep its backtrace so the caller re-raises
          the original exception, not a context-free copy. *)
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock j.jmu;
       if j.failed = None then j.failed <- Some (e, bt);
       Mutex.unlock j.jmu);
  Mutex.lock j.jmu;
  j.pending <- j.pending - 1;
  if j.pending = 0 then Condition.broadcast j.jcv;
  Mutex.unlock j.jmu

(* Own deque back first, then sweep the others front-first. *)
let try_claim p me =
  match Deque.pop_back p.deques.(me) with
  | Some t -> Some t
  | None ->
      let n = Array.length p.deques in
      let rec go k =
        if k >= n - 1 then None
        else
          match Deque.steal_front p.deques.((me + 1 + k) mod n) with
          | Some t -> Some t
          | None -> go (k + 1)
      in
      go 0

let rec worker_loop p me =
  (* Read the ticket before looking for work: a submission between the
     failed claim and the wait bumps [gen], so the wait falls through. *)
  Mutex.lock p.mu;
  let g = p.gen and stop = p.stop in
  Mutex.unlock p.mu;
  if not stop then
    match try_claim p me with
    | Some t ->
        exec_task t;
        worker_loop p me
    | None ->
        Mutex.lock p.mu;
        while p.gen = g && not p.stop do
          Condition.wait p.cv p.mu
        done;
        Mutex.unlock p.mu;
        worker_loop p me

(* ---------- pool lifecycle ---------- *)

let pool_mu = Mutex.create ()
let the_pool : pool option ref = ref None
let requested : int option ref = ref None

let env_workers () =
  match Sys.getenv_opt "TIRAMISU_NUM_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let resolve_workers () =
  match !requested with
  | Some n -> n
  | None -> (
      match env_workers () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let num_workers () =
  Mutex.lock pool_mu;
  let n = resolve_workers () in
  Mutex.unlock pool_mu;
  n

let make_pool n =
  let p =
    {
      nworkers = n;
      deques = Array.init (max 1 n) (fun _ -> Deque.create ());
      mu = Mutex.create ();
      cv = Condition.create ();
      gen = 0;
      stop = false;
      domains = [];
    }
  in
  p.domains <-
    List.init (n - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.get worker_flag := true;
            Domain.DLS.set worker_id_key (i + 1);
            worker_loop p i));
  p

let stop_pool p =
  Mutex.lock p.mu;
  p.stop <- true;
  p.gen <- p.gen + 1;
  Condition.broadcast p.cv;
  Mutex.unlock p.mu;
  List.iter Domain.join p.domains

let get_pool () =
  Mutex.lock pool_mu;
  let p =
    match !the_pool with
    | Some p -> p
    | None ->
        let p = make_pool (resolve_workers ()) in
        the_pool := Some p;
        p
  in
  Mutex.unlock pool_mu;
  p

let shutdown () =
  Mutex.lock pool_mu;
  let p = !the_pool in
  the_pool := None;
  Mutex.unlock pool_mu;
  Option.iter stop_pool p

let set_num_workers n =
  if n < 1 then invalid_arg "Pool.set_num_workers: need at least one worker";
  shutdown ();
  Mutex.lock pool_mu;
  requested := Some n;
  Mutex.unlock pool_mu

let () = at_exit shutdown

(* ---------- work-size fallback threshold ---------- *)

(* Below roughly this many estimated work units (≈ executed statements)
   per worker share, a parallel loop is cheaper to run sequentially than
   to fork across the pool: the wakeup broadcast, range hand-off and
   per-range register-file setup cost a few microseconds each, and a work
   unit costs on the order of 0.1 µs through the compiled drivers.  Used
   by the parallel planner and the compiled backend's demotion
   heuristic. *)
let default_min_work = 4_000

let warned_min_work = ref false

let min_work () =
  match Sys.getenv_opt "TIRAMISU_POOL_MIN_WORK" with
  | None -> default_min_work
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ ->
          if not !warned_min_work then begin
            warned_min_work := true;
            Printf.eprintf
              "tiramisu: ignoring malformed TIRAMISU_POOL_MIN_WORK=%S (want \
               a non-negative integer); using default %d\n\
               %!"
              s default_min_work
          end;
          default_min_work)

(* TIRAMISU_ASSUME_CORES overrides the OS core count for planning and
   benchmarking (e.g. exercising the 4-worker plan inside a 1-CPU
   container); wall-clock numbers stay honest, only the
   profitability/demotion decisions believe the override. *)
let warned_assume_cores = ref false

let assumed_cores () =
  match Sys.getenv_opt "TIRAMISU_ASSUME_CORES" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ ->
          if not !warned_assume_cores then begin
            warned_assume_cores := true;
            Printf.eprintf
              "tiramisu: ignoring malformed TIRAMISU_ASSUME_CORES=%S (want \
               a positive integer)\n\
               %!"
              s
          end;
          None)

(* How many domains can actually run at once: the configured pool size
   capped by the CPUs the OS grants this process.  A pool of 4 workers on a
   single-CPU container time-slices, it does not parallelize. *)
let effective_parallelism () =
  let cores =
    match assumed_cores () with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()
  in
  min (num_workers ()) cores

(* ---------- parallel_for / static_for ---------- *)

let chunks_per_worker = 4

(* Wake the workers for the tasks just pushed, help drain the job from the
   calling domain, and re-raise the first failure with its backtrace. *)
let drive p job =
  Mutex.lock p.mu;
  p.gen <- p.gen + 1;
  Condition.broadcast p.cv;
  Mutex.unlock p.mu;
  (* The caller is a worker too: claim tasks until the job drains, then
     sleep on the job's condition for the stragglers. *)
  let me = Array.length p.deques - 1 in
  let flag = Domain.DLS.get worker_flag in
  flag := true;
  let rec help () =
    Mutex.lock job.jmu;
    let finished = job.pending = 0 in
    Mutex.unlock job.jmu;
    if not finished then
      match try_claim p me with
      | Some t ->
          exec_task t;
          help ()
      | None ->
          Mutex.lock job.jmu;
          while job.pending > 0 do
            Condition.wait job.jcv job.jmu
          done;
          Mutex.unlock job.jmu
  in
  (* The flag reset must survive an exception: leaving it set would make
     every later parallel_for on this domain run inline. *)
  Fun.protect ~finally:(fun () -> flag := false) help;
  match job.failed with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let fresh_job pending =
  { pending; failed = None; jmu = Mutex.create (); jcv = Condition.create () }

let parallel_for ?chunk lo hi ~body =
  if hi < lo then ()
  else
    let extent = hi - lo + 1 in
    let p = get_pool () in
    if p.nworkers <= 1 || in_worker () then
      (* pool disabled, or nested parallel region: run on this worker *)
      body lo hi
    else
      let csize =
        match chunk with
        | Some c when c >= 1 -> c
        | _ -> max 1 (extent / (p.nworkers * chunks_per_worker))
      in
      let nchunks = (extent + csize - 1) / csize in
      if nchunks <= 1 then body lo hi
      else begin
        let job = fresh_job nchunks in
        let nd = Array.length p.deques in
        for c = 0 to nchunks - 1 do
          let clo = lo + (c * csize) in
          let chi = min hi (clo + csize - 1) in
          Deque.push_back p.deques.(c mod nd)
            { t_lo = clo; t_hi = chi; t_run = body; t_job = job }
        done;
        drive p job
      end

let static_for lo hi ~body =
  if hi < lo then ()
  else
    let extent = hi - lo + 1 in
    let p = get_pool () in
    if p.nworkers <= 1 || in_worker () then body 0 lo hi
    else
      let nr = min p.nworkers extent in
      if nr <= 1 then body 0 lo hi
      else begin
        (* One contiguous near-equal range per worker, dealt one-to-a-deque
           so each worker's own pop finds its own range; stealing still
           rebalances if a worker is descheduled.  Range [k] always runs
           under index [k] no matter which domain executes it, so [body]
           can key persistent scratch on it. *)
        let job = fresh_job nr in
        let base = extent / nr and rem = extent mod nr in
        let start = ref lo in
        let nd = Array.length p.deques in
        for k = 0 to nr - 1 do
          let len = base + if k < rem then 1 else 0 in
          let clo = !start in
          let chi = clo + len - 1 in
          start := chi + 1;
          Deque.push_back
            p.deques.((nd - 1 - k + nd) mod nd)
            { t_lo = clo; t_hi = chi; t_run = (fun l h -> body k l h);
              t_job = job }
        done;
        drive p job
      end
