open Tiramisu_codegen
module L = Loop_ir

type counters = {
  mutable flops : int;
  mutable loads : int;
  mutable stores : int;
  mutable iterations : int;
  mutable messages : int;
  mutable bytes_sent : int;
}

type t = {
  vars : (string, int) Hashtbl.t;
  bufs : (string, Buffers.t) Hashtbl.t;
  ctr : counters;
  mutable hooks : (string -> int array -> float -> unit) list;
  (* (src_rank, dst_rank) -> queued payloads *)
  channels : (int * int, float array Queue.t) Hashtbl.t;
  mutable rank : int;
}

let create ?(params = []) ?(buffers = []) () =
  let t =
    {
      vars = Hashtbl.create 16;
      bufs = Hashtbl.create 16;
      ctr =
        { flops = 0; loads = 0; stores = 0; iterations = 0; messages = 0;
          bytes_sent = 0 };
      hooks = [];
      channels = Hashtbl.create 16;
      rank = 0;
    }
  in
  List.iter (fun (k, v) -> Hashtbl.replace t.vars k v) params;
  List.iter (fun b -> Hashtbl.replace t.bufs b.Buffers.name b) buffers;
  t

let add_buffer t b = Hashtbl.replace t.bufs b.Buffers.name b

let buffer t name =
  match Hashtbl.find_opt t.bufs name with
  | Some b -> b
  | None -> failwith (Printf.sprintf "Interp: unknown buffer %s" name)

let counters t = t.ctr
let on_store t f = t.hooks <- f :: t.hooks

let var t name =
  match Hashtbl.find_opt t.vars name with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Interp: unbound variable %s" name)

let rec eval_int t (e : L.expr) : int =
  match e with
  | L.Int n -> n
  | L.Float _ -> failwith "Interp: float in integer context"
  | L.Var v -> var t v
  | L.Neg a -> -eval_int t a
  | L.Cast (L.I32, a) -> int_of_float (eval_f t a)
  | L.Cast (_, a) -> eval_int t a
  | L.Load (b, idx) ->
      t.ctr.loads <- t.ctr.loads + 1;
      int_of_float (Buffers.get (buffer t b) (Array.of_list (List.map (eval_int t) idx)))
  | L.Select (c, a, b) -> if eval_cond t c then eval_int t a else eval_int t b
  | L.Call (f, args) -> (
      let args = List.map (eval_int t) args in
      match (f, args) with
      | "abs", [ a ] -> abs a
      | _ -> failwith (Printf.sprintf "Interp: unknown int intrinsic %s" f))
  | L.Bin (op, a, b) -> (
      let x = eval_int t a and y = eval_int t b in
      match op with
      | L.Add -> x + y
      | L.Sub -> x - y
      | L.Mul -> x * y
      | L.Div -> x / y
      | L.FloorDiv -> Tiramisu_support.Ints.fdiv x y
      | L.Mod -> Tiramisu_support.Ints.emod x y
      | L.MinOp -> min x y
      | L.MaxOp -> max x y)

and eval_cond t (c : L.cond) : bool =
  match c with
  | L.True -> true
  | L.And (a, b) -> eval_cond t a && eval_cond t b
  | L.Or (a, b) -> eval_cond t a || eval_cond t b
  | L.Not a -> not (eval_cond t a)
  | L.Cmp (op, a, b) -> (
      let x = eval_int t a and y = eval_int t b in
      match op with
      | L.EqOp -> x = y
      | L.NeOp -> x <> y
      | L.LtOp -> x < y
      | L.LeOp -> x <= y
      | L.GtOp -> x > y
      | L.GeOp -> x >= y)

and eval_f t (e : L.expr) : float =
  match e with
  | L.Int n -> float_of_int n
  | L.Float f -> f
  | L.Var v -> float_of_int (var t v)
  | L.Neg a -> -.eval_f t a
  | L.Cast (L.I32, a) -> Float.of_int (int_of_float (eval_f t a))
  | L.Cast (_, a) -> eval_f t a
  | L.Load (b, idx) ->
      t.ctr.loads <- t.ctr.loads + 1;
      Buffers.get (buffer t b)
        (Array.of_list (List.map (eval_int t) idx))
  | L.Select (c, a, b) -> if eval_cond t c then eval_f t a else eval_f t b
  | L.Call (f, args) -> (
      t.ctr.flops <- t.ctr.flops + 1;
      let args = List.map (eval_f t) args in
      match (f, args) with
      | "abs", [ a ] -> Float.abs a
      | "sqrt", [ a ] -> sqrt a
      | "exp", [ a ] -> exp a
      | "log", [ a ] -> log a
      | "sin", [ a ] -> sin a
      | "cos", [ a ] -> cos a
      | "floor", [ a ] -> Float.floor a
      | "pow", [ a; b ] -> Float.pow a b
      | "fmin", [ a; b ] -> Float.min a b
      | "fmax", [ a; b ] -> Float.max a b
      | "clamp", [ x; lo; hi ] -> Float.min (Float.max x lo) hi
      | _ -> failwith (Printf.sprintf "Interp: unknown intrinsic %s" f))
  | L.Bin (op, a, b) -> (
      let x = eval_f t a and y = eval_f t b in
      t.ctr.flops <- t.ctr.flops + 1;
      match op with
      | L.Add -> x +. y
      | L.Sub -> x -. y
      | L.Mul -> x *. y
      | L.Div -> x /. y
      | L.FloorDiv -> Float.of_int (Tiramisu_support.Ints.fdiv (int_of_float x) (int_of_float y))
      | L.Mod -> Float.of_int (Tiramisu_support.Ints.emod (int_of_float x) (int_of_float y))
      | L.MinOp -> Float.min x y
      | L.MaxOp -> Float.max x y)

let flat_offset buf idx =
  (* Offset of a starting element given (possibly shorter) leading indices. *)
  let strides = Buffers.strides buf in
  let acc = ref 0 in
  List.iteri (fun k i -> acc := !acc + (i * strides.(k))) idx;
  !acc

let rec exec t (s : L.stmt) : unit =
  match s with
  | L.Block l -> List.iter (exec t) l
  | L.Comment _ -> ()
  | L.Barrier -> ()
  | L.If (c, th, el) ->
      if eval_cond t c then exec t th
      else Option.iter (exec t) el
  | L.Store (b, idx, v) when String.length b >= 7 && String.sub b 0 7 = "__trace" ->
      (* Trace pseudo-stores: drive the hooks without touching memory; used
         by the AST-generation visit-order tests. *)
      let idx = Array.of_list (List.map (eval_int t) idx) in
      List.iter (fun h -> h b idx (eval_f t v)) t.hooks
  | L.Store (b, idx, v) ->
      let buf = buffer t b in
      let idx = Array.of_list (List.map (eval_int t) idx) in
      let v = eval_f t v in
      t.ctr.stores <- t.ctr.stores + 1;
      Buffers.set buf idx v;
      List.iter (fun h -> h b idx v) t.hooks
  | L.Alloc { buf; dims; mem; body; _ } ->
      let dims = Array.of_list (List.map (eval_int t) dims) in
      let prev = Hashtbl.find_opt t.bufs buf in
      Hashtbl.replace t.bufs buf (Buffers.create ~mem buf dims);
      exec t body;
      (match prev with
      | Some b -> Hashtbl.replace t.bufs buf b
      | None -> Hashtbl.remove t.bufs buf)
  | L.For { var = v; lo; hi; tag; body } ->
      let lo = eval_int t lo and hi = eval_int t hi in
      let saved = Hashtbl.find_opt t.vars v in
      let saved_rank = t.rank in
      for x = lo to hi do
        Hashtbl.replace t.vars v x;
        if tag = L.Distributed then t.rank <- x;
        t.ctr.iterations <- t.ctr.iterations + 1;
        exec t body
      done;
      t.rank <- saved_rank;
      (match saved with
      | Some x -> Hashtbl.replace t.vars v x
      | None -> Hashtbl.remove t.vars v)
  | L.Send { dst; buf; offset; count; _ } ->
      let b = buffer t buf in
      let dst = eval_int t dst in
      let off = flat_offset b (List.map (eval_int t) offset) in
      let count = eval_int t count in
      let payload = Array.sub b.Buffers.data off count in
      let key = (t.rank, dst) in
      let q =
        match Hashtbl.find_opt t.channels key with
        | Some q -> q
        | None ->
            let q = Queue.create () in
            Hashtbl.replace t.channels key q;
            q
      in
      Queue.push payload q;
      t.ctr.messages <- t.ctr.messages + 1;
      t.ctr.bytes_sent <- t.ctr.bytes_sent + (4 * count)
  | L.Recv { src; buf; offset; count; _ } ->
      let b = buffer t buf in
      let src = eval_int t src in
      let off = flat_offset b (List.map (eval_int t) offset) in
      let count = eval_int t count in
      let key = (src, t.rank) in
      (match Hashtbl.find_opt t.channels key with
      | Some q when not (Queue.is_empty q) ->
          let payload = Queue.pop q in
          if Array.length payload <> count then
            failwith "Interp: message size mismatch";
          Array.blit payload 0 b.Buffers.data off count
      | _ ->
          failwith
            (Printf.sprintf
               "Interp: synchronous recv on rank %d from %d with no message \
                (distributed deadlock)"
               t.rank src))
  | L.Memcpy { dst; src; _ } ->
      let s = buffer t src and d = buffer t dst in
      if Buffers.size s <> Buffers.size d then
        failwith "Interp: memcpy size mismatch";
      Array.blit s.Buffers.data 0 d.Buffers.data 0 (Buffers.size s)

let run t s = exec t s
let eval_expr t e = eval_f t e
