(** Analytical performance model over the loop IR.

    Walks generated code once, binding every loop variable to a
    representative iteration, and scores compute (vector width, GPU
    throughput), memory (stride + working-set cache placement), control
    overhead (guards, loop control, unrolling) and communication (α–β
    network model, PCIe copies).  This replaces wall-clock measurement on the
    paper's testbed: schedule differences — tiling, packing, fusion,
    vectorization, coalescing, communication volume — change exactly the
    quantities the model scores, so relative results track the paper's.

    It is a model, not a cycle-accurate simulator; see EXPERIMENTS.md for
    the calibration notes and per-figure comparisons. *)

type report = {
  time_ns : float;      (** total estimated wall-clock *)
  compute_ns : float;
  memory_ns : float;
  overhead_ns : float;  (** loop control + branches + parallel regions *)
  comm_ns : float;      (** network + PCIe *)
  flops : float;
  bytes : float;        (** bytes moved past the L1 *)
  messages : int;
}

val estimate :
  ?machine:Machine.t ->
  ?tape:bool ->
  ?lanes:int ->
  params:(string * int) list ->
  buffers:(string * int array * Tiramisu_codegen.Loop_ir.mem_space) list ->
  Tiramisu_codegen.Loop_ir.stmt ->
  report
(** [buffers] gives each buffer's dimensions and memory space (for stride,
    footprint and GPU memory-hierarchy computation).  [tape] (default off,
    preserving the paper-figure calibration) additionally models the flat
    instruction-tape backend: loop control inside a nest [Tape_gen] would
    claim is charged at bytecode-cursor cost, which is what lets the
    autoscheduler's prior rank tape-friendly schedules above
    structurally-equal ones the tape cannot claim.  [lanes] (default [8],
    matching {!Exec.compile}) is the lane width the tape binds claimed
    nests with: when the generator marks a claimed nest lane-safe, its
    innermost loop is discounted like a [Vectorized] loop (compute
    divided by the effective width, memory partially amortized) so the
    prior tracks the vector tier's measured speedups. *)

val pp_report : Format.formatter -> report -> unit
