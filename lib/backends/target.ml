(* First-class execution target.  Every layer that used to hand-thread
   `(parallel, sched, ...)` knob tuples — Exec, Pipeline, Runner, Service,
   Autosched, Fuzz, tiramisuc — now passes one of these instead.  The
   paper's portability claim (Layers III–IV) is that one schedule lowers
   to CPU, GPU, and distributed code; this module is the seam that names
   which of the three a compilation is for, and what that backend can do
   (capability flags below).

   Targets participate in the compile-cache and service-store keys via
   [to_key_string]: two compilations of the same program for different
   targets are different artifacts (see DESIGN.md §14). *)

type cpu_knobs = {
  parallel : [ `Pool | `Spawn | `Seq ];
  sched : [ `Auto | `Static | `Dynamic ];
}

type grid_cfg = {
  max_threads : int;  (* thread-block size ceiling (per-SM cap of the model) *)
  shared_kb : int;    (* shared-memory budget per block, KiB *)
}

type dist_cfg = {
  ranks : int;         (* number of in-process ranks *)
  net : Machine.net;   (* α–β model used for predicted comm time *)
}

type t =
  | Cpu of cpu_knobs
  | Gpu_sim of grid_cfg
  | Distributed of dist_cfg

(* ---------------- constructors ---------------- *)

let cpu ?(parallel = `Pool) ?(sched = `Auto) () = Cpu { parallel; sched }
let default = cpu ()

let gpu_sim ?(max_threads = Machine.default.Machine.gpu.Machine.max_threads_per_sm)
    ?(shared_kb = 48) () =
  Gpu_sim { max_threads; shared_kb }

let distributed ?(net = Machine.default.Machine.net) ~ranks () =
  if ranks < 1 then invalid_arg "Target.distributed: ranks must be >= 1";
  Distributed { ranks; net }

(* ---------------- capability flags ---------------- *)

(* Only the CPU backend runs the flat instruction tape: the GPU simulator
   and the per-rank executor both re-bind environment slots per grid
   point / per rank, which the tape's claimed rectangular nests cannot
   observe. *)
let tape_claimable = function Cpu _ -> true | Gpu_sim _ | Distributed _ -> false

(* The parallel planner (trip counts, band widening, static ranges) is
   about the domain pool; it only applies when the target runs on it. *)
let pool_schedulable = function
  | Cpu { parallel = `Pool; _ } -> true
  | Cpu _ | Gpu_sim _ | Distributed _ -> false

(* ---------------- projections for Exec ---------------- *)

let par_strategy = function
  | Cpu k -> k.parallel
  | Gpu_sim _ | Distributed _ -> `Seq

let sched = function Cpu k -> k.sched | Gpu_sim _ | Distributed _ -> `Auto
let ranks = function Distributed d -> Some d.ranks | Cpu _ | Gpu_sim _ -> None

(* ---------------- naming ---------------- *)

let string_of_par = function `Pool -> "pool" | `Spawn -> "spawn" | `Seq -> "seq"

let string_of_sched = function
  | `Auto -> "auto"
  | `Static -> "static"
  | `Dynamic -> "dynamic"

(* Stable, total rendering: folded into the structural-hash cache key and
   the service store's artifact records.  Changing this string for an
   existing target invalidates every cached artifact for it — on purpose. *)
let to_key_string = function
  | Cpu k -> Printf.sprintf "cpu:%s:%s" (string_of_par k.parallel)
               (string_of_sched k.sched)
  | Gpu_sim g -> Printf.sprintf "gpu-sim:%d:%dk" g.max_threads g.shared_kb
  | Distributed d ->
      Printf.sprintf "dist:%d:a%.0f:b%.3f" d.ranks d.net.Machine.alpha
        d.net.Machine.beta

let pp ppf t =
  match t with
  | Cpu k ->
      Format.fprintf ppf "cpu(%s,%s)" (string_of_par k.parallel)
        (string_of_sched k.sched)
  | Gpu_sim g ->
      Format.fprintf ppf "gpu-sim(threads=%d,shared=%dKiB)" g.max_threads
        g.shared_kb
  | Distributed d -> Format.fprintf ppf "dist(ranks=%d)" d.ranks

let to_string t = Format.asprintf "%a" pp t

(* CLI grammar: cpu | cpu:pool|spawn|seq | gpu-sim | dist:N *)
let of_string s =
  match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
  | [ "cpu" ] -> Ok (cpu ())
  | [ "cpu"; p ] -> (
      match p with
      | "pool" -> Ok (cpu ~parallel:`Pool ())
      | "spawn" -> Ok (cpu ~parallel:`Spawn ())
      | "seq" -> Ok (cpu ~parallel:`Seq ())
      | _ -> Error (Printf.sprintf "unknown cpu strategy %S" p))
  | [ "gpu-sim" ] | [ "gpu" ] -> Ok (gpu_sim ())
  | [ "dist"; n ] -> (
      match int_of_string_opt n with
      | Some ranks when ranks >= 1 -> Ok (distributed ~ranks ())
      | _ -> Error (Printf.sprintf "bad rank count %S (want dist:N, N>=1)" n))
  | _ ->
      Error
        (Printf.sprintf "unknown target %S (want cpu|cpu:seq|gpu-sim|dist:N)" s)
