(** Runtime buffers for the executing backends.

    All numeric data is stored as [float array] in row-major order (the
    paper's buffers are dense rectangular arrays); integer-typed buffers
    store integral floats. *)

type t = {
  name : string;
  dims : int array;
  data : float array;
  mem : Tiramisu_codegen.Loop_ir.mem_space;
}

val create :
  ?mem:Tiramisu_codegen.Loop_ir.mem_space -> string -> int array -> t

val of_array :
  ?mem:Tiramisu_codegen.Loop_ir.mem_space -> string -> int array ->
  float array -> t

val size : t -> int

val strides_of : int array -> int array
(** Row-major strides of a dims vector ([strides_of dims].(k) is the flat
    distance between consecutive indices in dimension [k]).  The one stride
    computation every backend shares. *)

val strides : t -> int array
(** [strides_of b.dims]. *)

val flat_index : t -> int array -> int
(** @raise Invalid_argument on out-of-bounds access, mirroring the assertion
    failures Halide's ticket #2373 reproduction relies on. *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val fill : t -> (int array -> float) -> unit
val copy : t -> t
val equal : ?eps:float -> t -> t -> bool
val max_abs_diff : t -> t -> float
