(** The flat-tape executor.

    Binds an abstract {!Tiramisu_codegen.Tape_gen} program against
    concrete buffers — folding each access's affine indices with the
    buffer strides into one flat base plus a constant integer step per
    nest level — and runs it as a register-file bytecode interpreter:
    no closures, no env lookups and no allocation in the hot loop.

    The [Parallel]-tagged prefix of the nest is linearized into a fused
    range that callers split across workers; each worker owns a
    persistent {!state} (register file + cursors), reused across ranges
    and compiles. *)

(** A program bound to concrete buffers and env slots. *)
type t

(** Per-worker mutable execution state: the float register file,
    per-access cursors, and the odometer.  Allocate once per worker,
    reuse freely across ranges of the same bound program. *)
type state

(** [bind ~buf ~slot p] resolves buffer names and free names; [None]
    when a buffer is unknown or its rank does not match an access.

    [~lanes] > 1 requests lane-batched (vector) execution: segments run
    [len / lanes] batches through a vector tape derived from the scalar
    code (unit-stride loads/stores as blits) and the remainder through
    the scalar tape, bit-identically to scalar execution.  The request
    takes effect only when the generator marked the program lane-safe
    ([p_vec_ok]) and every read-modify-write access has a nonzero
    innermost step; otherwise the binding silently stays scalar. *)
val bind :
  ?lanes:int ->
  buf:(string -> Buffers.t option) ->
  slot:(string -> int) ->
  Tiramisu_codegen.Tape_gen.program ->
  t option

(** Whether this binding executes lane batches (vector tier engaged). *)
val vectorized : t -> bool

(** The effective lane width (0 when scalar). *)
val lanes : t -> int

val new_state : t -> state

(** [enter t env] evaluates the nest bounds and runs the whole-box
    corner checks against every access: [-1] when a check fails (take
    the generic closure fallback, whose per-access checks raise at the
    faulting iteration), [0] when some level is empty (nothing to run),
    otherwise the size of the fused parallel range to split across
    workers. *)
val enter : t -> int array -> int

(** [run_range t st env f_lo f_hi] executes the inclusive slice
    [f_lo..f_hi] of the fused range on [st].  Slices never cut a
    sequential subnest, so disjoint slices touch disjoint store
    locations and may run concurrently.  [enter] must have returned a
    total [> f_hi]. *)
val run_range : t -> state -> int array -> int -> int -> unit
