open Tiramisu_codegen
module L = Loop_ir

(* Compiled code operates on a register file of integers (loop variables and
   parameters), one slot per name; closures capture slot indices.

   Two runtime subsystems distinguish this from a naive closure compiler:

   - Parallel loops run on the persistent domain pool ({!Pool}) instead of
     paying a Domain.spawn/join round-trip per loop entry; statically nested
     Parallel loops are compiled sequentially (the loop metadata of
     {!Loop_ir.analyze_loops} names this case) and dynamically nested ones
     run inline on their worker.

   - Addressing is hoisted: buffer strides are computed once at compile
     time, index expressions are classified as affine combinations of loop
     variables, and for each access dimension the bounds check is hoisted to
     the entry of the innermost loop whose variable it involves — the two
     corners of the loop range are checked once and a per-loop "in-bounds"
     register tells every access in the body to skip its per-iteration
     check.  Accesses that are not affine, or whose corners fail (e.g. the
     guarded edges of partial tiles), fall back to the per-access check. *)

type par_strategy = [ `Pool | `Spawn | `Seq ]
type schedule = [ `Auto | `Static | `Dynamic ]

(* Typed diagnostic for the distributed executor's communication faults:
   a synchronous receive finding no message (the in-process analogue of an
   MPI deadlock), a payload whose size disagrees with the receive count,
   or a send left undelivered when the program finishes.  The pipeline's
   [guard] wraps these into [Pipeline.Error] with the rank pair and the
   channel (buffer) named, instead of a bare exception. *)
exception
  Comm_error of { src : int; dst : int; channel : string; reason : string }

let () =
  Printexc.register_printer (function
    | Comm_error { src; dst; channel; reason } ->
        Some
          (Printf.sprintf "Exec.Comm_error(rank %d -> rank %d on %S: %s)" src
             dst channel reason)
    | _ -> None)

type compiled = {
  body : int array -> unit;
  regs0 : int array;             (* initial register file (params bound) *)
  bufs : (string, Buffers.t) Hashtbl.t;
  cmeta : L.loop_meta;
  c_spec : int;                  (* innermost loops compiled specialized *)
  c_fallback : int;              (* Parallel loops demoted by the work bound *)
  c_static : int;                (* pool loops given the static schedule *)
  c_tape : int;                  (* nests claimed by the tape backend *)
  c_tape_vec : int;              (* claimed nests bound with lane batching *)
  c_tape_lanes : int;            (* requested lane width (0 = scalar tape) *)
  c_tape_instr : int;            (* total tape instructions across nests *)
  c_tape_fb : int Atomic.t;      (* runtime corner-check fallbacks (shared) *)
  c_msgs : int Atomic.t;         (* messages sent at run time (shared) *)
  c_bytes : int Atomic.t;        (* payload bytes sent at run time (shared) *)
}

type ctx = {
  slots : (string, int) Hashtbl.t;
  mutable nslots : int;
  cbufs : (string, Buffers.t) Hashtbl.t;
  (* (src rank, dst rank) -> queued (channel buffer, payload) messages *)
  channels : (int * int, (string * float array) Queue.t) Hashtbl.t;
  chan_mutex : Mutex.t;
  rank_slot : int;
  worker_slot : int;                 (* register holding the worker index *)
  par_mode : par_strategy;
  sched : [ `Auto | `Static | `Dynamic ];
    (* pool schedule: static per-worker ranges vs dynamic chunking *)
  demote : bool;                     (* work-size demotion heuristic on/off *)
  (* compile-time state of the addressing-optimisation pass *)
  pending : (string, (int array -> int -> int -> bool) list ref) Hashtbl.t;
    (* per loop-var corner checks collected while compiling its body *)
  mutable loop_stack : string list;  (* enclosing loop vars, innermost first *)
  mutable par_depth : int;           (* enclosing Parallel loops *)
  (* compile-time state of the kernel specializer and the pool heuristic *)
  est_vars : (string, int) Hashtbl.t;
    (* params and enclosing-loop midpoints, for static work estimates *)
  pool_min_work : int;               (* Pool.min_work (), sampled once *)
  spec_enabled : bool;               (* kernel specializer on/off *)
  n_spec : int Atomic.t;             (* specialized innermost loops *)
  n_fallback : int Atomic.t;         (* Parallel loops demoted to Seq *)
  n_static : int Atomic.t;           (* pool loops compiled static *)
  (* the flat-tape backend (see {!Tape}) *)
  tape_enabled : bool;
  tape_lanes : int;                  (* vector lane width (<= 1: scalar) *)
  mutable in_tape : int;             (* compiling inside a claimed nest *)
  n_tape : int Atomic.t;             (* nests claimed by the tape *)
  n_tape_vec : int Atomic.t;         (* claimed nests bound with lanes *)
  n_tape_instr : int Atomic.t;       (* total tape instructions *)
  n_tape_fb : int Atomic.t;          (* runtime corner-check fallbacks *)
  n_msgs : int Atomic.t;             (* runtime: messages sent *)
  n_bytes : int Atomic.t;            (* runtime: payload bytes sent *)
}

let slot ctx name =
  match Hashtbl.find_opt ctx.slots name with
  | Some s -> s
  | None ->
      let s = ctx.nslots in
      ctx.nslots <- ctx.nslots + 1;
      Hashtbl.replace ctx.slots name s;
      s

(* The "accesses through var v are in bounds" register of a loop: 1 after
   the corner check at loop entry succeeded, 0 otherwise.  ':' cannot occur
   in IR variable names, so the slot cannot collide. *)
let flag_slot ctx v = slot ctx ("__inb:" ^ v)

let hoist_check ctx v chk =
  let r =
    match Hashtbl.find_opt ctx.pending v with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace ctx.pending v r;
        r
  in
  r := chk :: !r

let buf ctx name =
  match Hashtbl.find_opt ctx.cbufs name with
  | Some b -> b
  | None -> failwith (Printf.sprintf "Exec: unknown buffer %s" name)

(* Σ coeff·var + const view of an index expression; None if not affine.
   Lives in {!Loop_ir} so the classifier, the cost model and this executor
   agree on what "affine" means. *)
let affine_terms = L.affine_terms

let rec compile_int ctx (e : L.expr) : int array -> int =
  match e with
  | L.Int n -> fun _ -> n
  | L.Float _ -> failwith "Exec: float in integer context"
  | L.Var v ->
      let s = slot ctx v in
      fun env -> env.(s)
  | L.Neg a ->
      let f = compile_int ctx a in
      fun env -> -f env
  | L.Cast (L.I32, a) ->
      let f = compile_f ctx a in
      fun env -> int_of_float (f env)
  | L.Cast (_, a) -> compile_int ctx a
  | L.Load (b, idx) ->
      let bb = buf ctx b in
      let fidx = index_fn ctx bb idx in
      fun env -> int_of_float bb.Buffers.data.(fidx env)
  | L.Select (c, a, b) ->
      let fc = compile_cond ctx c
      and fa = compile_int ctx a
      and fb = compile_int ctx b in
      fun env -> if fc env then fa env else fb env
  | L.Call ("abs", [ a ]) ->
      let f = compile_int ctx a in
      fun env -> abs (f env)
  | L.Call (f, _) -> failwith ("Exec: unknown int intrinsic " ^ f)
  | L.Bin (op, a, b) -> (
      let fa = compile_int ctx a and fb = compile_int ctx b in
      match op with
      | L.Add -> fun env -> fa env + fb env
      | L.Sub -> fun env -> fa env - fb env
      | L.Mul -> fun env -> fa env * fb env
      | L.Div -> fun env -> fa env / fb env
      | L.FloorDiv -> fun env -> Tiramisu_support.Ints.fdiv (fa env) (fb env)
      | L.Mod -> fun env -> Tiramisu_support.Ints.emod (fa env) (fb env)
      | L.MinOp -> fun env -> min (fa env) (fb env)
      | L.MaxOp -> fun env -> max (fa env) (fb env))

and compile_cond ctx (c : L.cond) : int array -> bool =
  match c with
  | L.True -> fun _ -> true
  | L.And (a, b) ->
      let fa = compile_cond ctx a and fb = compile_cond ctx b in
      fun env -> fa env && fb env
  | L.Or (a, b) ->
      let fa = compile_cond ctx a and fb = compile_cond ctx b in
      fun env -> fa env || fb env
  | L.Not a ->
      let f = compile_cond ctx a in
      fun env -> not (f env)
  | L.Cmp (op, a, b) -> (
      let fa = compile_int ctx a and fb = compile_int ctx b in
      match op with
      | L.EqOp -> fun env -> fa env = fb env
      | L.NeOp -> fun env -> fa env <> fb env
      | L.LtOp -> fun env -> fa env < fb env
      | L.LeOp -> fun env -> fa env <= fb env
      | L.GtOp -> fun env -> fa env > fb env
      | L.GeOp -> fun env -> fa env >= fb env)

and compile_f ctx (e : L.expr) : int array -> float =
  match e with
  | L.Int n ->
      let x = float_of_int n in
      fun _ -> x
  | L.Float f -> fun _ -> f
  | L.Var v ->
      let s = slot ctx v in
      fun env -> float_of_int env.(s)
  | L.Neg a ->
      let f = compile_f ctx a in
      fun env -> -.f env
  | L.Cast (L.I32, a) ->
      let f = compile_f ctx a in
      fun env -> Float.of_int (int_of_float (f env))
  | L.Cast (_, a) -> compile_f ctx a
  | L.Load (b, idx) ->
      let bb = buf ctx b in
      let fidx = index_fn ctx bb idx in
      fun env -> bb.Buffers.data.(fidx env)
  | L.Select (c, a, b) ->
      let fc = compile_cond ctx c
      and fa = compile_f ctx a
      and fb = compile_f ctx b in
      fun env -> if fc env then fa env else fb env
  | L.Call (name, args) -> (
      let fargs = List.map (compile_f ctx) args in
      match (name, fargs) with
      | "abs", [ a ] -> fun env -> Float.abs (a env)
      | "sqrt", [ a ] -> fun env -> sqrt (a env)
      | "exp", [ a ] -> fun env -> exp (a env)
      | "log", [ a ] -> fun env -> log (a env)
      | "sin", [ a ] -> fun env -> sin (a env)
      | "cos", [ a ] -> fun env -> cos (a env)
      | "floor", [ a ] -> fun env -> Float.floor (a env)
      | "pow", [ a; b ] -> fun env -> Float.pow (a env) (b env)
      | "fmin", [ a; b ] -> fun env -> Float.min (a env) (b env)
      | "fmax", [ a; b ] -> fun env -> Float.max (a env) (b env)
      | "clamp", [ x; lo; hi ] ->
          fun env -> Float.min (Float.max (x env) (lo env)) (hi env)
      | _ -> failwith ("Exec: unknown intrinsic " ^ name))
  | L.Bin (op, a, b) -> (
      let fa = compile_f ctx a and fb = compile_f ctx b in
      match op with
      | L.Add -> fun env -> fa env +. fb env
      | L.Sub -> fun env -> fa env -. fb env
      | L.Mul -> fun env -> fa env *. fb env
      | L.Div -> fun env -> fa env /. fb env
      | L.FloorDiv ->
          fun env ->
            Float.of_int
              (Tiramisu_support.Ints.fdiv (int_of_float (fa env))
                 (int_of_float (fb env)))
      | L.Mod ->
          fun env ->
            Float.of_int
              (Tiramisu_support.Ints.emod (int_of_float (fa env))
                 (int_of_float (fb env)))
      | L.MinOp -> fun env -> Float.min (fa env) (fb env)
      | L.MaxOp -> fun env -> Float.max (fa env) (fb env))

(* Flat-index closure of a full-rank access.  Strides are precomputed once;
   per dimension the index is classified: constant indices fold into the
   static base (their bounds are checked here, at compile time), affine
   indices check per access only while the "in-bounds" register of their
   innermost loop variable is 0 (see the For case of {!compile_stmt}),
   opaque indices always check. *)
and index_fn ctx (b : Buffers.t) (idx : L.expr list) : int array -> int =
  let dims = b.Buffers.dims in
  let rank = Array.length dims in
  if List.length idx <> rank then
    failwith (Printf.sprintf "Exec: rank mismatch on %s" b.Buffers.name);
  let strides = Buffers.strides_of dims in
  let base = ref 0 in
  let terms = ref [] in
  List.iteri
    (fun k e ->
      let stride = strides.(k) and dk = dims.(k) in
      let oob i =
        invalid_arg
          (Printf.sprintf "buffer %s: index %d out of bounds [0,%d) at dim %d"
             b.Buffers.name i dk k)
      in
      match affine_terms e with
      | Some ([], c) ->
          if c >= 0 && c < dk then base := !base + (c * stride)
          else terms := (fun _ -> oob c) :: !terms
      | Some (ts, c) -> (
          let eval =
            match ts with
            | [ (v0, a0) ] ->
                let s0 = slot ctx v0 in
                fun env -> (a0 * env.(s0)) + c
            | [ (v0, a0); (v1, a1) ] ->
                let s0 = slot ctx v0 and s1 = slot ctx v1 in
                fun env -> (a0 * env.(s0)) + (a1 * env.(s1)) + c
            | _ ->
                let slots =
                  Array.of_list (List.map (fun (v, _) -> slot ctx v) ts)
                in
                let coeffs = Array.of_list (List.map snd ts) in
                let nv = Array.length slots in
                fun env ->
                  let x = ref c in
                  for t = 0 to nv - 1 do
                    x := !x + (coeffs.(t) * env.(slots.(t)))
                  done;
                  !x
          in
          let deepest =
            List.find_opt (fun lv -> List.mem_assoc lv ts) ctx.loop_stack
          in
          match deepest with
          | Some d ->
              let fl = flag_slot ctx d in
              let ad = List.assoc d ts in
              let others = List.filter (fun (v, _) -> v <> d) ts in
              let oslots =
                Array.of_list (List.map (fun (v, _) -> slot ctx v) others)
              in
              let ocoeffs = Array.of_list (List.map snd others) in
              (* The non-d part of the index is fixed while the d-loop runs,
                 and the index is monotone in d: checking the two corners of
                 [lo,hi] at loop entry covers every iteration. *)
              hoist_check ctx d (fun env lo hi ->
                  let rest = ref c in
                  for t = 0 to Array.length oslots - 1 do
                    rest := !rest + (ocoeffs.(t) * env.(oslots.(t)))
                  done;
                  let x0 = (ad * lo) + !rest and x1 = (ad * hi) + !rest in
                  x0 >= 0 && x0 < dk && x1 >= 0 && x1 < dk);
              terms :=
                (fun env ->
                  let i = eval env in
                  if env.(fl) = 0 && (i < 0 || i >= dk) then oob i;
                  i * stride)
                :: !terms
          | None ->
              (* affine purely in parameters: loop-invariant, keep the
                 per-access check *)
              terms :=
                (fun env ->
                  let i = eval env in
                  if i < 0 || i >= dk then oob i;
                  i * stride)
                :: !terms)
      | None ->
          let f = compile_int ctx e in
          terms :=
            (fun env ->
              let i = f env in
              if i < 0 || i >= dk then oob i;
              i * stride)
            :: !terms)
    idx;
  let base = !base in
  match Array.of_list (List.rev !terms) with
  | [||] -> fun _ -> base
  | [| t0 |] -> fun env -> base + t0 env
  | [| t0; t1 |] -> fun env -> base + t0 env + t1 env
  | [| t0; t1; t2 |] -> fun env -> base + t0 env + t1 env + t2 env
  | terms -> fun env -> Array.fold_left (fun acc t -> acc + t env) base terms

(* Offset of a starting element given (possibly shorter) leading indices;
   used by send/recv.  Strides are computed once at compile time. *)
let offset_fn (b : Buffers.t) (fidx : (int array -> int) array) =
  let strides = Buffers.strides b in
  fun env ->
    let acc = ref 0 in
    Array.iteri (fun k f -> acc := !acc + (f env * strides.(k))) fidx;
    !acc

(* ==================== static work estimate ==================== *)

let rec est_int ctx (e : L.expr) : int =
  match e with
  | L.Int n -> n
  | L.Float f -> int_of_float f
  | L.Var v -> (
      match Hashtbl.find_opt ctx.est_vars v with Some x -> x | None -> 0)
  | L.Neg a -> -est_int ctx a
  | L.Cast (_, a) -> est_int ctx a
  | L.Load _ | L.Call _ -> 0
  | L.Select (_, a, _) -> est_int ctx a
  | L.Bin (op, a, b) -> (
      let x = est_int ctx a and y = est_int ctx b in
      match op with
      | L.Add -> x + y
      | L.Sub -> x - y
      | L.Mul -> x * y
      | L.Div -> if y = 0 then 0 else x / y
      | L.FloorDiv -> if y = 0 then 0 else Tiramisu_support.Ints.fdiv x y
      | L.Mod -> if y = 0 then 0 else Tiramisu_support.Ints.emod x y
      | L.MinOp -> min x y
      | L.MaxOp -> max x y)

(* Per-entry work estimate of a statement (roughly: executed stores plus
   loop iterations), used by the pool fallback heuristic.  Parameters are
   bound to their concrete values at compile time; enclosing loop variables
   are approximated by their midpoints (maintained by {!compile_stmt}). *)
let rec est_work ctx (s : L.stmt) : int =
  match s with
  | L.Block l -> List.fold_left (fun acc s -> acc + est_work ctx s) 0 l
  | L.Comment _ | L.Barrier -> 0
  | L.Store _ -> 1
  | L.Send _ | L.Recv _ | L.Memcpy _ -> 8
  | L.If (_, t, e) ->
      max (est_work ctx t)
        (match e with Some e -> est_work ctx e | None -> 0)
  | L.Alloc { body; _ } -> 8 + est_work ctx body
  | L.For { var; lo; hi; body; _ } ->
      let lo = est_int ctx lo and hi = est_int ctx hi in
      let extent = max 0 (hi - lo + 1) in
      if extent = 0 then 0
      else begin
        let saved = Hashtbl.find_opt ctx.est_vars var in
        Hashtbl.replace ctx.est_vars var (lo + ((extent - 1) / 2));
        let w = est_work ctx body in
        (match saved with
        | Some x -> Hashtbl.replace ctx.est_vars var x
        | None -> Hashtbl.remove ctx.est_vars var);
        extent * (1 + w)
      end

(* ==================== kernel specializer ==================== *)

(* Innermost loops whose body is a straight-line sequence of [Store]s of
   arithmetic over affine [Load]s (the {!Loop_ir.spec_candidate} shape)
   compile to tight specialized drivers instead of the generic closure
   chain:

   - **strength-reduced addressing** — each access's flat offset is affine
     in the loop variables, so its value at loop entry is computed once
     (the base) and bumped by a constant step per iteration; no
     per-iteration multi-variable affine evaluation, no per-access bounds
     checks inside the loop;
   - **entry corner checks** — every access dimension is checked at the two
     corners of [lo, hi] (affine indices are monotone in the loop
     variable); if any check fails, this entry falls back to the generic
     closure path, whose per-access checks raise at exactly the faulting
     iteration;
   - **scalar promotion** — loads invariant in the loop variable from
     buffers the loop does not store into are read once at entry; a single
     store whose address is invariant and whose same-buffer loads all alias
     it exactly becomes a register accumulator written back at exit (the
     gemm k-loop);
   - **schedule tags** — [Unrolled] runs an unroll-by-{!unroll_factor}
     driver; [Vectorized s] runs a width-[s] lane-blocked driver (lanes
     evaluated into a float array, then stored as a block) with a scalar
     epilogue for partial blocks.  Lane blocking is only used when no load
     reads a stored buffer, so loop-carried reuse keeps the interpreter's
     iteration order. *)

exception Not_special

(* Runtime state of one specialized loop entry.  Allocated per entry when
   the loop sits (statically) under a Parallel loop, so concurrent chunks
   never share cursors; reused across entries otherwise. *)
type sstate = {
  scur : int array;       (* flat cursor per access *)
  spv : float array;      (* hoisted vars, promoted loads, accumulator *)
  mutable siv : int;      (* current value of the loop variable *)
}

type saccess = {
  sa_data : float array;
  sa_base : int array -> int;  (* env -> flat offset at v = 0 *)
  sa_step : int;               (* flat-offset step per unit of v *)
  sa_check : int array -> int -> int -> bool;
    (* env lo hi: every dimension in bounds across the whole range *)
}

let unroll_factor = 4

let build_access ctx v bname (idx : L.expr list) : saccess =
  let b =
    match Hashtbl.find_opt ctx.cbufs bname with
    | Some b -> b
    | None -> raise Not_special (* e.g. __trace pseudo-buffers *)
  in
  let dims = b.Buffers.dims in
  let rank = Array.length dims in
  if List.length idx <> rank then raise Not_special;
  let strides = Buffers.strides_of dims in
  let base_const = ref 0 in
  let base_terms = ref [] in
  let step = ref 0 in
  let checks = ref [] in
  List.iteri
    (fun k e ->
      match affine_terms e with
      | None -> raise Not_special
      | Some (ts, c) ->
          let stride = strides.(k) and dk = dims.(k) in
          let sv = match List.assoc_opt v ts with Some a -> a | None -> 0 in
          let others = List.filter (fun (u, _) -> u <> v) ts in
          let oslots =
            Array.of_list (List.map (fun (u, _) -> slot ctx u) others)
          in
          let ocoeffs = Array.of_list (List.map snd others) in
          step := !step + (sv * stride);
          base_const := !base_const + (c * stride);
          Array.iteri
            (fun t s ->
              base_terms := (s, ocoeffs.(t) * stride) :: !base_terms)
            oslots;
          checks :=
            (fun env lo hi ->
              let rest = ref c in
              for t = 0 to Array.length oslots - 1 do
                rest := !rest + (ocoeffs.(t) * env.(oslots.(t)))
              done;
              let x0 = (sv * lo) + !rest and x1 = (sv * hi) + !rest in
              min x0 x1 >= 0 && max x0 x1 < dk)
            :: !checks)
    idx;
  let cst = !base_const in
  let base =
    match Array.of_list !base_terms with
    | [||] -> fun _ -> cst
    | [| (s0, c0) |] -> fun env -> cst + (c0 * env.(s0))
    | [| (s0, c0); (s1, c1) |] ->
        fun env -> cst + (c0 * env.(s0)) + (c1 * env.(s1))
    | terms ->
        fun env ->
          Array.fold_left (fun acc (s, c) -> acc + (c * env.(s))) cst terms
  in
  let checks = Array.of_list !checks in
  let ndims = Array.length checks in
  let check env lo hi =
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < ndims do
      ok := checks.(!i) env lo hi;
      incr i
    done;
    !ok
  in
  { sa_data = b.Buffers.data; sa_base = base; sa_step = !step;
    sa_check = check }

(* Loads of a spec-shaped value, in evaluation order (indices are affine,
   so they contain no nested loads). *)
let rec spec_loads (e : L.expr) acc =
  match e with
  | L.Int _ | L.Float _ | L.Var _ -> acc
  | L.Load (b, idx) -> (b, idx) :: acc
  | L.Neg a | L.Cast (_, a) -> spec_loads a acc
  | L.Bin (_, a, b) -> spec_loads b (spec_loads a acc)
  | L.Call (_, args) -> List.fold_left (fun acc a -> spec_loads a acc) acc args
  | L.Select _ -> raise Not_special

(* [attempt_specialize ctx ~var ~tag body] returns [Some try_run] when the
   loop body matches the specializable shape.  [try_run env lo hi] performs
   the entry corner checks; on success it executes the whole loop and
   returns [true], otherwise it returns [false] and the caller runs the
   generic path. *)
let attempt_specialize ctx ~var ~tag (body : L.stmt) :
    (int array -> int -> int -> bool) option =
  match L.spec_stores body with
  | None | Some [] -> None
  | Some stores -> (
      try
        let stored_bufs = List.map (fun (b, _, _) -> b) stores in
        (* distinct accesses, numbered in discovery order; identical
           (buffer, indices) pairs share one cursor *)
        let acc_tbl : (string * L.expr list, int * saccess) Hashtbl.t =
          Hashtbl.create 8
        in
        let acc_index bname idx =
          let key = (bname, idx) in
          match Hashtbl.find_opt acc_tbl key with
          | Some ia -> ia
          | None ->
              let a = build_access ctx var bname idx in
              let ia = (Hashtbl.length acc_tbl, a) in
              Hashtbl.add acc_tbl key ia;
              ia
        in
        (* scalar pool: hoisted outer vars, promoted loads, accumulator *)
        let n_pv = ref 0 in
        let new_pv () =
          let p = !n_pv in
          incr n_pv;
          p
        in
        let hoists = ref [] in
        let hoist_tbl : (string, int) Hashtbl.t = Hashtbl.create 4 in
        let promos = ref [] in
        let promo_tbl : (int, int) Hashtbl.t = Hashtbl.create 4 in
        let all_loads =
          List.concat_map (fun (_, _, v) -> spec_loads v []) stores
        in
        let loads_stored =
          List.exists (fun (b, _) -> List.mem b stored_bufs) all_loads
        in
        (* Accumulator promotion: a single store with a v-invariant address
           whose same-buffer loads all alias it exactly. *)
        let accum =
          match stores with
          | [ (sb, sidx, _) ] ->
              let _, sa = acc_index sb sidx in
              sa.sa_step = 0
              && List.for_all
                   (fun (b, i) -> b <> sb || i = sidx)
                   all_loads
          | _ -> false
        in
        let acc_slot = if accum then Some (new_pv ()) else None in
        let rec cval (e : L.expr) : sstate -> float =
          match e with
          | L.Int n ->
              let x = float_of_int n in
              fun _ -> x
          | L.Float f -> fun _ -> f
          | L.Var u when u = var -> fun st -> float_of_int st.siv
          | L.Var u ->
              let p =
                match Hashtbl.find_opt hoist_tbl u with
                | Some p -> p
                | None ->
                    let p = new_pv () in
                    Hashtbl.add hoist_tbl u p;
                    hoists := (p, slot ctx u) :: !hoists;
                    p
              in
              fun st -> st.spv.(p)
          | L.Load (bname, idx) -> (
              match (acc_slot, stores) with
              | Some p, [ (sb, sidx, _) ] when bname = sb && idx = sidx ->
                  fun st -> st.spv.(p)
              | _ ->
                  let i, a = acc_index bname idx in
                  if a.sa_step = 0 && not (List.mem bname stored_bufs) then begin
                    let p =
                      match Hashtbl.find_opt promo_tbl i with
                      | Some p -> p
                      | None ->
                          let p = new_pv () in
                          Hashtbl.add promo_tbl i p;
                          promos := (p, i) :: !promos;
                          p
                    in
                    fun st -> st.spv.(p)
                  end
                  else begin
                    let data = a.sa_data in
                    fun st -> data.(st.scur.(i))
                  end)
          | L.Neg a ->
              let f = cval a in
              fun st -> -.f st
          | L.Cast (L.I32, a) ->
              let f = cval a in
              fun st -> Float.of_int (int_of_float (f st))
          | L.Cast (_, a) -> cval a
          | L.Select _ -> raise Not_special
          | L.Call (name, args) -> (
              let fargs = List.map cval args in
              match (name, fargs) with
              | "abs", [ a ] -> fun st -> Float.abs (a st)
              | "sqrt", [ a ] -> fun st -> sqrt (a st)
              | "exp", [ a ] -> fun st -> exp (a st)
              | "log", [ a ] -> fun st -> log (a st)
              | "sin", [ a ] -> fun st -> sin (a st)
              | "cos", [ a ] -> fun st -> cos (a st)
              | "floor", [ a ] -> fun st -> Float.floor (a st)
              | "pow", [ a; b ] -> fun st -> Float.pow (a st) (b st)
              | "fmin", [ a; b ] -> fun st -> Float.min (a st) (b st)
              | "fmax", [ a; b ] -> fun st -> Float.max (a st) (b st)
              | "clamp", [ x; lo; hi ] ->
                  fun st -> Float.min (Float.max (x st) (lo st)) (hi st)
              | _ -> raise Not_special)
          | L.Bin (op, a, b) -> (
              let fa = cval a and fb = cval b in
              match op with
              | L.Add -> fun st -> fa st +. fb st
              | L.Sub -> fun st -> fa st -. fb st
              | L.Mul -> fun st -> fa st *. fb st
              | L.Div -> fun st -> fa st /. fb st
              | L.FloorDiv ->
                  fun st ->
                    Float.of_int
                      (Tiramisu_support.Ints.fdiv
                         (int_of_float (fa st))
                         (int_of_float (fb st)))
              | L.Mod ->
                  fun st ->
                    Float.of_int
                      (Tiramisu_support.Ints.emod
                         (int_of_float (fa st))
                         (int_of_float (fb st)))
              | L.MinOp -> fun st -> Float.min (fa st) (fb st)
              | L.MaxOp -> fun st -> Float.max (fa st) (fb st))
        in
        (* compile stores in order: (access index, access, value) *)
        let compiled_stores =
          List.map
            (fun (sb, sidx, sval) ->
              let i, a = acc_index sb sidx in
              (i, a, cval sval))
            stores
        in
        let ops =
          Array.of_list
            (List.map
               (fun (i, a, fv) ->
                 match acc_slot with
                 | Some p -> fun st -> st.spv.(p) <- fv st
                 | None ->
                     let data = a.sa_data in
                     fun st -> data.(st.scur.(i)) <- fv st)
               compiled_stores)
        in
        (* finalize the access table into dense arrays *)
        let nacc = Hashtbl.length acc_tbl in
        let dummy =
          { sa_data = [||]; sa_base = (fun _ -> 0); sa_step = 0;
            sa_check = (fun _ _ _ -> true) }
        in
        let accs = Array.make nacc dummy in
        Hashtbl.iter (fun _ (i, a) -> accs.(i) <- a) acc_tbl;
        let steps = Array.map (fun a -> a.sa_step) accs in
        let checks = Array.map (fun a -> a.sa_check) accs in
        let nchecks = Array.length checks in
        let bump st =
          for k = 0 to nacc - 1 do
            st.scur.(k) <- st.scur.(k) + steps.(k)
          done;
          st.siv <- st.siv + 1
        in
        let iter =
          match ops with
          | [| op |] ->
              fun st ->
                op st;
                bump st
          | ops ->
              fun st ->
                Array.iter (fun op -> op st) ops;
                bump st
        in
        let drive =
          match (tag, compiled_stores) with
          | L.Vectorized w, [ (i0, a0, fv0) ]
            when w > 1 && acc_slot = None && not loads_stored ->
              (* lane-blocked: evaluate w lanes into a vector register,
                 then store the block; scalar epilogue for the remainder *)
              let step0 = a0.sa_step and data0 = a0.sa_data in
              fun st lo hi ->
                let lanes = Array.make w 0.0 in
                let i = ref lo in
                while !i + w - 1 <= hi do
                  let out0 = st.scur.(i0) in
                  for j = 0 to w - 1 do
                    lanes.(j) <- fv0 st;
                    bump st
                  done;
                  for j = 0 to w - 1 do
                    data0.(out0 + (j * step0)) <- lanes.(j)
                  done;
                  i := !i + w
                done;
                while !i <= hi do
                  iter st;
                  incr i
                done
          | L.Unrolled, _ ->
              fun st lo hi ->
                let i = ref lo in
                while !i + (unroll_factor - 1) <= hi do
                  iter st;
                  iter st;
                  iter st;
                  iter st;
                  i := !i + unroll_factor
                done;
                while !i <= hi do
                  iter st;
                  incr i
                done
          | _ ->
              fun st lo hi ->
                for _ = lo to hi do
                  iter st
                done
        in
        let acc_init, acc_flush =
          match (acc_slot, compiled_stores, stores) with
          | Some p, [ (i0, a0, _) ], [ (sb, sidx, _) ] ->
              let data0 = a0.sa_data in
              let needs_load =
                List.exists (fun (b, i) -> b = sb && i = sidx) all_loads
              in
              ( (if needs_load then
                   fun st -> st.spv.(p) <- data0.(st.scur.(i0))
                 else fun _ -> ()),
                fun st -> data0.(st.scur.(i0)) <- st.spv.(p) )
          | _ -> ((fun _ -> ()), fun _ -> ())
        in
        let hoists = Array.of_list !hoists in
        let promos = Array.of_list !promos in
        let npv = max 1 !n_pv in
        (* Scratch state is per-worker, indexed by the [__worker] register
           the parallel drivers set for each range/chunk: one array lookup
           per loop entry instead of a DLS search, one record per worker for
           the life of the compiled object (no per-entry allocation).
           Concurrent executors always carry distinct worker indices —
           static ranges by construction, dynamic chunks and spawned domains
           per executing domain — so cursors are never shared.  The DLS
           record is the safety net for indices beyond the compile-time pool
           size (the pool was grown after compilation). *)
        let fresh_state () =
          { scur = Array.make nacc 0; spv = Array.make npv 0.0; siv = 0 }
        in
        let nstates = max 2 (Pool.num_workers () + 1) in
        let states = Array.init nstates (fun _ -> fresh_state ()) in
        let st_key = Domain.DLS.new_key fresh_state in
        let ws = ctx.worker_slot in
        Some
          (fun env lo hi ->
            let ok = ref true in
            let i = ref 0 in
            while !ok && !i < nchecks do
              ok := checks.(!i) env lo hi;
              incr i
            done;
            if not !ok then false
            else begin
              let w = env.(ws) in
              let st =
                if w >= 0 && w < nstates then states.(w)
                else Domain.DLS.get st_key
              in
              st.siv <- lo;
              for k = 0 to nacc - 1 do
                st.scur.(k) <- accs.(k).sa_base env + (steps.(k) * lo)
              done;
              Array.iter
                (fun (p, s) -> st.spv.(p) <- float_of_int env.(s))
                hoists;
              Array.iter
                (fun (p, k) -> st.spv.(p) <- accs.(k).sa_data.(st.scur.(k)))
                promos;
              acc_init st;
              drive st lo hi;
              acc_flush st;
              true
            end)
      with Not_special -> None)

let rec compile_stmt ctx (s : L.stmt) : int array -> unit =
  match s with
  | L.Block l ->
      let fs = Array.of_list (List.map (compile_stmt ctx) l) in
      fun env -> Array.iter (fun f -> f env) fs
  | L.Comment _ | L.Barrier -> fun _ -> ()
  | L.If (c, t, e) -> (
      let fc = compile_cond ctx c and ft = compile_stmt ctx t in
      match e with
      | None -> fun env -> if fc env then ft env
      | Some e ->
          let fe = compile_stmt ctx e in
          fun env -> if fc env then ft env else fe env)
  | L.Store (b, idx, v) ->
      let bb = buf ctx b in
      let fidx = index_fn ctx bb idx in
      let fv = compile_f ctx v in
      fun env -> bb.Buffers.data.(fidx env) <- fv env
  | L.Alloc _ ->
      (* Scoped allocations capture buffers by reference at compile time;
         re-sizing per entry would need re-compilation. The reference
         interpreter handles these pipelines. *)
      failwith "Exec: scoped Alloc not supported; use the interpreter"
  | L.For { var; lo; hi; tag; body } as whole ->
      let s = slot ctx var in
      let flo = compile_int ctx lo and fhi = compile_int ctx hi in
      (* Attempt the flat-tape backend first: a perfect rectangular nest
         over straight-line affine stores compiles to register-file
         bytecode with strength-reduced cursors (see {!Tape_gen} /
         {!Tape}), and the whole closure compile below becomes the
         checked fallback taken when the whole-box corner check fails at
         run time.  Inner loops of a claimed nest are not re-attempted
         ([in_tape]), and the [`Spawn] strategy keeps its closure-driven
         baseline for parallel loops. *)
      let tape_rt =
        if
          (not ctx.tape_enabled)
          || ctx.in_tape > 0
          || (ctx.par_mode = `Spawn && tag = L.Parallel && ctx.par_depth = 0)
        then None
        else
          match Tape_gen.compile_nest whole with
          | None -> None
          | Some prog -> (
              match
                Tape.bind ~lanes:ctx.tape_lanes
                  ~buf:(Hashtbl.find_opt ctx.cbufs)
                  ~slot:(slot ctx) prog
              with
              | None -> None
              | Some bt -> Some (prog, bt))
      in
      (match tape_rt with
      | Some (prog, bt) ->
          Atomic.incr ctx.n_tape;
          if Tape.vectorized bt then Atomic.incr ctx.n_tape_vec;
          ignore
            (Atomic.fetch_and_add ctx.n_tape_instr (Tape_gen.instr_count prog))
      | None -> ());
      if Option.is_some tape_rt then ctx.in_tape <- ctx.in_tape + 1;
      (* Statically nested Parallel loops run sequentially inside their
         chunk: the pool already owns the machine at the outer level.
         Pool-scheduled loops additionally fall back to sequential when
         forking cannot pay off: either the OS grants this process a single
         CPU (a pool only time-slices then), or the loop's total static
         work estimate divided across the effective workers is below the
         fork/join break-even point (Pool.min_work): forking tiny loops
         costs more in hand-off than each worker's share earns back.
         TIRAMISU_POOL_MIN_WORK=0 disables both, and so does
         [demote:false] — the parallel planner passes it after taking
         these decisions itself at the plan level. *)
      let est_at x =
        let saved = Hashtbl.find_opt ctx.est_vars var in
        Hashtbl.replace ctx.est_vars var x;
        let w = est_work ctx body in
        (match saved with
        | Some x -> Hashtbl.replace ctx.est_vars var x
        | None -> Hashtbl.remove ctx.est_vars var);
        w
      in
      let demoted =
        tag = L.Parallel && ctx.par_mode = `Pool && ctx.par_depth = 0
        && ctx.demote && ctx.pool_min_work > 0
        && (let eff = Pool.effective_parallelism () in
            eff <= 1
            ||
            let est_lo = est_int ctx lo and est_hi = est_int ctx hi in
            let extent = max 0 (est_hi - est_lo + 1) in
            let body_est = est_at (est_lo + (max 0 (extent - 1) / 2)) in
            extent * (1 + body_est) / eff < ctx.pool_min_work)
      in
      if demoted then Atomic.incr ctx.n_fallback;
      let parallel =
        tag = L.Parallel && ctx.par_mode <> `Seq && ctx.par_depth = 0
        && not demoted
      in
      (* Schedule selection for pool loops: when the per-entry work estimate
         is the same at both ends of the range (rectangular domains — also
         everything the parallel planner coalesces), a static per-worker
         range split balances exactly and skips the per-chunk task hand-off;
         otherwise dynamic chunking with stealing absorbs the irregularity
         (triangular domains, guarded partial tiles). *)
      let static_sched =
        parallel && ctx.par_mode = `Pool
        &&
        match ctx.sched with
        | `Static -> true
        | `Dynamic -> false
        | `Auto ->
            let est_lo = est_int ctx lo and est_hi = est_int ctx hi in
            est_hi < est_lo || est_at est_lo = est_at est_hi
      in
      if static_sched then Atomic.incr ctx.n_static;
      (* Attempt kernel specialization before compiling the generic body:
         innermost Seq/Unrolled/Vectorized loops over store sequences get a
         strength-reduced driver; the generic closure stays as the fallback
         for entries whose corner checks fail. *)
      let spec =
        if not ctx.spec_enabled then None
        else
          match tag with
          | L.Seq | L.Unrolled | L.Vectorized _ ->
              attempt_specialize ctx ~var ~tag body
          | _ -> None
      in
      if spec <> None then Atomic.incr ctx.n_spec;
      if tag = L.Parallel then ctx.par_depth <- ctx.par_depth + 1;
      ctx.loop_stack <- var :: ctx.loop_stack;
      (* midpoint binding so nested est_work calls see this loop's extent *)
      let saved_est = Hashtbl.find_opt ctx.est_vars var in
      let est_lo = est_int ctx lo and est_hi = est_int ctx hi in
      Hashtbl.replace ctx.est_vars var
        (est_lo + (max 0 (est_hi - est_lo) / 2));
      let saved_pending = Hashtbl.find_opt ctx.pending var in
      let my_pending = ref [] in
      Hashtbl.replace ctx.pending var my_pending;
      let fbody = compile_stmt ctx body in
      if Option.is_some tape_rt then ctx.in_tape <- ctx.in_tape - 1;
      let checks = Array.of_list !my_pending in
      (match saved_pending with
      | Some r -> Hashtbl.replace ctx.pending var r
      | None -> Hashtbl.remove ctx.pending var);
      (match saved_est with
      | Some x -> Hashtbl.replace ctx.est_vars var x
      | None -> Hashtbl.remove ctx.est_vars var);
      ctx.loop_stack <- List.tl ctx.loop_stack;
      if tag = L.Parallel then ctx.par_depth <- ctx.par_depth - 1;
      let rs = ctx.rank_slot in
      let seq_run =
        if tag = L.Distributed then (fun env lo hi ->
          for x = lo to hi do
            env.(s) <- x;
            env.(rs) <- x;
            fbody env
          done)
        else fun env lo hi ->
          for x = lo to hi do
            env.(s) <- x;
            fbody env
          done
      in
      let ws = ctx.worker_slot in
      let run =
        if not parallel then seq_run
        else
          match ctx.par_mode with
          | `Pool when static_sched ->
              (* Static per-worker ranges with persistent register files:
                 range [k] always reuses slot [k]'s file (refreshed by blit,
                 no per-entry allocation once warm) and carries worker
                 index [k] for the specializer scratch.  The spine only
                 grows from the submitting caller, before any range runs. *)
              let envs = ref [||] in
              fun env lo hi ->
                let nw = Pool.num_workers () in
                if Array.length !envs < nw then begin
                  let grown = Array.make nw [||] in
                  Array.blit !envs 0 grown 0 (Array.length !envs);
                  envs := grown
                end;
                let es = !envs in
                let len = Array.length env in
                Pool.static_for lo hi ~body:(fun k clo chi ->
                    let e = es.(k) in
                    let env' =
                      if Array.length e = len then begin
                        Array.blit env 0 e 0 len;
                        e
                      end
                      else begin
                        let e = Array.copy env in
                        es.(k) <- e;
                        e
                      end
                    in
                    env'.(ws) <- k;
                    seq_run env' clo chi)
          | `Pool ->
              fun env lo hi ->
                Pool.parallel_for lo hi ~body:(fun clo chi ->
                    (* per-chunk private register file; the worker index
                       follows the executing domain *)
                    let env' = Array.copy env in
                    env'.(ws) <- Pool.worker_id ();
                    seq_run env' clo chi)
          | `Spawn | `Seq ->
              (* the seed strategy, kept as the benchmark baseline:
                 spawn/join a fresh set of domains on every loop entry *)
              fun env lo hi ->
                let extent = hi - lo + 1 in
                let nd = min (Pool.num_workers ()) extent in
                if nd <= 1 then seq_run env lo hi
                else begin
                  let chunk = (extent + nd - 1) / nd in
                  let workers =
                    List.init nd (fun d ->
                        Domain.spawn (fun () ->
                            let env' = Array.copy env in
                            env'.(ws) <- d;
                            let from = lo + (d * chunk) in
                            let upto = min hi (from + chunk - 1) in
                            seq_run env' from upto))
                  in
                  (* Join every domain even when one raises — a raising join
                     must not leave its siblings unjoined (leaked domains
                     block process exit) — then re-raise the first failure
                     with its backtrace. *)
                  let first = ref None in
                  List.iter
                    (fun d ->
                      try Domain.join d
                      with e ->
                        if !first = None then
                          first := Some (e, Printexc.get_raw_backtrace ()))
                    workers;
                  match !first with
                  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
                  | None -> ()
                end
      in
      let checked_run =
        if Array.length checks = 0 then run
        else begin
          let fv = flag_slot ctx var in
          let nchecks = Array.length checks in
          fun env lo hi ->
            let ok = ref true in
            let i = ref 0 in
            while !ok && !i < nchecks do
              ok := checks.(!i) env lo hi;
              incr i
            done;
            let saved = env.(fv) in
            env.(fv) <- (if !ok then 1 else 0);
            run env lo hi;
            env.(fv) <- saved
        end
      in
      let closure_run =
        match spec with
        | Some try_run ->
            fun env lo hi ->
              if not (try_run env lo hi) then checked_run env lo hi
        | None -> checked_run
      in
      (match tape_rt with
      | None ->
          fun env ->
            let lo = flo env and hi = fhi env in
            if hi >= lo then closure_run env lo hi
      | Some (_, bt) ->
          (* Tape dispatch: [Tape.enter] evaluates bounds and the
             whole-box corner checks once per nest entry — a failure
             falls back to the closure path (whose per-access checks
             raise at the faulting iteration) and is counted. *)
          let tfb = ctx.n_tape_fb in
          let seq_tape =
            (* per-domain persistent state: safe under an enclosing
               parallel loop, reused across entries once warm *)
            let key = Domain.DLS.new_key (fun () -> Tape.new_state bt) in
            fun env total ->
              Tape.run_range bt (Domain.DLS.get key) env 0 (total - 1)
          in
          let run_tape =
            if not parallel then seq_tape
            else
              match ctx.par_mode with
              | `Pool when static_sched ->
                  (* the static scheduler's persistent per-range state is
                     the tape's register-file home: range [k] always
                     reuses state [k], grown only by the submitting
                     caller before any range runs.  The env is shared
                     read-only — the tape never writes registers. *)
                  let pstates = ref [||] in
                  fun env total ->
                    let nw = Pool.num_workers () in
                    if Array.length !pstates < nw then begin
                      let old = !pstates in
                      pstates :=
                        Array.init nw (fun k ->
                            if k < Array.length old then old.(k)
                            else Tape.new_state bt)
                    end;
                    let ps = !pstates in
                    Pool.static_for 0 (total - 1) ~body:(fun k flo fhi ->
                        Tape.run_range bt ps.(k) env flo fhi)
              | `Pool ->
                  let key =
                    Domain.DLS.new_key (fun () -> Tape.new_state bt)
                  in
                  fun env total ->
                    Pool.parallel_for 0 (total - 1) ~body:(fun flo fhi ->
                        Tape.run_range bt (Domain.DLS.get key) env flo fhi)
              | `Spawn | `Seq -> seq_tape
          in
          fun env ->
            let lo = flo env and hi = fhi env in
            if hi >= lo then begin
              let total = Tape.enter bt env in
              if total < 0 then begin
                Atomic.incr tfb;
                closure_run env lo hi
              end
              else if total > 0 then run_tape env total
            end)
  | L.Send { dst; buf = b; offset; count; _ } ->
      let bb = buf ctx b in
      let fdst = compile_int ctx dst in
      let foffs =
        offset_fn bb (Array.of_list (List.map (compile_int ctx) offset))
      in
      let fcount = compile_int ctx count in
      let rs = ctx.rank_slot in
      let msgs = ctx.n_msgs and bytes = ctx.n_bytes in
      fun env ->
        let payload = Array.sub bb.Buffers.data (foffs env) (fcount env) in
        Atomic.incr msgs;
        ignore (Atomic.fetch_and_add bytes (8 * Array.length payload));
        Mutex.lock ctx.chan_mutex;
        let key = (env.(rs), fdst env) in
        let q =
          match Hashtbl.find_opt ctx.channels key with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.replace ctx.channels key q;
              q
        in
        Queue.push (b, payload) q;
        Mutex.unlock ctx.chan_mutex
  | L.Recv { src; buf = b; offset; count; _ } ->
      let bb = buf ctx b in
      let fsrc = compile_int ctx src in
      let foffs =
        offset_fn bb (Array.of_list (List.map (compile_int ctx) offset))
      in
      let fcount = compile_int ctx count in
      let rs = ctx.rank_slot in
      fun env ->
        Mutex.lock ctx.chan_mutex;
        let src = fsrc env and dst = env.(rs) in
        (match Hashtbl.find_opt ctx.channels (src, dst) with
        | Some q when not (Queue.is_empty q) ->
            let channel, payload = Queue.pop q in
            Mutex.unlock ctx.chan_mutex;
            let want = fcount env in
            if Array.length payload <> want then
              raise
                (Comm_error
                   { src; dst; channel;
                     reason =
                       Printf.sprintf
                         "message size mismatch: sent %d elements, recv \
                          expects %d"
                         (Array.length payload) want });
            Array.blit payload 0 bb.Buffers.data (foffs env)
              (Array.length payload)
        | _ ->
            Mutex.unlock ctx.chan_mutex;
            raise
              (Comm_error
                 { src; dst; channel = b;
                   reason = "synchronous recv with no message (deadlock)" }))
  | L.Memcpy { dst; src; _ } ->
      let s = buf ctx src and d = buf ctx dst in
      fun _ ->
        if Buffers.size s <> Buffers.size d then
          failwith "Exec: memcpy size mismatch";
        Array.blit s.Buffers.data 0 d.Buffers.data 0 (Buffers.size s)

(* Parameters are known at compile time, so narrow bounds/indices/guards
   with interval analysis, then re-run unroll expansion (narrowing often
   turns dynamic [Unrolled] bounds static) and the statement simplifier
   (which deletes loops narrowing proved empty, e.g. vector epilogues of
   exact tiles).  [narrow:false] keeps the lowered statement as-is — the
   differential fuzzer runs both settings against each other.  Exposed
   separately so the pipeline pass manager can time the two stages
   individually. *)
(* Whether the statement communicates at all: only then does the compiled
   body pay for per-run channel reset and the unmatched-send drain check
   (CPU kernels in timing loops stay untouched). *)
let rec has_comm (s : L.stmt) =
  match s with
  | L.Send _ | L.Recv _ -> true
  | L.Block l -> List.exists has_comm l
  | L.If (_, t, e) -> (
      has_comm t || match e with Some e -> has_comm e | None -> false)
  | L.For { body; _ } | L.Alloc { body; _ } -> has_comm body
  | L.Store _ | L.Comment _ | L.Barrier | L.Memcpy _ -> false

(* Static thread-block check for the GPU simulator: the product of the
   extents of nested [Gpu_thread] loops must fit the target's
   [max_threads] ceiling (the per-SM cap of the machine model).  Raised
   as [Failure] so the pipeline's guard reports it as a typed error. *)
let check_gpu_grid ~max_threads ~params stmt =
  let rec ev (e : L.expr) =
    match e with
    | L.Int n -> n
    | L.Var v -> (
        match List.assoc_opt v params with Some x -> x | None -> 0)
    | L.Neg a -> -ev a
    | L.Cast (_, a) -> ev a
    | L.Select (_, a, _) -> ev a
    | L.Bin (op, a, b) -> (
        let x = ev a and y = ev b in
        match op with
        | L.Add -> x + y
        | L.Sub -> x - y
        | L.Mul -> x * y
        | L.Div -> if y = 0 then 0 else x / y
        | L.FloorDiv -> if y = 0 then 0 else Tiramisu_support.Ints.fdiv x y
        | L.Mod -> if y = 0 then 0 else Tiramisu_support.Ints.emod x y
        | L.MinOp -> min x y
        | L.MaxOp -> max x y)
    | L.Float _ | L.Load _ | L.Call _ -> 0
  in
  let rec walk threads (s : L.stmt) =
    match s with
    | L.Block l -> List.iter (walk threads) l
    | L.If (_, t, e) ->
        walk threads t;
        Option.iter (walk threads) e
    | L.Alloc { body; _ } -> walk threads body
    | L.For { lo; hi; tag; body; _ } ->
        let threads =
          match tag with
          | L.Gpu_thread _ ->
              let ext = max 1 (ev hi - ev lo + 1) in
              let t = threads * ext in
              if t > max_threads then
                failwith
                  (Printf.sprintf
                     "Exec: GPU thread block of %d threads exceeds the \
                      target's max_threads=%d"
                     t max_threads);
              t
          | L.Gpu_block _ -> 1
          | _ -> threads
        in
        walk threads body
    | L.Store _ | L.Comment _ | L.Barrier | L.Send _ | L.Recv _ | L.Memcpy _
      ->
        ()
  in
  walk 1 stmt

let prepare ?(narrow = true) ~params stmt =
  let stmt =
    if narrow then Tiramisu_codegen.Passes.narrow ~params stmt else stmt
  in
  L.simplify_stmt (Tiramisu_codegen.Passes.unroll_expand stmt)

(* Closure-compile an already-prepared (narrowed/simplified) statement
   for a given execution target.  The target decides the CPU parallel
   strategy and pool schedule (its projections), whether the flat tape
   may claim nests ([Target.tape_claimable]), and — for [Gpu_sim] — the
   static thread-block validation. *)
let compile_prepared ?(target = Target.default) ?(specialize = true)
    ?(demote = true) ?(tape = true) ?(lanes = 8) ~params ~buffers stmt =
  let parallel = Target.par_strategy target in
  let sched = Target.sched target in
  let tape = tape && Target.tape_claimable target in
  (match target with
  | Target.Gpu_sim g ->
      check_gpu_grid ~max_threads:g.Target.max_threads ~params stmt
  | Target.Cpu _ | Target.Distributed _ -> ());
  let ctx =
    {
      slots = Hashtbl.create 32;
      nslots = 0;
      cbufs = Hashtbl.create 16;
      channels = Hashtbl.create 16;
      chan_mutex = Mutex.create ();
      rank_slot = 0;
      worker_slot = 1;
      par_mode = parallel;
      pending = Hashtbl.create 8;
      loop_stack = [];
      par_depth = 0;
      est_vars = Hashtbl.create 16;
      pool_min_work = Pool.min_work ();
      spec_enabled = specialize;
      sched;
      demote;
      n_spec = Atomic.make 0;
      n_fallback = Atomic.make 0;
      n_static = Atomic.make 0;
      tape_enabled = tape;
      tape_lanes = lanes;
      in_tape = 0;
      n_tape = Atomic.make 0;
      n_tape_vec = Atomic.make 0;
      n_tape_instr = Atomic.make 0;
      n_tape_fb = Atomic.make 0;
      n_msgs = Atomic.make 0;
      n_bytes = Atomic.make 0;
    }
  in
  let rank_slot = slot ctx "__rank" in
  assert (rank_slot = 0);
  let worker_slot = slot ctx "__worker" in
  assert (worker_slot = 1);
  List.iter (fun b -> Hashtbl.replace ctx.cbufs b.Buffers.name b) buffers;
  List.iter
    (fun (p, v) ->
      ignore (slot ctx p);
      Hashtbl.replace ctx.est_vars p v)
    params;
  let body = compile_stmt ctx stmt in
  (* Communicating programs get a per-run envelope: channels start empty
     (no stale messages from a previous run), and any payload still
     queued when the program finishes is an unmatched send — the
     deadlock-analogue fault — reported with its rank pair and channel. *)
  let body =
    if not (has_comm stmt) then body
    else begin
      let channels = ctx.channels and m = ctx.chan_mutex in
      fun env ->
        Mutex.lock m;
        Hashtbl.reset channels;
        Mutex.unlock m;
        body env;
        Mutex.lock m;
        let leftover =
          Hashtbl.fold
            (fun (src, dst) q acc ->
              if Queue.is_empty q then acc
              else ((src, dst), fst (Queue.peek q), Queue.length q) :: acc)
            channels []
        in
        Mutex.unlock m;
        match leftover with
        | [] -> ()
        | ((src, dst), channel, n) :: _ ->
            raise
              (Comm_error
                 { src; dst; channel;
                   reason =
                     Printf.sprintf
                       "unmatched send: %d message(s) left undelivered" n })
    end
  in
  (* size the register file after compilation discovered all names *)
  let regs0 = Array.make (max 1 ctx.nslots) 0 in
  List.iter (fun (p, v) -> regs0.(Hashtbl.find ctx.slots p) <- v) params;
  (* Snapshot the per-compile counters into the result: every [compiled]
     value reports its own numbers, never a process-wide accumulation, so
     repeated compiles in one process (the fuzzer, the benchmarks) stay
     independent. *)
  { body; regs0; bufs = ctx.cbufs; cmeta = L.analyze_loops stmt;
    c_spec = Atomic.get ctx.n_spec; c_fallback = Atomic.get ctx.n_fallback;
    c_static = Atomic.get ctx.n_static;
    c_tape = Atomic.get ctx.n_tape;
    c_tape_vec = Atomic.get ctx.n_tape_vec;
    c_tape_lanes = (if tape && lanes > 1 then lanes else 0);
    c_tape_instr = Atomic.get ctx.n_tape_instr;
    (* runtime counters (tape fallbacks, comm traffic) keep accumulating
       as the compiled object runs, so the compiled value shares the
       Atomics instead of snapshotting them *)
    c_tape_fb = ctx.n_tape_fb; c_msgs = ctx.n_msgs; c_bytes = ctx.n_bytes }

let compile ?(target = Target.default) ?(specialize = true) ?(narrow = true)
    ?(demote = true) ?(tape = true) ?(lanes = 8) ~params ~buffers stmt =
  compile_prepared ~target ~specialize ~demote ~tape ~lanes ~params ~buffers
    (prepare ~narrow ~params stmt)

let run c = c.body (Array.copy c.regs0)
let spec_count c = c.c_spec
let pool_fallbacks c = c.c_fallback
let static_count c = c.c_static
let tape_count c = c.c_tape
let tape_vec_count c = c.c_tape_vec
let tape_lanes c = c.c_tape_lanes
let tape_instrs c = c.c_tape_instr
let tape_fallbacks c = Atomic.get c.c_tape_fb
let comm_msgs c = Atomic.get c.c_msgs
let comm_bytes c = Atomic.get c.c_bytes

let buffer c name =
  match Hashtbl.find_opt c.bufs name with
  | Some b -> b
  | None -> failwith (Printf.sprintf "Exec: unknown buffer %s" name)

let meta c = c.cmeta

let time_run c =
  let (), dt = Clock.time (fun () -> run c) in
  dt
